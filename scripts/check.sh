#!/bin/sh
# Repository health check: build, tests, and the observability edges
# (metrics dump + Perfetto trace must be valid JSON).
#
#   ./scripts/check.sh
#
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench --metrics =="
metrics=$(mktemp /tmp/heron_metrics.XXXXXX.json)
trace=$(mktemp /tmp/heron_trace.XXXXXX.json)
trap 'rm -f "$metrics" "$trace"' EXIT

dune exec bench/main.exe -- fig8 quick --metrics "$metrics" > /dev/null
dune exec bin/probe.exe -- jsonlint "$metrics"

echo "== probe trace =="
dune exec bin/probe.exe -- trace "$trace" > /dev/null
dune exec bin/probe.exe -- jsonlint "$trace"

echo "== chaos smoke sweep =="
# 120 generated fault schedules against the full stack; failures shrink
# and pin under test/corpus/ so they can be committed as regressions.
dune exec bin/probe.exe -- chaos --seeds 0..119 --shrink --corpus test/corpus

echo "== reconfig chaos sweep =="
# Live-repartitioning schedules: migrations timed into crash/restart
# windows (DESIGN.md §10), same shrink-and-pin flow.
dune exec bin/probe.exe -- chaos --seeds 0..99 --reconfig --shrink --corpus test/corpus

echo "== bench coord smoke =="
# Quick coordination bench: multi-partition p50/p99 latency,
# single-partition throughput and doorbell charges -> BENCH_coord.json.
dune exec bench/main.exe -- quick coord
dune exec bin/probe.exe -- jsonlint BENCH_coord.json

echo "== bench reconfig smoke =="
# Shifting-hotspot bench: static placement vs the live rebalancer ->
# BENCH_reconfig.json (the rebalanced run must win post-shift).
dune exec bench/main.exe -- quick reconfig
dune exec bin/probe.exe -- jsonlint BENCH_reconfig.json

echo "all checks passed"
