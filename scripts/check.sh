#!/bin/sh
# Repository health check: build, tests, and the observability edges
# (metrics dump + Perfetto trace must be valid JSON).
#
#   ./scripts/check.sh
#   ARTIFACTS=artifacts ./scripts/check.sh   # keep the JSON outputs
#
# With ARTIFACTS set, the metrics dump and trace files are written
# there (and kept) instead of into throwaway tempfiles — CI uploads
# that directory as the workflow artifact.
#
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

if [ -n "${ARTIFACTS:-}" ]; then
  mkdir -p "$ARTIFACTS"
  metrics="$ARTIFACTS/bench_smoke_metrics.json"
  trace="$ARTIFACTS/probe_trace.json"
  bench_trace="$ARTIFACTS/bench_coord_trace.json"
else
  metrics=$(mktemp /tmp/heron_metrics.XXXXXX.json)
  trace=$(mktemp /tmp/heron_trace.XXXXXX.json)
  bench_trace=$(mktemp /tmp/heron_bench_trace.XXXXXX.json)
  trap 'rm -f "$metrics" "$trace" "$bench_trace"' EXIT
fi

echo "== bench --metrics =="
dune exec bench/main.exe -- fig8 quick --metrics "$metrics" > /dev/null
dune exec bin/probe.exe -- jsonlint "$metrics"

echo "== probe trace =="
dune exec bin/probe.exe -- trace "$trace" > /dev/null
dune exec bin/probe.exe -- jsonlint "$trace"

echo "== probe explain =="
# Critical paths of the slowest traced requests, re-read from the dump.
dune exec bin/probe.exe -- explain "$trace" --top 3

echo "== chaos smoke sweep =="
# 120 generated fault schedules against the full stack; failures shrink
# and pin under test/corpus/ so they can be committed as regressions.
dune exec bin/probe.exe -- chaos --seeds 0..119 --shrink --corpus test/corpus

echo "== pipelined chaos sweep =="
# The same schedule space with the compartmentalized pipeline on
# (DESIGN.md §12), plus the pinned corpus replayed under pipelining —
# schedules are config-agnostic, so every pin guards both loops.
dune exec bin/probe.exe -- chaos --seeds 0..200 --pipeline --shrink --corpus test/corpus
dune exec bin/probe.exe -- chaos --replay test/corpus --pipeline

echo "== fast-reads chaos sweep =="
# The same schedule space with lease-based local reads on (DESIGN.md
# §14): single-partition reads served from lease holders' local stores
# under crashes, restarts and migrations, judged by the same
# linearizability verdict. The pinned corpus replays under the flag
# too — schedules are config-agnostic.
dune exec bin/probe.exe -- chaos --seeds 0..200 --fast-reads --shrink --corpus test/corpus
dune exec bin/probe.exe -- chaos --replay test/corpus --fast-reads

echo "== reconfig chaos sweep =="
# Live-repartitioning schedules: migrations timed into crash/restart
# windows (DESIGN.md §10), same shrink-and-pin flow.
dune exec bin/probe.exe -- chaos --seeds 0..99 --reconfig --shrink --corpus test/corpus

echo "== elastic chaos sweep =="
# Elastic topology schedules (DESIGN.md §15): shard splits and merges
# ordered through the total order, timed into crash/restart windows so
# resharding races recovery and lagging bootstraps. Same
# shrink-and-pin flow; elastic pins carry their topology in the
# schedule JSON, so the corpus replays above already exercise them.
dune exec bin/probe.exe -- chaos --seeds 0..100 --elastic --shrink --corpus test/corpus

echo "== longhaul chaos smoke =="
# Long-horizon durability schedules (DESIGN.md §13): minutes of virtual
# time per seed with checkpointing on; verdicts include flat memory
# (bounded update/multicast logs) and O(delta) rejoin, not just
# linearizability. Pinned longhaul schedules replay under the same
# flags.
dune exec bin/probe.exe -- longhaul --seeds 0..39 --shrink --corpus test/corpus
for f in test/corpus/longhaul_*.json; do
  dune exec bin/probe.exe -- longhaul --replay "$f"
done

echo "== bench coord smoke =="
# Quick coordination bench: multi-partition p50/p99 latency,
# single-partition throughput, doorbell charges and the per-stage
# critical-path breakdown (DESIGN.md §11) -> BENCH_coord.json.
dune exec bench/main.exe -- quick coord --breakdown --trace "$bench_trace"
dune exec bin/probe.exe -- jsonlint BENCH_coord.json
dune exec bin/probe.exe -- jsonlint "$bench_trace"
dune exec bin/probe.exe -- explain "$bench_trace" --top 1 > /dev/null

echo "== bench pipeline smoke =="
# Pipeline ablation grid: on/off x executors x batch size ->
# BENCH_pipeline.json; then the deterministic regression guard — the
# sim is bit-exact per seed, so the committed quick-mode baseline
# admits an exact >10%-drop check on throughput.
dune exec bench/main.exe -- quick pipeline
dune exec bin/probe.exe -- jsonlint BENCH_pipeline.json
dune exec bin/probe.exe -- benchguard BENCH_pipeline.json \
  scripts/bench_pipeline_baseline.json \
  --keys best_pipeline_tput_tps,off_tput_tps --max-regression-pct 10

echo "== bench reads smoke =="
# Fast-read ablation: YCSB A/B/C x fast_reads on/off plus write and
# scan probes -> BENCH_reads.json. The guard holds the lease-served
# YCSB-C read throughput against the committed quick-mode baseline.
dune exec bench/main.exe -- quick reads --breakdown
dune exec bin/probe.exe -- jsonlint BENCH_reads.json
dune exec bin/probe.exe -- benchguard BENCH_reads.json \
  scripts/bench_reads_baseline.json \
  --keys read_tput_tps,read_tput_off_tps --max-regression-pct 10

echo "== bench longhaul smoke =="
# Durability ablation: checkpointing on vs off over a long virtual
# horizon -> BENCH_longhaul.json (flat vs linear log growth, O(delta)
# vs O(history) rejoin). The guard holds durable throughput and the
# compaction factor against the committed quick-mode baseline.
dune exec bench/main.exe -- quick longhaul
dune exec bin/probe.exe -- jsonlint BENCH_longhaul.json
dune exec bin/probe.exe -- benchguard BENCH_longhaul.json \
  scripts/bench_longhaul_baseline.json \
  --keys durable_tput_tps,compaction_factor_x100 --max-regression-pct 10

echo "== bench reconfig smoke =="
# Shifting-hotspot bench: static placement vs the live rebalancer ->
# BENCH_reconfig.json (the rebalanced run must win post-shift).
dune exec bench/main.exe -- quick reconfig
dune exec bin/probe.exe -- jsonlint BENCH_reconfig.json

echo "== bench elastic smoke =="
# Ramp bench: client load grows 10x mid-run; the elastic deployment
# (ring topology + two-tier rebalancer, DESIGN.md §15) splits shards
# onto the idle server pool while the static one saturates ->
# BENCH_elastic.json. The guard holds both post-ramp throughputs
# against the committed quick-mode baseline.
dune exec bench/main.exe -- quick elastic
dune exec bin/probe.exe -- jsonlint BENCH_elastic.json
dune exec bin/probe.exe -- benchguard BENCH_elastic.json \
  scripts/bench_elastic_baseline.json \
  --keys elastic_postramp_tput_tps,static_postramp_tput_tps \
  --max-regression-pct 10

if [ -n "${ARTIFACTS:-}" ]; then
  cp BENCH_coord.json BENCH_reconfig.json BENCH_pipeline.json \
    BENCH_longhaul.json BENCH_reads.json BENCH_elastic.json "$ARTIFACTS/"
fi

echo "all checks passed"
