let bits = 30
let space = 1 lsl bits

(* Murmur-style avalanche finalizer (xorshift-multiply rounds). The
   multipliers are 62-bit — OCaml int literals top out below 2^62 — and
   odd, which is what the avalanche needs; multiplication wraps, so the
   result is deterministic everywhere the simulator runs. Masking with
   [max_int] keeps it non-negative. *)
let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x3C79AC492BA7B653 in
  let x = x lxor (x lsr 32) in
  x land max_int

(* Distinct odd salts keep key points and group points uncorrelated:
   group g sitting exactly on key k's point would make succession
   degenerate for that key. *)
let point_of_key k = mix ((k * 2) + 0x5EED1) land (space - 1)
let point_of_group g = mix ((g * 2) + 0x9AB42) land (space - 1)

let successor ~point ~groups =
  let best =
    List.fold_left
      (fun best g ->
        (* Clockwise distance from [point] to g's position, with wrap. *)
        let d = (point_of_group g - point) land (space - 1) in
        match best with
        | Some (bd, bg) when bd < d || (bd = d && bg < g) -> best
        | _ -> Some (d, g))
      None groups
  in
  match best with
  | Some (_, g) -> g
  | None -> invalid_arg "Ring.successor: empty candidate set"
