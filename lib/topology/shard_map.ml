type shard = { s_lo : int; s_hi : int; s_group : int }
type t = shard array

let count t = Array.length t
let arc t i = t.(i)

let initial ~shards ~pool =
  if shards < 1 || shards > pool then
    invalid_arg
      (Printf.sprintf "Shard_map.initial: %d shards over a pool of %d" shards
         pool);
  let free = ref (List.init pool Fun.id) in
  Array.init shards (fun i ->
      let lo = i * Ring.space / shards in
      let hi = if i = shards - 1 then Ring.space else (i + 1) * Ring.space / shards in
      let g = Ring.successor ~point:lo ~groups:!free in
      free := List.filter (fun g' -> g' <> g) !free;
      { s_lo = lo; s_hi = hi; s_group = g })

let lookup t point =
  let lo = ref 0 and hi = ref (Array.length t - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.(mid).s_lo <= point then lo := mid else hi := mid - 1
  done;
  !lo

let home t key = t.(lookup t (Ring.point_of_key key)).s_group

let index_of_group t g =
  let found = ref None in
  Array.iteri (fun i s -> if !found = None && s.s_group = g then found := Some i) t;
  !found

let free_groups t ~pool =
  let busy = Array.to_list (Array.map (fun s -> s.s_group) t) in
  List.filter (fun g -> not (List.mem g busy)) (List.init pool Fun.id)

type split_info = {
  sp_parent : int;
  sp_child : int;
  sp_lo : int;
  sp_mid : int;
  sp_hi : int;
}

let split t ~shard ~pool =
  if shard < 0 || shard >= Array.length t then
    Error (Printf.sprintf "shard %d out of range (table has %d)" shard
             (Array.length t))
  else
    let { s_lo; s_hi; s_group } = t.(shard) in
    if s_hi - s_lo < 2 then Error "arc too narrow to split"
    else
      match free_groups t ~pool with
      | [] -> Error "no free replica group in the pool"
      | free ->
          let mid = s_lo + ((s_hi - s_lo) / 2) in
          let child = Ring.successor ~point:mid ~groups:free in
          let t' =
            Array.init
              (Array.length t + 1)
              (fun i ->
                if i < shard then t.(i)
                else if i = shard then { s_lo; s_hi = mid; s_group }
                else if i = shard + 1 then
                  { s_lo = mid; s_hi; s_group = child }
                else t.(i - 1))
          in
          Ok
            ( t',
              { sp_parent = s_group; sp_child = child; sp_lo = s_lo;
                sp_mid = mid; sp_hi = s_hi } )

type merge_info = {
  mg_survivor : int;
  mg_dissolved : int;
  mg_lo : int;
  mg_hi : int;
}

let merge t ~left =
  if left < 0 || left + 1 >= Array.length t then
    Error
      (Printf.sprintf "no adjacent pair at %d (table has %d shards)" left
         (Array.length t))
  else
    let a = t.(left) and b = t.(left + 1) in
    let t' =
      Array.init
        (Array.length t - 1)
        (fun i ->
          if i < left then t.(i)
          else if i = left then { s_lo = a.s_lo; s_hi = b.s_hi; s_group = a.s_group }
          else t.(i + 1))
    in
    Ok
      ( t',
        { mg_survivor = a.s_group; mg_dissolved = b.s_group; mg_lo = b.s_lo;
          mg_hi = b.s_hi } )

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> x = y) a b

let pp ppf t =
  Array.iteri
    (fun i s ->
      Format.fprintf ppf "%s[%x,%x)->g%d" (if i = 0 then "" else " ") s.s_lo
        s.s_hi s.s_group)
    t
