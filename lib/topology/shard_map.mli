(** The shard table: contiguous arcs of the hash ring, each owned by
    one replica group (DESIGN.md §15).

    A table is an immutable array of shards sorted by arc start,
    partitioning [\[0, Ring.space)]. Each shard is served by exactly one
    replica group out of a fixed pool of [pool] provisioned groups;
    groups not owning a shard are dormant (they still order multicasts,
    they just hold no keys). An object's home is one lookup:
    [home t key] hashes the key to a ring point and binary-searches the
    arc that contains it.

    [split] halves a shard's arc — the left half keeps the parent's
    group, the right half goes to a free group chosen by ring
    succession from the cut point — and [merge] re-joins two adjacent
    arcs under the left survivor's group, freeing the right group.
    Splitting a shard and then merging the resulting pair restores the
    original table exactly (the qcheck property test_topology pins),
    and either operation changes the home of precisely the keys whose
    points lie in the moved arc: minimal disruption.

    Tables are pure values: the epoch-versioned {!Heron_core.Placement}
    layer owns when a new table becomes visible. *)

type shard = { s_lo : int; s_hi : int; s_group : int }
(** Arc [\[s_lo, s_hi)] of ring points, owned by replica group
    [s_group]. *)

type t = shard array
(** Sorted by [s_lo]; arcs are adjacent and cover the whole ring. *)

val initial : shards:int -> pool:int -> t
(** The deployment-time table: [shards] near-equal arcs over a pool of
    [pool] replica groups, each arc's group chosen by ring succession
    from its start point among the still-free groups. A pure function
    of its arguments, so every replica and client computes the same
    epoch-0 table with no coordination. Raises [Invalid_argument]
    unless [1 <= shards <= pool]. *)

val count : t -> int
val arc : t -> int -> shard

val lookup : t -> int -> int
(** Index of the shard whose arc contains a ring point. *)

val home : t -> int -> int
(** The replica group serving a key: [arc t (lookup t (point_of_key
    key))].s_group — the one-lookup resolution the placement layer
    builds on. *)

val index_of_group : t -> int -> int option
(** The shard a group currently serves, if any (groups own at most one
    shard). *)

val free_groups : t -> pool:int -> int list
(** Groups of the pool not currently serving a shard, ascending. *)

type split_info = {
  sp_parent : int;  (** group keeping the left half *)
  sp_child : int;  (** freshly assigned group for the right half *)
  sp_lo : int;
  sp_mid : int;  (** the cut: keys with points in [\[sp_mid, sp_hi)] move *)
  sp_hi : int;
}

val split : t -> shard:int -> pool:int -> (t * split_info, string) result
(** Halve shard [shard]'s arc. Fails if the index is out of range, the
    arc is too narrow to cut, or no free group remains in the pool. *)

type merge_info = {
  mg_survivor : int;  (** the left shard's group, which absorbs the pair *)
  mg_dissolved : int;  (** the right shard's group, returned to the pool *)
  mg_lo : int;  (** keys with points in [\[mg_lo, mg_hi)] move *)
  mg_hi : int;
}

val merge : t -> left:int -> (t * merge_info, string) result
(** Join adjacent shards [left] and [left + 1] under the left group.
    Fails if [left + 1] is out of range (including single-shard
    tables). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
