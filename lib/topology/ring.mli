(** The logical hash ring shards and replica groups are placed on.

    Every deterministic placement decision in the elastic topology
    (DESIGN.md §15) reduces to arithmetic on this ring: keys hash to
    ring points, shards own contiguous arcs of points, and replica
    groups sit at fixed ring positions so a new shard's group is chosen
    by ring succession — the first free group at or after the arc's
    position, the HERD-style assignment rule. Everything here is a pure
    function of its arguments: replicas, clients and the directory all
    compute identical answers with no coordination. *)

val space : int
(** Number of ring positions; points are integers in [\[0, space)]. *)

val mix : int -> int
(** A Murmur-style avalanche mix yielding a non-negative OCaml int.
    Deterministic across platforms with 63-bit native ints; also reused
    as a cheap stateless jitter source. *)

val point_of_key : int -> int
(** Ring position of an object key (an {!Heron_core.Oid} as int — but
    this library stays below core, so plain ints). *)

val point_of_group : int -> int
(** Ring position of a replica group (salted differently from keys so
    group and key points are uncorrelated). *)

val successor : point:int -> groups:int list -> int
(** The group whose ring position is first at or after [point], walking
    clockwise with wrap-around — ring succession over the candidate
    set. Ties (equal distance) break toward the smaller group id.
    Raises [Invalid_argument] on an empty candidate list. *)
