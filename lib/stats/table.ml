type t = {
  table_title : string;
  headers : string list;
  mutable body : string list list; (* reversed *)
}

let make ~title ~headers = { table_title = title; headers; body = [] }

let add_row t row =
  let ncols = List.length t.headers in
  let nrow = List.length row in
  if nrow > ncols then invalid_arg "Table.add_row: too many cells";
  let padded = row @ List.init (ncols - nrow) (fun _ -> "") in
  t.body <- padded :: t.body

let title t = t.table_title
let rows t = List.rev t.body

let render t =
  let ncols = List.length t.headers in
  (* One pass per row: O(rows * cols) overall. *)
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun c cell -> widths.(c) <- max widths.(c) (String.length cell))
        row)
    (t.headers :: rows t);
  let render_row row =
    let cells =
      List.mapi (fun c cell -> Printf.sprintf "%-*s" widths.(c) cell) row
    in
    String.concat "  " cells
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.table_title ^ " ==\n");
  Buffer.add_string buf (render_row t.headers);
  Buffer.add_char buf '\n';
  let total = Array.fold_left ( + ) (2 * (ncols - 1)) widths in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

let print t = print_string (render t)
let cell_int n = string_of_int n
let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_us ns = Printf.sprintf "%.1f" (float_of_int ns /. 1_000.)
let cell_ms ns = Printf.sprintf "%.2f" (float_of_int ns /. 1_000_000.)
let cell_pct f = Printf.sprintf "%.1f%%" (f *. 100.)
