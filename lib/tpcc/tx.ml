open Heron_core

type order_line_input = { li_i : int; li_supply_w : int; li_qty : int }
[@@deriving show, eq]

type req =
  | New_order of {
      w : int;
      d : int;
      c : int;
      lines : order_line_input list;
      entry_d : int;
    }
  | Payment of {
      w : int;
      d : int;
      c_w : int;
      c_d : int;
      c : int;
      amount : int;
      date : int;
    }
  | Order_status of { w : int; d : int; c : int }
  | Delivery of { w : int; carrier : int; date : int }
  | Stock_level of { w : int; d : int; threshold : int }
[@@deriving show, eq]

type resp =
  | R_new_order of { o_id : int; total : int }
  | R_payment of { balance : int }
  | R_order_status of { o_id : int; ol_cnt : int; balance : int }
  | R_delivery of { delivered : int }
  | R_stock_level of { low_stock : int }
  | R_partial
[@@deriving show, eq]

let home_warehouse = function
  | New_order { w; _ }
  | Payment { w; _ }
  | Order_status { w; _ }
  | Delivery { w; _ }
  | Stock_level { w; _ } ->
      w

let is_multi_warehouse = function
  | New_order { w; lines; _ } -> List.exists (fun li -> li.li_supply_w <> w) lines
  | Payment { w; c_w; _ } -> c_w <> w
  | Order_status _ | Delivery _ | Stock_level _ -> false

let merge_responses resps =
  match List.filter (fun (_, r) -> r <> R_partial) resps with
  | (_, r) :: _ -> r
  | [] -> invalid_arg "Tx.merge_responses: no full response"

(* {1 Object id shorthands} *)

let district_oid w d = Oid_codec.(encode (District (w, d)))
let customer_oid w d c = Oid_codec.(encode (Customer (w, d, c)))
let warehouse_oid w = Oid_codec.(encode (Warehouse w))
let item_oid i = Oid_codec.(encode (Item i))
let stock_oid w i = Oid_codec.(encode (Stock (w, i)))
let order_oid w d o = Oid_codec.(encode (Order (w, d, o)))
let new_order_oid w d o = Oid_codec.(encode (New_order (w, d, o)))
let order_line_oid w d o n = Oid_codec.(encode (Order_line (w, d, o, n)))
let history_oid w d u = Oid_codec.(encode (History (w, d, u)))

(* {1 Read sets and plans} *)

let read_set = function
  | New_order { w; d; c; lines; _ } ->
      district_oid w d :: customer_oid w d c
      :: List.concat_map
           (fun li -> [ item_oid li.li_i; stock_oid li.li_supply_w li.li_i ])
           lines
  | Payment { w; d; c_w; c_d; c; _ } ->
      [ district_oid w d; warehouse_oid w; customer_oid c_w c_d c ]
  | Order_status { w; d; c } -> [ customer_oid w d c ]
  | Delivery { w; _ } -> [ district_oid w 1 ]
  | Stock_level { w; d; _ } -> [ district_oid w d ]

(* Partial execution: each partition prefetches only what it needs.
   The home partition of a NewOrder reads everything (including remote
   stock rows, one-sidedly); a supply-only partition reads just its own
   stock rows. *)
let read_plan ~part req =
  match req with
  | New_order { w; lines; _ } ->
      if part = w - 1 then read_set req
      else
        List.filter_map
          (fun li ->
            if li.li_supply_w - 1 = part then Some (stock_oid li.li_supply_w li.li_i)
            else None)
          lines
  | Payment { w; d; c_w; c_d; c; _ } ->
      (if part = w - 1 then [ district_oid w d; warehouse_oid w ] else [])
      @ if part = c_w - 1 then [ customer_oid c_w c_d c ] else []
  | Order_status _ | Delivery _ | Stock_level _ -> read_set req

let write_sketch = function
  | New_order { w; d; c; lines; _ } ->
      district_oid w d :: customer_oid w d c
      :: List.map (fun li -> stock_oid li.li_supply_w li.li_i) lines
  | Payment { w; d; c_w; c_d; c; _ } ->
      [ district_oid w d; customer_oid c_w c_d c ]
  | Order_status { w; d; c } -> [ customer_oid w d c ]
  | Delivery { w; _ } -> [ district_oid w 1 ]
  | Stock_level { w; d; _ } -> [ district_oid w d ]

let req_size = function
  | New_order { lines; _ } -> 40 + (12 * List.length lines)
  | Payment _ -> 56
  | Order_status _ -> 32
  | Delivery _ -> 32
  | Stock_level _ -> 32

let resp_size = function
  | R_new_order _ -> 24
  | R_payment _ -> 16
  | R_order_status _ -> 24
  | R_delivery _ -> 16
  | R_stock_level _ -> 16
  | R_partial -> 8

(* {1 Execution} *)

(* Per-row compute costs beyond (de)serialization, in ns. *)
let cost_row_op = 300
let cost_line = 400

let exec_new_order (ctx : App.ctx) ~w ~d ~c ~lines ~entry_d =
  let read = ctx.App.ctx_read and write = ctx.App.ctx_write in
  let charge = ctx.App.ctx_charge in
  (* Stock updates happen at whichever partition owns each stock row. *)
  List.iter
    (fun li ->
      let soid = stock_oid li.li_supply_w li.li_i in
      if ctx.App.ctx_is_local soid then begin
        let s = Schema.decode_stock (read soid) in
        let quantity =
          if s.Schema.s_quantity >= li.li_qty + 10 then s.Schema.s_quantity - li.li_qty
          else s.Schema.s_quantity - li.li_qty + 91
        in
        write soid
          (Schema.encode_stock
             {
               s with
               Schema.s_quantity = quantity;
               s_ytd = s.Schema.s_ytd + li.li_qty;
               s_order_cnt = s.Schema.s_order_cnt + 1;
               s_remote_cnt =
                 (s.Schema.s_remote_cnt + if li.li_supply_w <> w then 1 else 0);
             });
        charge cost_row_op
      end)
    lines;
  if not (ctx.App.ctx_is_local (district_oid w d)) then R_partial
  else begin
    let dist = Schema.decode_district (read (district_oid w d)) in
    let cust = Schema.decode_customer (read (customer_oid w d c)) in
    let o_id = dist.Schema.d_next_o_id in
    write (district_oid w d)
      (Schema.encode_district { dist with Schema.d_next_o_id = o_id + 1 });
    let all_local = List.for_all (fun li -> li.li_supply_w = w) lines in
    let ol_cnt = List.length lines in
    write (order_oid w d o_id)
      (Schema.encode_order
         {
           Schema.o_id;
           o_d_id = d;
           o_w_id = w;
           o_c_id = c;
           o_entry_d = entry_d;
           o_carrier_id = None;
           o_ol_cnt = ol_cnt;
           o_all_local = all_local;
         });
    write (new_order_oid w d o_id)
      (Schema.encode_new_order { Schema.no_o_id = o_id; no_d_id = d; no_w_id = w });
    charge (2 * cost_row_op);
    let total = ref 0 in
    List.iteri
      (fun idx li ->
        let item = Schema.decode_item (read (item_oid li.li_i)) in
        let stock = Schema.decode_stock (read (stock_oid li.li_supply_w li.li_i)) in
        let amount = item.Schema.i_price * li.li_qty in
        total := !total + amount;
        write
          (order_line_oid w d o_id (idx + 1))
          (Schema.encode_order_line
             {
               Schema.ol_o_id = o_id;
               ol_d_id = d;
               ol_w_id = w;
               ol_number = idx + 1;
               ol_i_id = li.li_i;
               ol_supply_w_id = li.li_supply_w;
               ol_delivery_d = None;
               ol_quantity = li.li_qty;
               ol_amount = amount;
               ol_dist_info = stock.Schema.s_dists.((d - 1) mod Array.length stock.Schema.s_dists);
             });
        charge cost_line)
      lines;
    write (customer_oid w d c)
      (Schema.encode_customer { cust with Schema.c_last_order = o_id });
    let wh = Schema.decode_warehouse (read (warehouse_oid w)) in
    let taxed =
      !total * (10_000 + wh.Schema.w_tax + dist.Schema.d_tax) / 10_000
      * (10_000 - cust.Schema.c_discount) / 10_000
    in
    R_new_order { o_id; total = taxed }
  end

let exec_payment (ctx : App.ctx) ~w ~d ~c_w ~c_d ~c ~amount ~date =
  let read = ctx.App.ctx_read and write = ctx.App.ctx_write in
  let charge = ctx.App.ctx_charge in
  if ctx.App.ctx_is_local (district_oid w d) then begin
    let dist = Schema.decode_district (read (district_oid w d)) in
    write (district_oid w d)
      (Schema.encode_district { dist with Schema.d_ytd = dist.Schema.d_ytd + amount });
    write
      (history_oid w d ctx.App.ctx_tmp.Heron_multicast.Tstamp.uid)
      (Schema.encode_history
         {
           Schema.h_c_id = c;
           h_c_d_id = c_d;
           h_c_w_id = c_w;
           h_d_id = d;
           h_w_id = w;
           h_date = date;
           h_amount = amount;
           h_data = "payment";
         });
    charge (2 * cost_row_op)
  end;
  if ctx.App.ctx_is_local (customer_oid c_w c_d c) then begin
    let cust = Schema.decode_customer (read (customer_oid c_w c_d c)) in
    let balance = cust.Schema.c_balance - amount in
    let c_data =
      if cust.Schema.c_credit = "BC" then
        let extra = Printf.sprintf "|%d-%d-%d-%d-%d" c c_d c_w d amount in
        let s = extra ^ cust.Schema.c_data in
        String.sub s 0 (min (String.length s) 300)
      else cust.Schema.c_data
    in
    write (customer_oid c_w c_d c)
      (Schema.encode_customer
         {
           cust with
           Schema.c_balance = balance;
           c_ytd_payment = cust.Schema.c_ytd_payment + amount;
           c_payment_cnt = cust.Schema.c_payment_cnt + 1;
           c_data;
         });
    charge cost_row_op;
    R_payment { balance }
  end
  else R_partial

let exec_order_status (ctx : App.ctx) ~w ~d ~c =
  let read = ctx.App.ctx_read in
  let cust = Schema.decode_customer (read (customer_oid w d c)) in
  let o_id = cust.Schema.c_last_order in
  if o_id = 0 then
    R_order_status { o_id = 0; ol_cnt = 0; balance = cust.Schema.c_balance }
  else begin
    let order = Schema.decode_order (read (order_oid w d o_id)) in
    for n = 1 to order.Schema.o_ol_cnt do
      ignore (Schema.decode_order_line (read (order_line_oid w d o_id n)));
      ctx.App.ctx_charge cost_row_op
    done;
    R_order_status
      { o_id; ol_cnt = order.Schema.o_ol_cnt; balance = cust.Schema.c_balance }
  end

let exec_delivery (ctx : App.ctx) ~scale ~w ~carrier ~date =
  let read = ctx.App.ctx_read and write = ctx.App.ctx_write in
  let delivered = ref 0 in
  for d = 1 to scale.Scale.districts do
    let dist = Schema.decode_district (read (district_oid w d)) in
    if dist.Schema.d_oldest_undelivered < dist.Schema.d_next_o_id then begin
      let o_id = dist.Schema.d_oldest_undelivered in
      let order = Schema.decode_order (read (order_oid w d o_id)) in
      let sum = ref 0 in
      for n = 1 to order.Schema.o_ol_cnt do
        let ol = Schema.decode_order_line (read (order_line_oid w d o_id n)) in
        sum := !sum + ol.Schema.ol_amount;
        write
          (order_line_oid w d o_id n)
          (Schema.encode_order_line { ol with Schema.ol_delivery_d = Some date });
        ctx.App.ctx_charge cost_row_op
      done;
      write (order_oid w d o_id)
        (Schema.encode_order { order with Schema.o_carrier_id = Some carrier });
      let cust = Schema.decode_customer (read (customer_oid w d order.Schema.o_c_id)) in
      write
        (customer_oid w d order.Schema.o_c_id)
        (Schema.encode_customer
           {
             cust with
             Schema.c_balance = cust.Schema.c_balance + !sum;
             c_delivery_cnt = cust.Schema.c_delivery_cnt + 1;
           });
      write (district_oid w d)
        (Schema.encode_district
           { dist with Schema.d_oldest_undelivered = o_id + 1 });
      ctx.App.ctx_charge (2 * cost_row_op);
      incr delivered
    end
  done;
  R_delivery { delivered = !delivered }

let exec_stock_level (ctx : App.ctx) ~w ~d ~threshold =
  let read = ctx.App.ctx_read in
  let dist = Schema.decode_district (read (district_oid w d)) in
  let next = dist.Schema.d_next_o_id in
  let first = max 1 (next - 20) in
  let items = Hashtbl.create 64 in
  for o = first to next - 1 do
    let order = Schema.decode_order (read (order_oid w d o)) in
    for n = 1 to order.Schema.o_ol_cnt do
      let ol = Schema.decode_order_line (read (order_line_oid w d o n)) in
      Hashtbl.replace items ol.Schema.ol_i_id ();
      ctx.App.ctx_charge cost_row_op
    done
  done;
  let low = ref 0 in
  Hashtbl.iter
    (fun i () ->
      let s = Schema.decode_stock (read (stock_oid w i)) in
      if s.Schema.s_quantity < threshold then incr low)
    items;
  R_stock_level { low_stock = !low }

let execute ~scale (ctx : App.ctx) req =
  match req with
  | New_order { w; d; c; lines; entry_d } -> exec_new_order ctx ~w ~d ~c ~lines ~entry_d
  | Payment { w; d; c_w; c_d; c; amount; date } ->
      exec_payment ctx ~w ~d ~c_w ~c_d ~c ~amount ~date
  | Order_status { w; d; c } -> exec_order_status ctx ~w ~d ~c
  | Delivery { w; carrier; date } -> exec_delivery ctx ~scale ~w ~carrier ~date
  | Stock_level { w; d; threshold } -> exec_stock_level ctx ~w ~d ~threshold

let app ~scale ~seed =
  Scale.validate scale;
  {
    App.app_name = "tpcc";
    placement_of =
      (fun oid ->
        match Oid_codec.home_warehouse oid with
        | None -> App.Replicated
        | Some w -> App.Partition (w - 1));
    klass_of =
      (fun oid ->
        if Oid_codec.is_registered oid then Versioned_store.Registered
        else Versioned_store.Local);
    read_set;
    read_plan;
    write_sketch;
    req_size;
    resp_size;
    execute = execute ~scale;
    serial_hint =
      (* Delivery and StockLevel follow index objects to rows chosen
         during execution, so their footprints cannot be derived from
         the sketches; under parallel execution they run alone. *)
      (function
       | Delivery _ | Stock_level _ -> true
       | New_order _ | Payment _ | Order_status _ -> false);
    read_only =
      (function
       | Order_status _ | Stock_level _ -> true
       | New_order _ | Payment _ | Delivery _ -> false);
    catalog = (fun () -> Gen.catalog ~scale ~seed);
  }
