open Heron_sim
open Heron_rdma
open Heron_core

type policy = {
  period_ns : int;
  imbalance_x100 : int;
  min_accesses : int;
  max_moves : int;
}

let default_policy =
  { period_ns = 1_000_000; imbalance_x100 = 150; min_accesses = 64; max_moves = 8 }

type t = {
  rb_policy : policy;
  rb_node : Fabric.node;
  mutable rb_stop : bool;
  mutable rb_rounds : int;
  mutable rb_moves : int;
}

let rounds t = t.rb_rounds
let moves t = t.rb_moves
let stop t = t.rb_stop <- true

(* Per-object demand over the last window: drain every live replica and
   take the per-object maximum — replicas of one partition see the same
   deliveries, and for a multi-partition request each destination counts
   the object once, so the maximum is one request's worth, not a sum
   over redundant observers. *)
let collect_counts sys =
  let tbl : (Oid.t, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun row ->
      Array.iter
        (fun r ->
          if Fabric.is_alive (Replica.node r) then
            List.iter
              (fun (oid, n) ->
                let prev = Option.value ~default:0 (Hashtbl.find_opt tbl oid) in
                if n > prev then Hashtbl.replace tbl oid n)
              (Replica.drain_access_counts r))
        row)
    (System.replicas sys);
  (* Deterministic order for everything downstream. *)
  List.sort
    (fun (o1, n1) (o2, n2) ->
      if n1 <> n2 then compare n2 n1 else compare (Oid.to_int o1) (Oid.to_int o2))
    (Hashtbl.fold (fun oid n acc -> (oid, n) :: acc) tbl [])

(* One load check; returns the objects to move (hottest first) and the
   destination, or None when balanced. *)
let plan sys policy counts ~gauge =
  let app = System.app sys in
  let partitions = (System.config sys).Config.partitions in
  let load = Array.make partitions 0 in
  let placed =
    List.filter_map
      (fun (oid, n) ->
        match Migration.current_partition sys oid with
        | Some p ->
            load.(p) <- load.(p) + n;
            (* Only registered, partition-placed objects can move. *)
            if app.App.klass_of oid = Versioned_store.Registered then
              Some (oid, n, p)
            else None
        | None -> None)
      counts
  in
  let total = Array.fold_left ( + ) 0 load in
  if total < policy.min_accesses then None
  else begin
    let hot = ref 0 and cold = ref 0 in
    Array.iteri
      (fun p l ->
        if l > load.(!hot) then hot := p;
        if l < load.(!cold) then cold := p)
      load;
    let avg = max 1 (total / partitions) in
    Heron_obs.Metrics.set_gauge gauge (100 * load.(!hot) / avg);
    if 100 * load.(!hot) / avg < policy.imbalance_x100 || !hot = !cold then None
    else begin
      (* Move at most enough load to bring the hot partition down to —
         and the cold one up to — the average. *)
      let budget = ref (min (load.(!hot) - avg) (avg - load.(!cold))) in
      let picked = ref [] in
      let n_picked = ref 0 in
      List.iter
        (fun (oid, n, p) ->
          if p = !hot && n > 0 && n <= !budget && !n_picked < policy.max_moves
          then begin
            picked := oid :: !picked;
            incr n_picked;
            budget := !budget - n
          end)
        placed;
      match List.rev !picked with [] -> None | oids -> Some (oids, !cold)
    end
  end

let start ?(policy = default_policy) sys =
  let node = System.new_client_node sys ~name:"rebalancer" in
  let t =
    { rb_policy = policy; rb_node = node; rb_stop = false; rb_rounds = 0;
      rb_moves = 0 }
  in
  let cfg = System.config sys in
  let gauge =
    Heron_obs.Metrics.gauge cfg.Config.metrics "reconfig.imbalance_x100"
  in
  if cfg.Config.reconfig.Config.enabled && cfg.Config.partitions > 1 then
    Fabric.spawn_on t.rb_node (fun () ->
        let rec loop () =
          Engine.sleep policy.period_ns;
          if not t.rb_stop then begin
            t.rb_rounds <- t.rb_rounds + 1;
            let counts = collect_counts sys in
            (match plan sys policy counts ~gauge with
            | None -> ()
            | Some (oids, dst) -> (
                match Migration.migrate sys ~from:t.rb_node ~oids ~dst with
                | Ok () -> t.rb_moves <- t.rb_moves + List.length oids
                | Error _ -> ()));
            loop ()
          end
        in
        loop ());
  t
