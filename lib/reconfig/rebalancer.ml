open Heron_sim
open Heron_rdma
open Heron_core
module Shard_map = Heron_topology.Shard_map

type policy = {
  period_ns : int;
  imbalance_x100 : int;
  min_accesses : int;
  max_moves : int;
  split_min_accesses : int;
  split_patience : int;
  merge_max_accesses : int;
  merge_patience : int;
}

let default_policy =
  { period_ns = 1_000_000; imbalance_x100 = 150; min_accesses = 64; max_moves = 8;
    split_min_accesses = 256; split_patience = 2; merge_max_accesses = 16;
    merge_patience = 8 }

type t = {
  rb_policy : policy;
  rb_node : Fabric.node;
  mutable rb_stop : bool;
  mutable rb_rounds : int;
  mutable rb_moves : int;
  mutable rb_splits : int;
  mutable rb_merges : int;
  mutable rb_hot_rounds : int;  (* consecutive saturated-with-no-relief rounds *)
  mutable rb_cold_rounds : int;  (* consecutive rounds with a cold adjacent pair *)
}

let rounds t = t.rb_rounds
let moves t = t.rb_moves
let splits t = t.rb_splits
let merges t = t.rb_merges
let stop t = t.rb_stop <- true

(* Per-object demand over the last window: drain every live replica and
   take the per-object maximum — replicas of one partition see the same
   deliveries, and for a multi-partition request each destination counts
   the object once, so the maximum is one request's worth, not a sum
   over redundant observers. *)
let collect_counts sys =
  let tbl : (Oid.t, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun row ->
      Array.iter
        (fun r ->
          if Fabric.is_alive (Replica.node r) then
            List.iter
              (fun (oid, n) ->
                let prev = Option.value ~default:0 (Hashtbl.find_opt tbl oid) in
                if n > prev then Hashtbl.replace tbl oid n)
              (Replica.drain_access_counts r))
        row)
    (System.replicas sys);
  (* Deterministic order for everything downstream. *)
  List.sort
    (fun (o1, n1) (o2, n2) ->
      if n1 <> n2 then compare n2 n1 else compare (Oid.to_int o1) (Oid.to_int o2))
    (Hashtbl.fold (fun oid n acc -> (oid, n) :: acc) tbl [])

(* One load check; returns the objects to move (hottest first) and the
   destination, or None when balanced. *)
let plan sys policy counts ~gauge =
  let app = System.app sys in
  let partitions = (System.config sys).Config.partitions in
  let load = Array.make partitions 0 in
  let placed =
    List.filter_map
      (fun (oid, n) ->
        match Migration.current_partition sys oid with
        | Some p ->
            load.(p) <- load.(p) + n;
            (* Only registered, partition-placed objects can move. *)
            if app.App.klass_of oid = Versioned_store.Registered then
              Some (oid, n, p)
            else None
        | None -> None)
      counts
  in
  let total = Array.fold_left ( + ) 0 load in
  if total < policy.min_accesses then None
  else begin
    let hot = ref 0 and cold = ref 0 in
    Array.iteri
      (fun p l ->
        if l > load.(!hot) then hot := p;
        if l < load.(!cold) then cold := p)
      load;
    let avg = max 1 (total / partitions) in
    Heron_obs.Metrics.set_gauge gauge (100 * load.(!hot) / avg);
    if 100 * load.(!hot) / avg < policy.imbalance_x100 || !hot = !cold then None
    else begin
      (* Move at most enough load to bring the hot partition down to —
         and the cold one up to — the average. *)
      let budget = ref (min (load.(!hot) - avg) (avg - load.(!cold))) in
      let picked = ref [] in
      let n_picked = ref 0 in
      List.iter
        (fun (oid, n, p) ->
          if p = !hot && n > 0 && n <= !budget && !n_picked < policy.max_moves
          then begin
            picked := oid :: !picked;
            incr n_picked;
            budget := !budget - n
          end)
        placed;
      match List.rev !picked with [] -> None | oids -> Some (oids, !cold)
    end
  end

(* Tier 2/3 (DESIGN.md §15): when moving objects cannot relieve a
   saturated group — every key it serves is hot, or tier 1 found
   nothing to move — split its shard so half the arc lands on a fresh
   group from the pool; when an adjacent pair of shards stays cold,
   merge them and return a group. Hysteresis lives in the thresholds
   ([split_min_accesses] well above [merge_max_accesses]) and the
   patience counters, so one burst never thrashes split-then-merge. *)
let topology_step t sys counts ~relieved =
  let cfg = System.config sys in
  if cfg.Config.topology.Config.topo_enabled then
    match Placement.shards (System.directory sys) with
    | None -> ()
    | Some sm ->
        let policy = t.rb_policy in
        let partitions = cfg.Config.partitions in
        let load = Array.make partitions 0 in
        List.iter
          (fun (oid, n) ->
            match Migration.current_partition sys oid with
            | Some p -> load.(p) <- load.(p) + n
            | None -> ())
          counts;
        (* Tier 2: split the hottest serving group's shard. *)
        let hot = ref None in
        Array.iter
          (fun s ->
            let g = s.Shard_map.s_group in
            match !hot with
            | Some (_, l) when l >= load.(g) -> ()
            | _ -> hot := Some (g, load.(g)))
          sm;
        (match !hot with
        | Some (g, l)
          when l >= policy.split_min_accesses && (not relieved)
               && Shard_map.free_groups sm ~pool:partitions <> [] ->
            t.rb_hot_rounds <- t.rb_hot_rounds + 1;
            if t.rb_hot_rounds >= policy.split_patience then begin
              t.rb_hot_rounds <- 0;
              match Shard_map.index_of_group sm g with
              | Some shard -> (
                  match Elastic.split sys ~from:t.rb_node ~shard with
                  | Ok _ -> t.rb_splits <- t.rb_splits + 1
                  | Error _ -> ())
              | None -> ()
            end
        | _ -> t.rb_hot_rounds <- 0);
        (* Tier 3: merge the coldest adjacent pair. Requires some signal
           in the window — an idle warmup should not collapse the
           deployment-time table one epoch at a time. *)
        let total = Array.fold_left ( + ) 0 load in
        if Shard_map.count sm >= 2 && total > 0 then begin
          let best = ref None in
          for i = 0 to Shard_map.count sm - 2 do
            let a = (Shard_map.arc sm i).Shard_map.s_group in
            let b = (Shard_map.arc sm (i + 1)).Shard_map.s_group in
            let l = load.(a) + load.(b) in
            match !best with
            | Some (_, bl) when bl <= l -> ()
            | _ -> best := Some (i, l)
          done;
          match !best with
          | Some (i, l) when l <= policy.merge_max_accesses ->
              t.rb_cold_rounds <- t.rb_cold_rounds + 1;
              if t.rb_cold_rounds >= policy.merge_patience then begin
                t.rb_cold_rounds <- 0;
                match Elastic.merge sys ~from:t.rb_node ~left:i with
                | Ok _ -> t.rb_merges <- t.rb_merges + 1
                | Error _ -> ()
              end
          | _ -> t.rb_cold_rounds <- 0
        end
        else t.rb_cold_rounds <- 0

let start ?(policy = default_policy) sys =
  let node = System.new_client_node sys ~name:"rebalancer" in
  let t =
    { rb_policy = policy; rb_node = node; rb_stop = false; rb_rounds = 0;
      rb_moves = 0; rb_splits = 0; rb_merges = 0; rb_hot_rounds = 0;
      rb_cold_rounds = 0 }
  in
  let cfg = System.config sys in
  let gauge =
    Heron_obs.Metrics.gauge cfg.Config.metrics "reconfig.imbalance_x100"
  in
  if cfg.Config.reconfig.Config.enabled && cfg.Config.partitions > 1 then
    Fabric.spawn_on t.rb_node (fun () ->
        let rec loop () =
          Engine.sleep policy.period_ns;
          if not t.rb_stop then begin
            t.rb_rounds <- t.rb_rounds + 1;
            let counts = collect_counts sys in
            let relieved =
              match plan sys policy counts ~gauge with
              | None -> false
              | Some (oids, dst) -> (
                  match Migration.migrate sys ~from:t.rb_node ~oids ~dst with
                  | Ok () ->
                      t.rb_moves <- t.rb_moves + List.length oids;
                      true
                  | Error _ -> false)
            in
            topology_step t sys counts ~relieved;
            loop ()
          end
        in
        loop ());
  t
