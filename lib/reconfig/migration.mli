(** Online object migration (DESIGN.md §10, migration layer).

    [migrate] moves a batch of registered objects from their current
    partition to another while the system serves requests: it multicasts
    a [Replica.Migrate] command through the ordinary atomic multicast to
    {e every} partition — so any concurrent request shares a relative
    delivery order with the migration at all of its destinations and the
    keep-or-redirect routing decision is uniform — waits for each
    partition to acknowledge, and then commits the move to the
    deployment's placement directory. Requests ordered before the
    migration execute under the old placement; requests routed under a
    stale view after it are redirected and retried by the client.

    Migrations are serialized through the directory's exclusive slot:
    a second concurrent [migrate] returns [Error] instead of queueing.

    Must be called from a fiber on a client node (it blocks on the
    per-partition acknowledgements). *)

open Heron_core

val current_partition : ('req, 'resp) System.t -> Oid.t -> int option
(** The partition an object is currently homed at: the directory's
    override if it ever migrated, its static placement otherwise;
    [None] for replicated objects (they never migrate). *)

val migrate :
  ('req, 'resp) System.t ->
  from:Heron_rdma.Fabric.node ->
  oids:Oid.t list ->
  dst:int ->
  (unit, string) result
(** Move [oids] — registered, partition-placed objects all currently
    homed at one common source partition — to [dst]. Blocks until every
    partition acknowledged the command and the directory committed the
    new epoch. [Error] (with a reason) if reconfiguration is disabled,
    the batch is empty or heterogeneous, [dst] is out of range or equal
    to the source, no live source replica holds the objects, or another
    migration is in flight. *)
