(** Shard split and merge orchestration (DESIGN.md §15).

    A split carves a shard's arc in two: the left half stays with the
    parent replica group, the right half goes to a dormant group of the
    pool chosen by ring succession from the cut point. A merge is the
    inverse: two adjacent arcs re-join under the left group and the
    right group returns to the pool. Both are ordered through the
    atomic multicast as [Replica.Migrate] commands carrying the full
    replacement shard table — so the Phase-2 barrier freezes the moved
    keys at a single point of the total order, the destination group
    bootstraps their dual-version cells through the state-sync fetch
    path, and every replica installs the new epoch at the same position
    of the delivery order. Clients on the old table chase redirects
    exactly as for a §10 object migration.

    Operations serialize with migrations through the directory's
    exclusive slot; a concurrent call returns [Error] instead of
    queueing. Must be called from a fiber on a client node (they block
    on per-partition acknowledgements).

    Metrics: [topology.splits], [topology.merges] (counters),
    [topology.shards] (gauge), [topology.objects_moved]. With
    [Config.reqtrace] set, each operation is one trace ([op=split] or
    [op=merge]) with replica-side [reshard.freeze] /
    [reshard.bootstrap] spans and an orchestrator [split.commit] /
    [merge.commit] span. *)

open Heron_core

type outcome = {
  el_epoch : int;  (** placement epoch the operation installed *)
  el_src : int;  (** group the carved keys left *)
  el_dst : int;  (** group the carved keys joined *)
  el_moved : int;  (** catalog objects whose home changed *)
}

val split :
  ('req, 'resp) System.t ->
  from:Heron_rdma.Fabric.node ->
  shard:int ->
  (outcome, string) result
(** Halve shard [shard] (an index into the committed table). [Error]
    if the topology is disabled, the index is out of range, the arc is
    too narrow, no free group remains in the pool, or another
    reconfiguration holds the exclusive slot. *)

val merge :
  ('req, 'resp) System.t ->
  from:Heron_rdma.Fabric.node ->
  left:int ->
  (outcome, string) result
(** Join shards [left] and [left + 1] under the left group. [Error] if
    the topology is disabled, there is no adjacent pair at [left], or
    another reconfiguration holds the exclusive slot. *)
