open Heron_sim
open Heron_rdma
open Heron_multicast
open Heron_core

(* Resolution order mirrors [Placement.placement_under]: a per-object
   override wins, then the committed shard table (elastic topology),
   then the static oracle. *)
let current_partition sys oid =
  match (System.app sys).App.placement_of oid with
  | App.Replicated -> None
  | App.Partition p -> (
      let dir = System.directory sys in
      match Placement.lookup dir oid with
      | Some p' -> Some p'
      | None -> (
          match Placement.shards dir with
          | Some sm ->
              Some (Heron_topology.Shard_map.home sm (Oid.to_int oid))
          | None -> Some p))

(* Cell capacity of each object, read off a live source replica's store
   (the cell layout is [32 + 2*cap] bytes). *)
let caps_from_source sys ~src oids =
  let replicas = System.replicas sys in
  let rec pick i =
    if i >= Array.length replicas.(src) then None
    else
      let r = replicas.(src).(i) in
      if
        Fabric.is_alive (Replica.node r)
        && List.for_all (fun oid -> Versioned_store.mem (Replica.store r) oid) oids
      then Some r
      else pick (i + 1)
  in
  match pick 0 with
  | None -> None
  | Some r ->
      Some
        (List.map
           (fun oid ->
             (oid, (Versioned_store.cell_len (Replica.store r) oid - 32) / 2))
           oids)

let validate sys ~oids ~dst =
  let cfg = System.config sys in
  let app = System.app sys in
  if not cfg.Config.reconfig.Config.enabled then
    Error "reconfiguration is disabled (Config.reconfig)"
  else if oids = [] then Error "empty migration batch"
  else if dst < 0 || dst >= cfg.Config.partitions then
    Error (Printf.sprintf "destination partition %d out of range" dst)
  else if
    List.exists (fun oid -> app.App.klass_of oid <> Versioned_store.Registered) oids
  then Error "only Registered objects can migrate"
  else
    let homes = List.map (current_partition sys) oids in
    match homes with
    | Some src :: rest ->
        if List.exists (fun h -> h <> Some src) rest then
          Error "migration batch spans several source partitions"
        else if src = dst then Error "source and destination coincide"
        else Ok src
    | _ -> Error "replicated objects cannot migrate"

let migrate sys ~from ~oids ~dst =
  match validate sys ~oids ~dst with
  | Error _ as e -> e
  | Ok src -> (
      let dir = System.directory sys in
      if not (Placement.begin_exclusive dir) then
        Error "another migration is in flight"
      else
        Fun.protect
          ~finally:(fun () -> Placement.end_exclusive dir)
          (fun () ->
            match caps_from_source sys ~src oids with
            | None -> Error "no live source replica holds the batch"
            | Some oids_caps ->
                let cfg = System.config sys in
                let parts = List.init cfg.Config.partitions Fun.id in
                let acks = List.map (fun p -> (p, Ivar.create ())) parts in
                let epoch = Placement.epoch dir + 1 in
                let mg =
                  {
                    Replica.mg_epoch = epoch;
                    mg_src = src;
                    mg_dst = dst;
                    mg_oids = oids_caps;
                    mg_shards = None;
                    mg_client_node = from;
                    mg_trace = 0;
                    mg_parent = 0;
                    mg_done =
                      (fun ~part ->
                        match List.assoc_opt part acks with
                        | Some iv -> ignore (Ivar.try_fill iv ())
                        | None -> ());
                  }
                in
                ignore
                  (Ramcast.multicast (System.multicast sys) ~from ~dst:parts
                     (Replica.Migrate mg));
                List.iter (fun (_, iv) -> Ivar.read iv) acks;
                Placement.commit dir ~epoch
                  ~moves:(List.map (fun oid -> (oid, dst)) oids);
                let reg = cfg.Config.metrics in
                Heron_obs.Metrics.incr
                  (Heron_obs.Metrics.counter reg "reconfig.migrations");
                Heron_obs.Metrics.add
                  (Heron_obs.Metrics.counter reg "reconfig.objects_moved")
                  (List.length oids);
                Ok ()))
