open Heron_sim
open Heron_multicast
open Heron_core
module Ring = Heron_topology.Ring
module Shard_map = Heron_topology.Shard_map

type outcome = {
  el_epoch : int;  (** placement epoch the operation installed *)
  el_src : int;  (** group the carved keys left *)
  el_dst : int;  (** group the carved keys joined *)
  el_moved : int;  (** catalog objects whose home changed *)
}

let shard_table sys =
  let cfg = System.config sys in
  if not cfg.Config.topology.Config.topo_enabled then
    Error "elastic topology is disabled (Config.topology)"
  else
    match Placement.shards (System.directory sys) with
    | Some sm -> Ok sm
    | None -> Error "no shard table committed (directory predates topology)"

(* The catalog objects a table change re-homes: registered,
   partition-placed, not pinned elsewhere by a per-object override, and
   hashing into the moved arc [lo, hi). Hash-in-arc plus no-override
   implies the object is currently homed at the arc's old group, so
   this is exactly the set the destination must bootstrap. Enumerated
   from the catalog (every object enters the system through it), in oid
   order, so any orchestrator computes the same list. *)
let moved_objects sys ~lo ~hi =
  let app = System.app sys in
  let dir = System.directory sys in
  List.filter_map
    (fun spec ->
      match (spec.App.spec_klass, spec.App.spec_placement) with
      | Versioned_store.Registered, App.Partition _
        when Placement.lookup dir spec.App.spec_oid = None ->
          let p = Ring.point_of_key (Oid.to_int spec.App.spec_oid) in
          if lo <= p && p < hi then Some (spec.App.spec_oid, spec.App.spec_cap)
          else None
      | _ -> None)
    (List.sort
       (fun a b -> compare (Oid.to_int a.App.spec_oid) (Oid.to_int b.App.spec_oid))
       (app.App.catalog ()))

(* Order the table change through the total order and commit it: the
   same Migrate machinery as a §10 object migration, with the full
   replacement table riding in [mg_shards] and the carved keys in
   [mg_oids]. Every partition delivers it, the Phase-2 barrier freezes
   the parent at the cut, the destination group bootstraps the carved
   cells via the state-sync fetch path, and each replica installs the
   table at the command's position in the delivery order. Stale clients
   chase redirects exactly as for a migration. *)
let run_reshard sys ~from ~op ~table ~src ~dst ~moved =
  let dir = System.directory sys in
  if not (Placement.begin_exclusive dir) then
    Error "another reconfiguration is in flight"
  else
    Fun.protect
      ~finally:(fun () -> Placement.end_exclusive dir)
      (fun () ->
        let cfg = System.config sys in
        let reg = cfg.Config.metrics in
        let col = cfg.Config.reqtrace in
        let t0 = Engine.now (System.engine sys) in
        let trace, parent =
          match col with
          | None -> (0, 0)
          | Some col ->
              Heron_obs.Reqtrace.start_trace col
                ~attrs:
                  [ ("op", op);
                    ("src", string_of_int src);
                    ("dst", string_of_int dst) ]
                ~now:t0 ()
        in
        let parts = List.init cfg.Config.partitions Fun.id in
        let acks = List.map (fun p -> (p, Ivar.create ())) parts in
        let epoch = Placement.epoch dir + 1 in
        let mg =
          {
            Replica.mg_epoch = epoch;
            mg_src = src;
            mg_dst = dst;
            mg_oids = moved;
            mg_shards = Some table;
            mg_client_node = from;
            mg_done =
              (fun ~part ->
                match List.assoc_opt part acks with
                | Some iv -> ignore (Ivar.try_fill iv ())
                | None -> ());
            mg_trace = trace;
            mg_parent = parent;
          }
        in
        ignore
          (Ramcast.multicast (System.multicast sys) ~from ~dst:parts
             (Replica.Migrate mg));
        List.iter (fun (_, iv) -> Ivar.read iv) acks;
        Placement.commit ~shards:table dir ~epoch ~moves:[];
        Heron_obs.Metrics.incr
          (Heron_obs.Metrics.counter reg (Printf.sprintf "topology.%ss" op));
        Heron_obs.Metrics.set_gauge
          (Heron_obs.Metrics.gauge reg "topology.shards")
          (Shard_map.count table);
        Heron_obs.Metrics.add
          (Heron_obs.Metrics.counter reg "topology.objects_moved")
          (List.length moved);
        (match col with
        | Some col when trace <> 0 ->
            let now = Engine.now (System.engine sys) in
            ignore
              (Heron_obs.Reqtrace.add_span col ~trace ~parent
                 ~stage:(op ^ ".commit")
                 ~attrs:[ ("epoch", string_of_int epoch) ]
                 ~start:t0 now);
            Heron_obs.Reqtrace.finish col ~trace ~now
        | _ -> ());
        Ok { el_epoch = epoch; el_src = src; el_dst = dst;
             el_moved = List.length moved })

let split sys ~from ~shard =
  match shard_table sys with
  | Error _ as e -> e
  | Ok sm -> (
      let cfg = System.config sys in
      match Shard_map.split sm ~shard ~pool:cfg.Config.partitions with
      | Error e -> Error ("split: " ^ e)
      | Ok (sm', info) ->
          let moved =
            moved_objects sys ~lo:info.Shard_map.sp_mid ~hi:info.Shard_map.sp_hi
          in
          run_reshard sys ~from ~op:"split" ~table:sm'
            ~src:info.Shard_map.sp_parent ~dst:info.Shard_map.sp_child ~moved)

let merge sys ~from ~left =
  match shard_table sys with
  | Error _ as e -> e
  | Ok sm -> (
      match Shard_map.merge sm ~left with
      | Error e -> Error ("merge: " ^ e)
      | Ok (sm', info) ->
          let moved =
            moved_objects sys ~lo:info.Shard_map.mg_lo ~hi:info.Shard_map.mg_hi
          in
          run_reshard sys ~from ~op:"merge" ~table:sm'
            ~src:info.Shard_map.mg_dissolved ~dst:info.Shard_map.mg_survivor
            ~moved)
