(** Load-driven rebalancer (DESIGN.md §10, policy layer).

    A policy fiber that periodically drains the replicas' per-object
    access counters, computes per-partition load under the current
    placement, and — when the hottest partition's load exceeds the
    average by the configured factor — migrates the hottest objects,
    greedily, to the coldest partition. Each round moves at most enough
    load to bring the hottest partition down to (and the coldest up to)
    the average, so a concentrated hotspot spreads over a few rounds
    instead of sloshing between two partitions.

    The imbalance it observes is published as the
    [reconfig.imbalance_x100] gauge (100 = perfectly balanced). *)

open Heron_core

type policy = {
  period_ns : int;  (** time between load checks *)
  imbalance_x100 : int;
      (** trigger threshold: migrate when [100 * max/avg] exceeds this *)
  min_accesses : int;
      (** ignore windows with fewer total accesses (no signal) *)
  max_moves : int;  (** objects migrated per round at most *)
}

val default_policy : policy
(** 1 ms period, trigger at 150 (hottest 1.5x the average), 64 minimum
    accesses, 8 moves per round. *)

type t

val start : ?policy:policy -> ('req, 'resp) System.t -> t
(** Spawn the policy fiber on its own client node. Requires
    [Config.reconfig.enabled] and at least two partitions (otherwise the
    fiber exits immediately). *)

val stop : t -> unit
(** The fiber exits at its next wakeup; in-flight migrations finish. *)

val rounds : t -> int
(** Load checks performed so far. *)

val moves : t -> int
(** Objects migrated so far. *)
