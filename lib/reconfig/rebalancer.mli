(** Load-driven rebalancer (DESIGN.md §10 tier 1, §15 tiers 2-3).

    A policy fiber that periodically drains the replicas' per-object
    access counters, computes per-partition load under the current
    placement, and — when the hottest partition's load exceeds the
    average by the configured factor — migrates the hottest objects,
    greedily, to the coldest partition. Each round moves at most enough
    load to bring the hottest partition down to (and the coldest up to)
    the average, so a concentrated hotspot spreads over a few rounds
    instead of sloshing between two partitions.

    With the elastic topology enabled two more tiers engage: when a
    replica group stays saturated ([split_min_accesses]) and object
    moves bring no relief for [split_patience] consecutive rounds, its
    shard is split onto a dormant group of the pool; when the coldest
    adjacent shard pair stays under [merge_max_accesses] for
    [merge_patience] rounds, the pair merges and a group returns to the
    pool. The split threshold sits well above the merge one, so a
    workload shift never thrashes split-then-merge.

    The imbalance it observes is published as the
    [reconfig.imbalance_x100] gauge (100 = perfectly balanced). *)

open Heron_core

type policy = {
  period_ns : int;  (** time between load checks *)
  imbalance_x100 : int;
      (** trigger threshold: migrate when [100 * max/avg] exceeds this *)
  min_accesses : int;
      (** ignore windows with fewer total accesses (no signal) *)
  max_moves : int;  (** objects migrated per round at most *)
  split_min_accesses : int;
      (** tier 2: a serving group at or above this per-window load is
          saturated — a candidate for splitting its shard *)
  split_patience : int;
      (** consecutive saturated rounds without tier-1 relief before the
          split fires *)
  merge_max_accesses : int;
      (** tier 3: an adjacent shard pair at or below this combined
          per-window load is cold — a candidate for merging *)
  merge_patience : int;
      (** consecutive cold rounds before the merge fires *)
}

val default_policy : policy
(** 1 ms period, trigger at 150 (hottest 1.5x the average), 64 minimum
    accesses, 8 moves per round; split at 256 accesses after 2 rounds,
    merge under 16 after 8 rounds. *)

type t

val start : ?policy:policy -> ('req, 'resp) System.t -> t
(** Spawn the policy fiber on its own client node. Requires
    [Config.reconfig.enabled] and at least two partitions (otherwise the
    fiber exits immediately). *)

val stop : t -> unit
(** The fiber exits at its next wakeup; in-flight migrations finish. *)

val rounds : t -> int
(** Load checks performed so far. *)

val moves : t -> int
(** Objects migrated so far. *)

val splits : t -> int
(** Shard splits performed so far (elastic topology only). *)

val merges : t -> int
(** Shard merges performed so far (elastic topology only). *)
