exception Cancelled

type token = { mutable cancelled : bool }

type event = { at : Time_ns.t; seq : int; run : unit -> unit }

let event_cmp a b =
  match compare a.at b.at with 0 -> compare a.seq b.seq | c -> c

type t = {
  mutable clock : Time_ns.t;
  mutable seq : int;
  mutable fibers : int;
  queue : event Prio_queue.t;
  prng : Random.State.t;
}

type _ Effect.t +=
  | Sleep : Time_ns.t -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Now : Time_ns.t Effect.t

let create ?(seed = 42) () =
  {
    clock = 0;
    seq = 0;
    fibers = 0;
    queue = Prio_queue.create ~cmp:event_cmp;
    prng = Random.State.make [| seed; 0x4845524f (* "HERO" *) |];
  }

let now t = t.clock
let rng t = t.prng
let new_token (_ : t) = { cancelled = false }
let cancel tok = tok.cancelled <- true
let is_cancelled tok = tok.cancelled
let pending_events t = Prio_queue.length t.queue
let live_fibers t = t.fibers

let schedule ?(delay = 0) t run =
  let delay = max 0 delay in
  t.seq <- t.seq + 1;
  Prio_queue.push t.queue { at = t.clock + delay; seq = t.seq; run }

let spawn ?token ?name t f =
  let tok = match token with Some tok -> tok | None -> { cancelled = false } in
  t.fibers <- t.fibers + 1;
  let open Effect.Deep in
  (* Resume a parked continuation, honouring cancellation: a fiber whose
     token fired is discontinued so its stack unwinds cleanly. *)
  let resume : (unit, unit) continuation -> unit =
   fun k -> if tok.cancelled then discontinue k Cancelled else continue k ()
  in
  let handler =
    {
      retc = (fun () -> t.fibers <- t.fibers - 1);
      exnc =
        (fun e ->
          t.fibers <- t.fibers - 1;
          match e with
          | Cancelled -> ()
          | e ->
              (* The raise below unwinds through the event loop, losing
                 the raise site; print it here (where the backtrace is
                 still intact) when tracing is requested. *)
              if Sys.getenv_opt "HERON_FIBER_TRACE" <> None then
                Printf.eprintf "fiber %s died: %s\n%s\n%!"
                  (match name with Some n -> n | None -> "(unnamed)")
                  (Printexc.to_string e)
                  (Printexc.get_backtrace ());
              raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep d ->
              Some
                (fun (k : (a, _) continuation) ->
                  schedule ~delay:(max 0 d) t (fun () -> resume k))
          | Suspend register ->
              Some
                (fun (k : (a, _) continuation) ->
                  let fired = ref false in
                  let wake () =
                    if not !fired then begin
                      fired := true;
                      schedule t (fun () -> resume k)
                    end
                  in
                  register wake)
          | Now -> Some (fun (k : (a, _) continuation) -> continue k t.clock)
          | _ -> None);
    }
  in
  schedule t (fun () ->
      if tok.cancelled then t.fibers <- t.fibers - 1
      else match_with f () handler)

let step t =
  match Prio_queue.pop t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.at;
      ev.run ();
      true

let run t = while step t do () done

let run_until t horizon =
  let rec loop () =
    match Prio_queue.peek t.queue with
    | Some ev when ev.at <= horizon ->
        ignore (step t);
        loop ()
    | Some _ | None -> t.clock <- horizon
  in
  loop ()

let run_for t d = run_until t (t.clock + d)
let sleep d = Effect.perform (Sleep d)
let consume d = Effect.perform (Sleep d)
let suspend register = Effect.perform (Suspend register)
let self_now () = Effect.perform Now
