(** Lightweight span recording for simulated processes.

    A trace is a bounded buffer of named time spans with attributes.
    Components record what they spent virtual time on (a replica's
    ordering wait, coordination phases, execution, a state transfer);
    tests assert on the spans and humans read the rendered timeline.
    Recording is cheap and allocation-light so tracers can stay attached
    during benchmarks. *)

type span = {
  sp_name : string;
  sp_start : Time_ns.t;
  sp_end : Time_ns.t;  (** must be >= [sp_start] *)
  sp_attrs : (string * string) list;
}

type t

val create : ?capacity:int -> unit -> t
(** A trace keeping the most recent [capacity] (default 4096) spans. *)

val add : t -> span -> unit
(** Record a span; the oldest span is dropped when full. *)

val record : t -> name:string -> ?attrs:(string * string) list -> start:Time_ns.t -> Time_ns.t -> unit
(** [record t ~name ~start stop] is [add] without building the record
    by hand. *)

val spans : t -> span list
(** Retained spans, oldest first. *)

val clear : t -> unit

val dropped : t -> int
(** Spans lost to the capacity bound. *)

val render_timeline : ?width:int -> t -> string
(** An ASCII timeline: one line per span, bars proportional to duration
    and aligned on the trace's time range, [width] columns of bar area
    (default 60). Rows are ordered by (start, end, name) — stable across
    recording interleavings — and an instantaneous span renders as a
    ["+"] tick (clamped inside the bar area) rather than vanishing.
    Spans lost to the capacity wrap are reported in a trailing line so a
    wrapped trace never reads as complete. Returns [""] for an empty
    trace. *)
