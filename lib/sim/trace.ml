type span = {
  sp_name : string;
  sp_start : Time_ns.t;
  sp_end : Time_ns.t;
  sp_attrs : (string * string) list;
}

type t = {
  capacity : int;
  buf : span option array;
  mutable next : int;  (* insertion cursor *)
  mutable count : int;  (* total spans ever added *)
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; buf = Array.make capacity None; next = 0; count = 0 }

let add t span =
  if span.sp_end < span.sp_start then invalid_arg "Trace.add: span ends before it starts";
  t.buf.(t.next) <- Some span;
  t.next <- (t.next + 1) mod t.capacity;
  t.count <- t.count + 1

let record t ~name ?(attrs = []) ~start stop =
  add t { sp_name = name; sp_start = start; sp_end = stop; sp_attrs = attrs }

let spans t =
  let n = min t.count t.capacity in
  let first = if t.count <= t.capacity then 0 else t.next in
  List.init n (fun i ->
      match t.buf.((first + i) mod t.capacity) with
      | Some s -> s
      | None -> assert false)

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.count <- 0

let dropped t = max 0 (t.count - t.capacity)

let render_timeline ?(width = 60) t =
  match spans t with
  | [] -> ""
  | unsorted ->
      (* Deterministic row order regardless of recording interleaving:
         by start, then end, then name (stable, so full ties keep
         insertion order). *)
      let all =
        List.stable_sort
          (fun a b ->
            compare
              (a.sp_start, a.sp_end, a.sp_name)
              (b.sp_start, b.sp_end, b.sp_name))
          unsorted
      in
      let t0 = List.fold_left (fun acc s -> min acc s.sp_start) max_int all in
      let t1 = List.fold_left (fun acc s -> max acc s.sp_end) min_int all in
      let range = max 1 (t1 - t0) in
      let name_w =
        List.fold_left (fun acc s -> max acc (String.length s.sp_name)) 0 all
      in
      let buf = Buffer.create 1024 in
      List.iter
        (fun s ->
          (* Clamp so every span occupies at least one cell — in
             particular an instantaneous span at the window's right
             edge, whose unclamped lead equals [width]. *)
          let lead = min (width - 1) ((s.sp_start - t0) * width / range) in
          let len = max 1 ((s.sp_end - s.sp_start) * width / range) in
          let len = min len (width - lead) in
          Buffer.add_string buf (Printf.sprintf "%-*s |" name_w s.sp_name);
          Buffer.add_string buf (String.make lead ' ');
          Buffer.add_string buf
            (if s.sp_end = s.sp_start then "+" else String.make len '#');
          Buffer.add_string buf (String.make (max 0 (width - lead - len)) ' ');
          Buffer.add_string buf
            (Printf.sprintf "| %s" (Format.asprintf "%a" Time_ns.pp (s.sp_end - s.sp_start)));
          List.iter
            (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=%s" k v))
            s.sp_attrs;
          Buffer.add_char buf '\n')
        all;
      let lost = dropped t in
      if lost > 0 then
        Buffer.add_string buf
          (Printf.sprintf "(%d earlier span%s dropped, capacity %d)\n" lost
             (if lost = 1 then "" else "s")
             t.capacity);
      Buffer.contents buf
