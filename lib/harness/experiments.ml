open Heron_sim
open Heron_rdma
open Heron_stats
open Heron_multicast
open Heron_core
open Heron_tpcc

let kt tps = Printf.sprintf "%.1f" (tps /. 1_000.)
let us_mean set = Table.cell_us (int_of_float (Sample_set.mean set))

(* The TPCC-like destination distribution used by the transport-level
   series of Figure 4 (RamCast and Heron-null): ~90% single partition,
   ~10% spanning two partitions, matching the standard mix. *)
let null_dst ~partitions rng =
  if partitions > 1 && Gen.rand_range rng 1 100 <= 10 then begin
    let a = Random.State.int rng partitions in
    let b = (a + 1 + Random.State.int rng (partitions - 1)) mod partitions in
    List.sort compare [ a; b ]
  end
  else [ Random.State.int rng partitions ]

let clients_per_partition = 4

(* {1 Figure 4} *)

let fig4 ?(quick = false) () =
  let whs = if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8; 16 ] in
  let warmup = Time_ns.ms (if quick then 4 else 10) in
  let measure = Time_ns.ms (if quick then 15 else 40) in
  let table =
    Table.make ~title:"Figure 4: throughput (ktps) vs number of warehouses"
      ~headers:[ "WH"; "RamCast"; "Heron (null)"; "Heron TPCC"; "Local TPCC" ]
  in
  List.iter
    (fun wh ->
      let clients = clients_per_partition * wh in
      let ramcast =
        Driver.run_ramcast ~warmup ~measure ~partitions:wh ~clients
          ~gen_dst:(null_dst ~partitions:wh) ~msg_bytes:200 ()
      in
      let null_run =
        let eng = Engine.create ~seed:2 () in
        let cfg = Config.default ~partitions:wh ~replicas:3 in
        let sys = System.create eng ~cfg ~app:Driver.null_app in
        System.start sys;
        Driver.run_system ~warmup ~measure ~sys ~clients
          ~gen:(fun ~client rng ->
            ignore client;
            ({ Driver.nr_dst = []; nr_bytes = 200 }, Some (null_dst ~partitions:wh rng)))
          ()
      in
      let scale = Scale.bench ~warehouses:wh in
      let tpcc =
        let sys = Driver.heron_tpcc_system ~scale () in
        Driver.run_system ~warmup ~measure ~sys ~clients
          ~gen:(Driver.tpcc_gen ~profile:Workload.standard ~scale)
          ()
      in
      let local =
        let sys = Driver.heron_tpcc_system ~seed:3 ~scale () in
        Driver.run_system ~warmup ~measure ~sys ~clients
          ~gen:(Driver.tpcc_gen ~profile:Workload.local_only ~scale)
          ()
      in
      Table.add_row table
        [
          string_of_int wh;
          kt ramcast.Driver.rs_throughput_tps;
          kt null_run.Driver.rs_throughput_tps;
          kt tpcc.Driver.rs_throughput_tps;
          kt local.Driver.rs_throughput_tps;
        ])
    whs;
  table

(* {1 Figure 5} *)

let fig5 ?(quick = false) () =
  let whs = if quick then [ 1; 2 ] else [ 1; 2; 4; 8; 16 ] in
  let table =
    Table.make ~title:"Figure 5: Heron vs DynaStar (TPCC)"
      ~headers:
        [
          "WH";
          "Heron ktps";
          "DynaStar ktps";
          "speedup";
          "Heron lat (us)";
          "DynaStar lat (us)";
          "lat ratio";
        ]
  in
  List.iter
    (fun wh ->
      let scale = Scale.bench ~warehouses:wh in
      let heron =
        (* Two clients per partition: the knee of Heron's
           latency/throughput curve (the paper reports peak throughput
           at ~35 us latency, Table I). *)
        let sys = Driver.heron_tpcc_system ~scale () in
        Driver.run_system
          ~warmup:(Time_ns.ms (if quick then 4 else 10))
          ~measure:(Time_ns.ms (if quick then 15 else 40))
          ~sys ~clients:(2 * wh)
          ~gen:(Driver.tpcc_gen ~profile:Workload.standard ~scale)
          ()
      in
      let dynastar =
        Driver.run_dynastar
          ~warmup:(Time_ns.ms (if quick then 20 else 40))
          ~measure:(Time_ns.ms (if quick then 80 else 200))
          ~scale
          ~clients:(clients_per_partition * wh)
          ~profile:Workload.standard ()
      in
      let h_lat = Sample_set.mean heron.Driver.rs_latency in
      let d_lat = Sample_set.mean dynastar.Driver.rs_latency in
      Table.add_row table
        [
          string_of_int wh;
          kt heron.Driver.rs_throughput_tps;
          kt dynastar.Driver.rs_throughput_tps;
          Printf.sprintf "%.1fx"
            (heron.Driver.rs_throughput_tps /. dynastar.Driver.rs_throughput_tps);
          Printf.sprintf "%.1f" (h_lat /. 1e3);
          Printf.sprintf "%.1f" (d_lat /. 1e3);
          Printf.sprintf "%.1fx" (d_lat /. h_lat);
        ])
    whs;
  table

(* {1 Figure 6} *)

(* Single client; the breakdown is taken at the home partition's
   replicas: they are on the reply's critical path, whereas supply-only
   partitions "coordinate" for as long as the home partition
   executes. *)
let fig6 ?(quick = false) () =
  let measure = Time_ns.ms (if quick then 8 else 20) in
  let breakdown =
    Table.make
      ~title:
        "Figure 6 (left): single-client NewOrder latency breakdown (us), 4 partitions"
      ~headers:[ "workload"; "ordering"; "coordination"; "execution"; "client total" ]
  in
  let cdf =
    Table.make ~title:"Figure 6 (right): client latency CDF points (us)"
      ~headers:[ "workload"; "p50"; "p75"; "p90"; "p95"; "p99" ]
  in
  let scale = Scale.bench ~warehouses:4 in
  let run name gen =
    let sys = Driver.heron_tpcc_system ~scale () in
    let rs = Driver.run_system ~warmup:(Time_ns.ms 2) ~measure ~sys ~clients:1 ~gen () in
    let home_stat pick =
      Array.fold_left
        (fun acc r -> Sample_set.merge acc (pick (Replica.stats r)))
        (Sample_set.create ())
        (System.replicas sys).(0)
    in
    let ordering = home_stat (fun s -> s.Replica.st_ordering) in
    let coord = home_stat (fun s -> s.Replica.st_coord) in
    let exec = home_stat (fun s -> s.Replica.st_exec) in
    Table.add_row breakdown
      [
        name;
        us_mean ordering;
        (if Sample_set.is_empty coord then "0.0" else us_mean coord);
        us_mean exec;
        us_mean rs.Driver.rs_latency;
      ];
    Table.add_row cdf
      (name
      :: List.map
           (fun p -> Table.cell_us (Sample_set.percentile rs.Driver.rs_latency p))
           [ 50.; 75.; 90.; 95.; 99. ])
  in
  run "Tpcc" (fun ~client rng ->
      ignore client;
      (Workload.gen_new_order Workload.standard ~scale ~rng ~home_w:1, None));
  List.iter
    (fun k ->
      let warehouses = List.init k (fun i -> i + 1) in
      run
        (Printf.sprintf "%dWH" k)
        (fun ~client rng ->
          ignore client;
          (Workload.gen_new_order_pinned ~scale ~rng ~warehouses, None)))
    [ 1; 2; 3; 4 ];
  (breakdown, cdf)

(* {1 Figure 7} *)

let fig7 ?(quick = false) () =
  let measure = Time_ns.ms (if quick then 10 else 30) in
  let averages =
    Table.make ~title:"Figure 7 (left): latency per TPCC transaction type (us), 1 client"
      ~headers:
        [ "transaction"; "single-partition"; "multi-partition"; "overall"; "multi %" ]
  in
  let cdf =
    Table.make ~title:"Figure 7 (right): latency CDF points per type (us)"
      ~headers:[ "transaction"; "p50"; "p75"; "p90"; "p95"; "p99" ]
  in
  let scale = Scale.bench ~warehouses:4 in
  let run name kind =
    let sys = Driver.heron_tpcc_system ~scale () in
    let rs =
      Driver.run_system ~warmup:(Time_ns.ms 2) ~measure ~sys ~clients:1
        ~gen:(fun ~client rng ->
          ignore client;
          (Workload.gen_of_kind kind Workload.standard ~scale ~rng ~home_w:1, None))
        ()
    in
    let cell set = if Sample_set.is_empty set then "-" else us_mean set in
    let multi_pct =
      if rs.Driver.rs_completed = 0 then 0.
      else
        float_of_int (Sample_set.count rs.Driver.rs_latency_multi)
        /. float_of_int rs.Driver.rs_completed
    in
    Table.add_row averages
      [
        name;
        cell rs.Driver.rs_latency_single;
        cell rs.Driver.rs_latency_multi;
        cell rs.Driver.rs_latency;
        Table.cell_pct multi_pct;
      ];
    Table.add_row cdf
      (name
      :: List.map
           (fun p -> Table.cell_us (Sample_set.percentile rs.Driver.rs_latency p))
           [ 50.; 75.; 90.; 95.; 99. ])
  in
  run "NewOrder" `New_order;
  run "Payment" `Payment;
  run "OrderStatus" `Order_status;
  run "Delivery" `Delivery;
  run "StockLevel" `Stock_level;
  (averages, cdf)

(* {1 Table I} *)

let table1 ?(quick = false) () =
  let table =
    Table.make
      ~title:
        "Table I: transaction delay when waiting for all replicas (phase 4 = wait-all)"
      ~headers:
        [
          "partitions";
          "replicas";
          "max tput (tps)";
          "avg lat (us)";
          "partition id";
          "delayed";
          "avg delay (us)";
        ]
  in
  let configs =
    if quick then [ (2, 3) ] else [ (2, 3); (2, 5); (4, 3); (4, 5) ]
  in
  List.iter
    (fun (partitions, replicas) ->
      let scale = Scale.bench ~warehouses:partitions in
      let sys =
        Driver.heron_tpcc_system ~replicas ~scale
          ~cfg_tweak:(fun c -> { c with Config.wait_phase4 = Config.Wait_all })
          ()
      in
      let rs =
        Driver.run_system
          ~warmup:(Time_ns.ms (if quick then 4 else 10))
          ~measure:(Time_ns.ms (if quick then 15 else 40))
          ~sys
          ~clients:(clients_per_partition * partitions)
          ~gen:(Driver.tpcc_gen ~profile:Workload.standard ~scale)
          ()
      in
      for part = 0 to partitions - 1 do
        let row = (System.replicas sys).(part) in
        let delayed = Array.fold_left (fun a r -> a + (Replica.stats r).Replica.st_delayed) 0 row in
        let multi = Array.fold_left (fun a r -> a + (Replica.stats r).Replica.st_multi) 0 row in
        let delays =
          Array.fold_left
            (fun acc r -> Sample_set.merge acc (Replica.stats r).Replica.st_delay)
            (Sample_set.create ()) row
        in
        let pct = if multi = 0 then 0. else float_of_int delayed /. float_of_int multi in
        Table.add_row table
          [
            (if part = 0 then string_of_int partitions else "");
            (if part = 0 then string_of_int replicas else "");
            (if part = 0 then Printf.sprintf "%.0f" rs.Driver.rs_throughput_tps else "");
            (if part = 0 then us_mean rs.Driver.rs_latency else "");
            Printf.sprintf "#%d" (part + 1);
            Table.cell_pct pct;
            (if Sample_set.is_empty delays then "-" else us_mean delays);
          ]
      done)
    configs;
  table

(* {1 Figure 8} *)

(* Synthetic blob application: [count] objects of [size] bytes in one
   partition, all of the chosen storage class. A request overwrites a
   batch of objects, feeding the replicas' update logs exactly like
   normal execution. *)
type blob_req = { br_oids : int list; br_size : int }

let blob_value ~size oid = Bytes.make size (Char.chr (oid land 0x7f))

let blob_app ~count ~size ~klass =
  {
    App.app_name = "blob";
    placement_of = (fun _ -> App.Partition 0);
    klass_of = (fun _ -> klass);
    read_set = (fun _ -> []);
    read_plan = (fun ~part:_ _ -> []);
    write_sketch = (fun r -> List.map Oid.of_int r.br_oids);
    req_size = (fun r -> 16 + (8 * List.length r.br_oids));
    resp_size = (fun () -> 8);
    execute =
      (fun ctx r ->
        List.iter
          (fun oid -> ctx.App.ctx_write (Oid.of_int oid) (blob_value ~size:r.br_size oid))
          r.br_oids);
    serial_hint = (fun _ -> false);
    read_only = (fun _ -> false);
    catalog =
      (fun () ->
        List.init count (fun oid ->
            {
              App.spec_oid = Oid.of_int oid;
              spec_placement = App.Partition 0;
              spec_klass = klass;
              spec_cap = size;
              spec_init = blob_value ~size oid;
            }));
  }

(* Measure the state-transfer latency for [count] objects of [size]
   bytes in class [klass]: write them all through normal requests, then
   repeatedly run Algorithm 3 from replica 2 and time it. *)
let measure_transfer ~count ~size ~klass ~repeats =
  let eng = Engine.create ~seed:9 () in
  let cfg =
    (* Large transfers (up to ~200 MB for full-warehouse recovery) need
       a donor-selection timeout above the transfer time. *)
    { (Config.default ~partitions:1 ~replicas:3) with
      Config.statesync_timeout_ns = Time_ns.s 2 }
  in
  let sys = System.create eng ~cfg ~app:(blob_app ~count ~size ~klass) in
  System.start sys;
  let samples = Sample_set.create () in
  let client = System.new_client_node sys ~name:"blob-client" in
  Fabric.spawn_on client (fun () ->
      (* Touch every object, 64 per request. *)
      let rec batches lo =
        if lo < count then begin
          let hi = min count (lo + 64) in
          let oids = List.init (hi - lo) (fun i -> lo + i) in
          ignore (System.submit sys ~from:client { br_oids = oids; br_size = size });
          batches hi
        end
      in
      batches 0;
      let lagger = System.replica sys ~part:0 ~idx:2 in
      (* From the first request when there is data; the protocol-only
         scenario (no objects) asks from the very beginning, which the
         (empty) full-transfer path answers immediately. *)
      let failed_tmp =
        if count = 0 then Tstamp.zero else Tstamp.make ~clock:1 ~uid:1
      in
      for _ = 1 to repeats do
        let t0 = Engine.self_now () in
        Replica.force_state_transfer lagger ~failed_tmp;
        Sample_set.add samples (Engine.self_now () - t0);
        (* Let backup-donor candidates time out between repeats: this
           loop reuses one failed_tmp, which back-to-back would look
           like the same transfer request (an artifact a real lagger,
           whose failed requests always advance, cannot produce). *)
        Engine.sleep (2 * cfg.Config.statesync_timeout_ns)
      done);
  Engine.run_until eng (Time_ns.s 600);
  if Sample_set.count samples < repeats then failwith "fig8: transfer did not complete";
  samples

let fig8 ?(quick = false) () =
  let repeats = if quick then 3 else 5 in
  let table =
    Table.make ~title:"Figure 8: state transfer latency"
      ~headers:[ "scenario"; "data"; "avg latency"; "stddev" ]
  in
  let row name data samples =
    let avg = int_of_float (Sample_set.mean samples) in
    let cell =
      if avg >= 1_000_000 then Table.cell_ms avg ^ " ms" else Table.cell_us avg ^ " us"
    in
    let sd = int_of_float (Sample_set.stddev samples) in
    let sd_cell =
      if sd >= 1_000_000 then Table.cell_ms sd ^ " ms" else Table.cell_us sd ^ " us"
    in
    Table.add_row table [ name; data; cell; sd_cell ]
  in
  row "Protocol (no data)" "0"
    (measure_transfer ~count:0 ~size:1_024 ~klass:Versioned_store.Registered ~repeats);
  row "Serialized" "64KB"
    (measure_transfer ~count:64 ~size:1_024 ~klass:Versioned_store.Registered ~repeats);
  row "Non-serialized" "64KB"
    (measure_transfer ~count:64 ~size:1_024 ~klass:Versioned_store.Local ~repeats);
  row "Serialized" "640KB"
    (measure_transfer ~count:640 ~size:1_024 ~klass:Versioned_store.Registered ~repeats);
  row "Non-serialized" "640KB"
    (measure_transfer ~count:640 ~size:1_024 ~klass:Versioned_store.Local ~repeats);
  row "Serialized" "6.4MB"
    (measure_transfer ~count:800 ~size:8_192 ~klass:Versioned_store.Registered ~repeats);
  row "Non-serialized" "6.4MB"
    (measure_transfer ~count:800 ~size:8_192 ~klass:Versioned_store.Local ~repeats);
  if not quick then begin
    (* Full-warehouse recovery (Section V-E): 105.3 MB serialized +
       32.39 MB non-serialized, measured separately and summed. *)
    let ser =
      measure_transfer ~count:3215 ~size:32_768 ~klass:Versioned_store.Registered
        ~repeats:1
    in
    let non_ser =
      measure_transfer ~count:989 ~size:32_768 ~klass:Versioned_store.Local ~repeats:1
    in
    let total =
      int_of_float (Sample_set.mean ser) + int_of_float (Sample_set.mean non_ser)
    in
    Table.add_row table
      [
        "Full warehouse recovery";
        "105.3MB ser + 32.4MB non-ser";
        Table.cell_ms total ^ " ms";
        Printf.sprintf "(ser %s ms, non-ser %s ms)"
          (Table.cell_ms (int_of_float (Sample_set.mean ser)))
          (Table.cell_ms (int_of_float (Sample_set.mean non_ser)));
      ]
  end;
  table

(* {1 Grace-delay ablation (Section V-E's cut-off question)} *)

(* One replica of partition 0 runs slower than its peers; sweep the
   phase-4 grace delay and watch the trade-off: a small delay lets the
   straggler catch up (few laggers / state transfers), no delay leaves
   it behind, waiting for all couples every request to the slowest
   replica. *)
let ablation_grace ?(quick = false) () =
  let table =
    Table.make
      ~title:
        "Ablation: anti-lagger grace delay (slow replica at +15us/request, 2 partitions)"
      ~headers:
        [
          "phase-4 wait";
          "throughput (tps)";
          "avg lat (us)";
          "lagger events";
          "state transfers";
          "slow replica skipped";
        ]
  in
  let scale = Scale.bench ~warehouses:2 in
  let run name wait =
    let sys =
      Driver.heron_tpcc_system ~scale
        ~cfg_tweak:(fun c -> { c with Config.wait_phase4 = wait })
        ()
    in
    let slow = System.replica sys ~part:0 ~idx:2 in
    Replica.inject_exec_delay slow (Time_ns.us 15);
    let rs =
      Driver.run_system
        ~warmup:(Time_ns.ms (if quick then 4 else 10))
        ~measure:(Time_ns.ms (if quick then 15 else 40))
        ~sys ~clients:8
        ~gen:(Driver.tpcc_gen ~profile:Workload.standard ~scale)
        ()
    in
    let laggers = Driver.sum_replica_stat sys (fun s -> s.Replica.st_laggers) in
    let transfers =
      Driver.sum_replica_stat sys (fun s -> s.Replica.st_transfers_served)
    in
    let skipped = (Replica.stats slow).Replica.st_skipped in
    Table.add_row table
      [
        name;
        Printf.sprintf "%.0f" rs.Driver.rs_throughput_tps;
        us_mean rs.Driver.rs_latency;
        string_of_int laggers;
        string_of_int transfers;
        string_of_int skipped;
      ]
  in
  run "majority only" Config.Majority;
  List.iter
    (fun us -> run (Printf.sprintf "grace %dus" us) (Config.Grace (Time_ns.us us)))
    [ 2; 5; 10; 20 ];
  run "wait for all" Config.Wait_all;
  table

(* {1 Parallel-execution ablation (Section III-D.1 extension)} *)

let ablation_parallel ?(quick = false) () =
  let table =
    Table.make
      ~title:
        "Ablation: multi-threaded execution of single-partition requests (2 WH, local TPCC)"
      ~headers:[ "workers"; "throughput (tps)"; "avg lat (us)"; "p95 lat (us)" ]
  in
  let scale = Scale.bench ~warehouses:2 in
  List.iter
    (fun workers ->
      let sys =
        Driver.heron_tpcc_system ~scale
          ~cfg_tweak:(fun c -> { c with Config.workers })
          ()
      in
      let rs =
        Driver.run_system
          ~warmup:(Time_ns.ms (if quick then 4 else 10))
          ~measure:(Time_ns.ms (if quick then 15 else 40))
          ~sys ~clients:16
          ~gen:(Driver.tpcc_gen ~profile:Workload.local_only ~scale)
          ()
      in
      Table.add_row table
        [
          string_of_int workers;
          Printf.sprintf "%.0f" rs.Driver.rs_throughput_tps;
          us_mean rs.Driver.rs_latency;
          Table.cell_us (Sample_set.percentile rs.Driver.rs_latency 95.);
        ])
    [ 1; 2; 4; 8 ];
  table

(* {1 Coordination doorbell-batching ablation (extension)} *)

(* Sum of the write_post doorbell charges across every QP of a run:
   with [coord_batching] on, one doorbell covers a whole announce
   fan-out, so this drops by roughly the per-peer fan-out factor. *)
let write_post_charges reg =
  List.fold_left
    (fun acc e ->
      match e.Heron_obs.Metrics.e_value with
      | Heron_obs.Metrics.Counter_v n
        when e.Heron_obs.Metrics.e_name = "rdma.verb.count"
             && List.mem ("verb", "write_post") e.Heron_obs.Metrics.e_labels ->
          acc + n
      | _ -> acc)
    0
    (Heron_obs.Metrics.snapshot reg)

let ablation_coord_batching ?(quick = false) () =
  let table =
    Table.make
      ~title:
        "Ablation: doorbell-batched coordination writes (Heron null, 2 partitions, \
         all requests multi-partition)"
      ~headers:
        [
          "coord batching";
          "workers";
          "clients";
          "tput (ktps)";
          "p50 (us)";
          "p99 (us)";
          "write_post charges";
        ]
  in
  List.iter
    (fun coord_batching ->
      List.iter
        (fun workers ->
          List.iter
            (fun clients ->
              let reg = Heron_obs.Metrics.create () in
              let eng = Engine.create ~seed:8 () in
              let cfg =
                let c = Config.default ~partitions:2 ~replicas:3 in
                { c with Config.coord_batching; workers; metrics = reg }
              in
              let sys = System.create eng ~cfg ~app:Driver.null_app in
              System.start sys;
              let rs =
                Driver.run_system
                  ~warmup:(Time_ns.ms (if quick then 2 else 5))
                  ~measure:(Time_ns.ms (if quick then 8 else 20))
                  ~sys ~clients
                  ~gen:(fun ~client rng ->
                    ignore client;
                    ignore rng;
                    ({ Driver.nr_dst = []; nr_bytes = 200 }, Some [ 0; 1 ]))
                  ()
              in
              Table.add_row table
                [
                  (if coord_batching then "on" else "off");
                  string_of_int workers;
                  string_of_int clients;
                  kt rs.Driver.rs_throughput_tps;
                  Table.cell_us (Sample_set.percentile rs.Driver.rs_latency 50.);
                  Table.cell_us (Sample_set.percentile rs.Driver.rs_latency 99.);
                  string_of_int (write_post_charges reg);
                ])
            (if quick then [ 2 ] else [ 2; 16 ]))
        (if quick then [ 1 ] else [ 1; 4 ]))
    [ false; true ];
  table

(* {1 Multicast batching ablation (extension)} *)

let ablation_batching ?(quick = false) () =
  let table =
    Table.make
      ~title:
        "Ablation: multicast batching (Heron null requests, 2 partitions, saturation)"
      ~headers:
        [ "batching"; "clients"; "tput (ktps)"; "avg lat (us)"; "p95 (us)" ]
  in
  List.iter
    (fun batching ->
      List.iter
        (fun clients ->
          let eng = Engine.create ~seed:6 () in
          let cfg =
            let c = Config.default ~partitions:2 ~replicas:3 in
            { c with Config.mcast = { c.Config.mcast with Ramcast.batching } }
          in
          let sys = System.create eng ~cfg ~app:Driver.null_app in
          System.start sys;
          let rs =
            Driver.run_system
              ~warmup:(Time_ns.ms (if quick then 2 else 5))
              ~measure:(Time_ns.ms (if quick then 8 else 20))
              ~sys ~clients
              ~gen:(fun ~client rng ->
                ignore client;
                ( { Driver.nr_dst = []; nr_bytes = 200 },
                  Some (null_dst ~partitions:2 rng) ))
              ()
          in
          Table.add_row table
            [
              (if batching then "on" else "off");
              string_of_int clients;
              kt rs.Driver.rs_throughput_tps;
              us_mean rs.Driver.rs_latency;
              Table.cell_us (Sample_set.percentile rs.Driver.rs_latency 95.);
            ])
        (if quick then [ 16 ] else [ 8; 32; 64 ]))
    [ false; true ];
  table

(* {1 Key-value microbenchmark (extension)}

   The evaluation style of the full-replication RDMA systems Heron's
   related work compares against (Mu, DARE, APUS): single-operation
   latencies across value sizes, and YCSB mixes across key
   distributions. *)

let micro_kv ?(quick = false) () =
  let open Heron_ycsb in
  let latency_table =
    Table.make ~title:"Microbenchmark (ext.): operation latency vs value size, 1 client"
      ~headers:[ "value size"; "read (us)"; "update (us)"; "rmw (us)" ]
  in
  let sizes = if quick then [ 64; 1024 ] else [ 64; 256; 1024; 4096 ] in
  List.iter
    (fun value_bytes ->
      let run kind =
        let eng = Engine.create ~seed:4 () in
        let cfg = Config.default ~partitions:1 ~replicas:3 in
        let sys =
          System.create eng ~cfg ~app:(Ycsb_app.app ~records:64 ~value_bytes ~partitions:1)
        in
        System.start sys;
        let rs =
          Driver.run_system ~warmup:(Time_ns.ms 1)
            ~measure:(Time_ns.ms (if quick then 4 else 10))
            ~sys ~clients:1
            ~gen:(fun ~client rng ->
              ignore client;
              let key = Random.State.int rng 64 in
              let req =
                match kind with
                | `Read -> Ycsb_app.Y_read key
                | `Update -> Ycsb_app.Y_update { key; seed = Random.State.int rng 1000 }
                | `Rmw -> Ycsb_app.Y_rmw { key; delta = 1 }
              in
              (req, None))
            ()
        in
        us_mean rs.Driver.rs_latency
      in
      Table.add_row latency_table
        [ Printf.sprintf "%dB" value_bytes; run `Read; run `Update; run `Rmw ])
    sizes;
  let ycsb_table =
    Table.make
      ~title:"Microbenchmark (ext.): YCSB mixes, 4 partitions, 1KB values"
      ~headers:[ "workload"; "distribution"; "tput (ktps)"; "avg lat (us)"; "p95 (us)" ]
  in
  let records = 512 in
  List.iter
    (fun (name, profile) ->
      List.iter
        (fun (dname, dist) ->
          let eng = Engine.create ~seed:5 () in
          let cfg = Config.default ~partitions:4 ~replicas:3 in
          let sys =
            System.create eng ~cfg
              ~app:(Ycsb_app.app ~records ~value_bytes:1024 ~partitions:4)
          in
          System.start sys;
          let rs =
            Driver.run_system ~warmup:(Time_ns.ms 2)
              ~measure:(Time_ns.ms (if quick then 8 else 20))
              ~sys ~clients:16
              ~gen:(fun ~client rng ->
                ignore client;
                (Ycsb_app.gen profile ~records ~key_dist:dist rng, None))
              ()
          in
          Table.add_row ycsb_table
            [
              name;
              dname;
              kt rs.Driver.rs_throughput_tps;
              us_mean rs.Driver.rs_latency;
              Table.cell_us (Sample_set.percentile rs.Driver.rs_latency 95.);
            ])
        [ ("uniform", `Uniform); ("zipfian", `Zipfian (Zipf.create ~n:records ())) ])
    [
      ("A (50r/50u)", Ycsb_app.workload_a);
      ("B (95r/5u)", Ycsb_app.workload_b);
      ("C (100r)", Ycsb_app.workload_c);
      ("E (with scans)", Ycsb_app.workload_e);
    ];
  (latency_table, ycsb_table)

let all ?(quick = false) () =
  let f4 = fig4 ~quick () in
  let f5 = fig5 ~quick () in
  let f6a, f6b = fig6 ~quick () in
  let f7a, f7b = fig7 ~quick () in
  let t1 = table1 ~quick () in
  let f8 = fig8 ~quick () in
  let ab = ablation_grace ~quick () in
  let ab2 = ablation_parallel ~quick () in
  let ab3 = ablation_batching ~quick () in
  let ab4 = ablation_coord_batching ~quick () in
  let mk1, mk2 = micro_kv ~quick () in
  [ f4; f5; f6a; f6b; f7a; f7b; t1; f8; ab; ab2; ab3; ab4; mk1; mk2 ]
