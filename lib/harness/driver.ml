open Heron_sim
open Heron_rdma
open Heron_stats
open Heron_multicast
open Heron_core
open Heron_tpcc

type run_stats = {
  rs_throughput_tps : float;
  rs_latency : Sample_set.t;
  rs_latency_single : Sample_set.t;
  rs_latency_multi : Sample_set.t;
  rs_completed : int;
}

let default_warmup = Time_ns.ms 10
let default_measure = Time_ns.ms 40

let finish ~measure ~latency ~single ~multi ~completed =
  {
    rs_throughput_tps = float_of_int !completed /. Time_ns.to_s_f measure;
    rs_latency = latency;
    rs_latency_single = single;
    rs_latency_multi = multi;
    rs_completed = !completed;
  }

let run_system ?(warmup = default_warmup) ?(measure = default_measure) ~sys ~clients
    ~gen () =
  let eng = System.engine sys in
  let latency = Sample_set.create () in
  let single = Sample_set.create () in
  let multi = Sample_set.create () in
  let completed = ref 0 in
  let measuring = ref false in
  for c = 0 to clients - 1 do
    let rng = Random.State.make [| c; 0xC11E47 |] in
    let node = System.new_client_node sys ~name:(Printf.sprintf "client-%d" c) in
    Fabric.spawn_on node (fun () ->
        let rec loop () =
          let req, dst_override = gen ~client:c rng in
          let t0 = Engine.self_now () in
          (* [submit] routes through the client's cached placement view
             under live repartitioning (and retries redirects); pinned
             destinations bypass it. *)
          let resps =
            match dst_override with
            | Some dst -> System.submit_to sys ~from:node ~dst req
            | None -> System.submit sys ~from:node req
          in
          let t1 = Engine.self_now () in
          if !measuring then begin
            incr completed;
            Sample_set.add latency (t1 - t0);
            Sample_set.add
              (if List.length resps = 1 then single else multi)
              (t1 - t0)
          end;
          loop ()
        in
        loop ())
  done;
  Engine.run_until eng (Engine.now eng + warmup);
  Array.iter (fun row -> Array.iter Replica.clear_stats row) (System.replicas sys);
  measuring := true;
  Engine.run_until eng (Engine.now eng + measure);
  measuring := false;
  finish ~measure ~latency ~single ~multi ~completed

let heron_tpcc_system ?(seed = 1) ?(replicas = 3) ?(cfg_tweak = Fun.id) ~scale () =
  let eng = Engine.create ~seed () in
  let cfg = cfg_tweak (Config.default ~partitions:scale.Scale.warehouses ~replicas) in
  let app = Tx.app ~scale ~seed:1 in
  let sys = System.create eng ~cfg ~app in
  System.start sys;
  sys

let tpcc_gen ~profile ~scale ~client rng =
  let home_w = (client mod scale.Scale.warehouses) + 1 in
  (Workload.gen profile ~scale ~rng ~home_w, None)

(* {1 Null application (coordination-only requests)} *)

type null_req = { nr_dst : int list; nr_bytes : int }

let null_app =
  {
    App.app_name = "null";
    placement_of = (fun _ -> App.Partition 0);
    klass_of = (fun _ -> Versioned_store.Registered);
    read_set = (fun _ -> []);
    read_plan = (fun ~part:_ _ -> []);
    write_sketch = (fun _ -> []);
    req_size = (fun r -> r.nr_bytes);
    resp_size = (fun () -> 8);
    execute = (fun _ _ -> ());
    serial_hint = (fun _ -> false);
    read_only = (fun _ -> false);
    catalog = (fun () -> []);
  }

(* {1 RamCast-only runs} *)

let run_ramcast ?(seed = 1) ?(warmup = default_warmup) ?(measure = default_measure)
    ?(replicas = 3) ~partitions ~clients ~gen_dst ~msg_bytes () =
  let eng = Engine.create ~seed () in
  let fab = Fabric.create eng ~profile:Profile.default in
  let groups =
    Array.init partitions (fun g ->
        Array.init replicas (fun i ->
            Fabric.add_node fab ~name:(Printf.sprintf "g%d-r%d" g i)))
  in
  let sys = Ramcast.create fab ~size_of:(fun _ -> msg_bytes) ~groups in
  (* Completion tracking: a message is complete once every destination
     group has delivered it somewhere. *)
  let waiting : (int, int ref * unit Ivar.t) Hashtbl.t = Hashtbl.create 4096 in
  let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 4096 in
  for g = 0 to partitions - 1 do
    for i = 0 to replicas - 1 do
      Ramcast.set_deliver sys ~gid:g ~idx:i (fun d ->
          let uid = d.Ramcast.d_uid in
          if not (Hashtbl.mem seen (uid, g)) then begin
            Hashtbl.replace seen (uid, g) ();
            match Hashtbl.find_opt waiting uid with
            | Some (remaining, iv) ->
                decr remaining;
                if !remaining = 0 then begin
                  Hashtbl.remove waiting uid;
                  Ivar.fill iv ()
                end
            | None -> ()
          end)
    done
  done;
  Ramcast.start sys;
  let latency = Sample_set.create () in
  let single = Sample_set.create () in
  let multi = Sample_set.create () in
  let completed = ref 0 in
  let measuring = ref false in
  for c = 0 to clients - 1 do
    let rng = Random.State.make [| c; 0x52414d |] in
    let node = Fabric.add_node fab ~name:(Printf.sprintf "rc-client-%d" c) in
    Fabric.spawn_on node (fun () ->
        let rec loop () =
          let dst = gen_dst rng in
          let iv = Ivar.create () in
          let t0 = Engine.self_now () in
          (* Register before multicasting: delivery can be concurrent. *)
          let remaining = ref (List.length dst) in
          let uid = Ramcast.multicast sys ~from:node ~dst () in
          (* Deliveries cannot have fired yet at this instant: the
             submit transfer itself takes non-zero time. *)
          Hashtbl.replace waiting uid (remaining, iv);
          Ivar.read iv;
          let t1 = Engine.self_now () in
          if !measuring then begin
            incr completed;
            Sample_set.add latency (t1 - t0);
            Sample_set.add (if List.length dst = 1 then single else multi) (t1 - t0)
          end;
          loop ()
        in
        loop ())
  done;
  Engine.run_until eng warmup;
  measuring := true;
  Engine.run_until eng (warmup + measure);
  measuring := false;
  finish ~measure ~latency ~single ~multi ~completed

(* {1 DynaStar runs} *)

let run_dynastar ?(seed = 1) ?(warmup = Time_ns.ms 40) ?(measure = Time_ns.ms 160)
    ?(replicas = 3) ?(config = Heron_dynastar.Dynastar.default_config) ~scale ~clients
    ~profile () =
  let open Heron_dynastar in
  let eng = Engine.create ~seed () in
  let app = Tx.app ~scale ~seed:1 in
  let ds =
    Dynastar.create eng ~config ~partitions:scale.Scale.warehouses ~replicas ~app ()
  in
  Dynastar.start ds;
  let latency = Sample_set.create () in
  let single = Sample_set.create () in
  let multi = Sample_set.create () in
  let completed = ref 0 in
  let measuring = ref false in
  for c = 0 to clients - 1 do
    let rng = Random.State.make [| c; 0xD57A7 |] in
    let client = Dynastar.new_client ds ~name:(Printf.sprintf "ds-client-%d" c) in
    let home_w = (c mod scale.Scale.warehouses) + 1 in
    Engine.spawn eng (fun () ->
        let rec loop () =
          let req = Workload.gen profile ~scale ~rng ~home_w in
          let is_multi = Tx.is_multi_warehouse req in
          let t0 = Engine.self_now () in
          ignore (Dynastar.submit ds client req);
          let t1 = Engine.self_now () in
          if !measuring then begin
            incr completed;
            Sample_set.add latency (t1 - t0);
            Sample_set.add (if is_multi then multi else single) (t1 - t0)
          end;
          loop ()
        in
        loop ())
  done;
  Engine.run_until eng warmup;
  measuring := true;
  Engine.run_until eng (warmup + measure);
  measuring := false;
  finish ~measure ~latency ~single ~multi ~completed

(* {1 Aggregation} *)

let merged_replica_stat sys pick =
  Array.fold_left
    (fun acc row ->
      Array.fold_left
        (fun acc r -> Sample_set.merge acc (pick (Replica.stats r)))
        acc row)
    (Sample_set.create ()) (System.replicas sys)

let sum_replica_stat sys pick =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun acc r -> acc + pick (Replica.stats r)) acc row)
    0 (System.replicas sys)
