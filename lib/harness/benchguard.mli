(** Deterministic bench-regression guard.

    The simulator is bit-exact per seed, so a committed quick-mode
    baseline JSON admits an exact comparison: for each listed top-level
    key (higher-is-better numbers), a run regresses when CURRENT has
    fallen more than [max_regression_pct] percent below BASELINE.
    [probe benchguard] and [scripts/check.sh] are thin shells around
    this module; tests drive {!check} directly on fixture files. *)

type verdict = {
  vd_key : string;
  vd_current : float;
  vd_baseline : float;
  vd_floor : float;  (** baseline scaled down by the allowed regression *)
  vd_regressed : bool;
}

type result =
  | Ok_all of verdict list  (** every key at or above its floor *)
  | Regressed of verdict list  (** at least one key below its floor *)
  | Bad_input of string
      (** unreadable file, invalid JSON, or a listed key missing /
          non-numeric in either document *)

val check :
  current:string ->
  baseline:string ->
  keys:string list ->
  max_regression_pct:float ->
  result
(** Load both JSON files and judge every key. The verdict list
    preserves the order of [keys]. *)

val regressed_keys : verdict list -> string list
(** The keys that fell below their floor, in input order. *)

val pp_verdict : max_regression_pct:float -> Format.formatter -> verdict -> unit
(** One line per key, matching the historical [probe benchguard]
    output ([ok] / [REGRESSED]). *)

val pp_summary : Format.formatter -> result -> unit
(** One trailing line: all-ok count, the comma-separated regressed
    keys, or the input error. *)

val exit_code : result -> int
(** Process exit status for CLI shells: 0 all ok, 1 on regression or
    bad input (usage errors are the caller's, conventionally 2). *)
