(** One driver per table/figure of the paper's evaluation (Section V).

    Each function runs the experiment in virtual time and returns the
    result as printable tables mirroring the paper's rows/series.
    [quick] shrinks warmup/measure windows and the warehouse sweep so
    the full suite stays fast; the default parameters are the ones
    EXPERIMENTS.md records.

    Experiment index (see DESIGN.md):
    - {!fig4}: throughput of RamCast / Heron-null / Heron-TPCC /
      local-TPCC as warehouses grow.
    - {!fig5}: Heron vs DynaStar, throughput and latency.
    - {!fig6}: single-client latency breakdown
      (ordering/coordination/execution) and CDF for NewOrder pinned to
      1..4 partitions.
    - {!fig7}: per-transaction-type latency (single- vs
      multi-partition) and CDF.
    - {!table1}: delayed transactions and delay when coordination waits
      for all replicas; 2/4 partitions x 3/5 replicas.
    - {!fig8}: state-transfer latency: protocol-only, 64 KB / 640 KB /
      6.4 MB, serialized vs non-serialized, and full-warehouse
      recovery. *)

open Heron_stats

val fig4 : ?quick:bool -> unit -> Table.t
val fig5 : ?quick:bool -> unit -> Table.t
val fig6 : ?quick:bool -> unit -> Table.t * Table.t
(** Returns (latency breakdown, CDF points). *)

val fig7 : ?quick:bool -> unit -> Table.t * Table.t
(** Returns (per-type averages, CDF points). *)

val table1 : ?quick:bool -> unit -> Table.t
val fig8 : ?quick:bool -> unit -> Table.t

val ablation_grace : ?quick:bool -> unit -> Table.t
(** Extension of Section V-E's cut-off question: sweep the phase-4
    anti-lagger grace delay against a deliberately slow replica and
    report the trade-off between throughput/latency and lagger
    frequency (state transfers). *)

val ablation_parallel : ?quick:bool -> unit -> Table.t
(** Extension of Section III-D.1 (the paper's future work): throughput
    and latency of local TPCC as the number of execution workers per
    replica grows; non-conflicting single-partition requests execute
    concurrently. *)

val ablation_batching : ?quick:bool -> unit -> Table.t
(** Extension: replication batching in the multicast layer (RamCast
    batches; our calibrated default does not) — throughput/latency of
    null requests with batching on and off at increasing load. *)

val write_post_charges : Heron_obs.Metrics.t -> int
(** Total [rdma.verb.count{verb="write_post"}] doorbell charges across
    every QP recorded in the registry (one per doorbell ring when
    coordination batching is on, one per write otherwise). *)

val ablation_coord_batching : ?quick:bool -> unit -> Table.t
(** Extension: doorbell-batched coordination writes (Qp.Doorbell via
    [Config.coord_batching]) on an all-multi-partition null workload —
    throughput, p50/p99 latency and total [rdma.verb.count
    {verb="write_post"}] doorbell charges, with batching on and off at
    1 and 4 workers. EXPERIMENTS.md records the measured fan-out
    reduction. *)

val micro_kv : ?quick:bool -> unit -> Table.t * Table.t
(** Extension: key-value microbenchmarks in the style of the
    full-replication RDMA systems Heron's related work compares against
    (Mu, DARE) — per-operation latency across value sizes, and YCSB
    mixes across key distributions. *)

val all : ?quick:bool -> unit -> Table.t list
(** Every experiment, in paper order, plus the ablations and
    microbenchmarks. *)
