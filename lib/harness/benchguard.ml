module Json = Heron_obs.Json

type verdict = {
  vd_key : string;
  vd_current : float;
  vd_baseline : float;
  vd_floor : float;
  vd_regressed : bool;
}

type result = Ok_all of verdict list | Regressed of verdict list | Bad_input of string

let load_doc file =
  match
    try
      let ic = open_in_bin file in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Ok s
    with Sys_error msg -> Error msg
  with
  | Error msg -> Error msg
  | Ok s -> (
      match Json.parse s with
      | Ok doc -> Ok doc
      | Error msg -> Error (Printf.sprintf "%s: %s" file msg))

let number file doc key =
  match Json.member key doc with
  | Some (Json.Float f) -> Ok f
  | Some (Json.Int i) -> Ok (float_of_int i)
  | Some _ | None ->
      Error (Printf.sprintf "%s: key %S missing or not a number" file key)

let check ~current ~baseline ~keys ~max_regression_pct =
  match (load_doc current, load_doc baseline) with
  | Error msg, _ | _, Error msg -> Bad_input msg
  | Ok cur, Ok base -> (
      let rec judge acc = function
        | [] -> Ok (List.rev acc)
        | key :: rest -> (
            match (number current cur key, number baseline base key) with
            | Error msg, _ | _, Error msg -> Error msg
            | Ok c, Ok b ->
                let floor = b *. (1. -. (max_regression_pct /. 100.)) in
                judge
                  ({ vd_key = key;
                     vd_current = c;
                     vd_baseline = b;
                     vd_floor = floor;
                     vd_regressed = c < floor }
                  :: acc)
                  rest)
      in
      match judge [] keys with
      | Error msg -> Bad_input msg
      | Ok verdicts ->
          if List.exists (fun v -> v.vd_regressed) verdicts then
            Regressed verdicts
          else Ok_all verdicts)

let regressed_keys verdicts =
  List.filter_map
    (fun v -> if v.vd_regressed then Some v.vd_key else None)
    verdicts

let pp_verdict ~max_regression_pct ppf v =
  if v.vd_regressed then
    Format.fprintf ppf "benchguard: %s REGRESSED: %.1f < %.1f (baseline %.1f, max -%.1f%%)"
      v.vd_key v.vd_current v.vd_floor v.vd_baseline max_regression_pct
  else
    Format.fprintf ppf "benchguard: %s ok: %.1f vs baseline %.1f (floor %.1f)"
      v.vd_key v.vd_current v.vd_baseline v.vd_floor

let pp_summary ppf = function
  | Ok_all vs -> Format.fprintf ppf "benchguard: all %d keys ok" (List.length vs)
  | Regressed vs ->
      Format.fprintf ppf "benchguard: regressed keys: %s"
        (String.concat ", " (regressed_keys vs))
  | Bad_input msg -> Format.fprintf ppf "benchguard: %s" msg

let exit_code = function Ok_all _ -> 0 | Regressed _ -> 1 | Bad_input _ -> 1
