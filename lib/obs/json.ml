type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* {1 Printing} *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else if Float.is_finite f then begin
    (* Shortest decimal form that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    Buffer.add_string buf s
  end
  else Buffer.add_string buf "null"

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  add buf j;
  Buffer.contents buf

let to_channel oc j = output_string oc (to_string j)

(* {1 Parsing} *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let next st =
  match peek st with
  | Some c ->
      st.pos <- st.pos + 1;
      c
  | None -> fail st "unexpected end of input"

let skip_ws st =
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> st.pos <- st.pos + 1
    | _ -> continue_ := false
  done

let expect st c =
  let got = next st in
  if got <> c then fail st (Printf.sprintf "expected %c, got %c" c got)

let expect_lit st lit value =
  String.iter (fun c -> expect st c) lit;
  value

(* UTF-8 encode one code point (for \u escapes). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail st "bad hex digit"
  in
  let a = hex (next st) in
  let b = hex (next st) in
  let c = hex (next st) in
  let d = hex (next st) in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match next st with
    | '"' -> Buffer.contents buf
    | '\\' ->
        (match next st with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' -> add_utf8 buf (hex4 st)
        | c -> fail st (Printf.sprintf "bad escape \\%c" c));
        loop ()
    | c when Char.code c < 0x20 -> fail st "unescaped control character"
    | c ->
        Buffer.add_char buf c;
        loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail st (Printf.sprintf "bad number %S" s))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then begin
        expect st '}';
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match next st with
          | ',' -> fields ((k, v) :: acc)
          | '}' -> Obj (List.rev ((k, v) :: acc))
          | c -> fail st (Printf.sprintf "expected , or } in object, got %c" c)
        in
        fields []
      end
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then begin
        expect st ']';
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match next st with
          | ',' -> elems (v :: acc)
          | ']' -> List (List.rev (v :: acc))
          | c -> fail st (Printf.sprintf "expected , or ] in array, got %c" c)
        in
        elems []
      end
  | Some '"' -> String (parse_string st)
  | Some 't' -> expect_lit st "true" (Bool true)
  | Some 'f' -> expect_lit st "false" (Bool false)
  | Some 'n' -> expect_lit st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %c" c)

let parse_exn s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let parse s = try Ok (parse_exn s) with Parse_error msg -> Error msg

(* {1 Accessors} *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_list_exn = function
  | List xs -> xs
  | _ -> invalid_arg "Json.to_list_exn: not a list"
