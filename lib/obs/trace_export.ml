open Heron_sim

(* trace_event timestamps are in microseconds; emit fractional values so
   no nanosecond precision is lost. *)
let us_of_ns ns = Json.Float (float_of_int ns /. 1_000.)

let process_events ~pid name tr =
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ( "args",
          Json.Obj
            [
              ("name", Json.String name);
              ("dropped_spans", Json.Int (Trace.dropped tr));
            ] );
      ]
  in
  (* One track per span kind, numbered by first appearance. *)
  let tids = Hashtbl.create 8 in
  let tid_meta = ref [] in
  let tid_of span_name =
    match Hashtbl.find_opt tids span_name with
    | Some tid -> tid
    | None ->
        let tid = Hashtbl.length tids + 1 in
        Hashtbl.replace tids span_name tid;
        tid_meta :=
          Json.Obj
            [
              ("name", Json.String "thread_name");
              ("ph", Json.String "M");
              ("pid", Json.Int pid);
              ("tid", Json.Int tid);
              ("args", Json.Obj [ ("name", Json.String span_name) ]);
            ]
          :: !tid_meta;
        tid
  in
  let span_event (s : Trace.span) =
    Json.Obj
      [
        ("name", Json.String s.Trace.sp_name);
        ("ph", Json.String "X");
        ("pid", Json.Int pid);
        ("tid", Json.Int (tid_of s.Trace.sp_name));
        ("ts", us_of_ns s.Trace.sp_start);
        ("dur", us_of_ns (s.Trace.sp_end - s.Trace.sp_start));
        ( "args",
          Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.Trace.sp_attrs) );
      ]
  in
  let spans = List.map span_event (Trace.spans tr) in
  (meta :: List.rev !tid_meta) @ spans

(* Request-scoped trees (DESIGN.md §11): one dedicated process, one
   track per request, one "X" event per span. The args carry the exact
   causal structure — trace id, span id, parent id and nanosecond
   endpoints — so [request_spans_of_json] (and [probe explain]) can
   rebuild the trees from a dump without precision loss. *)
let request_pid = 1000

let request_events trees =
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int request_pid);
        ("args", Json.Obj [ ("name", Json.String "requests") ]);
      ]
  in
  let track tree =
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int request_pid);
        ("tid", Json.Int tree.Reqtrace.tr_trace);
        ( "args",
          Json.Obj
            [ ("name", Json.String (Printf.sprintf "req %d" tree.Reqtrace.tr_trace)) ]
        );
      ]
  in
  let span_event (s : Reqtrace.span) =
    Json.Obj
      [
        ("name", Json.String s.Reqtrace.rs_stage);
        ("ph", Json.String "X");
        ("pid", Json.Int request_pid);
        ("tid", Json.Int s.Reqtrace.rs_trace);
        ("ts", us_of_ns s.Reqtrace.rs_start);
        ("dur", us_of_ns (s.Reqtrace.rs_end - s.Reqtrace.rs_start));
        ( "args",
          Json.Obj
            ([
               ("trace", Json.Int s.Reqtrace.rs_trace);
               ("span", Json.Int s.Reqtrace.rs_id);
               ("parent", Json.Int s.Reqtrace.rs_parent);
               ("start_ns", Json.Int s.Reqtrace.rs_start);
               ("end_ns", Json.Int s.Reqtrace.rs_end);
             ]
            @ List.map (fun (k, v) -> (k, Json.String v)) s.Reqtrace.rs_attrs) );
      ]
  in
  meta
  :: List.map track trees
  @ List.concat_map
      (fun tree -> List.map span_event tree.Reqtrace.tr_spans)
      trees

let perfetto ?(requests = []) traces =
  let events =
    List.concat (List.mapi (fun i (name, tr) -> process_events ~pid:(i + 1) name tr) traces)
    @ (if requests = [] then [] else request_events requests)
  in
  Json.Obj
    [
      ("traceEvents", Json.List events); ("displayTimeUnit", Json.String "ns");
    ]

let perfetto_string ?requests traces = Json.to_string (perfetto ?requests traces)

let write_file ?requests path traces =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc (perfetto ?requests traces);
      output_char oc '\n')

let request_spans_of_json doc =
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ -> []
  in
  let int_arg args key =
    match Json.member key args with Some (Json.Int i) -> Some i | _ -> None
  in
  List.filter_map
    (fun ev ->
      match (Json.member "ph" ev, Json.member "args" ev) with
      | Some (Json.String "X"), Some (Json.Obj fields as args) -> (
          match
            ( int_arg args "trace",
              int_arg args "span",
              int_arg args "parent",
              int_arg args "start_ns",
              int_arg args "end_ns" )
          with
          | Some trace, Some id, Some parent, Some start, Some stop ->
              let stage =
                match Json.member "name" ev with
                | Some (Json.String s) -> s
                | _ -> "?"
              in
              let attrs =
                List.filter_map
                  (function k, Json.String v -> Some (k, v) | _ -> None)
                  fields
              in
              Some
                {
                  Reqtrace.rs_trace = trace;
                  rs_id = id;
                  rs_parent = parent;
                  rs_stage = stage;
                  rs_start = start;
                  rs_end = stop;
                  rs_attrs = attrs;
                }
          | _ -> None)
      | _ -> None)
    events
