open Heron_sim

(* trace_event timestamps are in microseconds; emit fractional values so
   no nanosecond precision is lost. *)
let us_of_ns ns = Json.Float (float_of_int ns /. 1_000.)

let process_events ~pid name tr =
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ( "args",
          Json.Obj
            [
              ("name", Json.String name);
              ("dropped_spans", Json.Int (Trace.dropped tr));
            ] );
      ]
  in
  (* One track per span kind, numbered by first appearance. *)
  let tids = Hashtbl.create 8 in
  let tid_meta = ref [] in
  let tid_of span_name =
    match Hashtbl.find_opt tids span_name with
    | Some tid -> tid
    | None ->
        let tid = Hashtbl.length tids + 1 in
        Hashtbl.replace tids span_name tid;
        tid_meta :=
          Json.Obj
            [
              ("name", Json.String "thread_name");
              ("ph", Json.String "M");
              ("pid", Json.Int pid);
              ("tid", Json.Int tid);
              ("args", Json.Obj [ ("name", Json.String span_name) ]);
            ]
          :: !tid_meta;
        tid
  in
  let span_event (s : Trace.span) =
    Json.Obj
      [
        ("name", Json.String s.Trace.sp_name);
        ("ph", Json.String "X");
        ("pid", Json.Int pid);
        ("tid", Json.Int (tid_of s.Trace.sp_name));
        ("ts", us_of_ns s.Trace.sp_start);
        ("dur", us_of_ns (s.Trace.sp_end - s.Trace.sp_start));
        ( "args",
          Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.Trace.sp_attrs) );
      ]
  in
  let spans = List.map span_event (Trace.spans tr) in
  (meta :: List.rev !tid_meta) @ spans

let perfetto traces =
  let events =
    List.concat (List.mapi (fun i (name, tr) -> process_events ~pid:(i + 1) name tr) traces)
  in
  Json.Obj
    [
      ("traceEvents", Json.List events); ("displayTimeUnit", Json.String "ns");
    ]

let perfetto_string traces = Json.to_string (perfetto traces)

let write_file path traces =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc (perfetto traces);
      output_char oc '\n')
