(* {1 Log-bucketed histogram core}

   16 sub-buckets per power of two (HdrHistogram-style): values 0..15
   map to themselves, a value with highest bit k >= 4 maps to
   (k-4)*16 + (v >> (k-4)), giving a relative bucket width of 1/16. *)

let sub_bits = 4
let sub = 1 lsl sub_bits
let n_buckets = 944  (* covers every non-negative OCaml int *)

let bucket_of v =
  let v = max 0 v in
  if v < sub then v
  else begin
    let k = ref sub_bits and x = ref (v lsr sub_bits) in
    while !x > 1 do
      incr k;
      x := !x lsr 1
    done;
    (((!k - sub_bits) + 1) * sub) + (v lsr (!k - sub_bits)) - sub
  end

let bucket_upper i =
  if i < sub then i
  else begin
    let j = i - sub in
    let k = sub_bits + (j / sub) and s = j mod sub in
    ((sub + s + 1) lsl (k - sub_bits)) - 1
  end

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;
}

let make_histogram () =
  { h_count = 0; h_sum = 0; h_min = 0; h_max = 0; h_buckets = Array.make n_buckets 0 }

let observe h v =
  let v = max 0 v in
  if h.h_count = 0 || v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  let i = bucket_of v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_max h = h.h_max

(* Nearest-rank over (upper_bound, count) pairs in bucket order; must
   agree with Sample_set.percentile's rank arithmetic. *)
let percentile_of_buckets buckets ~count p =
  if p < 0. || p > 100. then invalid_arg "Metrics.hist_percentile: out of range";
  if count = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int count))) in
    let rec walk cum = function
      | [] -> 0
      | [ (ub, _) ] -> ub
      | (ub, c) :: rest -> if cum + c >= rank then ub else walk (cum + c) rest
    in
    walk 0 buckets
  end

let nonzero_buckets h =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then acc := (bucket_upper i, h.h_buckets.(i)) :: !acc
  done;
  !acc

let hist_percentile h p = percentile_of_buckets (nonzero_buckets h) ~count:h.h_count p

(* {1 Counters and gauges} *)

type counter = { mutable c_val : int }

let incr c = c.c_val <- c.c_val + 1
let add c n = c.c_val <- c.c_val + n
let counter_value c = c.c_val

type gauge = { mutable g_val : int }

let set_gauge g v = g.g_val <- v
let gauge_value g = g.g_val

(* {1 Registry} *)

type metric = C of counter | G of gauge | H of histogram

type t = { tbl : (string * (string * string) list, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }
let default = create ()

let norm_labels labels = List.sort compare labels

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let get_or_create t name labels ~make ~extract ~want =
  let key = (name, norm_labels labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some m -> (
      match extract m with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s is already a %s, not a %s" name
               (kind_name m) want))
  | None ->
      let x, m = make () in
      Hashtbl.replace t.tbl key m;
      x

let counter t ?(labels = []) name =
  get_or_create t name labels ~want:"counter"
    ~make:(fun () ->
      let c = { c_val = 0 } in
      (c, C c))
    ~extract:(function C c -> Some c | G _ | H _ -> None)

let gauge t ?(labels = []) name =
  get_or_create t name labels ~want:"gauge"
    ~make:(fun () ->
      let g = { g_val = 0 } in
      (g, G g))
    ~extract:(function G g -> Some g | C _ | H _ -> None)

let histogram t ?(labels = []) name =
  get_or_create t name labels ~want:"histogram"
    ~make:(fun () ->
      let h = make_histogram () in
      (h, H h))
    ~extract:(function H h -> Some h | C _ | G _ -> None)

(* {1 Snapshots} *)

type hist_snap = {
  hs_count : int;
  hs_sum : int;
  hs_min : int;
  hs_max : int;
  hs_p50 : int;
  hs_p90 : int;
  hs_p99 : int;
  hs_buckets : (int * int) list;
}

type value_snap = Counter_v of int | Gauge_v of int | Histogram_v of hist_snap

type entry = {
  e_name : string;
  e_labels : (string * string) list;
  e_value : value_snap;
}

type snapshot = entry list

let snap_histogram h =
  let buckets = nonzero_buckets h in
  {
    hs_count = h.h_count;
    hs_sum = h.h_sum;
    hs_min = h.h_min;
    hs_max = h.h_max;
    hs_p50 = percentile_of_buckets buckets ~count:h.h_count 50.;
    hs_p90 = percentile_of_buckets buckets ~count:h.h_count 90.;
    hs_p99 = percentile_of_buckets buckets ~count:h.h_count 99.;
    hs_buckets = buckets;
  }

let snapshot t =
  Hashtbl.fold
    (fun (name, labels) m acc ->
      let v =
        match m with
        | C c -> Counter_v c.c_val
        | G g -> Gauge_v g.g_val
        | H h -> Histogram_v (snap_histogram h)
      in
      { e_name = name; e_labels = labels; e_value = v } :: acc)
    t.tbl []
  |> List.sort (fun a b -> compare (a.e_name, a.e_labels) (b.e_name, b.e_labels))

let diff ~before ~after =
  let old = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace old (e.e_name, e.e_labels) e.e_value) before;
  List.map
    (fun e ->
      let prev = Hashtbl.find_opt old (e.e_name, e.e_labels) in
      let value =
        match (e.e_value, prev) with
        | Counter_v v, Some (Counter_v p) -> Counter_v (v - p)
        | Histogram_v hs, Some (Histogram_v ps) ->
            let prev_count ub =
              match List.assoc_opt ub ps.hs_buckets with Some c -> c | None -> 0
            in
            let buckets =
              List.filter_map
                (fun (ub, c) ->
                  let d = c - prev_count ub in
                  if d > 0 then Some (ub, d) else None)
                hs.hs_buckets
            in
            let count = hs.hs_count - ps.hs_count in
            Histogram_v
              {
                hs with
                hs_count = count;
                hs_sum = hs.hs_sum - ps.hs_sum;
                hs_p50 = percentile_of_buckets buckets ~count 50.;
                hs_p90 = percentile_of_buckets buckets ~count 90.;
                hs_p99 = percentile_of_buckets buckets ~count 99.;
                hs_buckets = buckets;
              }
        | v, _ -> v
      in
      { e with e_value = value })
    after

let find snap ?(labels = []) name =
  let labels = norm_labels labels in
  List.find_map
    (fun e ->
      if e.e_name = name && e.e_labels = labels then Some e.e_value else None)
    snap

(* {1 Export} *)

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

let to_text snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      let id = e.e_name ^ label_string e.e_labels in
      (match e.e_value with
      | Counter_v v -> Buffer.add_string buf (Printf.sprintf "%s %d" id v)
      | Gauge_v v -> Buffer.add_string buf (Printf.sprintf "%s %d" id v)
      | Histogram_v h ->
          Buffer.add_string buf
            (Printf.sprintf "%s count=%d sum=%d min=%d p50=%d p90=%d p99=%d max=%d" id
               h.hs_count h.hs_sum h.hs_min h.hs_p50 h.hs_p90 h.hs_p99 h.hs_max));
      Buffer.add_char buf '\n')
    snap;
  Buffer.contents buf

let to_json snap =
  let entry e =
    let base =
      [
        ("name", Json.String e.e_name);
        ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) e.e_labels));
      ]
    in
    match e.e_value with
    | Counter_v v ->
        Json.Obj (base @ [ ("type", Json.String "counter"); ("value", Json.Int v) ])
    | Gauge_v v ->
        Json.Obj (base @ [ ("type", Json.String "gauge"); ("value", Json.Int v) ])
    | Histogram_v h ->
        Json.Obj
          (base
          @ [
              ("type", Json.String "histogram");
              ("count", Json.Int h.hs_count);
              ("sum", Json.Int h.hs_sum);
              ("min", Json.Int h.hs_min);
              ("max", Json.Int h.hs_max);
              ("p50", Json.Int h.hs_p50);
              ("p90", Json.Int h.hs_p90);
              ("p99", Json.Int h.hs_p99);
              ( "buckets",
                Json.List
                  (List.map
                     (fun (ub, c) -> Json.List [ Json.Int ub; Json.Int c ])
                     h.hs_buckets) );
            ])
  in
  Json.Obj [ ("metrics", Json.List (List.map entry snap)) ]
