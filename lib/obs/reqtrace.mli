(** Request-scoped causal tracing: one span tree per request, a
    critical-path extractor over it, and stage-latency attribution.

    {!Heron_sim.Trace} answers "what did this {e replica} spend time
    on"; this module answers "why was this {e request} slow". A trace is
    minted at client submit and its id travels inside the request
    through the multicast, coordination, admission and execution layers;
    every component emits parent-linked spans against it. When the
    client observes the reply the tree is {e finished}: the critical
    path is extracted, per-stage latency lands in the registry
    ([req.stage_ns{stage=...}], [req.e2e_ns]), the tree joins a bounded
    ring of recent requests, and a top-K sampler keeps the slowest
    requests as exemplars.

    The collector is single-writer by construction (one simulation
    thread) and records no virtual time: attaching it never changes
    simulated latencies or throughput, only host-side bookkeeping.

    Stage taxonomy (DESIGN.md §11): [request] (the root; its own
    critical-path share is reply transfer + client wakeup), [ordering],
    [mcast.order], [mcast.commit], [phase2], [conflict-wait], [execute],
    [phase4], [state-transfer], [redirect]. With the compartmentalized
    pipeline (DESIGN.md §12) additionally [batch.wait] (batcher enqueue
    to flush) and [exec.queue] (executor-pool admission to dequeue,
    emitted only when the wait is nonzero). *)

open Heron_sim

type span = {
  rs_trace : int;  (** owning trace id *)
  rs_id : int;  (** unique within the collector; > 0 *)
  rs_parent : int;  (** parent span id; 0 marks the root *)
  rs_stage : string;
  rs_start : Time_ns.t;
  rs_end : Time_ns.t;
  rs_attrs : (string * string) list;
}

type tree = {
  tr_trace : int;
  tr_root : span;
  tr_spans : span list;  (** every span of the trace, root included *)
}

val duration : tree -> Time_ns.t
(** Root span duration: client submit to reply. *)

(** {1 Collector} *)

type t

val create : ?ring:int -> ?exemplars:int -> ?max_spans:int -> unit -> t
(** A collector retaining the most recent [ring] (default 512) finished
    trees, the [exemplars] (default 8) slowest ones, and at most
    [max_spans] (default 256) spans per trace (excess spans are counted
    and dropped, never unbounded). *)

val attach_metrics : t -> Metrics.t -> unit
(** Publish per-stage critical-path attributions as
    [req.stage_ns{stage=...}] histograms, end-to-end latency as
    [req.e2e_ns], and the [req.traces], [req.late_spans],
    [req.dropped_spans] counters into [reg] on every {!finish}. *)

val start_trace :
  t -> ?attrs:(string * string) list -> now:Time_ns.t -> unit -> int * int
(** Mint a trace at client submit time: returns [(trace id, root span
    id)], both to be carried inside the request. The root span stays
    open until {!finish}. *)

val add_span :
  t ->
  trace:int ->
  parent:int ->
  stage:string ->
  ?attrs:(string * string) list ->
  start:Time_ns.t ->
  Time_ns.t ->
  int
(** [add_span t ~trace ~parent ~stage ~start stop] records a completed
    span and returns its id (a parent for finer sub-spans). Returns [0]
    without recording when the trace is unknown or already finished
    (a {e late} span — e.g. a state transfer outliving the request that
    triggered it) or when the trace is at its span cap. Raises
    [Invalid_argument] if [stop < start]. *)

val finish : t -> trace:int -> now:Time_ns.t -> unit
(** Close the root span at [now] (the client-side reply instant),
    extract the critical path, feed the stage histograms, and retain the
    tree. No-op for unknown trace ids. *)

val discard : t -> trace:int -> unit
(** Drop an in-flight trace without recording anything (a request
    abandoned by its client). *)

val completed : t -> tree list
(** The retained ring, oldest first. *)

val exemplars : t -> tree list
(** The slowest finished requests, slowest first. *)

val export_trees : t -> tree list
(** Ring plus any exemplars already rotated out of it, deduplicated,
    in trace-id order: what the Perfetto exporter renders. *)

val finished : t -> int
(** Total trees finished (the ring keeps only the most recent). *)

val late_spans : t -> int
(** Spans that arrived for finished or unknown traces. *)

val dropped_spans : t -> int
(** Spans refused by the per-trace cap. *)

(** {1 Critical-path analysis}

    Pure functions over spans, shared by the collector, the tests and
    [probe explain] (which re-reads spans from a Perfetto dump). *)

type node = { n_span : span; n_children : node list }
(** A span with its children, each clipped conceptually to the parent
    interval during analysis (never mutated). *)

val nest : span list -> node option
(** Build the tree of one trace. The root is the [rs_parent = 0] span
    (earliest wins if several); spans whose parent id is missing from
    the list — dropped or late parents — attach to the root. Siblings
    contained in another sibling's interval are re-nested under it, so
    components that only know the root id (the multicast layer) still
    land inside the stage that covers them. Children are ordered
    deterministically by [(start, -end, stage, id)]. [None] on an empty
    list or when no root span is present (a truncated dump). *)

type seg = {
  sg_span : span;  (** the span whose stage owns this interval *)
  sg_from : Time_ns.t;
  sg_until : Time_ns.t;
}

val critical_segments : node -> seg list
(** Walk the tree backwards from the root's end: each interval of the
    root span is attributed to the deepest last-finishing span covering
    it, gaps to the enclosing span itself. Segments are returned in
    chronological order, are disjoint, and partition the root interval
    exactly — their durations sum to {!duration} with no slack. *)

val breakdown : seg list -> (string * int) list
(** Total attributed nanoseconds per stage, largest first (ties by
    stage name). *)

val trees_of_spans : span list -> tree list
(** Regroup a flat span list (e.g. re-read from a Perfetto dump) into
    trees by trace id, slowest first. Traces with no root span are
    dropped. *)

val render_tree : tree -> string
(** Human-readable critical path: one header line (trace id, end-to-end
    latency, span count), one line per critical segment with offset,
    duration, stage and span attributes, and a final breakdown line. *)
