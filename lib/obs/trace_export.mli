(** Chrome / Perfetto [trace_event] export of {!Heron_sim.Trace} spans.

    Produces the JSON object format understood by [ui.perfetto.dev] and
    [chrome://tracing]: one process per traced replica (named after it),
    one named track (thread) per span kind — [ordering], [phase2],
    [execute], [phase4], [state-transfer] each get their own row — and
    one complete ("X") event per span, with the span attributes as event
    [args]. Timestamps are virtual nanoseconds rendered in the format's
    microsecond unit, so durations read directly in the UI.

    Request-scoped trees ({!Reqtrace}) export into the same document as
    a dedicated "requests" process with one track per request, so a
    request's whole causal history reads as one row of the UI next to
    the per-replica component rows. Each request span's [args] carry
    its exact causal identity ([trace], [span], [parent]) and exact
    nanosecond endpoints, making the dump self-describing:
    {!request_spans_of_json} rebuilds the trees from it, which is how
    [probe explain] re-derives critical paths offline. *)

open Heron_sim

val perfetto : ?requests:Reqtrace.tree list -> (string * Trace.t) list -> Json.t
(** [perfetto [(replica_name, trace); ...]] builds the trace document.
    Processes are numbered in list order; dropped span counts are
    reported in the process metadata args. [requests] (e.g.
    {!Reqtrace.export_trees}) adds the per-request process. *)

val perfetto_string : ?requests:Reqtrace.tree list -> (string * Trace.t) list -> string

val write_file : ?requests:Reqtrace.tree list -> string -> (string * Trace.t) list -> unit
(** Write the document to a file (truncating). *)

val request_spans_of_json : Json.t -> Reqtrace.span list
(** Recover the request spans embedded in a trace document produced
    with [requests]; other events are ignored. Feed the result to
    {!Reqtrace.trees_of_spans}. *)
