(** Chrome / Perfetto [trace_event] export of {!Heron_sim.Trace} spans.

    Produces the JSON object format understood by [ui.perfetto.dev] and
    [chrome://tracing]: one process per traced replica (named after it),
    one named track (thread) per span kind — [ordering], [phase2],
    [execute], [phase4], [state-transfer] each get their own row — and
    one complete ("X") event per span, with the span attributes as event
    [args]. Timestamps are virtual nanoseconds rendered in the format's
    microsecond unit, so durations read directly in the UI. *)

open Heron_sim

val perfetto : (string * Trace.t) list -> Json.t
(** [perfetto [(replica_name, trace); ...]] builds the trace document.
    Processes are numbered in list order; dropped span counts are
    reported in the process metadata args. *)

val perfetto_string : (string * Trace.t) list -> string

val write_file : string -> (string * Trace.t) list -> unit
(** Write the document to a file (truncating). *)
