(** Minimal JSON values, printing and parsing.

    The exporters in this library emit machine-readable results
    ([--metrics] dumps, Perfetto traces) and the test suite must be able
    to check them without external dependencies, so both directions live
    here. The printer always emits valid JSON (non-finite floats become
    [null]); the parser accepts standard JSON including escape
    sequences. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). *)

val to_channel : out_channel -> t -> unit

exception Parse_error of string

val parse_exn : string -> t
(** Parse a complete JSON document; raises {!Parse_error} on malformed
    input or trailing garbage. *)

val parse : string -> (t, string) result

(** {1 Accessors (for tests and tools)} *)

val member : string -> t -> t option
(** Field of an object; [None] for missing fields or non-objects. *)

val to_list_exn : t -> t list
(** The elements of a [List]; raises [Invalid_argument] otherwise. *)
