open Heron_sim

type span = {
  rs_trace : int;
  rs_id : int;
  rs_parent : int;
  rs_stage : string;
  rs_start : Time_ns.t;
  rs_end : Time_ns.t;
  rs_attrs : (string * string) list;
}

type tree = { tr_trace : int; tr_root : span; tr_spans : span list }

let duration tree = tree.tr_root.rs_end - tree.tr_root.rs_start

(* ---------- critical-path analysis (pure) ---------- *)

type node = { n_span : span; n_children : node list }

let cmp_child a b =
  (* (start asc, end desc, stage, id): a long span sorts before the
     shorter spans it covers, which is what containment nesting wants. *)
  let c = compare a.rs_start b.rs_start in
  if c <> 0 then c
  else
    let c = compare b.rs_end a.rs_end in
    if c <> 0 then c
    else
      let c = compare a.rs_stage b.rs_stage in
      if c <> 0 then c else compare a.rs_id b.rs_id

(* Re-nest siblings: a sibling whose interval lies inside an earlier
   (sorted) sibling's interval becomes its child. This is how spans
   parented directly to the root by components that never see
   intermediate span ids (the multicast layer) end up inside the stage
   span that covers them. One level of sibling nesting per tree level. *)
let nest_siblings nodes =
  let nodes = List.sort (fun a b -> cmp_child a.n_span b.n_span) nodes in
  (* Mutable scaffolding: children attach as their container pops. *)
  let result = ref [] in
  let stack : (node * node list ref) list ref = ref [] in
  let contains outer inner =
    outer.n_span.rs_start <= inner.n_span.rs_start
    && inner.n_span.rs_end <= outer.n_span.rs_end
  in
  let finalize (n, extra) =
    if !extra = [] then n
    else
      let kids =
        List.sort (fun a b -> cmp_child a.n_span b.n_span)
          (n.n_children @ List.rev !extra)
      in
      { n with n_children = kids }
  in
  let pop () =
    match !stack with
    | [] -> assert false
    | top :: rest ->
        stack := rest;
        let n = finalize top in
        (match rest with
        | (_, kids) :: _ -> kids := n :: !kids
        | [] -> result := n :: !result)
  in
  List.iter
    (fun n ->
      while
        match !stack with
        | (outer, _) :: _ -> not (contains outer n)
        | [] -> false
      do
        pop ()
      done;
      stack := (n, ref []) :: !stack)
    nodes;
  while !stack <> [] do
    pop ()
  done;
  List.rev !result

let nest spans =
  let roots = List.filter (fun s -> s.rs_parent = 0) spans in
  let root =
    match List.sort (fun a b -> compare (a.rs_start, a.rs_id) (b.rs_start, b.rs_id)) roots with
    | r :: _ -> Some r
    | [] -> None
  in
  match root with
  | None -> None
  | Some root ->
      let ids = Hashtbl.create 32 in
      List.iter (fun s -> Hashtbl.replace ids s.rs_id ()) spans;
      let by_parent : (int, span list) Hashtbl.t = Hashtbl.create 32 in
      List.iter
        (fun s ->
          if s.rs_id <> root.rs_id then begin
            (* A missing parent (dropped span, truncated dump, extra
               parentless root) falls back to the root. *)
            let p =
              if s.rs_parent <> 0 && s.rs_parent <> s.rs_id
                 && Hashtbl.mem ids s.rs_parent
              then s.rs_parent
              else root.rs_id
            in
            let prev = Option.value ~default:[] (Hashtbl.find_opt by_parent p) in
            Hashtbl.replace by_parent p (s :: prev)
          end)
        spans;
      (* Cycles among malformed parent links could otherwise loop: each
         span is expanded at most once. *)
      let seen = Hashtbl.create 32 in
      let rec build s =
        let kids =
          if Hashtbl.mem seen s.rs_id then []
          else begin
            Hashtbl.replace seen s.rs_id ();
            Option.value ~default:[] (Hashtbl.find_opt by_parent s.rs_id)
          end
        in
        let kids = List.map build (List.sort cmp_child kids) in
        { n_span = s; n_children = nest_siblings kids }
      in
      Some (build root)

type seg = { sg_span : span; sg_from : Time_ns.t; sg_until : Time_ns.t }

let critical_segments root =
  let segs = ref [] in
  (* Attribute [lo, hi) of [n]'s interval: walking backwards from [hi],
     the last-finishing child claims its (clipped) interval and recurses;
     gaps between children — and whatever is left at [lo] — belong to
     [n] itself. The emitted segments partition [lo, hi) exactly. *)
  let rec walk n lo hi =
    let kids =
      List.sort
        (fun a b ->
          let c = compare b.n_span.rs_end a.n_span.rs_end in
          if c <> 0 then c
          else
            let c = compare b.n_span.rs_start a.n_span.rs_start in
            if c <> 0 then c else compare a.n_span.rs_id b.n_span.rs_id)
        n.n_children
    in
    let cursor = ref hi in
    List.iter
      (fun c ->
        let ce = min c.n_span.rs_end !cursor in
        let cs = max c.n_span.rs_start lo in
        if cs < ce then begin
          if ce < !cursor then
            segs := { sg_span = n.n_span; sg_from = ce; sg_until = !cursor } :: !segs;
          walk c cs ce;
          cursor := cs
        end)
      kids;
    if lo < !cursor then
      segs := { sg_span = n.n_span; sg_from = lo; sg_until = !cursor } :: !segs
  in
  walk root root.n_span.rs_start root.n_span.rs_end;
  (* Pushed in decreasing-time order, so the list is chronological. *)
  !segs

let breakdown segs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun sg ->
      let stage = sg.sg_span.rs_stage in
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl stage) in
      Hashtbl.replace tbl stage (prev + (sg.sg_until - sg.sg_from)))
    segs;
  Hashtbl.fold (fun stage ns acc -> (stage, ns) :: acc) tbl []
  |> List.sort (fun (sa, na) (sb, nb) ->
         let c = compare nb na in
         if c <> 0 then c else compare sa sb)

let trees_of_spans spans =
  let by_trace = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_trace s.rs_trace) in
      Hashtbl.replace by_trace s.rs_trace (s :: prev))
    spans;
  Hashtbl.fold
    (fun trace spans acc ->
      let spans = List.rev spans in
      let roots = List.filter (fun s -> s.rs_parent = 0) spans in
      match
        List.sort (fun a b -> compare (a.rs_start, a.rs_id) (b.rs_start, b.rs_id)) roots
      with
      | root :: _ -> { tr_trace = trace; tr_root = root; tr_spans = spans } :: acc
      | [] -> acc)
    by_trace []
  |> List.sort (fun a b ->
         let c = compare (duration b) (duration a) in
         if c <> 0 then c else compare a.tr_trace b.tr_trace)

let pp_ns ns = Format.asprintf "%a" Time_ns.pp ns

let render_tree tree =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "trace %d: %s end-to-end, %d spans\n" tree.tr_trace
       (pp_ns (duration tree))
       (List.length tree.tr_spans));
  (match nest tree.tr_spans with
  | None -> Buffer.add_string buf "  (no root span)\n"
  | Some root ->
      let segs = critical_segments root in
      let t0 = tree.tr_root.rs_start in
      List.iter
        (fun sg ->
          Buffer.add_string buf
            (Printf.sprintf "  +%-10s %-10s %s" (pp_ns (sg.sg_from - t0))
               (pp_ns (sg.sg_until - sg.sg_from))
               sg.sg_span.rs_stage);
          List.iter
            (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=%s" k v))
            sg.sg_span.rs_attrs;
          Buffer.add_char buf '\n')
        segs;
      Buffer.add_string buf "  breakdown:";
      List.iter
        (fun (stage, ns) ->
          Buffer.add_string buf (Printf.sprintf " %s=%s" stage (pp_ns ns)))
        (breakdown segs);
      Buffer.add_char buf '\n');
  Buffer.contents buf

(* ---------- collector ---------- *)

type pending = {
  p_root : int;
  p_start : Time_ns.t;
  p_attrs : (string * string) list;
  mutable p_spans : span list;  (* newest first *)
  mutable p_nspans : int;
}

type mstate = {
  m_reg : Metrics.t;
  m_e2e : Metrics.histogram;
  m_traces : Metrics.counter;
  m_late : Metrics.counter;
  m_dropped : Metrics.counter;
  m_stage : (string, Metrics.histogram) Hashtbl.t;
}

type t = {
  ring : tree option array;
  mutable ring_next : int;
  mutable n_finished : int;
  k_exemplars : int;
  mutable slowest : tree list;  (* slowest first, length <= k_exemplars *)
  max_spans : int;
  inflight : (int, pending) Hashtbl.t;
  mutable next_id : int;
  mutable n_late : int;
  mutable n_dropped : int;
  mutable metrics : mstate option;
}

let create ?(ring = 512) ?(exemplars = 8) ?(max_spans = 256) () =
  if ring <= 0 then invalid_arg "Reqtrace.create: ring must be positive";
  if exemplars < 0 then invalid_arg "Reqtrace.create: exemplars must be >= 0";
  if max_spans <= 0 then invalid_arg "Reqtrace.create: max_spans must be positive";
  {
    ring = Array.make ring None;
    ring_next = 0;
    n_finished = 0;
    k_exemplars = exemplars;
    slowest = [];
    max_spans;
    inflight = Hashtbl.create 64;
    next_id = 1;
    n_late = 0;
    n_dropped = 0;
    metrics = None;
  }

let attach_metrics t reg =
  t.metrics <-
    Some
      {
        m_reg = reg;
        m_e2e = Metrics.histogram reg "req.e2e_ns";
        m_traces = Metrics.counter reg "req.traces";
        m_late = Metrics.counter reg "req.late_spans";
        m_dropped = Metrics.counter reg "req.dropped_spans";
        m_stage = Hashtbl.create 16;
      }

let stage_hist m stage =
  match Hashtbl.find_opt m.m_stage stage with
  | Some h -> h
  | None ->
      let h = Metrics.histogram m.m_reg ~labels:[ ("stage", stage) ] "req.stage_ns" in
      Hashtbl.replace m.m_stage stage h;
      h

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let start_trace t ?(attrs = []) ~now () =
  let trace = fresh_id t in
  let root = fresh_id t in
  Hashtbl.replace t.inflight trace
    { p_root = root; p_start = now; p_attrs = attrs; p_spans = []; p_nspans = 0 };
  (trace, root)

let note_late t =
  t.n_late <- t.n_late + 1;
  Option.iter (fun m -> Metrics.incr m.m_late) t.metrics

let add_span t ~trace ~parent ~stage ?(attrs = []) ~start stop =
  if stop < start then invalid_arg "Reqtrace.add_span: span ends before it starts";
  match Hashtbl.find_opt t.inflight trace with
  | None ->
      note_late t;
      0
  | Some p ->
      if p.p_nspans >= t.max_spans then begin
        t.n_dropped <- t.n_dropped + 1;
        Option.iter (fun m -> Metrics.incr m.m_dropped) t.metrics;
        0
      end
      else begin
        let id = fresh_id t in
        p.p_spans <-
          {
            rs_trace = trace;
            rs_id = id;
            rs_parent = parent;
            rs_stage = stage;
            rs_start = start;
            rs_end = stop;
            rs_attrs = attrs;
          }
          :: p.p_spans;
        p.p_nspans <- p.p_nspans + 1;
        id
      end

let insert_exemplar t tree =
  if t.k_exemplars > 0 then begin
    let d = duration tree in
    let rec ins = function
      | [] -> [ tree ]
      | x :: rest ->
          if d > duration x then tree :: x :: rest else x :: ins rest
    in
    let l = ins t.slowest in
    t.slowest <-
      (if List.length l > t.k_exemplars then List.filteri (fun i _ -> i < t.k_exemplars) l
       else l)
  end

let finish t ~trace ~now =
  match Hashtbl.find_opt t.inflight trace with
  | None -> ()
  | Some p ->
      Hashtbl.remove t.inflight trace;
      let root =
        {
          rs_trace = trace;
          rs_id = p.p_root;
          rs_parent = 0;
          rs_stage = "request";
          rs_start = p.p_start;
          rs_end = max p.p_start now;
          rs_attrs = p.p_attrs;
        }
      in
      let tree = { tr_trace = trace; tr_root = root; tr_spans = root :: List.rev p.p_spans } in
      t.ring.(t.ring_next) <- Some tree;
      t.ring_next <- (t.ring_next + 1) mod Array.length t.ring;
      t.n_finished <- t.n_finished + 1;
      insert_exemplar t tree;
      Option.iter
        (fun m ->
          Metrics.incr m.m_traces;
          Metrics.observe m.m_e2e (duration tree);
          match nest tree.tr_spans with
          | None -> ()
          | Some node ->
              List.iter
                (fun (stage, ns) -> Metrics.observe (stage_hist m stage) ns)
                (breakdown (critical_segments node)))
        t.metrics

let discard t ~trace = Hashtbl.remove t.inflight trace

let completed t =
  let cap = Array.length t.ring in
  let n = min t.n_finished cap in
  let first = if t.n_finished <= cap then 0 else t.ring_next in
  List.init n (fun i ->
      match t.ring.((first + i) mod cap) with Some tr -> tr | None -> assert false)

let exemplars t = t.slowest

let export_trees t =
  let seen = Hashtbl.create 64 in
  let keep tr =
    if Hashtbl.mem seen tr.tr_trace then false
    else begin
      Hashtbl.replace seen tr.tr_trace ();
      true
    end
  in
  List.filter keep (completed t @ t.slowest)
  |> List.sort (fun a b -> compare a.tr_trace b.tr_trace)

let finished t = t.n_finished
let late_spans t = t.n_late
let dropped_spans t = t.n_dropped
