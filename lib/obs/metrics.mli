(** Label-aware metric registry: counters, gauges and log-bucketed
    latency histograms, with cheap hot-path updates.

    A metric is identified by its name plus a sorted label set; asking a
    registry twice for the same identity returns the same underlying
    metric (label order does not matter), which is how components
    sharing a registry accumulate into one series. [counter]/[gauge]/
    [histogram] return {e handles}: look a metric up once at setup time
    and the per-event cost is a couple of integer operations, cheap
    enough to leave enabled during benchmarks.

    Conventions used across the Heron stack (see DESIGN.md §8):
    dot-separated lowercase names grouped by layer ([rdma.*], [mcast.*],
    [coord.*], [store.*], [replica.*]); histogram names carry their unit
    as a suffix ([*_ns], [*_bytes]). *)

type t
(** A registry. *)

val create : unit -> t

val default : t
(** The process-wide registry. [Config.default] wires it into every
    deployment so a whole benchmark run aggregates here; create a fresh
    registry (and put it in the config) to isolate a run. *)

(** {1 Counters (monotonic)} *)

type counter

val counter : t -> ?labels:(string * string) list -> string -> counter
(** Find or create. Raises [Invalid_argument] if the identity already
    names a metric of another kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges (last value wins)} *)

type gauge

val gauge : t -> ?labels:(string * string) list -> string -> gauge
val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

(** {1 Histograms}

    Log-bucketed with 16 sub-buckets per power of two: values 0..15 are
    exact, larger values land in a bucket whose width is 1/16 of its
    base, so any quantile estimate is at most ~6.25% above the true
    sample value. Negative observations clamp to 0. *)

type histogram

val histogram : t -> ?labels:(string * string) list -> string -> histogram
val observe : histogram -> int -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> int
val hist_max : histogram -> int

val hist_percentile : histogram -> float -> int
(** Nearest-rank percentile, reported as the upper bound of the bucket
    holding the rank-th observation (0 for an empty histogram; raises
    [Invalid_argument] outside [0..100]). For any sample set, the bucket
    of [hist_percentile h p] equals the bucket of
    [Sample_set.percentile s p] computed on the same values. *)

val bucket_of : int -> int
(** Bucket index of a value (exposed for tests). Monotone. *)

val bucket_upper : int -> int
(** Largest value mapping to the given bucket index. *)

(** {1 Snapshots} *)

type hist_snap = {
  hs_count : int;
  hs_sum : int;
  hs_min : int;  (** 0 when empty *)
  hs_max : int;
  hs_p50 : int;
  hs_p90 : int;
  hs_p99 : int;
  hs_buckets : (int * int) list;  (** (bucket upper bound, count), non-empty buckets only *)
}

type value_snap = Counter_v of int | Gauge_v of int | Histogram_v of hist_snap

type entry = {
  e_name : string;
  e_labels : (string * string) list;  (** sorted *)
  e_value : value_snap;
}

type snapshot = entry list
(** Sorted by (name, labels): deterministic output. *)

val snapshot : t -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-metric delta of a measurement window: counters and histogram
    buckets/counts/sums subtract (entries absent from [before] count as
    zero); gauges, histogram min/max and the re-derived percentiles are
    taken from [after]'s state. Entries only in [before] are dropped. *)

val find : snapshot -> ?labels:(string * string) list -> string -> value_snap option
(** Entry by identity (labels in any order). *)

(** {1 Export} *)

val to_text : snapshot -> string
(** One line per metric: [name{k="v"} value] for counters/gauges,
    count/p50/p99/max summaries for histograms. *)

val to_json : snapshot -> Json.t
(** [{"metrics": [{"name", "labels", "type", ...}, ...]}]. *)
