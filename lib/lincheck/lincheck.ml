type ('op, 'res) event = {
  ev_client : int;
  ev_op : 'op;
  ev_result : 'res;
  ev_invoke : int;
  ev_return : int;
}

type ('op, 'res, 'state) spec = {
  initial : 'state;
  apply : 'state -> 'op -> 'state * 'res;
  equal_result : 'res -> 'res -> bool;
}

let bit_get mask i = Char.code (Bytes.get mask (i / 8)) land (1 lsl (i mod 8)) <> 0

let bit_flip mask i =
  Bytes.set mask (i / 8)
    (Char.chr (Char.code (Bytes.get mask (i / 8)) lxor (1 lsl (i mod 8))))

let check spec events =
  let evs = Array.of_list events in
  let n = Array.length evs in
  Array.iter
    (fun e ->
      if e.ev_return < e.ev_invoke then
        invalid_arg "Lincheck.check: event returns before it is invoked")
    evs;
  if n = 0 then true
  else begin
    (* Memoize failed configurations: (linearized set, state). States
       must be persistent values with structural equality. *)
    let memo = Hashtbl.create 4096 in
    let mask = Bytes.make ((n + 7) / 8) '\000' in
    let rec dfs state count =
      count = n
      ||
      let key = (Bytes.to_string mask, state) in
      if Hashtbl.mem memo key then false
      else begin
        Hashtbl.add memo key ();
        (* An event can be linearized next only if no other pending
           event returned strictly before it was invoked. *)
        let min_return = ref max_int in
        for i = 0 to n - 1 do
          if (not (bit_get mask i)) && evs.(i).ev_return < !min_return then
            min_return := evs.(i).ev_return
        done;
        let found = ref false in
        let i = ref 0 in
        while (not !found) && !i < n do
          let e = evs.(!i) in
          if (not (bit_get mask !i)) && e.ev_invoke <= !min_return then begin
            let state', res = spec.apply state e.ev_op in
            if spec.equal_result res e.ev_result then begin
              bit_flip mask !i;
              if dfs state' (count + 1) then found := true;
              bit_flip mask !i
            end
          end;
          incr i
        done;
        !found
      end
    in
    dfs spec.initial 0
  end

let counterexample_free ?pp_op ?pp_result spec events =
  if check spec events then Ok ()
  else begin
    (* The verdict depends only on the event set, so the invoke-ordered
       prefixes of the history form a chain whose last element (the full
       history) fails: the smallest failing prefix is the debuggable
       core of the violation — everything after its last event is
       noise. *)
    let sorted =
      List.stable_sort
        (fun a b ->
          match compare a.ev_invoke b.ev_invoke with
          | 0 -> compare a.ev_return b.ev_return
          | c -> c)
        events
    in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let rec first_failing k =
      if k >= n then n
      else if not (check spec (Array.to_list (Array.sub arr 0 k))) then k
      else first_failing (k + 1)
    in
    let k = first_failing 1 in
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf
         "history of %d events admits no linearization consistent with the \
          sequential specification; shortest failing prefix: %d events"
         n k);
    for i = 0 to k - 1 do
      let e = arr.(i) in
      Buffer.add_string buf
        (Printf.sprintf "\n  client %d [%d, %d]" e.ev_client e.ev_invoke e.ev_return);
      (match pp_op with
      | Some pp -> Buffer.add_string buf (Format.asprintf " %a" pp e.ev_op)
      | None -> ());
      match pp_result with
      | Some pp -> Buffer.add_string buf (Format.asprintf " -> %a" pp e.ev_result)
      | None -> ()
    done;
    Error (Buffer.contents buf)
  end
