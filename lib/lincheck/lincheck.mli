(** Linearizability checking of concurrent histories (Wing & Gong).

    Heron's correctness claim (paper Section III-C) is that every
    execution is linearizable: client requests appear to take effect
    atomically at some point between invocation and response, consistent
    with the objects' sequential specification. This module decides that
    property for recorded histories — the test-suite runs concurrent
    clients against a deployment, records what each observed, and checks
    the history against a pure model of the application.

    The checker is the classic Wing & Gong depth-first search with
    memoization on (set of linearized operations, abstract state);
    exponential in the worst case but fast for the test-suite's
    histories (hundreds of operations, single-digit client counts). *)

type ('op, 'res) event = {
  ev_client : int;  (** issuing client (one outstanding op per client) *)
  ev_op : 'op;
  ev_result : 'res;
  ev_invoke : int;  (** invocation time *)
  ev_return : int;  (** response time; must be >= [ev_invoke] *)
}

type ('op, 'res, 'state) spec = {
  initial : 'state;
  apply : 'state -> 'op -> 'state * 'res;
      (** pure sequential semantics; ['state] must support structural
          equality and hashing (used for memoization) *)
  equal_result : 'res -> 'res -> bool;
}

val check : ('op, 'res, 'state) spec -> ('op, 'res) event list -> bool
(** Whether some total order of the events respects both real time
    (an event returning before another's invocation is ordered before
    it) and the sequential specification (each event's recorded result
    matches [apply] at its place in the order). *)

val counterexample_free :
  ?pp_op:(Format.formatter -> 'op -> unit) ->
  ?pp_result:(Format.formatter -> 'res -> unit) ->
  ('op, 'res, 'state) spec ->
  ('op, 'res) event list ->
  (unit, string) result
(** Like {!check} but explains a violation (for test failure output and
    chaos repros). The message reports the {e shortest failing prefix}
    of the history — events sorted by invocation time, cut at the first
    prefix that already admits no linearization — one line per event:
    [client ID [invoke, return]], followed by the operation and the
    observed result when [pp_op] / [pp_result] are given. Everything
    after that prefix is noise; the violation is contained in the
    listed events. *)
