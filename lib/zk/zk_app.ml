open Heron_core

type path = string list

type req =
  | Create of { path : path; data : string }
  | Read of path
  | Write of { path : path; data : string }
  | Cas of { path : path; expect : int; data : string }
  | Delete of path
  | Children of path
  | Touch of path list
  | Multi_read of path list

type err = No_node | Node_exists | Bad_version | Not_empty

type resp =
  | Z_ok
  | Z_data of { data : string; version : int }
  | Z_children of string list
  | Z_snapshot of (path * (string * int) option) list
  | Z_err of err

let pp_path fmt p = Format.fprintf fmt "/%s" (String.concat "/" p)

let pp_resp fmt = function
  | Z_ok -> Format.fprintf fmt "ok"
  | Z_data { data; version } -> Format.fprintf fmt "%S (v%d)" data version
  | Z_children cs -> Format.fprintf fmt "children [%s]" (String.concat "; " cs)
  | Z_snapshot entries ->
      Format.fprintf fmt "snapshot {%a}"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.fprintf f "; ")
           (fun f (p, e) ->
             match e with
             | Some (d, v) -> Format.fprintf f "%a=%S v%d" pp_path p d v
             | None -> Format.fprintf f "%a=absent" pp_path p))
        entries
  | Z_err No_node -> Format.fprintf fmt "error: no node"
  | Z_err Node_exists -> Format.fprintf fmt "error: node exists"
  | Z_err Bad_version -> Format.fprintf fmt "error: bad version"
  | Z_err Not_empty -> Format.fprintf fmt "error: not empty"

(* {1 Object ids}

   A znode's oid embeds its partition in the top byte (placement must
   be recoverable from the oid alone) over a 54-bit FNV-1a hash of the
   path. Collisions are theoretically possible but vanishingly unlikely
   at coordination-service namespace sizes. *)

let fnv1a s =
  (* FNV-1a folded into OCaml's 63-bit ints. *)
  let h = ref 0x3222325cbf29ce48 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land ((1 lsl 54) - 1)

let validate_path = function
  | [] -> invalid_arg "Zk_app: paths must be non-empty"
  | p -> List.iter (fun seg -> if seg = "" || String.contains seg '/' then
                       invalid_arg "Zk_app: bad path segment") p

let partition_of_path ~partitions p =
  validate_path p;
  fnv1a (List.hd p) mod partitions

let oid_of_path ~partitions p =
  let part = partition_of_path ~partitions p in
  Oid.of_int ((part lsl 54) lor fnv1a (String.concat "/" p))

let partition_of_oid oid = Oid.to_int oid lsr 54

(* {1 Znode encoding} *)

type znode = { zn_data : string; zn_version : int; zn_children : string list }

let encode_znode z =
  let b = Buffer.create 64 in
  Buffer.add_int32_le b (Int32.of_int z.zn_version);
  Buffer.add_uint16_le b (String.length z.zn_data);
  Buffer.add_string b z.zn_data;
  Buffer.add_uint16_le b (List.length z.zn_children);
  List.iter
    (fun c ->
      Buffer.add_uint16_le b (String.length c);
      Buffer.add_string b c)
    z.zn_children;
  Buffer.to_bytes b

let decode_znode raw =
  let pos = ref 0 in
  let u16 () =
    let v = Bytes.get_uint16_le raw !pos in
    pos := !pos + 2;
    v
  in
  let str () =
    let len = u16 () in
    let s = Bytes.sub_string raw !pos len in
    pos := !pos + len;
    s
  in
  let zn_version = Int32.to_int (Bytes.get_int32_le raw !pos) in
  pos := !pos + 4;
  let zn_data = str () in
  let n = u16 () in
  let zn_children = List.init n (fun _ -> str ()) in
  { zn_data; zn_version; zn_children }

(* {1 Request metadata} *)

let paths_of = function
  | Create { path; _ } -> (
      (* parent link maintained in the same subtree *)
      match List.rev path with
      | _ :: (_ :: _ as rparent) -> [ path; List.rev rparent ]
      | _ -> [ path ])
  | Read p | Delete p | Children p -> [ p ]
  | Write { path; _ } | Cas { path; _ } -> [ path ]
  | Touch ps | Multi_read ps -> ps

let req_size req =
  24
  + List.fold_left
      (fun acc p -> acc + 8 + List.fold_left (fun a s -> a + String.length s) 0 p)
      0 (paths_of req)
  + (match req with
    | Create { data; _ } | Write { data; _ } | Cas { data; _ } -> String.length data
    | Read _ | Delete _ | Children _ | Touch _ | Multi_read _ -> 0)

let resp_size = function
  | Z_ok | Z_err _ -> 8
  | Z_data { data; _ } -> 16 + String.length data
  | Z_children cs -> 8 + List.fold_left (fun a c -> a + 2 + String.length c) 0 cs
  | Z_snapshot entries ->
      8
      + List.fold_left
          (fun a (p, e) ->
            a + 8
            + List.fold_left (fun a s -> a + String.length s) 0 p
            + match e with Some (d, _) -> String.length d + 8 | None -> 0)
          0 entries

let merge resps =
  match resps with
  | [] -> invalid_arg "Zk_app.merge: no responses"
  | [ (_, r) ] -> r
  | _ -> (
      (* Multi-partition: snapshots concatenate; other responses are
         replicated identically. *)
      match List.find_opt (fun (_, r) -> match r with Z_snapshot _ -> true | _ -> false) resps with
      | None -> snd (List.hd resps)
      | Some _ ->
          let entries =
            List.concat_map
              (fun (_, r) -> match r with Z_snapshot es -> es | _ -> [])
              resps
          in
          (* Canonical order: partitions answer in arbitrary order, so
             sort by path. *)
          Z_snapshot (List.sort compare entries))

(* {1 Execution} *)

let execute ~partitions (ctx : App.ctx) req =
  let oid p = oid_of_path ~partitions p in
  let read_node p =
    Option.map decode_znode (ctx.App.ctx_read_opt (oid p))
  in
  let write_node p z = ctx.App.ctx_write (oid p) (encode_znode z) in
  let is_local p = ctx.App.ctx_is_local (oid p) in
  match req with
  | Create { path; data } -> (
      validate_path path;
      match read_node path with
      | Some _ -> Z_err Node_exists
      | None -> (
          match List.rev path with
          | [] -> assert false
          | [ _ ] ->
              (* top-level znode under the virtual root *)
              write_node path { zn_data = data; zn_version = 0; zn_children = [] };
              Z_ok
          | leaf :: rparent -> (
              let parent = List.rev rparent in
              match read_node parent with
              | None -> Z_err No_node
              | Some pz ->
                  write_node parent
                    { pz with zn_children = pz.zn_children @ [ leaf ] };
                  write_node path { zn_data = data; zn_version = 0; zn_children = [] };
                  Z_ok)))
  | Read p -> (
      validate_path p;
      match read_node p with
      | Some z -> Z_data { data = z.zn_data; version = z.zn_version }
      | None -> Z_err No_node)
  | Write { path; data } -> (
      validate_path path;
      match read_node path with
      | None -> Z_err No_node
      | Some z ->
          write_node path { z with zn_data = data; zn_version = z.zn_version + 1 };
          Z_ok)
  | Cas { path; expect; data } -> (
      validate_path path;
      match read_node path with
      | None -> Z_err No_node
      | Some z ->
          if z.zn_version <> expect then Z_err Bad_version
          else begin
            write_node path { z with zn_data = data; zn_version = z.zn_version + 1 };
            Z_ok
          end)
  | Delete p -> (
      validate_path p;
      match read_node p with
      | None -> Z_err No_node
      | Some z ->
          if z.zn_children <> [] then Z_err Not_empty
          else begin
            (* Tombstone: version -1 marks deletion (reads treat it as
               absent); the parent's child link is removed. *)
            write_node p { zn_data = ""; zn_version = -1; zn_children = [] };
            (match List.rev p with
            | _ :: (_ :: _ as rparent) -> (
                let parent = List.rev rparent in
                let leaf = List.nth p (List.length p - 1) in
                match read_node parent with
                | Some pz ->
                    write_node parent
                      { pz with zn_children = List.filter (( <> ) leaf) pz.zn_children }
                | None -> ())
            | _ -> ());
            Z_ok
          end)
  | Children p -> (
      validate_path p;
      match read_node p with
      | Some z -> Z_children z.zn_children
      | None -> Z_err No_node)
  | Touch ps ->
      List.iter
        (fun p ->
          validate_path p;
          if is_local p then
            match read_node p with
            | Some z -> write_node p { z with zn_version = z.zn_version + 1 }
            | None -> ())
        ps;
      Z_ok
  | Multi_read ps ->
      let entries =
        List.filter_map
          (fun p ->
            validate_path p;
            if is_local p then
              Some
                ( p,
                  match read_node p with
                  | Some z -> Some (z.zn_data, z.zn_version)
                  | None -> None )
            else None)
          ps
      in
      Z_snapshot entries

(* Reads treat tombstoned and never-created nodes alike. *)
let read_opt_filter raw =
  match raw with
  | Some bytes when (decode_znode bytes).zn_version >= 0 -> Some bytes
  | Some _ | None -> None

let app ~partitions ~roots =
  if partitions <= 0 || partitions > 256 then
    invalid_arg "Zk_app.app: 1-256 partitions";
  let oid p = oid_of_path ~partitions p in
  {
    App.app_name = "zk";
    placement_of = (fun o -> App.Partition (partition_of_oid o));
    klass_of = (fun _ -> Versioned_store.Local);
    read_set = (fun req -> List.map oid (paths_of req));
    read_plan =
      (fun ~part req ->
        List.filter_map
          (fun p -> if partition_of_path ~partitions p = part then Some (oid p) else None)
          (paths_of req));
    write_sketch = (fun req -> List.map oid (paths_of req));
    req_size;
    resp_size;
    execute =
      (fun ctx req ->
        (* Wrap ctx_read_opt so deleted znodes read as absent. *)
        let ctx =
          { ctx with App.ctx_read_opt = (fun o -> read_opt_filter (ctx.App.ctx_read_opt o)) }
        in
        execute ~partitions ctx req);
    serial_hint = (fun _ -> false);
    read_only = (function Read _ | Children _ | Multi_read _ -> true | _ -> false);
    catalog =
      (fun () ->
        List.map
          (fun (name, data) ->
            {
              App.spec_oid = oid [ name ];
              spec_placement = App.Partition (partition_of_path ~partitions [ name ]);
              spec_klass = Versioned_store.Local;
              spec_cap = 0;
              spec_init = encode_znode { zn_data = data; zn_version = 0; zn_children = [] };
            })
          roots);
  }
