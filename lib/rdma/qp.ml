open Heron_sim
open Heron_obs

(* Per-QP-pair metric handles, resolved once at connect time so the
   per-verb cost is a few integer bumps. *)
type verb_obs = {
  vo_count : Metrics.counter;
  vo_bytes : Metrics.counter;
  vo_lat : Metrics.histogram;
}

type obs = {
  o_read : verb_obs;
  o_write : verb_obs;
  o_write_post : verb_obs;
  o_cas : verb_obs;
  o_transfer : verb_obs;
  o_failures : Metrics.counter;  (* verbs that hit the failure timeout *)
  o_dropped : Metrics.counter;  (* posted writes dropped on a dead peer *)
}

type t = {
  qp_src : Fabric.node;
  qp_dst : Fabric.node;
  mutable busy_until : Time_ns.t;
  qp_obs : obs;
}

exception Rdma_exception of { target : int; verb : string }

let make_obs ~src ~dst =
  let reg = Fabric.metrics (Fabric.fabric_of src) in
  let pair = [ ("src", Fabric.node_name src); ("dst", Fabric.node_name dst) ] in
  let verb v =
    let labels = ("verb", v) :: pair in
    {
      vo_count = Metrics.counter reg ~labels "rdma.verb.count";
      vo_bytes = Metrics.counter reg ~labels "rdma.verb.bytes";
      vo_lat = Metrics.histogram reg ~labels "rdma.verb.latency_ns";
    }
  in
  {
    o_read = verb "read";
    o_write = verb "write";
    o_write_post = verb "write_post";
    o_cas = verb "cas";
    o_transfer = verb "transfer";
    o_failures = Metrics.counter reg ~labels:pair "rdma.failure_timeouts";
    o_dropped = Metrics.counter reg ~labels:pair "rdma.dropped_writes";
  }

let connect ~src ~dst =
  { qp_src = src; qp_dst = dst; busy_until = 0; qp_obs = make_obs ~src ~dst }

let src t = t.qp_src
let dst t = t.qp_dst
let dropped_writes t = Metrics.counter_value t.qp_obs.o_dropped

let prof_and_eng t =
  let fab = Fabric.fabric_of t.qp_src in
  (Fabric.engine fab, Fabric.profile fab)

(* Injected extra one-way latency on this QP's link (chaos layer). *)
let fault_delay t =
  Fabric.link_extra_ns (Fabric.fabric_of t.qp_src)
    ~src:(Fabric.node_id t.qp_src) ~dst:(Fabric.node_id t.qp_dst)

(* Whether posted writes on this QP's link are being dropped. *)
let fault_drops t =
  Fabric.link_drops (Fabric.fabric_of t.qp_src)
    ~src:(Fabric.node_id t.qp_src) ~dst:(Fabric.node_id t.qp_dst)

(* Reserve this QP for one verb carrying [bytes_len] payload bytes and
   return the completion instant. RC ordering: a verb starts only after
   the previous one on the same QP completed. Records count, bytes and
   post-to-completion latency (queuing included) against [vo]. *)
let reserve t vo ~bytes_len =
  let eng, prof = prof_and_eng t in
  let posted = Engine.now eng in
  Engine.consume prof.Profile.post_ns;
  let start = max (Engine.now eng) t.busy_until in
  let completion = start + Profile.verb_latency prof ~bytes_len + fault_delay t in
  t.busy_until <- completion;
  Metrics.incr vo.vo_count;
  Metrics.add vo.vo_bytes bytes_len;
  Metrics.observe vo.vo_lat (completion - posted);
  completion

(* A reliable connection does not survive its peer dying, even briefly:
   a verb fails unless the peer was alive at post time, is alive at
   completion time, and kept the same incarnation in between — a verb
   whose wire time straddles a crash (or a crash-and-reboot) must not
   touch the peer's memory, which may have been wiped and reused. *)
let await_completion t completion ~verb =
  let eng, prof = prof_and_eng t in
  let alive0 = Fabric.is_alive t.qp_dst in
  let epoch0 = Fabric.epoch t.qp_dst in
  Engine.sleep (completion - Engine.now eng);
  if
    not (alive0 && Fabric.is_alive t.qp_dst && Fabric.epoch t.qp_dst = epoch0)
  then begin
    Engine.sleep prof.Profile.failure_timeout_ns;
    Metrics.incr t.qp_obs.o_failures;
    raise (Rdma_exception { target = Fabric.node_id t.qp_dst; verb })
  end

let read t addr ~len =
  let completion = reserve t t.qp_obs.o_read ~bytes_len:len in
  await_completion t completion ~verb:"read";
  Fabric.local_read t.qp_dst addr ~len

let land_write t addr payload =
  Fabric.local_write t.qp_dst addr payload;
  Signal.broadcast (Fabric.mem_signal t.qp_dst)

let write t addr payload =
  let payload = Bytes.copy payload in
  let completion = reserve t t.qp_obs.o_write ~bytes_len:(Bytes.length payload) in
  await_completion t completion ~verb:"write";
  land_write t addr payload

let write_post t addr payload =
  let payload = Bytes.copy payload in
  let eng, _ = prof_and_eng t in
  let completion = reserve t t.qp_obs.o_write_post ~bytes_len:(Bytes.length payload) in
  let alive0 = Fabric.is_alive t.qp_dst in
  let epoch0 = Fabric.epoch t.qp_dst in
  Engine.schedule ~delay:(completion - Engine.now eng) eng (fun () ->
      if
        alive0
        && Fabric.is_alive t.qp_dst
        && Fabric.epoch t.qp_dst = epoch0
        && not (fault_drops t)
      then land_write t addr payload
      else Metrics.incr t.qp_obs.o_dropped)

(* {1 Doorbell batching}

   A batch posts many write WQEs with one doorbell per coalesce group:
   the first WQE of a group pays [post_ns] (WQE build + MMIO ring),
   each further WQE only [doorbell_ns]. Wire behaviour is unchanged —
   every WQE still serializes on its own QP ([busy_until]) and pays the
   full per-verb latency, so RC ordering and bandwidth are modelled
   exactly as for individual posts. [rdma.verb.count{verb=write_post}]
   counts doorbells (one per group, charged to the QP carrying the
   group's first WQE); bytes and latency stay per-WQE. *)

type wqe = { w_qp : t; w_addr : Memory.addr; w_payload : bytes }

(* Land one posted WQE at its completion instant, as [write_post]. *)
let schedule_wqe eng w ~completion =
  let alive0 = Fabric.is_alive w.w_qp.qp_dst in
  let epoch0 = Fabric.epoch w.w_qp.qp_dst in
  Engine.schedule ~delay:(completion - Engine.now eng) eng (fun () ->
      if
        alive0
        && Fabric.is_alive w.w_qp.qp_dst
        && Fabric.epoch w.w_qp.qp_dst = epoch0
        && not (fault_drops w.w_qp)
      then land_write w.w_qp w.w_addr w.w_payload
      else Metrics.incr w.w_qp.qp_obs.o_dropped)

(* Post [wqes] (in order) from the caller's fiber with doorbell
   coalescing. All WQEs must originate from the same source node. *)
let post_coalesced wqes =
  match wqes with
  | [] -> ()
  | first :: _ ->
      let eng, prof = prof_and_eng first.w_qp in
      let reg = Fabric.metrics (Fabric.fabric_of first.w_qp.qp_src) in
      let rings = Metrics.counter reg "rdma.doorbell.rings" in
      let wqe_count = Metrics.counter reg "rdma.doorbell.wqes" in
      let coalesced = Metrics.counter reg "rdma.doorbell.coalesced" in
      let group = ref [] (* reversed *) and group_len = ref 0 in
      let flush () =
        match List.rev !group with
        | [] -> ()
        | g_first :: _ as g ->
            let posted = Engine.now eng in
            (* One doorbell for the whole group. *)
            Engine.consume
              (prof.Profile.post_ns + ((!group_len - 1) * prof.Profile.doorbell_ns));
            Metrics.incr g_first.w_qp.qp_obs.o_write_post.vo_count;
            Metrics.incr rings;
            Metrics.add wqe_count !group_len;
            Metrics.add coalesced (!group_len - 1);
            List.iter
              (fun w ->
                let qp = w.w_qp in
                let bytes_len = Bytes.length w.w_payload in
                let start = max (Engine.now eng) qp.busy_until in
                let completion =
                  start + Profile.verb_latency prof ~bytes_len + fault_delay qp
                in
                qp.busy_until <- completion;
                Metrics.add qp.qp_obs.o_write_post.vo_bytes bytes_len;
                Metrics.observe qp.qp_obs.o_write_post.vo_lat (completion - posted);
                schedule_wqe eng w ~completion)
              g;
            group := [];
            group_len := 0
      in
      List.iter
        (fun w ->
          let w = { w with w_payload = Bytes.copy w.w_payload } in
          group := w :: !group;
          incr group_len;
          if !group_len >= prof.Profile.post_coalesce then flush ())
        wqes;
      flush ()

let write_post_many t pairs =
  post_coalesced
    (List.map (fun (addr, payload) -> { w_qp = t; w_addr = addr; w_payload = payload }) pairs)

module Doorbell = struct
  type batch = { mutable b_wqes : wqe list (* reversed *); mutable b_len : int }

  let create () = { b_wqes = []; b_len = 0 }

  let add b qp addr payload =
    (match b.b_wqes with
    | w :: _ when w.w_qp.qp_src != qp.qp_src ->
        invalid_arg "Qp.Doorbell.add: all WQEs must share the source node"
    | _ -> ());
    b.b_wqes <- { w_qp = qp; w_addr = addr; w_payload = payload } :: b.b_wqes;
    b.b_len <- b.b_len + 1

  let length b = b.b_len

  let ring b =
    let wqes = List.rev b.b_wqes in
    b.b_wqes <- [];
    b.b_len <- 0;
    post_coalesced wqes
end

let cas t addr ~expected ~desired =
  let completion = reserve t t.qp_obs.o_cas ~bytes_len:8 in
  await_completion t completion ~verb:"cas";
  let r = Fabric.region t.qp_dst addr.Memory.mem_rid in
  let prev = Memory.get_i64 r ~off:addr.Memory.mem_off in
  if Int64.equal prev expected then begin
    Memory.set_i64 r ~off:addr.Memory.mem_off desired;
    Signal.broadcast (Fabric.mem_signal t.qp_dst)
  end;
  prev

let transfer t ~bytes_len =
  let completion = reserve t t.qp_obs.o_transfer ~bytes_len in
  await_completion t completion ~verb:"transfer"

let read_i64 t addr =
  let b = read t addr ~len:8 in
  Bytes.get_int64_le b 0

let write_i64 t addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write t addr b
