open Heron_sim

type node = {
  id : int;
  name : string;
  mutable alive : bool;
  mutable epoch : int;  (* incarnation; bumped by [crash] *)
  mutable token : Engine.token;
  regions : (int, Memory.region) Hashtbl.t;
  mutable next_rid : int;
  signal : Signal.t;
  fabric : fabric;
}

and fabric = {
  eng : Engine.t;
  prof : Profile.t;
  nodes : (int, node) Hashtbl.t;
  mutable next_node : int;
  obs : Heron_obs.Metrics.t;
  faults : (int * int, link_fault) Hashtbl.t;  (* (src id, dst id) *)
}

(* Injected link faults (chaos layer): extra one-way latency and/or
   dropping of posted writes on one directed (src, dst) link. *)
and link_fault = { mutable lf_extra_ns : int; mutable lf_drop : bool }

type t = fabric

let create ?(metrics = Heron_obs.Metrics.default) eng ~profile =
  { eng; prof = profile; nodes = Hashtbl.create 16; next_node = 0; obs = metrics;
    faults = Hashtbl.create 8 }

let engine t = t.eng
let profile t = t.prof
let metrics t = t.obs

let add_node t ~name =
  let id = t.next_node in
  t.next_node <- id + 1;
  let node =
    {
      id;
      name;
      alive = true;
      epoch = 0;
      token = Engine.new_token t.eng;
      regions = Hashtbl.create 8;
      next_rid = 0;
      signal = Signal.create ();
      fabric = t;
    }
  in
  Hashtbl.replace t.nodes id node;
  node

let node_id n = n.id
let node_name n = n.name
let is_alive n = n.alive
let epoch n = n.epoch
let fabric_of n = n.fabric
let find_node t id = Hashtbl.find t.nodes id
let node_count t = Hashtbl.length t.nodes

let crash n =
  if n.alive then begin
    n.alive <- false;
    n.epoch <- n.epoch + 1;
    Engine.cancel n.token
  end

let recover ?(wipe = true) n =
  if not n.alive then begin
    if wipe then Hashtbl.iter (fun _ r -> Memory.wipe r) n.regions;
    n.token <- Engine.new_token n.fabric.eng;
    n.alive <- true
  end

let spawn_on n f = Engine.spawn ~token:n.token n.fabric.eng f

let alloc_region n ~size =
  let rid = n.next_rid in
  n.next_rid <- rid + 1;
  let r = Memory.make_region ~rid ~size in
  Hashtbl.replace n.regions rid r;
  r

let region n rid = Hashtbl.find n.regions rid
let mem_signal n = n.signal

(* {1 Link fault injection} *)

let set_link_fault t ~src ~dst ?(extra_ns = 0) ?(drop = false) () =
  if extra_ns < 0 then invalid_arg "Fabric.set_link_fault: negative extra_ns";
  match Hashtbl.find_opt t.faults (src, dst) with
  | Some f ->
      f.lf_extra_ns <- extra_ns;
      f.lf_drop <- drop
  | None ->
      Hashtbl.replace t.faults (src, dst) { lf_extra_ns = extra_ns; lf_drop = drop }

let clear_link_fault t ~src ~dst = Hashtbl.remove t.faults (src, dst)
let clear_all_link_faults t = Hashtbl.reset t.faults

let link_extra_ns t ~src ~dst =
  match Hashtbl.find_opt t.faults (src, dst) with
  | Some f -> f.lf_extra_ns
  | None -> 0

let link_drops t ~src ~dst =
  match Hashtbl.find_opt t.faults (src, dst) with
  | Some f -> f.lf_drop
  | None -> false

let check_local n (a : Memory.addr) =
  if a.Memory.mem_node <> n.id then
    invalid_arg "Fabric: address does not name this node"

let local_read n a ~len =
  check_local n a;
  Memory.read_bytes (region n a.Memory.mem_rid) ~off:a.Memory.mem_off ~len

let local_write n a payload =
  check_local n a;
  Memory.write_bytes (region n a.Memory.mem_rid) ~off:a.Memory.mem_off payload
