(** Calibrated timing profile of the simulated RDMA fabric.

    The defaults model the paper's testbed (CloudLab XL170: Mellanox
    ConnectX-4, 25 Gbps links, ~0.1 ms RTT switch fabric): one-sided
    verbs complete in ~1.5 us for small payloads plus a bandwidth term,
    posting a work request costs a fraction of a microsecond of local
    CPU, and operations targeting a dead peer fail only after a
    transport timeout (RDMA reports the failure as a work-completion
    error, Algorithm 2 lines 20-21). *)

type t = {
  post_ns : int;  (** local CPU cost to post a work request *)
  verb_ns : int;  (** base completion latency of a one-sided verb *)
  per_byte_ns_x100 : int;
      (** bandwidth term: hundredths of a nanosecond per payload byte
          (32 = 0.32 ns/B = 25 Gbps) *)
  failure_timeout_ns : int;
      (** delay before a verb targeting a dead peer errors out *)
  doorbell_ns : int;
      (** local CPU cost per additional work request sharing a doorbell:
          in a batched post the first WQE pays [post_ns] (building the
          WQE plus the MMIO doorbell write), each further WQE in the
          same ring only pays this incremental store *)
  post_coalesce : int;
      (** maximum work requests rung by a single doorbell; larger
          batches are split into ceil(n / post_coalesce) rings *)
}

val default : t

val verb_latency : t -> bytes_len:int -> int
(** Completion latency of a verb carrying [bytes_len] payload bytes. *)
