type t = {
  post_ns : int;
  verb_ns : int;
  per_byte_ns_x100 : int;
  failure_timeout_ns : int;
  doorbell_ns : int;
  post_coalesce : int;
}

let default =
  {
    post_ns = 150;
    verb_ns = 1_500;
    per_byte_ns_x100 = 32;
    failure_timeout_ns = 100_000;
    doorbell_ns = 30;
    post_coalesce = 16;
  }

let verb_latency t ~bytes_len = t.verb_ns + (bytes_len * t.per_byte_ns_x100 / 100)
