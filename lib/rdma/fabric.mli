(** The simulated cluster: nodes with registered memory, crash and
    recovery, and processes pinned to nodes.

    A fabric groups nodes sharing one RDMA network. Each node owns
    memory regions, a broadcast signal raised whenever remote data lands
    in its memory (the simulator's stand-in for busy-polling, see
    DESIGN.md), and a cancellation token so that crashing the node stops
    every fiber running on it. *)

type t
(** The fabric. *)

type node
(** A server or client machine. *)

val create :
  ?metrics:Heron_obs.Metrics.t -> Heron_sim.Engine.t -> profile:Profile.t -> t
(** [metrics] is the registry the fabric's queue pairs (and anything
    else reading {!metrics}) record into; defaults to
    [Heron_obs.Metrics.default]. *)

val engine : t -> Heron_sim.Engine.t
val profile : t -> Profile.t

val metrics : t -> Heron_obs.Metrics.t
(** The fabric's metric registry. *)

val add_node : t -> name:string -> node
(** Register a fresh (alive) node. *)

val node_id : node -> int
val node_name : node -> string
val is_alive : node -> bool

val fabric_of : node -> t
(** The fabric a node belongs to. *)

val find_node : t -> int -> node
(** Node by id; raises [Not_found] for unknown ids. *)

val node_count : t -> int

val crash : node -> unit
(** Kill the node: every fiber spawned with {!spawn_on} is cancelled at
    its next suspension point, verbs targeting the node start failing,
    and writes in flight towards it are dropped. Idempotent. *)

val recover : ?wipe:bool -> node -> unit
(** Bring a crashed node back. With [~wipe:true] (the default) its
    memory regions are zeroed, modelling a process restart with empty
    volatile state; the caller must respawn the node's processes. *)

val spawn_on : node -> (unit -> unit) -> unit
(** Run a fiber on the node; it dies silently if the node crashes. *)

val alloc_region : node -> size:int -> Memory.region
(** Register a new RDMA memory region of [size] bytes on the node. *)

val region : node -> int -> Memory.region
(** Region by id; raises [Not_found]. *)

val mem_signal : node -> Heron_sim.Signal.t
(** Broadcast whenever a remote write or CAS lands in the node's
    memory. Local code waits on this instead of busy-polling. *)

val local_read : node -> Memory.addr -> len:int -> bytes
(** Direct local access (no latency); [addr] must name this node. *)

val local_write : node -> Memory.addr -> bytes -> unit
(** Direct local write (no latency, no signal); [addr] must name this
    node. *)
