(** The simulated cluster: nodes with registered memory, crash and
    recovery, and processes pinned to nodes.

    A fabric groups nodes sharing one RDMA network. Each node owns
    memory regions, a broadcast signal raised whenever remote data lands
    in its memory (the simulator's stand-in for busy-polling, see
    DESIGN.md), and a cancellation token so that crashing the node stops
    every fiber running on it. *)

type t
(** The fabric. *)

type node
(** A server or client machine. *)

val create :
  ?metrics:Heron_obs.Metrics.t -> Heron_sim.Engine.t -> profile:Profile.t -> t
(** [metrics] is the registry the fabric's queue pairs (and anything
    else reading {!metrics}) record into; defaults to
    [Heron_obs.Metrics.default]. *)

val engine : t -> Heron_sim.Engine.t
val profile : t -> Profile.t

val metrics : t -> Heron_obs.Metrics.t
(** The fabric's metric registry. *)

val add_node : t -> name:string -> node
(** Register a fresh (alive) node. *)

val node_id : node -> int
val node_name : node -> string
val is_alive : node -> bool

val epoch : node -> int
(** Incarnation number, bumped by {!crash}. Lets a queue pair detect
    that its peer died (and possibly rebooted) between posting a verb
    and its completion: a reliable connection does not survive a peer
    reboot, so such verbs must fail rather than touch the rebooted
    node's memory. *)

val fabric_of : node -> t
(** The fabric a node belongs to. *)

val find_node : t -> int -> node
(** Node by id; raises [Not_found] for unknown ids. *)

val node_count : t -> int

val crash : node -> unit
(** Kill the node: every fiber spawned with {!spawn_on} is cancelled at
    its next suspension point, verbs targeting the node start failing,
    and writes in flight towards it are dropped. Idempotent. *)

val recover : ?wipe:bool -> node -> unit
(** Bring a crashed node back. With [~wipe:true] (the default) its
    memory regions are zeroed, modelling a process restart with empty
    volatile state; the caller must respawn the node's processes. *)

val spawn_on : node -> (unit -> unit) -> unit
(** Run a fiber on the node; it dies silently if the node crashes. *)

val alloc_region : node -> size:int -> Memory.region
(** Register a new RDMA memory region of [size] bytes on the node. *)

val region : node -> int -> Memory.region
(** Region by id; raises [Not_found]. *)

val mem_signal : node -> Heron_sim.Signal.t
(** Broadcast whenever a remote write or CAS lands in the node's
    memory. Local code waits on this instead of busy-polling. *)

(** {1 Link fault injection (chaos layer)}

    Faults are keyed by the directed (source id, destination id) pair
    and consulted by {!Qp} on every verb: [extra_ns] is added to the
    one-way completion latency of every verb on the link, and with
    [drop] set, {e posted} writes ([Qp.write_post] and doorbell
    batches) landing while the fault is active are silently dropped —
    exactly as they are towards a dead peer — and counted in
    [rdma.dropped_writes]. Blocking verbs are delayed but never
    dropped (RC transport retries until the transport timeout, which
    only a dead peer exhausts). *)

val set_link_fault :
  t -> src:int -> dst:int -> ?extra_ns:int -> ?drop:bool -> unit -> unit
(** Install (or overwrite) the fault on one directed link. Defaults:
    no extra latency, no dropping. *)

val clear_link_fault : t -> src:int -> dst:int -> unit
val clear_all_link_faults : t -> unit

val link_extra_ns : t -> src:int -> dst:int -> int
(** Extra one-way latency currently injected on the link (0 when
    healthy). *)

val link_drops : t -> src:int -> dst:int -> bool
(** Whether posted writes on the link are currently being dropped. *)

val local_read : node -> Memory.addr -> len:int -> bytes
(** Direct local access (no latency); [addr] must name this node. *)

val local_write : node -> Memory.addr -> bytes -> unit
(** Direct local write (no latency, no signal); [addr] must name this
    node. *)
