(** Reliable-Connection queue pairs and one-sided verbs.

    A QP connects a source node to a destination node. As on real
    hardware (RC transport): operations posted to one QP complete in
    order, data transfer is reliable while the peer is up, and a verb
    targeting a dead peer fails with a work-completion error after a
    transport timeout — surfaced here as {!Rdma_exception}, which is
    what lets Algorithm 2 detect failed replicas (lines 20-21).

    All verbs must be called from a fiber running on the source node;
    they block that fiber for the simulated duration of the operation.
    {!write_post} is the exception: it models a posted write whose
    completion is never polled (fire-and-forget).

    Injected link faults ({!Fabric.set_link_fault}) apply per verb:
    the link's extra latency is added to every completion, and an
    active drop fault discards posted writes at their landing instant.

    Every verb records count, payload bytes and post-to-completion
    latency into the fabric's metric registry ({!Fabric.metrics}) as
    [rdma.verb.count] / [rdma.verb.bytes] / [rdma.verb.latency_ns]
    labelled by [verb], [src] and [dst] (one series per QP pair), plus
    [rdma.failure_timeouts] and [rdma.dropped_writes] per pair. *)

type t

exception Rdma_exception of { target : int; verb : string }
(** Work-completion error: the peer [target] was dead. *)

val connect : src:Fabric.node -> dst:Fabric.node -> t
(** Create a queue pair. Both nodes must be on the same fabric. *)

val src : t -> Fabric.node
val dst : t -> Fabric.node

val read : t -> Memory.addr -> len:int -> bytes
(** One-sided RDMA read of [len] bytes at [addr] on the destination
    node. Returns the bytes as of the (simulated) completion instant.
    Raises {!Rdma_exception} after the transport timeout if the peer is
    dead. *)

val write : t -> Memory.addr -> bytes -> unit
(** One-sided RDMA write, blocking until completion. The payload is
    snapshotted at post time. Raises {!Rdma_exception} if the peer is
    dead. *)

val write_post : t -> Memory.addr -> bytes -> unit
(** Post a write and return after the local post cost only. The write
    lands (and raises the destination's memory signal) at its in-order
    completion instant; if the peer is dead — or an injected link fault
    ({!Fabric.set_link_fault}) is dropping writes on this link — at
    that instant the write is dropped — exactly the behaviour of an
    unpolled posted write — and counted in the [rdma.dropped_writes]
    metric (see {!dropped_writes}). *)

val dropped_writes : t -> int
(** Posted writes this QP dropped because the peer was dead at their
    completion instant. *)

val write_post_many : t -> (Memory.addr * bytes) list -> unit
(** Post a list of writes on this QP with doorbell batching: WQEs are
    rung in coalesce groups of at most [post_coalesce]; the first WQE
    of each group pays [post_ns] of local CPU, each further WQE only
    [doorbell_ns]. Every WQE still serializes on the QP and pays the
    full per-verb wire latency (RC ordering), lands like {!write_post},
    and is dropped (and counted) if the peer is dead at its completion
    instant. [rdma.verb.count{verb=write_post}] counts doorbells — one
    per group — while [rdma.verb.bytes] / [rdma.verb.latency_ns] stay
    per-WQE; fabric-wide [rdma.doorbell.rings] / [rdma.doorbell.wqes] /
    [rdma.doorbell.coalesced] track the batching itself. *)

(** Doorbell batching across queue pairs sharing a source node: collect
    writes destined for several peers, then ring once. Coalesce-group
    accounting matches {!write_post_many}; each group's doorbell charge
    ([rdma.verb.count]) is attributed to the QP carrying the group's
    first WQE. A batch is reusable — {!ring} drains it. *)
module Doorbell : sig
  type batch

  val create : unit -> batch

  val add : batch -> t -> Memory.addr -> bytes -> unit
  (** Append a write WQE. The payload is snapshotted at {!ring} time
      (the post), not at [add] time. Raises [Invalid_argument] if the
      QP's source node differs from the batch's. *)

  val length : batch -> int

  val ring : batch -> unit
  (** Post all collected WQEs from the caller's fiber (which must run
      on the source node) and reset the batch. Empty batches are
      no-ops. *)
end

val cas : t -> Memory.addr -> expected:int64 -> desired:int64 -> int64
(** One-sided atomic compare-and-swap on an 8-byte word. Returns the
    previous value. Raises {!Rdma_exception} if the peer is dead. *)

val transfer : t -> bytes_len:int -> unit
(** Timing-and-failure-only write: blocks for the duration of a verb
    carrying [bytes_len] bytes and raises {!Rdma_exception} if the peer
    is dead, but moves no simulated memory. Used by control planes
    (e.g. the multicast protocol) whose payloads are tracked as OCaml
    values rather than serialized into regions. *)

val read_i64 : t -> Memory.addr -> int64
(** Atomic 8-byte one-sided read. *)

val write_i64 : t -> Memory.addr -> int64 -> unit
(** Atomic 8-byte one-sided write (blocking). *)
