open Heron_multicast

type entry = { en_tmp : Tstamp.t; en_oid : Oid.t }

type t = {
  capacity : int;
  entries : entry Queue.t;
  mutable trunc : Tstamp.t;  (* largest dropped timestamp *)
  mutable last : Tstamp.t;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Update_log.create: capacity must be positive";
  { capacity; entries = Queue.create (); trunc = Tstamp.zero; last = Tstamp.zero }

let append t tmp oid =
  if Tstamp.(t.last < tmp) then t.last <- tmp;
  Queue.push { en_tmp = tmp; en_oid = oid } t.entries;
  while Queue.length t.entries > t.capacity do
    let dropped = Queue.pop t.entries in
    if Tstamp.(t.trunc < dropped.en_tmp) then t.trunc <- dropped.en_tmp
  done

let note_gap t ~upto = if Tstamp.(t.trunc < upto) then t.trunc <- upto

let truncate t ~upto =
  let kept = Queue.create () in
  let dropped = ref 0 in
  Queue.iter
    (fun e ->
      if Tstamp.(e.en_tmp <= upto) then incr dropped else Queue.push e kept)
    t.entries;
  Queue.clear t.entries;
  Queue.transfer kept t.entries;
  if Tstamp.(t.trunc < upto) then t.trunc <- upto;
  !dropped
let length t = Queue.length t.entries
let covers t ~from = Tstamp.(t.trunc < from)
let last_tmp t = t.last
let truncation t = t.trunc

let oids_in_range t ~from ~upto =
  if not (covers t ~from) then
    invalid_arg "Update_log.oids_in_range: range behind truncation point";
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  Queue.iter
    (fun e ->
      if
        Tstamp.(from <= e.en_tmp)
        && Tstamp.(e.en_tmp <= upto)
        && not (Hashtbl.mem seen e.en_oid)
      then begin
        Hashtbl.replace seen e.en_oid ();
        acc := e.en_oid :: !acc
      end)
    t.entries;
  List.rev !acc

let oids_after t ~after ~upto =
  if Tstamp.(after < t.trunc) then
    invalid_arg "Update_log.oids_after: suffix reaches behind truncation point";
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  Queue.iter
    (fun e ->
      if
        Tstamp.(after < e.en_tmp)
        && Tstamp.(e.en_tmp <= upto)
        && not (Hashtbl.mem seen e.en_oid)
      then begin
        Hashtbl.replace seen e.en_oid ();
        acc := e.en_oid :: !acc
      end)
    t.entries;
  List.rev !acc
