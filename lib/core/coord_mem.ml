open Heron_rdma
open Heron_multicast

type t = {
  cm_node : Fabric.node;
  region : Memory.region;
  frontiers : Memory.region;
  replicas : int;  (* max replicas per partition, for slot indexing *)
  mutable slot_reads : Heron_obs.Metrics.counter option;
}

let slot_bytes = 16
let frontier_bytes = 8

let create node ~partitions ~replicas =
  let region = Fabric.alloc_region node ~size:(partitions * replicas * slot_bytes) in
  let frontiers =
    Fabric.alloc_region node ~size:(partitions * replicas * frontier_bytes)
  in
  { cm_node = node; region; frontiers; replicas; slot_reads = None }

let attach_metrics t reg =
  t.slot_reads <- Some (Heron_obs.Metrics.counter reg "coord.slot_reads")

let off t ~part ~idx = ((part * t.replicas) + idx) * slot_bytes

let slot_addr t ~part ~idx =
  Memory.addr ~node:(Fabric.node_id t.cm_node) t.region ~off:(off t ~part ~idx)

let read_slot t ~part ~idx =
  (match t.slot_reads with Some c -> Heron_obs.Metrics.incr c | None -> ());
  let off = off t ~part ~idx in
  let tmp = Tstamp.of_int64 (Memory.get_i64 t.region ~off) in
  let stage = Int64.to_int (Memory.get_i64 t.region ~off:(off + 8)) in
  (tmp, stage)

let write_local t ~part ~idx tmp ~stage =
  let off = off t ~part ~idx in
  Memory.set_i64 t.region ~off (Tstamp.to_int64 tmp);
  Memory.set_i64 t.region ~off:(off + 8) (Int64.of_int stage)

let encode_slot tmp ~stage =
  let b = Bytes.create slot_bytes in
  Bytes.set_int64_le b 0 (Tstamp.to_int64 tmp);
  Bytes.set_int64_le b 8 (Int64.of_int stage);
  b

let frontier_off t ~part ~idx = ((part * t.replicas) + idx) * frontier_bytes

let frontier_addr t ~part ~idx =
  Memory.addr ~node:(Fabric.node_id t.cm_node) t.frontiers
    ~off:(frontier_off t ~part ~idx)

let read_frontier t ~part ~idx =
  Tstamp.of_int64 (Memory.get_i64 t.frontiers ~off:(frontier_off t ~part ~idx))

let write_frontier_local t ~part ~idx tmp =
  Memory.set_i64 t.frontiers ~off:(frontier_off t ~part ~idx) (Tstamp.to_int64 tmp)

let encode_frontier tmp =
  let b = Bytes.create frontier_bytes in
  Bytes.set_int64_le b 0 (Tstamp.to_int64 tmp);
  b

let reached t ~part ~idx ~tmp ~stage =
  let slot_tmp, slot_stage = read_slot t ~part ~idx in
  (Tstamp.equal slot_tmp tmp && slot_stage >= stage) || Tstamp.(tmp < slot_tmp)

let count_reached ?(stop_at = max_int) t ~part ~replicas ~tmp ~stage =
  let n = ref 0 and idx = ref 0 in
  while !n < stop_at && !idx < replicas do
    if reached t ~part ~idx:!idx ~tmp ~stage then incr n;
    incr idx
  done;
  !n
