(** Coordination memory (Algorithm 1's [coord_mem]).

    Each replica owns an RDMA-registered array with one 16-byte slot
    per (partition, replica) pair in the system. During Phases 2 and 4
    of a multi-partition request, every involved replica writes
    [(request timestamp, stage)] into its own slot in the memory of
    every replica involved, then waits for a majority of slots per
    involved partition to reach the request (paper Figure 2).

    Slot layout: [packed timestamp : int64][stage : int64]. Stage 1 is
    the pre-execution barrier (Phase 2), stage 2 the post-execution
    barrier (Phase 4). *)

open Heron_multicast

type t

val create : Heron_rdma.Fabric.node -> partitions:int -> replicas:int -> t

val attach_metrics : t -> Heron_obs.Metrics.t -> unit
(** Count every {!read_slot} into the registry's [coord.slot_reads]
    counter — a measure of coordination-polling pressure. *)

val slot_bytes : int
(** 16. *)

val slot_addr : t -> part:int -> idx:int -> Heron_rdma.Memory.addr
(** Address of the slot belonging to replica [idx] of partition
    [part], for use by that replica's remote writes. *)

val read_slot : t -> part:int -> idx:int -> Tstamp.t * int
(** Current [(timestamp, stage)] in a slot of this (local) memory. *)

val write_local : t -> part:int -> idx:int -> Tstamp.t -> stage:int -> unit
(** Local update of one's own slot in one's own memory (a replica also
    "coordinates with itself"). *)

val encode_slot : Tstamp.t -> stage:int -> bytes
(** Wire image of a slot, for remote writes. *)

(** [reached t ~part ~idx ~tmp ~stage] holds when the slot shows that
    the replica either coordinated at [>= stage] for exactly this
    request, or has already moved past it (its latest coordinated
    request is newer) — the wait condition of Algorithm 1 lines 10/16. *)
val reached : t -> part:int -> idx:int -> tmp:Tstamp.t -> stage:int -> bool

val count_reached :
  ?stop_at:int -> t -> part:int -> replicas:int -> tmp:Tstamp.t -> stage:int -> int
(** Number of replicas of [part] whose slot satisfies {!reached}.
    [stop_at] caps the scan: return as soon as that many reached slots
    were seen (waiters checking a threshold need not read the remaining
    slots every poll). *)

(** {2 Checkpoint frontiers (DESIGN.md §13)}

    A second region with one 8-byte slot per (partition, replica) pair
    holds the packed timestamp of each replica's latest {e checkpoint}
    frontier: every update at or below it is captured in that replica's
    checkpoint. The checkpoint fiber fans its frontier out to every
    replica of its partition exactly like a coordination announce;
    truncation then stays behind the {e minimum} frontier over live
    peers, so any live donor's checkpoint provably covers the compacted
    prefix. A zeroed slot (fresh or restarted peer) reads as
    [Tstamp.zero] and blocks truncation until that peer checkpoints —
    conservative, never unsafe. *)

val frontier_bytes : int
(** 8. *)

val frontier_addr : t -> part:int -> idx:int -> Heron_rdma.Memory.addr
(** Address of the frontier slot of replica [idx] of partition [part]
    in this memory, for that replica's remote writes. *)

val read_frontier : t -> part:int -> idx:int -> Tstamp.t
(** Latest checkpoint frontier replica [idx] of [part] published into
    this (local) memory; [Tstamp.zero] if it never has. *)

val write_frontier_local : t -> part:int -> idx:int -> Tstamp.t -> unit
(** Local update of one's own frontier slot in one's own memory. *)

val encode_frontier : Tstamp.t -> bytes
(** Wire image of a frontier slot, for remote writes. *)
