(** Deployment builder and client API.

    A system is a complete Heron deployment: a simulated fabric, one
    atomic-multicast group per partition, [replicas] Heron replicas per
    partition preloaded with the application's catalog, and any number
    of client nodes.

    {[
      let eng = Engine.create () in
      let sys = System.create eng ~cfg:(Config.default ~partitions:2 ~replicas:3) ~app in
      System.start sys;
      let client = System.new_client_node sys ~name:"c0" in
      Fabric.spawn_on client (fun () ->
          let responses = System.submit sys ~from:client my_request in
          ...);
      Engine.run_until eng (Time_ns.ms 100)
    ]} *)

open Heron_sim

type ('req, 'resp) t

val create :
  Engine.t -> cfg:Config.t -> app:('req, 'resp) App.t -> ('req, 'resp) t
(** Build the deployment and load the application catalog into every
    replica's store. Replicated objects are installed in every
    partition; partitioned objects in their home partition only. *)

val start : ('req, 'resp) t -> unit
(** Spawn the multicast and replica processes. *)

val engine : ('req, 'resp) t -> Engine.t
val fabric : ('req, 'resp) t -> Heron_rdma.Fabric.t
val config : ('req, 'resp) t -> Config.t
val app : ('req, 'resp) t -> ('req, 'resp) App.t

val replica : ('req, 'resp) t -> part:int -> idx:int -> ('req, 'resp) Replica.t
val replicas : ('req, 'resp) t -> ('req, 'resp) Replica.t array array

val multicast :
  ('req, 'resp) t -> ('req, 'resp) Replica.msg Heron_multicast.Ramcast.t
(** The underlying multicast system (tests, monitoring, and the
    migration orchestrator, which multicasts [Migrate] commands). *)

val directory : ('req, 'resp) t -> Placement.t
(** The deployment's authoritative placement directory: epoch 0 with no
    overrides — and, with the elastic topology on, the deployment-time
    shard table — until migrations ({!Heron_reconfig.Migration}) or
    splits/merges ({!Heron_reconfig.Elastic}) commit. Clients cache
    views of it and refresh on wrong-epoch redirects. *)

val new_client_node : ('req, 'resp) t -> name:string -> Heron_rdma.Fabric.node
(** Add a client machine to the fabric. *)

val submit : ('req, 'resp) t -> from:Heron_rdma.Fabric.node -> 'req -> (int * 'resp) list
(** Submit a request from a fiber running on client node [from]:
    multicast it to the partitions derived from its read set and write
    sketch, then block until one replica of each destination partition
    replied. Returns the responses as [(partition, response)] pairs in
    partition order. Under live repartitioning the destinations come
    from the client's cached placement view; on a wrong-epoch redirect
    the client refreshes the view from {!directory}, recomputes the
    destinations and retries transparently. *)

val restart_replica : ('req, 'resp) t -> part:int -> idx:int -> unit
(** Recover a crashed replica (paper Section V-E's worst case): bring
    the node back with empty volatile memory, rebuild the replica
    process with the initial catalog, rejoin the atomic-multicast group
    as a follower, pull the complete state from a peer through the
    state-transfer protocol (Algorithm 3), and resume execution.
    Deliveries arriving during the transfer queue up and are then
    skipped or executed as their timestamps dictate. The replica must
    currently be crashed and must not have been the multicast group's
    leader. *)

val submit_to :
  ('req, 'resp) t ->
  from:Heron_rdma.Fabric.node ->
  dst:int list ->
  'req ->
  (int * 'resp) list
(** Like {!submit} with an explicit destination partition set, for
    workloads that pin requests to chosen partitions (Figure 6's
    fixed-partition-count experiments). *)
