(** Per-object conflict index for the parallel executor.

    The executor admits a single-partition request only when its object
    footprint does not conflict with any in-flight request (common
    write, or a write overlapping a read). Instead of comparing the
    candidate against every in-flight footprint — O(inflight ×
    footprint) per admission attempt — the index keeps one entry per
    live object ([Oid.t] → readers count / writer flag), making
    {!can_admit}, {!admit} and {!retire} all O(own footprint).

    The caller serializes access (the dispatcher and workers are
    cooperative fibers on one node); {!admit} must only follow a
    {!can_admit} that returned [true] with no intervening admits, and
    every admit must be paired with exactly one {!retire} of the same
    footprint. *)

type footprint

val footprint : reads:Oid.t list -> writes:Oid.t list -> footprint
(** Build a normalized footprint: duplicates are dropped and an object
    appearing in both sets counts as a write only. *)

val footprint_size : footprint -> int
(** Distinct objects (reads + writes after normalization). *)

type t

val create : unit -> t

val attach_metrics : t -> Heron_obs.Metrics.t -> unit
(** Record into the registry: [sched.conflict_probes] (per-object
    entry probes during admission checks), [sched.conflict_admits] and
    [sched.conflict_retires]. *)

val can_admit : t -> footprint -> bool
(** No in-flight writer on any object of the footprint, and no
    in-flight reader on any of its writes. *)

val admit : t -> footprint -> unit
val retire : t -> footprint -> unit

val live_objects : t -> int
(** Index entries currently held by in-flight requests — O(live
    footprint), the index never scans more than this. *)

val probes : t -> int
(** Total per-object probes performed by {!can_admit} since creation
    (also exported as [sched.conflict_probes]); the admission-cost
    micro-benchmark asserts this grows with footprint size, not with
    the in-flight count. *)
