(** A Heron replica: the coordination, execution and state-transfer
    logic of Algorithms 1-3.

    Replicas are created and wired together by {!System}; the functions
    here are exposed for the test suite and the experiment harness.

    Lifecycle: {!create} every replica of the deployment, then
    {!set_directory} with the full replica matrix (replicas address each
    other's coordination memory, state-transfer memory and object cells
    directly, as RDMA peers do after connection setup), then {!start}.
    Deliveries from atomic multicast are pushed into {!inbox}. *)

open Heron_sim
open Heron_multicast

type 'resp reply =
  | Reply of 'resp
  | Redirect of { epoch : int }
      (** the request's destination set was computed under a placement
          older than the replicas' — every destination redirects and
          none executes; the client refreshes its placement view and
          retries (DESIGN.md §10) *)

type ('req, 'resp) request = {
  rq_payload : 'req;
  rq_dst : int list;  (** destination partitions, sorted *)
  rq_submitted : Time_ns.t;  (** client submit instant (latency metrics) *)
  rq_client_node : Heron_rdma.Fabric.node;
  rq_reply : part:int -> 'resp reply -> unit;
      (** invoked (on a replica fiber, after the reply transfer) at most
          once per partition *)
  rq_trace : int;
      (** request-scoped trace id minted by the client at submit
          (DESIGN.md §11); 0 when the deployment does not trace *)
  rq_parent : int;  (** the trace's root span id; 0 when untraced *)
}

type migration = {
  mg_epoch : int;  (** placement epoch this migration installs *)
  mg_src : int;  (** partition the objects leave *)
  mg_dst : int;  (** partition the objects join *)
  mg_oids : (Oid.t * int) list;  (** objects and their cell capacities *)
  mg_shards : Heron_topology.Shard_map.t option;
      (** for a shard split or merge (DESIGN.md §15): the full
          replacement shard table every replica installs at this
          command's position instead of per-object overrides —
          [mg_oids] then lists the carved keys the destination
          bootstraps, and the table alone re-homes them *)
  mg_client_node : Heron_rdma.Fabric.node;  (** the orchestrator's node *)
  mg_done : part:int -> unit;  (** per-partition completion, like a reply *)
  mg_trace : int;
      (** orchestrator-minted trace id (DESIGN.md §11) under which the
          replicas record [reshard.freeze] / [reshard.bootstrap] spans;
          0 when untraced *)
  mg_parent : int;  (** the trace's root span id; 0 when untraced *)
}
(** An online object migration (DESIGN.md §10) — or, with [mg_shards]
    set, a shard split/merge (DESIGN.md §15) — multicast to {e every}
    partition as an ordinary totally-ordered command: the Phase-2
    barrier fixes the cut, the destination partition pulls the objects'
    raw dual-version cells from Phase-2-reached source replicas, and
    each replica installs [mg_epoch] at the command's position in the
    delivery order. Built by {!Heron_reconfig.Migration} and
    {!Heron_reconfig.Elastic}. *)

type lease_grant = {
  lg_part : int;  (** the granter's partition (also the multicast dst) *)
  lg_idx : int;  (** replica index the lease is granted to *)
  lg_incarnation : int;  (** holder's {!Heron_rdma.Fabric.epoch} at grant time *)
  lg_expiry_ns : Time_ns.t;  (** absolute expiry on the virtual clock *)
}
(** A read-lease grant (DESIGN.md §14), multicast by {!System}'s
    per-replica granter fibers to the holder's own partition: every
    replica applies it at the same position of the delivery order, so
    the lease table is deterministic replicated state. *)

type ('req, 'resp) msg =
  | Req of ('req, 'resp) request
  | Migrate of migration
  | Batch of ('req, 'resp) request array
      (** several same-destination single-partition requests submitted
          as one multicast entry by the pipeline batcher (DESIGN.md
          §12): one Skeen round per batch. The submitter must reserve
          one uid per request ([Ramcast.multicast ~slots]); delivery
          expands slot [i] to timestamp [(clock, uid + i)], so every
          request keeps a distinct timestamp (dual versioning requires
          it) and every destination group expands identically. *)
  | Lease of lease_grant

(** What travels the atomic multicast. *)

type stats = {
  st_ordering : Heron_stats.Sample_set.t;
      (** client-submit to delivery, per executed request *)
  st_coord : Heron_stats.Sample_set.t;
      (** total Phase 2 + Phase 4 wait, per multi-partition request *)
  st_exec : Heron_stats.Sample_set.t;  (** execution time per request *)
  mutable st_executed : int;
  mutable st_skipped : int;  (** deliveries skipped (state transfer) *)
  mutable st_multi : int;  (** executed multi-partition requests *)
  mutable st_delayed : int;
      (** Table I: multi-partition requests for which, at the instant
          the majority condition held, some replica was still missing *)
  st_delay : Heron_stats.Sample_set.t;
      (** Table I: extra wait from majority until all present *)
  mutable st_laggers : int;  (** times this replica found itself lagging *)
  mutable st_transfers_served : int;  (** times it acted as donor *)
}

type ('req, 'resp) t

val create :
  cfg:Config.t ->
  app:('req, 'resp) App.t ->
  part:int ->
  idx:int ->
  node:Heron_rdma.Fabric.node ->
  store_region_size:int ->
  ('req, 'resp) t

val set_directory : ('req, 'resp) t -> ('req, 'resp) t array array -> unit
(** [set_directory r all] gives [r] the full matrix
    [all.(partition).(replica_index)]; must include [r] itself. *)

val start : ('req, 'resp) t -> unit
(** Spawn the replica's processes: the execution loop and the
    state-transfer handler. *)

val inbox : ('req, 'resp) t -> ('req, 'resp) msg Ramcast.delivery Mailbox.t
val store : ('req, 'resp) t -> Versioned_store.t
val node : ('req, 'resp) t -> Heron_rdma.Fabric.node
val part : ('req, 'resp) t -> int
val idx : ('req, 'resp) t -> int
val last_req : ('req, 'resp) t -> Tstamp.t

val last_applied : ('req, 'resp) t -> Tstamp.t
(** The applied frontier: the highest position executed or covered by a
    state transfer. The lease granter gates renewals on it — see
    {!System}. *)

val stats : ('req, 'resp) t -> stats

val clear_stats : ('req, 'resp) t -> unit
(** Reset all counters and samples (end of a warmup window). *)

val force_state_transfer :
  ?cover:Tstamp.t -> ('req, 'resp) t -> failed_tmp:Tstamp.t -> unit
(** Run the lagger side of Algorithm 3 as if a read had just failed at
    [failed_tmp]: the donor ships every object updated at or after it.
    [cover] (default [failed_tmp]) is how far the adopted state must
    reach — the transfer is re-requested until a donor has applied past
    it. Restart recovery passes a minimal [failed_tmp] (the store is
    empty, everything must ship) with [cover] at the group's dispatch
    horizon. Blocks the calling fiber until the transfer completes. *)

val update_log : ('req, 'resp) t -> Update_log.t
(** The replica's update log (tests and the Figure 8 experiment). *)

val set_compactor : ('req, 'resp) t -> (upto:Tstamp.t -> int) -> unit
(** Install the multicast-log compaction hook the checkpoint fiber
    invokes after truncating the update log (DESIGN.md §13). The hook
    receives the truncation frontier — the minimum checkpoint frontier
    over the partition's live replicas — and returns the number of
    multicast-log entries still retained (fed into the
    [durability.mcast_log_len] histogram). System wires this to
    {!Heron_multicast.Ramcast.compact}; without it, checkpointing still
    truncates the update log but the delivery log grows unboundedly. *)

val checkpoint_frontier : ('req, 'resp) t -> Tstamp.t option
(** Frontier of the replica's latest checkpoint — every update at or
    below it is captured — or [None] before the first checkpoint
    completes (tests and monitoring). *)

val placement_view : ('req, 'resp) t -> Placement.view
(** The replica's placement view: epoch 0 until it executes (or adopts
    through a state transfer) a migration. *)

val drain_access_counts : ('req, 'resp) t -> (Oid.t * int) list
(** Per-object access counts since the last drain (reads prefetched or
    on demand, and applied writes), and reset them. Only populated when
    [Config.reconfig.enabled]; the rebalancer polls this. *)

val in_recovery : ('req, 'resp) t -> bool
(** Whether a state-transfer episode (lagger side, retries included) is
    currently in flight on this replica. The chaos driver uses it to
    keep crash injection inside the failure model: until every replica
    of a partition has applied an acknowledged request's suffix —
    Phase 4's grace deadline replies without waiting for laggers — the
    replicas that did apply it are not expendable, and crashing one
    while a peer is still synchronising can lose acknowledged state
    with only one nominal failure. *)

val inject_exec_delay : ('req, 'resp) t -> Time_ns.t -> unit
(** Failure injection: add a fixed delay to every request this replica
    executes, making it slower than its peers. Used to manufacture
    laggers (paper Section V-E). *)

val check_invariants : ?quiescent:bool -> ('req, 'resp) t -> (unit, string) result
(** Internal self-consistency checks for the chaos harness: the applied
    frontier never leads the delivery frontier, the update log (entries
    and truncation point) never reaches beyond the last delivered
    request, the replica's own coordination slot never announces a
    future request, and every registered object still holds two
    distinct versions. With [quiescent] (the default) additionally
    asserts no store version is tagged beyond [last_req] — true at rest
    but legitimately violated mid-recovery, when a donor snapshot ships
    a peer's in-progress writes ahead of the adopted prefix. [Error]
    carries a human-readable description of the breach. *)

val try_serve_read : ('req, 'resp) t -> 'req -> 'resp option
(** Serve a read-only single-partition request from the local store
    under the replica's read lease (DESIGN.md §14), with no multicast
    round; [None] when the fast path cannot serve it — lease missing,
    expired or not yet applied, replica mid-recovery, a version beyond
    the applied frontier, an object outside this partition, or the
    request turned out not to be read-only — and the caller must fall
    back to the ordered path. Only meaningful with
    [Config.fast_reads.fr_enabled]; call it from the client's fiber
    after modelling the request's wire transfer. *)

val lease_table : ('req, 'resp) t -> Read_lease.t
(** The replica's lease table and frontier-copy region (tests). *)

val set_tracer : ('req, 'resp) t -> Trace.t -> unit
(** Attach a span tracer: the replica records per-request spans
    ([ordering], [phase2], [execute], [phase4], [state-transfer]) with
    the request timestamp as an attribute. *)
