(** Heron deployment configuration and calibrated cost model.

    The cost constants are the simulation's substitute for the paper's
    Java prototype running on CloudLab XL170 nodes; see DESIGN.md for
    the calibration targets (Figure 6's latency breakdown, Figure 8's
    state-transfer costs). *)

type coord_wait =
  | Majority  (** proceed as soon as a majority per partition answered *)
  | Grace of int
      (** after a majority, wait up to this many ns for the remaining
          replicas — the paper's anti-lagger heuristic *)
  | Wait_all
      (** wait for every replica; used by the Table I experiment, which
          measures how long "waiting for all" actually takes *)

type costs = {
  exec_base_ns : int;  (** fixed dispatch cost per executed request *)
  read_local_ns : int;  (** access to a Local-class (map) object *)
  write_local_ns : int;
  deser_per_byte_x100 : int;
      (** deserialization of Registered (serialized) values,
          hundredths of ns per byte *)
  ser_per_byte_x100 : int;
  coord_post_ns : int;
      (** CPU cost of preparing and posting one coordination write
          (work-request setup in the user-level verbs library); paid
          per destination replica before the coordination wait begins *)
  hiccup_pct : int;
      (** probability (percent) that a request execution suffers a
          runtime hiccup (GC pause, cache pollution — the paper's 1WH
          CDF shows ~8% such outliers); source of the genuine
          replica skew behind Table I's delayed transactions *)
  hiccup_max_ns : int;  (** hiccup duration is uniform in [1us, max] *)
  coord_check_slot_ns : int;
      (** granularity of the coordination polling loop, per slot
          scanned: the time between observing the majority condition and
          completing the all-replicas check is this times the number of
          (replica, partition) slots involved. A real replica busy-polls
          its coordination memory; announcements landing within one loop
          iteration are seen together (Table I's instrumentation
          point). *)
  transfer_chunk_bytes : int;
      (** RDMA payload size for state transfer (32 KB in the paper) *)
  redirect_backoff_ns : int;
      (** client pause before retrying a wrong-epoch redirect whose
          refresh observed no new placement epoch (the migration that
          triggered the redirect has not committed yet) *)
}

type reconfig = {
  enabled : bool;
      (** accept [Migrate] commands, track per-object access counts and
          size registered-store regions for the whole catalog (any
          object may migrate in). Off reproduces the static paper
          system: no redirects, no counters, per-partition regions. *)
}

type durability = {
  dur_enabled : bool;
      (** run the per-replica checkpoint fiber (DESIGN.md §13): snapshot
          the versioned store periodically, publish the checkpoint
          frontier through coordination memory, truncate the update log
          (and reset access-counter history) behind the slowest live
          replica's published frontier, and compact the multicast
          delivery log up to the truncation point. A rejoining replica
          then bootstraps from the donor's checkpoint plus the O(delta)
          log suffix instead of replaying full history. Off (the
          default) is behavior-identical to the pre-durability system:
          no checkpoint fiber is spawned and no log entry is ever
          truncated early. *)
  dur_interval_ns : int;
      (** virtual-time period between checkpoints on each replica *)
}

type pipeline = {
  pipe_enabled : bool;
      (** master switch for the compartmentalized replica pipeline
          (DESIGN.md §12): client-side batcher, replica sequencer with a
          bounded execution queue, executor-fiber pool and asynchronous
          coordination writer. Off (the default) preserves the
          monolithic delivery loop byte-for-byte. *)
  pipe_batching : bool;
      (** accumulate single-partition client requests per destination
          partition and submit them as one multicast entry ([Replica.Batch])
          — one Skeen round, one log replication write and one commit per
          batch instead of per command. Multi-partition requests always
          bypass the batcher: they barrier every destination's pipeline,
          so queueing them for a batch window only adds latency. *)
  pipe_batch_size : int;  (** flush a destination's batch at this many requests *)
  pipe_flush_timeout_ns : int;
      (** flush an incomplete batch this many virtual ns after its first
          request arrived, bounding queueing delay at low load *)
  pipe_executors : int;
      (** executor fibers per replica draining the admitted-request
          queue; like [workers], only non-conflicting single-partition
          requests overlap — multi-partition requests, serial-hint
          payloads and migrations are barriers *)
  pipe_queue_cap : int;
      (** bound on the sequencer→executor queue; the sequencer stalls
          admission (backpressure into the multicast inbox) when full *)
  pipe_coord_writer : bool;
      (** route outbound coordination [announce] fan-outs through a
          dedicated writer fiber so the sequencer and executors never
          serialize on QP post charges; safe because coordination writes
          to dead peers are dropped, never raised *)
}

type fast_reads = {
  fr_enabled : bool;
      (** lease-based local linearizable reads (DESIGN.md §14): each
          replica periodically multicasts a read-lease grant to its own
          partition through the total order, publishes its applied
          frontier to its peers' lease memory, and writers commit-wait
          until every unexpired lease holder has applied their entry
          before replying. Eligible read-only single-partition requests
          are then served by any replica from the dual-version store
          without touching the multicast, falling back to the ordered
          path on any doubt (expired or unapplied lease, foreign or
          migrating object, replica in recovery). Off (the default) is
          behavior-identical to the ordered-only system: no grants, no
          frontier fan-out, no commit-wait. *)
  fr_lease_ns : int;
      (** lease validity window: a grant made at virtual time [t]
          covers reads until [t + fr_lease_ns]. After a crash, writers
          stall at most this long before the dead holder's lease
          expires out of the commit-wait set. *)
  fr_renew_ns : int;
      (** period of each replica's lease-renewal fiber; must be well
          under [fr_lease_ns] or the fast path blinks off between
          grants *)
  fr_write_wait : bool;
      (** writers wait for every unexpired lease holder to apply before
          replying (the invalidation half of the protocol). Turning
          this off deliberately re-introduces stale reads — it exists
          only so the chaos sweep can prove it would catch them
          (test_chaos's stale-read regression). *)
}

type topology = {
  topo_enabled : bool;
      (** elastic shard topology (DESIGN.md §15): the [partitions]
          count becomes a {e server pool} of provisioned replica
          groups, object homes resolve through a ring-hashed shard
          table layered under {!Placement}, and shards split and merge
          at runtime through the total order. Requires
          [reconfig.enabled] (splits ride the Migrate machinery) and a
          catalog whose partition-placed objects are all [Registered]
          (their cells move with the shard). Off (the default) is
          behavior-identical to the fixed-partition system: no shard
          table exists and the static oracle decides placement. *)
  topo_shards : int;
      (** shards active at deployment time; the remaining
          [partitions - topo_shards] groups start dormant, holding no
          keys until a split assigns them an arc. Must satisfy
          [1 <= topo_shards <= partitions]. *)
}

type t = {
  partitions : int;
  replicas : int;  (** per partition; odd *)
  profile : Heron_rdma.Profile.t;
  mcast : Heron_multicast.Ramcast.config;
  costs : costs;
  wait_phase2 : coord_wait;
  wait_phase4 : coord_wait;
  log_capacity : int;  (** update-log entries retained per replica *)
  workers : int;
      (** execution threads per replica for {e single-partition}
          requests (paper Section III-D.1, left as future work there):
          with [workers > 1] a replica executes non-conflicting
          single-partition requests concurrently; conflicting requests
          and multi-partition requests serialize (the latter act as
          barriers). 1 reproduces the paper's prototype. *)
  statesync_timeout_ns : int;
      (** per-candidate timeout in donor selection (Algorithm 3); must
          exceed the worst-case transfer time or backup candidates start
          duplicate transfers *)
  addr_query_ns : int;
      (** modelled cost of the one-time remote object address query
          (Algorithm 2 lines 8-13) *)
  coord_batching : bool;
      (** post coordination and state-sync fan-outs as doorbell-batched
          WQE lists ({!Heron_rdma.Qp.Doorbell}): one slot image encoded
          per fan-out and one doorbell per coalesce group instead of one
          [write_post] (and one [post_ns] charge) per destination
          replica. On by default; turn off to reproduce the unbatched
          cost model (the ablation in EXPERIMENTS.md compares both). *)
  reconfig : reconfig;
      (** live repartitioning (DESIGN.md §10); disabled by default *)
  pipeline : pipeline;
      (** compartmentalized replica pipeline (DESIGN.md §12); disabled
          by default *)
  durability : durability;
      (** checkpointing + update-log compaction (DESIGN.md §13);
          disabled by default *)
  fast_reads : fast_reads;
      (** lease-based local reads (DESIGN.md §14); disabled by default *)
  topology : topology;
      (** elastic shard topology (DESIGN.md §15); disabled by default *)
  metrics : Heron_obs.Metrics.t;
      (** registry the whole deployment records into: the fabric's RDMA
          verb series, the multicast counters and the replicas'
          coordination/state-transfer series all share it.
          [default] wires in [Heron_obs.Metrics.default] so separate
          deployments in one process aggregate; substitute a fresh
          registry ([{ cfg with metrics = Metrics.create () }]) to
          isolate a run. *)
  reqtrace : Heron_obs.Reqtrace.t option;
      (** request-scoped causal tracing (DESIGN.md §11): when set,
          clients mint a trace per request, the protocol layers emit
          parent-linked spans into the collector, and finished trees
          feed the [req.stage_ns{stage=...}] critical-path histograms
          in [metrics]. [None] (the default) records nothing and adds
          no cost. *)
}

val default_costs : costs
val default_reconfig : reconfig

val default_durability : durability
(** Disabled; when [dur_enabled] is flipped on, the default checkpoint
    interval is 2ms of virtual time. *)

val default_pipeline : pipeline
(** Disabled; when [pipe_enabled] is flipped on, the defaults are
    batching with size 8 / 15us flush, 4 executors, a 64-entry queue
    and the asynchronous coordination writer. *)

val default_fast_reads : fast_reads
(** Disabled; when [fr_enabled] is flipped on, the defaults are a 2ms
    lease renewed every 800us, with writer commit-wait on. *)

val default_topology : topology
(** Disabled; when [topo_enabled] is flipped on, one initial shard
    owns the whole ring unless [topo_shards] says otherwise. *)

val initial_shards : t -> Heron_topology.Shard_map.t option
(** The epoch-0 shard table implied by the config — [None] with the
    topology off. A pure function of [partitions] and [topology], so
    every replica, client and the directory compute the same table
    locally. Raises [Invalid_argument] when [topo_shards] is out of
    range. *)

val default : partitions:int -> replicas:int -> t
(** Grace-based phase-4 coordination, majority phase-2, calibrated
    defaults. Raises [Invalid_argument] for non-positive or even
    replica counts. *)
