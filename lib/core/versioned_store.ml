open Heron_rdma
open Heron_multicast

type klass = Registered | Local

type reg_obj = { ro_off : int; ro_cap : int }

type local_version = { mutable lv_val : bytes; mutable lv_tmp : Tstamp.t }

type local_obj = { la : local_version; lb : local_version }

type entry = Reg of reg_obj | Loc of local_obj

type t = {
  st_node : Fabric.node;
  region : Memory.region;
  objects : (Oid.t, entry) Hashtbl.t;
  mutable next_off : int;
  mutable miss_counter : Heron_obs.Metrics.counter option;
}

let create node ~region_size =
  {
    st_node = node;
    region = Fabric.alloc_region node ~size:region_size;
    objects = Hashtbl.create 1024;
    next_off = 0;
    miss_counter = None;
  }

let attach_metrics t reg =
  t.miss_counter <- Some (Heron_obs.Metrics.counter reg "store.dual_version_miss")

let count_miss t =
  match t.miss_counter with
  | Some c -> Heron_obs.Metrics.incr c
  | None -> ()

let node t = t.st_node
let mem t oid = Hashtbl.mem t.objects oid

let klass_of t oid =
  match Hashtbl.find t.objects oid with Reg _ -> Registered | Loc _ -> Local

(* {1 Registered cell layout} *)

let cell_len_of_cap cap = 32 + (2 * cap)

(* Offsets of the two version slots within a cell. *)
let slot_off ro = function
  | `A -> ro.ro_off
  | `B -> ro.ro_off + 16 + ro.ro_cap

let slot_tmp t ro slot = Tstamp.of_int64 (Memory.get_i64 t.region ~off:(slot_off ro slot))

let slot_value t ro slot =
  let off = slot_off ro slot in
  let len = Int64.to_int (Memory.get_i64 t.region ~off:(off + 8)) in
  Memory.read_bytes t.region ~off:(off + 16) ~len

let slot_write t ro slot value ~tmp =
  let off = slot_off ro slot in
  Memory.set_i64 t.region ~off (Tstamp.to_int64 tmp);
  Memory.set_i64 t.region ~off:(off + 8) (Int64.of_int (Bytes.length value));
  Memory.write_bytes t.region ~off:(off + 16) value

(* {1 Registration} *)

let register t oid ~klass ~cap ~init =
  if Hashtbl.mem t.objects oid then
    invalid_arg "Versioned_store.register: oid already registered";
  match klass with
  | Local ->
      Hashtbl.replace t.objects oid
        (Loc
           {
             la = { lv_val = Bytes.copy init; lv_tmp = Tstamp.zero };
             lb = { lv_val = Bytes.copy init; lv_tmp = Tstamp.zero };
           })
  | Registered ->
      if Bytes.length init > cap then
        invalid_arg "Versioned_store.register: init exceeds capacity";
      let len = cell_len_of_cap cap in
      if t.next_off + len > Memory.region_size t.region then
        invalid_arg "Versioned_store.register: region out of space";
      let ro = { ro_off = t.next_off; ro_cap = cap } in
      t.next_off <- t.next_off + len;
      Hashtbl.replace t.objects oid (Reg ro);
      slot_write t ro `A init ~tmp:Tstamp.zero;
      slot_write t ro `B init ~tmp:Tstamp.zero

let insert_local t oid value ~tmp =
  if Hashtbl.mem t.objects oid then
    invalid_arg "Versioned_store.insert_local: oid already registered";
  Hashtbl.replace t.objects oid
    (Loc
       {
         la = { lv_val = Bytes.copy value; lv_tmp = tmp };
         lb = { lv_val = Bytes.copy value; lv_tmp = tmp };
       })

(* {1 Reads} *)

let versions t oid =
  match Hashtbl.find t.objects oid with
  | Reg ro -> ((slot_value t ro `A, slot_tmp t ro `A), (slot_value t ro `B, slot_tmp t ro `B))
  | Loc l -> ((l.la.lv_val, l.la.lv_tmp), (l.lb.lv_val, l.lb.lv_tmp))

let get t oid =
  let (va, ta), (vb, tb) = versions t oid in
  if Tstamp.(tb <= ta) then (va, ta) else (vb, tb)

let pick_version ((va, ta), (vb, tb)) ~bound =
  let a_ok = Tstamp.(ta < bound) and b_ok = Tstamp.(tb < bound) in
  match (a_ok, b_ok) with
  | true, true -> if Tstamp.(tb <= ta) then Some (va, ta) else Some (vb, tb)
  | true, false -> Some (va, ta)
  | false, true -> Some (vb, tb)
  | false, false -> None

let get_before t oid ~bound =
  match pick_version (versions t oid) ~bound with
  | Some _ as r -> r
  | None ->
      count_miss t;
      None

let get_at_most t oid ~bound =
  let (va, ta), (vb, tb) = versions t oid in
  let a_ok = Tstamp.(ta <= bound) and b_ok = Tstamp.(tb <= bound) in
  match (a_ok, b_ok) with
  | true, true -> if Tstamp.(tb <= ta) then Some (va, ta) else Some (vb, tb)
  | true, false -> Some (va, ta)
  | false, true -> Some (vb, tb)
  (* No miss counted here: the donor snapshot legitimately skips
     objects created beyond its bound. *)
  | false, false -> None

(* {1 Writes} *)

let set t oid value ~tmp =
  match Hashtbl.find_opt t.objects oid with
  | None -> insert_local t oid value ~tmp
  | Some (Reg ro) ->
      if Bytes.length value > ro.ro_cap then
        invalid_arg "Versioned_store.set: value exceeds capacity";
      let ta = slot_tmp t ro `A and tb = slot_tmp t ro `B in
      let slot =
        if Tstamp.equal ta tmp then `A
        else if Tstamp.equal tb tmp then `B
        else if Tstamp.(ta <= tb) then `A
        else `B
      in
      slot_write t ro slot value ~tmp
  | Some (Loc l) ->
      let v =
        if Tstamp.equal l.la.lv_tmp tmp then l.la
        else if Tstamp.equal l.lb.lv_tmp tmp then l.lb
        else if Tstamp.(l.la.lv_tmp <= l.lb.lv_tmp) then l.la
        else l.lb
      in
      v.lv_val <- Bytes.copy value;
      v.lv_tmp <- tmp

(* {1 Remote cell access} *)

let find_reg t oid =
  match Hashtbl.find t.objects oid with
  | Reg ro -> ro
  | Loc _ -> raise Not_found

let cell_addr t oid =
  let ro = find_reg t oid in
  Memory.addr ~node:(Fabric.node_id t.st_node) t.region ~off:ro.ro_off

let cell_len t oid = cell_len_of_cap (find_reg t oid).ro_cap

let decode_cell raw =
  let total = Bytes.length raw in
  if total < 32 || (total - 32) mod 2 <> 0 then
    invalid_arg "Versioned_store.decode_cell: bad cell size";
  let cap = (total - 32) / 2 in
  let slot off =
    let tmp = Tstamp.of_int64 (Bytes.get_int64_le raw off) in
    let len = Int64.to_int (Bytes.get_int64_le raw (off + 8)) in
    (Bytes.sub raw (off + 16) len, tmp)
  in
  (slot 0, slot (16 + cap))

let truncate_raw_cell raw ~bound =
  let (va, ta), (vb, tb) = decode_cell raw in
  let a_ok = Tstamp.(ta < bound) and b_ok = Tstamp.(tb < bound) in
  if a_ok && b_ok then Some raw
  else
    match
      if a_ok then Some (va, ta) else if b_ok then Some (vb, tb) else None
    with
    | None -> None
    | Some (v, tmp) ->
        let total = Bytes.length raw in
        let cap = (total - 32) / 2 in
        let out = Bytes.make total '\000' in
        let put off =
          Bytes.set_int64_le out off (Tstamp.to_int64 tmp);
          Bytes.set_int64_le out (off + 8) (Int64.of_int (Bytes.length v));
          Bytes.blit v 0 out (off + 16) (Bytes.length v)
        in
        put 0;
        put (16 + cap);
        Some out

let encode_cell_of t oid =
  let ro = find_reg t oid in
  Memory.read_bytes t.region ~off:ro.ro_off ~len:(cell_len_of_cap ro.ro_cap)

let write_raw_cell t oid raw =
  let ro = find_reg t oid in
  if Bytes.length raw <> cell_len_of_cap ro.ro_cap then
    invalid_arg "Versioned_store.write_raw_cell: size mismatch";
  Memory.write_bytes t.region ~off:ro.ro_off raw

let value_size t oid = Bytes.length (fst (get t oid))

let filter_oids t pred =
  Hashtbl.fold (fun oid e acc -> if pred e then oid :: acc else acc) t.objects []
  |> List.sort compare

let registered_oids t = filter_oids t (function Reg _ -> true | Loc _ -> false)
let local_oids t = filter_oids t (function Loc _ -> true | Reg _ -> false)
