type footprint = { fp_reads : Oid.t array; fp_writes : Oid.t array }

let footprint ~reads ~writes =
  let seen = Hashtbl.create 16 in
  let fresh oid =
    if Hashtbl.mem seen oid then false
    else begin
      Hashtbl.replace seen oid ();
      true
    end
  in
  (* Writes first: a read of an object the request also writes is
     dropped — the write entry alone serializes it against everyone. *)
  let writes = List.filter fresh writes in
  let reads = List.filter fresh reads in
  { fp_reads = Array.of_list reads; fp_writes = Array.of_list writes }

let footprint_size fp = Array.length fp.fp_reads + Array.length fp.fp_writes

type entry = { mutable readers : int; mutable writer : bool }

type t = {
  tbl : (Oid.t, entry) Hashtbl.t;
  mutable ci_probes : int;
  mutable m_probes : Heron_obs.Metrics.counter option;
  mutable m_admits : Heron_obs.Metrics.counter option;
  mutable m_retires : Heron_obs.Metrics.counter option;
}

let create () =
  {
    tbl = Hashtbl.create 64;
    ci_probes = 0;
    m_probes = None;
    m_admits = None;
    m_retires = None;
  }

let attach_metrics t reg =
  let open Heron_obs in
  t.m_probes <- Some (Metrics.counter reg "sched.conflict_probes");
  t.m_admits <- Some (Metrics.counter reg "sched.conflict_admits");
  t.m_retires <- Some (Metrics.counter reg "sched.conflict_retires")

let bump c = match c with Some c -> Heron_obs.Metrics.incr c | None -> ()

let probe t oid =
  t.ci_probes <- t.ci_probes + 1;
  bump t.m_probes;
  Hashtbl.find_opt t.tbl oid

let can_admit t fp =
  let ok = ref true in
  Array.iter
    (fun oid ->
      if !ok then
        match probe t oid with
        | Some e when e.writer || e.readers > 0 -> ok := false
        | Some _ | None -> ())
    fp.fp_writes;
  Array.iter
    (fun oid ->
      if !ok then
        match probe t oid with
        | Some e when e.writer -> ok := false
        | Some _ | None -> ())
    fp.fp_reads;
  !ok

let entry_of t oid =
  match Hashtbl.find_opt t.tbl oid with
  | Some e -> e
  | None ->
      let e = { readers = 0; writer = false } in
      Hashtbl.replace t.tbl oid e;
      e

let admit t fp =
  Array.iter (fun oid -> (entry_of t oid).writer <- true) fp.fp_writes;
  Array.iter
    (fun oid ->
      let e = entry_of t oid in
      e.readers <- e.readers + 1)
    fp.fp_reads;
  bump t.m_admits

let drop_if_idle t oid e = if (not e.writer) && e.readers = 0 then Hashtbl.remove t.tbl oid

let retire t fp =
  Array.iter
    (fun oid ->
      match Hashtbl.find_opt t.tbl oid with
      | Some e ->
          e.writer <- false;
          drop_if_idle t oid e
      | None -> ())
    fp.fp_writes;
  Array.iter
    (fun oid ->
      match Hashtbl.find_opt t.tbl oid with
      | Some e ->
          e.readers <- e.readers - 1;
          drop_if_idle t oid e
      | None -> ())
    fp.fp_reads;
  bump t.m_retires

let live_objects t = Hashtbl.length t.tbl
let probes t = t.ci_probes
