(** Dual-versioned object store (paper Section III-A/B, Algorithm 2).

    Every object keeps two versions, each tagged with the timestamp of
    the request that created it. Readers take the freshest version
    strictly older than their request's timestamp; writers overwrite the
    older version. This lets a remote reader race with the local writer
    of the next request without locks.

    Objects come in two storage classes, mirroring the prototype
    (Section IV-A):

    - {!Registered}: serialized into an RDMA-registered region, so
      remote replicas can read the object's two-version cell with a
      single one-sided read. Fixed capacity, fixed object population
      (TPCC's Stock and Customer tables).
    - {!Local}: kept in an ordinary map, never read remotely, supports
      dynamic insertion (TPCC's Order tables, kept in HashMaps in the
      prototype).

    Cell layout of a registered object with capacity [cap] (all integers
    little-endian int64):
    [tmp_a][len_a][data_a: cap bytes][tmp_b][len_b][data_b: cap bytes],
    i.e. [32 + 2*cap] bytes. Timestamps are stored packed
    ({!Heron_multicast.Tstamp.to_int64}), so the atomic 8-byte
    granularity of RDMA covers them. *)

open Heron_multicast

type klass = Registered | Local

type t

val create : Heron_rdma.Fabric.node -> region_size:int -> t
(** A store for one replica, with one RDMA region of [region_size]
    bytes backing the registered objects. *)

val node : t -> Heron_rdma.Fabric.node

val register : t -> Oid.t -> klass:klass -> cap:int -> init:bytes -> unit
(** Register an object with initial value [init] at timestamp
    {!Tstamp.zero}. For {!Registered} objects [cap] bounds the value
    size forever; raises [Invalid_argument] if [init] exceeds it, the
    oid is already registered, or the region is out of space. *)

val mem : t -> Oid.t -> bool

val klass_of : t -> Oid.t -> klass
(** Raises [Not_found] for unregistered oids. *)

val get : t -> Oid.t -> bytes * Tstamp.t
(** Freshest version (the one with the larger timestamp). Raises
    [Not_found] for unknown oids. *)

val get_before : t -> Oid.t -> bound:Tstamp.t -> (bytes * Tstamp.t) option
(** Freshest version with timestamp strictly smaller than [bound];
    [None] when both versions are at or past [bound] — the caller is a
    lagger (Algorithm 2 lines 22-24). [None] results count into the
    [store.dual_version_miss] metric when one is attached. *)

val attach_metrics : t -> Heron_obs.Metrics.t -> unit
(** Count dual-version read misses (a [None] from {!get_before}) into
    the registry's [store.dual_version_miss] counter. *)

val get_at_most : t -> Oid.t -> bound:Tstamp.t -> (bytes * Tstamp.t) option
(** Freshest version with timestamp at most [bound] (inclusive variant
    of {!get_before}; the state-transfer donor ships versions at or
    below its snapshot point). *)

val set : t -> Oid.t -> bytes -> tmp:Tstamp.t -> unit
(** Install a new version: overwrite the version whose timestamp equals
    [tmp] if one exists (idempotent re-execution), otherwise the older
    version. Unknown oids are inserted as {!Local} objects (dynamic
    insertion); the {!Registered} population is fixed at setup. *)

val insert_local : t -> Oid.t -> bytes -> tmp:Tstamp.t -> unit
(** Explicit dynamic insertion of a {!Local} object. *)

(** {1 Remote access to registered cells} *)

val cell_addr : t -> Oid.t -> Heron_rdma.Memory.addr
(** Address of a registered object's cell, as a remote peer would use
    it. Raises [Not_found] for {!Local} or unknown oids. *)

val cell_len : t -> Oid.t -> int
(** Byte length of the cell ([32 + 2*cap]). *)

val decode_cell : bytes -> (bytes * Tstamp.t) * (bytes * Tstamp.t)
(** Decode a raw cell (as returned by a one-sided read of
    [cell_len] bytes at [cell_addr]) into its two tagged versions. *)

val pick_version :
  (bytes * Tstamp.t) * (bytes * Tstamp.t) -> bound:Tstamp.t -> (bytes * Tstamp.t) option
(** Algorithm 2 line 22: the version with the larger timestamp that is
    still strictly smaller than [bound], if any. *)

val truncate_raw_cell : bytes -> bound:Tstamp.t -> bytes option
(** The cell's wire image with every version at or past [bound]
    dropped: the freshest surviving version fills both slots when only
    one survives, and [None] means the donor retains nothing older
    than [bound]. Migration bootstraps (DESIGN.md §10/§15) pull cells
    through this so a donor that has {e moved past} the migration —
    legal under the Phase-2 wait condition — cannot leak post-cut
    writes into a lagging destination replica's frozen copy. *)

val encode_cell_of : t -> Oid.t -> bytes
(** Raw cell bytes of a registered object (donor side of state
    transfer). *)

val write_raw_cell : t -> Oid.t -> bytes -> unit
(** Overwrite a registered object's cell with raw bytes (receiver side
    of state transfer via a direct RDMA write). *)

val value_size : t -> Oid.t -> int
(** Size in bytes of the freshest version's value. *)

val registered_oids : t -> Oid.t list
val local_oids : t -> Oid.t list
