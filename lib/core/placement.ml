open Heron_obs

type t = {
  mutable dir_epoch : int;
  dir_overrides : (Oid.t, int) Hashtbl.t;
  mutable dir_busy : bool;
  mutable dir_gauge : Metrics.gauge option;
}

let create () =
  { dir_epoch = 0; dir_overrides = Hashtbl.create 32; dir_busy = false;
    dir_gauge = None }

let attach_metrics t reg =
  let g = Metrics.gauge reg "reconfig.epoch" in
  Metrics.set_gauge g t.dir_epoch;
  t.dir_gauge <- Some g

let epoch t = t.dir_epoch
let lookup t oid = Hashtbl.find_opt t.dir_overrides oid

let commit t ~epoch ~moves =
  if epoch <> t.dir_epoch + 1 then
    invalid_arg
      (Printf.sprintf "Placement.commit: epoch %d, directory at %d" epoch
         t.dir_epoch);
  List.iter (fun (oid, part) -> Hashtbl.replace t.dir_overrides oid part) moves;
  t.dir_epoch <- epoch;
  match t.dir_gauge with None -> () | Some g -> Metrics.set_gauge g epoch

let begin_exclusive t = if t.dir_busy then false else (t.dir_busy <- true; true)
let end_exclusive t = t.dir_busy <- false

type view = { mutable v_epoch : int; v_overrides : (Oid.t, int) Hashtbl.t }

let fresh_view () = { v_epoch = 0; v_overrides = Hashtbl.create 8 }
let view_epoch v = v.v_epoch

let refresh v t =
  Hashtbl.reset v.v_overrides;
  Hashtbl.iter (fun oid part -> Hashtbl.replace v.v_overrides oid part)
    t.dir_overrides;
  v.v_epoch <- t.dir_epoch

let install v ~epoch ~moves =
  if epoch > v.v_epoch then begin
    List.iter (fun (oid, part) -> Hashtbl.replace v.v_overrides oid part) moves;
    v.v_epoch <- epoch
  end

let copy_view ~src ~dst =
  Hashtbl.reset dst.v_overrides;
  Hashtbl.iter (fun oid part -> Hashtbl.replace dst.v_overrides oid part)
    src.v_overrides;
  dst.v_epoch <- src.v_epoch

let view_size v = Hashtbl.length v.v_overrides
let view_lookup v oid = Hashtbl.find_opt v.v_overrides oid

let placement_under v static oid =
  match static oid with
  | App.Replicated -> App.Replicated
  | App.Partition _ as p -> (
      match Hashtbl.find_opt v.v_overrides oid with
      | Some part -> App.Partition part
      | None -> p)

let destinations v app ~partitions req =
  App.destinations_under
    ~placement_of:(placement_under v app.App.placement_of)
    app ~partitions req
