open Heron_obs
module Shard_map = Heron_topology.Shard_map

type t = {
  mutable dir_epoch : int;
  dir_overrides : (Oid.t, int) Hashtbl.t;
  mutable dir_shards : Shard_map.t option;
  mutable dir_busy : bool;
  mutable dir_gauge : Metrics.gauge option;
}

let create ?shards () =
  { dir_epoch = 0; dir_overrides = Hashtbl.create 32; dir_shards = shards;
    dir_busy = false; dir_gauge = None }

let attach_metrics t reg =
  let g = Metrics.gauge reg "reconfig.epoch" in
  Metrics.set_gauge g t.dir_epoch;
  t.dir_gauge <- Some g

let epoch t = t.dir_epoch
let lookup t oid = Hashtbl.find_opt t.dir_overrides oid
let shards t = t.dir_shards

let commit ?shards t ~epoch ~moves =
  if epoch <> t.dir_epoch + 1 then
    invalid_arg
      (Printf.sprintf "Placement.commit: epoch %d, directory at %d" epoch
         t.dir_epoch);
  List.iter (fun (oid, part) -> Hashtbl.replace t.dir_overrides oid part) moves;
  (match shards with Some sm -> t.dir_shards <- Some sm | None -> ());
  t.dir_epoch <- epoch;
  match t.dir_gauge with None -> () | Some g -> Metrics.set_gauge g epoch

let begin_exclusive t = if t.dir_busy then false else (t.dir_busy <- true; true)
let end_exclusive t = t.dir_busy <- false

type view = {
  mutable v_epoch : int;
  v_overrides : (Oid.t, int) Hashtbl.t;
  mutable v_shards : Shard_map.t option;
}

let fresh_view ?shards () =
  { v_epoch = 0; v_overrides = Hashtbl.create 8; v_shards = shards }

let view_epoch v = v.v_epoch
let view_shards v = v.v_shards

let refresh v t =
  Hashtbl.reset v.v_overrides;
  Hashtbl.iter (fun oid part -> Hashtbl.replace v.v_overrides oid part)
    t.dir_overrides;
  v.v_shards <- t.dir_shards;
  v.v_epoch <- t.dir_epoch

let install ?shards v ~epoch ~moves =
  if epoch > v.v_epoch then begin
    List.iter (fun (oid, part) -> Hashtbl.replace v.v_overrides oid part) moves;
    (match shards with Some sm -> v.v_shards <- Some sm | None -> ());
    v.v_epoch <- epoch
  end

let copy_view ~src ~dst =
  Hashtbl.reset dst.v_overrides;
  Hashtbl.iter (fun oid part -> Hashtbl.replace dst.v_overrides oid part)
    src.v_overrides;
  dst.v_shards <- src.v_shards;
  dst.v_epoch <- src.v_epoch

let view_size v = Hashtbl.length v.v_overrides

(* Wire size of a shipped view: epoch header, one (oid, partition) pair
   per override, one (lo, hi, group) arc per shard-table entry. *)
let view_bytes v =
  8
  + (16 * Hashtbl.length v.v_overrides)
  + (match v.v_shards with Some sm -> 24 * Shard_map.count sm | None -> 0)

let view_lookup v oid = Hashtbl.find_opt v.v_overrides oid

(* Resolution order: a per-object override (a §10 migration) wins, then
   the shard table (elastic topology, §15), then the static oracle.
   Replicated objects never move. The shard table replaces the static
   oracle wholesale for partition-placed objects — one lookup either
   way. *)
let placement_under v static oid =
  match static oid with
  | App.Replicated -> App.Replicated
  | App.Partition _ as p -> (
      match Hashtbl.find_opt v.v_overrides oid with
      | Some part -> App.Partition part
      | None -> (
          match v.v_shards with
          | Some sm -> App.Partition (Shard_map.home sm (Oid.to_int oid))
          | None -> p))

let destinations v app ~partitions req =
  App.destinations_under
    ~placement_of:(placement_under v app.App.placement_of)
    app ~partitions req
