open Heron_sim
open Heron_rdma
open Heron_multicast

type 'resp reply = Reply of 'resp | Redirect of { epoch : int }

type ('req, 'resp) request = {
  rq_payload : 'req;
  rq_dst : int list;
  rq_submitted : Time_ns.t;
  rq_client_node : Fabric.node;
  rq_reply : part:int -> 'resp reply -> unit;
  rq_trace : int;
  rq_parent : int;
}

type migration = {
  mg_epoch : int;
  mg_src : int;
  mg_dst : int;
  mg_oids : (Oid.t * int) list;  (* object and its cell capacity *)
  mg_shards : Heron_topology.Shard_map.t option;
      (* a shard split or merge (DESIGN.md §15): the full replacement
         shard table, installed instead of per-object overrides; the
         oid list still drives the destination's cell pulls *)
  mg_client_node : Fabric.node;
  mg_done : part:int -> unit;
  mg_trace : int;  (* reqtrace id minted by the orchestrator; 0 untraced *)
  mg_parent : int;
}

type lease_grant = {
  lg_part : int;  (* the granter's partition (also the multicast dst) *)
  lg_idx : int;  (* replica index the lease is granted to *)
  lg_incarnation : int;  (* Fabric.epoch of the holder at grant time *)
  lg_expiry_ns : Time_ns.t;  (* absolute expiry on the virtual clock *)
}

type ('req, 'resp) msg =
  | Req of ('req, 'resp) request
  | Migrate of migration
  | Batch of ('req, 'resp) request array
      (* one multicast entry carrying several same-destination requests
         (the pipeline batcher, DESIGN.md §12): ordered once, expanded
         into per-request timestamps (base uid + slot) at delivery *)
  | Lease of lease_grant
      (* a read-lease grant (DESIGN.md §14), multicast to the holder's
         own partition so every replica applies it at the same position
         of the delivery order *)

(* Slot [i] of a batch entry executes at the entry's clock with the
   i-th uid of the contiguous range the submitter reserved
   (Ramcast.multicast ~slots): distinct per request — dual versioning
   needs distinct tags — and identically ordered at every delivering
   group. *)
let batch_slot_tmp (base : Tstamp.t) i =
  if i = 0 then base
  else Tstamp.make ~clock:base.Tstamp.clock ~uid:(base.Tstamp.uid + i)

(* Registry handles (resolved once per replica at creation; replicas of
   one deployment share the config's registry, so these accumulate
   deployment-wide series). *)
type obs = {
  ob_phase2_wait : Heron_obs.Metrics.histogram;  (* coord.phase2_wait_ns *)
  ob_phase4_wait : Heron_obs.Metrics.histogram;  (* coord.phase4_wait_ns *)
  ob_laggers : Heron_obs.Metrics.counter;  (* coord.lagger_detections *)
  ob_transfers : Heron_obs.Metrics.counter;  (* coord.state_transfers *)
  ob_transfer_bytes : Heron_obs.Metrics.counter;  (* coord.state_transfer_bytes *)
  ob_remote_miss : Heron_obs.Metrics.counter;  (* store.dual_version_miss *)
  ob_executed : Heron_obs.Metrics.counter;  (* replica.executed *)
  ob_skipped : Heron_obs.Metrics.counter;  (* replica.skipped_deliveries *)
  ob_redirects : Heron_obs.Metrics.counter;  (* reconfig.redirects *)
  ob_migrations_applied : Heron_obs.Metrics.counter;  (* reconfig.migrations_applied *)
  ob_checkpoints : Heron_obs.Metrics.counter;  (* durability.checkpoints *)
  ob_truncated : Heron_obs.Metrics.counter;  (* durability.truncated_entries *)
  ob_log_len : Heron_obs.Metrics.histogram;  (* durability.log_len *)
  ob_mcast_log_len : Heron_obs.Metrics.histogram;  (* durability.mcast_log_len *)
  ob_rejoin_state_bytes : Heron_obs.Metrics.counter;  (* durability.rejoin_bytes *)
  ob_bootstraps : Heron_obs.Metrics.counter;  (* durability.checkpoint_bootstraps *)
  ob_invalidation : Heron_obs.Metrics.histogram;  (* reads.invalidation_ns *)
}

let make_obs reg =
  let open Heron_obs in
  {
    ob_phase2_wait = Metrics.histogram reg "coord.phase2_wait_ns";
    ob_phase4_wait = Metrics.histogram reg "coord.phase4_wait_ns";
    ob_laggers = Metrics.counter reg "coord.lagger_detections";
    ob_transfers = Metrics.counter reg "coord.state_transfers";
    ob_transfer_bytes = Metrics.counter reg "coord.state_transfer_bytes";
    ob_remote_miss = Metrics.counter reg "store.dual_version_miss";
    ob_executed = Metrics.counter reg "replica.executed";
    ob_skipped = Metrics.counter reg "replica.skipped_deliveries";
    ob_redirects = Metrics.counter reg "reconfig.redirects";
    ob_migrations_applied = Metrics.counter reg "reconfig.migrations_applied";
    ob_checkpoints = Metrics.counter reg "durability.checkpoints";
    ob_truncated = Metrics.counter reg "durability.truncated_entries";
    ob_log_len = Metrics.histogram reg "durability.log_len";
    ob_mcast_log_len = Metrics.histogram reg "durability.mcast_log_len";
    ob_rejoin_state_bytes = Metrics.counter reg "durability.rejoin_bytes";
    ob_bootstraps = Metrics.counter reg "durability.checkpoint_bootstraps";
    ob_invalidation = Metrics.histogram reg "reads.invalidation_ns";
  }

type stats = {
  st_ordering : Heron_stats.Sample_set.t;
  st_coord : Heron_stats.Sample_set.t;
  st_exec : Heron_stats.Sample_set.t;
  mutable st_executed : int;
  mutable st_skipped : int;
  mutable st_multi : int;
  mutable st_delayed : int;
  st_delay : Heron_stats.Sample_set.t;
  mutable st_laggers : int;
  mutable st_transfers_served : int;
}

let make_stats () =
  {
    st_ordering = Heron_stats.Sample_set.create ();
    st_coord = Heron_stats.Sample_set.create ();
    st_exec = Heron_stats.Sample_set.create ();
    st_executed = 0;
    st_skipped = 0;
    st_multi = 0;
    st_delayed = 0;
    st_delay = Heron_stats.Sample_set.create ();
    st_laggers = 0;
    st_transfers_served = 0;
  }

(* One outbound coordination fan-out, queued to the coordination-writer
   fiber when Config.pipeline.pipe_coord_writer is on. *)
type coord_job = { cj_tmp : Tstamp.t; cj_dst : int list; cj_stage : int }

(* A checkpoint (DESIGN.md §13): the replica's store as of one applied
   frontier, snapshotted in a single event-loop turn through the same
   encode path a state-transfer donor uses. Registered cells ship raw
   (both dual versions), local-class values at their newest version at
   or below the frontier. Serialization of the local values is paid at
   checkpoint time, off any later rejoin's critical path. *)
type checkpoint = {
  ck_frontier : Tstamp.t;  (* every update <= this is captured *)
  ck_reg : (Oid.t * bytes) list;
  ck_loc : (Oid.t * (bytes * Tstamp.t)) list;
  ck_loc_bytes : int;  (* serialized footprint of ck_loc *)
  ck_bytes : int;  (* total shippable footprint *)
}

type ('req, 'resp) t = {
  r_cfg : Config.t;
  r_app : ('req, 'resp) App.t;
  r_part : int;
  r_idx : int;
  r_node : Fabric.node;
  r_store : Versioned_store.t;
  r_coord : Coord_mem.t;
  r_sync : Statesync_mem.t;
  r_log : Update_log.t;
  r_inbox : ('req, 'resp) msg Ramcast.delivery Mailbox.t;
  mutable r_last_req : Tstamp.t;
  mutable r_last_applied : Tstamp.t;
      (* last request whose writes are fully in the store; trails
         r_last_req while a request is being executed. The state
         transfer donor must ship state consistent with a request
         boundary, so it snapshots this, not r_last_req. *)
  mutable r_peers : ('req, 'resp) t array array;  (* [part].(idx); set later *)
  r_qps : (int, Qp.t) Hashtbl.t;  (* by destination node id *)
  r_addr_known : (Oid.t * int, unit) Hashtbl.t;  (* object_map cache *)
  r_view : Placement.view;
      (* this replica's placement view, advanced in delivery order when
         it executes a Migrate — identical across a partition's replicas
         at the same point of the order *)
  r_track : bool;  (* reconfig enabled: count accesses, accept Migrate *)
  r_access : (Oid.t, int) Hashtbl.t;  (* per-object access counts *)
  r_stats : stats;
  r_obs : obs;
  mutable r_pending_deser : int;  (* bytes to deserialize after a transfer *)
  mutable r_pending_view : Placement.view option;
      (* placement snapshot shipped by a state-transfer donor, adopted
         together with the synchronised prefix (not directly installed
         by the donor: the lagger's delivery loop must never observe a
         view ahead of its own frontier) *)
  r_lease : Read_lease.t;
      (* read-lease table and frontier-copy region (DESIGN.md §14);
         allocated unconditionally, touched only with fast reads on *)
  mutable r_pending_lease : Read_lease.snapshot option;
      (* lease-table snapshot shipped by a state-transfer donor, adopted
         with the prefix like [r_pending_view]: a rejoiner's empty table
         would otherwise let it acknowledge writes without waiting for
         leases granted before its adoption point *)
  mutable r_recovering : int;  (* state transfers currently in flight *)
  mutable r_exec_delay : Time_ns.t;  (* failure injection: extra exec cost *)
  mutable r_tracer : Trace.t option;
  mutable r_coord_mb : coord_job Mailbox.t option;
      (* when set, [announce] hands fan-outs to the coordination-writer
         fiber instead of posting inline (pipeline mode) *)
  mutable r_ckpt : checkpoint option;  (* latest checkpoint (durability) *)
  mutable r_compact : (upto:Tstamp.t -> int) option;
      (* multicast-log compaction hook, installed by System: compacts
         the partition's delivery log up to the truncation frontier and
         returns the retained length (the replica layer cannot see the
         multicast internals) *)
  r_eng : Engine.t;
}

exception Lagging
(* Internal: a remote read found no version older than the current
   request (Algorithm 2 line 23). *)

let create ~cfg ~app ~part ~idx ~node ~store_region_size =
  let reg = cfg.Config.metrics in
  let store = Versioned_store.create node ~region_size:store_region_size in
  let coord =
    Coord_mem.create node ~partitions:cfg.Config.partitions
      ~replicas:cfg.Config.replicas
  in
  Versioned_store.attach_metrics store reg;
  Coord_mem.attach_metrics coord reg;
  {
    r_cfg = cfg;
    r_app = app;
    r_part = part;
    r_idx = idx;
    r_node = node;
    r_store = store;
    r_coord = coord;
    r_sync = Statesync_mem.create node ~replicas:cfg.Config.replicas;
    r_log = Update_log.create ~capacity:cfg.Config.log_capacity;
    r_inbox = Mailbox.create ();
    r_last_req = Tstamp.zero;
    r_last_applied = Tstamp.zero;
    r_peers = [||];
    r_qps = Hashtbl.create 16;
    r_addr_known = Hashtbl.create 1024;
    r_view = Placement.fresh_view ?shards:(Config.initial_shards cfg) ();
    r_track = cfg.Config.reconfig.Config.enabled;
    r_access = Hashtbl.create 64;
    r_stats = make_stats ();
    r_obs = make_obs reg;
    r_pending_deser = 0;
    r_pending_view = None;
    r_lease = Read_lease.create node ~replicas:cfg.Config.replicas;
    r_pending_lease = None;
    r_recovering = 0;
    r_exec_delay = 0;
    r_tracer = None;
    r_coord_mb = None;
    r_ckpt = None;
    r_compact = None;
    r_eng = Fabric.engine (Fabric.fabric_of node);
  }

let set_directory r peers = r.r_peers <- peers
let inbox r = r.r_inbox
let store r = r.r_store
let node r = r.r_node
let part r = r.r_part
let idx r = r.r_idx
let last_req r = r.r_last_req
let last_applied r = r.r_last_applied
let stats r = r.r_stats

let clear_stats r =
  let s = r.r_stats in
  Heron_stats.Sample_set.clear s.st_ordering;
  Heron_stats.Sample_set.clear s.st_coord;
  Heron_stats.Sample_set.clear s.st_exec;
  Heron_stats.Sample_set.clear s.st_delay;
  s.st_executed <- 0;
  s.st_skipped <- 0;
  s.st_multi <- 0;
  s.st_delayed <- 0;
  s.st_laggers <- 0;
  s.st_transfers_served <- 0

let update_log r = r.r_log
let lease_table r = r.r_lease
let set_compactor r f = r.r_compact <- Some f
let checkpoint_frontier r = Option.map (fun ck -> ck.ck_frontier) r.r_ckpt
let inject_exec_delay r d = r.r_exec_delay <- d
let set_tracer r tr = r.r_tracer <- Some tr
let placement_view r = r.r_view

(* Effective placement: the replica's epoch-versioned overrides layered
   over the app's static oracle (DESIGN.md §10). *)
let placement_of r oid = Placement.placement_under r.r_view r.r_app.App.placement_of oid

let is_local r oid =
  match placement_of r oid with
  | App.Partition h -> h = r.r_part
  | App.Replicated -> true

(* Per-object access counts feeding the rebalancer; only maintained when
   reconfig is enabled so the static system pays nothing. *)
let count_access r oid =
  if r.r_track then
    Hashtbl.replace r.r_access oid
      (1 + Option.value ~default:0 (Hashtbl.find_opt r.r_access oid))

let drain_access_counts r =
  let out = Hashtbl.fold (fun oid n acc -> (oid, n) :: acc) r.r_access [] in
  Hashtbl.reset r.r_access;
  out

(* Internal self-consistency, for the chaos harness. Each check is an
   always-true property of Algorithms 1-3 at any instant; the
   [quiescent] extras additionally assume no request is in flight (a
   donor snapshot legitimately ships a peer's in-progress writes, so
   store tags may transiently exceed [r_last_req] mid-recovery). *)
let check_invariants ?(quiescent = true) r =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let pp t = Format.asprintf "%a" Tstamp.pp t in
  if Tstamp.(r.r_last_req < r.r_last_applied) then
    fail "last_applied %s ahead of last_req %s" (pp r.r_last_applied) (pp r.r_last_req)
  else if Tstamp.(r.r_last_req < Update_log.last_tmp r.r_log) then
    fail "update log reaches %s beyond last_req %s"
      (pp (Update_log.last_tmp r.r_log)) (pp r.r_last_req)
  else if Tstamp.(r.r_last_req < Update_log.truncation r.r_log) then
    fail "log truncation point %s beyond last_req %s"
      (pp (Update_log.truncation r.r_log)) (pp r.r_last_req)
  else if
    (let own, _ = Coord_mem.read_slot r.r_coord ~part:r.r_part ~idx:r.r_idx in
     Tstamp.(r.r_last_req < own))
  then
    fail "own coordination slot %s beyond last_req %s"
      (pp (fst (Coord_mem.read_slot r.r_coord ~part:r.r_part ~idx:r.r_idx)))
      (pp r.r_last_req)
  else
    let bad = ref None in
    List.iter
      (fun oid ->
        if !bad = None then begin
          (* Decode the raw cell rather than calling [get_before]: the
             latter counts misses into [store.dual_version_miss], and a
             checker must not perturb the metrics it runs alongside. *)
          let (_, ta), (_, tb) =
            Versioned_store.decode_cell (Versioned_store.encode_cell_of r.r_store oid)
          in
          let newest = if Tstamp.(tb <= ta) then ta else tb in
          (* Dual versioning keeps the two versions distinct: only the
             initial (zero, zero) pair may coincide. *)
          if Tstamp.equal ta tb && not (Tstamp.equal ta Tstamp.zero) then
            bad :=
              Some
                (Printf.sprintf "object %d lost its older version (both at %s)"
                   (Oid.to_int oid) (pp ta))
          else if quiescent && Tstamp.(r.r_last_req < newest) then
            bad :=
              Some
                (Printf.sprintf "object %d tagged %s beyond last_req %s"
                   (Oid.to_int oid) (pp newest) (pp r.r_last_req))
        end)
      (Versioned_store.registered_oids r.r_store);
    match !bad with None -> Result.Ok () | Some msg -> Error msg

let trace r ~name ~tmp ~start stop =
  match r.r_tracer with
  | None -> ()
  | Some tr ->
      Trace.record tr ~name
        ~attrs:[ ("tmp", Format.asprintf "%a" Tstamp.pp tmp) ]
        ~start stop

(* Request-scoped causal span (DESIGN.md §11): recorded against the
   trace the client minted at submit, parented to its root span —
   containment nesting sorts overlapping stages out at analysis time,
   so stages need not thread each other's span ids. No-op for untraced
   requests and untraced deployments. *)
let req_span r req ~stage ~start stop =
  if req.rq_trace <> 0 then
    match r.r_cfg.Config.reqtrace with
    | None -> ()
    | Some col ->
        ignore
          (Heron_obs.Reqtrace.add_span col ~trace:req.rq_trace
             ~parent:req.rq_parent ~stage
             ~attrs:
               [ ("part", string_of_int r.r_part); ("idx", string_of_int r.r_idx) ]
             ~start stop)

let qp_to r dst_node =
  let key = Fabric.node_id dst_node in
  match Hashtbl.find_opt r.r_qps key with
  | Some qp -> qp
  | None ->
      let qp = Qp.connect ~src:r.r_node ~dst:dst_node in
      Hashtbl.replace r.r_qps key qp;
      qp

let peer r ~part ~idx = r.r_peers.(part).(idx)
let n_replicas r = r.r_cfg.Config.replicas
let majority r = (n_replicas r / 2) + 1
let costs r = r.r_cfg.Config.costs

let charge_deser r bytes =
  Engine.consume (bytes * (costs r).Config.deser_per_byte_x100 / 100)

let charge_ser r bytes =
  Engine.consume (bytes * (costs r).Config.ser_per_byte_x100 / 100)

let wait_mem r pred = Signal.wait_until (Fabric.mem_signal r.r_node) pred

(* Wait until [pred] holds or the virtual clock reaches [deadline]. *)
let wait_mem_deadline r pred ~deadline =
  let delay = deadline - Engine.now r.r_eng in
  if delay > 0 then
    Engine.schedule ~delay r.r_eng (fun () ->
        Signal.broadcast (Fabric.mem_signal r.r_node));
  wait_mem r (fun () -> pred () || Engine.now r.r_eng >= deadline)

(* {1 Read leases (DESIGN.md §14)} *)

let fast_reads r = r.r_cfg.Config.fast_reads

(* Fan this replica's applied frontier out to every same-partition
   peer's lease region (self-write local), tagged with our incarnation
   so copies published by a previous incarnation never count. Each
   fan-out is one doorbell-batched WQE list, like a coordination
   announce; the payload is encoded once and shared. Ends with a local
   signal broadcast: the self slot is a raw store, and a commit-wait on
   this very node may be blocked on it. *)
let lease_publish r tmp =
  let epoch = Fabric.epoch r.r_node in
  let payload = Read_lease.encode_copy tmp ~epoch in
  let batch = Qp.Doorbell.create () in
  for i = 0 to n_replicas r - 1 do
    let q = peer r ~part:r.r_part ~idx:i in
    if q == r then Read_lease.write_copy_local r.r_lease ~idx:r.r_idx tmp ~epoch
    else
      Qp.Doorbell.add batch (qp_to r q.r_node)
        (Read_lease.copy_addr q.r_lease ~idx:r.r_idx)
        payload
  done;
  if Qp.Doorbell.length batch > 0 then begin
    Engine.consume (costs r).Config.coord_post_ns;
    Qp.Doorbell.ring batch
  end;
  Signal.broadcast (Fabric.mem_signal r.r_node)

(* Publish the current applied frontier if fast reads are on. May
   suspend (the doorbell charge), so every caller must finish its state
   updates — frontier store, completion-queue pops, view installs —
   before calling; the frontier value itself is re-read here so a batch
   of completions publishes once, at its final value. *)
let publish_applied r =
  if (fast_reads r).Config.fr_enabled then lease_publish r r.r_last_applied

(* A peer blocks acknowledging [tmp] when it holds a valid lease —
   unexpired, and granted to the peer's current incarnation (a crashed
   or restarted holder can never serve under an old grant again, since
   epochs only grow) — but has not yet published an applied frontier at
   or past [tmp] under that incarnation. Returns the earliest expiry
   among blocking holders, [None] when none blocks. *)
let lease_block r ~tmp ~now =
  let earliest = ref None in
  for i = 0 to n_replicas r - 1 do
    if i <> r.r_idx then
      match Read_lease.entry r.r_lease ~idx:i with
      | None -> ()
      | Some e ->
          let q = peer r ~part:r.r_part ~idx:i in
          if
            now < e.Read_lease.le_expiry_ns
            && Fabric.is_alive q.r_node
            && Fabric.epoch q.r_node = e.Read_lease.le_incarnation
          then begin
            let f, f_epoch = Read_lease.read_copy r.r_lease ~idx:i in
            if f_epoch <> e.Read_lease.le_incarnation || Tstamp.(f < tmp) then
              match !earliest with
              | Some x when x <= e.Read_lease.le_expiry_ns -> ()
              | Some _ | None -> earliest := Some e.Read_lease.le_expiry_ns
          end
  done;
  !earliest

(* Commit-wait: block until no valid lease holder lags [tmp]. Gating
   {e every} acknowledgement on this — single- and multi-partition,
   read-only or not, and migration completions — is what makes a local
   read at any valid holder linearizable: a committed write (or any
   reply exposing one) implies every holder had applied it first, and a
   holder serves only values its own applied frontier covers. The wait
   runs on reply fibers, never on the delivery loop, so executors and
   barriers are not stalled; it cannot deadlock because a replica
   publishes its frontier when it applies, before its reply fiber
   waits. Crashed, restarted and expired holders drop out of
   [lease_block], bounding any stall at the lease length. *)
let commit_wait r ~tmp =
  let fr = fast_reads r in
  if fr.Config.fr_enabled && fr.Config.fr_write_wait then begin
    let t0 = Engine.now r.r_eng in
    let rec go () =
      match lease_block r ~tmp ~now:(Engine.now r.r_eng) with
      | None -> ()
      | Some expiry ->
          wait_mem_deadline r
            (fun () -> lease_block r ~tmp ~now:(Engine.now r.r_eng) = None)
            ~deadline:expiry;
          go ()
    in
    go ();
    let waited = Engine.now r.r_eng - t0 in
    if waited > 0 then Heron_obs.Metrics.observe r.r_obs.ob_invalidation waited
  end

(* The stable frontier: the minimum applied frontier over this replica
   and every peer currently holding a valid lease (same validity test
   as [lease_block]). A version at or below it has been applied by
   every replica able to serve a fast read, so no later local read can
   observe an older value; a version above it is still inside some
   commit-wait window — applied here, possibly not at a valid peer —
   and serving it would let two reads of the same object straddle an
   unacknowledged write across replicas. Peer copies only lag their
   true frontiers, so staleness makes the bound lower (more misses),
   never unsafe. *)
let stable_frontier r ~now =
  let bound = ref r.r_last_applied in
  for i = 0 to n_replicas r - 1 do
    if i <> r.r_idx then
      match Read_lease.entry r.r_lease ~idx:i with
      | None -> ()
      | Some e ->
          let q = peer r ~part:r.r_part ~idx:i in
          if
            now < e.Read_lease.le_expiry_ns
            && Fabric.is_alive q.r_node
            && Fabric.epoch q.r_node = e.Read_lease.le_incarnation
          then begin
            let f, f_epoch = Read_lease.read_copy r.r_lease ~idx:i in
            let f =
              if f_epoch <> e.Read_lease.le_incarnation then Tstamp.zero else f
            in
            if Tstamp.(f < !bound) then bound := f
          end
  done;
  !bound

(* {1 Coordination (Algorithm 1, Phases 2 and 4)} *)

(* Write (tmp, stage) into our slot of every replica of every involved
   partition; self-coordination is a local write. The slot image is
   encoded once per fan-out ([write_post] and [Doorbell.ring] snapshot
   payloads at post time, so sharing the buffer is safe). With
   [coord_batching] all remote slots go out as one doorbell-batched WQE
   list — one [post_ns] per coalesce group plus one [coord_post_ns]
   WQE-preparation charge per fan-out — instead of one full post per
   destination replica. *)
let announce_now r ~tmp ~dst ~stage =
  let payload = Coord_mem.encode_slot tmp ~stage in
  if r.r_cfg.Config.coord_batching then begin
    let batch = Qp.Doorbell.create () in
    List.iter
      (fun h ->
        for i = 0 to n_replicas r - 1 do
          let q = peer r ~part:h ~idx:i in
          if q == r then
            Coord_mem.write_local r.r_coord ~part:r.r_part ~idx:r.r_idx tmp ~stage
          else
            Qp.Doorbell.add batch (qp_to r q.r_node)
              (Coord_mem.slot_addr q.r_coord ~part:r.r_part ~idx:r.r_idx)
              payload
        done)
      dst;
    if Qp.Doorbell.length batch > 0 then begin
      Engine.consume (costs r).Config.coord_post_ns;
      Qp.Doorbell.ring batch
    end
  end
  else
    List.iter
      (fun h ->
        for i = 0 to n_replicas r - 1 do
          let q = peer r ~part:h ~idx:i in
          if q == r then
            Coord_mem.write_local r.r_coord ~part:r.r_part ~idx:r.r_idx tmp ~stage
          else begin
            Engine.consume (costs r).Config.coord_post_ns;
            Qp.write_post (qp_to r q.r_node)
              (Coord_mem.slot_addr q.r_coord ~part:r.r_part ~idx:r.r_idx)
              payload
          end
        done)
      dst

(* With the pipeline's coordination writer running, hand the fan-out to
   it; otherwise post inline. Delegation is safe because the writer is a
   single fiber draining a FIFO — per-replica slot announcements stay in
   submission order, which the [Coord_mem.reached] monotonicity argument
   relies on — and because coordination posts to dead peers are dropped,
   never raised, so the writer cannot die on a crash. *)
let announce r ~tmp ~dst ~stage =
  match r.r_coord_mb with
  | Some mb -> Mailbox.send mb { cj_tmp = tmp; cj_dst = dst; cj_stage = stage }
  | None -> announce_now r ~tmp ~dst ~stage

(* Coordination-writer stage (DESIGN.md §12): owns every outbound
   announce so the sequencer and executors never pay [coord_post_ns] or
   doorbell charges on their own critical path. After each fan-out it
   broadcasts this node's memory signal: the local slot write in
   [announce_now] is a raw store, and the fiber inside [coordinate] that
   queued the job may already be waiting on its own slot. *)
let coord_writer_loop r mb =
  let rec loop () =
    let job = Mailbox.recv mb in
    announce_now r ~tmp:job.cj_tmp ~dst:job.cj_dst ~stage:job.cj_stage;
    Signal.broadcast (Fabric.mem_signal r.r_node);
    loop ()
  in
  loop ()

(* One coordination phase: announce, wait for a majority per involved
   partition, then apply the configured tail policy. Wait_all feeds the
   Table I instrumentation (delayed transactions and their delay).

   Reached counts are cached monotonically across wakeups: for a fixed
   (tmp, stage) a slot's [reached] can only flip to true, so each
   wakeup rescans just the slots not yet seen instead of all
   partitions × replicas — and the polling charge after the majority
   observation covers only those remaining slots. *)
let coordinate r ~tmp ~dst ~stage ~(wait : Config.coord_wait) =
  let t_begin = Engine.now r.r_eng in
  announce r ~tmp ~dst ~stage;
  let n = n_replicas r in
  let track = List.map (fun h -> (h, Array.make n false, ref 0)) dst in
  let reached_upto target () =
    List.for_all
      (fun (h, seen, cnt) ->
        let i = ref 0 in
        while !cnt < target && !i < n do
          if (not seen.(!i)) && Coord_mem.reached r.r_coord ~part:h ~idx:!i ~tmp ~stage
          then begin
            seen.(!i) <- true;
            incr cnt
          end;
          incr i
        done;
        !cnt >= target)
      track
  in
  let check_cost () =
    let unseen = List.fold_left (fun acc (_, _, cnt) -> acc + (n - !cnt)) 0 track in
    (costs r).Config.coord_check_slot_ns * unseen
  in
  wait_mem r (reached_upto (majority r));
  (match wait with
  | Config.Majority -> ()
  | Config.Grace grace ->
      (* One polling iteration separates the majority observation from
         the all-replicas check. *)
      Engine.consume (check_cost ());
      if not (reached_upto n ()) then begin
        let deadline = Engine.now r.r_eng + grace in
        wait_mem_deadline r (reached_upto n) ~deadline
      end
  | Config.Wait_all ->
      Engine.consume (check_cost ());
      if reached_upto n () then ()
      else begin
        r.r_stats.st_delayed <- r.r_stats.st_delayed + 1;
        let t0 = Engine.now r.r_eng in
        wait_mem r (reached_upto n);
        Heron_stats.Sample_set.add r.r_stats.st_delay (Engine.now r.r_eng - t0)
      end);
  let hist =
    if stage = 1 then r.r_obs.ob_phase2_wait else r.r_obs.ob_phase4_wait
  in
  Heron_obs.Metrics.observe hist (Engine.now r.r_eng - t_begin)

(* Write one statesync slot image into every replica of the group (self
   included), doorbell-batched under [coord_batching]; the image is
   encoded once and shared by all WQEs. *)
let sync_fanout r ~slot_idx tmp ~status =
  let payload = Statesync_mem.encode_slot tmp ~status in
  if r.r_cfg.Config.coord_batching then begin
    let batch = Qp.Doorbell.create () in
    for i = 0 to n_replicas r - 1 do
      let q = peer r ~part:r.r_part ~idx:i in
      if q == r then Statesync_mem.write_local r.r_sync ~idx:slot_idx tmp ~status
      else
        Qp.Doorbell.add batch (qp_to r q.r_node)
          (Statesync_mem.slot_addr q.r_sync ~idx:slot_idx)
          payload
    done;
    Qp.Doorbell.ring batch
  end
  else
    for i = 0 to n_replicas r - 1 do
      let q = peer r ~part:r.r_part ~idx:i in
      if q == r then Statesync_mem.write_local r.r_sync ~idx:slot_idx tmp ~status
      else
        Qp.write_post (qp_to r q.r_node)
          (Statesync_mem.slot_addr q.r_sync ~idx:slot_idx)
          payload
    done

(* {1 State transfer (Algorithm 3)} *)

(* Lagger side: request a transfer from the group and block until a
   donor reports completion, then adopt the synchronised prefix.

   [failed_tmp] is the point the transfer must reach back to — the
   donor ships every object updated at or after it. [cover] is how far
   the adopted state must extend before it is usable; normally the two
   coincide (the failed read), but a restarted replica needs everything
   from the beginning of time ([failed_tmp] minimal) while insisting
   the donor has applied past the group's dispatch horizon ([cover]),
   because entries before the horizon are never redelivered. Keeping
   one timestamp for both roles transfers too little: a delta from the
   horizon misses any object last written before it, which an empty
   store silently keeps at its catalog value. *)
let rec initiate_state_transfer_locked r ~failed_tmp ~cover =
  let transfer_start = Engine.now r.r_eng in
  r.r_stats.st_laggers <- r.r_stats.st_laggers + 1;
  Heron_obs.Metrics.incr r.r_obs.ob_laggers;
  sync_fanout r ~slot_idx:r.r_idx failed_tmp ~status:1;
  (* The request lives only in the group's statesync slots: a member
     that was down during the fanout (its wiped slot reads idle) or
     that crashes while queued to serve forgets it. Re-publish once
     every candidate's turn has gone by unanswered, so the current
     incarnations of the group see it. *)
  let served () = snd (Statesync_mem.read_slot r.r_sync ~idx:r.r_idx) = 0 in
  let republish_ns =
    max 1 (n_replicas r - 1) * r.r_cfg.Config.statesync_timeout_ns
  in
  let rec await () =
    wait_mem_deadline r served ~deadline:(Engine.now r.r_eng + republish_ns);
    if not (served ()) then begin
      sync_fanout r ~slot_idx:r.r_idx failed_tmp ~status:1;
      await ()
    end
  in
  await ();
  (* Non-serialized data shipped by the donor must be deserialized
     before resuming (Figure 8's second scenario). *)
  if r.r_pending_deser > 0 then begin
    charge_deser r r.r_pending_deser;
    r.r_pending_deser <- 0
  end;
  let rid, _ = Statesync_mem.read_slot r.r_sync ~idx:r.r_idx in
  (* Adopt the donor's placement snapshot in the same turn as the
     frontier: deliveries decided under the old view are all at or
     before [rid] and will be skipped. *)
  (match r.r_pending_view with
  | Some v ->
      if Placement.view_epoch v > Placement.view_epoch r.r_view then
        Placement.copy_view ~src:v ~dst:r.r_view;
      r.r_pending_view <- None
  | None -> ());
  (* The donor's lease-table snapshot covers every grant at or before
     [rid]; later grants are redelivered and applied normally. *)
  (match r.r_pending_lease with
  | Some snap ->
      Read_lease.adopt r.r_lease snap;
      r.r_pending_lease <- None
  | None -> ());
  if Tstamp.(r.r_last_req < rid) then r.r_last_req <- rid;
  if Tstamp.(r.r_last_applied < rid) then begin
    r.r_last_applied <- rid;
    (* Adopted state reached [rid] without our log recording the
       corresponding updates: the log has a hole up to [rid] and must
       not serve delta transfers reaching behind it. *)
    Update_log.note_gap r.r_log ~upto:rid
  end;
  (* Writers may already be commit-waiting on this incarnation's
     frontier copy; publish the adopted frontier before resuming. *)
  publish_applied r;
  (* The donor had not reached the failed request yet: its state cannot
     cover it, so ask again (it keeps executing meanwhile). *)
  trace r ~name:"state-transfer" ~tmp:failed_tmp ~start:transfer_start
    (Engine.now r.r_eng);
  if Tstamp.(rid < cover) then begin
    Engine.sleep r.r_cfg.Config.statesync_timeout_ns;
    initiate_state_transfer_locked r ~failed_tmp ~cover
  end

(* [r_recovering] brackets the whole episode, retries included: the
   chaos driver reads it to keep crash injection inside the failure
   model (killing the last replica that applied a suffix while its
   peers are still synchronising loses that suffix with only one
   nominal failure). *)
let initiate_state_transfer r ~failed_tmp ~cover =
  r.r_recovering <- r.r_recovering + 1;
  Fun.protect
    ~finally:(fun () -> r.r_recovering <- r.r_recovering - 1)
    (fun () -> initiate_state_transfer_locked r ~failed_tmp ~cover)

let in_recovery r = r.r_recovering > 0

let force_state_transfer ?cover r ~failed_tmp =
  initiate_state_transfer r ~failed_tmp
    ~cover:(match cover with Some c -> c | None -> failed_tmp)

(* Donor side: ship the objects the lagger misses, 32 KB per RDMA
   write; registered cells land directly in the lagger's store,
   local-class values are serialized here and deserialized there. *)
let do_transfer r ~lagger_idx ~failed_tmp =
  let lagger = peer r ~part:r.r_part ~idx:lagger_idx in
  (* Snapshot the state to ship in a single event-loop turn (no
     suspension points): [upto] and the copied values then describe one
     instant, with at most the single in-flight request per object
     beyond [upto] — which dual versioning absorbs. Copy first, sleep
     through the wire transfer after. *)
  let upto = r.r_last_applied in
  let full = not (Update_log.covers r.r_log ~from:failed_tmp) in
  (* Checkpoint bootstrap (DESIGN.md §13): when the log cannot cover
     the request (restart from the beginning of time, or a delta range
     behind our truncation point) and we hold a checkpoint whose
     frontier the log does reach back to, ship the checkpoint plus the
     O(delta) log suffix instead of re-encoding the whole store — and
     pay serialization only for the delta (the checkpoint's was paid
     when it was taken). A donor that itself just truncated still
     serves this way: truncation never advances past its own
     checkpoint frontier, so the guard below only fails when the gap
     came from an adopted transfer ([note_gap] beyond the checkpoint),
     in which case the plain full path below remains correct. *)
  let bootstrap =
    if full then
      match r.r_ckpt with
      | Some ck
        when Tstamp.(Update_log.truncation r.r_log <= ck.ck_frontier)
             && Tstamp.(ck.ck_frontier <= upto) ->
          Some ck
      | Some _ | None -> None
    else None
  in
  let partition_by_klass oids =
    List.partition
      (fun oid -> Versioned_store.klass_of r.r_store oid = Versioned_store.Registered)
      oids
  in
  let encode_reg oids =
    List.map (fun oid -> (oid, Versioned_store.encode_cell_of r.r_store oid)) oids
  in
  (* Ship local-class values as of the snapshot point; objects created
     by an in-flight request beyond it are skipped (the lagger creates
     them itself when it executes that request). *)
  let snapshot_loc oids =
    List.filter_map
      (fun oid ->
        match Versioned_store.get_at_most r.r_store oid ~bound:upto with
        | Some (v, tmp) -> Some (oid, (v, tmp))
        | None -> None)
      oids
  in
  let loc_footprint vs =
    List.fold_left (fun acc (_, (v, _)) -> acc + Bytes.length v + 24) 0 vs
  in
  let reg_cells, loc_values, ser_bytes =
    match bootstrap with
    | Some ck ->
        let delta = Update_log.oids_after r.r_log ~after:ck.ck_frontier ~upto in
        let in_delta = Hashtbl.create (max 16 (List.length delta)) in
        List.iter (fun oid -> Hashtbl.replace in_delta oid ()) delta;
        let dreg, dloc = partition_by_klass delta in
        let dloc_values = snapshot_loc dloc in
        (* Delta cells supersede the checkpoint's for the same object. *)
        let keep (oid, _) = not (Hashtbl.mem in_delta oid) in
        ( List.filter keep ck.ck_reg @ encode_reg dreg,
          List.filter keep ck.ck_loc @ dloc_values,
          loc_footprint dloc_values )
    | None ->
        let oids =
          if full then
            Versioned_store.registered_oids r.r_store
            @ Versioned_store.local_oids r.r_store
          else Update_log.oids_in_range r.r_log ~from:failed_tmp ~upto
        in
        let reg, loc = partition_by_klass oids in
        let loc_values = snapshot_loc loc in
        (encode_reg reg, loc_values, loc_footprint loc_values)
  in
  (* Snapshot the placement view in the same turn: it must describe the
     same instant as [upto] (exec_migration installs the epoch and marks
     the command applied without suspending in between). *)
  let plc = Placement.fresh_view ?shards:(Config.initial_shards r.r_cfg) () in
  Placement.copy_view ~src:r.r_view ~dst:plc;
  (* The lease table rides along under the same single-turn snapshot
     argument: it describes the same instant as [upto] (grants are
     applied, like migrations, with no suspension between table update
     and frontier advance). *)
  let lease_snap = Read_lease.snapshot r.r_lease in
  let reg_bytes =
    List.fold_left (fun acc (_, cell) -> acc + Bytes.length cell) 0 reg_cells
  in
  let loc_bytes = loc_footprint loc_values in
  let plc_bytes =
    Placement.view_bytes plc + Read_lease.snapshot_bytes lease_snap
  in
  charge_ser r ser_bytes;
  let qp = qp_to r lagger.r_node in
  let chunk = (costs r).Config.transfer_chunk_bytes in
  let rec ship remaining =
    if remaining > 0 then begin
      Qp.transfer qp ~bytes_len:(min remaining chunk);
      ship (remaining - chunk)
    end
  in
  (try
     ship (reg_bytes + loc_bytes + plc_bytes);
     List.iter
       (fun (oid, cell) ->
         (* A freshly restarted lagger loads only the static catalog;
            register any migrated-in object before landing its cell
            (the capacity is recoverable from the cell layout). *)
         if not (Versioned_store.mem lagger.r_store oid) then
           Versioned_store.register lagger.r_store oid
             ~klass:Versioned_store.Registered
             ~cap:((Bytes.length cell - 32) / 2)
             ~init:Bytes.empty;
         Versioned_store.write_raw_cell lagger.r_store oid cell)
       reg_cells;
     List.iter
       (fun (oid, (v, tmp)) -> Versioned_store.set lagger.r_store oid v ~tmp)
       loc_values;
     lagger.r_pending_view <- Some plc;
     lagger.r_pending_lease <- Some lease_snap;
     lagger.r_pending_deser <- lagger.r_pending_deser + loc_bytes;
     r.r_stats.st_transfers_served <- r.r_stats.st_transfers_served + 1;
     Heron_obs.Metrics.incr r.r_obs.ob_transfers;
     Heron_obs.Metrics.add r.r_obs.ob_transfer_bytes
       (reg_bytes + loc_bytes + plc_bytes);
     (* Rejoin cost accounting (DESIGN.md §13): every full-history
        transfer counts, checkpoint-served or not, so durability on and
        off compare directly. *)
     if full then begin
       Heron_obs.Metrics.add r.r_obs.ob_rejoin_state_bytes
         (reg_bytes + loc_bytes + plc_bytes);
       if Option.is_some bootstrap then
         Heron_obs.Metrics.incr r.r_obs.ob_bootstraps
     end;
     (* Report completion to the whole group (Algorithm 3 lines 16-17). *)
     sync_fanout r ~slot_idx:lagger_idx upto ~status:0
   with Qp.Rdma_exception _ -> (* lagger died mid-transfer *) ())

(* Watch our state-transfer memory for requests from laggers and run
   the deterministic donor selection (Algorithm 3 lines 7-22). *)
let statesync_watcher r =
  let n = n_replicas r in
  let handling = Array.make n false in
  let pending_request j =
    j <> r.r_idx && (not handling.(j))
    && snd (Statesync_mem.read_slot r.r_sync ~idx:j) = 1
  in
  let rec loop () =
    wait_mem r (fun () ->
        let found = ref false in
        for j = 0 to n - 1 do
          if pending_request j then found := true
        done;
        !found);
    for j = 0 to n - 1 do
      if pending_request j then begin
        handling.(j) <- true;
        Fabric.spawn_on r.r_node (fun () ->
            (* Deterministic candidate order: (j+1) mod n, (j+2) ...;
               each candidate waits its turn and acts if the slot still
               shows an unserved request — even one newer than the
               request it woke up for. Declining a superseded request
               can strand the lagger: our re-detection loop is only
               re-evaluated when a fresh write lands in our memory, and
               a lagger blocked on its slot writes nothing further. *)
            let order = List.init (n - 1) (fun k -> (j + 1 + k) mod n) in
            let rec pos i = function
              | [] -> i
              | c :: rest -> if c = r.r_idx then i else pos (i + 1) rest
            in
            let my_pos = pos 0 order in
            Engine.sleep (my_pos * r.r_cfg.Config.statesync_timeout_ns);
            let tmp', status' = Statesync_mem.read_slot r.r_sync ~idx:j in
            (* Serve only if our own applied state covers the request:
               completing a transfer with older state would satisfy the
               slot without helping the lagger, and a group of mutual
               laggers would then bounce stale snapshots between each
               other forever while a fresher donor never gets asked.
               Declining leaves the slot pending for the next
               candidate's turn (or the lagger's re-publish). *)
            if status' = 1 && Tstamp.(tmp' <= r.r_last_applied) then
              do_transfer r ~lagger_idx:j ~failed_tmp:tmp';
            handling.(j) <- false)
      end
    done;
    loop ()
  in
  loop ()

(* {1 Checkpointing and update-log compaction (DESIGN.md §13)}

   A per-replica fiber (spawned by [start] when Config.durability is
   on) periodically snapshots the store, publishes the checkpoint
   frontier to the partition's replicas through coordination memory,
   and truncates the update log — and, through the System-installed
   hook, the multicast delivery log — behind the slowest {e live}
   replica's published frontier. Any live donor's checkpoint then
   provably covers everything truncated anywhere in the partition, so
   a rejoiner can always bootstrap from checkpoint + O(delta) suffix. *)

(* Fan the checkpoint frontier out to every replica of our partition
   (self-write local), exactly like a coordination announce. *)
let publish_frontier r tmp =
  let payload = Coord_mem.encode_frontier tmp in
  if r.r_cfg.Config.coord_batching then begin
    let batch = Qp.Doorbell.create () in
    for i = 0 to n_replicas r - 1 do
      let q = peer r ~part:r.r_part ~idx:i in
      if q == r then
        Coord_mem.write_frontier_local r.r_coord ~part:r.r_part ~idx:r.r_idx tmp
      else
        Qp.Doorbell.add batch (qp_to r q.r_node)
          (Coord_mem.frontier_addr q.r_coord ~part:r.r_part ~idx:r.r_idx)
          payload
    done;
    if Qp.Doorbell.length batch > 0 then begin
      Engine.consume (costs r).Config.coord_post_ns;
      Qp.Doorbell.ring batch
    end
  end
  else
    for i = 0 to n_replicas r - 1 do
      let q = peer r ~part:r.r_part ~idx:i in
      if q == r then
        Coord_mem.write_frontier_local r.r_coord ~part:r.r_part ~idx:r.r_idx tmp
      else begin
        Engine.consume (costs r).Config.coord_post_ns;
        Qp.write_post (qp_to r q.r_node)
          (Coord_mem.frontier_addr q.r_coord ~part:r.r_part ~idx:r.r_idx)
          payload
      end
    done

(* Snapshot the whole store as of [r_last_applied], in a single
   event-loop turn (no suspension points) — the same consistency
   argument as the donor snapshot in [do_transfer]: the frontier and
   the copied values describe one instant, with at most the single
   in-flight write per object beyond it, which dual versioning
   absorbs. Crash-mid-checkpoint is safe by construction: either the
   assignment of [r_ckpt] happened or the old checkpoint stands. *)
let take_checkpoint r =
  let frontier = r.r_last_applied in
  let ck_reg =
    List.map
      (fun oid -> (oid, Versioned_store.encode_cell_of r.r_store oid))
      (Versioned_store.registered_oids r.r_store)
  in
  let ck_loc =
    List.filter_map
      (fun oid ->
        match Versioned_store.get_at_most r.r_store oid ~bound:frontier with
        | Some (v, tmp) -> Some (oid, (v, tmp))
        | None -> None)
      (Versioned_store.local_oids r.r_store)
  in
  let reg_bytes =
    List.fold_left (fun acc (_, cell) -> acc + Bytes.length cell) 0 ck_reg
  in
  let loc_bytes =
    List.fold_left (fun acc (_, (v, _)) -> acc + Bytes.length v + 24) 0 ck_loc
  in
  {
    ck_frontier = frontier;
    ck_reg;
    ck_loc;
    ck_loc_bytes = loc_bytes;
    ck_bytes = reg_bytes + loc_bytes;
  }

(* The slowest live replica's published checkpoint frontier (own
   partition), our own included. Dead peers are skipped: their slots
   are stale, and their next incarnation bootstraps from a live donor
   whose applied state is at or past any frontier this minimum can
   return. A peer that never published reads [Tstamp.zero] and blocks
   truncation — conservative, never unsafe. *)
let min_live_frontier r ~own =
  let acc = ref own in
  for i = 0 to n_replicas r - 1 do
    if i <> r.r_idx then begin
      let q = peer r ~part:r.r_part ~idx:i in
      if Fabric.is_alive q.r_node then begin
        let f = Coord_mem.read_frontier r.r_coord ~part:r.r_part ~idx:i in
        if Tstamp.(f < !acc) then acc := f
      end
    end
  done;
  !acc

let checkpoint_round r =
  let col = r.r_cfg.Config.reqtrace in
  let t0 = Engine.now r.r_eng in
  let ck_trace, ck_root =
    match col with
    | Some col ->
        Heron_obs.Reqtrace.start_trace col
          ~attrs:
            [ ("kind", "ckpt"); ("part", string_of_int r.r_part);
              ("idx", string_of_int r.r_idx) ]
          ~now:t0 ()
    | None -> (0, 0)
  in
  let ckpt_span ~stage ~start stop =
    match col with
    | Some col when ck_trace <> 0 ->
        ignore
          (Heron_obs.Reqtrace.add_span col ~trace:ck_trace ~parent:ck_root ~stage
             ~start stop)
    | Some _ | None -> ()
  in
  let ck = take_checkpoint r in
  r.r_ckpt <- Some ck;
  Heron_obs.Metrics.incr r.r_obs.ob_checkpoints;
  (* Serialization of the local-class values is paid now, not when a
     rejoiner later needs them. *)
  charge_ser r ck.ck_loc_bytes;
  let t1 = Engine.now r.r_eng in
  ckpt_span ~stage:"ckpt.snapshot" ~start:t0 t1;
  publish_frontier r ck.ck_frontier;
  let upto = min_live_frontier r ~own:ck.ck_frontier in
  let t2 = Engine.now r.r_eng in
  if Tstamp.(Tstamp.zero < upto) then begin
    let dropped = Update_log.truncate r.r_log ~upto in
    if dropped > 0 then Heron_obs.Metrics.add r.r_obs.ob_truncated dropped;
    (* Access-counter history behind the truncation point is gone with
       it; the rebalancer only loses already-stale samples. *)
    if r.r_track then Hashtbl.reset r.r_access;
    (match r.r_compact with
    | Some compact ->
        let retained = compact ~upto in
        Heron_obs.Metrics.observe r.r_obs.ob_mcast_log_len retained
    | None -> ());
    ckpt_span ~stage:"ckpt.truncate" ~start:t2 (Engine.now r.r_eng)
  end;
  Heron_obs.Metrics.observe r.r_obs.ob_log_len (Update_log.length r.r_log);
  match col with
  | Some col when ck_trace <> 0 ->
      Heron_obs.Reqtrace.finish col ~trace:ck_trace ~now:(Engine.now r.r_eng)
  | Some _ | None -> ()

(* Checkpoint fiber: one round per configured interval. Rounds are
   skipped while a state transfer is in flight (the applied frontier
   and store are mid-adoption) and before anything was applied. *)
let checkpoint_loop r =
  let interval = max 1_000 r.r_cfg.Config.durability.Config.dur_interval_ns in
  let rec loop () =
    Engine.sleep interval;
    if (not (in_recovery r)) && Tstamp.(Tstamp.zero < r.r_last_applied) then
      checkpoint_round r;
    loop ()
  in
  loop ()

(* {1 Execution (Algorithm 2)} *)

(* Modelled query_obj_addr (Algorithm 2 lines 8-13): one round trip to
   the partition, after which the addresses of the object in every
   replica of [h] are cached. *)
let ensure_addr_known r oid ~h =
  let q0 = peer r ~part:h ~idx:0 in
  if not (Hashtbl.mem r.r_addr_known (oid, Fabric.node_id q0.r_node)) then begin
    Engine.consume r.r_cfg.Config.addr_query_ns;
    for i = 0 to n_replicas r - 1 do
      let q = peer r ~part:h ~idx:i in
      Hashtbl.replace r.r_addr_known (oid, Fabric.node_id q.r_node) ()
    done
  end

(* Fetch an object's raw dual-version cell from a replica of [h] that
   coordinated Phase 2 of [tmp]. Failed replicas are skipped on RDMA
   exceptions. Candidate selection scans two preallocated arrays — no
   per-attempt list allocation — and [tried] is reset explicitly when
   the whole candidate set has failed. Shared by remote reads
   (Algorithm 2) and migration pulls (DESIGN.md §10), which both need a
   cell consistent with the Phase-2 cut of the request they execute. *)
(* [bound], when set, demands a cell image as of the cut [bound]:
   versions at or past it are dropped from the returned image, a donor
   retaining none is skipped like a failed replica, and when every
   reached donor has moved past the cut the fetch raises {!Lagging} —
   the frozen value no longer exists at the source and only a state
   transfer (whose donor executed the migration) can cover it. Remote
   reads do not pass it: they bound-select client-side from the raw
   dual-version image and handle misses themselves. *)
let remote_fetch_cell ?bound r oid ~h ~tmp =
  ensure_addr_known r oid ~h;
  let rng = Engine.rng r.r_eng in
  let n = n_replicas r in
  let tried = Array.make n false in
  let candidates = Array.make n 0 in
  let bound_missed = ref false in
  let rec attempt ~tried_any =
    let n_cand = ref 0 in
    for i = 0 to n - 1 do
      if (not tried.(i)) && Coord_mem.reached r.r_coord ~part:h ~idx:i ~tmp ~stage:1
      then begin
        candidates.(!n_cand) <- i;
        incr n_cand
      end
    done;
    if !n_cand = 0 then begin
      if !bound_missed then raise Lagging;
      if tried_any then
        (* All candidates failed: reset and retry the full set. *)
        Array.fill tried 0 n false
      else
        (* Phase 2 guaranteed a majority; wait for the first slot. *)
        wait_mem r (fun () ->
            Coord_mem.count_reached ~stop_at:1 r.r_coord ~part:h ~replicas:n ~tmp
              ~stage:1
            > 0);
      attempt ~tried_any:false
    end
    else
      let i = candidates.(Random.State.int rng !n_cand) in
      let q = peer r ~part:h ~idx:i in
      if not (Versioned_store.mem q.r_store oid) then begin
        (* A freshly restarted peer wiped its store and has not
           re-registered a migrated-in object yet; its stale
           coordination slot made it a candidate. Skip it like a
           failed replica. *)
        tried.(i) <- true;
        attempt ~tried_any:true
      end
      else
        match
          Qp.read (qp_to r q.r_node)
            (Versioned_store.cell_addr q.r_store oid)
            ~len:(Versioned_store.cell_len q.r_store oid)
        with
        | raw -> (
            match bound with
            | None -> raw
            | Some b -> (
                match Versioned_store.truncate_raw_cell raw ~bound:b with
                | Some cell -> cell
                | None ->
                    (* The donor moved past the cut and overwrote both
                       versions — it can no longer serve the frozen
                       value. Try the remaining donors; a slower one
                       may still hold it. *)
                    bound_missed := true;
                    tried.(i) <- true;
                    attempt ~tried_any:true))
        | exception Qp.Rdma_exception _ ->
            tried.(i) <- true;
            attempt ~tried_any:true
  in
  attempt ~tried_any:false

(* Remote read with dual-version selection: take the freshest version
   older than the request; finding no old-enough version means we
   lag. *)
let remote_read r oid ~h ~tmp =
  let raw = remote_fetch_cell r oid ~h ~tmp in
  let versions = Versioned_store.decode_cell raw in
  match Versioned_store.pick_version versions ~bound:tmp with
  | Some (v, _) ->
      charge_deser r (Bytes.length v);
      v
  | None ->
      Heron_obs.Metrics.incr r.r_obs.ob_remote_miss;
      raise Lagging

(* Reading phase: prefetch every object of this partition's read
   plan. *)
let read_objects r req ~tmp =
  let plan = r.r_app.App.read_plan ~part:r.r_part req.rq_payload in
  let values = Hashtbl.create 16 in
  List.iter
    (fun oid ->
      if not (Hashtbl.mem values oid) then begin
        count_access r oid;
        (* Local objects that do not exist (dynamic namespaces) are
           simply not prefetched; the callback sees them as absent. *)
        let local_read () =
          if Versioned_store.mem r.r_store oid then
            match Versioned_store.get_before r.r_store oid ~bound:tmp with
            | Some (v, _) ->
                (match Versioned_store.klass_of r.r_store oid with
                | Versioned_store.Registered -> charge_deser r (Bytes.length v)
                | Versioned_store.Local ->
                    Engine.consume (costs r).Config.read_local_ns);
                Hashtbl.replace values oid v
            | None ->
                (* Both versions are at or past the request: a state
                   transfer moved this replica's own state ahead of the
                   request it is executing; resynchronise (the transfer
                   covering those versions also covers this request). *)
                raise Lagging
        in
        match placement_of r oid with
        | App.Replicated -> local_read ()
        | App.Partition h when h = r.r_part -> local_read ()
        | App.Partition h ->
            (* Remote Local-class objects cannot be read one-sidedly;
               the callback must guard them (partial execution). *)
            if r.r_app.App.klass_of oid = Versioned_store.Registered then
              Hashtbl.replace values oid (remote_read r oid ~h ~tmp)
      end)
    plan;
  values

(* Writing phase: apply buffered writes that belong to this partition,
   tag them with the request timestamp, and log them. *)
let write_objects r writes ~tmp =
  List.iter
    (fun (oid, v) ->
      let local =
        match placement_of r oid with
        | App.Partition h -> h = r.r_part
        | App.Replicated ->
            invalid_arg "Heron: applications must not write replicated objects"
      in
      if local then begin
        count_access r oid;
        (match Versioned_store.mem r.r_store oid with
        | true -> (
            match Versioned_store.klass_of r.r_store oid with
            | Versioned_store.Registered -> charge_ser r (Bytes.length v)
            | Versioned_store.Local ->
                Engine.consume (costs r).Config.write_local_ns)
        | false -> Engine.consume (costs r).Config.write_local_ns);
        Versioned_store.set r.r_store oid v ~tmp;
        Update_log.append r.r_log tmp oid
      end)
    (List.rev writes)

(* On-demand read of a local (or replicated) object during execution:
   [Some value] charged appropriately, [None] if the object does not
   exist, [Lagging] if it exists but only in versions at or past the
   request (a state transfer moved this replica's state ahead). *)
let local_read_on_demand r values oid ~tmp =
  match Hashtbl.find_opt values oid with
  | Some v -> Some v
  | None -> (
      count_access r oid;
      let local = is_local r oid in
      if not local then
        invalid_arg
          (Printf.sprintf "Heron: remote object %d read outside the declared read set"
             (Oid.to_int oid));
      if not (Versioned_store.mem r.r_store oid) then None
      else
        match Versioned_store.get_before r.r_store oid ~bound:tmp with
        | Some (v, _) ->
            (match Versioned_store.klass_of r.r_store oid with
            | Versioned_store.Registered -> charge_deser r (Bytes.length v)
            | Versioned_store.Local -> Engine.consume (costs r).Config.read_local_ns);
            Hashtbl.replace values oid v;
            Some v
        | None -> raise Lagging)

let execute r req ~tmp =
  Engine.consume ((costs r).Config.exec_base_ns + r.r_exec_delay);
  (* Runtime hiccups: rare multi-microsecond stalls (GC, cache), the
     noise source behind delayed transactions in Table I and the
     latency outliers in the paper's CDFs. *)
  let c = costs r in
  if c.Config.hiccup_pct > 0 then begin
    let rng = Engine.rng r.r_eng in
    if Random.State.int rng 100 < c.Config.hiccup_pct then
      Engine.consume (1_000 + Random.State.int rng (max 1 (c.Config.hiccup_max_ns - 1_000)))
  end;
  let values = read_objects r req ~tmp in
  let writes = ref [] in
  let ctx =
    {
      App.ctx_partition = r.r_part;
      ctx_tmp = tmp;
      ctx_read =
        (fun oid ->
          match local_read_on_demand r values oid ~tmp with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Heron: local object %d does not exist"
                   (Oid.to_int oid)));
      ctx_read_opt = (fun oid -> local_read_on_demand r values oid ~tmp);
      ctx_is_local = (fun oid -> is_local r oid);
      ctx_write = (fun oid v -> writes := (oid, v) :: !writes);
      ctx_charge = Engine.consume;
    }
  in
  let resp = r.r_app.App.execute ctx req.rq_payload in
  write_objects r !writes ~tmp;
  resp

(* Reply to the client: one transfer of the serialized response; the
   client keeps the first reply per partition. Wrong-epoch redirects
   carry just the replica's placement epoch and skip the commit-wait —
   a redirect exposes no state. *)
let send_reply r req ~tmp resp =
  let bytes =
    match resp with Reply v -> r.r_app.App.resp_size v | Redirect _ -> 8
  in
  let client = req.rq_client_node in
  Fabric.spawn_on r.r_node (fun () ->
      try
        (match resp with Reply _ -> commit_wait r ~tmp | Redirect _ -> ());
        Qp.transfer (qp_to r client) ~bytes_len:bytes;
        req.rq_reply ~part:r.r_part resp
      with Qp.Rdma_exception _ -> ())

(* {1 The main loop (Algorithm 1)} *)

(* Single-partition request: no coordination (Algorithm 1 lines 5-7).
   [on_applied] marks the request fully applied (the sequential loop
   advances the frontier directly; the parallel dispatcher goes through
   its completion queue). *)
let exec_single r req ~tmp ~on_applied =
  let t0 = Engine.now r.r_eng in
  match execute r req ~tmp with
  | resp ->
      on_applied ();
      trace r ~name:"execute" ~tmp ~start:t0 (Engine.now r.r_eng);
      req_span r req ~stage:"execute" ~start:t0 (Engine.now r.r_eng);
      Heron_stats.Sample_set.add r.r_stats.st_exec (Engine.now r.r_eng - t0);
      r.r_stats.st_executed <- r.r_stats.st_executed + 1;
      Heron_obs.Metrics.incr r.r_obs.ob_executed;
      send_reply r req ~tmp (Reply resp)
  | exception Lagging ->
      let ts0 = Engine.now r.r_eng in
      initiate_state_transfer r ~failed_tmp:tmp ~cover:tmp;
      req_span r req ~stage:"state-transfer" ~start:ts0 (Engine.now r.r_eng);
      on_applied ()

(* Multi-partition request: Phase 2, execute, Phase 4, reply — or, on a
   failed remote read, Algorithm 3. *)
let exec_multi r req ~tmp ~dst ~on_applied =
  let t0 = Engine.now r.r_eng in
  coordinate r ~tmp ~dst ~stage:1 ~wait:r.r_cfg.Config.wait_phase2;
  let t1 = Engine.now r.r_eng in
  trace r ~name:"phase2" ~tmp ~start:t0 t1;
  req_span r req ~stage:"phase2" ~start:t0 t1;
  match execute r req ~tmp with
  | resp ->
      on_applied ();
      let t2 = Engine.now r.r_eng in
      trace r ~name:"execute" ~tmp ~start:t1 t2;
      req_span r req ~stage:"execute" ~start:t1 t2;
      coordinate r ~tmp ~dst ~stage:2 ~wait:r.r_cfg.Config.wait_phase4;
      let t3 = Engine.now r.r_eng in
      trace r ~name:"phase4" ~tmp ~start:t2 t3;
      req_span r req ~stage:"phase4" ~start:t2 t3;
      Heron_stats.Sample_set.add r.r_stats.st_coord (t1 - t0 + (t3 - t2));
      Heron_stats.Sample_set.add r.r_stats.st_exec (t2 - t1);
      r.r_stats.st_executed <- r.r_stats.st_executed + 1;
      Heron_obs.Metrics.incr r.r_obs.ob_executed;
      r.r_stats.st_multi <- r.r_stats.st_multi + 1;
      send_reply r req ~tmp (Reply resp)
  | exception Lagging ->
      (* Algorithm 2 lines 23-25: synchronise and skip. The request only
         counts as applied once the transferred state (which covers it)
         has arrived. *)
      let ts0 = Engine.now r.r_eng in
      initiate_state_transfer r ~failed_tmp:tmp ~cover:tmp;
      req_span r req ~stage:"state-transfer" ~start:ts0 (Engine.now r.r_eng);
      on_applied ()

(* {1 Migration (DESIGN.md §10)}

   A [Migrate] command travels the ordinary multicast — to {e every}
   partition, so that any request shares a relative delivery order with
   it at all of its destinations and every replica makes the identical
   keep-or-redirect routing decision for every request. The Phase-2
   barrier fixes the cut: the destination partition pulls the objects'
   raw dual-version cells from source replicas that announced Phase 2
   (the same machinery as a remote read, so an in-flight pre-migration
   write is absorbed by dual versioning), then every partition installs
   the new placement epoch at the command's position in the order. *)

(* Acknowledge a migration to the orchestrator (a small fixed-size
   completion record, like a reply). Sent even when the command was
   covered by a state transfer: the adopted state includes its
   effects. *)
let notify_migration_done r mg ~tmp =
  Fabric.spawn_on r.r_node (fun () ->
      try
        (* Commit-wait before acknowledging: the directory epoch only
           commits after every partition acknowledged, so gating the
           acknowledgement on every valid lease holder having applied
           the migration keeps fast reads off migrated-away objects
           (the §10 migration freeze extended to the read path). *)
        commit_wait r ~tmp;
        Qp.transfer (qp_to r mg.mg_client_node) ~bytes_len:16;
        mg.mg_done ~part:r.r_part
      with Qp.Rdma_exception _ -> ())

let exec_migration r mg ~tmp ~dst ~on_applied =
  let t0 = Engine.now r.r_eng in
  (* Causal spans for the elastic orchestrator (DESIGN.md §15): the
     Phase-2 barrier is the split's freeze point, the cell pulls its
     bootstrap; both land in the trace the orchestrator minted. *)
  let mg_span stage ~start =
    match r.r_cfg.Config.reqtrace with
    | Some col when mg.mg_trace <> 0 ->
        ignore
          (Heron_obs.Reqtrace.add_span col ~trace:mg.mg_trace
             ~parent:mg.mg_parent ~stage
             ~attrs:[ ("part", string_of_int r.r_part) ]
             ~start (Engine.now r.r_eng))
    | _ -> ()
  in
  coordinate r ~tmp ~dst ~stage:1 ~wait:r.r_cfg.Config.wait_phase2;
  mg_span "reshard.freeze" ~start:t0;
  if r.r_part = mg.mg_dst then begin
    let t_boot = Engine.now r.r_eng in
    (* Pull each object's raw cell from the source partition, bounded
       at the command's timestamp: both surviving versions ship, so
       post-migration reads bounded by pre-migration requests still
       resolve here, while a donor that already moved past the cut
       (this replica is a lagger and the object has since been written
       — or even migrated back and written) cannot leak post-cut
       values into the frozen copy. *)
    List.iter
      (fun (oid, cap) ->
        if not (Versioned_store.mem r.r_store oid) then
          Versioned_store.register r.r_store oid
            ~klass:Versioned_store.Registered ~cap ~init:Bytes.empty)
      mg.mg_oids;
    (try
       List.iter
         (fun (oid, _) ->
           let raw = remote_fetch_cell ~bound:tmp r oid ~h:mg.mg_src ~tmp in
           Versioned_store.write_raw_cell r.r_store oid raw;
           (* Record the arrival so delta state transfers from this
              replica ship the migrated-in object. *)
           Update_log.append r.r_log tmp oid)
         mg.mg_oids
     with Lagging ->
       (* No source replica retains the cut's value: this replica is so
          far behind that the source overwrote both versions (or lost
          the object to a later reshard). Synchronise instead — any
          donor able to cover [tmp] executed this migration, so the
          adopted store, update log and placement view all include its
          effects, and the installs below degrade to no-ops. *)
       let ts0 = Engine.now r.r_eng in
       initiate_state_transfer r ~failed_tmp:tmp ~cover:tmp;
       mg_span "reshard.sync" ~start:ts0);
    if mg.mg_oids <> [] then mg_span "reshard.bootstrap" ~start:t_boot
  end;
  (* Install the new epoch and mark the command applied with no
     suspension in between: a state-transfer donor snapshots
     (r_last_applied, placement view) in one event-loop turn and must
     see them consistent. A split or merge installs its shard table
     instead of per-object overrides: the table already resolves the
     moved keys, and leaving no override behind is what lets a later
     merge restore the pre-split map exactly. *)
  let moves =
    match mg.mg_shards with
    | Some _ -> []
    | None -> List.map (fun (oid, _) -> (oid, mg.mg_dst)) mg.mg_oids
  in
  Placement.install ?shards:mg.mg_shards r.r_view ~epoch:mg.mg_epoch ~moves;
  on_applied ();
  Heron_obs.Metrics.incr r.r_obs.ob_migrations_applied;
  coordinate r ~tmp ~dst ~stage:2 ~wait:r.r_cfg.Config.wait_phase4;
  trace r
    ~name:(if mg.mg_shards = None then "migrate" else "reshard")
    ~tmp ~start:t0 (Engine.now r.r_eng);
  notify_migration_done r mg ~tmp

(* A request whose destination set was computed under an older placement
   than this replica's view: every replica of every destination answers
   with a redirect and none executes (the decision is identical
   everywhere — see the ordering argument above). Requests ordered
   {e before} the migration still execute under the old placement
   because the view only advances when the migration itself executes.
   Must be called with no suspension point after the delivery was
   dequeued, so the view cannot move between a peer's decision and
   ours. *)
let stale_routed r req =
  Placement.view_epoch r.r_view > 0
  && (match
        Placement.destinations r.r_view r.r_app
          ~partitions:r.r_cfg.Config.partitions req.rq_payload
      with
     | dst -> dst <> req.rq_dst
     | exception Invalid_argument _ ->
         (* Empty or out-of-range footprint: routing never consulted
            the placement (explicit-destination submit); execute. *)
         false)

let redirect r req ~tmp =
  Heron_obs.Metrics.incr r.r_obs.ob_redirects;
  send_reply r req ~tmp (Redirect { epoch = Placement.view_epoch r.r_view })

(* Record a delivery unit as covered by a state transfer (Algorithm 1
   line 3). Batches check per slot: a transfer can cover a prefix of a
   batch's uid range while the replica still owes the suffix. *)
let skip_unit r ~tmp =
  if Tstamp.(r.r_last_applied < tmp) then begin
    r.r_last_applied <- tmp;
    publish_applied r
  end;
  r.r_stats.st_skipped <- r.r_stats.st_skipped + 1;
  Heron_obs.Metrics.incr r.r_obs.ob_skipped

let handle_req r req ~tmp ~dst =
  if Tstamp.(tmp <= r.r_last_req) then skip_unit r ~tmp
  else begin
    r.r_last_req <- tmp;
    let on_applied () =
      if Tstamp.(r.r_last_applied < tmp) then begin
        r.r_last_applied <- tmp;
        publish_applied r
      end
    in
    trace r ~name:"ordering" ~tmp ~start:req.rq_submitted (Engine.now r.r_eng);
    req_span r req ~stage:"ordering" ~start:req.rq_submitted (Engine.now r.r_eng);
    Heron_stats.Sample_set.add r.r_stats.st_ordering
      (Engine.now r.r_eng - req.rq_submitted);
    if stale_routed r req then begin
      on_applied ();
      redirect r req ~tmp
    end
    else
      match dst with
      | [ _ ] -> exec_single r req ~tmp ~on_applied
      | dst -> exec_multi r req ~tmp ~dst ~on_applied
  end

let handle_mig r mg ~tmp ~dst =
  if Tstamp.(tmp <= r.r_last_req) then begin
    skip_unit r ~tmp;
    notify_migration_done r mg ~tmp
  end
  else begin
    r.r_last_req <- tmp;
    let on_applied () =
      if Tstamp.(r.r_last_applied < tmp) then begin
        r.r_last_applied <- tmp;
        publish_applied r
      end
    in
    exec_migration r mg ~tmp ~dst ~on_applied
  end

(* A lease grant is replicated state like any command: advance the
   delivery frontier past it and install the entry, deterministically
   at its position of the order. It advances the applied frontier too
   (like a skip unit) — commit-waits and donor snapshots must not
   stall on a unit that mutates nothing in the store. *)
let handle_lease r g ~tmp =
  if Tstamp.(tmp <= r.r_last_req) then skip_unit r ~tmp
  else begin
    r.r_last_req <- tmp;
    Read_lease.apply_grant r.r_lease ~idx:g.lg_idx ~incarnation:g.lg_incarnation
      ~expiry_ns:g.lg_expiry_ns ~at:tmp;
    if Tstamp.(r.r_last_applied < tmp) then begin
      r.r_last_applied <- tmp;
      publish_applied r
    end
  end

let handle_delivery r (dv : ('req, 'resp) msg Ramcast.delivery) =
  let dst = dv.Ramcast.d_dst in
  match dv.Ramcast.d_payload with
  | Req req -> handle_req r req ~tmp:dv.Ramcast.d_tmp ~dst
  | Migrate mg -> handle_mig r mg ~tmp:dv.Ramcast.d_tmp ~dst
  | Lease g -> handle_lease r g ~tmp:dv.Ramcast.d_tmp
  | Batch reqs ->
      Array.iteri
        (fun i req -> handle_req r req ~tmp:(batch_slot_tmp dv.Ramcast.d_tmp i) ~dst)
        reqs

(* {1 Parallel execution of single-partition requests (Section III-D.1)}

   The paper leaves multi-threaded execution as future work and sketches
   the standard recipe: run requests that do not conflict (no common
   objects, or only common reads) on different worker threads;
   everything else keeps its delivery order. Multi-partition requests
   act as barriers. Object footprints come from the application's read
   plan and write sketch; the write sketch must contain an object that
   serialises any two requests whose dynamically created objects could
   collide (TPCC's district row plays that role for order-id
   allocation). *)

let footprint_of r req =
  let writes =
    List.filter
      (fun oid ->
        match placement_of r oid with
        | App.Partition h -> h = r.r_part
        | App.Replicated -> false)
      (r.r_app.App.write_sketch req.rq_payload)
  in
  Conflict_index.footprint
    ~reads:(r.r_app.App.read_plan ~part:r.r_part req.rq_payload)
    ~writes

let parallel_loop r =
  let workers = r.r_cfg.Config.workers in
  let cidx = Conflict_index.create () in
  Conflict_index.attach_metrics cidx r.r_cfg.Config.metrics;
  let blocked_ctr =
    Heron_obs.Metrics.counter r.r_cfg.Config.metrics "sched.conflict_blocked"
  in
  let inflight = ref 0 in
  let done_sig = Signal.create () in
  (* Completion queue: r_last_applied only advances over a prefix of the
     delivery order, even though workers finish out of order — the
     state-transfer donor needs a request-boundary-consistent view. *)
  let order : Tstamp.t Queue.t = Queue.create () in
  let completed : (Tstamp.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let advance_frontier () =
    let before = r.r_last_applied in
    let rec go () =
      match Queue.peek_opt order with
      | Some tmp when Hashtbl.mem completed tmp ->
          Hashtbl.remove completed tmp;
          ignore (Queue.pop order);
          if Tstamp.(r.r_last_applied < tmp) then r.r_last_applied <- tmp;
          go ()
      | Some _ | None -> ()
    in
    go ();
    (* One lease publish per batch of completions, after the queue
       state is settled (publishing may suspend). *)
    if Tstamp.(before < r.r_last_applied) then publish_applied r
  in
  let mark_applied tmp () =
    Hashtbl.replace completed tmp ();
    advance_frontier ()
  in
  let skip tmp mg_opt =
    Queue.push tmp order;
    mark_applied tmp ();
    r.r_stats.st_skipped <- r.r_stats.st_skipped + 1;
    Heron_obs.Metrics.incr r.r_obs.ob_skipped;
    match mg_opt with Some mg -> notify_migration_done r mg ~tmp | None -> ()
  in
  let sequence_req tmp dst req =
    if Tstamp.(tmp <= r.r_last_req) then skip tmp None
    else begin
      r.r_last_req <- tmp;
      req_span r req ~stage:"ordering" ~start:req.rq_submitted
        (Engine.now r.r_eng);
      Heron_stats.Sample_set.add r.r_stats.st_ordering
        (Engine.now r.r_eng - req.rq_submitted);
      (* Routing decision before any suspension point: admission
         waits must not let a concurrently adopted placement view
         change the verdict peers reached at this position of the
         order. *)
      if stale_routed r req then begin
        Queue.push tmp order;
        mark_applied tmp ();
        redirect r req ~tmp
      end
      else
        match dst with
        | [ _ ] when not (r.r_app.App.serial_hint req.rq_payload) ->
            let fp = footprint_of r req in
            (* Admission: capacity first (O(1)), then the conflict index
               — O(own footprint) regardless of how many requests are in
               flight. A blocked request re-checks once per completion
               (the only event that can unblock it), never spinning over
               the in-flight set. *)
            let blocked = ref false in
            let adm0 = Engine.now r.r_eng in
            Signal.wait_until done_sig (fun () ->
                let ok = !inflight < workers && Conflict_index.can_admit cidx fp in
                if not ok then blocked := true;
                ok);
            if !blocked then begin
              Heron_obs.Metrics.incr blocked_ctr;
              req_span r req ~stage:"conflict-wait" ~start:adm0
                (Engine.now r.r_eng)
            end;
            Conflict_index.admit cidx fp;
            incr inflight;
            Queue.push tmp order;
            Fabric.spawn_on r.r_node (fun () ->
                exec_single r req ~tmp ~on_applied:(mark_applied tmp);
                Conflict_index.retire cidx fp;
                decr inflight;
                Signal.broadcast done_sig)
        | dst ->
            (* Barrier: multi-partition and serial-hinted requests run
               alone. *)
            Signal.wait_until done_sig (fun () -> !inflight = 0);
            Queue.push tmp order;
            (match dst with
            | [ _ ] -> exec_single r req ~tmp ~on_applied:(mark_applied tmp)
            | _ -> exec_multi r req ~tmp ~dst ~on_applied:(mark_applied tmp))
    end
  in
  let rec loop () =
    let dv = Mailbox.recv r.r_inbox in
    let tmp = dv.Ramcast.d_tmp in
    (match dv.Ramcast.d_payload with
    | Migrate mg ->
        if Tstamp.(tmp <= r.r_last_req) then skip tmp (Some mg)
        else begin
          r.r_last_req <- tmp;
          (* Migrations act as barriers, like multi-partition
             requests. *)
          Signal.wait_until done_sig (fun () -> !inflight = 0);
          Queue.push tmp order;
          exec_migration r mg ~tmp ~dst:dv.Ramcast.d_dst
            ~on_applied:(mark_applied tmp)
        end
    | Lease g ->
        if Tstamp.(tmp <= r.r_last_req) then skip tmp None
        else begin
          r.r_last_req <- tmp;
          Read_lease.apply_grant r.r_lease ~idx:g.lg_idx
            ~incarnation:g.lg_incarnation ~expiry_ns:g.lg_expiry_ns ~at:tmp;
          (* Advances the frontier like a skip unit: nothing to
             execute, but commit-waits must not stall on it. *)
          Queue.push tmp order;
          mark_applied tmp ()
        end
    | Req req -> sequence_req tmp dv.Ramcast.d_dst req
    | Batch reqs ->
        Array.iteri
          (fun i req -> sequence_req (batch_slot_tmp tmp i) dv.Ramcast.d_dst req)
          reqs);
    loop ()
  in
  loop ()

(* {1 Compartmentalized pipeline (DESIGN.md §12)}

   The delivery path split into stages connected by bounded queues: the
   {e sequencer} (this loop) drains committed deliveries in order,
   expands batches and admits non-conflicting single-partition requests
   into a bounded execution queue; a pool of {e executor} fibers drains
   that queue concurrently; the {e coordination writer} (spawned here,
   see [coord_writer_loop]) owns outbound announce traffic. The
   [order]/[completed] frontier is the same as [parallel_loop]'s:
   [r_last_applied] only advances over a prefix of the delivery order no
   matter how executors interleave. Multi-partition requests,
   serial-hinted payloads and migrations remain barriers — concurrent
   Phase-2/4 announcements from different executors could regress a
   replica's single coordination slot (peers rely on slot monotonicity),
   and a migration must observe a frozen executor pool so the Phase-2
   cut it fixes is request-boundary consistent. *)

type exec_job = {
  ej_tmp : Tstamp.t;
  ej_fp : Conflict_index.footprint;
  ej_enq : Time_ns.t;  (* admission instant, for exec.queue spans *)
}

let pipeline_loop r =
  let pl = r.r_cfg.Config.pipeline in
  let reg = r.r_cfg.Config.metrics in
  let qcap = max 1 pl.Config.pipe_queue_cap in
  let cidx = Conflict_index.create () in
  Conflict_index.attach_metrics cidx reg;
  let blocked_ctr = Heron_obs.Metrics.counter reg "sched.conflict_blocked" in
  let q_depth = Heron_obs.Metrics.histogram reg "pipeline.exec_queue_depth" in
  let q_wait = Heron_obs.Metrics.histogram reg "pipeline.exec_queue_wait_ns" in
  if pl.Config.pipe_coord_writer then begin
    let mb = Mailbox.create () in
    r.r_coord_mb <- Some mb;
    Fabric.spawn_on r.r_node (fun () -> coord_writer_loop r mb)
  end;
  let inflight = ref 0 in
  (* admitted (queued or executing) jobs; barriers wait for 0 *)
  let done_sig = Signal.create () in
  let job_sig = Signal.create () in
  let jobs = Queue.create () in
  let order : Tstamp.t Queue.t = Queue.create () in
  let completed : (Tstamp.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let advance_frontier () =
    let before = r.r_last_applied in
    let rec go () =
      match Queue.peek_opt order with
      | Some tmp when Hashtbl.mem completed tmp ->
          Hashtbl.remove completed tmp;
          ignore (Queue.pop order);
          if Tstamp.(r.r_last_applied < tmp) then r.r_last_applied <- tmp;
          go ()
      | Some _ | None -> ()
    in
    go ();
    (* One lease publish per batch of completions, after the queue
       state is settled (publishing may suspend). *)
    if Tstamp.(before < r.r_last_applied) then publish_applied r
  in
  let mark_applied tmp () =
    Hashtbl.replace completed tmp ();
    advance_frontier ()
  in
  let executor () =
    let rec run () =
      Signal.wait_until job_sig (fun () -> not (Queue.is_empty jobs));
      let req, j = Queue.pop jobs in
      (* A queue slot freed: the sequencer may be blocked on capacity. *)
      Signal.broadcast done_sig;
      let t_deq = Engine.now r.r_eng in
      Heron_obs.Metrics.observe q_wait (t_deq - j.ej_enq);
      if t_deq > j.ej_enq then
        req_span r req ~stage:"exec.queue" ~start:j.ej_enq t_deq;
      exec_single r req ~tmp:j.ej_tmp ~on_applied:(mark_applied j.ej_tmp);
      Conflict_index.retire cidx j.ej_fp;
      decr inflight;
      Signal.broadcast done_sig;
      run ()
    in
    run ()
  in
  for _ = 1 to max 1 pl.Config.pipe_executors do
    Fabric.spawn_on r.r_node executor
  done;
  let skip tmp mg_opt =
    Queue.push tmp order;
    mark_applied tmp ();
    r.r_stats.st_skipped <- r.r_stats.st_skipped + 1;
    Heron_obs.Metrics.incr r.r_obs.ob_skipped;
    match mg_opt with Some mg -> notify_migration_done r mg ~tmp | None -> ()
  in
  let barrier () = Signal.wait_until done_sig (fun () -> !inflight = 0) in
  let sequence_req tmp dst req =
    if Tstamp.(tmp <= r.r_last_req) then skip tmp None
    else begin
      r.r_last_req <- tmp;
      req_span r req ~stage:"ordering" ~start:req.rq_submitted
        (Engine.now r.r_eng);
      Heron_stats.Sample_set.add r.r_stats.st_ordering
        (Engine.now r.r_eng - req.rq_submitted);
      (* Routing decision before any suspension point, as in
         [parallel_loop]. *)
      if stale_routed r req then begin
        Queue.push tmp order;
        mark_applied tmp ();
        redirect r req ~tmp
      end
      else
        match dst with
        | [ _ ] when not (r.r_app.App.serial_hint req.rq_payload) ->
            let fp = footprint_of r req in
            (* Admission: queue capacity (backpressure into the
               multicast inbox), then the conflict index. Executor
               concurrency is bounded by the pool size itself. *)
            let blocked = ref false in
            let adm0 = Engine.now r.r_eng in
            Signal.wait_until done_sig (fun () ->
                let ok =
                  Queue.length jobs < qcap && Conflict_index.can_admit cidx fp
                in
                if not ok then blocked := true;
                ok);
            if !blocked then begin
              Heron_obs.Metrics.incr blocked_ctr;
              req_span r req ~stage:"conflict-wait" ~start:adm0
                (Engine.now r.r_eng)
            end;
            Conflict_index.admit cidx fp;
            incr inflight;
            Queue.push tmp order;
            Queue.push
              (req, { ej_tmp = tmp; ej_fp = fp; ej_enq = Engine.now r.r_eng })
              jobs;
            Heron_obs.Metrics.observe q_depth (Queue.length jobs);
            Signal.broadcast job_sig
        | dst ->
            barrier ();
            Queue.push tmp order;
            (match dst with
            | [ _ ] -> exec_single r req ~tmp ~on_applied:(mark_applied tmp)
            | _ -> exec_multi r req ~tmp ~dst ~on_applied:(mark_applied tmp))
    end
  in
  let rec loop () =
    let dv = Mailbox.recv r.r_inbox in
    let tmp = dv.Ramcast.d_tmp in
    (match dv.Ramcast.d_payload with
    | Migrate mg ->
        if Tstamp.(tmp <= r.r_last_req) then skip tmp (Some mg)
        else begin
          r.r_last_req <- tmp;
          (* Migration freeze: drain the executor pool before fixing the
             Phase-2 cut. *)
          barrier ();
          Queue.push tmp order;
          exec_migration r mg ~tmp ~dst:dv.Ramcast.d_dst
            ~on_applied:(mark_applied tmp)
        end
    | Lease g ->
        if Tstamp.(tmp <= r.r_last_req) then skip tmp None
        else begin
          r.r_last_req <- tmp;
          Read_lease.apply_grant r.r_lease ~idx:g.lg_idx
            ~incarnation:g.lg_incarnation ~expiry_ns:g.lg_expiry_ns ~at:tmp;
          (* Advances the frontier like a skip unit: nothing to
             execute, but commit-waits must not stall on it. *)
          Queue.push tmp order;
          mark_applied tmp ()
        end
    | Req req -> sequence_req tmp dv.Ramcast.d_dst req
    | Batch reqs ->
        Array.iteri
          (fun i req -> sequence_req (batch_slot_tmp tmp i) dv.Ramcast.d_dst req)
          reqs);
    loop ()
  in
  loop ()

(* {1 Lease-protected local reads (DESIGN.md §14)} *)

exception Fast_miss
(* Internal: the fast path cannot serve this request (an object not in
   the snapshot, a write, a remote object, or a version beyond the
   applied frontier); the caller falls back to the ordered path. *)

(* Serve a read-only single-partition request from the local store,
   with no multicast round. Runs on the client's fiber (the RPC wire
   cost is modelled by the caller). [None] means fall back.

   Safety: with a valid self-lease — granted to this incarnation,
   unexpired, and with the grant position applied — every committed
   write is at or below [r_last_applied]: every acknowledgement is
   commit-wait gated on all valid holders' published frontiers, and a
   write acknowledged before our grant was applied at the acknowledging
   replica sits below the grant position, hence below our frontier.
   But the converse hazard is real too: [r_last_applied] also covers
   writes still inside their commit-wait window — applied here, not
   yet at a lagging valid holder — and serving one lets a later read
   at the lagger observe the older value (reads straddling an
   unacknowledged write go backwards; reshard bootstraps make the
   apply skew between replicas wide enough to hit). So reads are
   bounded by the {e stable frontier} instead: the minimum applied
   frontier across all valid holders, i.e. exactly the condition
   commit-wait enforces before any acknowledgement. Freshest-above-
   bound means miss, never serve-an-older-version: the older version
   may already have been superseded in a peer's served reads.
   The whole store snapshot is taken in one event-loop turn — no
   suspension points, costs charged only afterwards — so multi-object
   reads observe a single request boundary. *)
let try_serve_read r payload =
  let fr = fast_reads r in
  if (not fr.Config.fr_enabled) || in_recovery r || r.r_pending_deser > 0 then None
  else
    let now = Engine.now r.r_eng in
    let self_valid =
      match Read_lease.entry r.r_lease ~idx:r.r_idx with
      | None -> false
      | Some e ->
          e.Read_lease.le_incarnation = Fabric.epoch r.r_node
          && now < e.Read_lease.le_expiry_ns
          && Tstamp.(e.Read_lease.le_grant <= r.r_last_applied)
    in
    if not self_valid then None
    else
      let bound = stable_frontier r ~now in
      let plan = r.r_app.App.read_plan ~part:r.r_part payload in
      match
        let snap : (Oid.t, bytes option) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun oid ->
            if not (Hashtbl.mem snap oid) then begin
              (match placement_of r oid with
              | App.Replicated -> ()
              | App.Partition h when h = r.r_part -> ()
              | App.Partition _ -> raise Fast_miss);
              if not (Versioned_store.mem r.r_store oid) then
                Hashtbl.replace snap oid None
              else begin
                let v, tv = Versioned_store.get r.r_store oid in
                if Tstamp.(bound < tv) then raise Fast_miss;
                Hashtbl.replace snap oid (Some v)
              end
            end)
          plan;
        snap
      with
      | exception Fast_miss -> None
      | snap -> (
          (* Charge what the ordered path's execution would have. *)
          Engine.consume (costs r).Config.exec_base_ns;
          Hashtbl.iter
            (fun oid v ->
              count_access r oid;
              match v with
              | None -> ()
              | Some v -> (
                  match Versioned_store.klass_of r.r_store oid with
                  | Versioned_store.Registered -> charge_deser r (Bytes.length v)
                  | Versioned_store.Local ->
                      Engine.consume (costs r).Config.read_local_ns))
            snap;
          let lookup oid =
            match Hashtbl.find_opt snap oid with
            | Some v -> v
            | None -> raise Fast_miss
          in
          let ctx =
            {
              App.ctx_partition = r.r_part;
              ctx_tmp = bound;
              ctx_read =
                (fun oid ->
                  match lookup oid with
                  | Some v -> v
                  | None ->
                      invalid_arg
                        (Printf.sprintf "Heron: local object %d does not exist"
                           (Oid.to_int oid)));
              ctx_read_opt = lookup;
              ctx_is_local = (fun oid -> is_local r oid);
              ctx_write = (fun _ _ -> raise Fast_miss);
              ctx_charge = Engine.consume;
            }
          in
          match r.r_app.App.execute ctx payload with
          | resp -> Some resp
          | exception Fast_miss -> None)

let start r =
  if Array.length r.r_peers = 0 then
    invalid_arg "Replica.start: set_directory must be called first";
  if r.r_cfg.Config.workers < 1 then
    invalid_arg "Replica.start: workers must be at least 1";
  Fabric.spawn_on r.r_node (fun () ->
      if r.r_cfg.Config.pipeline.Config.pipe_enabled then pipeline_loop r
      else if r.r_cfg.Config.workers = 1 then begin
        let rec loop () =
          let dv = Mailbox.recv r.r_inbox in
          handle_delivery r dv;
          loop ()
        in
        loop ()
      end
      else parallel_loop r);
  Fabric.spawn_on r.r_node (fun () -> statesync_watcher r);
  if r.r_cfg.Config.durability.Config.dur_enabled then
    Fabric.spawn_on r.r_node (fun () -> checkpoint_loop r)
