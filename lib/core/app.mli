(** Application interface to Heron (the paper's [exec_callback] plus
    the partitioning oracle, Section III-A).

    An application declares how its objects map onto partitions, how to
    estimate the read set of a request before execution (the standard
    partitioned-SMR assumption), and a deterministic execute callback
    with a reading phase (through {!type-ctx}) followed by a writing
    phase. Execution must be deterministic: every replica of every
    involved partition runs the same callback on the same inputs and
    must buffer identical writes, of which each replica applies only
    those local to its partition. *)

open Heron_sim

type placement =
  | Partition of int  (** the object lives in one partition *)
  | Replicated
      (** read-only object replicated in every partition (TPCC's
          Warehouse and Item tables, Section IV-A) *)

type obj_spec = {
  spec_oid : Oid.t;
  spec_placement : placement;
  spec_klass : Versioned_store.klass;
  spec_cap : int;  (** capacity for registered objects; ignored for local *)
  spec_init : bytes;
}
(** One object of the initial database. *)

type ctx = {
  ctx_partition : int;  (** the executing replica's partition *)
  ctx_tmp : Heron_multicast.Tstamp.t;  (** the request's timestamp *)
  ctx_read : Oid.t -> bytes;
      (** value of an object: from the prefetched read set, or — for
          objects local to this partition — read on demand (index
          lookups whose keys are only known during execution). Raises
          [Invalid_argument] for remote objects outside the read set. *)
  ctx_read_opt : Oid.t -> bytes option;
      (** existence-aware read of an object local to this partition (or
          replicated): [None] if it does not exist — for applications
          with dynamic namespaces (e.g. a coordination-service tree).
          Raises [Invalid_argument] for remote objects. *)
  ctx_is_local : Oid.t -> bool;
      (** whether writes to this object will be applied here *)
  ctx_write : Oid.t -> bytes -> unit;
      (** buffer a write; the replica applies local ones after the
          callback returns (writing phase) *)
  ctx_charge : Time_ns.t -> unit;
      (** charge simulated CPU time for application compute *)
}

type ('req, 'resp) t = {
  app_name : string;
  placement_of : Oid.t -> placement;
  klass_of : Oid.t -> Versioned_store.klass;
      (** storage class of an object: only [Registered] objects can be
          read from remote partitions; remote [Local] objects in a read
          set are skipped and the execute callback must guard accesses
          to them with [ctx_is_local] (partial execution,
          Section IV-A) *)
  read_set : 'req -> Oid.t list;
      (** objects the request may read, estimated before execution;
          used (with [write_sketch]) to route the request *)
  read_plan : part:int -> 'req -> Oid.t list;
      (** what a replica of partition [part] prefetches in its reading
          phase. Usually [read_set] everywhere; partial execution
          (Section IV-A) prunes it to the objects that partition
          actually needs — e.g. a supply-only partition of a TPCC
          NewOrder prefetches just its own stock rows *)
  write_sketch : 'req -> Oid.t list;
      (** objects the request may write, used only to compute the
          destination partition set; may over-approximate *)
  req_size : 'req -> int;  (** serialized request size (timing) *)
  resp_size : 'resp -> int;
  execute : ctx -> 'req -> 'resp;
  serial_hint : 'req -> bool;
      (** parallel execution (Config.workers > 1) only: [true] forces
          the request to run alone, like a barrier. Required for
          requests whose object footprint cannot be approximated from
          [read_set]/[write_sketch] before execution (e.g. TPCC's
          Delivery, which follows index objects to rows chosen at run
          time). Ignored when workers = 1. *)
  read_only : 'req -> bool;
      (** [true] promises the request never calls [ctx_write] (an empty
          [write_sketch] is necessary but not sufficient — this is the
          explicit declaration). Read-only single-partition requests
          are eligible for the lease-based local read fast path
          ({!Config.fast_reads}, DESIGN.md §14); a conservative
          [fun _ -> false] simply keeps every request on the ordered
          path. *)
  catalog : unit -> obj_spec list;  (** the initial database *)
}

val destinations : ('req, 'resp) t -> partitions:int -> 'req -> int list
(** Sorted set of partitions a request must be multicast to: the home
    partitions of its read set and write sketch ([Replicated] objects
    contribute nothing). Raises [Invalid_argument] if empty or if any
    partition is out of range. *)

val destinations_under :
  placement_of:(Oid.t -> placement) ->
  ('req, 'resp) t -> partitions:int -> 'req -> int list
(** {!destinations} computed under a substitute placement oracle — live
    repartitioning ({!Placement}) layers epoch-versioned overrides over
    the app's static [placement_of]. *)
