open Heron_sim
open Heron_rdma
open Heron_multicast

type ('req, 'resp) t = {
  sys_eng : Engine.t;
  sys_fab : Fabric.t;
  sys_cfg : Config.t;
  sys_app : ('req, 'resp) App.t;
  sys_replicas : ('req, 'resp) Replica.t array array;
  sys_mcast : ('req, 'resp) Replica.msg Ramcast.t;
  sys_dir : Placement.t;
  sys_views : (int, Placement.view) Hashtbl.t;  (* per client node id *)
  sys_retries : Heron_obs.Metrics.counter;  (* reconfig.wrong_epoch_retries *)
  mutable sys_clients : int;
}

let engine t = t.sys_eng
let fabric t = t.sys_fab
let config t = t.sys_cfg
let app t = t.sys_app
let replica t ~part ~idx = t.sys_replicas.(part).(idx)
let replicas t = t.sys_replicas
let multicast t = t.sys_mcast
let directory t = t.sys_dir

(* Serialized size of a message on the wire: payload plus the read-set
   object ids and the header for a request; the object list and the
   header for a migration. *)
let msg_size app = function
  | Replica.Req rq -> app.App.req_size rq.Replica.rq_payload + 32
  | Replica.Migrate mg -> 48 + (16 * List.length mg.Replica.mg_oids)

(* Registered-store region size needed by one partition: cells of all
   registered objects homed (or replicated) there. Under live
   repartitioning any registered object may migrate in, so the region is
   sized for the whole catalog. *)
let region_size_for cfg specs ~part =
  let cell cap = 32 + (2 * cap) in
  let reconfig = cfg.Config.reconfig.Config.enabled in
  List.fold_left
    (fun acc spec ->
      match (spec.App.spec_klass, spec.App.spec_placement) with
      | Versioned_store.Local, _ -> acc
      | Versioned_store.Registered, App.Replicated -> acc + cell spec.App.spec_cap
      | Versioned_store.Registered, App.Partition p ->
          if reconfig || p = part then acc + cell spec.App.spec_cap else acc)
    0 specs

(* Register the catalog objects owned by one partition into a store. *)
let load_partition_catalog ~specs ~part store =
  List.iter
    (fun spec ->
      let owned =
        match spec.App.spec_placement with
        | App.Partition p -> p = part
        | App.Replicated -> true
      in
      if owned then
        Versioned_store.register store spec.App.spec_oid ~klass:spec.App.spec_klass
          ~cap:spec.App.spec_cap ~init:spec.App.spec_init)
    specs

let create eng ~cfg ~app =
  let fab = Fabric.create ~metrics:cfg.Config.metrics eng ~profile:cfg.Config.profile in
  let specs = app.App.catalog () in
  let sys_replicas =
    Array.init cfg.Config.partitions (fun part ->
        let region = region_size_for cfg specs ~part + 64 in
        Array.init cfg.Config.replicas (fun idx ->
            let node =
              Fabric.add_node fab ~name:(Printf.sprintf "p%d-r%d" part idx)
            in
            Replica.create ~cfg ~app ~part ~idx ~node ~store_region_size:region))
  in
  Array.iter
    (fun row -> Array.iter (fun r -> Replica.set_directory r sys_replicas) row)
    sys_replicas;
  (* Load the catalog. *)
  Array.iteri
    (fun part row ->
      Array.iter (fun r -> load_partition_catalog ~specs ~part (Replica.store r)) row)
    sys_replicas;
  let groups = Array.map (Array.map Replica.node) sys_replicas in
  (* The ordering layer reads (trace id, root span id) straight out of
     the request payload, so the Skeen rounds need no side channel. *)
  let tracing =
    Option.map
      (fun col ->
        ( col,
          function
          | Replica.Req rq when rq.Replica.rq_trace <> 0 ->
              Some (rq.Replica.rq_trace, rq.Replica.rq_parent)
          | Replica.Req _ | Replica.Migrate _ -> None ))
      cfg.Config.reqtrace
  in
  let sys_mcast =
    Ramcast.create ~config:cfg.Config.mcast ?tracing fab
      ~size_of:(fun m -> msg_size app m)
      ~groups
  in
  Array.iteri
    (fun part row ->
      Array.iteri
        (fun idx r ->
          ignore idx;
          Ramcast.set_deliver sys_mcast ~gid:part ~idx:(Replica.idx r) (fun dv ->
              Mailbox.send (Replica.inbox r) dv))
        row)
    sys_replicas;
  let sys_dir = Placement.create () in
  if cfg.Config.reconfig.Config.enabled then
    Placement.attach_metrics sys_dir cfg.Config.metrics;
  { sys_eng = eng; sys_fab = fab; sys_cfg = cfg; sys_app = app; sys_replicas;
    sys_mcast; sys_dir; sys_views = Hashtbl.create 8;
    sys_retries =
      Heron_obs.Metrics.counter cfg.Config.metrics "reconfig.wrong_epoch_retries";
    sys_clients = 0 }

let start t =
  Ramcast.start t.sys_mcast;
  Array.iter (fun row -> Array.iter Replica.start row) t.sys_replicas

let restart_replica t ~part ~idx =
  let old = t.sys_replicas.(part).(idx) in
  let node = Replica.node old in
  if Fabric.is_alive node then
    invalid_arg "System.restart_replica: replica is not crashed";
  Fabric.recover node;
  let specs = t.sys_app.App.catalog () in
  let region = region_size_for t.sys_cfg specs ~part + 64 in
  let fresh =
    Replica.create ~cfg:t.sys_cfg ~app:t.sys_app ~part ~idx ~node
      ~store_region_size:region
  in
  load_partition_catalog ~specs ~part (Replica.store fresh);
  (* Peers address coordination/state/store memory through the shared
     directory matrix; the in-place swap repoints them all. *)
  t.sys_replicas.(part).(idx) <- fresh;
  Replica.set_directory fresh t.sys_replicas;
  Ramcast.restart_member t.sys_mcast ~gid:part ~idx ~deliver:(fun dv ->
      Mailbox.send (Replica.inbox fresh) dv);
  (* Transfer from the beginning of time: the store is empty, so a
     delta from any later point would keep cold objects at their
     catalog values. Any consistent donor snapshot suffices for the
     cover — [restart_member] re-delivers every entry past the donor's
     applied prefix into the fresh inbox, and the replica skips the
     covered ones when it starts. Insisting on more (say, the dispatch
     horizon) can deadlock: a donor wedged in Phase 2 of an entry
     cannot apply past it until this replica rejoins coordination. *)
  let earliest = Tstamp.make ~clock:1 ~uid:1 in
  Fabric.spawn_on node (fun () ->
      Replica.force_state_transfer fresh ~failed_tmp:earliest;
      Replica.start fresh)

let new_client_node t ~name =
  t.sys_clients <- t.sys_clients + 1;
  Fabric.add_node t.sys_fab ~name

(* A client's cached placement view, created at epoch 0 (the static
   oracle) and refreshed from the directory on wrong-epoch redirects. *)
let client_view t node =
  let key = Fabric.node_id node in
  match Hashtbl.find_opt t.sys_views key with
  | Some v -> v
  | None ->
      let v = Placement.fresh_view () in
      Hashtbl.replace t.sys_views key v;
      v

(* One multicast round: returns the per-partition replies (first reply
   per partition wins, replicas answer redundantly). [trace]/[parent]
   are the request-scoped trace id and root span id (0 when the
   deployment does not trace). *)
let submit_round t ~from ~dst ~trace ~parent payload =
  let replies = List.map (fun p -> (p, Ivar.create ())) dst in
  let rq =
    {
      Replica.rq_payload = payload;
      rq_dst = dst;
      rq_submitted = Engine.now t.sys_eng;
      rq_client_node = from;
      rq_reply =
        (fun ~part resp ->
          match List.assoc_opt part replies with
          | Some iv -> ignore (Ivar.try_fill iv resp)
          | None -> ());
      rq_trace = trace;
      rq_parent = parent;
    }
  in
  ignore (Ramcast.multicast t.sys_mcast ~from ~dst (Replica.Req rq));
  List.map (fun (p, iv) -> (p, Ivar.read iv)) replies

(* Submit and retry on wrong-epoch redirects: refresh the cached view
   from the directory, recompute the destination set and resubmit. The
   replicas' decision is uniform (all destinations redirect or none
   does), so a mixed outcome is impossible; if the refresh observed no
   new epoch — the migration that redirected us has not committed to
   the directory yet — back off briefly before retrying.

   With tracing on, the whole retry chain is one trace: each redirected
   round gets a [redirect] span covering the wasted round plus the view
   refresh and backoff (the round's ordering spans nest inside it), and
   the trace finishes when the replies of the successful round are in. *)
let submit_loop t ~from ~dst payload =
  let col = t.sys_cfg.Config.reqtrace in
  let trace, parent =
    match col with
    | None -> (0, 0)
    | Some col ->
        Heron_obs.Reqtrace.start_trace col
          ~attrs:[ ("client", Fabric.node_name from) ]
          ~now:(Engine.now t.sys_eng) ()
  in
  let rec go ~dst =
    let round_start = Engine.now t.sys_eng in
    let replies = submit_round t ~from ~dst ~trace ~parent payload in
    let redirected =
      List.exists (function _, Replica.Redirect _ -> true | _ -> false) replies
    in
    if not redirected then begin
      (match col with
      | Some col when trace <> 0 ->
          Heron_obs.Reqtrace.finish col ~trace ~now:(Engine.now t.sys_eng)
      | _ -> ());
      List.map
        (fun (p, rep) ->
          match rep with
          | Replica.Reply resp -> (p, resp)
          | Replica.Redirect _ -> assert false)
        replies
    end
    else begin
      Heron_obs.Metrics.incr t.sys_retries;
      let view = client_view t from in
      let before = Placement.view_epoch view in
      Placement.refresh view t.sys_dir;
      if Placement.view_epoch view = before then
        Engine.sleep t.sys_cfg.Config.costs.Config.redirect_backoff_ns;
      let dst' =
        match
          Placement.destinations view t.sys_app
            ~partitions:t.sys_cfg.Config.partitions payload
        with
        | d -> d
        | exception Invalid_argument _ -> dst
      in
      (match col with
      | Some col when trace <> 0 ->
          ignore
            (Heron_obs.Reqtrace.add_span col ~trace ~parent ~stage:"redirect"
               ~attrs:[ ("epoch", string_of_int (Placement.view_epoch view)) ]
               ~start:round_start (Engine.now t.sys_eng))
      | _ -> ());
      go ~dst:dst'
    end
  in
  go ~dst

let submit_to t ~from ~dst payload = submit_loop t ~from ~dst payload

let submit t ~from payload =
  let partitions = t.sys_cfg.Config.partitions in
  let dst =
    if t.sys_cfg.Config.reconfig.Config.enabled then
      Placement.destinations (client_view t from) t.sys_app ~partitions payload
    else App.destinations t.sys_app ~partitions payload
  in
  submit_loop t ~from ~dst payload
