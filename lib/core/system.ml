open Heron_sim
open Heron_rdma
open Heron_multicast

(* One destination partition's open batch (pipeline batcher, DESIGN.md
   §12): requests stack newest-first with their enqueue instants until a
   size or timeout flush submits them as one multicast entry. *)
type ('req, 'resp) batch_acc = {
  mutable bb_reqs : (('req, 'resp) Replica.request * Time_ns.t) list;
  mutable bb_n : int;
  mutable bb_gen : int;  (* flush generation; invalidates stale timers *)
}

type ('req, 'resp) batcher = {
  ba_node : Fabric.node;
  ba_qps : (int, Qp.t) Hashtbl.t;  (* by client node id *)
  ba_accs : (int, ('req, 'resp) batch_acc) Hashtbl.t;  (* by partition *)
  ba_occupancy : Heron_obs.Metrics.histogram;  (* pipeline.batch_occupancy *)
  ba_wait : Heron_obs.Metrics.histogram;  (* pipeline.batch_wait_ns *)
  ba_full : Heron_obs.Metrics.counter;  (* pipeline.batch_flush_full *)
  ba_timeout : Heron_obs.Metrics.counter;  (* pipeline.batch_flush_timeout *)
}

type ('req, 'resp) t = {
  sys_eng : Engine.t;
  sys_fab : Fabric.t;
  sys_cfg : Config.t;
  sys_app : ('req, 'resp) App.t;
  sys_replicas : ('req, 'resp) Replica.t array array;
  sys_mcast : ('req, 'resp) Replica.msg Ramcast.t;
  sys_dir : Placement.t;
  sys_views : (int, Placement.view) Hashtbl.t;  (* per client node id *)
  sys_retries : Heron_obs.Metrics.counter;  (* reconfig.wrong_epoch_retries *)
  sys_batcher : ('req, 'resp) batcher option;
  sys_local_served : Heron_obs.Metrics.counter;  (* reads.local_served *)
  sys_lease_miss : Heron_obs.Metrics.counter;  (* reads.lease_miss *)
  sys_read_qps : (int * int, Qp.t) Hashtbl.t;
      (* fast-read client QPs, by (client node id, replica node id) *)
  sys_rr : int array;  (* fast-read round-robin cursor, per partition *)
  mutable sys_clients : int;
  mutable sys_jitter : int;  (* redirect-backoff jitter salt (deterministic) *)
}

let engine t = t.sys_eng
let fabric t = t.sys_fab
let config t = t.sys_cfg
let app t = t.sys_app
let replica t ~part ~idx = t.sys_replicas.(part).(idx)
let replicas t = t.sys_replicas
let multicast t = t.sys_mcast
let directory t = t.sys_dir

(* Serialized size of a message on the wire: payload plus the read-set
   object ids and the header for a request; the object list, the header
   and (for a split/merge) the replacement shard table for a
   migration. *)
let msg_size app = function
  | Replica.Req rq -> app.App.req_size rq.Replica.rq_payload + 32
  | Replica.Migrate mg ->
      48
      + (16 * List.length mg.Replica.mg_oids)
      + (match mg.Replica.mg_shards with
        | Some sm -> 24 * Heron_topology.Shard_map.count sm
        | None -> 0)
  | Replica.Lease _ -> 32
  | Replica.Batch reqs ->
      (* Per-request payloads and headers plus one batch header. *)
      Array.fold_left
        (fun acc rq -> acc + app.App.req_size rq.Replica.rq_payload + 32)
        16 reqs

(* Registered-store region size needed by one partition: cells of all
   registered objects homed (or replicated) there. Under live
   repartitioning any registered object may migrate in, so the region is
   sized for the whole catalog. *)
let region_size_for cfg specs ~part =
  let cell cap = 32 + (2 * cap) in
  let reconfig = cfg.Config.reconfig.Config.enabled in
  List.fold_left
    (fun acc spec ->
      match (spec.App.spec_klass, spec.App.spec_placement) with
      | Versioned_store.Local, _ -> acc
      | Versioned_store.Registered, App.Replicated -> acc + cell spec.App.spec_cap
      | Versioned_store.Registered, App.Partition p ->
          if reconfig || p = part then acc + cell spec.App.spec_cap else acc)
    0 specs

(* Register the catalog objects owned by one partition into a store.
   With the elastic topology on, the epoch-0 shard table decides which
   group homes each partition-placed object; the static placement is
   only the oracle's input then. *)
let load_partition_catalog ~specs ~part ?shards store =
  List.iter
    (fun spec ->
      let owned =
        match (spec.App.spec_placement, shards) with
        | App.Replicated, _ -> true
        | App.Partition _, Some sm ->
            Heron_topology.Shard_map.home sm (Oid.to_int spec.App.spec_oid) = part
        | App.Partition p, None -> p = part
      in
      if owned then
        Versioned_store.register store spec.App.spec_oid ~klass:spec.App.spec_klass
          ~cap:spec.App.spec_cap ~init:spec.App.spec_init)
    specs

let create eng ~cfg ~app =
  let fab = Fabric.create ~metrics:cfg.Config.metrics eng ~profile:cfg.Config.profile in
  let specs = app.App.catalog () in
  if cfg.Config.topology.Config.topo_enabled then begin
    (* Splits ride the Migrate machinery (exclusive slot, redirect
       chasing, whole-catalog regions), and a split re-homes keys by
       hash alone — Local-class partition state would be left behind. *)
    if not cfg.Config.reconfig.Config.enabled then
      invalid_arg "System.create: topology.topo_enabled requires reconfig.enabled";
    List.iter
      (fun spec ->
        match (spec.App.spec_klass, spec.App.spec_placement) with
        | Versioned_store.Local, App.Partition _ ->
            invalid_arg
              (Printf.sprintf
                 "System.create: topology.topo_enabled requires Registered \
                  partition-placed objects (oid %d is Local)"
                 (Oid.to_int spec.App.spec_oid))
        | _ -> ())
      specs
  end;
  let shards = Config.initial_shards cfg in
  (* The serving-set gauge starts at the deployment-time table; splits
     and merges move it from there. *)
  (match shards with
  | Some sm ->
      Heron_obs.Metrics.set_gauge
        (Heron_obs.Metrics.gauge cfg.Config.metrics "topology.shards")
        (Heron_topology.Shard_map.count sm)
  | None -> ());
  let sys_replicas =
    Array.init cfg.Config.partitions (fun part ->
        let region = region_size_for cfg specs ~part + 64 in
        Array.init cfg.Config.replicas (fun idx ->
            let node =
              Fabric.add_node fab ~name:(Printf.sprintf "p%d-r%d" part idx)
            in
            Replica.create ~cfg ~app ~part ~idx ~node ~store_region_size:region))
  in
  Array.iter
    (fun row -> Array.iter (fun r -> Replica.set_directory r sys_replicas) row)
    sys_replicas;
  (* Load the catalog. *)
  Array.iteri
    (fun part row ->
      Array.iter
        (fun r -> load_partition_catalog ~specs ~part ?shards (Replica.store r))
        row)
    sys_replicas;
  let groups = Array.map (Array.map Replica.node) sys_replicas in
  (* The ordering layer reads (trace id, root span id) straight out of
     the request payload, so the Skeen rounds need no side channel. *)
  let tracing =
    Option.map
      (fun col ->
        ( col,
          function
          | Replica.Req rq when rq.Replica.rq_trace <> 0 ->
              [ (rq.Replica.rq_trace, rq.Replica.rq_parent) ]
          | Replica.Batch reqs ->
              Array.fold_right
                (fun rq acc ->
                  if rq.Replica.rq_trace <> 0 then
                    (rq.Replica.rq_trace, rq.Replica.rq_parent) :: acc
                  else acc)
                reqs []
          | Replica.Req _ | Replica.Migrate _ | Replica.Lease _ -> [] ))
      cfg.Config.reqtrace
  in
  let sys_mcast =
    Ramcast.create ~config:cfg.Config.mcast ?tracing fab
      ~size_of:(fun m -> msg_size app m)
      ~groups
  in
  Array.iteri
    (fun part row ->
      Array.iteri
        (fun idx r ->
          ignore idx;
          Ramcast.set_deliver sys_mcast ~gid:part ~idx:(Replica.idx r) (fun dv ->
              Mailbox.send (Replica.inbox r) dv);
          if cfg.Config.durability.Config.dur_enabled then
            Replica.set_compactor r (fun ~upto ->
                ignore (Ramcast.compact sys_mcast ~gid:part ~upto);
                Ramcast.log_retained sys_mcast ~gid:part ~idx:(Replica.idx r)))
        row)
    sys_replicas;
  let sys_dir = Placement.create ?shards () in
  if cfg.Config.reconfig.Config.enabled then
    Placement.attach_metrics sys_dir cfg.Config.metrics;
  let sys_batcher =
    let pl = cfg.Config.pipeline in
    if pl.Config.pipe_enabled && pl.Config.pipe_batching then begin
      let reg = cfg.Config.metrics in
      Some
        {
          ba_node = Fabric.add_node fab ~name:"batcher";
          ba_qps = Hashtbl.create 16;
          ba_accs = Hashtbl.create 8;
          ba_occupancy = Heron_obs.Metrics.histogram reg "pipeline.batch_occupancy";
          ba_wait = Heron_obs.Metrics.histogram reg "pipeline.batch_wait_ns";
          ba_full = Heron_obs.Metrics.counter reg "pipeline.batch_flush_full";
          ba_timeout = Heron_obs.Metrics.counter reg "pipeline.batch_flush_timeout";
        }
    end
    else None
  in
  { sys_eng = eng; sys_fab = fab; sys_cfg = cfg; sys_app = app; sys_replicas;
    sys_mcast; sys_dir; sys_views = Hashtbl.create 8;
    sys_retries =
      Heron_obs.Metrics.counter cfg.Config.metrics "reconfig.wrong_epoch_retries";
    sys_batcher;
    sys_local_served = Heron_obs.Metrics.counter cfg.Config.metrics "reads.local_served";
    sys_lease_miss = Heron_obs.Metrics.counter cfg.Config.metrics "reads.lease_miss";
    sys_read_qps = Hashtbl.create 32;
    sys_rr = Array.make cfg.Config.partitions 0;
    sys_clients = 0;
    sys_jitter = 0 }

(* Read-lease granter (DESIGN.md §14): one fiber per replica, looping
   grant-then-sleep. The grant's absolute expiry is stamped {e before}
   the multicast, so ordering latency only shrinks the usable window —
   never extends it — and carries the holder's current incarnation, so
   a grant ordered before a crash can never validate the next
   incarnation. The fiber runs on the replica's node: it dies with a
   crash and is respawned (with the bumped epoch) by
   [restart_replica].

   Renewal requires progress: no new grant until the replica has
   applied the previous one. A healthy replica always has — grants are
   ordered units, applied within one ordering latency — but a replica
   wedged in its delivery path must not be renewed: every commit-wait
   in the deployment blocks on a valid holder's stale frontier, and
   renewing a holder that is not applying extends that stall forever
   (the grant itself would sit unapplied behind the wedge). Withholding
   renewal lets the lease expire, bounding the stall at the lease
   length, after which the rest of the system proceeds — and the
   resulting traffic is what refills the wedged replica's coordination
   slots and frees it. *)
let spawn_granter t r =
  let fr = t.sys_cfg.Config.fast_reads in
  let node = Replica.node r in
  Fabric.spawn_on node (fun () ->
      (* Expiry of the most recent grant issued by this granter
         incarnation. Expiries are stamped from the virtual clock, so
         they are strictly increasing across grants; the replica's own
         table entry reaching it proves the grant was applied. *)
      let last_expiry = ref 0 in
      let rec loop () =
        let applied_last_grant =
          match
            Read_lease.entry (Replica.lease_table r) ~idx:(Replica.idx r)
          with
          | None -> !last_expiry = 0
          | Some e -> e.Read_lease.le_expiry_ns >= !last_expiry
        in
        if applied_last_grant then begin
          let expiry = Engine.now t.sys_eng + fr.Config.fr_lease_ns in
          ignore
            (Ramcast.multicast t.sys_mcast ~from:node ~dst:[ Replica.part r ]
               (Replica.Lease
                  {
                    Replica.lg_part = Replica.part r;
                    lg_idx = Replica.idx r;
                    lg_incarnation = Fabric.epoch node;
                    lg_expiry_ns = expiry;
                  }));
          last_expiry := expiry
        end;
        Engine.sleep fr.Config.fr_renew_ns;
        loop ()
      in
      loop ())

let start t =
  Ramcast.start t.sys_mcast;
  Array.iter (fun row -> Array.iter Replica.start row) t.sys_replicas;
  if t.sys_cfg.Config.fast_reads.Config.fr_enabled then
    Array.iter (fun row -> Array.iter (spawn_granter t) row) t.sys_replicas

let restart_replica t ~part ~idx =
  let old = t.sys_replicas.(part).(idx) in
  let node = Replica.node old in
  if Fabric.is_alive node then
    invalid_arg "System.restart_replica: replica is not crashed";
  Fabric.recover node;
  let specs = t.sys_app.App.catalog () in
  let region = region_size_for t.sys_cfg specs ~part + 64 in
  let fresh =
    Replica.create ~cfg:t.sys_cfg ~app:t.sys_app ~part ~idx ~node
      ~store_region_size:region
  in
  (* Epoch-0 ownership, like [create]: anything a split or migration
     re-homed since then arrives with the donor's snapshot. *)
  load_partition_catalog ~specs ~part
    ?shards:(Config.initial_shards t.sys_cfg)
    (Replica.store fresh);
  (* Peers address coordination/state/store memory through the shared
     directory matrix; the in-place swap repoints them all. *)
  t.sys_replicas.(part).(idx) <- fresh;
  Replica.set_directory fresh t.sys_replicas;
  Ramcast.restart_member t.sys_mcast ~gid:part ~idx ~deliver:(fun dv ->
      Mailbox.send (Replica.inbox fresh) dv);
  if t.sys_cfg.Config.durability.Config.dur_enabled then
    Replica.set_compactor fresh (fun ~upto ->
        ignore (Ramcast.compact t.sys_mcast ~gid:part ~upto);
        Ramcast.log_retained t.sys_mcast ~gid:part ~idx);
  (* Transfer from the beginning of time: the store is empty, so a
     delta from any later point would keep cold objects at their
     catalog values. Any consistent donor snapshot suffices for the
     cover — [restart_member] re-delivers every entry past the donor's
     applied prefix into the fresh inbox, and the replica skips the
     covered ones when it starts. Insisting on more (say, the dispatch
     horizon) can deadlock: a donor wedged in Phase 2 of an entry
     cannot apply past it until this replica rejoins coordination. *)
  let earliest = Tstamp.make ~clock:1 ~uid:1 in
  Fabric.spawn_on node (fun () ->
      Replica.force_state_transfer fresh ~failed_tmp:earliest;
      Replica.start fresh;
      (* Grant only after the transfer: a lease granted to a replica
         still adopting state would have writers commit-waiting on a
         frontier it cannot publish yet. *)
      if t.sys_cfg.Config.fast_reads.Config.fr_enabled then
        spawn_granter t fresh)

let new_client_node t ~name =
  t.sys_clients <- t.sys_clients + 1;
  Fabric.add_node t.sys_fab ~name

(* A client's cached placement view, created at epoch 0 (the static
   oracle) and refreshed from the directory on wrong-epoch redirects. *)
let client_view t node =
  let key = Fabric.node_id node in
  match Hashtbl.find_opt t.sys_views key with
  | Some v -> v
  | None ->
      let v = Placement.fresh_view ?shards:(Config.initial_shards t.sys_cfg) () in
      Hashtbl.replace t.sys_views key v;
      v

(* {1 Pipeline batcher (DESIGN.md §12)}

   Single-partition requests accumulate per destination partition and go
   out as one [Replica.Batch] multicast entry — one Skeen round, one
   replication write and one commit per batch instead of per command. A
   batch flushes when it reaches [pipe_batch_size] or [pipe_flush_timeout_ns]
   after its first request arrived, whichever comes first; the timer
   bounds queueing delay at low load. Multi-partition requests bypass
   the batcher entirely (see Config.pipeline). *)

let batcher_qp b ~from =
  let key = Fabric.node_id from in
  match Hashtbl.find_opt b.ba_qps key with
  | Some qp -> qp
  | None ->
      let qp = Qp.connect ~src:from ~dst:b.ba_node in
      Hashtbl.replace b.ba_qps key qp;
      qp

let batcher_flush t b ~part acc ~cause =
  if acc.bb_n > 0 then begin
    let items = Array.of_list (List.rev acc.bb_reqs) in
    acc.bb_reqs <- [];
    acc.bb_n <- 0;
    acc.bb_gen <- acc.bb_gen + 1;
    let n = Array.length items in
    Heron_obs.Metrics.observe b.ba_occupancy n;
    (match cause with
    | `Full -> Heron_obs.Metrics.incr b.ba_full
    | `Timeout -> Heron_obs.Metrics.incr b.ba_timeout);
    let now = Engine.now t.sys_eng in
    let col = t.sys_cfg.Config.reqtrace in
    Array.iter
      (fun ((rq : _ Replica.request), enq) ->
        Heron_obs.Metrics.observe b.ba_wait (now - enq);
        match col with
        | Some col when rq.Replica.rq_trace <> 0 ->
            ignore
              (Heron_obs.Reqtrace.add_span col ~trace:rq.Replica.rq_trace
                 ~parent:rq.Replica.rq_parent ~stage:"batch.wait"
                 ~attrs:[ ("part", string_of_int part) ]
                 ~start:enq now)
        | _ -> ())
      items;
    let reqs = Array.map fst items in
    ignore
      (Ramcast.multicast t.sys_mcast ~slots:n ~from:b.ba_node ~dst:[ part ]
         (Replica.Batch reqs))
  end

(* Runs on the client's fiber: the request hops to the batcher node (a
   modelled transfer, so the wire cost stays) and joins the open batch;
   the client then blocks on its reply ivars as usual. Flushes run on
   the batcher's own fibers — [Engine.schedule] callbacks must not
   block, and a full-triggered flush must not charge its multicast round
   to the enqueueing client. *)
let batcher_enqueue t b ~from ~part rq =
  Qp.transfer (batcher_qp b ~from)
    ~bytes_len:(t.sys_app.App.req_size rq.Replica.rq_payload + 32);
  let pl = t.sys_cfg.Config.pipeline in
  let acc =
    match Hashtbl.find_opt b.ba_accs part with
    | Some a -> a
    | None ->
        let a = { bb_reqs = []; bb_n = 0; bb_gen = 0 } in
        Hashtbl.replace b.ba_accs part a;
        a
  in
  acc.bb_reqs <- (rq, Engine.now t.sys_eng) :: acc.bb_reqs;
  acc.bb_n <- acc.bb_n + 1;
  if acc.bb_n = pl.Config.pipe_batch_size then
    (* Exactly-once per fill: counts pass through the threshold one
       increment at a time. Arrivals between this spawn and the flush
       running join the same batch. *)
    Fabric.spawn_on b.ba_node (fun () -> batcher_flush t b ~part acc ~cause:`Full)
  else if acc.bb_n = 1 then begin
    let gen = acc.bb_gen in
    Engine.schedule ~delay:pl.Config.pipe_flush_timeout_ns t.sys_eng (fun () ->
        if acc.bb_gen = gen then
          Fabric.spawn_on b.ba_node (fun () ->
              (* Re-check: a size flush may have won between the timer
                 firing and this fiber running. *)
              if acc.bb_gen = gen then batcher_flush t b ~part acc ~cause:`Timeout))
  end

(* {1 Lease-protected local reads (DESIGN.md §14)}

   A read-only single-partition request skips the multicast entirely:
   the client picks a replica of the home partition round-robin, pays
   one request transfer, and the replica serves from its local store if
   its lease covers the read. Any replica of the partition qualifies —
   reads fan out across all of them — and a lease miss falls back to
   the ordered path. *)

let read_qp t ~from ~dst =
  let key = (Fabric.node_id from, Fabric.node_id dst) in
  match Hashtbl.find_opt t.sys_read_qps key with
  | Some qp -> qp
  | None ->
      let qp = Qp.connect ~src:from ~dst in
      Hashtbl.replace t.sys_read_qps key qp;
      qp

(* One fast-read attempt: round-robin over the partition's replica
   slots (re-reading the live array on every attempt — a restart swaps
   the slot), skipping dead nodes and broken connections. The first
   replica that answers decides: a lease miss means fall back to the
   ordered path immediately rather than shopping around — the miss
   causes (in-recovery, expired leases, in-flight writes past the
   frontier) mostly afflict the whole partition at once, and the
   ordered path is the bounded-latency recourse. *)
let fast_read_round t ~from ~part payload =
  let n = t.sys_cfg.Config.replicas in
  let start = t.sys_rr.(part) in
  t.sys_rr.(part) <- (start + 1) mod n;
  let req_bytes = t.sys_app.App.req_size payload + 32 in
  let rec go attempt =
    if attempt >= n then None
    else begin
      let r = t.sys_replicas.(part).((start + attempt) mod n) in
      let node = Replica.node r in
      if not (Fabric.is_alive node) then go (attempt + 1)
      else
        match
          let qp = read_qp t ~from ~dst:node in
          Qp.transfer qp ~bytes_len:req_bytes;
          match Replica.try_serve_read r payload with
          | Some resp ->
              Qp.transfer qp ~bytes_len:(t.sys_app.App.resp_size resp + 16);
              `Served resp
          | None -> `Miss
        with
        | `Served resp -> Some resp
        | `Miss -> None
        | exception Qp.Rdma_exception _ ->
            Hashtbl.remove t.sys_read_qps (Fabric.node_id from, Fabric.node_id node);
            go (attempt + 1)
    end
  in
  go 0

(* One multicast round: returns the per-partition replies (first reply
   per partition wins, replicas answer redundantly). [trace]/[parent]
   are the request-scoped trace id and root span id (0 when the
   deployment does not trace). *)
let submit_round t ~from ~dst ~trace ~parent payload =
  let replies = List.map (fun p -> (p, Ivar.create ())) dst in
  let rq =
    {
      Replica.rq_payload = payload;
      rq_dst = dst;
      rq_submitted = Engine.now t.sys_eng;
      rq_client_node = from;
      rq_reply =
        (fun ~part resp ->
          match List.assoc_opt part replies with
          | Some iv -> ignore (Ivar.try_fill iv resp)
          | None -> ());
      rq_trace = trace;
      rq_parent = parent;
    }
  in
  (match (t.sys_batcher, dst) with
  | Some b, [ part ] -> batcher_enqueue t b ~from ~part rq
  | _ -> ignore (Ramcast.multicast t.sys_mcast ~from ~dst (Replica.Req rq)));
  List.map (fun (p, iv) -> (p, Ivar.read iv)) replies

(* Submit and retry on wrong-epoch redirects: refresh the cached view
   from the directory, recompute the destination set and resubmit. The
   replicas' decision is uniform (all destinations redirect or none
   does), so a mixed outcome is impossible; if the refresh observed no
   new epoch — the migration that redirected us has not committed to
   the directory yet — back off briefly before retrying.

   With tracing on, the whole retry chain is one trace: each redirected
   round gets a [redirect] span covering the wasted round plus the view
   refresh and backoff (the round's ordering spans nest inside it), and
   the trace finishes when the replies of the successful round are in. *)
let submit_loop t ~from ~dst payload =
  let col = t.sys_cfg.Config.reqtrace in
  let trace, parent =
    match col with
    | None -> (0, 0)
    | Some col ->
        Heron_obs.Reqtrace.start_trace col
          ~attrs:[ ("client", Fabric.node_name from) ]
          ~now:(Engine.now t.sys_eng) ()
  in
  let rec go ~dst =
    let round_start = Engine.now t.sys_eng in
    let replies = submit_round t ~from ~dst ~trace ~parent payload in
    let redirected =
      List.exists (function _, Replica.Redirect _ -> true | _ -> false) replies
    in
    if not redirected then begin
      (match col with
      | Some col when trace <> 0 ->
          Heron_obs.Reqtrace.finish col ~trace ~now:(Engine.now t.sys_eng)
      | _ -> ());
      List.map
        (fun (p, rep) ->
          match rep with
          | Replica.Reply resp -> (p, resp)
          | Replica.Redirect _ -> assert false)
        replies
    end
    else begin
      Heron_obs.Metrics.incr t.sys_retries;
      let view = client_view t from in
      let before = Placement.view_epoch view in
      Placement.refresh view t.sys_dir;
      if Placement.view_epoch view = before then begin
        (* Jittered backoff: the migration behind the redirect has not
           committed yet, and every redirected client lands here in the
           same virtual instant — a fixed pause would retry them all in
           lockstep on the same tick, redirecting the whole herd again.
           Half the configured backoff is the floor, the rest a
           deterministic hash of (client node, retry ordinal). *)
        let b = t.sys_cfg.Config.costs.Config.redirect_backoff_ns in
        t.sys_jitter <- t.sys_jitter + 1;
        let j =
          Heron_topology.Ring.mix
            (Fabric.node_id from + (t.sys_jitter * 0x9E37))
        in
        Engine.sleep ((b / 2) + (j mod (max 1 b)))
      end;
      let dst' =
        match
          Placement.destinations view t.sys_app
            ~partitions:t.sys_cfg.Config.partitions payload
        with
        | d -> d
        | exception Invalid_argument _ -> dst
      in
      (match col with
      | Some col when trace <> 0 ->
          ignore
            (Heron_obs.Reqtrace.add_span col ~trace ~parent ~stage:"redirect"
               ~attrs:[ ("epoch", string_of_int (Placement.view_epoch view)) ]
               ~start:round_start (Engine.now t.sys_eng))
      | _ -> ());
      go ~dst:dst'
    end
  in
  let fr = t.sys_cfg.Config.fast_reads in
  match dst with
  | [ part ] when fr.Config.fr_enabled && t.sys_app.App.read_only payload -> (
      let t0 = Engine.now t.sys_eng in
      match fast_read_round t ~from ~part payload with
      | Some resp ->
          Heron_obs.Metrics.incr t.sys_local_served;
          (match col with
          | Some col when trace <> 0 ->
              ignore
                (Heron_obs.Reqtrace.add_span col ~trace ~parent ~stage:"read.local"
                   ~attrs:[ ("part", string_of_int part) ]
                   ~start:t0 (Engine.now t.sys_eng));
              Heron_obs.Reqtrace.finish col ~trace ~now:(Engine.now t.sys_eng)
          | _ -> ());
          [ (part, resp) ]
      | None ->
          Heron_obs.Metrics.incr t.sys_lease_miss;
          (match col with
          | Some col when trace <> 0 ->
              ignore
                (Heron_obs.Reqtrace.add_span col ~trace ~parent
                   ~stage:"read.fallback"
                   ~attrs:[ ("part", string_of_int part) ]
                   ~start:t0 (Engine.now t.sys_eng))
          | _ -> ());
          go ~dst)
  | _ -> go ~dst

let submit_to t ~from ~dst payload = submit_loop t ~from ~dst payload

let submit t ~from payload =
  let partitions = t.sys_cfg.Config.partitions in
  let dst =
    if t.sys_cfg.Config.reconfig.Config.enabled then
      Placement.destinations (client_view t from) t.sys_app ~partitions payload
    else App.destinations t.sys_app ~partitions payload
  in
  submit_loop t ~from ~dst payload
