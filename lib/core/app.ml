open Heron_sim

type placement = Partition of int | Replicated

type obj_spec = {
  spec_oid : Oid.t;
  spec_placement : placement;
  spec_klass : Versioned_store.klass;
  spec_cap : int;
  spec_init : bytes;
}

type ctx = {
  ctx_partition : int;
  ctx_tmp : Heron_multicast.Tstamp.t;
  ctx_read : Oid.t -> bytes;
  ctx_read_opt : Oid.t -> bytes option;
  ctx_is_local : Oid.t -> bool;
  ctx_write : Oid.t -> bytes -> unit;
  ctx_charge : Time_ns.t -> unit;
}

type ('req, 'resp) t = {
  app_name : string;
  placement_of : Oid.t -> placement;
  klass_of : Oid.t -> Versioned_store.klass;
  read_set : 'req -> Oid.t list;
  read_plan : part:int -> 'req -> Oid.t list;
  write_sketch : 'req -> Oid.t list;
  req_size : 'req -> int;
  resp_size : 'resp -> int;
  execute : ctx -> 'req -> 'resp;
  serial_hint : 'req -> bool;
  read_only : 'req -> bool;
  catalog : unit -> obj_spec list;
}

let destinations_under ~placement_of app ~partitions req =
  let add acc oid =
    match placement_of oid with
    | Replicated -> acc
    | Partition p ->
        if p < 0 || p >= partitions then
          invalid_arg "App.destinations: partition out of range";
        if List.mem p acc then acc else p :: acc
  in
  let parts = List.fold_left add [] (app.read_set req @ app.write_sketch req) in
  match List.sort compare parts with
  | [] -> invalid_arg "App.destinations: request touches no partition"
  | dst -> dst

let destinations app = destinations_under ~placement_of:app.placement_of app
