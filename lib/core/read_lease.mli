(** Per-partition read leases (DESIGN.md §14).

    A replica holding a valid lease serves single-partition read-only
    requests from its local store with no multicast round. Leases are
    granted {e through the total order}: each replica's granter fiber
    (spawned by {!System}) periodically multicasts a grant to its own
    partition, so every replica applies every grant at the same point
    of the delivery sequence and the lease table is deterministic
    replicated state.

    Writers invalidate by waiting: before acknowledging any request, a
    replica blocks until every peer holding a valid lease has published
    an applied frontier at or past the request ([commit-wait]). Frontier
    copies live in this module's RDMA region — [replicas] slots of
    16 bytes, each an (applied frontier, publisher incarnation) pair
    written remotely by the peer it describes, doorbell-batched like a
    coordination announce.

    Validity of a holder combines three checks, shared by the
    commit-wait and the serve side: the entry's incarnation equals the
    peer node's current {!Heron_rdma.Fabric.epoch} (a restarted peer's
    old leases never count again — epochs only grow), the virtual clock
    has not passed the grant's absolute expiry (the global simulated
    clock has zero skew, so absolute expiries are exact), and — serve
    side only — the replica has applied past the grant position. *)

open Heron_rdma
open Heron_multicast

type entry = {
  mutable le_incarnation : int;  (** holder's {!Fabric.epoch} at grant time *)
  mutable le_expiry_ns : Heron_sim.Time_ns.t;  (** absolute expiry instant *)
  mutable le_grant : Tstamp.t;  (** position of the grant in the order *)
}

type snapshot = (int * entry) list
(** A copyable image of the table, shipped by state-transfer donors: a
    rejoiner adopting a synchronised prefix must also adopt the leases
    granted inside it, or its empty table would let it acknowledge
    writes without waiting for holders granted before its adoption
    point. *)

type t

val create : Fabric.node -> replicas:int -> t
(** Allocate the table and the frontier-copy region on [node]. *)

(** {1 Frontier copies} *)

val copy_addr : t -> idx:int -> Memory.addr
(** Address of peer [idx]'s frontier-copy slot in this node's region
    (the peer writes its own slot remotely). *)

val read_copy : t -> idx:int -> Tstamp.t * int
(** [(frontier, incarnation)] as last published by peer [idx]. A copy
    whose incarnation differs from the peer's current epoch is stale
    and must be treated as unpublished. *)

val write_copy_local : t -> idx:int -> Tstamp.t -> epoch:int -> unit
(** Local (self) slot update; raw store, wakes no waiters. *)

val encode_copy : Tstamp.t -> epoch:int -> bytes
(** Wire image of one slot, shareable across a doorbell batch. *)

(** {1 Lease entries} *)

val apply_grant :
  t -> idx:int -> incarnation:int -> expiry_ns:Heron_sim.Time_ns.t -> at:Tstamp.t -> unit
(** Apply a grant delivered (or adopted) at position [at]; grants older
    than the entry already held are ignored. *)

val entry : t -> idx:int -> entry option
(** Peer [idx]'s current lease entry, [None] before its first grant. *)

(** {1 State transfer} *)

val snapshot : t -> snapshot
(** Deep-copy the table in the caller's event-loop turn. *)

val adopt : t -> snapshot -> unit
(** Merge a donor snapshot: per peer, the newer grant wins. *)

val snapshot_bytes : snapshot -> int
(** Serialized footprint of a snapshot (wire-cost accounting). *)
