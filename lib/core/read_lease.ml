open Heron_rdma
open Heron_multicast

type entry = {
  mutable le_incarnation : int;
  mutable le_expiry_ns : Heron_sim.Time_ns.t;
  mutable le_grant : Tstamp.t;
}

type snapshot = (int * entry) list

type t = {
  rl_node : Fabric.node;
  rl_copies : Memory.region;
  rl_replicas : int;
  rl_entries : entry option array;
}

(* A frontier copy is (applied frontier, publisher incarnation). The
   incarnation tag is load-bearing: after a crash and restart, a peer's
   old incarnation may have published a frontier {e ahead} of what the
   new incarnation has applied so far, and a writer trusting the stale
   copy would skip its commit-wait while the rejoiner can already hold
   a fresh lease — a stale read. Tagged copies from a previous
   incarnation simply do not count. *)
let slot_bytes = 16

let create node ~replicas =
  {
    rl_node = node;
    rl_copies = Fabric.alloc_region node ~size:(replicas * slot_bytes);
    rl_replicas = replicas;
    rl_entries = Array.make replicas None;
  }

let off ~idx = idx * slot_bytes

let copy_addr t ~idx =
  Memory.addr ~node:(Fabric.node_id t.rl_node) t.rl_copies ~off:(off ~idx)

let read_copy t ~idx =
  let off = off ~idx in
  ( Tstamp.of_int64 (Memory.get_i64 t.rl_copies ~off),
    Int64.to_int (Memory.get_i64 t.rl_copies ~off:(off + 8)) )

let write_copy_local t ~idx tmp ~epoch =
  let off = off ~idx in
  Memory.set_i64 t.rl_copies ~off (Tstamp.to_int64 tmp);
  Memory.set_i64 t.rl_copies ~off:(off + 8) (Int64.of_int epoch)

let encode_copy tmp ~epoch =
  let b = Bytes.create slot_bytes in
  Bytes.set_int64_le b 0 (Tstamp.to_int64 tmp);
  Bytes.set_int64_le b 8 (Int64.of_int epoch);
  b

(* Grants arrive through the total order, so [at] values for one peer
   are strictly increasing at any single replica; the [<] guard only
   fires against entries adopted from a donor snapshot that already
   covered the grant. *)
let apply_grant t ~idx ~incarnation ~expiry_ns ~at =
  match t.rl_entries.(idx) with
  | Some e when Tstamp.(at < e.le_grant) -> ()
  | Some e ->
      e.le_incarnation <- incarnation;
      e.le_expiry_ns <- expiry_ns;
      e.le_grant <- at
  | None ->
      t.rl_entries.(idx) <-
        Some { le_incarnation = incarnation; le_expiry_ns = expiry_ns; le_grant = at }

let entry t ~idx = t.rl_entries.(idx)

let snapshot t =
  let out = ref [] in
  Array.iteri
    (fun i e ->
      match e with
      | Some e -> out := (i, { e with le_grant = e.le_grant }) :: !out
      | None -> ())
    t.rl_entries;
  !out

let adopt t snap =
  List.iter
    (fun (i, e) ->
      apply_grant t ~idx:i ~incarnation:e.le_incarnation ~expiry_ns:e.le_expiry_ns
        ~at:e.le_grant)
    snap

let snapshot_bytes snap = 24 * List.length snap
