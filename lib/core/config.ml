type coord_wait = Majority | Grace of int | Wait_all

type costs = {
  exec_base_ns : int;
  read_local_ns : int;
  write_local_ns : int;
  deser_per_byte_x100 : int;
  ser_per_byte_x100 : int;
  coord_post_ns : int;
  hiccup_pct : int;
  hiccup_max_ns : int;
  coord_check_slot_ns : int;
  transfer_chunk_bytes : int;
  redirect_backoff_ns : int;
}

type reconfig = { enabled : bool }

type durability = {
  dur_enabled : bool;
  dur_interval_ns : int;
}

type pipeline = {
  pipe_enabled : bool;
  pipe_batching : bool;
  pipe_batch_size : int;
  pipe_flush_timeout_ns : int;
  pipe_executors : int;
  pipe_queue_cap : int;
  pipe_coord_writer : bool;
}

type fast_reads = {
  fr_enabled : bool;
  fr_lease_ns : int;
  fr_renew_ns : int;
  fr_write_wait : bool;
}

type topology = {
  topo_enabled : bool;
  topo_shards : int;
}

type t = {
  partitions : int;
  replicas : int;
  profile : Heron_rdma.Profile.t;
  mcast : Heron_multicast.Ramcast.config;
  costs : costs;
  wait_phase2 : coord_wait;
  wait_phase4 : coord_wait;
  log_capacity : int;
  workers : int;
  statesync_timeout_ns : int;
  addr_query_ns : int;
  coord_batching : bool;
  reconfig : reconfig;
  pipeline : pipeline;
  durability : durability;
  fast_reads : fast_reads;
  topology : topology;
  metrics : Heron_obs.Metrics.t;
  reqtrace : Heron_obs.Reqtrace.t option;
}

let default_costs =
  {
    exec_base_ns = 2_000;
    read_local_ns = 150;
    write_local_ns = 200;
    deser_per_byte_x100 = 95;
    ser_per_byte_x100 = 95;
    coord_post_ns = 150;
    hiccup_pct = 2;
    hiccup_max_ns = 12_000;
    coord_check_slot_ns = 200;
    transfer_chunk_bytes = 32_768;
    redirect_backoff_ns = 2_000;
  }

let default_reconfig = { enabled = false }
let default_durability = { dur_enabled = false; dur_interval_ns = 2_000_000 }

let default_pipeline =
  {
    pipe_enabled = false;
    pipe_batching = true;
    pipe_batch_size = 8;
    pipe_flush_timeout_ns = 15_000;
    pipe_executors = 4;
    pipe_queue_cap = 64;
    pipe_coord_writer = true;
  }

let default_fast_reads =
  {
    fr_enabled = false;
    fr_lease_ns = 2_000_000;
    fr_renew_ns = 800_000;
    fr_write_wait = true;
  }

let default_topology = { topo_enabled = false; topo_shards = 1 }

(* The epoch-0 shard table is a pure function of the deployment config,
   so replicas, clients and the directory each compute it locally and
   agree without coordination. *)
let initial_shards t =
  if t.topology.topo_enabled then
    Some
      (Heron_topology.Shard_map.initial ~shards:t.topology.topo_shards
         ~pool:t.partitions)
  else None

let default ~partitions ~replicas =
  if partitions <= 0 then invalid_arg "Config.default: partitions must be positive";
  if replicas <= 0 || replicas mod 2 = 0 then
    invalid_arg "Config.default: replicas must be odd and positive";
  {
    partitions;
    replicas;
    profile = Heron_rdma.Profile.default;
    mcast = Heron_multicast.Ramcast.default_config;
    costs = default_costs;
    wait_phase2 = Majority;
    wait_phase4 = Grace 5_000;
    log_capacity = 100_000;
    workers = 1;
    statesync_timeout_ns = 5_000_000;
    addr_query_ns = 4_000;
    coord_batching = true;
    reconfig = default_reconfig;
    pipeline = default_pipeline;
    durability = default_durability;
    fast_reads = default_fast_reads;
    topology = default_topology;
    metrics = Heron_obs.Metrics.default;
    reqtrace = None;
  }
