(** Log of object updates performed during normal execution.

    Replicas append one entry per object write; during state transfer
    the donor uses the log to compute the set of objects a lagger must
    synchronise (Algorithm 3 line 12), instead of shipping the whole
    store. The log is bounded: when it overflows, the oldest entries are
    dropped and the log records the truncation point, after which it can
    no longer answer range queries reaching behind it (the donor then
    falls back to a full-store transfer). *)

open Heron_multicast

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] if capacity is not positive. *)

val append : t -> Tstamp.t -> Oid.t -> unit
(** Record that the object was updated by the request with this
    timestamp. Appends may be slightly out of timestamp order (parallel
    execution of non-conflicting requests); {!covers} stays sound
    because truncation tracks the largest dropped timestamp. *)

val note_gap : t -> upto:Tstamp.t -> unit
(** Record that updates with timestamp <= [upto] may be missing from
    the log — e.g. after adopting a state transfer whose shipped prefix
    this replica never executed (and so never logged). Treated exactly
    like truncation: {!covers} then refuses ranges reaching behind
    [upto], forcing donors back to a full-store transfer. *)

val truncate : t -> upto:Tstamp.t -> int
(** Drop every retained entry with timestamp <= [upto] and advance the
    truncation point to at least [upto] (even when no entry was
    dropped — the caller asserts that updates at or below [upto] are
    durably captured elsewhere, e.g. by a checkpoint, so the log must
    refuse ranges reaching behind it from now on). Returns the number
    of entries dropped. *)

val length : t -> int

val covers : t -> from:Tstamp.t -> bool
(** Whether the log retains every update with timestamp >= [from]. *)

val last_tmp : t -> Tstamp.t
(** Largest timestamp ever appended ([Tstamp.zero] if none). *)

val truncation : t -> Tstamp.t
(** The truncation point: the largest timestamp whose updates may be
    missing, from overflow drops or {!note_gap} ([Tstamp.zero] while
    the log is complete). *)

val oids_in_range : t -> from:Tstamp.t -> upto:Tstamp.t -> Oid.t list
(** Distinct oids updated by requests with timestamp in
    [[from, upto]] (both inclusive), in first-update order. Raises
    [Invalid_argument] if the range reaches behind the truncation point
    (check {!covers} first). *)

val oids_after : t -> after:Tstamp.t -> upto:Tstamp.t -> Oid.t list
(** Distinct oids updated by requests with timestamp in
    [(after, upto]] (left-exclusive), in first-update order — the delta
    a lagger needs on top of a checkpoint cut exactly at [after].
    Unlike {!oids_in_range}, the log may have been truncated {e at}
    [after] (a checkpoint that just truncated there still serves this
    suffix); raises [Invalid_argument] only when the truncation point
    is strictly beyond [after]. *)
