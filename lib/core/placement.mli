(** Epoch-versioned placement: dynamic object-to-partition overrides
    layered over the application's static placement oracle.

    The paper's oracle ([App.placement_of]) is a pure function fixed at
    deployment time; live repartitioning (DESIGN.md §10) layers a small
    override table on top of it. Placement state exists in three roles:

    - the {e authoritative directory} ({!type-t}), owned by the
      deployment ({!System.directory}) and advanced by the migration
      orchestrator ({!Heron_reconfig.Migration}) when a migration
      commits;
    - one {e replica view} per replica, advanced when the replica
      executes a [Migrate] command at its position in the delivery
      order — so every replica of a partition holds the same view at
      the same point of the order;
    - one {e client view} per client node, refreshed from the directory
      only when a replica answers with a wrong-epoch redirect (clients
      cache an epoch, exactly like DynaStar's clients cache the
      location oracle).

    Epochs are strictly increasing integers; epoch 0 is the pure static
    oracle. Views are cheap copies: an override table holds one entry
    per object that ever migrated. *)

type t
(** The authoritative directory. *)

val create : unit -> t

val attach_metrics : t -> Heron_obs.Metrics.t -> unit
(** Publish the directory's epoch as the [reconfig.epoch] gauge. *)

val epoch : t -> int

val lookup : t -> Oid.t -> int option
(** Current override for an object, if it ever migrated. *)

val commit : t -> epoch:int -> moves:(Oid.t * int) list -> unit
(** Install a committed migration's moves and advance the epoch.
    Raises [Invalid_argument] unless [epoch = epoch t + 1] (migrations
    are serialized by {!begin_exclusive}). *)

val begin_exclusive : t -> bool
(** Try to acquire the single-orchestrator migration slot; [false] if a
    migration is already in flight. *)

val end_exclusive : t -> unit

(** {1 Views (replica- and client-side caches)} *)

type view

val fresh_view : unit -> view
(** Epoch 0: the pure static oracle. *)

val view_epoch : view -> int

val refresh : view -> t -> unit
(** Re-cache the directory's current overrides and epoch (a client
    reacting to a wrong-epoch redirect). *)

val install : view -> epoch:int -> moves:(Oid.t * int) list -> unit
(** Apply one migration's moves to a view (a replica executing a
    [Migrate] command). Epochs advance monotonically; re-installing an
    already-seen epoch is idempotent. *)

val copy_view : src:view -> dst:view -> unit
(** Overwrite [dst] with [src]'s overrides and epoch (the state-transfer
    donor shipping its placement alongside the object state). *)

val view_size : view -> int
(** Number of overrides (transfer byte accounting). *)

val view_lookup : view -> Oid.t -> int option

val placement_under : view -> (Oid.t -> App.placement) -> Oid.t -> App.placement
(** The effective oracle: the view's override if present, otherwise the
    static placement. Replicated objects never migrate and are returned
    unchanged. *)

val destinations :
  view -> ('req, 'resp) App.t -> partitions:int -> 'req -> int list
(** {!App.destinations} computed under the view's effective oracle. *)
