(** Epoch-versioned placement: dynamic object-to-partition overrides
    and the elastic shard table, layered over the application's static
    placement oracle.

    The paper's oracle ([App.placement_of]) is a pure function fixed at
    deployment time; live repartitioning (DESIGN.md §10) layers a small
    override table on top of it, and the elastic topology (DESIGN.md
    §15) layers a ring-hashed shard table underneath the overrides.
    Placement state exists in three roles:

    - the {e authoritative directory} ({!type-t}), owned by the
      deployment ({!System.directory}) and advanced by the migration
      orchestrator ({!Heron_reconfig.Migration}) or the elastic
      orchestrator ({!Heron_reconfig.Elastic}) when a command commits;
    - one {e replica view} per replica, advanced when the replica
      executes a [Migrate] command at its position in the delivery
      order — so every replica of a partition holds the same view at
      the same point of the order;
    - one {e client view} per client node, refreshed from the directory
      only when a replica answers with a wrong-epoch redirect (clients
      cache an epoch, exactly like DynaStar's clients cache the
      location oracle).

    Epochs are strictly increasing integers; epoch 0 is the pure static
    oracle — or, with the topology enabled, the deployment-time shard
    table ({!Config.initial_shards}), which every party computes
    locally. Migrations and shard splits/merges share the one epoch
    counter, so redirect-chasing and the exclusive-orchestrator slot
    serialize them together. Views are cheap copies: an override table
    holds one entry per object that ever migrated, plus a shared
    immutable shard table. *)

type t
(** The authoritative directory. *)

val create : ?shards:Heron_topology.Shard_map.t -> unit -> t
(** [?shards] installs the deployment-time shard table (elastic
    topology); without it epoch 0 is the pure static oracle. *)

val attach_metrics : t -> Heron_obs.Metrics.t -> unit
(** Publish the directory's epoch as the [reconfig.epoch] gauge. *)

val epoch : t -> int

val lookup : t -> Oid.t -> int option
(** Current override for an object, if it ever migrated. *)

val shards : t -> Heron_topology.Shard_map.t option
(** The committed shard table, when the elastic topology is on. *)

val commit :
  ?shards:Heron_topology.Shard_map.t ->
  t ->
  epoch:int ->
  moves:(Oid.t * int) list ->
  unit
(** Install a committed command's moves — and, for a shard split or
    merge, its new shard table — and advance the epoch. Raises
    [Invalid_argument] unless [epoch = epoch t + 1] (commands are
    serialized by {!begin_exclusive}). *)

val begin_exclusive : t -> bool
(** Try to acquire the single-orchestrator reconfiguration slot;
    [false] if a migration, split or merge is already in flight. *)

val end_exclusive : t -> unit

(** {1 Views (replica- and client-side caches)} *)

type view

val fresh_view : ?shards:Heron_topology.Shard_map.t -> unit -> view
(** Epoch 0: the static oracle, or the initial shard table when given. *)

val view_epoch : view -> int
val view_shards : view -> Heron_topology.Shard_map.t option

val refresh : view -> t -> unit
(** Re-cache the directory's current overrides, shard table and epoch
    (a client reacting to a wrong-epoch redirect). *)

val install :
  ?shards:Heron_topology.Shard_map.t ->
  view ->
  epoch:int ->
  moves:(Oid.t * int) list ->
  unit
(** Apply one command's moves (and new shard table, for a split or
    merge) to a view — a replica executing a [Migrate] command. Epochs
    advance monotonically; re-installing an already-seen epoch is
    idempotent. *)

val copy_view : src:view -> dst:view -> unit
(** Overwrite [dst] with [src]'s overrides, shard table and epoch (the
    state-transfer donor shipping its placement alongside the object
    state). *)

val view_size : view -> int
(** Number of overrides. *)

val view_bytes : view -> int
(** Serialized size of the view on the wire: overrides plus the shard
    table (transfer byte accounting). *)

val view_lookup : view -> Oid.t -> int option

val placement_under : view -> (Oid.t -> App.placement) -> Oid.t -> App.placement
(** The effective oracle: the view's override if present, else the
    shard table's ring lookup if one is installed, otherwise the static
    placement. Replicated objects never migrate and are returned
    unchanged. *)

val destinations :
  view -> ('req, 'resp) App.t -> partitions:int -> 'req -> int list
(** {!App.destinations} computed under the view's effective oracle. *)
