(** Fault schedules for the chaos harness.

    A schedule is an explicit, serializable description of one chaos
    run: the workload a deployment executes (partitions, replicas,
    clients, operation mix — all derived from a seed) plus a list of
    timed fault events injected while the workload runs. Schedules are
    plain data: the {!Driver} interprets them against a live system,
    the shrinker ({!Shrink}) minimizes their event lists, and failing
    schedules are pinned as JSON files under [test/corpus/] and
    replayed forever after by [dune runtest].

    Times are virtual nanoseconds from simulation start. Replicas are
    named by [(partition, index)], never by fabric node id, so a
    schedule is meaningful against any freshly-built deployment of the
    same shape. *)

type event =
  | Crash of { part : int; idx : int; at : int }
      (** Kill replica [idx] of [part] at time [at] (power failure:
          fibers cancelled, volatile memory lost on recovery). *)
  | Restart of { part : int; idx : int; at : int }
      (** Recover the replica and run the full rejoin path: multicast
          re-subscription and state transfer (Algorithm 3). *)
  | Delay_link of { src : int * int; dst : int * int; extra_ns : int; at : int; span : int }
      (** Add [extra_ns] one-way latency to every RDMA verb from
          replica [src] to replica [dst] during [[at, at+span]]. *)
  | Drop_writes of { src : int * int; dst : int * int; at : int; span : int }
      (** Silently drop posted (fire-and-forget) writes from [src] to
          [dst] during the span — lost coordination announcements.
          Blocking verbs are unaffected (RC transport retries). *)
  | Pause_replica of { part : int; idx : int; extra_ns : int; at : int; span : int }
      (** Slow the replica's execution by [extra_ns] per request during
          the span, manufacturing a lagger (paper Section V-E). *)
  | Migrate of { key : int; dst : int; at : int }
      (** Live-migrate [key] to partition [dst] at time [at]
          (DESIGN.md §10). The source partition is whatever the
          directory says when the event fires; if the key already lives
          on [dst] — or another migration is in flight — the injection
          is skipped and counted, like a crash of a dead replica. *)
  | Split of { shard : int; at : int }
      (** Split a shard of the elastic table (DESIGN.md §15); requires
          [sc_shards > 0]. [shard] is reduced modulo the table's size
          when the event fires, so the injection stays meaningful
          whatever earlier splits and merges did; an impossible split
          (arc too narrow, pool exhausted, orchestrator busy) is
          skipped and counted. *)
  | Merge of { left : int; at : int }
      (** Merge the adjacent shard pair at [left] (reduced modulo
          [size - 1] at fire time); skipped and counted if the table is
          down to one shard or the orchestrator is busy. *)

type workload =
  | Incr_all  (** every op is [Incr_all [0;1]] — cross-partition writes *)
  | Mixed  (** reads, writes, increments and snapshots (lincheck food) *)

type t = {
  sc_seed : int;  (** engine + client-RNG seed *)
  sc_partitions : int;
  sc_replicas : int;
  sc_keys : int;
  sc_clients : int;
  sc_ops : int;  (** operations per client *)
  sc_workload : workload;
  sc_horizon_ns : int;
      (** virtual-time budget of the run: the driver declares a stall
          once this much simulated time passed with operations still
          outstanding ({!default_horizon_ns} for the classic families,
          minutes of virtual time for longhaul schedules) *)
  sc_think_ns : int;
      (** per-client pause between operations — 0 for the classic
          closed-loop families; longhaul schedules use it to spread
          traffic across the whole horizon *)
  sc_shards : int;
      (** deployment-time shards of the elastic topology (DESIGN.md
          §15): the driver runs with [Config.topology] enabled and this
          many initial shards when positive. 0 — the default, and what
          pinned JSON from before the field existed decodes to — runs
          with the topology off. *)
  sc_events : event list;  (** sorted by {!event_time} *)
}

val default_horizon_ns : int
(** 60ms — the classic families' horizon, and the value assumed for
    pinned JSON written before the field existed. *)

val event_time : event -> int
val event_end : event -> int
(** [event_time] plus the span for spanned events. *)

val normalize : t -> t
(** Sort events by time (stable). *)

val generate : seed:int -> t
(** Derive a schedule from a seed, valid by construction and inside the
    liveness envelope: crash/restart rounds are sequential (at most one
    replica down at a time, never index 0 — the initial multicast
    leader), drop faults target cross-partition links only and end
    before the first crash, so a majority of announcements always gets
    through and the run must complete. Any failure under such a
    schedule is Heron's fault, not the schedule's. *)

val generate_reconfig : seed:int -> t
(** Like {!generate} but reconfiguration-focused: every schedule
    carries 1–3 migrations per crash/restart round, timed to overlap
    the window between the crash and the restart (plus slop on both
    sides), so crashes land during in-flight migrations and restarted
    replicas recover state that includes migrated-in objects. Same
    liveness envelope as {!generate}. *)

val generate_longhaul : seed:int -> t
(** Durability-focused generator (DESIGN.md §13): minutes of virtual
    time per schedule, client traffic paced with think time across the
    whole horizon, and 8–20 crash/rejoin cycles spaced tens of virtual
    seconds apart with migrations racing the down windows. Run with the
    driver's [durability] and [longhaul] options: the horizon spans
    hundreds of checkpoint intervals, so every rejoin exercises the
    bootstrap-from-checkpoint path and the driver's memory-bound and
    O(delta)-rejoin verdicts are meaningful. Same liveness envelope as
    {!generate}. *)

val generate_elastic : seed:int -> t
(** Elastic-topology generator (DESIGN.md §15): a 4-group pool with 2
    deployment-time shards, and 1–2 shard splits/merges per
    crash/restart round timed to overlap the down window — so crashes
    land mid-split, between the freeze and the bootstrap, as often as
    possible — plus occasional object migrations interleaving override
    and table epochs. Same liveness envelope as {!generate}. *)

val validate : t -> (unit, string) result
(** Well-formedness (shape, ranges, sortedness, crash/restart
    alternation per replica, index 0 never crashed). Holds for
    generated schedules; shrunk subsets may legitimately leave a
    replica down forever but still satisfy this. *)

val to_json : t -> Heron_obs.Json.t
val of_json : Heron_obs.Json.t -> (t, string) result
(** Inverses: [of_json (to_json s) = Ok (normalize s)]. *)

val save : t -> file:string -> unit
val load : file:string -> (t, string) result

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
