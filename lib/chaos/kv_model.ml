open Heron_kv
module Lincheck = Heron_lincheck.Lincheck

let apply state req =
  let get k = List.nth state k in
  let set k v = List.mapi (fun i x -> if i = k then v else x) state in
  match req with
  | Kv_app.Get k -> (state, Kv_app.Value (get k))
  | Kv_app.Put (k, v) -> (set k v, Kv_app.Ack)
  | Kv_app.Add (k, d) ->
      let v = Int64.add (get k) d in
      (set k v, Kv_app.Value v)
  | Kv_app.Transfer { src; dst; amount } ->
      let s = set src (Int64.sub (get src) amount) in
      let s = List.mapi (fun i x -> if i = dst then Int64.add (get dst) amount else x) s in
      (s, Kv_app.Ack)
  | Kv_app.Incr_all ks ->
      (List.mapi (fun i x -> if List.mem i ks then Int64.add x 1L else x) state, Kv_app.Ack)
  | Kv_app.Read_all ks -> (state, Kv_app.Values (List.map (fun k -> (k, get k)) ks))

let spec ~keys ~init : (Kv_app.req, Kv_app.resp, int64 list) Lincheck.spec =
  { Lincheck.initial = List.init keys (fun _ -> init); apply; equal_result = ( = ) }

let pp_keys ppf ks =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
    Format.pp_print_int ppf ks

let pp_op ppf = function
  | Kv_app.Get k -> Format.fprintf ppf "get k=%d" k
  | Kv_app.Put (k, v) -> Format.fprintf ppf "put k=%d v=%Ld" k v
  | Kv_app.Add (k, d) -> Format.fprintf ppf "add k=%d d=%Ld" k d
  | Kv_app.Transfer { src; dst; amount } ->
      Format.fprintf ppf "transfer %d->%d %Ld" src dst amount
  | Kv_app.Incr_all ks -> Format.fprintf ppf "incr_all %a" pp_keys ks
  | Kv_app.Read_all ks -> Format.fprintf ppf "read_all %a" pp_keys ks

let pp_result = Kv_app.pp_resp
