(** Sequential specification of {!Heron_kv.Kv_app} for linearizability
    checking of chaos histories: the pure model the recorded concurrent
    history must be explainable by. State is the value of every key. *)

open Heron_kv

val spec :
  keys:int -> init:int64 -> (Kv_app.req, Kv_app.resp, int64 list) Heron_lincheck.Lincheck.spec

val pp_op : Format.formatter -> Kv_app.req -> unit
(** Compact rendering for counterexample output ([put k=3 v=7],
    [incr_all 0,1], ...). *)

val pp_result : Format.formatter -> Kv_app.resp -> unit
