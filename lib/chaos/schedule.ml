module Json = Heron_obs.Json

type event =
  | Crash of { part : int; idx : int; at : int }
  | Restart of { part : int; idx : int; at : int }
  | Delay_link of { src : int * int; dst : int * int; extra_ns : int; at : int; span : int }
  | Drop_writes of { src : int * int; dst : int * int; at : int; span : int }
  | Pause_replica of { part : int; idx : int; extra_ns : int; at : int; span : int }
  | Migrate of { key : int; dst : int; at : int }
      (* live-migrate one key to partition [dst]; the source is resolved
         from the placement directory at fire time, and the injection is
         skipped if the key already lives there *)
  | Split of { shard : int; at : int }
      (* split a shard of the elastic table (DESIGN.md §15); [shard] is
         reduced modulo the table's size at fire time, so a pinned
         schedule stays meaningful whatever earlier splits/merges did *)
  | Merge of { left : int; at : int }
      (* merge the adjacent pair at [left mod (size - 1)]; skipped if
         the table is down to one shard at fire time *)

type workload = Incr_all | Mixed

type t = {
  sc_seed : int;
  sc_partitions : int;
  sc_replicas : int;
  sc_keys : int;
  sc_clients : int;
  sc_ops : int;
  sc_workload : workload;
  sc_horizon_ns : int;
  sc_think_ns : int;
  sc_shards : int;
      (* deployment-time shards of the elastic topology; 0 (the
         default, and what pre-topology pins decode to) runs with the
         topology off *)
  sc_events : event list;
}

let default_horizon_ns = 60_000_000

let event_time = function
  | Crash { at; _ } | Restart { at; _ } | Delay_link { at; _ }
  | Drop_writes { at; _ } | Pause_replica { at; _ } | Migrate { at; _ }
  | Split { at; _ } | Merge { at; _ } ->
      at

let event_end = function
  | Crash { at; _ } | Restart { at; _ } | Migrate { at; _ }
  | Split { at; _ } | Merge { at; _ } ->
      at
  | Delay_link { at; span; _ } | Drop_writes { at; span; _ }
  | Pause_replica { at; span; _ } ->
      at + span

let normalize t =
  { t with
    sc_events =
      List.stable_sort (fun a b -> compare (event_time a) (event_time b)) t.sc_events }

(* {1 Generation} *)

(* All generator randomness comes from one private stream so the
   mapping seed -> schedule is stable across runs and machines. *)
let generate ~seed =
  let rng = Random.State.make [| seed; 0xC1A05 |] in
  let int = Random.State.int rng in
  let partitions = 2 and replicas = 3 in
  let workload = if int 2 = 0 then Incr_all else Mixed in
  (* Crash/restart rounds: strictly sequential in time, follower
     indices only, so at most one replica is ever down and the
     multicast leader (index 0) never moves. Times are dense in the
     first few milliseconds, while client traffic is in flight — a
     crash after traffic drains exercises nothing. *)
  let rounds = 1 + int 4 in
  let events = ref [] in
  let t = ref 0 in
  let first_crash = ref max_int in
  for _ = 1 to rounds do
    let crash_at = !t + 150_000 + int 850_000 in
    let restart_at = crash_at + 250_000 + int 950_000 in
    let part = int partitions and idx = 1 + int (replicas - 1) in
    if !first_crash = max_int then first_crash := crash_at;
    events := Restart { part; idx; at = restart_at } :: Crash { part; idx; at = crash_at } :: !events;
    t := restart_at
  done;
  (* Laggers: slow a replica's execution for a bounded span. *)
  for _ = 1 to int 3 do
    events :=
      Pause_replica
        { part = int partitions; idx = int replicas;
          extra_ns = 5_000 + int 25_000; at = int 4_000_000;
          span = 200_000 + int 1_800_000 }
      :: !events
  done;
  (* Link latency on distinct directed links (overlapping faults on one
     link would clobber each other's spans). *)
  let used_links = ref [] in
  let pick_link ~cross_only =
    let rec go tries =
      if tries = 0 then None
      else
        let src = (int partitions, int replicas) in
        let dst = (int partitions, int replicas) in
        if src = dst
           || (cross_only && fst src = fst dst)
           || List.mem (src, dst) !used_links
        then go (tries - 1)
        else begin
          used_links := (src, dst) :: !used_links;
          Some (src, dst)
        end
    in
    go 8
  in
  for _ = 1 to int 3 do
    match pick_link ~cross_only:false with
    | None -> ()
    | Some (src, dst) ->
        events :=
          Delay_link
            { src; dst; extra_ns = 2_000 + int 40_000; at = int 4_000_000;
              span = 200_000 + int 1_800_000 }
          :: !events
  done;
  (* One drop fault, cross-partition, ending before the first crash:
     with every replica up, losing one replica's announcements still
     leaves a majority, so the run cannot wedge. Intra-partition drops
     are excluded — they can eat a state-transfer completion notice,
     which (unlike coordination) has no majority to fall back on. *)
  if int 2 = 0 && !first_crash > 220_000 then begin
    let span = 100_000 + int (min 400_000 (!first_crash - 120_000)) in
    let at = int (!first_crash - span - 10_000) in
    match pick_link ~cross_only:true with
    | None -> ()
    | Some (src, dst) -> events := Drop_writes { src; dst; at; span } :: !events
  end;
  (* Live repartitioning: occasionally migrate keys mid-run so placement
     changes race crashes, restarts, laggers and client traffic. Drawn
     after every earlier event so older seeds keep their fault pattern. *)
  for _ = 1 to int 3 do
    events :=
      Migrate { key = int 4; dst = int partitions; at = 150_000 + int 4_000_000 }
      :: !events
  done;
  normalize
    {
      sc_seed = seed;
      sc_partitions = partitions;
      sc_replicas = replicas;
      sc_keys = 4;
      sc_clients = 3;
      sc_ops = 40;
      sc_workload = workload;
      sc_horizon_ns = default_horizon_ns;
      sc_think_ns = 0;
      sc_shards = 0;
      sc_events = !events;
    }

(* Reconfig-focused generator: every schedule carries migrations, and
   their times cluster around the crash/restart windows so a crash lands
   during an in-flight migration as often as possible (the sweep the CI
   reconfig job runs). *)
let generate_reconfig ~seed =
  let rng = Random.State.make [| seed; 0x4EC0F |] in
  let int = Random.State.int rng in
  let partitions = 2 and replicas = 3 in
  let workload = if int 3 = 0 then Incr_all else Mixed in
  let events = ref [] in
  let t = ref 0 in
  let rounds = 1 + int 2 in
  for _ = 1 to rounds do
    let crash_at = !t + 200_000 + int 900_000 in
    let restart_at = crash_at + 250_000 + int 950_000 in
    let part = int partitions and idx = 1 + int (replicas - 1) in
    events :=
      Restart { part; idx; at = restart_at }
      :: Crash { part; idx; at = crash_at }
      :: !events;
    (* One or two migrations inside [crash - 200us, restart + 300us]. *)
    for _ = 1 to 1 + int 2 do
      let at = max 0 (crash_at - 200_000 + int (restart_at - crash_at + 500_000)) in
      events := Migrate { key = int 4; dst = int partitions; at } :: !events
    done;
    t := restart_at
  done;
  if int 2 = 0 then
    events :=
      Pause_replica
        { part = int partitions; idx = int replicas;
          extra_ns = 5_000 + int 25_000; at = int 3_000_000;
          span = 200_000 + int 1_800_000 }
      :: !events;
  normalize
    {
      sc_seed = seed;
      sc_partitions = partitions;
      sc_replicas = replicas;
      sc_keys = 4;
      sc_clients = 3;
      sc_ops = 40;
      sc_workload = workload;
      sc_horizon_ns = default_horizon_ns;
      sc_think_ns = 0;
      sc_shards = 0;
      sc_events = !events;
    }

(* Longhaul generator (DESIGN.md §13): minutes of virtual time per run
   instead of milliseconds, client traffic paced with think time so it
   spans the whole horizon, and repeated crash/rejoin/migrate cycles
   spaced tens of virtual seconds apart. Between cycles the durability
   layer (which the driver switches on for this family) checkpoints
   many times, so every rejoin lands long after log prefixes were
   truncated — the regime where bootstrap-from-checkpoint is the only
   correct recovery path. A ~100-seed sweep covers about a day of
   virtual time in aggregate. *)
let generate_longhaul ~seed =
  let rng = Random.State.make [| seed; 0x10_46A |] in
  (* [Random.State.int] caps its bound at 2^30; second-scale nanosecond
     spans need [full_int]. *)
  let int = Random.State.full_int rng in
  let partitions = 2 and replicas = 3 in
  let workload = if int 4 = 0 then Incr_all else Mixed in
  let cycles = 8 + int 13 in
  let period () = 30_000_000_000 + int 30_000_000_000 in
  let events = ref [] in
  let t = ref (period ()) in
  for _ = 1 to cycles do
    let crash_at = !t in
    let down = 50_000_000 + int 450_000_000 in
    let restart_at = crash_at + down in
    let part = int partitions and idx = 1 + int (replicas - 1) in
    events :=
      Restart { part; idx; at = restart_at }
      :: Crash { part; idx; at = crash_at }
      :: !events;
    (* Migrations racing the down window (and its borders), so
       checkpoint/truncate runs concurrently with the §10 freeze. *)
    for _ = 1 to int 3 do
      let at = max 0 (crash_at - 1_000_000_000 + int (down + 2_000_000_000)) in
      events := Migrate { key = int 4; dst = int partitions; at } :: !events
    done;
    (* Occasional lagger between cycles: the slow replica's published
       frontier holds everyone's truncation back, bounding it anyway. *)
    if int 4 = 0 then
      events :=
        Pause_replica
          { part = int partitions; idx = int replicas;
            extra_ns = 5_000 + int 25_000;
            at = restart_at + 2_000_000_000 + int 10_000_000_000;
            span = 1_000_000_000 + int 4_000_000_000 }
        :: !events;
    t := restart_at + period ()
  done;
  let horizon = !t + 10_000_000_000 in
  let ops = 100 + int 80 in
  (* Pace clients to finish around 85% of the horizon. *)
  let think = horizon * 85 / (100 * ops) in
  normalize
    {
      sc_seed = seed;
      sc_partitions = partitions;
      sc_replicas = replicas;
      sc_keys = 4;
      sc_clients = 3;
      sc_ops = ops;
      sc_workload = workload;
      sc_horizon_ns = horizon;
      sc_think_ns = think;
      sc_shards = 0;
      sc_events = !events;
    }

(* Elastic-focused generator (DESIGN.md §15): every schedule runs with
   the topology on — a 4-group pool with 2 deployment-time shards — and
   carries shard splits and merges whose times cluster around the
   crash/restart windows, so a crash lands while a split's freeze or
   bootstrap is in flight as often as possible (the crash-mid-split
   sweep the CI elastic job runs). Stays inside the f = 1 envelope:
   follower-only crashes, one replica down at a time. *)
let generate_elastic ~seed =
  let rng = Random.State.make [| seed; 0xE1A57 |] in
  let int = Random.State.int rng in
  let partitions = 4 and replicas = 3 and keys = 8 in
  let workload = if int 3 = 0 then Incr_all else Mixed in
  let events = ref [] in
  let t = ref 0 in
  let rounds = 1 + int 2 in
  for _ = 1 to rounds do
    let crash_at = !t + 200_000 + int 900_000 in
    let restart_at = crash_at + 250_000 + int 950_000 in
    let part = int partitions and idx = 1 + int (replicas - 1) in
    events :=
      Restart { part; idx; at = restart_at }
      :: Crash { part; idx; at = crash_at }
      :: !events;
    (* One or two splits/merges inside [crash - 200us, restart + 300us];
       indices are reduced against the live table at fire time, so any
       draw is meaningful. Splits outnumber merges two to one — a merge
       needs an earlier split to have something to undo. *)
    for _ = 1 to 1 + int 2 do
      let at = max 0 (crash_at - 200_000 + int (restart_at - crash_at + 500_000)) in
      events :=
        (if int 3 < 2 then Split { shard = int 4; at }
         else Merge { left = int 3; at })
        :: !events
    done;
    (* Sometimes an object migration racing the shard ops, so overrides
       and table changes interleave in the epoch stream. *)
    if int 2 = 0 then begin
      let at = max 0 (crash_at - 100_000 + int (restart_at - crash_at + 300_000)) in
      events := Migrate { key = int keys; dst = int partitions; at } :: !events
    end;
    t := restart_at
  done;
  if int 2 = 0 then
    events :=
      Pause_replica
        { part = int partitions; idx = int replicas;
          extra_ns = 5_000 + int 25_000; at = int 3_000_000;
          span = 200_000 + int 1_800_000 }
      :: !events;
  normalize
    {
      sc_seed = seed;
      sc_partitions = partitions;
      sc_replicas = replicas;
      sc_keys = keys;
      sc_clients = 3;
      sc_ops = 40;
      sc_workload = workload;
      sc_horizon_ns = default_horizon_ns;
      sc_think_ns = 0;
      sc_shards = 2;
      sc_events = !events;
    }

(* {1 Validation} *)

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let ok_replica (part, idx) =
    part >= 0 && part < t.sc_partitions && idx >= 0 && idx < t.sc_replicas
  in
  if t.sc_partitions < 1 then err "partitions must be positive"
  else if t.sc_replicas < 3 || t.sc_replicas mod 2 = 0 then
    err "replicas must be odd and at least 3"
  else if t.sc_keys < 2 then err "need at least 2 keys"
  else if t.sc_clients < 1 || t.sc_ops < 1 then err "need clients and ops"
  else if t.sc_horizon_ns < 1_000_000 then err "horizon shorter than 1ms"
  else if t.sc_think_ns < 0 then err "negative think time"
  else if t.sc_shards < 0 || t.sc_shards > t.sc_partitions then
    err "shards out of range (need 0 <= shards <= partitions)"
  else if
    t.sc_shards = 0
    && List.exists
         (function Split _ | Merge _ -> true | _ -> false)
         t.sc_events
  then err "split/merge events require a nonzero shard count"
  else begin
    let bad = ref None in
    let check_event e =
      let fail fmt = Printf.ksprintf (fun s -> if !bad = None then bad := Some s) fmt in
      (match e with
      | Crash { part; idx; at } | Restart { part; idx; at } ->
          if not (ok_replica (part, idx)) then
            fail "replica (%d,%d) out of range" part idx
          else if idx = 0 then fail "crash/restart of index 0 (the multicast leader)"
          else if at < 0 then fail "negative event time"
      | Delay_link { src; dst; extra_ns; at; span } ->
          if not (ok_replica src && ok_replica dst) then fail "link endpoint out of range"
          else if src = dst then fail "link fault with src = dst"
          else if extra_ns < 0 || at < 0 || span < 0 then fail "negative delay parameters"
      | Drop_writes { src; dst; at; span } ->
          if not (ok_replica src && ok_replica dst) then fail "link endpoint out of range"
          else if src = dst then fail "drop fault with src = dst"
          else if at < 0 || span < 0 then fail "negative drop parameters"
      | Pause_replica { part; idx; extra_ns; at; span } ->
          if not (ok_replica (part, idx)) then
            fail "replica (%d,%d) out of range" part idx
          else if extra_ns < 0 || at < 0 || span < 0 then fail "negative pause parameters"
      | Migrate { key; dst; at } ->
          if key < 0 || key >= t.sc_keys then fail "migration key %d out of range" key
          else if dst < 0 || dst >= t.sc_partitions then
            fail "migration destination %d out of range" dst
          else if at < 0 then fail "negative migration time"
      | Split { shard; at } ->
          if shard < 0 then fail "negative split shard index"
          else if at < 0 then fail "negative split time"
      | Merge { left; at } ->
          if left < 0 then fail "negative merge pair index"
          else if at < 0 then fail "negative merge time")
    in
    List.iter check_event t.sc_events;
    let rec sorted = function
      | a :: (b :: _ as rest) -> event_time a <= event_time b && sorted rest
      | _ -> true
    in
    if !bad <> None then Error (Option.get !bad)
    else if not (sorted t.sc_events) then err "events not sorted by time"
    else begin
      (* Per replica, crashes and restarts must alternate starting with
         a crash (a shrunk schedule may end while down). *)
      let down = Hashtbl.create 8 in
      let alternation_ok =
        List.for_all
          (function
            | Crash { part; idx; _ } ->
                if Hashtbl.mem down (part, idx) then false
                else (Hashtbl.add down (part, idx) (); true)
            | Restart { part; idx; _ } ->
                if Hashtbl.mem down (part, idx) then (Hashtbl.remove down (part, idx); true)
                else false
            | _ -> true)
          t.sc_events
      in
      if alternation_ok then Ok () else err "crash/restart events do not alternate"
    end
  end

(* {1 JSON} *)

let replica_fields prefix (part, idx) =
  [ (prefix ^ "_part", Json.Int part); (prefix ^ "_idx", Json.Int idx) ]

let event_to_json = function
  | Crash { part; idx; at } ->
      Json.Obj
        [ ("kind", Json.String "crash"); ("part", Json.Int part);
          ("idx", Json.Int idx); ("at_ns", Json.Int at) ]
  | Restart { part; idx; at } ->
      Json.Obj
        [ ("kind", Json.String "restart"); ("part", Json.Int part);
          ("idx", Json.Int idx); ("at_ns", Json.Int at) ]
  | Delay_link { src; dst; extra_ns; at; span } ->
      Json.Obj
        (( ("kind", Json.String "delay_link") :: replica_fields "src" src )
        @ replica_fields "dst" dst
        @ [ ("extra_ns", Json.Int extra_ns); ("at_ns", Json.Int at);
            ("span_ns", Json.Int span) ])
  | Drop_writes { src; dst; at; span } ->
      Json.Obj
        (( ("kind", Json.String "drop_writes") :: replica_fields "src" src )
        @ replica_fields "dst" dst
        @ [ ("at_ns", Json.Int at); ("span_ns", Json.Int span) ])
  | Pause_replica { part; idx; extra_ns; at; span } ->
      Json.Obj
        [ ("kind", Json.String "pause"); ("part", Json.Int part);
          ("idx", Json.Int idx); ("extra_ns", Json.Int extra_ns);
          ("at_ns", Json.Int at); ("span_ns", Json.Int span) ]
  | Migrate { key; dst; at } ->
      Json.Obj
        [ ("kind", Json.String "migrate"); ("key", Json.Int key);
          ("dst_part", Json.Int dst); ("at_ns", Json.Int at) ]
  | Split { shard; at } ->
      Json.Obj
        [ ("kind", Json.String "split"); ("shard", Json.Int shard);
          ("at_ns", Json.Int at) ]
  | Merge { left; at } ->
      Json.Obj
        [ ("kind", Json.String "merge"); ("left", Json.Int left);
          ("at_ns", Json.Int at) ]

let to_json t =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("seed", Json.Int t.sc_seed);
      ("partitions", Json.Int t.sc_partitions);
      ("replicas", Json.Int t.sc_replicas);
      ("keys", Json.Int t.sc_keys);
      ("clients", Json.Int t.sc_clients);
      ("ops_per_client", Json.Int t.sc_ops);
      ( "workload",
        Json.String (match t.sc_workload with Incr_all -> "incr_all" | Mixed -> "mixed") );
      ("horizon_ns", Json.Int t.sc_horizon_ns);
      ("think_ns", Json.Int t.sc_think_ns);
      ("shards", Json.Int t.sc_shards);
      ("events", Json.List (List.map event_to_json t.sc_events));
    ]

exception Bad of string

let int_field name j =
  match Json.member name j with
  | Some (Json.Int i) -> i
  | _ -> raise (Bad (Printf.sprintf "missing or non-integer field %S" name))

let string_field name j =
  match Json.member name j with
  | Some (Json.String s) -> s
  | _ -> raise (Bad (Printf.sprintf "missing or non-string field %S" name))

(* Optional with default, so version-1 pins from before the field
   existed keep replaying unchanged. *)
let int_field_opt name ~default j =
  match Json.member name j with
  | Some (Json.Int i) -> i
  | Some _ -> raise (Bad (Printf.sprintf "non-integer field %S" name))
  | None -> default

let event_of_json j =
  let link () =
    ( (int_field "src_part" j, int_field "src_idx" j),
      (int_field "dst_part" j, int_field "dst_idx" j) )
  in
  match string_field "kind" j with
  | "crash" -> Crash { part = int_field "part" j; idx = int_field "idx" j; at = int_field "at_ns" j }
  | "restart" ->
      Restart { part = int_field "part" j; idx = int_field "idx" j; at = int_field "at_ns" j }
  | "delay_link" ->
      let src, dst = link () in
      Delay_link
        { src; dst; extra_ns = int_field "extra_ns" j; at = int_field "at_ns" j;
          span = int_field "span_ns" j }
  | "drop_writes" ->
      let src, dst = link () in
      Drop_writes { src; dst; at = int_field "at_ns" j; span = int_field "span_ns" j }
  | "pause" ->
      Pause_replica
        { part = int_field "part" j; idx = int_field "idx" j;
          extra_ns = int_field "extra_ns" j; at = int_field "at_ns" j;
          span = int_field "span_ns" j }
  | "migrate" ->
      Migrate
        { key = int_field "key" j; dst = int_field "dst_part" j;
          at = int_field "at_ns" j }
  | "split" -> Split { shard = int_field "shard" j; at = int_field "at_ns" j }
  | "merge" -> Merge { left = int_field "left" j; at = int_field "at_ns" j }
  | k -> raise (Bad (Printf.sprintf "unknown event kind %S" k))

let of_json j =
  try
    (match Json.member "version" j with
    | Some (Json.Int 1) -> ()
    | _ -> raise (Bad "missing or unsupported schedule version"));
    let events =
      match Json.member "events" j with
      | Some (Json.List l) -> List.map event_of_json l
      | _ -> raise (Bad "missing event list")
    in
    Ok
      (normalize
         {
           sc_seed = int_field "seed" j;
           sc_partitions = int_field "partitions" j;
           sc_replicas = int_field "replicas" j;
           sc_keys = int_field "keys" j;
           sc_clients = int_field "clients" j;
           sc_ops = int_field "ops_per_client" j;
           sc_workload =
             (match string_field "workload" j with
             | "incr_all" -> Incr_all
             | "mixed" -> Mixed
             | w -> raise (Bad (Printf.sprintf "unknown workload %S" w)));
           sc_horizon_ns = int_field_opt "horizon_ns" ~default:default_horizon_ns j;
           sc_think_ns = int_field_opt "think_ns" ~default:0 j;
           sc_shards = int_field_opt "shards" ~default:0 j;
           sc_events = events;
         })
  with Bad msg -> Error msg

let save t ~file =
  let oc = open_out_bin file in
  Json.to_channel oc (to_json t);
  output_char oc '\n';
  close_out oc

let load ~file =
  match
    let ic = open_in_bin file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Json.parse s
  with
  | Ok j -> of_json j
  | Error msg -> Error msg
  | exception Sys_error msg -> Error msg

(* {1 Printing} *)

let pp_event ppf = function
  | Crash { part; idx; at } -> Format.fprintf ppf "@%dus crash p%d/r%d" (at / 1000) part idx
  | Restart { part; idx; at } ->
      Format.fprintf ppf "@%dus restart p%d/r%d" (at / 1000) part idx
  | Delay_link { src = sp, si; dst = dp, di; extra_ns; at; span } ->
      Format.fprintf ppf "@%dus delay p%d/r%d->p%d/r%d +%dns for %dus" (at / 1000) sp si
        dp di extra_ns (span / 1000)
  | Drop_writes { src = sp, si; dst = dp, di; at; span } ->
      Format.fprintf ppf "@%dus drop p%d/r%d->p%d/r%d for %dus" (at / 1000) sp si dp di
        (span / 1000)
  | Pause_replica { part; idx; extra_ns; at; span } ->
      Format.fprintf ppf "@%dus pause p%d/r%d +%dns for %dus" (at / 1000) part idx
        extra_ns (span / 1000)
  | Migrate { key; dst; at } ->
      Format.fprintf ppf "@%dus migrate k%d->p%d" (at / 1000) key dst
  | Split { shard; at } -> Format.fprintf ppf "@%dus split shard %d" (at / 1000) shard
  | Merge { left; at } -> Format.fprintf ppf "@%dus merge pair %d" (at / 1000) left

let pp ppf t =
  Format.fprintf ppf "seed %d, %dx%d, %d clients x %d %s ops, %dms horizon, %d events"
    t.sc_seed t.sc_partitions t.sc_replicas t.sc_clients t.sc_ops
    (match t.sc_workload with Incr_all -> "incr_all" | Mixed -> "mixed")
    (t.sc_horizon_ns / 1_000_000)
    (List.length t.sc_events);
  List.iter (fun e -> Format.fprintf ppf "@.  %a" pp_event e) t.sc_events
