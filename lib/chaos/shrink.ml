module Metrics = Heron_obs.Metrics

let m_steps = Metrics.counter Metrics.default "chaos.shrink_steps"

let reproduces ~pipeline ~durability ~longhaul ~fast_reads sc events ~kind =
  Metrics.incr m_steps;
  match
    Driver.run ~pipeline ~durability ~longhaul ~fast_reads
      { sc with Schedule.sc_events = events }
  with
  | Driver.Failed f -> String.equal (Driver.failure_kind f) kind
  | Driver.Completed _ -> false

(* Split [l] into [n] chunks of near-equal length (first chunks get the
   remainder). *)
let chunks n l =
  let len = List.length l in
  let base = len / n and extra = len mod n in
  let rec go i rest acc =
    if i = n then List.rev acc
    else
      let k = base + if i < extra then 1 else 0 in
      let rec take k l acc = if k = 0 then (List.rev acc, l)
        else match l with [] -> (List.rev acc, []) | x :: tl -> take (k - 1) tl (x :: acc)
      in
      let chunk, rest = take k rest [] in
      go (i + 1) rest (chunk :: acc)
  in
  go 0 l []

let minimize ?(pipeline = false) ?(durability = false) ?(longhaul = false)
    ?(fast_reads = false) sc ~kind =
  let rec ddmin events n =
    let len = List.length events in
    if len <= 1 then events
    else
      let parts = chunks (min n len) events in
      (* Prefer reducing to a complement (drop one chunk); reducing to
         a single chunk is the same move at granularity 2. *)
      let rec try_complements before = function
        | [] -> None
        | chunk :: after ->
            let complement = List.concat (List.rev_append before after) in
            if complement <> [] && reproduces ~pipeline ~durability ~longhaul ~fast_reads sc complement ~kind then
              Some complement
            else try_complements (chunk :: before) after
      in
      match try_complements [] parts with
      | Some smaller -> ddmin smaller (max (min n (List.length smaller)) 2)
      | None -> if n >= len then events else ddmin events (min len (2 * n))
  in
  let events = sc.Schedule.sc_events in
  if events = [] || not (reproduces ~pipeline ~durability ~longhaul ~fast_reads sc events ~kind) then sc
  else { sc with Schedule.sc_events = ddmin events 2 }
