(** Delta-debugging minimization of failing schedules.

    Given a schedule whose {!Driver.run} fails, find a small event
    subset that still produces the {e same kind} of failure (a shrunk
    subset may fail differently — say a removed restart turns a
    divergence into a stall — and such subsets are rejected as
    non-reproducing). Event times and the workload are never changed;
    only events are removed, which is sound because every spanned
    event carries its own cleanup.

    This is Zeller's ddmin: try dropping chunks at increasing
    granularity until no single event can be removed (1-minimality).
    Every candidate run costs one full simulation and increments
    [chaos.shrink_steps]; schedules have tens of events, so a shrink
    is tens of runs. *)

val minimize :
  ?pipeline:bool ->
  ?durability:bool ->
  ?longhaul:bool ->
  ?fast_reads:bool ->
  Schedule.t ->
  kind:string ->
  Schedule.t
(** [minimize sc ~kind] assumes [Driver.run sc] fails with
    [Driver.failure_kind f = kind] and returns the schedule restricted
    to a 1-minimal event subset that still does. If the assumption is
    wrong the input comes back unchanged. [pipeline], [durability],
    [longhaul] and [fast_reads] must match the configuration under
    which the failure was observed — every candidate run replays with
    them. *)
