(** Chaos-schedule interpreter: build a fresh KV deployment, run the
    schedule's client workload while injecting its fault events at
    their virtual times, then judge the run.

    A run fails when the system breaks one of its promises:

    - {b Stalled} — the clients' operations did not all complete within
      a generous virtual-time horizon (generated schedules stay inside
      a liveness envelope, so progress is owed);
    - {b Diverged} — after the run settles, two live replicas of one
      partition disagree on an object's latest version;
    - {b Invariant} — a live replica fails
      {!Heron_core.Replica.check_invariants};
    - {b Not_linearizable} — the recorded client history admits no
      linearization ({!Heron_lincheck.Lincheck}); the detail carries
      the shortest failing prefix.
    - {b Crashed} — an exception escaped the simulated system (an
      assertion or array bound inside protocol code, not the harness);
      the detail carries the exception text.

    Runs are deterministic: same schedule, same outcome, every time —
    which is what makes shrinking and corpus replay possible.

    Injection is defensive so that {e any} event subset (a shrinking
    candidate) stays inside the liveness envelope: a crash is skipped
    if the target is index 0, already dead, or another replica of the
    partition is down or still synchronising state
    ({!Heron_core.Replica.in_recovery}); a restart is skipped if the
    target is alive.
    Metrics: [chaos.schedules_run], [chaos.failures],
    [chaos.injections_skipped]. *)

type failure =
  | Stalled of { completed : int; expected : int }
  | Diverged of { detail : string }
  | Invariant of { part : int; idx : int; detail : string }
  | Not_linearizable of { detail : string }
  | Crashed of { detail : string }

type outcome = Completed of { completed : int } | Failed of failure

val failure_kind : failure -> string
(** Stable one-word tag ([stalled], [diverged], [invariant],
    [not_linearizable], [crashed]) — the shrinker's notion of "the same
    bug". *)

val run : ?pipeline:bool -> Schedule.t -> outcome
(** [run sc] interprets the schedule against a fresh deployment.
    [pipeline] (default false) enables the compartmentalized replica
    pipeline ({!Heron_core.Config.pipeline}, DESIGN.md §12) for the
    run; schedules themselves are config-agnostic, so the same pinned
    corpus replays under both configurations. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_outcome : Format.formatter -> outcome -> unit
