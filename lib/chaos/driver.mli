(** Chaos-schedule interpreter: build a fresh KV deployment, run the
    schedule's client workload while injecting its fault events at
    their virtual times, then judge the run.

    A run fails when the system breaks one of its promises:

    - {b Stalled} — the clients' operations did not all complete within
      a generous virtual-time horizon (generated schedules stay inside
      a liveness envelope, so progress is owed);
    - {b Diverged} — after the run settles, two live replicas of one
      partition disagree on an object's latest version;
    - {b Invariant} — a live replica fails
      {!Heron_core.Replica.check_invariants};
    - {b Not_linearizable} — the recorded client history admits no
      linearization ({!Heron_lincheck.Lincheck}); the detail carries
      the shortest failing prefix.
    - {b Unbounded} — longhaul runs only (DESIGN.md §13): the run
      linearized but the durability layer failed its point — no
      checkpoint or truncation ever happened, a retained log (update or
      multicast) exceeded a few checkpoint intervals' worth of entries,
      or rejoins replayed more than O(delta). Bounds are derived from
      the schedule's own rate (ops, think time, horizon), so they are
      length-independent: a linearly-growing log fails on any
      sufficiently long schedule.
    - {b Crashed} — an exception escaped the simulated system (an
      assertion or array bound inside protocol code, not the harness);
      the detail carries the exception text.

    Runs are deterministic: same schedule, same outcome, every time —
    which is what makes shrinking and corpus replay possible.

    Injection is defensive so that {e any} event subset (a shrinking
    candidate) stays inside the liveness envelope: a crash is skipped
    if the target is index 0, already dead, or another replica of the
    partition is down or still synchronising state
    ({!Heron_core.Replica.in_recovery}); a restart is skipped if the
    target is alive.
    Metrics: [chaos.schedules_run], [chaos.failures],
    [chaos.injections_skipped]. *)

type failure =
  | Stalled of { completed : int; expected : int }
  | Diverged of { detail : string }
  | Invariant of { part : int; idx : int; detail : string }
  | Not_linearizable of { detail : string }
  | Unbounded of { detail : string }
  | Crashed of { detail : string }

type outcome = Completed of { completed : int } | Failed of failure

val failure_kind : failure -> string
(** Stable one-word tag ([stalled], [diverged], [invariant],
    [not_linearizable], [unbounded], [crashed]) — the shrinker's notion
    of "the same bug". *)

val run :
  ?pipeline:bool ->
  ?durability:bool ->
  ?longhaul:bool ->
  ?fast_reads:bool ->
  ?inspect:((Heron_kv.Kv_app.req, Heron_kv.Kv_app.resp) Heron_core.System.t -> unit) ->
  Schedule.t ->
  outcome
(** [run sc] interprets the schedule against a fresh deployment.
    [pipeline] (default false) enables the compartmentalized replica
    pipeline ({!Heron_core.Config.pipeline}, DESIGN.md §12) for the
    run; schedules themselves are config-agnostic, so the same pinned
    corpus replays under both configurations.

    [durability] (default false) switches on checkpointing and
    update-log compaction ({!Heron_core.Config.durability}, DESIGN.md
    §13), with the checkpoint interval scaled so every run sees a few
    hundred rounds regardless of its horizon. Off, the run is
    byte-identical to the pre-durability driver — the refinement suite
    relies on that.

    [longhaul] (default false) marks a long-horizon run: metrics are
    collected in a private registry, the multicast leader liveness
    poll is relaxed in proportion to the horizon (index 0 never
    crashes in generated schedules), and a completed run additionally
    gets the {!Unbounded} flat-memory / O(delta)-rejoin verdict.

    [fast_reads] (default false) enables lease-based local reads
    ({!Heron_core.Config.fast_reads}, DESIGN.md §14): single-partition
    read-only requests are served from a lease-holding replica's local
    store with no multicast round, falling back to the ordered path on
    a lease miss. Like [pipeline], this is a deployment flag rather
    than a schedule field — the same pinned corpus replays under it.
    The linearizability verdict covers the fast path: locally-served
    reads enter the recorded history like any other operation. The
    lease and renewal cadence scale with the schedule horizon (like
    the checkpoint cadence under [durability]) so minutes-long
    longhaul pins replay without a grant multicast every 800us.

    [inspect] runs against the live system after the run settled and
    every other verdict passed — the refinement suite uses it to
    digest final replica state. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_outcome : Format.formatter -> outcome -> unit
