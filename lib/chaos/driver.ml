open Heron_sim
open Heron_rdma
open Heron_core
open Heron_kv
module Lincheck = Heron_lincheck.Lincheck
module Metrics = Heron_obs.Metrics
module S = Schedule

type failure =
  | Stalled of { completed : int; expected : int }
  | Diverged of { detail : string }
  | Invariant of { part : int; idx : int; detail : string }
  | Not_linearizable of { detail : string }
  | Unbounded of { detail : string }
  | Crashed of { detail : string }

type outcome = Completed of { completed : int } | Failed of failure

let failure_kind = function
  | Stalled _ -> "stalled"
  | Diverged _ -> "diverged"
  | Invariant _ -> "invariant"
  | Not_linearizable _ -> "not_linearizable"
  | Unbounded _ -> "unbounded"
  | Crashed _ -> "crashed"

let m_runs = Metrics.counter Metrics.default "chaos.schedules_run"
let m_failures = Metrics.counter Metrics.default "chaos.failures"
let m_skipped = Metrics.counter Metrics.default "chaos.injections_skipped"

let gen_op sc rng =
  match sc.S.sc_workload with
  | S.Incr_all -> Kv_app.Incr_all [ 0; 1 ]
  | S.Mixed -> (
      let keys = sc.S.sc_keys in
      match Random.State.int rng 5 with
      | 0 -> Kv_app.Put (Random.State.int rng keys, Int64.of_int (Random.State.int rng 100))
      | 1 -> Kv_app.Get (Random.State.int rng keys)
      | 2 -> Kv_app.Add (Random.State.int rng keys, 1L)
      | 3 -> Kv_app.Incr_all [ 0; 1 ]
      | _ -> Kv_app.Read_all [ 0; 1 ])

let replica_node sys (part, idx) = Replica.node (System.replica sys ~part ~idx)

(* Schedule one event's injection callbacks. Spanned events install
   their fault at [at] and carry their own cleanup at [at + span], so
   removing the event from a schedule removes both sides. Replicas are
   re-resolved at fire time: a restart replaces the replica object. *)
let inject sys ev =
  let eng = System.engine sys in
  let fab = System.fabric sys in
  let at t f = Engine.schedule ~delay:t eng f in
  match ev with
  | S.Crash { part; idx; at = t } ->
      at t (fun () ->
          let node = replica_node sys (part, idx) in
          (* Peers must be alive AND fully synchronised: a replica mid
             state-transfer has not yet adopted suffixes its peers
             acknowledged under Phase 4's grace, so its peers are not
             expendable yet (see {!Replica.in_recovery}). *)
          let peers_ready =
            let ok = ref true in
            Array.iteri
              (fun i r ->
                if
                  i <> idx
                  && ((not (Fabric.is_alive (Replica.node r)))
                     || Replica.in_recovery r)
                then ok := false)
              (System.replicas sys).(part);
            !ok
          in
          if idx > 0 && Fabric.is_alive node && peers_ready then Fabric.crash node
          else Metrics.incr m_skipped)
  | S.Restart { part; idx; at = t } ->
      at t (fun () ->
          if not (Fabric.is_alive (replica_node sys (part, idx))) then
            Engine.spawn ~name:"chaos-restart" eng (fun () ->
                System.restart_replica sys ~part ~idx)
          else Metrics.incr m_skipped)
  | S.Delay_link { src; dst; extra_ns; at = t; span } ->
      at t (fun () ->
          let src = Fabric.node_id (replica_node sys src)
          and dst = Fabric.node_id (replica_node sys dst) in
          Fabric.set_link_fault fab ~src ~dst ~extra_ns ());
      at (t + span) (fun () ->
          let src = Fabric.node_id (replica_node sys src)
          and dst = Fabric.node_id (replica_node sys dst) in
          Fabric.clear_link_fault fab ~src ~dst)
  | S.Drop_writes { src; dst; at = t; span } ->
      at t (fun () ->
          let src = Fabric.node_id (replica_node sys src)
          and dst = Fabric.node_id (replica_node sys dst) in
          Fabric.set_link_fault fab ~src ~dst ~drop:true ());
      at (t + span) (fun () ->
          let src = Fabric.node_id (replica_node sys src)
          and dst = Fabric.node_id (replica_node sys dst) in
          Fabric.clear_link_fault fab ~src ~dst)
  | S.Pause_replica { part; idx; extra_ns; at = t; span } ->
      at t (fun () -> Replica.inject_exec_delay (System.replica sys ~part ~idx) extra_ns);
      at (t + span) (fun () -> Replica.inject_exec_delay (System.replica sys ~part ~idx) 0)
  | S.Migrate { key; dst; at = t } ->
      at t (fun () ->
          (* The migration client blocks on per-partition acks, so it
             runs on its own node; skipped moves (already home, another
             migration in flight, no live source) count like any other
             no-op injection. *)
          let node = System.new_client_node sys ~name:"chaos-mig" in
          Fabric.spawn_on node (fun () ->
              match
                Heron_reconfig.Migration.migrate sys ~from:node
                  ~oids:[ Kv_app.oid_of_key key ] ~dst
              with
              | Ok () -> ()
              | Error _ -> Metrics.incr m_skipped))
  | S.Split { shard; at = t } ->
      at t (fun () ->
          (* Indices are reduced against the live table at fire time:
             pinned schedules stay meaningful whatever earlier shard ops
             did. An impossible split (topology off, arc too narrow,
             pool exhausted, orchestrator busy) is skipped and counted
             like any other no-op injection. *)
          let node = System.new_client_node sys ~name:"chaos-split" in
          Fabric.spawn_on node (fun () ->
              match Placement.shards (System.directory sys) with
              | None -> Metrics.incr m_skipped
              | Some sm -> (
                  let shard = shard mod Heron_topology.Shard_map.count sm in
                  match Heron_reconfig.Elastic.split sys ~from:node ~shard with
                  | Ok _ -> ()
                  | Error _ -> Metrics.incr m_skipped)))
  | S.Merge { left; at = t } ->
      at t (fun () ->
          let node = System.new_client_node sys ~name:"chaos-merge" in
          Fabric.spawn_on node (fun () ->
              match Placement.shards (System.directory sys) with
              | Some sm when Heron_topology.Shard_map.count sm >= 2 -> (
                  let left = left mod (Heron_topology.Shard_map.count sm - 1) in
                  match Heron_reconfig.Elastic.merge sys ~from:node ~left with
                  | Ok _ -> ()
                  | Error _ -> Metrics.incr m_skipped)
              | _ -> Metrics.incr m_skipped))

let divergence sys =
  let problem = ref None in
  let note fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  Array.iteri
    (fun p row ->
      let live =
        Array.to_list row |> List.filter (fun r -> Fabric.is_alive (Replica.node r))
      in
      match live with
      | [] -> note "partition %d has no live replicas" p
      | first :: rest ->
          List.iter
            (fun r ->
              List.iter
                (fun oid ->
                  let va, ta = Versioned_store.get (Replica.store first) oid in
                  let vb, tb = Versioned_store.get (Replica.store r) oid in
                  if not (Bytes.equal va vb) then
                    note
                      "partition %d: replica %d disagrees with replica %d on oid %d \
                       (%Ld@%s applied %s vs %Ld@%s applied %s)"
                      p (Replica.idx r) (Replica.idx first) (Oid.to_int oid)
                      (Bytes.get_int64_le vb 0)
                      (Format.asprintf "%a" Heron_multicast.Tstamp.pp tb)
                      (Format.asprintf "%a" Heron_multicast.Tstamp.pp
                         (Replica.last_req r))
                      (Bytes.get_int64_le va 0)
                      (Format.asprintf "%a" Heron_multicast.Tstamp.pp ta)
                      (Format.asprintf "%a" Heron_multicast.Tstamp.pp
                         (Replica.last_req first)))
                (Versioned_store.registered_oids (Replica.store first)))
            rest)
    (System.replicas sys);
  !problem

(* Longhaul verdict (DESIGN.md §13): a run that linearizes but whose
   logs grew with history, or whose rejoins replayed O(history), failed
   the durability layer's whole point. Bounds are derived from the
   schedule itself: with traffic paced across the horizon, one
   checkpoint interval sees about [total ops x interval / horizon]
   updates, and both retained-log footprints and per-rejoin replay must
   stay within a few intervals' worth — independent of run length —
   while the non-durable baseline grows linearly with it. *)
let check_bounded sys cfg sc =
  let reg = cfg.Config.metrics in
  let snap = Metrics.snapshot reg in
  let counter name =
    match Metrics.find snap name with Some (Metrics.Counter_v v) -> v | _ -> 0
  in
  let hist_max name =
    match Metrics.find snap name with
    | Some (Metrics.Histogram_v h) -> h.Metrics.hs_max
    | _ -> 0
  in
  let interval = cfg.Config.durability.Config.dur_interval_ns in
  let expected = sc.S.sc_clients * sc.S.sc_ops in
  let per_window = expected * interval / sc.S.sc_horizon_ns in
  let len_bound = 48 + (8 * per_window) in
  let mcast_bound = 2 * len_bound in
  let restarts =
    List.length
      (List.filter (function S.Restart _ -> true | _ -> false) sc.S.sc_events)
  in
  let problem = ref None in
  let note fmt =
    Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt
  in
  if counter "durability.checkpoints" = 0 then
    note "no checkpoints were taken over a %dms horizon"
      (sc.S.sc_horizon_ns / 1_000_000);
  if counter "durability.truncated_entries" = 0 then
    note "no update-log entries were ever truncated: memory is unbounded";
  Array.iteri
    (fun p row ->
      Array.iteri
        (fun i r ->
          if Fabric.is_alive (Replica.node r) then begin
            let len = Update_log.length (Replica.update_log r) in
            if len > len_bound then
              note "p%d/r%d final update log holds %d entries (bound %d)" p i len
                len_bound;
            let retained =
              Heron_multicast.Ramcast.log_retained (System.multicast sys) ~gid:p
                ~idx:i
            in
            if retained > mcast_bound then
              note "p%d/r%d retains %d multicast log entries (bound %d)" p i
                retained mcast_bound
          end)
        row)
    (System.replicas sys);
  let lmax = hist_max "durability.log_len" in
  if lmax > len_bound then
    note "update log peaked at %d entries across checkpoints (bound %d)" lmax
      len_bound;
  let mmax = hist_max "durability.mcast_log_len" in
  if mmax > mcast_bound then
    note "multicast log peaked at %d retained entries (bound %d)" mmax mcast_bound;
  let replayed = counter "mcast.rejoin_replayed" in
  if restarts > 0 && replayed > restarts * len_bound then
    note "%d rejoins replayed %d multicast entries total (O(delta) bound %d each)"
      restarts replayed (restarts * len_bound);
  !problem

let run_exn ?(pipeline = false) ?(durability = false) ?(longhaul = false)
    ?(fast_reads = false) ?inspect sc =
  let eng = Engine.create ~seed:sc.S.sc_seed () in
  let horizon = sc.S.sc_horizon_ns in
  let base =
    Config.default ~partitions:sc.S.sc_partitions ~replicas:sc.S.sc_replicas
  in
  let cfg =
    {
      base with
      reconfig = { Config.enabled = true };
      (* The elastic topology rides in the schedule itself (unlike the
         deployment flags below): a pinned crash-mid-split JSON must
         replay with the same shard table wherever it runs, and
         pre-topology pins decode to [sc_shards = 0] — topology off,
         behavior-identical to the system that pinned them. *)
      topology =
        (if sc.S.sc_shards > 0 then
           { Config.topo_enabled = true; topo_shards = sc.S.sc_shards }
         else Config.default_topology);
      (* Schedules are config-agnostic: the same pinned JSON replays
         under both the classic loop and the compartmentalized pipeline
         (DESIGN.md §12), so the corpus doubles as a pipeline corpus. *)
      pipeline =
        (if pipeline then
           { Config.default_pipeline with Config.pipe_enabled = true }
         else Config.default_pipeline);
      (* Like [pipeline]: fast reads are a deployment flag, not a
         schedule field, so the pinned corpus replays with leases on
         without touching the JSON. Reads taking the local-lease path
         still feed the same linearizability history. The lease cadence
         scales with the horizon like the checkpoint cadence below:
         every grant is a multicast, so renewing every 800us across a
         minutes-long longhaul schedule would swamp the event count —
         a few hundred grant rounds per run is enough lease churn. *)
      fast_reads =
        (if fast_reads then
           { Config.default_fast_reads with
             Config.fr_enabled = true;
             fr_lease_ns =
               max Config.default_fast_reads.Config.fr_lease_ns (horizon / 256);
             fr_renew_ns =
               max Config.default_fast_reads.Config.fr_renew_ns (horizon / 640);
           }
         else Config.default_fast_reads);
      durability =
        (if durability then
           { Config.dur_enabled = true;
             (* Scale the checkpoint cadence to the horizon: a few
                hundred checkpoint rounds per run, whatever its length. *)
             dur_interval_ns =
               max Config.default_durability.Config.dur_interval_ns
                 (horizon / 256) }
         else Config.default_durability);
      (* Longhaul runs read this run's own metrics for their verdict,
         so they must not share the process-wide aggregating registry;
         the leader liveness poll is also relaxed — index 0 never
         crashes in generated schedules, and sub-millisecond polling
         across minutes of virtual time would dominate the event
         count. *)
      metrics = (if longhaul then Metrics.create () else base.Config.metrics);
      mcast =
        (if longhaul then
           { base.Config.mcast with
             Heron_multicast.Ramcast.leader_check_ns =
               max base.Config.mcast.Heron_multicast.Ramcast.leader_check_ns
                 (horizon / 2048) }
         else base.Config.mcast);
    }
  in
  let sys =
    System.create eng ~cfg
      ~app:(Kv_app.app ~keys:sc.S.sc_keys ~partitions:sc.S.sc_partitions ~init:0L)
  in
  System.start sys;
  let expected = sc.S.sc_clients * sc.S.sc_ops in
  let completed = ref 0 in
  let history = ref [] in
  for c = 0 to sc.S.sc_clients - 1 do
    let node = System.new_client_node sys ~name:(Printf.sprintf "chaos-c%d" c) in
    let rng = Random.State.make [| sc.S.sc_seed; c; 0xC11E |] in
    Fabric.spawn_on node (fun () ->
        for _ = 1 to sc.S.sc_ops do
          let op = gen_op sc rng in
          let t0 = Engine.self_now () in
          let resps = System.submit sys ~from:node op in
          let t1 = Engine.self_now () in
          history :=
            {
              Lincheck.ev_client = c;
              ev_op = op;
              ev_result = snd (List.hd resps);
              ev_invoke = t0;
              ev_return = t1;
            }
            :: !history;
          incr completed;
          if sc.S.sc_think_ns > 0 then Engine.sleep sc.S.sc_think_ns
        done)
  done;
  List.iter (inject sys) sc.S.sc_events;
  (* Advance in short steps so a finished run does not simulate the
     whole horizon's worth of failure-detector polling. *)
  let step = max (Time_ns.ms 2) (horizon / 512) in
  let debug = Sys.getenv_opt "CHAOS_DEBUG" <> None in
  while !completed < expected && Engine.now eng < horizon do
    Engine.run_for eng step;
    if debug then begin
      Printf.eprintf "t=%dus completed=%d\n" (Engine.now eng / 1000) !completed;
      Array.iteri
        (fun p row ->
          Array.iteri
            (fun i r ->
              Printf.eprintf "  p%d/r%d alive=%b last_req=%s applied_log=%s lag=%d srv=%d\n"
                p i
                (Fabric.is_alive (Replica.node r))
                (Format.asprintf "%a" Heron_multicast.Tstamp.pp (Replica.last_req r))
                (Format.asprintf "%a" Heron_multicast.Tstamp.pp
                   (Update_log.last_tmp (Replica.update_log r)))
                (Replica.stats r).Replica.st_laggers
                (Replica.stats r).Replica.st_transfers_served)
            row)
        (System.replicas sys);
      for g = 0 to sc.S.sc_partitions - 1 do
        prerr_string (Heron_multicast.Ramcast.debug_state (System.multicast sys) ~gid:g)
      done
    end
  done;
  if !completed < expected then
    Failed (Stalled { completed = !completed; expected })
  else begin
      (* Settle: let every scheduled fault expire and any in-flight
         recovery finish, then clear leftovers (a shrunk schedule may
         have lost a cleanup edge) and judge the quiescent system. *)
      let last_end = List.fold_left (fun a e -> max a (S.event_end e)) 0 sc.S.sc_events in
      Engine.run_until eng (max (Engine.now eng) last_end);
      Fabric.clear_all_link_faults (System.fabric sys);
      Array.iter
        (fun row -> Array.iter (fun r -> Replica.inject_exec_delay r 0) row)
        (System.replicas sys);
      Engine.run_for eng (Time_ns.ms 15);
      (* With durability on, let a couple more checkpoint rounds land so
         the final truncation frontier reflects the drained traffic —
         the longhaul verdict's final-log-length bounds assume it. *)
      if durability then
        Engine.run_for eng (3 * cfg.Config.durability.Config.dur_interval_ns);
      match divergence sys with
      | Some detail -> Failed (Diverged { detail })
      | None -> (
          let invariant_breach = ref None in
          Array.iter
            (fun row ->
              Array.iter
                (fun r ->
                  if !invariant_breach = None && Fabric.is_alive (Replica.node r) then
                    match Replica.check_invariants r with
                    | Ok () -> ()
                    | Error detail ->
                        invariant_breach :=
                          Some (Invariant { part = Replica.part r; idx = Replica.idx r; detail }))
                row)
            (System.replicas sys);
          match !invariant_breach with
          | Some f -> Failed f
          | None -> (
              let spec = Kv_model.spec ~keys:sc.S.sc_keys ~init:0L in
              match
                Lincheck.counterexample_free ~pp_op:Kv_model.pp_op
                  ~pp_result:Kv_model.pp_result spec (List.rev !history)
              with
              | Error detail -> Failed (Not_linearizable { detail })
              | Ok () -> (
                  (match inspect with Some f -> f sys | None -> ());
                  if not longhaul then Completed { completed = !completed }
                  else
                    match check_bounded sys cfg sc with
                    | Some detail -> Failed (Unbounded { detail })
                    | None -> Completed { completed = !completed })))
  end

let run ?(pipeline = false) ?(durability = false) ?(longhaul = false)
    ?(fast_reads = false) ?inspect sc =
  Metrics.incr m_runs;
  let verdict =
    (* An exception out of the event loop is protocol code breaking (an
       assert, an array bound), not the harness: capture it as a
       failure so it can be shrunk and pinned like any other. *)
    try run_exn ~pipeline ~durability ~longhaul ~fast_reads ?inspect sc
    with e -> Failed (Crashed { detail = Printexc.to_string e })
  in
  (match verdict with Failed _ -> Metrics.incr m_failures | Completed _ -> ());
  verdict

let pp_failure ppf = function
  | Stalled { completed; expected } ->
      Format.fprintf ppf "stalled: %d of %d operations completed" completed expected
  | Diverged { detail } -> Format.fprintf ppf "diverged: %s" detail
  | Invariant { part; idx; detail } ->
      Format.fprintf ppf "invariant breach on p%d/r%d: %s" part idx detail
  | Not_linearizable { detail } -> Format.fprintf ppf "not linearizable: %s" detail
  | Unbounded { detail } -> Format.fprintf ppf "unbounded: %s" detail
  | Crashed { detail } -> Format.fprintf ppf "crashed: %s" detail

let pp_outcome ppf = function
  | Completed { completed } -> Format.fprintf ppf "ok (%d operations)" completed
  | Failed f -> pp_failure ppf f
