(** Timestamped atomic multicast over the simulated RDMA fabric.

    This is the repository's substitute for RamCast (Le et al.,
    Middleware'21), the protocol Heron uses to order requests within and
    across partitions. Process groups are disjoint and each group has
    [n = 2f + 1] members. The protocol is Skeen's algorithm made
    fault-tolerant with per-group leaders:

    + a client writes the message to the leader of every destination
      group (and, when failover support is on, to the followers too, as
      RamCast does);
    + each leader proposes a local logical-clock timestamp and exchanges
      proposals with the other destination groups' leaders;
    + the final timestamp is the maximum proposal; a message is
      dispatched once it is final and minimal among the group's pending
      messages;
    + the leader replicates dispatched messages to its followers in
      delivery order (RC queue pairs keep follower logs in leader
      order) and delivers after a majority of the group has the
      message.

    Guarantees (paper Section II-B): validity, integrity, uniform
    agreement within the failure bound, uniform prefix order and uniform
    acyclic order; delivered timestamps are unique and monotone with
    respect to the delivery order everywhere. Leader failover is
    implemented in a simplified form (see DESIGN.md): followers detect a
    dead leader, the lowest-index live member takes over, synchronises
    the replicated log from a majority, and re-proposes stashed
    messages, reusing the failed leader's own proposal when it reached
    the followers. *)

type config = {
  proc_ns : int;  (** CPU cost of handling one protocol message *)
  submit_hdr_bytes : int;  (** header added to a payload on submit *)
  propose_bytes : int;  (** size of a proposal control write *)
  ack_bytes : int;  (** size of a follower ack *)
  entry_hdr_bytes : int;  (** header added to a replicated log entry *)
  failover : bool;
      (** replicate submits/proposals to followers and run leader
          failure detection; costs extra control writes per message *)
  leader_check_ns : int;  (** follower's leader liveness poll period *)
  resubmit_delay_ns : int;  (** client backoff before retrying a submit *)
  batching : bool;
      (** replicate all entries that become deliverable together in one
          write (and commit-notify them together), amortizing headers
          and per-message processing as RamCast does. Off by default:
          the calibrated latency model assumes per-entry replication. *)
}

val default_config : config
(** Failover support on, 1 us processing, header sizes matching the
    prototype's wire format. *)

type 'a delivery = {
  d_tmp : Tstamp.t;
  d_uid : int;
  d_dst : int list;  (** destination group ids, sorted *)
  d_payload : 'a;
}

type 'a t

val create :
  ?config:config ->
  ?tracing:Heron_obs.Reqtrace.t * ('a -> (int * int) list) ->
  Heron_rdma.Fabric.t ->
  size_of:('a -> int) ->
  groups:Heron_rdma.Fabric.node array array ->
  'a t
(** [create fab ~size_of ~groups] builds a multicast system whose group
    [g] has members [groups.(g)] (index 0 is the initial leader). Nodes
    must be distinct; each group must be non-empty and of odd size.
    [size_of] gives the serialized payload size used for timing.

    [tracing] enables request-scoped causal tracing (DESIGN.md §11):
    the projection reads [(trace id, parent span id)] pairs out of a
    payload — an empty list or zero trace ids for untraced messages,
    one pair per traced request for batched payloads — and each
    destination group's leader emits [mcast.order] (submit arrival to
    final-timestamp decision) and [mcast.commit] (decision to majority
    replication and delivery) spans into the collector, one per pair. *)

val set_deliver : 'a t -> gid:int -> idx:int -> ('a delivery -> unit) -> unit
(** Install the delivery callback of member [idx] of group [gid]. The
    callback runs on the member's node and must not block; push into a
    mailbox for heavy work. Must be called before {!start}. *)

val start : 'a t -> unit
(** Spawn every member's protocol process. *)

val multicast :
  ?slots:int -> 'a t -> from:Heron_rdma.Fabric.node -> dst:int list -> 'a -> int
(** [multicast t ~from ~dst payload] submits a message to the groups in
    [dst] from a fiber running on node [from], blocking until the
    submission reached the (current) leader of every destination group;
    retries through leader changes. Returns the message uid.

    [slots] (default 1) reserves that many consecutive uids for the
    entry: a batched payload carrying [n] requests passes [~slots:n] so
    delivery can mint [n] distinct per-request timestamps
    [(clock, uid + i)] that no other entry can collide with, and that
    sort identically at every destination group. *)

val group_count : 'a t -> int
val members : 'a t -> gid:int -> Heron_rdma.Fabric.node array
val leader_idx : 'a t -> gid:int -> int

val delivered_count : 'a t -> gid:int -> idx:int -> int
(** Messages delivered so far by one member (tests/monitoring). *)

val debug_state : 'a t -> gid:int -> string
(** Multi-line dump of one group's protocol state (leader, per-member
    log and commit-queue positions) for diagnosing stuck runs in the
    chaos harness. *)

val dispatch_horizon : 'a t -> gid:int -> Tstamp.t
(** Timestamp of the newest entry the group's current leader has
    appended to its log ([Tstamp.zero] if none). Monitoring /
    diagnostics: everything a rejoining member must obtain — by log
    sync or by the layer above's state transfer — lies at or before
    this point at the instant of the rejoin. *)

val restart_member : 'a t -> gid:int -> idx:int -> deliver:('a delivery -> unit) -> unit
(** Rejoin a member whose node crashed and was recovered (a process
    restart loses all protocol state): reset its state, install a fresh
    delivery callback, synchronise the replicated log from the current
    leader (as a new leader does on takeover) and respawn its
    processes. Entries the leader had already delivered are re-delivered
    to the fresh callback — the layer above skips those its recovery
    state transfer covers — and in-flight entries are stored and acked
    so they can commit. When the log was compacted ({!compact}), only
    the retained suffix is copied and re-delivered; the compacted
    prefix is owed to the rejoiner by the layer above's checkpoint
    bootstrap. The node must be alive and must not currently be the
    group's leader.
    Metrics: [mcast.rejoin_replayed], [mcast.rejoin_replay_bytes] —
    the per-rejoin replay cost the longhaul suite asserts is O(delta). *)

val quorum : 'a t -> gid:int -> int
(** f + 1 for the group. *)

val compact : 'a t -> gid:int -> upto:Tstamp.t -> int
(** [compact t ~gid ~upto] drops the prefix of the group's replicated
    log that every {e live} member has already delivered and whose
    timestamps are at or below [upto] — the durability layer calls this
    with its update-log truncation frontier (behind every live
    replica's published checkpoint, DESIGN.md §13), so a rejoining
    member can always obtain the dropped prefix from a live donor's
    checkpoint instead of the log. Logical log positions are preserved
    (only the entry memory is freed) and uid dedup state is kept, so
    the cut is invisible to the ordering protocol. Returns the number
    of entries dropped (0 when nothing qualified).
    Metrics: [mcast.compacted_entries]. *)

val log_retained : 'a t -> gid:int -> idx:int -> int
(** Entries currently held in one member's log array (its logical
    length minus the compacted prefix) — the memory-footprint series
    the longhaul suite asserts stays bounded. *)
