open Heron_sim
open Heron_rdma

type config = {
  proc_ns : int;
  submit_hdr_bytes : int;
  propose_bytes : int;
  ack_bytes : int;
  entry_hdr_bytes : int;
  failover : bool;
  leader_check_ns : int;
  resubmit_delay_ns : int;
  batching : bool;
}

let default_config =
  {
    proc_ns = 2_500;
    submit_hdr_bytes = 32;
    propose_bytes = 32;
    ack_bytes = 16;
    entry_hdr_bytes = 48;
    failover = true;
    leader_check_ns = 200_000;
    resubmit_delay_ns = 100_000;
    batching = false;
  }

type 'a delivery = {
  d_tmp : Tstamp.t;
  d_uid : int;
  d_dst : int list;
  d_payload : 'a;
}

type 'a msg_info = { mi_uid : int; mi_dst : int list; mi_payload : 'a; mi_size : int }

type 'a ctrl =
  | Submit of 'a msg_info
  | Propose of { p_uid : int; p_gid : int; p_ts : int }
  | Log_write of { entry : 'a delivery }
  | Log_batch of { entries : 'a delivery list }
  | Ack of { a_uid : int }
  | Commit of { c_uid : int }
  | Commit_batch of { c_uids : int list }

type 'a pending = {
  pn_msg : 'a msg_info;
  mutable pn_ts : int;  (* current max proposal *)
  mutable pn_heard : int list;  (* gids whose proposal we have *)
  mutable pn_final : bool;
  pn_arrived : Time_ns.t;  (* when this leader started proposing *)
}

type 'a commit = {
  cm_entries : 'a delivery list;
  mutable cm_acks : int;
  cm_decided : Time_ns.t;  (* when the entries left the pending set *)
}

type 'a member = {
  m_gid : int;
  m_idx : int;
  m_node : Fabric.node;
  m_inbox : 'a ctrl Mailbox.t;
  m_deliveries : Heron_obs.Metrics.counter;  (* mcast.deliveries, shared *)
  mutable m_deliver : 'a delivery -> unit;
  (* Leader state (maintained lazily; meaningful while this member acts
     as leader, reconstructed on takeover). *)
  mutable m_clock : int;
  m_pending : (int, 'a pending) Hashtbl.t;
  m_early : (int, (int * int) list) Hashtbl.t;  (* uid -> (gid, ts) *)
  m_submits : (int, 'a msg_info) Hashtbl.t;  (* follower stash *)
  m_commits : 'a commit Queue.t;
  m_seen : (int, unit) Hashtbl.t;  (* uids dispatched or delivered here *)
  mutable m_log : 'a delivery array;  (* retained entries, in leader order *)
  mutable m_log_len : int;  (* logical length: compacted + retained *)
  mutable m_log_start : int;  (* logical index of m_log.(0) (compacted prefix) *)
  mutable m_compacted_tmp : Tstamp.t;  (* d_tmp of the last compacted entry *)
  m_committed : (int, unit) Hashtbl.t;  (* uids safe to deliver *)
  mutable m_next_deliver : int;  (* logical index into the log *)
  mutable m_delivered : int;
}

type 'a group = { g_gid : int; g_members : 'a member array; mutable g_leader : int }

type obs = {
  ob_submits : Heron_obs.Metrics.counter;
  ob_rounds : Heron_obs.Metrics.counter;  (* timestamp proposal rounds *)
  ob_takeovers : Heron_obs.Metrics.counter;
  ob_compacted : Heron_obs.Metrics.counter;  (* entries dropped by compact *)
  ob_rejoin_replayed : Heron_obs.Metrics.counter;  (* entries copied on restart *)
  ob_rejoin_bytes : Heron_obs.Metrics.counter;  (* payload bytes of those *)
}

type 'a t = {
  fab : Fabric.t;
  cfg : config;
  size_of : 'a -> int;
  groups : 'a group array;
  links : (int * int, Qp.t) Hashtbl.t;
  obs : obs;
  trc : (Heron_obs.Reqtrace.t * ('a -> (int * int) list)) option;
      (* request-scoped tracing: collector plus a projection reading
         (trace id, parent span id) pairs out of a payload — one pair
         per traced request the payload carries (batches carry many) *)
  mutable next_uid : int;
}

let now t = Engine.now (Fabric.engine t.fab)

(* Emit an ordering-layer span against the payload's request trace, if
   this deployment traces and the payload carries a trace id. *)
let req_span t ~stage ~gid ~start ~stop payload =
  match t.trc with
  | None -> ()
  | Some (col, proj) ->
      List.iter
        (fun (trace, parent) ->
          if trace <> 0 then
            ignore
              (Heron_obs.Reqtrace.add_span col ~trace ~parent ~stage
                 ~attrs:[ ("gid", string_of_int gid) ]
                 ~start stop))
        (proj payload)

(* {1 Control links}

   Control traffic is modelled as a timing-and-failure-correct transfer
   on a cached QP followed by a mailbox send; see Qp.transfer. *)

let link t ~src ~dst =
  let key = (Fabric.node_id src, Fabric.node_id dst) in
  match Hashtbl.find_opt t.links key with
  | Some qp -> qp
  | None ->
      let qp = Qp.connect ~src ~dst in
      Hashtbl.replace t.links key qp;
      qp

(* Blocking control send; raises Qp.Rdma_exception if [dst] is dead. *)
let send_ctrl t ~src ~(dst : 'a member) ~bytes msg =
  Qp.transfer (link t ~src ~dst:dst.m_node) ~bytes_len:bytes;
  Mailbox.send dst.m_inbox msg

(* Fire-and-forget control send from a fiber on [src]. *)
let post_ctrl t ~src ~(dst : 'a member) ~bytes msg =
  Fabric.spawn_on src (fun () ->
      try send_ctrl t ~src ~dst ~bytes msg
      with Qp.Rdma_exception _ -> ())

(* {1 Accessors} *)

let group_count t = Array.length t.groups

let members t ~gid =
  Array.map (fun m -> m.m_node) t.groups.(gid).g_members

let leader_idx t ~gid = t.groups.(gid).g_leader
let delivered_count t ~gid ~idx = t.groups.(gid).g_members.(idx).m_delivered

(* Log indices are logical: physical slot = logical - m_log_start.
   Compaction (see [compact]) drops a delivered-everywhere prefix by
   advancing m_log_start; m_log_len and m_next_deliver keep counting
   from the beginning of time, so all cross-member comparisons are
   unchanged. *)
let log_get (m : 'a member) i = m.m_log.(i - m.m_log_start)
let log_retained_of (m : 'a member) = m.m_log_len - m.m_log_start

let dispatch_horizon t ~gid =
  let g = t.groups.(gid) in
  let lead = g.g_members.(g.g_leader) in
  if lead.m_log_len = 0 then Tstamp.zero
  else if lead.m_log_len = lead.m_log_start then lead.m_compacted_tmp
  else (log_get lead (lead.m_log_len - 1)).d_tmp
let quorum t ~gid = (Array.length t.groups.(gid).g_members / 2) + 1

let debug_state t ~gid =
  let g = t.groups.(gid) in
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "group %d leader=%d\n" gid g.g_leader);
  Array.iter
    (fun m ->
      Buffer.add_string b
        (Printf.sprintf
           "  m%d alive=%b log_len=%d log_start=%d next_deliver=%d delivered=%d \
            pending=%d commits=%d head_acks=%s committed=%d\n"
           m.m_idx
           (Fabric.is_alive m.m_node)
           m.m_log_len m.m_log_start m.m_next_deliver m.m_delivered
           (Hashtbl.length m.m_pending)
           (Queue.length m.m_commits)
           (match Queue.peek_opt m.m_commits with
           | None -> "-"
           | Some c ->
               Printf.sprintf "%d/%d(uid %s)" c.cm_acks
                 (List.length c.cm_entries)
                 (String.concat ","
                    (List.map (fun e -> string_of_int e.d_uid) c.cm_entries)))
           (Hashtbl.length m.m_committed)))
    g.g_members;
  Buffer.contents b

let current_leader t gid =
  let g = t.groups.(gid) in
  g.g_members.(g.g_leader)

let is_leader (t : 'a t) (m : 'a member) = t.groups.(m.m_gid).g_leader = m.m_idx

(* {1 Leader logic} *)

let entry_bytes t (e : 'a delivery) = t.size_of e.d_payload + t.cfg.entry_hdr_bytes

(* Deliver [e] at member [m] exactly once. *)
let deliver_local (m : 'a member) (e : 'a delivery) =
  m.m_delivered <- m.m_delivered + 1;
  Heron_obs.Metrics.incr m.m_deliveries;
  m.m_deliver e

let log_push (m : 'a member) e =
  let phys = log_retained_of m in
  let cap = Array.length m.m_log in
  if phys = cap then begin
    let nlog = Array.make (max 64 (cap * 2)) e in
    Array.blit m.m_log 0 nlog 0 phys;
    m.m_log <- nlog
  end;
  m.m_log.(phys) <- e;
  m.m_log_len <- m.m_log_len + 1

(* Follower: deliver the committed prefix of the accepted log, in
   leader order. *)
let drain_follower (m : 'a member) =
  let continue_ = ref true in
  while !continue_ && m.m_next_deliver < m.m_log_len do
    let e = log_get m m.m_next_deliver in
    if Hashtbl.mem m.m_committed e.d_uid then begin
      Hashtbl.remove m.m_committed e.d_uid;
      m.m_next_deliver <- m.m_next_deliver + 1;
      deliver_local m e
    end
    else continue_ := false
  done

let drain_commits t (m : 'a member) =
  let f = Array.length t.groups.(m.m_gid).g_members / 2 in
  let rec loop () =
    match Queue.peek_opt m.m_commits with
    | Some c when c.cm_acks >= f ->
        ignore (Queue.pop m.m_commits);
        (* Majority replication: decision until the leader's delivery. *)
        List.iter
          (fun e ->
            req_span t ~stage:"mcast.commit" ~gid:m.m_gid ~start:c.cm_decided
              ~stop:(now t) e.d_payload)
          c.cm_entries;
        List.iter (deliver_local m) c.cm_entries;
        (* Followers deliver on this notification, so the leader
           delivers first (as in RamCast). *)
        let notice =
          match c.cm_entries with
          | [ e ] -> Commit { c_uid = e.d_uid }
          | es -> Commit_batch { c_uids = List.map (fun e -> e.d_uid) es }
        in
        Array.iter
          (fun (fo : 'a member) ->
            if fo.m_idx <> m.m_idx then
              post_ctrl t ~src:m.m_node ~dst:fo
                ~bytes:(8 + (8 * List.length c.cm_entries))
                notice)
          t.groups.(m.m_gid).g_members;
        loop ()
    | Some _ | None -> ()
  in
  loop ()

(* Turn a decided pending message into a log entry at the leader. *)
let decide t (m : 'a member) (p : 'a pending) =
  let entry =
    {
      d_tmp = Tstamp.make ~clock:p.pn_ts ~uid:p.pn_msg.mi_uid;
      d_uid = p.pn_msg.mi_uid;
      d_dst = p.pn_msg.mi_dst;
      d_payload = p.pn_msg.mi_payload;
    }
  in
  (* Skeen timestamp agreement: submit arrival at this leader until the
     message left the pending set with its final timestamp. *)
  req_span t ~stage:"mcast.order" ~gid:m.m_gid ~start:p.pn_arrived
    ~stop:(now t) entry.d_payload;
  Hashtbl.replace m.m_seen entry.d_uid ();
  Hashtbl.remove m.m_pending entry.d_uid;
  Hashtbl.remove m.m_early entry.d_uid;
  log_push m entry;
  m.m_next_deliver <- m.m_log_len;
  entry

(* Replicate decided entries to the followers and queue them for local
   delivery once a majority of the group stores them. Without batching,
   one replication write per entry; with batching, every entry that
   became deliverable together travels in one write (amortizing headers
   and per-message processing, as RamCast does). *)
let replicate t (m : 'a member) entries =
  let g = t.groups.(m.m_gid) in
  let send (follower : 'a member) =
    if t.cfg.batching then
      post_ctrl t ~src:m.m_node ~dst:follower
        ~bytes:(List.fold_left (fun acc e -> acc + entry_bytes t e) 16 entries)
        (Log_batch { entries })
    else
      List.iter
        (fun entry ->
          post_ctrl t ~src:m.m_node ~dst:follower ~bytes:(entry_bytes t entry)
            (Log_write { entry }))
        entries
  in
  Array.iter (fun fo -> if fo.m_idx <> m.m_idx then send fo) g.g_members;
  let decided = now t in
  if t.cfg.batching then
    Queue.push { cm_entries = entries; cm_acks = 0; cm_decided = decided } m.m_commits
  else
    List.iter
      (fun e ->
        Queue.push { cm_entries = [ e ]; cm_acks = 0; cm_decided = decided } m.m_commits)
      entries;
  drain_commits t m

(* Dispatch every pending message that is final and minimal by
   (timestamp, uid) among all pending messages of the group. *)
let try_dispatch t (m : 'a member) =
  let min_pending () =
    Hashtbl.fold
      (fun _ p acc ->
        match acc with
        | None -> Some p
        | Some q ->
            if
              p.pn_ts < q.pn_ts
              || (p.pn_ts = q.pn_ts && p.pn_msg.mi_uid < q.pn_msg.mi_uid)
            then Some p
            else acc)
      m.m_pending None
  in
  let rec gather acc =
    match min_pending () with
    | Some p when p.pn_final -> gather (decide t m p :: acc)
    | Some _ | None -> List.rev acc
  in
  match gather [] with [] -> () | entries -> replicate t m entries

let record_proposal (p : 'a pending) ~gid ~ts =
  if not (List.mem gid p.pn_heard) then begin
    p.pn_heard <- gid :: p.pn_heard;
    p.pn_ts <- max p.pn_ts ts
  end

let maybe_finalize t (m : 'a member) (p : 'a pending) =
  if (not p.pn_final) && List.length p.pn_heard = List.length p.pn_msg.mi_dst
  then begin
    p.pn_final <- true;
    m.m_clock <- max m.m_clock p.pn_ts;
    try_dispatch t m
  end

(* Propose a timestamp for [mi] and exchange proposals with the other
   destination groups. [reuse] carries a proposal of a previous leader
   of this group (takeover path) that must be kept for consistency. *)
let propose t (m : 'a member) (mi : 'a msg_info) ~reuse =
  Heron_obs.Metrics.incr t.obs.ob_rounds;
  let ts =
    match reuse with
    | Some ts -> ts
    | None ->
        m.m_clock <- m.m_clock + 1;
        m.m_clock
  in
  m.m_clock <- max m.m_clock ts;
  let p =
    { pn_msg = mi; pn_ts = ts; pn_heard = [ m.m_gid ]; pn_final = false;
      pn_arrived = now t }
  in
  Hashtbl.replace m.m_pending mi.mi_uid p;
  (* Merge proposals that arrived before the submit. *)
  (match Hashtbl.find_opt m.m_early mi.mi_uid with
  | Some props -> List.iter (fun (gid, ts) -> record_proposal p ~gid ~ts) props
  | None -> ());
  let prop = Propose { p_uid = mi.mi_uid; p_gid = m.m_gid; p_ts = ts } in
  List.iter
    (fun gid ->
      if gid <> m.m_gid then begin
        let dst_leader = current_leader t gid in
        post_ctrl t ~src:m.m_node ~dst:dst_leader ~bytes:t.cfg.propose_bytes prop;
        if t.cfg.failover then
          Array.iter
            (fun (f : 'a member) ->
              if f.m_idx <> dst_leader.m_idx then
                post_ctrl t ~src:m.m_node ~dst:f ~bytes:t.cfg.propose_bytes prop)
            t.groups.(gid).g_members
      end)
    mi.mi_dst;
  (* Durably stash our own proposal at our followers so a successor
     leader reuses the same value. *)
  if t.cfg.failover then begin
    let own = Propose { p_uid = mi.mi_uid; p_gid = m.m_gid; p_ts = ts } in
    Array.iter
      (fun (f : 'a member) ->
        if f.m_idx <> m.m_idx then
          post_ctrl t ~src:m.m_node ~dst:f ~bytes:t.cfg.propose_bytes own)
      t.groups.(m.m_gid).g_members
  end;
  maybe_finalize t m p

(* Follower: store a replicated entry; true if it was new. *)
let accept_entry (m : 'a member) entry =
  if Hashtbl.mem m.m_seen entry.d_uid then false
  else begin
    Hashtbl.replace m.m_seen entry.d_uid ();
    Hashtbl.remove m.m_submits entry.d_uid;
    Hashtbl.remove m.m_early entry.d_uid;
    m.m_clock <- max m.m_clock entry.d_tmp.Tstamp.clock;
    log_push m entry;
    true
  end

let stash_early (m : 'a member) ~uid ~gid ~ts =
  let props = Option.value ~default:[] (Hashtbl.find_opt m.m_early uid) in
  if not (List.exists (fun (g, _) -> g = gid) props) then
    Hashtbl.replace m.m_early uid ((gid, ts) :: props)

let handle_ctrl t (m : 'a member) ctrl =
  Engine.consume t.cfg.proc_ns;
  let leader = is_leader t m in
  match ctrl with
  | Submit mi ->
      if Hashtbl.mem m.m_seen mi.mi_uid || Hashtbl.mem m.m_pending mi.mi_uid
      then ()
      else if leader then propose t m mi ~reuse:None
      else Hashtbl.replace m.m_submits mi.mi_uid mi
  | Propose { p_uid; p_gid; p_ts } ->
      m.m_clock <- max m.m_clock p_ts;
      if Hashtbl.mem m.m_seen p_uid then ()
      else if leader then begin
        match Hashtbl.find_opt m.m_pending p_uid with
        | Some p ->
            record_proposal p ~gid:p_gid ~ts:p_ts;
            maybe_finalize t m p
        | None -> stash_early m ~uid:p_uid ~gid:p_gid ~ts:p_ts
      end
      else stash_early m ~uid:p_uid ~gid:p_gid ~ts:p_ts
  | Log_write { entry } ->
      if accept_entry m entry then begin
        let lead = current_leader t m.m_gid in
        post_ctrl t ~src:m.m_node ~dst:lead ~bytes:t.cfg.ack_bytes
          (Ack { a_uid = entry.d_uid });
        drain_follower m
      end
  | Log_batch { entries } ->
      let accepted = List.filter (accept_entry m) entries in
      (match List.rev accepted with
      | last :: _ ->
          let lead = current_leader t m.m_gid in
          post_ctrl t ~src:m.m_node ~dst:lead ~bytes:t.cfg.ack_bytes
            (Ack { a_uid = last.d_uid });
          drain_follower m
      | [] -> ())
  | Commit { c_uid } ->
      Hashtbl.replace m.m_committed c_uid ();
      drain_follower m
  | Commit_batch { c_uids } ->
      List.iter (fun uid -> Hashtbl.replace m.m_committed uid ()) c_uids;
      drain_follower m
  | Ack { a_uid } ->
      Queue.iter
        (fun c ->
          if List.exists (fun e -> e.d_uid = a_uid) c.cm_entries then
            c.cm_acks <- c.cm_acks + 1)
        m.m_commits;
      drain_commits t m

(* {1 Leader takeover} *)

(* Synchronise the replicated log from the live members (charging a
   transfer of the missing suffix) and adopt leadership. *)
let takeover t (m : 'a member) =
  Heron_obs.Metrics.incr t.obs.ob_takeovers;
  let g = t.groups.(m.m_gid) in
  (* Pull the longest log among live members. *)
  Array.iter
    (fun (peer : 'a member) ->
      if peer.m_idx <> m.m_idx && Fabric.is_alive peer.m_node then begin
        let missing = max 0 (peer.m_log_len - m.m_log_len) in
        if missing > 0 then begin
          (* The taker is live, so its logical length is at least the
             group's compaction cut — the peer still retains every
             entry the taker is missing. *)
          let entries =
            List.init missing (fun i -> log_get peer (m.m_log_len + i))
          in
          let bytes =
            List.fold_left (fun acc e -> acc + entry_bytes t e) 0 entries
          in
          (try Qp.transfer (link t ~src:m.m_node ~dst:peer.m_node) ~bytes_len:bytes
           with Qp.Rdma_exception _ -> ());
          List.iter
            (fun e ->
              if not (Hashtbl.mem m.m_seen e.d_uid) then begin
                Hashtbl.replace m.m_seen e.d_uid ();
                m.m_clock <- max m.m_clock e.d_tmp.Tstamp.clock;
                log_push m e
              end)
            entries
        end
      end)
    g.g_members;
  (* Deliver everything accepted but not yet delivered, in log order:
     accepted entries were decided by the previous leader. *)
  while m.m_next_deliver < m.m_log_len do
    let e = log_get m m.m_next_deliver in
    Hashtbl.remove m.m_committed e.d_uid;
    m.m_next_deliver <- m.m_next_deliver + 1;
    deliver_local m e
  done;
  g.g_leader <- m.m_idx;
  (* Re-propose every stashed submit not yet decided, reusing the dead
     leader's proposal when it reached us. *)
  let stashed = Hashtbl.fold (fun uid mi acc -> (uid, mi) :: acc) m.m_submits [] in
  List.iter
    (fun (uid, mi) ->
      Hashtbl.remove m.m_submits uid;
      if not (Hashtbl.mem m.m_seen uid) then begin
        let reuse =
          match Hashtbl.find_opt m.m_early uid with
          | Some props -> List.assoc_opt m.m_gid props
          | None -> None
        in
        propose t m mi ~reuse
      end)
    (List.sort compare stashed)

let monitor_leader t (m : 'a member) =
  let rec loop () =
    Engine.sleep t.cfg.leader_check_ns;
    let g = t.groups.(m.m_gid) in
    let lead = g.g_members.(g.g_leader) in
    if not (Fabric.is_alive lead.m_node) then begin
      (* Lowest-index live member takes over. *)
      let next = ref None in
      Array.iter
        (fun (c : 'a member) ->
          if !next = None && Fabric.is_alive c.m_node then next := Some c.m_idx)
        g.g_members;
      match !next with
      | Some idx when idx = m.m_idx && g.g_leader <> idx -> takeover t m
      | Some _ | None -> ()
    end;
    loop ()
  in
  loop ()

(* {1 Log compaction}

   Drop a prefix of the replicated log that (a) every live member has
   already delivered and (b) lies at or below [upto] — the durability
   layer's truncation frontier, itself behind every live replica's
   published checkpoint. Logical indices (m_log_len, m_next_deliver)
   keep counting from the beginning of time, so the cut is invisible to
   the protocol; only the array prefix (the payload memory) is freed.
   m_seen and m_committed are intentionally NOT pruned: a late
   duplicate Submit for a compacted uid must still be recognized as
   seen, or a future takeover could re-propose it under a new timestamp
   and deliver it twice. *)

let compact t ~gid ~upto =
  let g = t.groups.(gid) in
  (* Uniform cut: behind every live member's delivery point. Entries
     are appended in (timestamp, uid) dispatch order, so the entries at
     or below [upto] form a log prefix. *)
  let cut = ref max_int in
  Array.iter
    (fun (m : 'a member) ->
      if Fabric.is_alive m.m_node then cut := min !cut m.m_next_deliver)
    g.g_members;
  let lead = g.g_members.(g.g_leader) in
  let k = ref lead.m_log_start in
  while
    !k < !cut && !k < lead.m_log_len
    && Tstamp.((log_get lead !k).d_tmp <= upto)
  do
    incr k
  done;
  let k = !k in
  let dropped = k - lead.m_log_start in
  if dropped > 0 then begin
    Array.iter
      (fun (m : 'a member) ->
        if Fabric.is_alive m.m_node && m.m_log_start < k then begin
          let drop = k - m.m_log_start in
          m.m_compacted_tmp <- (log_get m (k - 1)).d_tmp;
          m.m_log <- Array.sub m.m_log drop (log_retained_of m - drop);
          m.m_log_start <- k
        end)
      g.g_members;
    Heron_obs.Metrics.add t.obs.ob_compacted dropped
  end;
  dropped

let log_retained t ~gid ~idx = log_retained_of t.groups.(gid).g_members.(idx)

(* {1 Construction and client API} *)

let create ?(config = default_config) ?tracing fab ~size_of ~groups =
  if Array.length groups = 0 then invalid_arg "Ramcast.create: no groups";
  let reg = Fabric.metrics fab in
  let deliveries = Heron_obs.Metrics.counter reg "mcast.deliveries" in
  let mk_group gid nodes =
    if Array.length nodes = 0 || Array.length nodes mod 2 = 0 then
      invalid_arg "Ramcast.create: groups must have odd, non-zero size";
    let mk_member idx node =
      {
        m_gid = gid;
        m_idx = idx;
        m_node = node;
        m_inbox = Mailbox.create ();
        m_deliveries = deliveries;
        m_deliver = ignore;
        m_clock = 0;
        m_pending = Hashtbl.create 64;
        m_early = Hashtbl.create 64;
        m_submits = Hashtbl.create 64;
        m_commits = Queue.create ();
        m_seen = Hashtbl.create 256;
        m_log = [||];
        m_committed = Hashtbl.create 256;
        m_log_len = 0;
        m_log_start = 0;
        m_compacted_tmp = Tstamp.zero;
        m_next_deliver = 0;
        m_delivered = 0;
      }
    in
    { g_gid = gid; g_members = Array.mapi mk_member nodes; g_leader = 0 }
  in
  {
    fab;
    cfg = config;
    size_of;
    groups = Array.mapi mk_group groups;
    links = Hashtbl.create 64;
    trc = tracing;
    obs =
      {
        ob_submits = Heron_obs.Metrics.counter reg "mcast.submits";
        ob_rounds = Heron_obs.Metrics.counter reg "mcast.timestamp_rounds";
        ob_takeovers = Heron_obs.Metrics.counter reg "mcast.takeovers";
        ob_compacted = Heron_obs.Metrics.counter reg "mcast.compacted_entries";
        ob_rejoin_replayed = Heron_obs.Metrics.counter reg "mcast.rejoin_replayed";
        ob_rejoin_bytes = Heron_obs.Metrics.counter reg "mcast.rejoin_replay_bytes";
      };
    next_uid = 1;
  }

let set_deliver t ~gid ~idx cb = t.groups.(gid).g_members.(idx).m_deliver <- cb

let spawn_member_loops t (m : 'a member) =
  Fabric.spawn_on m.m_node (fun () ->
      let rec loop () =
        let ctrl = Mailbox.recv m.m_inbox in
        handle_ctrl t m ctrl;
        loop ()
      in
      loop ());
  if t.cfg.failover then Fabric.spawn_on m.m_node (fun () -> monitor_leader t m)

let restart_member t ~gid ~idx ~deliver =
  let m = t.groups.(gid).g_members.(idx) in
  if not (Fabric.is_alive m.m_node) then
    invalid_arg "Ramcast.restart_member: node is not alive";
  if t.groups.(gid).g_leader = idx then
    invalid_arg "Ramcast.restart_member: cannot restart the current leader";
  (* A process restart: all protocol state is gone. *)
  Hashtbl.reset m.m_pending;
  Hashtbl.reset m.m_early;
  Hashtbl.reset m.m_submits;
  Queue.clear m.m_commits;
  Hashtbl.reset m.m_seen;
  Hashtbl.reset m.m_committed;
  m.m_log <- [||];
  m.m_log_len <- 0;
  m.m_log_start <- 0;
  m.m_compacted_tmp <- Tstamp.zero;
  m.m_next_deliver <- 0;
  m.m_delivered <- 0;
  m.m_clock <- 0;
  (* Drain stale control traffic left from before the crash. *)
  let rec drain () =
    match Mailbox.try_recv m.m_inbox with Some _ -> drain () | None -> ()
  in
  drain ();
  m.m_deliver <- deliver;
  (* Log suffix sync, as on leader takeover: entries replicated while
     this member was down are never re-sent, and a recovery state
     transfer only covers what its donor had applied — an entry past
     the donor's applied point but already in the leader's log would
     otherwise reach this member by neither path. Worse than a hole:
     if that entry is multi-partition, its coordination needs a
     majority of this group at it, which a rejoiner that can never
     obtain it cannot help form — recovery and coordination then wait
     on each other forever. Copy the leader's log (one event-loop
     turn, so the snapshot is consistent), re-deliver the committed
     prefix — the replica skips whatever its transfer covered — and
     ack the in-flight tail so the leader can commit it. *)
  let lead = t.groups.(gid).g_members.(t.groups.(gid).g_leader) in
  let retained = log_retained_of lead in
  m.m_log <- Array.sub lead.m_log 0 retained;
  m.m_log_start <- lead.m_log_start;
  m.m_compacted_tmp <- lead.m_compacted_tmp;
  m.m_log_len <- lead.m_log_len;
  (* The compacted prefix counts as delivered: every dropped entry was
     delivered at all live members before the cut, so the recovery
     state transfer (from any live donor's checkpoint) covers it. *)
  m.m_next_deliver <- m.m_log_start;
  (* Re-adopt the leader's dedup set wholesale, not just the retained
     suffix's uids: a stale duplicate Submit for a compacted uid must
     never be re-proposable here after a future takeover. *)
  Hashtbl.iter (fun uid () -> Hashtbl.replace m.m_seen uid ()) lead.m_seen;
  let replay_bytes = ref 0 in
  for i = m.m_log_start to m.m_log_len - 1 do
    let e = log_get m i in
    replay_bytes := !replay_bytes + entry_bytes t e;
    Hashtbl.replace m.m_seen e.d_uid ();
    m.m_clock <- max m.m_clock e.d_tmp.Tstamp.clock;
    if i < lead.m_next_deliver then Hashtbl.replace m.m_committed e.d_uid ()
  done;
  Heron_obs.Metrics.add t.obs.ob_rejoin_replayed retained;
  Heron_obs.Metrics.add t.obs.ob_rejoin_bytes !replay_bytes;
  drain_follower m;
  for i = lead.m_next_deliver to m.m_log_len - 1 do
    post_ctrl t ~src:m.m_node ~dst:lead ~bytes:t.cfg.ack_bytes
      (Ack { a_uid = (log_get m i).d_uid })
  done;
  spawn_member_loops t m

let start t =
  Array.iter
    (fun g -> Array.iter (fun (m : 'a member) -> spawn_member_loops t m) g.g_members)
    t.groups

let normalize_dst dst =
  match List.sort_uniq compare dst with
  | [] -> invalid_arg "Ramcast.multicast: empty destination"
  | l -> l

let multicast ?(slots = 1) t ~from ~dst payload =
  if slots < 1 then invalid_arg "Ramcast.multicast: slots must be positive";
  let dst = normalize_dst dst in
  Heron_obs.Metrics.incr t.obs.ob_submits;
  let uid = t.next_uid in
  (* Reserve a contiguous uid range so a batched payload can expand into
     [slots] distinct per-request timestamps (base uid + slot index) at
     delivery without colliding with any later entry's uid. *)
  t.next_uid <- uid + slots;
  let mi =
    { mi_uid = uid; mi_dst = dst; mi_payload = payload; mi_size = t.size_of payload }
  in
  let bytes = mi.mi_size + t.cfg.submit_hdr_bytes in
  let submit gid =
    let rec attempt () =
      let lead = current_leader t gid in
      match send_ctrl t ~src:from ~dst:lead ~bytes (Submit mi) with
      | () -> ()
      | exception Qp.Rdma_exception _ ->
          Engine.sleep t.cfg.resubmit_delay_ns;
          attempt ()
    in
    attempt ();
    if t.cfg.failover then
      Array.iter
        (fun (f : 'a member) ->
          if f.m_idx <> t.groups.(gid).g_leader then
            post_ctrl t ~src:from ~dst:f ~bytes (Submit mi))
        t.groups.(gid).g_members
  in
  List.iter submit dst;
  uid
