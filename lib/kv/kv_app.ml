open Heron_core

type req =
  | Get of int
  | Put of int * int64
  | Add of int * int64
  | Transfer of { src : int; dst : int; amount : int64 }
  | Incr_all of int list
  | Read_all of int list

type resp = Value of int64 | Values of (int * int64) list | Ack

let pp_resp fmt = function
  | Value v -> Format.fprintf fmt "Value %Ld" v
  | Ack -> Format.fprintf fmt "Ack"
  | Values kvs ->
      Format.fprintf fmt "Values [%a]"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.fprintf f "; ")
           (fun f (k, v) -> Format.fprintf f "%d=%Ld" k v))
        kvs

let oid_of_key k = Oid.of_int k
let partition_of_key ~partitions k = k mod partitions

let encode_value v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  b

let decode_value b = Bytes.get_int64_le b 0

let read_set = function
  | Get k -> [ oid_of_key k ]
  | Put _ -> []
  | Add (k, _) -> [ oid_of_key k ]
  | Transfer { src; dst; _ } -> [ oid_of_key src; oid_of_key dst ]
  | Incr_all ks | Read_all ks -> List.map oid_of_key ks

let write_sketch = function
  | Get _ | Read_all _ -> []
  | Put (k, _) | Add (k, _) -> [ oid_of_key k ]
  | Transfer { src; dst; _ } -> [ oid_of_key src; oid_of_key dst ]
  | Incr_all ks -> List.map oid_of_key ks

let req_size = function
  | Get _ | Put _ | Add _ -> 24
  | Transfer _ -> 32
  | Incr_all ks | Read_all ks -> 16 + (8 * List.length ks)

let resp_size = function
  | Value _ -> 16
  | Ack -> 8
  | Values kvs -> 8 + (16 * List.length kvs)

(* Deterministic execution: every involved partition computes the same
   response; writes are buffered for all keys and Heron applies the
   local ones. *)
let execute (ctx : App.ctx) req =
  let read k = decode_value (ctx.App.ctx_read (oid_of_key k)) in
  let write k v = ctx.App.ctx_write (oid_of_key k) (encode_value v) in
  match req with
  | Get k -> Value (read k)
  | Put (k, v) ->
      write k v;
      Ack
  | Add (k, d) ->
      let v = Int64.add (read k) d in
      write k v;
      Value v
  | Transfer { src; dst; amount } ->
      let s = read src and d = read dst in
      write src (Int64.sub s amount);
      write dst (Int64.add d amount);
      Ack
  | Incr_all ks ->
      List.iter (fun k -> write k (Int64.add (read k) 1L)) ks;
      Ack
  | Read_all ks -> Values (List.map (fun k -> (k, read k)) ks)

let app ~keys ~partitions ~init =
  {
    App.app_name = "kv";
    placement_of =
      (fun oid -> App.Partition (partition_of_key ~partitions (Oid.to_int oid)));
    klass_of = (fun _ -> Versioned_store.Registered);
    read_set;
    read_plan = (fun ~part:_ req -> read_set req);
    write_sketch;
    req_size;
    resp_size;
    execute;
    serial_hint = (fun _ -> false);
    read_only = (function Get _ | Read_all _ -> true | _ -> false);
    catalog =
      (fun () ->
        List.init keys (fun k ->
            {
              App.spec_oid = oid_of_key k;
              spec_placement = App.Partition (partition_of_key ~partitions k);
              spec_klass = Versioned_store.Registered;
              spec_cap = 8;
              spec_init = encode_value init;
            }));
  }
