open Heron_core

type req =
  | Y_read of int
  | Y_update of { key : int; seed : int }
  | Y_rmw of { key : int; delta : int }
  | Y_scan of { start : int; count : int }

type resp = Y_value of { counter : int; size : int } | Y_ok | Y_scanned of int

let partition_of_key ~partitions k = k mod partitions
let oid_of_key k = Oid.of_int k

(* The [rank]-th key homed (at directory epoch 0) on partition [hot]:
   ranks index the per-partition stripe, so a popularity distribution
   over ranks concentrates traffic on one partition — the shape the
   rebalancer bench shifts mid-run. *)
let hotspot_key ~records ~partitions ~hot rank =
  (rank mod (records / partitions)) * partitions + hot

(* Record layout: [counter : int64][payload]. *)
let encode ~value_bytes ~counter ~seed =
  let b = Bytes.make (8 + value_bytes) (Char.chr (33 + (seed mod 90))) in
  Bytes.set_int64_le b 0 (Int64.of_int counter);
  b

let counter_of raw = Int64.to_int (Bytes.get_int64_le raw 0)

let keys_of_scan ~records ~start ~count =
  List.init count (fun i -> (start + i) mod records)

let read_set ~records = function
  | Y_read k -> [ oid_of_key k ]
  | Y_update _ -> []
  | Y_rmw { key; _ } -> [ oid_of_key key ]
  | Y_scan { start; count } -> List.map oid_of_key (keys_of_scan ~records ~start ~count)

let write_sketch = function
  | Y_read _ | Y_scan _ -> []
  | Y_update { key; _ } | Y_rmw { key; _ } -> [ oid_of_key key ]

let app ~records ~value_bytes ~partitions =
  if records <= 0 || value_bytes < 0 then invalid_arg "Ycsb_app.app: bad sizes";
  let read_set = read_set ~records in
  {
    App.app_name = "ycsb";
    placement_of =
      (fun oid -> App.Partition (partition_of_key ~partitions (Oid.to_int oid)));
    klass_of = (fun _ -> Versioned_store.Registered);
    read_set;
    read_plan = (fun ~part:_ req -> read_set req);
    write_sketch;
    req_size =
      (fun req ->
        match req with
        | Y_read _ | Y_rmw _ -> 24
        | Y_update _ -> 24 + value_bytes
        | Y_scan { count; _ } -> 24 + (8 * count));
    resp_size =
      (function
      | Y_value _ -> 16 + value_bytes
      | Y_ok -> 8
      | Y_scanned _ -> 16);
    execute =
      (fun ctx req ->
        match req with
        | Y_read k ->
            let raw = ctx.App.ctx_read (oid_of_key k) in
            Y_value { counter = counter_of raw; size = Bytes.length raw }
        | Y_update { key; seed } ->
            ctx.App.ctx_write (oid_of_key key) (encode ~value_bytes ~counter:seed ~seed);
            Y_ok
        | Y_rmw { key; delta } ->
            let raw = ctx.App.ctx_read (oid_of_key key) in
            let counter = counter_of raw + delta in
            let updated = Bytes.copy raw in
            Bytes.set_int64_le updated 0 (Int64.of_int counter);
            ctx.App.ctx_write (oid_of_key key) updated;
            Y_value { counter; size = Bytes.length raw }
        | Y_scan { start; count } ->
            let n =
              List.fold_left
                (fun acc k ->
                  ignore (ctx.App.ctx_read (oid_of_key k));
                  acc + 1)
                0
                (keys_of_scan ~records ~start ~count)
            in
            Y_scanned n);
    serial_hint = (fun _ -> false);
    read_only = (function Y_read _ | Y_scan _ -> true | _ -> false);
    catalog =
      (fun () ->
        List.init records (fun k ->
            {
              App.spec_oid = oid_of_key k;
              spec_placement = App.Partition (partition_of_key ~partitions k);
              spec_klass = Versioned_store.Registered;
              spec_cap = 8 + value_bytes;
              spec_init = encode ~value_bytes ~counter:0 ~seed:k;
            }));
  }

type profile = { read_pct : int; update_pct : int; rmw_pct : int; scan_pct : int }

let workload_a = { read_pct = 50; update_pct = 50; rmw_pct = 0; scan_pct = 0 }
let workload_b = { read_pct = 95; update_pct = 5; rmw_pct = 0; scan_pct = 0 }
let workload_c = { read_pct = 100; update_pct = 0; rmw_pct = 0; scan_pct = 0 }
let workload_e = { read_pct = 75; update_pct = 10; rmw_pct = 10; scan_pct = 5 }

let gen profile ~records ~key_dist rng =
  if profile.read_pct + profile.update_pct + profile.rmw_pct + profile.scan_pct <> 100
  then invalid_arg "Ycsb_app.gen: mix must sum to 100";
  let key () =
    match key_dist with
    | `Uniform -> Random.State.int rng records
    | `Zipfian z -> Zipf.sample z rng
  in
  let roll = 1 + Random.State.int rng 100 in
  if roll <= profile.read_pct then Y_read (key ())
  else if roll <= profile.read_pct + profile.update_pct then
    Y_update { key = key (); seed = Random.State.int rng 1_000_000 }
  else if roll <= profile.read_pct + profile.update_pct + profile.rmw_pct then
    Y_rmw { key = key (); delta = 1 }
  else Y_scan { start = key (); count = 8 }
