(** A YCSB-style key-value microbenchmark application.

    The evaluation style of the RDMA replication systems Heron is
    related to (Mu, DARE, APUS all report read/update microbenchmark
    latencies): fixed-size records spread over partitions, read /
    update / read-modify-write / scan operations, uniform or zipfian
    key popularity. Records are {!Heron_core.Versioned_store.Registered}
    so scans crossing partitions exercise one-sided remote reads. *)

open Heron_core

type req =
  | Y_read of int
  | Y_update of { key : int; seed : int }
      (** writes a deterministic value derived from [seed] *)
  | Y_rmw of { key : int; delta : int }
      (** read-modify-write on the record's embedded counter *)
  | Y_scan of { start : int; count : int }
      (** reads [count] consecutive keys (wrapping), possibly spanning
          partitions *)

type resp =
  | Y_value of { counter : int; size : int }
  | Y_ok
  | Y_scanned of int  (** number of records read *)

val app :
  records:int -> value_bytes:int -> partitions:int -> (req, resp) App.t
(** [records] keys, striped over partitions round-robin, each holding a
    [value_bytes]-byte payload plus an int counter. *)

val partition_of_key : partitions:int -> int -> int

val oid_of_key : int -> Oid.t

val hotspot_key : records:int -> partitions:int -> hot:int -> int -> int
(** [hotspot_key ~records ~partitions ~hot rank] is the [rank]-th key
    whose static home is partition [hot] — sampling ranks from a
    popularity distribution concentrates load on that partition (until
    live repartitioning moves the keys). *)

type profile = { read_pct : int; update_pct : int; rmw_pct : int; scan_pct : int }
(** Operation mix in percent; must sum to 100. *)

val workload_a : profile  (** 50% read / 50% update *)

val workload_b : profile  (** 95% read / 5% update *)

val workload_c : profile  (** 100% read *)

val workload_e : profile
(** 75% read / 10% update / 10% read-modify-write / 5% scan — the scan
    mix whose cross-partition scans exercise remote reads *)

val gen :
  profile ->
  records:int ->
  key_dist:[ `Uniform | `Zipfian of Zipf.t ] ->
  Random.State.t ->
  req
(** One operation; scans touch 8 consecutive keys. *)
