(* Calibration probe: prints the key latency/throughput numbers the
   cost model is tuned against. Not part of the benchmark suite.

     dune exec bin/probe.exe                    -- calibration run
     dune exec bin/probe.exe -- trace FILE      -- Perfetto trace of a
                                                   small simulated run
     dune exec bin/probe.exe -- explain FILE [--top K]
                                                -- critical paths of the K
                                                   slowest requests in a
                                                   Perfetto dump
     dune exec bin/probe.exe -- jsonlint FILE   -- validate a JSON file
                                                   (exit 0/1)
     dune exec bin/probe.exe -- chaos --seeds 0..500 [--shrink]
                                                [--corpus DIR] [--reconfig]
                                                [--elastic] [--pipeline]
                                                [--fast-reads]
                                                [--replay FILE-OR-DIR]...
                                                -- chaos-schedule sweep /
                                                   corpus replay (exit 0/1)
     dune exec bin/probe.exe -- benchguard CURRENT BASELINE --keys a,b
                                                [--max-regression-pct N]
                                                -- deterministic bench
                                                   regression guard (exit 0/1)
     dune exec bin/probe.exe -- reconfig        -- live-repartitioning demo:
                                                   manual migration, then the
                                                   rebalancer spreads a hotspot *)

open Heron_stats
open Heron_tpcc
open Heron_harness

let pr fmt = Printf.printf fmt

let show name (rs : Driver.run_stats) =
  pr "%-28s tput=%8.0f tps  lat(avg)=%7.1fus  single=%7.1fus  multi=%7.1fus  n=%d\n"
    name rs.Driver.rs_throughput_tps
    (Sample_set.mean rs.Driver.rs_latency /. 1e3)
    (if Sample_set.is_empty rs.Driver.rs_latency_single then 0.
     else Sample_set.mean rs.Driver.rs_latency_single /. 1e3)
    (if Sample_set.is_empty rs.Driver.rs_latency_multi then 0.
     else Sample_set.mean rs.Driver.rs_latency_multi /. 1e3)
    rs.Driver.rs_completed

let run_calibration () =
  let t_start = Unix.gettimeofday () in
  (* 1. Single-client NewOrder latency + breakdown, 1WH. *)
  let scale = Scale.bench ~warehouses:1 in
  let sys = Driver.heron_tpcc_system ~scale () in
  let rs =
    Driver.run_system ~sys ~clients:1
      ~gen:(fun ~client rng ->
        ignore client;
        (Workload.gen_new_order Workload.local_only ~scale ~rng ~home_w:1, None))
      ()
  in
  show "1WH NewOrder 1 client" rs;
  let ord = Driver.merged_replica_stat sys (fun s -> s.Heron_core.Replica.st_ordering) in
  let exc = Driver.merged_replica_stat sys (fun s -> s.Heron_core.Replica.st_exec) in
  pr "  breakdown: ordering=%.1fus exec=%.1fus\n"
    (Sample_set.mean ord /. 1e3) (Sample_set.mean exc /. 1e3);

  (* 2. Single-client pinned 4-partition NewOrder. *)
  let scale4 = Scale.bench ~warehouses:4 in
  let sys4 = Driver.heron_tpcc_system ~scale:scale4 () in
  let rs4 =
    Driver.run_system ~sys:sys4 ~clients:1
      ~gen:(fun ~client rng ->
        ignore client;
        (Workload.gen_new_order_pinned ~scale:scale4 ~rng ~warehouses:[ 1; 2; 3; 4 ], None))
      ()
  in
  show "4WH pinned NewOrder 1c" rs4;
  let ord4 = Driver.merged_replica_stat sys4 (fun s -> s.Heron_core.Replica.st_ordering) in
  let coord4 = Driver.merged_replica_stat sys4 (fun s -> s.Heron_core.Replica.st_coord) in
  let exec4 = Driver.merged_replica_stat sys4 (fun s -> s.Heron_core.Replica.st_exec) in
  pr "  breakdown: ordering=%.1fus coord=%.1fus exec=%.1fus\n"
    (Sample_set.mean ord4 /. 1e3)
    (Sample_set.mean coord4 /. 1e3)
    (Sample_set.mean exec4 /. 1e3);

  (* 3. Heron TPCC throughput, 2WH, saturation. *)
  List.iter
    (fun clients ->
      let scale2 = Scale.bench ~warehouses:2 in
      let sys2 = Driver.heron_tpcc_system ~scale:scale2 () in
      let rs2 =
        Driver.run_system ~sys:sys2 ~clients
          ~gen:(Driver.tpcc_gen ~profile:Workload.standard ~scale:scale2)
          ()
      in
      show (Printf.sprintf "2WH TPCC %d clients" clients) rs2)
    [ 2; 4; 8; 16 ];

  (* 4. RamCast null, 2 groups. *)
  let rs_rc =
    Driver.run_ramcast ~partitions:2 ~clients:8 ~msg_bytes:200
      ~gen_dst:(fun rng ->
        if Random.State.int rng 100 < 10 then [ 0; 1 ]
        else [ Random.State.int rng 2 ])
      ()
  in
  show "RamCast 2 groups 8c" rs_rc;

  (* 5. DynaStar 1WH. *)
  let scale_ds = Scale.bench ~warehouses:1 in
  let rs_ds =
    Driver.run_dynastar ~scale:scale_ds ~clients:4 ~profile:Workload.standard ()
  in
  show "DynaStar 1WH 4c" rs_ds;
  pr "wall time: %.1fs\n" (Unix.gettimeofday () -. t_start)

(* [probe trace FILE]: run a small 2-partition x 3-replica KV workload
   with a span ring attached to every replica and request-scoped
   tracing attached to the deployment, and export both as Chrome
   trace_event JSON (open at https://ui.perfetto.dev, or feed to
   [probe explain]). *)
let run_trace file =
  let open Heron_sim in
  let open Heron_core in
  let eng = Engine.create ~seed:7 () in
  let reqtrace = Heron_obs.Reqtrace.create () in
  let cfg =
    { (Config.default ~partitions:2 ~replicas:3) with
      Config.metrics = Heron_obs.Metrics.create ();
      reqtrace = Some reqtrace }
  in
  let app = Heron_kv.Kv_app.app ~keys:8 ~partitions:2 ~init:0L in
  let sys = System.create eng ~cfg ~app in
  System.start sys;
  let traces = ref [] in
  Array.iteri
    (fun part row ->
      Array.iteri
        (fun idx r ->
          let tr = Trace.create () in
          Replica.set_tracer r tr;
          traces := (Printf.sprintf "replica p%d/r%d" part idx, tr) :: !traces)
        row)
    (System.replicas sys);
  let traces = List.rev !traces in
  let client = System.new_client_node sys ~name:"trace-client" in
  Heron_rdma.Fabric.spawn_on client (fun () ->
      let rng = Random.State.make [| 0x7ACE |] in
      for i = 1 to 60 do
        let req =
          if i mod 3 = 0 then Heron_kv.Kv_app.Read_all [ 0; 1 ]
          else Heron_kv.Kv_app.Put (Random.State.int rng 8, Int64.of_int i)
        in
        ignore (System.submit sys ~from:client req)
      done);
  Engine.run_until eng (Time_ns.ms 100);
  let requests = Heron_obs.Reqtrace.export_trees reqtrace in
  Heron_obs.Trace_export.write_file ~requests file traces;
  let spans =
    List.fold_left (fun acc (_, tr) -> acc + List.length (Trace.spans tr)) 0 traces
  in
  pr "trace written to %s (%d replicas, %d spans, %d request trees)\n" file
    (List.length traces) spans (List.length requests)

(* [probe explain FILE [--top K]]: re-read the request trees embedded
   in a Perfetto dump written by [probe trace] or [bench --trace] and
   print the critical paths of the K slowest requests. *)
let run_explain args =
  let file = ref None in
  let top = ref 5 in
  let usage () =
    Printf.eprintf "usage: probe explain FILE [--top K]\n";
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--top" :: k :: rest ->
        (match int_of_string_opt k with
        | Some k when k > 0 -> top := k
        | Some _ | None -> usage ());
        parse rest
    | f :: rest when !file = None ->
        file := Some f;
        parse rest
    | _ -> usage ()
  in
  parse args;
  let file = match !file with Some f -> f | None -> usage () in
  let ic =
    try open_in_bin file
    with Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
  in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Heron_obs.Json.parse s with
  | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      exit 1
  | Ok doc -> (
      let spans = Heron_obs.Trace_export.request_spans_of_json doc in
      match Heron_obs.Reqtrace.trees_of_spans spans with
      | [] ->
          Printf.eprintf
            "%s: no request spans (written without request tracing?)\n" file;
          exit 1
      | trees ->
          let shown = ref 0 in
          pr "%d request trees in %s; %d slowest:\n\n" (List.length trees) file
            (min !top (List.length trees));
          List.iter
            (fun tree ->
              if !shown < !top then begin
                incr shown;
                pr "%s\n" (Heron_obs.Reqtrace.render_tree tree)
              end)
            trees)

(* [probe chaos]: sweep generated fault schedules (and/or replay pinned
   ones) against the simulator; see DESIGN.md's chaos section.
   [probe longhaul] is the same runner over the longhaul family
   (DESIGN.md §13): durability on, long horizons, and the flat-memory /
   O(delta)-rejoin verdict in addition to linearizability. *)
let run_chaos ?(longhaul = false) args =
  let module Sched = Heron_chaos.Schedule in
  let module Cdriver = Heron_chaos.Driver in
  let module Shrink = Heron_chaos.Shrink in
  let seed_lo = ref 0 and seed_hi = ref 100 in
  let shrink = ref false in
  let reconfig = ref false in
  let elastic = ref false in
  let pipeline = ref false in
  let fast_reads = ref false in
  let corpus = ref None in
  let replays = ref [] in
  let usage () =
    Printf.eprintf
      "usage: probe %s [--seeds A..B] [--shrink] [--corpus DIR]%s \
       [--replay FILE-OR-DIR]...\n"
      (if longhaul then "longhaul" else "chaos")
      (if longhaul then ""
       else " [--reconfig] [--elastic] [--pipeline] [--fast-reads]");
    exit 2
  in
  (* A --replay directory means every *.json inside it, in name order —
     so CI can point at the whole pinned corpus. *)
  let expand_replay path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort compare
      |> List.map (Filename.concat path)
    else [ path ]
  in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: spec :: rest ->
        (match String.index_opt spec '.' with
        | Some _ -> (
            try Scanf.sscanf spec "%d..%d" (fun a b -> seed_lo := a; seed_hi := b)
            with Scanf.Scan_failure _ | Failure _ | End_of_file -> usage ())
        | None -> usage ());
        parse rest
    | "--shrink" :: rest ->
        shrink := true;
        parse rest
    | "--reconfig" :: rest ->
        reconfig := true;
        parse rest
    | "--elastic" :: rest ->
        elastic := true;
        parse rest
    | "--pipeline" :: rest ->
        pipeline := true;
        parse rest
    | "--fast-reads" :: rest ->
        fast_reads := true;
        parse rest
    | "--corpus" :: dir :: rest ->
        corpus := Some dir;
        parse rest
    | "--replay" :: path :: rest ->
        (match expand_replay path with
        | [] ->
            Printf.eprintf "%s: no *.json schedules inside\n" path;
            exit 2
        | files -> replays := List.rev_append files !replays);
        parse rest
    | _ -> usage ()
  in
  parse args;
  let failures = ref 0 in
  let report sc outcome =
    match outcome with
    | Cdriver.Completed _ -> ()
    | Cdriver.Failed f ->
        incr failures;
        pr "seed %d FAILED (%s): %s\n" sc.Sched.sc_seed (Cdriver.failure_kind f)
          (Format.asprintf "%a" Cdriver.pp_failure f);
        if !shrink then begin
          let small =
            Shrink.minimize ~pipeline:!pipeline ~durability:longhaul
              ~longhaul ~fast_reads:!fast_reads sc
              ~kind:(Cdriver.failure_kind f)
          in
          pr "  shrunk to %d events:\n%s\n"
            (List.length small.Sched.sc_events)
            (Format.asprintf "    %a" Sched.pp small);
          match !corpus with
          | None -> ()
          | Some dir ->
              (try Unix.mkdir dir 0o755
               with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
              (* Pipeline- and fast-read-discovered failures get their
                 own prefix so such a pin never overwrites a
                 classic-loop pin for the same seed. *)
              let file =
                Filename.concat dir
                  (if longhaul then
                     Printf.sprintf "longhaul_seed_%d.json" sc.Sched.sc_seed
                   else
                     Printf.sprintf "chaos_%s%s%sseed_%d.json"
                       (if !elastic then "elastic_" else "")
                       (if !pipeline then "pipeline_" else "")
                       (if !fast_reads then "fastreads_" else "")
                       sc.Sched.sc_seed)
              in
              Sched.save small ~file;
              pr "  pinned as %s\n" file
        end
  in
  List.iter
    (fun file ->
      match Sched.load ~file with
      | Error msg ->
          Printf.eprintf "%s: %s\n" file msg;
          exit 2
      | Ok sc ->
          pr "replay %s: %!" file;
          let outcome =
            Cdriver.run ~pipeline:!pipeline ~durability:longhaul ~longhaul
              ~fast_reads:!fast_reads sc
          in
          pr "%s\n" (Format.asprintf "%a" Cdriver.pp_outcome outcome);
          report sc outcome)
    (List.rev !replays);
  if !replays = [] then begin
    let t0 = Unix.gettimeofday () in
    let gen =
      if longhaul then Sched.generate_longhaul
      else if !elastic then Sched.generate_elastic
      else if !reconfig then Sched.generate_reconfig
      else Sched.generate
    in
    for seed = !seed_lo to !seed_hi do
      let sc = gen ~seed in
      report sc
        (Cdriver.run ~pipeline:!pipeline ~durability:longhaul ~longhaul
           ~fast_reads:!fast_reads sc)
    done;
    pr "%d %s%s%s%s%sschedules (seeds %d..%d), %d failed, %.1fs\n"
      (!seed_hi - !seed_lo + 1)
      (if longhaul then "longhaul " else "")
      (if !reconfig then "reconfig " else "")
      (if !elastic then "elastic " else "")
      (if !pipeline then "pipelined " else "")
      (if !fast_reads then "fast-read " else "")
      !seed_lo !seed_hi !failures
      (Unix.gettimeofday () -. t0)
  end;
  exit (if !failures > 0 then 1 else 0)

(* [probe reconfig]: small live-repartitioning demo (DESIGN.md §10) —
   a manual migration first, then the load-driven rebalancer spreading
   a hotspot of even keys that all start on partition 0. *)
let run_reconfig () =
  let open Heron_sim in
  let open Heron_core in
  let partitions = 2 and keys = 8 in
  let eng = Engine.create ~seed:11 () in
  let cfg =
    { (Config.default ~partitions ~replicas:3) with
      Config.metrics = Heron_obs.Metrics.create ();
      reconfig = { Config.enabled = true } }
  in
  let app = Heron_kv.Kv_app.app ~keys ~partitions ~init:0L in
  let sys = System.create eng ~cfg ~app in
  System.start sys;
  let stop = ref false in
  for c = 0 to 3 do
    let node = System.new_client_node sys ~name:(Printf.sprintf "rc-c%d" c) in
    let rng = Random.State.make [| c; 0x4EC |] in
    Heron_rdma.Fabric.spawn_on node (fun () ->
        while not !stop do
          (* Hotspot: keys 0, 2, 4, 6 — all on partition 0 at epoch 0. *)
          let key = 2 * Random.State.int rng 4 in
          ignore (System.submit sys ~from:node (Heron_kv.Kv_app.Add (key, 1L)))
        done)
  done;
  Engine.run_until eng (Time_ns.ms 2);
  let admin = System.new_client_node sys ~name:"admin" in
  Heron_rdma.Fabric.spawn_on admin (fun () ->
      match
        Heron_reconfig.Migration.migrate sys ~from:admin
          ~oids:[ Heron_kv.Kv_app.oid_of_key 2 ] ~dst:1
      with
      | Ok () ->
          pr "manual migration: key 2 -> partition 1 ok, epoch now %d\n"
            (Placement.epoch (System.directory sys))
      | Error e -> pr "manual migration failed: %s\n" e);
  Engine.run_until eng (Time_ns.ms 4);
  let rb =
    Heron_reconfig.Rebalancer.start
      ~policy:{ Heron_reconfig.Rebalancer.default_policy with imbalance_x100 = 130 }
      sys
  in
  Engine.run_until eng (Time_ns.ms 24);
  Heron_reconfig.Rebalancer.stop rb;
  stop := true;
  Engine.run_until eng (Engine.now eng + Time_ns.ms 1);
  let c name =
    Heron_obs.Metrics.counter_value (Heron_obs.Metrics.counter cfg.Config.metrics name)
  in
  pr "rebalancer: %d load checks, %d objects moved\n"
    (Heron_reconfig.Rebalancer.rounds rb)
    (Heron_reconfig.Rebalancer.moves rb);
  pr "directory epoch %d; placement now:" (Placement.epoch (System.directory sys));
  for k = 0 to keys - 1 do
    match Heron_reconfig.Migration.current_partition sys (Heron_kv.Kv_app.oid_of_key k) with
    | Some p -> pr " k%d->p%d" k p
    | None -> ()
  done;
  pr "\nmigrations=%d objects_moved=%d wrong_epoch_retries=%d\n"
    (c "reconfig.migrations") (c "reconfig.objects_moved")
    (c "reconfig.wrong_epoch_retries")

(* [probe benchguard CURRENT BASELINE --keys a,b [--max-regression-pct N]]:
   CLI shell around {!Heron_harness.Benchguard} (which holds the
   comparison logic and is unit-tested directly). Exit 0 when every key
   holds, 1 on any regression or missing key, 2 on usage errors. *)
let run_benchguard args =
  let usage () =
    Printf.eprintf
      "usage: probe benchguard CURRENT BASELINE --keys a,b \
       [--max-regression-pct N]\n";
    exit 2
  in
  let files = ref [] in
  let keys = ref [] in
  let max_pct = ref 10.0 in
  let rec parse = function
    | [] -> ()
    | "--keys" :: spec :: rest ->
        keys := String.split_on_char ',' spec |> List.filter (fun k -> k <> "");
        parse rest
    | "--max-regression-pct" :: n :: rest ->
        (match float_of_string_opt n with
        | Some f when f >= 0. -> max_pct := f
        | Some _ | None -> usage ());
        parse rest
    | f :: rest when List.length !files < 2 ->
        files := f :: !files;
        parse rest
    | _ -> usage ()
  in
  parse args;
  let current, baseline =
    match List.rev !files with [ c; b ] -> (c, b) | _ -> usage ()
  in
  if !keys = [] then usage ();
  let module Bg = Heron_harness.Benchguard in
  let result =
    Bg.check ~current ~baseline ~keys:!keys ~max_regression_pct:!max_pct
  in
  (match result with
  | Bg.Ok_all vs | Bg.Regressed vs ->
      List.iter
        (fun v ->
          pr "%s\n"
            (Format.asprintf "%a" (Bg.pp_verdict ~max_regression_pct:!max_pct) v))
        vs
  | Bg.Bad_input _ -> ());
  (match result with
  | Bg.Bad_input msg -> Printf.eprintf "%s\n" msg
  | _ -> pr "%s\n" (Format.asprintf "%a" Bg.pp_summary result));
  exit (Bg.exit_code result)

let run_jsonlint file =
  let ic =
    try open_in_bin file
    with Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
  in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Heron_obs.Json.parse s with
  | Ok _ ->
      pr "%s: valid JSON\n" file;
      exit 0
  | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      exit 1

let () =
  match List.tl (Array.to_list Sys.argv) with
  | [] -> run_calibration ()
  | [ "trace"; file ] -> run_trace file
  | "explain" :: rest -> run_explain rest
  | [ "jsonlint"; file ] -> run_jsonlint file
  | "chaos" :: rest -> run_chaos rest
  | "longhaul" :: rest -> run_chaos ~longhaul:true rest
  | "benchguard" :: rest -> run_benchguard rest
  | [ "reconfig" ] -> run_reconfig ()
  | _ ->
      Printf.eprintf
        "usage: probe [trace FILE | explain FILE [--top K] | jsonlint FILE | \
         chaos ... | longhaul ... | benchguard ... | reconfig]  (no args: \
         calibration)\n";
      exit 2
