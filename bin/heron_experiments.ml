(* Command-line runner for the paper's experiments.

     heron_experiments fig4 [--quick]
     heron_experiments all --quick
     heron_experiments list *)

open Cmdliner
open Heron_harness

let experiments =
  [
    ("fig4", "Throughput of RamCast / Heron-null / TPCC / local TPCC vs warehouses");
    ("fig5", "Heron vs DynaStar: throughput and latency");
    ("fig6", "Single-client latency breakdown and CDF (1..4 partitions)");
    ("fig7", "Latency per TPCC transaction type");
    ("table1", "Delayed transactions when coordination waits for all replicas");
    ("fig8", "State transfer latency");
    ( "ablations",
      "Grace-delay, parallel-execution and batching ablations (extensions)" );
    ("micro_kv", "Key-value microbenchmarks: latency vs value size, YCSB mixes");
    ("all", "Run every experiment in paper order");
    ("list", "List available experiments");
  ]

let print_tables ts =
  List.iter
    (fun t ->
      Heron_stats.Table.print t;
      print_newline ())
    ts

let run name quick =
  match name with
  | "fig4" -> print_tables [ Experiments.fig4 ~quick () ]
  | "fig5" -> print_tables [ Experiments.fig5 ~quick () ]
  | "fig6" ->
      let a, b = Experiments.fig6 ~quick () in
      print_tables [ a; b ]
  | "fig7" ->
      let a, b = Experiments.fig7 ~quick () in
      print_tables [ a; b ]
  | "table1" -> print_tables [ Experiments.table1 ~quick () ]
  | "fig8" -> print_tables [ Experiments.fig8 ~quick () ]
  | "ablations" ->
      print_tables
        [
          Experiments.ablation_grace ~quick ();
          Experiments.ablation_parallel ~quick ();
          Experiments.ablation_batching ~quick ();
          Experiments.ablation_coord_batching ~quick ();
        ]
  | "micro_kv" ->
      let a, b = Experiments.micro_kv ~quick () in
      print_tables [ a; b ]
  | "all" -> print_tables (Experiments.all ~quick ())
  | "list" ->
      List.iter (fun (n, d) -> Printf.printf "%-8s %s\n" n d) experiments
  | other -> raise (Invalid_argument ("unknown experiment: " ^ other))

let name_arg =
  let doc =
    "Experiment to run: fig4, fig5, fig6, fig7, table1, fig8, ablations, all, or list."
  in
  Arg.(value & pos 0 string "list" & info [] ~docv:"EXPERIMENT" ~doc)

let quick_arg =
  let doc = "Shorter warmup/measurement windows and smaller sweeps." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let metrics_arg =
  let doc =
    "Dump the accumulated metric registry (counters, gauges, latency \
     histograms) as JSON to $(docv) after the run."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let dump_metrics file =
  let snap = Heron_obs.Metrics.(snapshot default) in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Heron_obs.Json.to_channel oc (Heron_obs.Metrics.to_json snap);
      output_char oc '\n');
  Printf.printf "metrics written to %s (%d series)\n" file (List.length snap)

let cmd =
  let doc = "regenerate the tables and figures of the Heron paper (DSN'23)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the calibrated simulation experiments described in DESIGN.md and \
         prints each result as an aligned table mirroring the paper's evaluation. \
         See EXPERIMENTS.md for the paper-vs-measured comparison.";
    ]
  in
  let main name quick metrics =
    (try run name quick
     with Invalid_argument msg ->
       prerr_endline msg;
       Stdlib.exit 2);
    Option.iter dump_metrics metrics
  in
  let term = Term.(const main $ name_arg $ quick_arg $ metrics_arg) in
  Cmd.v (Cmd.info "heron_experiments" ~version:"1.0.0" ~doc ~man) term

let () = exit (Cmd.eval cmd)
