(* Tests for heron_core: the dual-versioned store, coordination
   memories, the update log, and end-to-end consistency of the full
   system on the KV/bank application — including the Figure 3
   scenarios the paper's Phases 2 and 4 exist to prevent, and
   lagger/state-transfer behaviour. *)

open Heron_sim
open Heron_rdma
open Heron_multicast
open Heron_core
open Heron_kv

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)
let tmp c = Tstamp.make ~clock:c ~uid:c

(* {1 Versioned_store} *)

let make_store () =
  let eng = Engine.create () in
  let fab = Fabric.create eng ~profile:Profile.default in
  let node = Fabric.add_node fab ~name:"s" in
  (eng, Versioned_store.create node ~region_size:4096)

let b s = Bytes.of_string s
let bs by = Bytes.to_string by

let test_store_register_get () =
  let _, st = make_store () in
  Versioned_store.register st 1 ~klass:Versioned_store.Registered ~cap:16 ~init:(b "v0");
  let v, t = Versioned_store.get st 1 in
  Alcotest.(check string) "initial value" "v0" (bs v);
  check_bool "initial tmp is zero" true (Tstamp.equal t Tstamp.zero);
  check_bool "mem" true (Versioned_store.mem st 1);
  check_bool "not mem" false (Versioned_store.mem st 2)

let test_store_dual_versioning () =
  let _, st = make_store () in
  Versioned_store.register st 1 ~klass:Versioned_store.Registered ~cap:16 ~init:(b "v0");
  Versioned_store.set st 1 (b "v1") ~tmp:(tmp 1);
  Versioned_store.set st 1 (b "v2") ~tmp:(tmp 2);
  (* Newest wins for get; both recent versions remain readable. *)
  Alcotest.(check string) "newest" "v2" (bs (fst (Versioned_store.get st 1)));
  (match Versioned_store.get_before st 1 ~bound:(tmp 2) with
  | Some (v, t) ->
      Alcotest.(check string) "older version survives" "v1" (bs v);
      check_bool "its tag" true (Tstamp.equal t (tmp 1))
  | None -> Alcotest.fail "expected version before tmp 2");
  (* v0 was overwritten (it was the older version). *)
  (match Versioned_store.get_before st 1 ~bound:(tmp 1) with
  | None -> ()
  | Some (v, _) -> Alcotest.failf "v0 should be gone, got %s" (bs v));
  (* A reader bounded below both versions sees the lagger condition. *)
  check_bool "lagger condition" true
    (Versioned_store.get_before st 1 ~bound:(tmp 1) = None)

let test_store_set_same_tmp_idempotent () =
  let _, st = make_store () in
  Versioned_store.register st 1 ~klass:Versioned_store.Registered ~cap:16 ~init:(b "v0");
  Versioned_store.set st 1 (b "a") ~tmp:(tmp 5);
  Versioned_store.set st 1 (b "b") ~tmp:(tmp 5);
  Alcotest.(check string) "overwrote same version" "b"
    (bs (fst (Versioned_store.get st 1)));
  (* The other slot still holds the initial version. *)
  match Versioned_store.get_before st 1 ~bound:(tmp 5) with
  | Some (_, t) -> check_bool "v0 intact" true (Tstamp.equal t Tstamp.zero)
  | None -> Alcotest.fail "initial version lost"

let test_store_local_class () =
  let _, st = make_store () in
  Versioned_store.register st 7 ~klass:Versioned_store.Local ~cap:0 ~init:(b "x");
  Versioned_store.set st 7 (b "y") ~tmp:(tmp 3);
  Alcotest.(check string) "local set/get" "y" (bs (fst (Versioned_store.get st 7)));
  check_bool "no cell addr for local" true
    (try
       ignore (Versioned_store.cell_addr st 7);
       false
     with Not_found -> true);
  (* Dynamic insertion through set. *)
  Versioned_store.set st 99 (b "new") ~tmp:(tmp 4);
  Alcotest.(check string) "inserted" "new" (bs (fst (Versioned_store.get st 99)));
  check_bool "inserted as local" true (Versioned_store.klass_of st 99 = Versioned_store.Local)

let test_store_cell_roundtrip () =
  let _, st = make_store () in
  Versioned_store.register st 1 ~klass:Versioned_store.Registered ~cap:16 ~init:(b "v0");
  Versioned_store.set st 1 (b "vv1") ~tmp:(tmp 1);
  let raw = Versioned_store.encode_cell_of st 1 in
  check_int "cell length" (Versioned_store.cell_len st 1) (Bytes.length raw);
  let (va, ta), (vb, tb) = Versioned_store.decode_cell raw in
  let newest = if Tstamp.(tb <= ta) then (va, ta) else (vb, tb) in
  Alcotest.(check string) "decode newest" "vv1" (bs (fst newest));
  check_bool "decode tag" true (Tstamp.equal (snd newest) (tmp 1))

let test_store_write_raw_cell () =
  let _, st1 = make_store () in
  let _, st2 = make_store () in
  List.iter
    (fun st ->
      Versioned_store.register st 1 ~klass:Versioned_store.Registered ~cap:16
        ~init:(b "v0"))
    [ st1; st2 ];
  Versioned_store.set st1 1 (b "donor") ~tmp:(tmp 9);
  Versioned_store.write_raw_cell st2 1 (Versioned_store.encode_cell_of st1 1);
  Alcotest.(check string) "cell copied" "donor" (bs (fst (Versioned_store.get st2 1)));
  check_bool "tag copied" true (Tstamp.equal (snd (Versioned_store.get st2 1)) (tmp 9))

let test_store_capacity_checks () =
  let _, st = make_store () in
  Versioned_store.register st 1 ~klass:Versioned_store.Registered ~cap:4 ~init:(b "ab");
  check_bool "oversized set rejected" true
    (try
       Versioned_store.set st 1 (b "abcdef") ~tmp:(tmp 1);
       false
     with Invalid_argument _ -> true);
  check_bool "oversized init rejected" true
    (try
       Versioned_store.register st 2 ~klass:Versioned_store.Registered ~cap:2
         ~init:(b "xyz");
       false
     with Invalid_argument _ -> true);
  check_bool "duplicate registration rejected" true
    (try
       Versioned_store.register st 1 ~klass:Versioned_store.Local ~cap:0 ~init:(b "");
       false
     with Invalid_argument _ -> true)

let test_store_get_at_most () =
  let _, st = make_store () in
  Versioned_store.register st 1 ~klass:Versioned_store.Registered ~cap:16 ~init:(b "v0");
  Versioned_store.set st 1 (b "v3") ~tmp:(tmp 3);
  Versioned_store.set st 1 (b "v5") ~tmp:(tmp 5);
  (match Versioned_store.get_at_most st 1 ~bound:(tmp 5) with
  | Some (v, _) -> Alcotest.(check string) "inclusive bound" "v5" (bs v)
  | None -> Alcotest.fail "expected v5");
  (match Versioned_store.get_at_most st 1 ~bound:(tmp 4) with
  | Some (v, _) -> Alcotest.(check string) "between versions" "v3" (bs v)
  | None -> Alcotest.fail "expected v3");
  check_bool "below both" true (Versioned_store.get_at_most st 1 ~bound:(tmp 2) = None)

let store_version_prop =
  (* After any sequence of sets at increasing timestamps, get returns
     the last set, and get_before any bound returns the newest version
     strictly below it among the last two sets. *)
  QCheck.Test.make ~name:"store holds the two newest versions" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (int_bound 50))
    (fun values ->
      let _, st = make_store () in
      Versioned_store.register st 1 ~klass:Versioned_store.Registered ~cap:8
        ~init:(b "i");
      List.iteri
        (fun i v ->
          Versioned_store.set st 1 (Bytes.of_string (string_of_int v)) ~tmp:(tmp (i + 1)))
        values;
      let n = List.length values in
      let last = List.nth values (n - 1) in
      let ok_newest = bs (fst (Versioned_store.get st 1)) = string_of_int last in
      let ok_prev =
        if n < 2 then true
        else
          match Versioned_store.get_before st 1 ~bound:(tmp n) with
          | Some (v, _) -> bs v = string_of_int (List.nth values (n - 2))
          | None -> false
      in
      ok_newest && ok_prev)

let test_store_remote_read_write_race () =
  (* Algorithm 2's lock-free race: a remote reader snapshots the cell
     with a one-sided read while the local writer installs the next
     version. Whichever side wins, the reader's version survives,
     because the writer only overwrites the version no current reader
     can want (the older one). *)
  let _, st = make_store () in
  Versioned_store.register st 1 ~klass:Versioned_store.Registered ~cap:16 ~init:(b "v0");
  Versioned_store.set st 1 (b "v5") ~tmp:(tmp 5);
  (* Reader of request 8 wants the freshest version < 8, i.e. v5. *)
  let before = Versioned_store.encode_cell_of st 1 in
  Versioned_store.set st 1 (b "v8") ~tmp:(tmp 8);
  let after = Versioned_store.encode_cell_of st 1 in
  List.iter
    (fun snap ->
      match
        Versioned_store.pick_version (Versioned_store.decode_cell snap) ~bound:(tmp 8)
      with
      | Some (v, t) ->
          Alcotest.(check string) "reader sees v5 either way" "v5" (bs v);
          check_bool "tag" true (Tstamp.equal t (tmp 5))
      | None -> Alcotest.fail "reader lost its version to the race")
    [ before; after ];
  (* A reader two requests behind is the one casualty: after v8 lands,
     bound 5 finds nothing — the lagger condition that triggers
     Algorithm 3 — rather than a wrong value. *)
  check_bool "pre-race snapshot still serves bound 5" true
    (Versioned_store.pick_version (Versioned_store.decode_cell before) ~bound:(tmp 5)
    <> None);
  check_bool "post-race lagger miss" true
    (Versioned_store.pick_version (Versioned_store.decode_cell after) ~bound:(tmp 5)
    = None)

let test_store_out_of_order_writes () =
  (* Parallel workers may install versions out of timestamp order; the
     two-slot rule keeps reads coherent. *)
  let _, st = make_store () in
  Versioned_store.register st 1 ~klass:Versioned_store.Registered ~cap:16 ~init:(b "v0");
  Versioned_store.set st 1 (b "v6") ~tmp:(tmp 6);
  Versioned_store.set st 1 (b "v4") ~tmp:(tmp 4);
  Alcotest.(check string) "newest unaffected by late write" "v6"
    (bs (fst (Versioned_store.get st 1)));
  (match Versioned_store.get_before st 1 ~bound:(tmp 6) with
  | Some (v, _) -> Alcotest.(check string) "late version readable" "v4" (bs v)
  | None -> Alcotest.fail "late version lost");
  (* A third out-of-order write lands on the older slot (v4), not v6. *)
  Versioned_store.set st 1 (b "v5") ~tmp:(tmp 5);
  (match Versioned_store.get_before st 1 ~bound:(tmp 6) with
  | Some (v, _) -> Alcotest.(check string) "newer of the two survivors" "v5" (bs v)
  | None -> Alcotest.fail "version lost");
  Alcotest.(check string) "newest still v6" "v6" (bs (fst (Versioned_store.get st 1)))

let store_interleaving_prop =
  (* Any interleaving of writes — out-of-order timestamps, duplicate
     timestamps (idempotent re-execution) — leaves the store equal to
     the two-slot reference model, for every read bound. *)
  QCheck.Test.make ~name:"adversarial write interleavings match the two-slot model"
    ~count:300
    QCheck.(list_of_size Gen.(int_range 1 25) (pair (int_range 1 30) (int_bound 99)))
    (fun writes ->
      let _, st = make_store () in
      Versioned_store.register st 1 ~klass:Versioned_store.Registered ~cap:8
        ~init:(b "i");
      let slot_a = ref (Tstamp.zero, "i") and slot_b = ref (Tstamp.zero, "i") in
      let model_set t v =
        if Tstamp.equal (fst !slot_a) t then slot_a := (t, v)
        else if Tstamp.equal (fst !slot_b) t then slot_b := (t, v)
        else if Tstamp.(fst !slot_a <= fst !slot_b) then slot_a := (t, v)
        else slot_b := (t, v)
      in
      List.for_all
        (fun (c, v) ->
          let t = tmp c and v = string_of_int v in
          Versioned_store.set st 1 (Bytes.of_string v) ~tmp:t;
          model_set t v;
          let newest =
            if Tstamp.(fst !slot_a <= fst !slot_b) then snd !slot_b else snd !slot_a
          in
          bs (fst (Versioned_store.get st 1)) = newest
          && List.for_all
               (fun bound_c ->
                 let bound = tmp bound_c in
                 let expect =
                   [ !slot_a; !slot_b ]
                   |> List.filter (fun (t, _) -> Tstamp.(t < bound))
                   |> List.sort (fun (ta, _) (tb, _) -> Tstamp.compare tb ta)
                   |> function (_, v) :: _ -> Some v | [] -> None
                 in
                 expect
                 = Option.map
                     (fun (v, _) -> bs v)
                     (Versioned_store.get_before st 1 ~bound))
               [ 0; 1; 5; 15; 31 ])
        writes)

(* {1 Update_log} *)

let test_log_range () =
  let log = Update_log.create ~capacity:100 in
  Update_log.append log (tmp 1) 10;
  Update_log.append log (tmp 2) 11;
  Update_log.append log (tmp 2) 12;
  Update_log.append log (tmp 3) 10;
  Alcotest.(check (list int)) "range [2,3]" [ 11; 12; 10 ]
    (Update_log.oids_in_range log ~from:(tmp 2) ~upto:(tmp 3));
  Alcotest.(check (list int)) "range [3,3]" [ 10 ]
    (Update_log.oids_in_range log ~from:(tmp 3) ~upto:(tmp 3));
  Alcotest.(check (list int)) "dedup" [ 10; 11; 12 ]
    (Update_log.oids_in_range log ~from:(tmp 1) ~upto:(tmp 3))

let test_log_truncation () =
  let log = Update_log.create ~capacity:3 in
  for i = 1 to 5 do
    Update_log.append log (tmp i) i
  done;
  check_int "bounded" 3 (Update_log.length log);
  check_bool "covers recent" true (Update_log.covers log ~from:(tmp 3));
  check_bool "does not cover dropped" false (Update_log.covers log ~from:(tmp 2));
  check_bool "range behind truncation rejected" true
    (try
       ignore (Update_log.oids_in_range log ~from:(tmp 1) ~upto:(tmp 5));
       false
     with Invalid_argument _ -> true)

let test_log_out_of_order () =
  (* Parallel execution appends slightly out of order; range queries
     and truncation soundness must survive it. *)
  let log = Update_log.create ~capacity:3 in
  Update_log.append log (tmp 5) 1;
  Update_log.append log (tmp 4) 2;
  Alcotest.(check (list int)) "both retained" [ 1; 2 ]
    (Update_log.oids_in_range log ~from:(tmp 4) ~upto:(tmp 5));
  Update_log.append log (tmp 6) 3;
  Update_log.append log (tmp 7) 4;
  (* Entry (tmp 5) was dropped: coverage from tmp 5 must be denied. *)
  check_bool "coverage sound after out-of-order drop" false
    (Update_log.covers log ~from:(tmp 5))

let test_log_note_gap_head () =
  (* Hole at the log head: a restarted replica adopts a snapshot whose
     prefix it never executed, so nothing at or below the adoption
     point may be served as a delta. *)
  let log = Update_log.create ~capacity:100 in
  Update_log.note_gap log ~upto:(tmp 5);
  check_bool "truncation at the gap" true
    (Tstamp.equal (Update_log.truncation log) (tmp 5));
  check_bool "does not cover the hole" false (Update_log.covers log ~from:(tmp 5));
  check_bool "covers above the hole" true (Update_log.covers log ~from:(tmp 6));
  Update_log.append log (tmp 6) 1;
  Update_log.append log (tmp 7) 2;
  Alcotest.(check (list int)) "range above the hole" [ 1; 2 ]
    (Update_log.oids_in_range log ~from:(tmp 6) ~upto:(tmp 7));
  check_bool "range into the hole rejected" true
    (try
       ignore (Update_log.oids_in_range log ~from:(tmp 5) ~upto:(tmp 7));
       false
     with Invalid_argument _ -> true)

let test_log_note_gap_monotone () =
  (* Back-to-back adopted transfers: the gap only moves forward. A
     second transfer adopting an older snapshot must not un-poison
     ranges behind the first gap. *)
  let log = Update_log.create ~capacity:10 in
  Update_log.append log (tmp 1) 1;
  Update_log.note_gap log ~upto:(tmp 6);
  Update_log.note_gap log ~upto:(tmp 4);
  check_bool "gap is monotone" true
    (Tstamp.equal (Update_log.truncation log) (tmp 6));
  Update_log.note_gap log ~upto:(tmp 9);
  check_bool "gap advances" true (Tstamp.equal (Update_log.truncation log) (tmp 9));
  check_bool "entry below the gap no longer served" false
    (Update_log.covers log ~from:(tmp 1))

let test_log_gap_spanning_truncation () =
  (* Hole spanning the overflow-truncation boundary: a gap behind the
     truncation point is absorbed by it; one ahead of it wins. *)
  let log = Update_log.create ~capacity:3 in
  for i = 1 to 5 do
    Update_log.append log (tmp i) i
  done;
  (* Overflow dropped entries 1 and 2. *)
  Update_log.note_gap log ~upto:(tmp 1);
  check_bool "gap behind truncation absorbed" true
    (Tstamp.equal (Update_log.truncation log) (tmp 2));
  Update_log.note_gap log ~upto:(tmp 4);
  check_bool "gap past truncation wins" true
    (Tstamp.equal (Update_log.truncation log) (tmp 4));
  check_bool "still covers the tail" true (Update_log.covers log ~from:(tmp 5));
  Alcotest.(check (list int)) "tail range still answered" [ 5 ]
    (Update_log.oids_in_range log ~from:(tmp 5) ~upto:(tmp 5))

let test_log_explicit_truncate () =
  (* Checkpoint-driven truncation (DESIGN.md §13): drop the prefix a
     checkpoint captured, and serve exactly the suffix above the cut. *)
  let log = Update_log.create ~capacity:100 in
  for i = 1 to 8 do
    Update_log.append log (tmp i) i
  done;
  check_int "prefix dropped" 5 (Update_log.truncate log ~upto:(tmp 5));
  check_int "suffix retained" 3 (Update_log.length log);
  check_bool "truncation at the cut" true
    (Tstamp.equal (Update_log.truncation log) (tmp 5));
  check_bool "covers above the cut" true (Update_log.covers log ~from:(tmp 6));
  check_bool "no longer covers the cut" false (Update_log.covers log ~from:(tmp 5));
  (* A cut exactly at the truncation point still serves its delta... *)
  Alcotest.(check (list int)) "delta from the cut" [ 6; 7; 8 ]
    (Update_log.oids_after log ~after:(tmp 5) ~upto:(tmp 8));
  (* ...but anything reaching strictly behind it is refused. *)
  check_bool "delta behind the cut refused" true
    (try
       ignore (Update_log.oids_after log ~after:(tmp 4) ~upto:(tmp 8));
       false
     with Invalid_argument _ -> true);
  (* Re-truncating at the same point is a no-op, and truncating past
     every retained entry still advances the point: the caller vouches
     a checkpoint captured those updates, so the log must refuse them
     from now on even though it dropped nothing extra. *)
  check_int "re-truncate drops nothing" 0 (Update_log.truncate log ~upto:(tmp 5));
  check_int "truncate past the tail" 3 (Update_log.truncate log ~upto:(tmp 9));
  check_bool "point advances past the tail" true
    (Tstamp.equal (Update_log.truncation log) (tmp 9));
  check_bool "future coverage intact" true (Update_log.covers log ~from:(tmp 10))

let test_log_truncate_note_gap_compose () =
  (* Checkpoint truncation and transfer-adoption gaps feed one monotone
     frontier: whichever is further ahead wins, and neither un-poisons
     ranges behind the other. This is the §13/§10 composition a
     checkpointing replica that also adopts transfers relies on. *)
  let log = Update_log.create ~capacity:100 in
  for i = 1 to 10 do
    Update_log.append log (tmp i) i
  done;
  ignore (Update_log.truncate log ~upto:(tmp 6));
  Update_log.note_gap log ~upto:(tmp 3);
  check_bool "stale gap absorbed by truncation" true
    (Tstamp.equal (Update_log.truncation log) (tmp 6));
  Update_log.note_gap log ~upto:(tmp 8);
  check_bool "gap past truncation wins" true
    (Tstamp.equal (Update_log.truncation log) (tmp 8));
  (* A checkpoint truncating behind the gap still drops its physical
     prefix, but cannot move the frontier backwards. *)
  check_int "truncate behind gap drops its prefix" 1
    (Update_log.truncate log ~upto:(tmp 7));
  check_bool "frontier stays at the gap" true
    (Tstamp.equal (Update_log.truncation log) (tmp 8));
  Alcotest.(check (list int)) "delta above the merged frontier" [ 9; 10 ]
    (Update_log.oids_after log ~after:(tmp 8) ~upto:(tmp 10))

(* Property: arbitrary interleavings of appends, checkpoint truncations
   and adoption gaps leave the log answering [oids_after] from its
   merged frontier exactly like a reference scan — truncation never
   loses a suffix entry and never serves a poisoned one. *)
let log_truncate_model_prop =
  QCheck.Test.make ~name:"truncate/note_gap interleavings match model" ~count:300
    QCheck.(
      list_of_size
        Gen.(int_range 1 40)
        (triple (int_range 0 2) (int_range 1 30) (int_bound 9)))
    (fun ops ->
      let log = Update_log.create ~capacity:1000 in
      let frontier = ref 0 in
      let entries = ref [] in
      List.iter
        (fun (op, t, oid) ->
          match op with
          | 0 ->
              Update_log.append log (tmp t) oid;
              entries := !entries @ [ (t, oid) ]
          | 1 ->
              ignore (Update_log.truncate log ~upto:(tmp t));
              frontier := max !frontier t
          | _ ->
              Update_log.note_gap log ~upto:(tmp t);
              frontier := max !frontier t)
        ops;
      let model =
        let seen = Hashtbl.create 8 in
        List.filter_map
          (fun (t, oid) ->
            if t > !frontier && not (Hashtbl.mem seen oid) then begin
              Hashtbl.add seen oid ();
              Some oid
            end
            else None)
          !entries
      in
      Tstamp.equal (Update_log.truncation log) (tmp !frontier)
      && Update_log.oids_after log ~after:(tmp !frontier) ~upto:(tmp 30) = model)

(* Property: [oids_in_range] returns the distinct oids of the range in
   first-update order — exactly what a reference scan over the append
   sequence produces (duplicates coalesced onto their first update). *)
let log_range_model_prop =
  QCheck.Test.make ~name:"oids_in_range = first-update-order dedup (vs model)"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 40) (pair (int_range 1 20) (int_bound 9)))
        (pair (int_range 1 20) (int_range 1 20)))
    (fun (entries, (a, b)) ->
      let from = min a b and upto = max a b in
      let log = Update_log.create ~capacity:1000 in
      List.iter (fun (t, oid) -> Update_log.append log (tmp t) oid) entries;
      let model =
        let seen = Hashtbl.create 8 in
        List.filter_map
          (fun (t, oid) ->
            if t >= from && t <= upto && not (Hashtbl.mem seen oid) then begin
              Hashtbl.add seen oid ();
              Some oid
            end
            else None)
          entries
      in
      Update_log.oids_in_range log ~from:(tmp from) ~upto:(tmp upto) = model)

(* Property: a migration-shipped prefix composes with [note_gap] the
   way the replica uses it — the dst poisons the log up to the
   migration's cut (shipped cells stand in for every earlier update it
   never executed), then appends the migrated-in objects and later
   traffic above the cut. Ranges above the cut answer from the model;
   anything reaching the cut is refused, forcing donors to a full
   transfer. *)
let log_gap_migration_prop =
  QCheck.Test.make ~name:"note_gap composes with a migration-shipped prefix"
    ~count:300
    QCheck.(
      triple (int_range 1 15)
        (list_of_size Gen.(int_range 0 20) (pair (int_range 1 15) (int_bound 9)))
        (list_of_size Gen.(int_range 1 20) (pair (int_range 16 30) (int_bound 9))))
    (fun (cut, pre, post) ->
      let log = Update_log.create ~capacity:1000 in
      List.iter (fun (t, oid) -> Update_log.append log (tmp t) oid) pre;
      Update_log.note_gap log ~upto:(tmp cut);
      List.iter (fun (t, oid) -> Update_log.append log (tmp t) oid) post;
      let model =
        let seen = Hashtbl.create 8 in
        List.filter_map
          (fun (t, oid) ->
            if t >= 16 && not (Hashtbl.mem seen oid) then begin
              Hashtbl.add seen oid ();
              Some oid
            end
            else None)
          (pre @ post)
      in
      Update_log.covers log ~from:(tmp 16)
      && (not (Update_log.covers log ~from:(tmp cut)))
      && Update_log.oids_in_range log ~from:(tmp 16) ~upto:(tmp 30) = model
      && try
           ignore (Update_log.oids_in_range log ~from:(tmp cut) ~upto:(tmp 30));
           false
         with Invalid_argument _ -> true)

(* {1 Coord_mem / Statesync_mem} *)

let test_coord_mem () =
  let eng = Engine.create () in
  let fab = Fabric.create eng ~profile:Profile.default in
  let node = Fabric.add_node fab ~name:"n" in
  let cm = Coord_mem.create node ~partitions:2 ~replicas:3 in
  Coord_mem.write_local cm ~part:1 ~idx:2 (tmp 5) ~stage:1;
  let t, s = Coord_mem.read_slot cm ~part:1 ~idx:2 in
  check_bool "slot tmp" true (Tstamp.equal t (tmp 5));
  check_int "slot stage" 1 s;
  check_bool "reached same stage" true
    (Coord_mem.reached cm ~part:1 ~idx:2 ~tmp:(tmp 5) ~stage:1);
  check_bool "not reached higher stage" false
    (Coord_mem.reached cm ~part:1 ~idx:2 ~tmp:(tmp 5) ~stage:2);
  check_bool "reached when moved past" true
    (Coord_mem.reached cm ~part:1 ~idx:2 ~tmp:(tmp 4) ~stage:2);
  check_bool "not reached for future" false
    (Coord_mem.reached cm ~part:1 ~idx:2 ~tmp:(tmp 6) ~stage:1);
  check_int "count" 1
    (Coord_mem.count_reached cm ~part:1 ~replicas:3 ~tmp:(tmp 5) ~stage:1);
  (* The wire encoding matches what write_local stores. *)
  let enc = Coord_mem.encode_slot (tmp 7) ~stage:2 in
  check_int "slot bytes" Coord_mem.slot_bytes (Bytes.length enc);
  check_i64 "encoded tmp" (Tstamp.to_int64 (tmp 7)) (Bytes.get_int64_le enc 0)

let test_statesync_mem () =
  let eng = Engine.create () in
  let fab = Fabric.create eng ~profile:Profile.default in
  let node = Fabric.add_node fab ~name:"n" in
  let sm = Statesync_mem.create node ~replicas:3 in
  Statesync_mem.write_local sm ~idx:1 (tmp 9) ~status:1;
  let t, s = Statesync_mem.read_slot sm ~idx:1 in
  check_bool "tmp" true (Tstamp.equal t (tmp 9));
  check_int "status" 1 s;
  let t0, s0 = Statesync_mem.read_slot sm ~idx:0 in
  check_bool "other slots idle" true (Tstamp.equal t0 Tstamp.zero && s0 = 0)

(* {1 End-to-end KV system} *)

type kv_world = {
  eng : Engine.t;
  sys : (Kv_app.req, Kv_app.resp) System.t;
}

let make_kv ?(seed = 1) ?(keys = 16) ?(partitions = 2) ?(replicas = 3) ?(init = 0L)
    ?(tweak = fun c -> c) () =
  let eng = Engine.create ~seed () in
  let cfg = tweak (Config.default ~partitions ~replicas) in
  let sys = System.create eng ~cfg ~app:(Kv_app.app ~keys ~partitions ~init) in
  System.start sys;
  { eng; sys }

let on_client w name f =
  let node = System.new_client_node w.sys ~name in
  Fabric.spawn_on node (fun () -> f node)

let value_resp = function
  | Kv_app.Value v -> v
  | r -> Alcotest.failf "expected Value, got %a" Kv_app.pp_resp r

(* All replicas of each partition hold the same registered state. *)
let assert_replicas_converged w =
  let reps = System.replicas w.sys in
  Array.iteri
    (fun p row ->
      let reference = Replica.store row.(0) in
      Array.iteri
        (fun i r ->
          if i > 0 then
            List.iter
              (fun oid ->
                let v0, t0 = Versioned_store.get reference oid in
                let vi, ti = Versioned_store.get (Replica.store r) oid in
                if not (Bytes.equal v0 vi && Tstamp.equal t0 ti) then
                  Alcotest.failf "partition %d replica %d diverged on oid %d" p i
                    (Oid.to_int oid))
              (Versioned_store.registered_oids reference))
        row)
    reps

let test_kv_single_partition () =
  let w = make_kv ~partitions:1 () in
  let got = ref [] in
  on_client w "c0" (fun node ->
      let put = System.submit w.sys ~from:node (Kv_app.Put (3, 42L)) in
      got := ("put", snd (List.hd put)) :: !got;
      let get = System.submit w.sys ~from:node (Kv_app.Get 3) in
      got := ("get", snd (List.hd get)) :: !got;
      let add = System.submit w.sys ~from:node (Kv_app.Add (3, 8L)) in
      got := ("add", snd (List.hd add)) :: !got);
  Engine.run_until w.eng (Time_ns.ms 10);
  check_int "three responses" 3 (List.length !got);
  check_i64 "get sees put" 42L (value_resp (List.assoc "get" !got));
  check_i64 "add returns new value" 50L (value_resp (List.assoc "add" !got));
  assert_replicas_converged w

let test_kv_multi_partition_transfer () =
  let w = make_kv ~partitions:2 ~init:100L () in
  let done_ = ref false in
  on_client w "c0" (fun node ->
      (* keys 0 and 1 live in different partitions *)
      ignore (System.submit w.sys ~from:node (Kv_app.Transfer { src = 0; dst = 1; amount = 30L }));
      let r = System.submit w.sys ~from:node (Kv_app.Read_all [ 0; 1 ]) in
      (* Both partitions execute and must return identical snapshots. *)
      check_int "replies from both partitions" 2 (List.length r);
      List.iter
        (fun (_, resp) ->
          match resp with
          | Kv_app.Values [ (0, a); (1, b) ] ->
              check_i64 "src debited" 70L a;
              check_i64 "dst credited" 130L b
          | other -> Alcotest.failf "unexpected %a" Kv_app.pp_resp other)
        r;
      done_ := true);
  Engine.run_until w.eng (Time_ns.ms 10);
  check_bool "client finished" true !done_;
  assert_replicas_converged w

(* The Figure 3 invariant: keys incremented together read equal. *)
let run_fig3_workload ~seed ~ops =
  let w = make_kv ~seed ~keys:4 ~partitions:2 ~init:0L () in
  let violations = ref 0 in
  let reads = ref 0 in
  (* Two writers hammer Incr_all on {0,1} (partitions 0 and 1); two
     readers check Read_all snapshots. *)
  for c = 0 to 1 do
    on_client w (Printf.sprintf "w%d" c) (fun node ->
        for _ = 1 to ops do
          ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ]))
        done)
  done;
  for c = 0 to 1 do
    on_client w (Printf.sprintf "r%d" c) (fun node ->
        for _ = 1 to ops do
          let resp = System.submit w.sys ~from:node (Kv_app.Read_all [ 0; 1 ]) in
          List.iter
            (fun (_, r) ->
              match r with
              | Kv_app.Values [ (0, a); (1, b) ] ->
                  incr reads;
                  if not (Int64.equal a b) then incr violations
              | _ -> incr violations)
            resp
        done)
  done;
  Engine.run_until w.eng (Time_ns.s 2);
  (w, !violations, !reads)

let test_kv_fig3_invariant () =
  let w, violations, reads = run_fig3_workload ~seed:3 ~ops:30 in
  check_bool "snapshots observed" true (reads > 0);
  check_int "no torn snapshots" 0 violations;
  assert_replicas_converged w;
  (* Both partitions ended with the same count: 2 writers x 30 ops. *)
  let st = Replica.store (System.replica w.sys ~part:0 ~idx:0) in
  check_i64 "final count" 60L (Bytes.get_int64_le (fst (Versioned_store.get st 0)) 0)

let fig3_invariant_prop =
  QCheck.Test.make ~name:"fig3 snapshot invariant across seeds" ~count:8
    QCheck.(int_bound 1000)
    (fun seed ->
      let _, violations, reads = run_fig3_workload ~seed ~ops:10 in
      reads > 0 && violations = 0)

let test_kv_conservation () =
  (* Random transfers conserve the total across 3 partitions. *)
  let w = make_kv ~seed:11 ~keys:9 ~partitions:3 ~init:1000L () in
  let rng = Random.State.make [| 5 |] in
  for c = 0 to 3 do
    on_client w (Printf.sprintf "c%d" c) (fun node ->
        for _ = 1 to 25 do
          let src = Random.State.int rng 9 and dst = Random.State.int rng 9 in
          if src <> dst then
            ignore
              (System.submit w.sys ~from:node
                 (Kv_app.Transfer { src; dst; amount = Int64.of_int (Random.State.int rng 50) }))
        done)
  done;
  Engine.run_until w.eng (Time_ns.s 2);
  assert_replicas_converged w;
  let total = ref 0L in
  for k = 0 to 8 do
    let p = Kv_app.partition_of_key ~partitions:3 k in
    let st = Replica.store (System.replica w.sys ~part:p ~idx:0) in
    total := Int64.add !total (Bytes.get_int64_le (fst (Versioned_store.get st (Kv_app.oid_of_key k))) 0)
  done;
  check_i64 "money conserved" 9000L !total

let test_kv_determinism () =
  let final_state seed =
    let w, _, _ = run_fig3_workload ~seed ~ops:10 in
    let st = Replica.store (System.replica w.sys ~part:0 ~idx:0) in
    List.map
      (fun oid -> (oid, bs (fst (Versioned_store.get st oid))))
      (Versioned_store.registered_oids st)
  in
  check_bool "same seed same state" true (final_state 21 = final_state 21)

let test_kv_lagger_state_transfer () =
  (* Make replica 2 of partition 0 much slower than its peers, under
     majority-only coordination: it falls behind, its remote reads find
     only too-new versions, and it must recover via state transfer. *)
  let w =
    make_kv ~seed:7 ~keys:4 ~partitions:2 ~init:0L
      ~tweak:(fun c ->
        { c with Config.wait_phase2 = Config.Majority; wait_phase4 = Config.Majority })
      ()
  in
  let slow = System.replica w.sys ~part:0 ~idx:2 in
  Replica.inject_exec_delay slow (Time_ns.us 400);
  for c = 0 to 2 do
    on_client w (Printf.sprintf "c%d" c) (fun node ->
        for _ = 1 to 40 do
          ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ]))
        done)
  done;
  Engine.run_until w.eng (Time_ns.s 2);
  let st = Replica.stats slow in
  check_bool "slow replica lagged" true (st.Replica.st_laggers > 0);
  check_bool "slow replica skipped deliveries" true (st.Replica.st_skipped > 0);
  let donors =
    List.filter
      (fun i -> (Replica.stats (System.replica w.sys ~part:0 ~idx:i)).Replica.st_transfers_served > 0)
      [ 0; 1 ]
  in
  check_bool "some peer served a transfer" true (donors <> []);
  (* Despite lagging, the partition converged. *)
  Replica.inject_exec_delay slow 0;
  Engine.run_until w.eng (Time_ns.s 3);
  let reference = Replica.store (System.replica w.sys ~part:0 ~idx:0) in
  let slow_store = Replica.store slow in
  List.iter
    (fun oid ->
      let v0, _ = Versioned_store.get reference oid in
      let v2, _ = Versioned_store.get slow_store oid in
      if not (Bytes.equal v0 v2) then
        Alcotest.failf "lagger diverged on oid %d" (Oid.to_int oid))
    (Versioned_store.registered_oids reference)

let test_kv_forced_state_transfer () =
  (* Directly exercise Algorithm 3: run some updates, then ask a
     replica to synchronise from a timestamp it already has — the
     donor answers with a (possibly empty) delta and status returns
     to 0. *)
  let w = make_kv ~partitions:1 ~keys:2 () in
  let finished = ref false in
  on_client w "c0" (fun node ->
      for i = 1 to 5 do
        ignore (System.submit w.sys ~from:node (Kv_app.Put (0, Int64.of_int i)))
      done;
      let r2 = System.replica w.sys ~part:0 ~idx:2 in
      let target = Replica.last_req (System.replica w.sys ~part:0 ~idx:0) in
      Replica.force_state_transfer r2 ~failed_tmp:target;
      check_bool "last_req advanced" true Tstamp.(target <= Replica.last_req r2);
      finished := true);
  Engine.run_until w.eng (Time_ns.s 1);
  check_bool "transfer completed" true !finished

let test_kv_back_to_back_adopted_transfers () =
  (* Two adopted transfers in a row on a genuinely lagging replica: the
     first adoption leaves a hole in its update log (it never executed
     the shipped prefix), the second must cope with that hole — the
     donor falls back to a full transfer rather than shipping a delta
     across it — and the gap point only moves forward. *)
  let w =
    make_kv ~seed:9 ~keys:4 ~partitions:1 ~init:0L
      ~tweak:(fun c ->
        { c with Config.wait_phase2 = Config.Majority; wait_phase4 = Config.Majority })
      ()
  in
  let r2 = System.replica w.sys ~part:0 ~idx:2 in
  Replica.inject_exec_delay r2 (Time_ns.us 400);
  let finished = ref false in
  on_client w "c0" (fun node ->
      for i = 1 to 30 do
        ignore (System.submit w.sys ~from:node (Kv_app.Add (i mod 4, 1L)))
      done;
      let t1 = Replica.last_req (System.replica w.sys ~part:0 ~idx:0) in
      Replica.force_state_transfer r2 ~failed_tmp:t1;
      let g1 = Update_log.truncation (Replica.update_log r2) in
      check_bool "first adoption leaves a log hole" false (Tstamp.equal g1 Tstamp.zero);
      check_bool "hole reaches the adoption point" true Tstamp.(t1 <= g1);
      for i = 1 to 30 do
        ignore (System.submit w.sys ~from:node (Kv_app.Add (i mod 4, 1L)))
      done;
      let t2 = Replica.last_req (System.replica w.sys ~part:0 ~idx:0) in
      Replica.force_state_transfer r2 ~failed_tmp:t2;
      let g2 = Update_log.truncation (Replica.update_log r2) in
      check_bool "gap only moves forward" true Tstamp.(g1 <= g2);
      check_bool "caught up to the second adoption" true
        Tstamp.(t2 <= Replica.last_req r2);
      finished := true);
  Engine.run_until w.eng (Time_ns.s 2);
  check_bool "both transfers completed" true !finished;
  Replica.inject_exec_delay r2 0;
  Engine.run_until w.eng (Time_ns.s 3);
  assert_replicas_converged w;
  Array.iter
    (fun row ->
      Array.iter
        (fun r ->
          match Replica.check_invariants r with
          | Ok () -> ()
          | Error m -> Alcotest.failf "invariant breach: %s" m)
        row)
    (System.replicas w.sys)

let test_kv_replica_crash_tolerated () =
  (* With one replica of each partition dead, requests still complete
     (majority coordination + multicast quorums). *)
  let w = make_kv ~seed:13 ~keys:4 ~partitions:2 ~init:5L () in
  Fabric.crash (Replica.node (System.replica w.sys ~part:0 ~idx:2));
  Fabric.crash (Replica.node (System.replica w.sys ~part:1 ~idx:1));
  let ok = ref 0 in
  on_client w "c0" (fun node ->
      for _ = 1 to 10 do
        ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ]));
        incr ok
      done;
      let r = System.submit w.sys ~from:node (Kv_app.Read_all [ 0; 1 ]) in
      List.iter
        (fun (_, resp) ->
          match resp with
          | Kv_app.Values [ (0, a); (1, b) ] ->
              check_i64 "a" 15L a;
              check_i64 "b" 15L b
          | other -> Alcotest.failf "unexpected %a" Kv_app.pp_resp other)
        r);
  Engine.run_until w.eng (Time_ns.s 2);
  check_int "all requests completed" 10 !ok

let test_kv_read_outside_read_set_rejected () =
  (* An app bug (read not declared) is caught, not silently wrong. *)
  let app = Kv_app.app ~keys:2 ~partitions:1 ~init:0L in
  let broken =
    {
      app with
      App.read_set = (fun _ -> []);
      execute = (fun ctx _ -> Kv_app.Value (Bytes.get_int64_le (ctx.App.ctx_read (Oid.of_int 0)) 0));
    }
  in
  let eng = Engine.create () in
  let cfg = Config.default ~partitions:1 ~replicas:1 in
  let sys = System.create eng ~cfg ~app:broken in
  System.start sys;
  let node = System.new_client_node sys ~name:"c" in
  Fabric.spawn_on node (fun () -> ignore (System.submit sys ~from:node (Kv_app.Get 0)));
  check_bool "invalid read rejected" true
    (try
       Engine.run_until eng (Time_ns.ms 10);
       false
     with Invalid_argument _ -> true)

let test_kv_trace_spans () =
  let w = make_kv ~partitions:2 () in
  let tr = Trace.create () in
  Replica.set_tracer (System.replica w.sys ~part:0 ~idx:0) tr;
  on_client w "c0" (fun node ->
      ignore (System.submit w.sys ~from:node (Kv_app.Put (0, 1L)));
      ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ])));
  Engine.run_until w.eng (Time_ns.ms 20);
  let names = List.map (fun s -> s.Trace.sp_name) (Trace.spans tr) in
  Alcotest.(check (list string))
    "request timelines recorded"
    [ "ordering"; "execute"; "ordering"; "phase2"; "execute"; "phase4" ]
    names;
  check_bool "timeline renders" true (String.length (Trace.render_timeline tr) > 0)

let test_kv_stats_recorded () =
  let w = make_kv ~partitions:2 () in
  on_client w "c0" (fun node ->
      ignore (System.submit w.sys ~from:node (Kv_app.Put (0, 1L)));
      ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ])));
  Engine.run_until w.eng (Time_ns.ms 20);
  let st = Replica.stats (System.replica w.sys ~part:0 ~idx:0) in
  check_int "executed" 2 st.Replica.st_executed;
  check_int "one multi-partition" 1 st.Replica.st_multi;
  check_int "coord samples" 1 (Heron_stats.Sample_set.count st.Replica.st_coord);
  check_bool "ordering latency positive" true
    (Heron_stats.Sample_set.min_value st.Replica.st_ordering > 0)

let test_kv_crash_restart_rejoin () =
  (* The paper's worst case (Section V-E): a replica crashes, loses its
     memory, restarts, transfers the complete state from a peer, and
     resumes executing. *)
  let w = make_kv ~seed:23 ~keys:6 ~partitions:2 ~init:10L () in
  let victim_node = Replica.node (System.replica w.sys ~part:0 ~idx:2) in
  let phase = ref `Before in
  let after_ops = ref 0 in
  on_client w "driver" (fun node ->
      for _ = 1 to 15 do
        ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ]))
      done;
      Fabric.crash victim_node;
      phase := `Crashed;
      for _ = 1 to 15 do
        ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ]))
      done;
      System.restart_replica w.sys ~part:0 ~idx:2;
      phase := `Restarted;
      Engine.sleep (Time_ns.ms 5);
      for _ = 1 to 15 do
        ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ]));
        incr after_ops
      done);
  Engine.run_until w.eng (Time_ns.s 5);
  check_bool "made it through all phases" true (!phase = `Restarted);
  check_int "post-restart requests completed" 15 !after_ops;
  (* The restarted replica converged with the majority... *)
  let fresh = System.replica w.sys ~part:0 ~idx:2 in
  let reference = Replica.store (System.replica w.sys ~part:0 ~idx:0) in
  List.iter
    (fun oid ->
      let v0, _ = Versioned_store.get reference oid in
      let v2, _ = Versioned_store.get (Replica.store fresh) oid in
      if not (Bytes.equal v0 v2) then
        Alcotest.failf "restarted replica diverged on oid %d" (Oid.to_int oid))
    (Versioned_store.registered_oids reference);
  (* ... and actually executed requests after rejoining. *)
  check_bool "fresh replica executed post-restart traffic" true
    ((Replica.stats fresh).Replica.st_executed > 0);
  check_i64 "state reflects all 45 increments" 55L
    (Bytes.get_int64_le (fst (Versioned_store.get (Replica.store fresh) (Kv_app.oid_of_key 0))) 0)

let test_kv_leader_crash_tolerated () =
  (* Crash the replica that is also its partition's multicast leader:
     leadership moves to a follower, deliveries resume, and requests
     keep completing. *)
  let w = make_kv ~seed:41 ~keys:4 ~partitions:2 ~init:0L () in
  let ok = ref 0 in
  on_client w "c0" (fun node ->
      for _ = 1 to 5 do
        ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ]))
      done;
      Fabric.crash (Replica.node (System.replica w.sys ~part:0 ~idx:0));
      (* Give failure detection a moment, then keep going. *)
      Engine.sleep (Time_ns.ms 2);
      for _ = 1 to 10 do
        ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ]));
        incr ok
      done);
  Engine.run_until w.eng (Time_ns.s 5);
  check_int "requests completed after leader crash" 10 !ok;
  check_int "leadership moved" 1
    (Heron_multicast.Ramcast.leader_idx (System.multicast w.sys) ~gid:0);
  (* Surviving replicas agree. *)
  let s1 = Replica.store (System.replica w.sys ~part:0 ~idx:1) in
  let s2 = Replica.store (System.replica w.sys ~part:0 ~idx:2) in
  List.iter
    (fun oid ->
      if not (Bytes.equal (fst (Versioned_store.get s1 oid)) (fst (Versioned_store.get s2 oid)))
      then Alcotest.failf "survivors diverged on %d" (Oid.to_int oid))
    (Versioned_store.registered_oids s1);
  (* The ex-leader can rejoin as a follower and catch up. *)
  System.restart_replica w.sys ~part:0 ~idx:0;
  on_client w "c1" (fun node ->
      for _ = 1 to 5 do
        ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ]))
      done);
  Engine.run_until w.eng (Time_ns.s 10);
  let fresh = Replica.store (System.replica w.sys ~part:0 ~idx:0) in
  List.iter
    (fun oid ->
      if not (Bytes.equal (fst (Versioned_store.get fresh oid)) (fst (Versioned_store.get s1 oid)))
      then Alcotest.failf "rejoined ex-leader diverged on %d" (Oid.to_int oid))
    (Versioned_store.registered_oids s1)

(* Random crash/restart schedules against continuous traffic: the
   system keeps serving, and live replicas converge. One follower per
   partition may be down at any time (f = 1). *)
let run_chaos_schedule ?(durability = false) seed =
      let tweak c =
        if durability then
          { c with
            Config.durability =
              { Config.dur_enabled = true; dur_interval_ns = 500_000 };
            metrics = Heron_obs.Metrics.create () }
        else c
      in
      let w = make_kv ~seed ~keys:4 ~partitions:2 ~init:0L ~tweak () in
      let completed = ref 0 in
      for c = 0 to 2 do
        on_client w (Printf.sprintf "c%d" c) (fun node ->
            for _ = 1 to 40 do
              ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ]));
              incr completed
            done)
      done;
      (* Chaos fiber: repeatedly crash and later restart follower 2 of
         alternating partitions. *)
      let chaos = Fabric.add_node (System.fabric w.sys) ~name:"chaos" in
      let rng = Random.State.make [| seed; 0xC0A05 |] in
      Fabric.spawn_on chaos (fun () ->
          for round = 0 to 3 do
            Engine.sleep (Time_ns.us (200 + Random.State.int rng 800));
            let part = round mod 2 in
            let victim = System.replica w.sys ~part ~idx:2 in
            Fabric.crash (Replica.node victim);
            Engine.sleep (Time_ns.us (300 + Random.State.int rng 900));
            System.restart_replica w.sys ~part ~idx:2
          done);
      Engine.run_until w.eng (Time_ns.s 20);
      if !completed <> 120 then failwith "traffic stalled under chaos";
      (* All live replicas of each partition agree. *)
      Array.iteri
        (fun p row ->
          let live = Array.to_list row
            |> List.filter (fun r -> Fabric.is_alive (Replica.node r)) in
          match live with
          | [] -> failwith "no live replicas"
          | first :: rest ->
              let ref_store = Replica.store first in
              List.iter
                (fun r ->
                  List.iter
                    (fun oid ->
                      if not (Bytes.equal
                                (fst (Versioned_store.get ref_store oid))
                                (fst (Versioned_store.get (Replica.store r) oid)))
                      then failwith (Printf.sprintf "partition %d diverged" p))
                    (Versioned_store.registered_oids ref_store))
                rest)
        (System.replicas w.sys);
      true

(* This property was once flaky: qcheck draws fresh inputs every run,
   and a handful of inputs in [0, 10000] diverged (the seed-3206 rejoin
   gap, pinned below). The input domain has since been swept
   exhaustively — every input in [0, 10000] converges (and [0, 400]
   with checkpointing on) — so any new failure here is a real
   regression, not an unlucky draw. *)
let chaos_crash_restart_prop =
  QCheck.Test.make ~name:"chaos: random follower crash/restart schedules" ~count:5
    QCheck.(int_bound 10_000)
    run_chaos_schedule

let chaos_crash_restart_durability_prop =
  QCheck.Test.make
    ~name:"chaos: crash/restart schedules with checkpointing on" ~count:5
    QCheck.(int_bound 10_000)
    (run_chaos_schedule ~durability:true)

let test_chaos_regression_rejoin_gap () =
  (* Pinned schedule (qcheck seed 3206). This input once diverged: a
     restarted follower asked for recovery from its own last-applied
     tmp, but entries already dispatched to the leader's log before the
     rejoin — and applied by the donor only after the snapshot — were
     covered by neither the transfer nor redelivery, leaving a permanent
     hole that delta transfers then propagated. The fix requests
     recovery from the leader's dispatch horizon and marks adopted
     transfers as log gaps. *)
  check_bool "seed 3206 converges" true (run_chaos_schedule 3206)

(* {1 Parallel execution (Section III-D.1 extension)} *)

let test_parallel_correctness () =
  (* workers = 4: disjoint-key updates run concurrently, transfers act
     as multi-partition barriers; conservation and convergence must
     hold exactly as in sequential mode. *)
  let w =
    make_kv ~seed:17 ~keys:8 ~partitions:2 ~init:100L
      ~tweak:(fun c -> { c with Config.workers = 4 })
      ()
  in
  let rng = Random.State.make [| 3 |] in
  for c = 0 to 3 do
    on_client w (Printf.sprintf "c%d" c) (fun node ->
        for _ = 1 to 30 do
          match Random.State.int rng 3 with
          | 0 ->
              let k = Random.State.int rng 8 in
              ignore (System.submit w.sys ~from:node (Kv_app.Add (k, 1L)))
          | 1 ->
              let src = Random.State.int rng 8 in
              let dst = (src + 3) mod 8 in
              ignore
                (System.submit w.sys ~from:node
                   (Kv_app.Transfer { src; dst; amount = 5L }))
          | _ -> ignore (System.submit w.sys ~from:node (Kv_app.Read_all [ 0; 1; 2 ]))
        done)
  done;
  Engine.run_until w.eng (Time_ns.s 3);
  assert_replicas_converged w;
  (* Adds create money; transfers conserve: recompute expected total
     from the adds executed. *)
  let total = ref 0L in
  for k = 0 to 7 do
    let p = Kv_app.partition_of_key ~partitions:2 k in
    let st = Replica.store (System.replica w.sys ~part:p ~idx:0) in
    total :=
      Int64.add !total (Bytes.get_int64_le (fst (Versioned_store.get st (Kv_app.oid_of_key k))) 0)
  done;
  (* 8 keys x 100 initial; adds add 1 each; transfers move 5. The exact
     number of adds is workload-dependent, but the total must be
     800 + (#adds): recompute by draining stats. *)
  let executed =
    Array.fold_left
      (fun acc row -> acc + (Replica.stats row.(0)).Replica.st_executed)
      0 (System.replicas w.sys)
  in
  check_bool "requests executed" true (executed > 0);
  check_bool "total is initial plus adds" true
    (Int64.to_int !total >= 800 && Int64.to_int !total <= 800 + 120)

let test_parallel_speedup () =
  (* Disjoint-key writes from many clients: 4 workers should clearly
     outrun 1 (execution dominates single-partition latency). *)
  let run workers =
    let w =
      make_kv ~seed:5 ~keys:16 ~partitions:1 ~init:0L
        ~tweak:(fun c ->
          {
            c with
            Config.workers;
            costs = { c.Config.costs with Config.exec_base_ns = 30_000 };
          })
        ()
    in
    let completed = ref 0 in
    for c = 0 to 7 do
      on_client w (Printf.sprintf "c%d" c) (fun node ->
          let rec loop () =
            ignore (System.submit w.sys ~from:node (Kv_app.Put (c * 2, 1L)));
            incr completed;
            loop ()
          in
          loop ())
    done;
    Engine.run_until w.eng (Time_ns.ms 50);
    !completed
  in
  let seq = run 1 and par = run 4 in
  check_bool
    (Printf.sprintf "parallel beats sequential (%d vs %d)" par seq)
    true
    (float_of_int par > 1.5 *. float_of_int seq)

let test_parallel_conflicts_serialize () =
  (* All clients hammer the same key: order must be preserved even with
     many workers — the final value equals the number of increments. *)
  let w =
    make_kv ~seed:9 ~keys:2 ~partitions:1 ~init:0L
      ~tweak:(fun c -> { c with Config.workers = 8 })
      ()
  in
  let per_client = 25 in
  for c = 0 to 3 do
    on_client w (Printf.sprintf "c%d" c) (fun node ->
        for _ = 1 to per_client do
          ignore (System.submit w.sys ~from:node (Kv_app.Add (0, 1L)))
        done)
  done;
  Engine.run_until w.eng (Time_ns.s 3);
  let st = Replica.store (System.replica w.sys ~part:0 ~idx:0) in
  check_i64 "all increments applied in order" (Int64.of_int (4 * per_client))
    (Bytes.get_int64_le (fst (Versioned_store.get st (Kv_app.oid_of_key 0))) 0);
  assert_replicas_converged w

(* {1 Conflict index (O(footprint) admission)} *)

let oids = List.map Oid.of_int

let test_conflict_index_rules () =
  let open Conflict_index in
  let t = create () in
  let a = footprint ~reads:(oids [ 1; 2 ]) ~writes:(oids [ 3 ]) in
  let rd3 = footprint ~reads:(oids [ 3 ]) ~writes:[] in
  let wr2 = footprint ~reads:[] ~writes:(oids [ 2 ]) in
  let shared = footprint ~reads:(oids [ 1; 2 ]) ~writes:(oids [ 4 ]) in
  check_bool "empty index admits" true (can_admit t a);
  admit t a;
  check_bool "read of in-flight write blocked" false (can_admit t rd3);
  check_bool "write of in-flight read blocked" false (can_admit t wr2);
  check_bool "shared readers admitted" true (can_admit t shared);
  admit t shared;
  retire t a;
  check_bool "retire reopens the written object" true (can_admit t rd3);
  check_bool "surviving reader still pins object 2" false (can_admit t wr2);
  retire t shared;
  check_bool "all clear after both retire" true (can_admit t wr2);
  check_int "index drains empty" 0 (live_objects t)

let test_conflict_index_normalization () =
  let open Conflict_index in
  (* Duplicates collapse, and a read of an object the request also
     writes is subsumed by the write entry. *)
  let f = footprint ~reads:(oids [ 5; 5; 6 ]) ~writes:(oids [ 5 ]) in
  check_int "dedup + read-of-own-write" 2 (footprint_size f);
  let t = create () in
  admit t f;
  check_bool "write entry blocks readers" false
    (can_admit t (footprint ~reads:(oids [ 5 ]) ~writes:[]));
  check_bool "read entry shares with readers" true
    (can_admit t (footprint ~reads:(oids [ 6 ]) ~writes:[]));
  check_bool "read entry blocks writers" false
    (can_admit t (footprint ~reads:[] ~writes:(oids [ 6 ])));
  retire t f;
  check_int "drained" 0 (live_objects t)

let test_conflict_index_admission_is_o_footprint () =
  (* Acceptance micro-check: admitting against 64 in-flight
     non-conflicting requests probes exactly as many index entries as
     against 8 — the candidate's own footprint size, independent of
     the in-flight count (the old scan was O(inflight x footprint)). *)
  let open Conflict_index in
  let probes_with inflight =
    let t = create () in
    for i = 0 to inflight - 1 do
      let f = footprint ~reads:[] ~writes:(oids [ 1000 + i ]) in
      assert (can_admit t f);
      admit t f
    done;
    let cand = footprint ~reads:(oids [ 1; 2; 3; 4 ]) ~writes:(oids [ 5; 6 ]) in
    let before = probes t in
    check_bool "candidate admissible" true (can_admit t cand);
    probes t - before
  in
  let p8 = probes_with 8 and p64 = probes_with 64 in
  check_int "admit cost independent of in-flight count" p8 p64;
  check_int "cost equals candidate footprint" 6 p64

(* {1 Coordination batching} *)

let test_batching_onoff_equivalence () =
  (* coord_batching changes only the cost model, never delivery or
     execution: the same Incr_all workload (whose final state is
     order-independent) must complete fully and converge to
     byte-identical stores with batching on and off, while the doorbell
     path cuts write_post charges by at least the per-peer fan-out
     factor (5 remote slots per announce here). *)
  let run batching =
    let reg = Heron_obs.Metrics.create () in
    let w =
      make_kv ~seed:29 ~keys:4 ~partitions:2 ~init:0L
        ~tweak:(fun c -> { c with Config.coord_batching = batching; metrics = reg })
        ()
    in
    let completed = ref 0 in
    for c = 0 to 2 do
      on_client w (Printf.sprintf "c%d" c) (fun node ->
          for _ = 1 to 25 do
            ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ]));
            incr completed
          done)
    done;
    Engine.run_until w.eng (Time_ns.s 5);
    assert_replicas_converged w;
    let state =
      List.concat_map
        (fun part ->
          let st = Replica.store (System.replica w.sys ~part ~idx:0) in
          List.map
            (fun oid ->
              (part, Oid.to_int oid, Bytes.to_string (fst (Versioned_store.get st oid))))
            (Versioned_store.registered_oids st))
        [ 0; 1 ]
    in
    let posts =
      List.fold_left
        (fun acc e ->
          match e.Heron_obs.Metrics.e_value with
          | Heron_obs.Metrics.Counter_v n
            when e.Heron_obs.Metrics.e_name = "rdma.verb.count"
                 && List.mem ("verb", "write_post") e.Heron_obs.Metrics.e_labels ->
              acc + n
          | _ -> acc)
        0
        (Heron_obs.Metrics.snapshot reg)
    in
    (!completed, state, posts)
  in
  let c_on, s_on, posts_on = run true in
  let c_off, s_off, posts_off = run false in
  check_int "all ops completed (batching on)" 75 c_on;
  check_int "all ops completed (batching off)" 75 c_off;
  check_bool "identical final state" true (s_on = s_off);
  check_bool
    (Printf.sprintf "doorbell charges cut by fan-out factor (%d on vs %d off)"
       posts_on posts_off)
    true
    (posts_on > 0 && posts_off >= 4 * posts_on)

(* {1 Compartmentalized pipeline (DESIGN.md §12)} *)

let pipe_cfg ?(batch = 4) ?(flush = 10_000) ?(executors = 4) () =
  {
    Config.default_pipeline with
    Config.pipe_enabled = true;
    pipe_batch_size = batch;
    pipe_flush_timeout_ns = flush;
    pipe_executors = executors;
  }

let test_pipeline_onoff_equivalence () =
  (* The pipeline (batcher + sequencer + executor pool + coordination
     writer) changes scheduling and cost, never outcomes: an
     increment-only workload (order-independent final state, mixing
     batched single-partition Adds with barrier multi-partition
     Incr_alls) must complete fully and converge to byte-identical
     stores with pipelining on and off, while batching cuts the number
     of multicast submissions. *)
  let run pipe =
    let reg = Heron_obs.Metrics.create () in
    let w =
      make_kv ~seed:37 ~keys:4 ~partitions:2 ~init:0L
        ~tweak:(fun c -> { c with Config.pipeline = pipe; metrics = reg })
        ()
    in
    let completed = ref 0 in
    for c = 0 to 2 do
      on_client w (Printf.sprintf "c%d" c) (fun node ->
          for i = 1 to 25 do
            let op =
              if i mod 5 = 0 then Kv_app.Incr_all [ 0; 1 ]
              else Kv_app.Add ((c + i) mod 4, 1L)
            in
            ignore (System.submit w.sys ~from:node op);
            incr completed
          done)
    done;
    Engine.run_until w.eng (Time_ns.s 5);
    assert_replicas_converged w;
    let state =
      List.concat_map
        (fun part ->
          let st = Replica.store (System.replica w.sys ~part ~idx:0) in
          List.map
            (fun oid ->
              (part, Oid.to_int oid, Bytes.to_string (fst (Versioned_store.get st oid))))
            (Versioned_store.registered_oids st))
        [ 0; 1 ]
    in
    let submits =
      Heron_obs.Metrics.counter_value
        (Heron_obs.Metrics.counter reg "mcast.submits")
    in
    (!completed, state, submits)
  in
  let c_on, s_on, submits_on = run (pipe_cfg ()) in
  let c_off, s_off, submits_off = run Config.default_pipeline in
  check_int "all ops completed (pipeline on)" 75 c_on;
  check_int "all ops completed (pipeline off)" 75 c_off;
  check_bool "identical final state" true (s_on = s_off);
  check_bool
    (Printf.sprintf "batching cuts multicast submissions (%d on vs %d off)"
       submits_on submits_off)
    true
    (submits_on > 0 && submits_on < submits_off)

let pipeline_flush_timeout_prop =
  QCheck.Test.make
    ~name:"batcher flushes every request within flush_timeout at low load"
    ~count:6
    QCheck.(int_range 2_000 40_000)
    (fun timeout_ns ->
      (* One closed-loop client can never fill a size-8 batch, so every
         flush is timeout-driven: the recorded batch wait (enqueue to
         flush) must never exceed the configured timeout — the
         no-starvation bound. *)
      let reg = Heron_obs.Metrics.create () in
      let w =
        make_kv ~seed:17 ~keys:4 ~partitions:2 ~init:0L
          ~tweak:(fun c ->
            {
              c with
              Config.pipeline = pipe_cfg ~batch:8 ~flush:timeout_ns ();
              metrics = reg;
            })
          ()
      in
      let completed = ref 0 in
      on_client w "c0" (fun node ->
          for i = 1 to 12 do
            ignore (System.submit w.sys ~from:node (Kv_app.Put (i mod 4, 1L)));
            incr completed
          done);
      Engine.run_until w.eng (Time_ns.s 2);
      let h = Heron_obs.Metrics.histogram reg "pipeline.batch_wait_ns" in
      !completed = 12
      && Heron_obs.Metrics.hist_count h > 0
      && Heron_obs.Metrics.hist_max h <= timeout_ns)

let test_pipeline_conflicts_serialize () =
  (* All clients hammer one key through the full pipeline: conflict
     admission must serialize them and lose nothing. *)
  let w =
    make_kv ~seed:11 ~keys:2 ~partitions:1 ~init:0L
      ~tweak:(fun c -> { c with Config.pipeline = pipe_cfg ~executors:8 () })
      ()
  in
  let per_client = 25 in
  for c = 0 to 3 do
    on_client w (Printf.sprintf "c%d" c) (fun node ->
        for _ = 1 to per_client do
          ignore (System.submit w.sys ~from:node (Kv_app.Add (0, 1L)))
        done)
  done;
  Engine.run_until w.eng (Time_ns.s 3);
  let st = Replica.store (System.replica w.sys ~part:0 ~idx:0) in
  check_i64 "all increments applied in order" (Int64.of_int (4 * per_client))
    (Bytes.get_int64_le (fst (Versioned_store.get st (Kv_app.oid_of_key 0))) 0);
  assert_replicas_converged w

let tc name f = Alcotest.test_case name `Quick f
let qc t = QCheck_alcotest.to_alcotest t

(* {1 Durability: checkpointing + log compaction (DESIGN.md §13)} *)

let dur_tweak ?(interval = 500_000) reg c =
  {
    c with
    Config.durability = { Config.dur_enabled = true; dur_interval_ns = interval };
    metrics = reg;
  }

let counter_of reg name =
  Heron_obs.Metrics.counter_value (Heron_obs.Metrics.counter reg name)

let test_durability_onoff_equivalence () =
  (* Checkpointing is a refinement: it truncates logs and publishes
     frontiers but never changes delivery or execution. The same
     Incr_all workload (order-independent final state) must complete
     fully and converge to byte-identical stores with durability on and
     off — while the on-run actually checkpoints and truncates. *)
  let run durable =
    let reg = Heron_obs.Metrics.create () in
    let w =
      make_kv ~seed:29 ~keys:4 ~partitions:2 ~init:0L
        ~tweak:(fun c -> if durable then dur_tweak reg c else { c with Config.metrics = reg })
        ()
    in
    let completed = ref 0 in
    for c = 0 to 2 do
      on_client w (Printf.sprintf "c%d" c) (fun node ->
          for _ = 1 to 25 do
            ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ]));
            incr completed
          done)
    done;
    Engine.run_until w.eng (Time_ns.s 5);
    assert_replicas_converged w;
    let state =
      List.concat_map
        (fun part ->
          let st = Replica.store (System.replica w.sys ~part ~idx:0) in
          List.map
            (fun oid ->
              (part, Oid.to_int oid, Bytes.to_string (fst (Versioned_store.get st oid))))
            (Versioned_store.registered_oids st))
        [ 0; 1 ]
    in
    (!completed, state, reg)
  in
  let c_on, s_on, reg_on = run true in
  let c_off, s_off, reg_off = run false in
  check_int "all ops completed (durability on)" 75 c_on;
  check_int "all ops completed (durability off)" 75 c_off;
  check_bool "identical final state" true (s_on = s_off);
  check_bool "checkpoints taken" true (counter_of reg_on "durability.checkpoints" > 0);
  check_bool "log entries truncated" true
    (counter_of reg_on "durability.truncated_entries" > 0);
  check_int "durability off takes no checkpoints" 0
    (counter_of reg_off "durability.checkpoints")

let test_durability_truncated_donor_rejoin () =
  (* The adversarial rejoin: while a follower is down, every live
     replica checkpoints and truncates its update log past the crash
     point. The rejoining replica's delta request then reaches behind
     every donor's log — forcing the checkpoint-bootstrap path
     (checkpoint cells + O(delta) log suffix) instead of a plain delta
     or an unbounded full transfer. *)
  let reg = Heron_obs.Metrics.create () in
  let w =
    make_kv ~seed:23 ~keys:6 ~partitions:2 ~init:10L ~tweak:(dur_tweak reg) ()
  in
  let victim_node = Replica.node (System.replica w.sys ~part:0 ~idx:2) in
  let after_ops = ref 0 in
  on_client w "driver" (fun node ->
      for _ = 1 to 15 do
        ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ]))
      done;
      Fabric.crash victim_node;
      for _ = 1 to 15 do
        ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ]))
      done;
      (* A dozen checkpoint intervals: live replicas truncate past the
         crash point (the dead peer's stale frontier is ignored). *)
      Engine.sleep (Time_ns.ms 6);
      System.restart_replica w.sys ~part:0 ~idx:2;
      Engine.sleep (Time_ns.ms 5);
      for _ = 1 to 15 do
        ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ]));
        incr after_ops
      done);
  Engine.run_until w.eng (Time_ns.s 5);
  check_int "post-restart requests completed" 15 !after_ops;
  assert_replicas_converged w;
  check_bool "rejoin bootstrapped from a checkpoint" true
    (counter_of reg "durability.checkpoint_bootstraps" >= 1);
  check_bool "bootstrap shipped bytes" true
    (counter_of reg "durability.rejoin_bytes" > 0);
  let fresh = System.replica w.sys ~part:0 ~idx:2 in
  check_i64 "state reflects all 45 increments" 55L
    (Bytes.get_int64_le
       (fst (Versioned_store.get (Replica.store fresh) (Kv_app.oid_of_key 0)))
       0)

let test_durability_truncation_races_migration () =
  (* Checkpoint truncation racing a live migration: while keys move
     between partitions (adoption gaps poisoning dst logs, §10), the
     checkpoint fiber keeps truncating behind the live frontier. The
     two frontiers must compose without deadlock or divergence, and a
     follower crash/rejoin in the middle must still converge. *)
  let reg = Heron_obs.Metrics.create () in
  let w =
    make_kv ~seed:31 ~keys:4 ~partitions:2 ~init:0L
      ~tweak:(fun c -> dur_tweak reg { c with Config.reconfig = { Config.enabled = true } })
      ()
  in
  let completed = ref 0 in
  for c = 0 to 2 do
    on_client w (Printf.sprintf "c%d" c) (fun node ->
        for _ = 1 to 25 do
          ignore (System.submit w.sys ~from:node (Kv_app.Incr_all [ 0; 1 ]));
          incr completed
        done)
  done;
  let mig = System.new_client_node w.sys ~name:"migrator" in
  let moved = ref false in
  Fabric.spawn_on mig (fun () ->
      Engine.sleep (Time_ns.ms 2);
      (match
         Heron_reconfig.Migration.migrate w.sys ~from:mig
           ~oids:[ Kv_app.oid_of_key 0 ] ~dst:1
       with
      | Ok () -> moved := true
      | Error e -> Alcotest.failf "migration failed: %s" e);
      (* Let checkpoints truncate past the migration cut, then bounce a
         follower of the destination so its rejoin crosses both the
         adoption gap and the truncated logs. *)
      Engine.sleep (Time_ns.ms 3);
      Fabric.crash (Replica.node (System.replica w.sys ~part:1 ~idx:2));
      Engine.sleep (Time_ns.ms 3);
      System.restart_replica w.sys ~part:1 ~idx:2);
  Engine.run_until w.eng (Time_ns.s 5);
  check_int "all ops completed" 75 !completed;
  check_bool "migration committed" true !moved;
  check_bool "key rehomed" true
    (Heron_reconfig.Migration.current_partition w.sys (Kv_app.oid_of_key 0) = Some 1);
  assert_replicas_converged w;
  check_bool "checkpoints taken throughout" true
    (counter_of reg "durability.checkpoints" > 0);
  check_bool "truncation kept pace" true
    (counter_of reg "durability.truncated_entries" > 0)

(* {1 Fast reads: lease-based local linearizable reads (DESIGN.md §14)} *)

let fr_tweak ?(write_wait = true) reg c =
  {
    c with
    Config.fast_reads =
      { Config.default_fast_reads with
        Config.fr_enabled = true;
        fr_write_wait = write_wait };
    metrics = reg;
  }

let test_read_lease_table () =
  let eng = Engine.create ~seed:1 () in
  let fab = Fabric.create eng ~profile:Profile.default in
  let node = Fabric.add_node fab ~name:"rl" in
  let t = Read_lease.create node ~replicas:3 in
  check_bool "no entry before first grant" true (Read_lease.entry t ~idx:1 = None);
  Read_lease.apply_grant t ~idx:1 ~incarnation:1 ~expiry_ns:1_000 ~at:(tmp 5);
  Read_lease.apply_grant t ~idx:1 ~incarnation:2 ~expiry_ns:2_000 ~at:(tmp 9);
  (match Read_lease.entry t ~idx:1 with
  | Some e ->
      check_int "renewal wins" 2 e.Read_lease.le_incarnation;
      check_bool "grant position advanced" true
        (Tstamp.equal e.Read_lease.le_grant (tmp 9))
  | None -> Alcotest.fail "entry missing");
  (* A grant older than the held entry — redelivered behind an adopted
     donor snapshot — must not rewind the table. *)
  Read_lease.apply_grant t ~idx:1 ~incarnation:9 ~expiry_ns:9_000 ~at:(tmp 5);
  (match Read_lease.entry t ~idx:1 with
  | Some e -> check_int "older grant ignored" 2 e.Read_lease.le_incarnation
  | None -> Alcotest.fail "entry missing");
  (* Frontier copies carry the publisher's epoch tag. *)
  Read_lease.write_copy_local t ~idx:2 (tmp 7) ~epoch:3;
  let f, ep = Read_lease.read_copy t ~idx:2 in
  check_bool "copy frontier" true (Tstamp.equal f (tmp 7));
  check_int "copy epoch" 3 ep;
  let by = Read_lease.encode_copy (tmp 7) ~epoch:3 in
  check_i64 "encoded frontier" (Tstamp.to_int64 (tmp 7)) (Bytes.get_int64_le by 0);
  check_i64 "encoded epoch" 3L (Bytes.get_int64_le by 8);
  (* Snapshots deep-copy and adopt merges by grant position. *)
  let snap = Read_lease.snapshot t in
  check_int "snapshot footprint" 24 (Read_lease.snapshot_bytes snap);
  let t2 = Read_lease.create node ~replicas:3 in
  Read_lease.apply_grant t2 ~idx:1 ~incarnation:4 ~expiry_ns:4_000 ~at:(tmp 11);
  Read_lease.adopt t2 snap;
  match Read_lease.entry t2 ~idx:1 with
  | Some e ->
      check_bool "newer live entry survives adoption" true
        (Tstamp.equal e.Read_lease.le_grant (tmp 11))
  | None -> Alcotest.fail "adopt dropped the entry"

let test_fast_reads_end_to_end () =
  let reg = Heron_obs.Metrics.create () in
  let w = make_kv ~seed:37 ~keys:4 ~partitions:1 ~tweak:(fr_tweak reg) () in
  let vals = ref [] in
  on_client w "c0" (fun node ->
      ignore (System.submit w.sys ~from:node (Kv_app.Put (3, 42L)));
      for _ = 1 to 6 do
        vals :=
          value_resp (snd (List.hd (System.submit w.sys ~from:node (Kv_app.Get 3))))
          :: !vals
      done);
  Engine.run_until w.eng (Time_ns.ms 10);
  check_int "all reads answered" 6 (List.length !vals);
  List.iter (fun v -> check_i64 "read sees the committed write" 42L v) !vals;
  check_bool "some reads served from leases" true
    (counter_of reg "reads.local_served" > 0);
  assert_replicas_converged w

let run_stale_read_probe ~write_wait =
  (* One replica lags every execution by 400us. A write is acknowledged
     as soon as a fast replica replies; the reads that follow
     round-robin across all three replicas, so one of them lands on the
     lagger while it still holds a valid lease but has not yet applied
     the write. Only the writer's commit-wait (fr_write_wait) closes
     that window. *)
  let reg = Heron_obs.Metrics.create () in
  let w =
    make_kv ~seed:41 ~keys:4 ~partitions:1 ~tweak:(fr_tweak ~write_wait reg) ()
  in
  Replica.inject_exec_delay (System.replica w.sys ~part:0 ~idx:2) (Time_ns.us 400);
  let vals = ref [] in
  on_client w "c0" (fun node ->
      (* Let the startup grants deliver so every replica holds a lease. *)
      Engine.sleep (Time_ns.us 50);
      ignore (System.submit w.sys ~from:node (Kv_app.Put (0, 7L)));
      for _ = 1 to 3 do
        vals :=
          value_resp (snd (List.hd (System.submit w.sys ~from:node (Kv_app.Get 0))))
          :: !vals
      done);
  Engine.run_until w.eng (Time_ns.ms 20);
  check_int "all reads answered" 3 (List.length !vals);
  !vals

let test_fast_reads_commit_wait_regression () =
  (* Pinned stale-read scenario: with the commit-wait deliberately
     disabled the lagging lease holder serves the pre-write value after
     the write was acknowledged — the linearizability violation the
     protocol exists to prevent. The identical run with fr_write_wait
     on must read fresh everywhere. A refactor that weakens the
     commit-wait turns the second half of this test red. *)
  let stale = run_stale_read_probe ~write_wait:false in
  check_bool "unsafe config caught serving a stale read" true
    (List.exists (fun v -> Int64.equal v 0L) stale);
  let safe = run_stale_read_probe ~write_wait:true in
  List.iter (fun v -> check_i64 "commit-wait keeps reads fresh" 7L v) safe

let test_fast_reads_crash_recovery () =
  (* Bounce a lease-holding follower mid-traffic: writes must not stall
     past the lease term (the dead holder's epoch no longer matches its
     entry), reads during the outage keep linearizing, and the rejoiner
     resumes serving locally under a fresh-incarnation lease. *)
  let reg = Heron_obs.Metrics.create () in
  let w = make_kv ~seed:43 ~keys:4 ~partitions:1 ~tweak:(fr_tweak reg) () in
  let bad = ref 0 and completed = ref 0 in
  on_client w "c0" (fun node ->
      for i = 1 to 30 do
        ignore (System.submit w.sys ~from:node (Kv_app.Put (0, Int64.of_int i)));
        let v =
          value_resp (snd (List.hd (System.submit w.sys ~from:node (Kv_app.Get 0))))
        in
        if not (Int64.equal v (Int64.of_int i)) then incr bad;
        incr completed
      done);
  on_client w "chaos" (fun _ ->
      Engine.sleep (Time_ns.us 300);
      Fabric.crash (Replica.node (System.replica w.sys ~part:0 ~idx:2));
      Engine.sleep (Time_ns.ms 4);
      System.restart_replica w.sys ~part:0 ~idx:2);
  Engine.run_until w.eng (Time_ns.s 2);
  check_int "all rounds completed" 30 !completed;
  check_int "every read saw its own write" 0 !bad;
  check_bool "fast path still in use" true (counter_of reg "reads.local_served" > 0);
  assert_replicas_converged w

let suite =
  [
    ( "core.store",
      [
        tc "register and get" test_store_register_get;
        tc "dual versioning" test_store_dual_versioning;
        tc "idempotent same-tmp set" test_store_set_same_tmp_idempotent;
        tc "local class" test_store_local_class;
        tc "cell roundtrip" test_store_cell_roundtrip;
        tc "raw cell copy" test_store_write_raw_cell;
        tc "capacity checks" test_store_capacity_checks;
        tc "get_at_most" test_store_get_at_most;
        qc store_version_prop;
        tc "remote read vs write race" test_store_remote_read_write_race;
        tc "out-of-order writes" test_store_out_of_order_writes;
        qc store_interleaving_prop;
      ] );
    ( "core.update_log",
      [
        tc "range queries" test_log_range;
        tc "truncation" test_log_truncation;
        tc "out-of-order appends" test_log_out_of_order;
        tc "note_gap: hole at log head" test_log_note_gap_head;
        tc "note_gap: monotone across transfers" test_log_note_gap_monotone;
        tc "note_gap: gap spanning truncation" test_log_gap_spanning_truncation;
        tc "explicit truncation at a checkpoint cut" test_log_explicit_truncate;
        tc "truncate composes with note_gap" test_log_truncate_note_gap_compose;
        qc log_truncate_model_prop;
        qc log_range_model_prop;
        qc log_gap_migration_prop;
      ] );
    ( "core.memories",
      [ tc "coord_mem" test_coord_mem; tc "statesync_mem" test_statesync_mem ] );
    ( "core.kv",
      [
        tc "single partition" test_kv_single_partition;
        tc "multi-partition transfer" test_kv_multi_partition_transfer;
        tc "fig3 snapshot invariant" test_kv_fig3_invariant;
        tc "conservation under load" test_kv_conservation;
        tc "determinism" test_kv_determinism;
        tc "stats recorded" test_kv_stats_recorded;
        tc "trace spans" test_kv_trace_spans;
        tc "read outside read set rejected" test_kv_read_outside_read_set_rejected;
        qc fig3_invariant_prop;
      ] );
    ( "core.failures",
      [
        tc "lagger recovers via state transfer" test_kv_lagger_state_transfer;
        tc "forced state transfer" test_kv_forced_state_transfer;
        tc "back-to-back adopted transfers" test_kv_back_to_back_adopted_transfers;
        tc "replica crash tolerated" test_kv_replica_crash_tolerated;
        tc "crash, restart, full rejoin" test_kv_crash_restart_rejoin;
        tc "multicast leader crash + ex-leader rejoin" test_kv_leader_crash_tolerated;
        tc "chaos regression: rejoin gap (seed 3206)" test_chaos_regression_rejoin_gap;
        qc chaos_crash_restart_prop;
        qc chaos_crash_restart_durability_prop;
      ] );
    ( "core.parallel",
      [
        tc "correctness with workers" test_parallel_correctness;
        tc "speedup on disjoint keys" test_parallel_speedup;
        tc "conflicting requests serialize" test_parallel_conflicts_serialize;
      ] );
    ( "core.conflict_index",
      [
        tc "admission rules" test_conflict_index_rules;
        tc "footprint normalization" test_conflict_index_normalization;
        tc "admission is O(footprint)" test_conflict_index_admission_is_o_footprint;
      ] );
    ( "core.coordination",
      [ tc "coord batching on/off equivalence" test_batching_onoff_equivalence ] );
    ( "core.durability",
      [
        tc "durability on/off equivalence" test_durability_onoff_equivalence;
        tc "truncated-donor rejoin bootstraps from checkpoint"
          test_durability_truncated_donor_rejoin;
        tc "truncation races migration" test_durability_truncation_races_migration;
      ] );
    ( "core.pipeline",
      [
        tc "pipeline on/off equivalence" test_pipeline_onoff_equivalence;
        tc "conflicting requests serialize" test_pipeline_conflicts_serialize;
        qc pipeline_flush_timeout_prop;
      ] );
    ( "core.fast_reads",
      [
        tc "lease table grants, copies, snapshots" test_read_lease_table;
        tc "local reads observe committed writes" test_fast_reads_end_to_end;
        tc "stale read without commit-wait (regression)"
          test_fast_reads_commit_wait_regression;
        tc "lease holder crash and rejoin" test_fast_reads_crash_recovery;
      ] );
  ]

let () = Alcotest.run "heron_core" suite
