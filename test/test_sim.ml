(* Tests for heron_sim: the discrete-event engine and its fiber
   synchronisation primitives. *)

open Heron_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Prio_queue} *)

let test_pq_order () =
  let h = Prio_queue.create ~cmp:compare in
  List.iter (Prio_queue.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc =
    match Prio_queue.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_pq_empty () =
  let h = Prio_queue.create ~cmp:compare in
  check_bool "is_empty" true (Prio_queue.is_empty h);
  check_bool "pop" true (Prio_queue.pop h = None);
  check_bool "peek" true (Prio_queue.peek h = None);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Prio_queue.pop_exn: empty heap")
    (fun () -> ignore (Prio_queue.pop_exn h))

let test_pq_peek_does_not_remove () =
  let h = Prio_queue.create ~cmp:compare in
  Prio_queue.push h 2;
  Prio_queue.push h 1;
  check_bool "peek min" true (Prio_queue.peek h = Some 1);
  check_int "length" 2 (Prio_queue.length h)

let pq_sorted_prop =
  QCheck.Test.make ~name:"prio_queue drains sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Prio_queue.create ~cmp:compare in
      List.iter (Prio_queue.push h) xs;
      let rec drain acc =
        match Prio_queue.pop h with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* {1 Time_ns} *)

let test_time_units () =
  check_int "us" 1_000 (Time_ns.us 1);
  check_int "ms" 1_000_000 (Time_ns.ms 1);
  check_int "s" 1_000_000_000 (Time_ns.s 1);
  check_int "of_us_f" 1_500 (Time_ns.of_us_f 1.5);
  Alcotest.(check (float 1e-9)) "to_us_f" 2.5 (Time_ns.to_us_f 2_500);
  Alcotest.(check string) "pp us" "2.50us" (Format.asprintf "%a" Time_ns.pp 2_500);
  Alcotest.(check string) "pp ns" "999ns" (Format.asprintf "%a" Time_ns.pp 999)

(* {1 Engine} *)

let test_engine_sleep_order () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.spawn eng (fun () ->
      Engine.sleep (Time_ns.us 3);
      log := (Engine.self_now (), "c") :: !log);
  Engine.spawn eng (fun () ->
      Engine.sleep (Time_ns.us 1);
      log := (Engine.self_now (), "a") :: !log);
  Engine.spawn eng (fun () ->
      Engine.sleep (Time_ns.us 2);
      log := (Engine.self_now (), "b") :: !log);
  Engine.run eng;
  Alcotest.(check (list (pair int string)))
    "events fire in time order"
    [ (1_000, "a"); (2_000, "b"); (3_000, "c") ]
    (List.rev !log)

let test_engine_same_time_fifo () =
  (* Events scheduled for the same instant run in scheduling order. *)
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule eng (fun () -> log := i :: !log)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_run_until () =
  let eng = Engine.create () in
  let hits = ref 0 in
  Engine.spawn eng (fun () ->
      for _ = 1 to 10 do
        Engine.sleep (Time_ns.ms 1);
        incr hits
      done);
  Engine.run_until eng (Time_ns.ms 5);
  check_int "5 iterations by 5ms" 5 !hits;
  check_int "clock at horizon" (Time_ns.ms 5) (Engine.now eng);
  Engine.run eng;
  check_int "all iterations after run" 10 !hits

let test_engine_cancellation () =
  let eng = Engine.create () in
  let tok = Engine.new_token eng in
  let steps = ref 0 in
  let cleanup = ref false in
  Engine.spawn ~token:tok eng (fun () ->
      Fun.protect
        ~finally:(fun () -> cleanup := true)
        (fun () ->
          for _ = 1 to 100 do
            Engine.sleep (Time_ns.us 10);
            incr steps
          done));
  Engine.spawn eng (fun () ->
      Engine.sleep (Time_ns.us 35);
      Engine.cancel tok);
  Engine.run eng;
  check_int "stopped after cancel" 3 !steps;
  check_bool "finaliser ran on cancellation" true !cleanup;
  check_int "no live fibers" 0 (Engine.live_fibers eng)

let test_engine_cancel_before_start () =
  let eng = Engine.create () in
  let tok = Engine.new_token eng in
  Engine.cancel tok;
  let ran = ref false in
  Engine.spawn ~token:tok eng (fun () -> ran := true);
  Engine.run eng;
  check_bool "cancelled fiber never starts" false !ran;
  check_int "no live fibers" 0 (Engine.live_fibers eng)

let test_engine_determinism () =
  let trace seed =
    let eng = Engine.create ~seed () in
    let log = ref [] in
    for i = 1 to 20 do
      Engine.spawn eng (fun () ->
          let d = Random.State.int (Engine.rng eng) 1000 in
          Engine.sleep d;
          log := (i, Engine.self_now ()) :: !log)
    done;
    Engine.run eng;
    !log
  in
  check_bool "same seed, same trace" true (trace 7 = trace 7);
  check_bool "different seed, different trace" true (trace 7 <> trace 8)

let test_engine_exception_propagates () =
  let eng = Engine.create () in
  Engine.spawn eng (fun () -> failwith "boom");
  Alcotest.check_raises "escapes run" (Failure "boom") (fun () -> Engine.run eng)

(* {1 Ivar} *)

let test_ivar_fill_then_read () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let got = ref 0 in
  Ivar.fill iv 41;
  Engine.spawn eng (fun () -> got := Ivar.read iv);
  Engine.run eng;
  check_int "read full ivar" 41 !got

let test_ivar_blocks_until_filled () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let got_at = ref (-1) in
  Engine.spawn eng (fun () ->
      ignore (Ivar.read iv);
      got_at := Engine.self_now ());
  Engine.spawn eng (fun () ->
      Engine.sleep (Time_ns.us 7);
      Ivar.fill iv ());
  Engine.run eng;
  check_int "reader woken at fill time" (Time_ns.us 7) !got_at

let test_ivar_multiple_readers () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let sum = ref 0 in
  for _ = 1 to 3 do
    Engine.spawn eng (fun () -> sum := !sum + Ivar.read iv)
  done;
  Engine.spawn eng (fun () ->
      Engine.sleep 5;
      Ivar.fill iv 10);
  Engine.run eng;
  check_int "all readers woken" 30 !sum

let test_ivar_double_fill () =
  let iv = Ivar.create () in
  Ivar.fill iv 1;
  check_bool "try_fill on full" false (Ivar.try_fill iv 2);
  Alcotest.check_raises "fill on full" (Invalid_argument "Ivar.fill: already full")
    (fun () -> Ivar.fill iv 3);
  check_bool "value unchanged" true (Ivar.peek iv = Some 1)

(* {1 Mailbox} *)

let test_mailbox_fifo () =
  let eng = Engine.create () in
  let mb = Mailbox.create () in
  let got = ref [] in
  Engine.spawn eng (fun () ->
      for _ = 1 to 3 do
        got := Mailbox.recv mb :: !got
      done);
  Engine.spawn eng (fun () ->
      Mailbox.send mb "x";
      Engine.sleep 2;
      Mailbox.send mb "y";
      Mailbox.send mb "z");
  Engine.run eng;
  Alcotest.(check (list string)) "fifo order" [ "x"; "y"; "z" ] (List.rev !got)

let test_mailbox_competing_receivers () =
  let eng = Engine.create () in
  let mb = Mailbox.create () in
  let got = ref [] in
  for i = 1 to 2 do
    Engine.spawn eng (fun () ->
        let v = Mailbox.recv mb in
        got := (i, v) :: !got)
  done;
  Engine.spawn eng (fun () ->
      Engine.sleep 1;
      Mailbox.send mb "first";
      Mailbox.send mb "second");
  Engine.run eng;
  check_int "both received one" 2 (List.length !got);
  check_bool "no message lost" true
    (List.sort compare (List.map snd !got) = [ "first"; "second" ])

let test_mailbox_try_recv () =
  let mb = Mailbox.create () in
  check_bool "empty" true (Mailbox.try_recv mb = None);
  Mailbox.send mb 5;
  check_int "length" 1 (Mailbox.length mb);
  check_bool "nonempty" true (Mailbox.try_recv mb = Some 5);
  check_bool "drained" true (Mailbox.is_empty mb)

(* {1 Signal} *)

let test_signal_broadcast_wakes_all () =
  let eng = Engine.create () in
  let s = Signal.create () in
  let woken = ref 0 in
  for _ = 1 to 4 do
    Engine.spawn eng (fun () ->
        Signal.wait s;
        incr woken)
  done;
  Engine.spawn eng (fun () ->
      Engine.sleep 10;
      check_int "four waiters parked" 4 (Signal.waiters s);
      Signal.broadcast s);
  Engine.run eng;
  check_int "all woken" 4 !woken

let test_signal_wait_until () =
  let eng = Engine.create () in
  let s = Signal.create () in
  let counter = ref 0 in
  let done_at = ref (-1) in
  Engine.spawn eng (fun () ->
      Signal.wait_until s (fun () -> !counter >= 3);
      done_at := Engine.self_now ());
  Engine.spawn eng (fun () ->
      for _ = 1 to 3 do
        Engine.sleep (Time_ns.us 1);
        incr counter;
        Signal.broadcast s
      done);
  Engine.run eng;
  check_int "woken at third broadcast" (Time_ns.us 3) !done_at

let test_signal_wait_until_already_true () =
  let eng = Engine.create () in
  let s = Signal.create () in
  let ran = ref false in
  Engine.spawn eng (fun () ->
      Signal.wait_until s (fun () -> true);
      ran := true);
  Engine.run eng;
  check_bool "no broadcast needed" true !ran

(* {1 Trace} *)

let test_trace_basics () =
  let tr = Trace.create ~capacity:3 () in
  Trace.record tr ~name:"a" ~start:0 10;
  Trace.record tr ~name:"b" ~attrs:[ ("k", "v") ] ~start:10 25;
  Alcotest.(check (list string)) "names in order" [ "a"; "b" ]
    (List.map (fun s -> s.Trace.sp_name) (Trace.spans tr));
  check_int "no drops yet" 0 (Trace.dropped tr);
  Trace.record tr ~name:"c" ~start:25 30;
  Trace.record tr ~name:"d" ~start:30 35;
  Alcotest.(check (list string)) "ring keeps newest" [ "b"; "c"; "d" ]
    (List.map (fun s -> s.Trace.sp_name) (Trace.spans tr));
  check_int "one dropped" 1 (Trace.dropped tr);
  Trace.clear tr;
  check_bool "cleared" true (Trace.spans tr = [])

let test_trace_validation () =
  let tr = Trace.create () in
  Alcotest.check_raises "backwards span"
    (Invalid_argument "Trace.add: span ends before it starts") (fun () ->
      Trace.record tr ~name:"x" ~start:10 5)

let test_trace_render () =
  let tr = Trace.create () in
  Trace.record tr ~name:"ordering" ~start:0 (Time_ns.us 18);
  Trace.record tr ~name:"execute" ~start:(Time_ns.us 18) (Time_ns.us 34);
  let out = Trace.render_timeline ~width:40 tr in
  let contains needle =
    let nh = String.length out and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub out i nn = needle || at (i + 1)) in
    at 0
  in
  check_bool "has first span" true (contains "ordering");
  check_bool "has second span" true (contains "execute");
  check_bool "has bars" true (contains "#");
  Alcotest.(check string) "empty trace renders empty" ""
    (Trace.render_timeline (Trace.create ()))

let test_trace_render_deterministic_order () =
  (* Spans recorded in different interleavings render identically: rows
     are sorted by (start, end, name), not insertion order. *)
  let fill names =
    let tr = Trace.create () in
    List.iter
      (fun name -> Trace.record tr ~name ~start:(Time_ns.us 5) (Time_ns.us 9))
      names;
    Trace.record tr ~name:"later" ~start:(Time_ns.us 9) (Time_ns.us 12);
    Trace.render_timeline ~width:30 tr
  in
  Alcotest.(check string) "equal starts sort by name"
    (fill [ "alpha"; "beta"; "gamma" ])
    (fill [ "gamma"; "alpha"; "beta" ]);
  let first_line = List.hd (String.split_on_char '\n' (fill [ "beta"; "alpha"; "gamma" ])) in
  check_bool "alphabetical first row" true
    (String.length first_line >= 5 && String.sub first_line 0 5 = "alpha")

let test_trace_render_zero_duration () =
  (* An instantaneous span renders as a "+" tick — including at the far
     right edge of the window, where the unclamped lead equals the bar
     width. *)
  let tr = Trace.create () in
  Trace.record tr ~name:"work" ~start:0 (Time_ns.us 10);
  Trace.record tr ~name:"tick" ~start:(Time_ns.us 10) (Time_ns.us 10);
  let out = Trace.render_timeline ~width:20 tr in
  let tick_line =
    List.find (fun l -> String.length l >= 4 && String.sub l 0 4 = "tick")
      (String.split_on_char '\n' out)
  in
  check_bool "tick visible at right edge" true (String.contains tick_line '+');
  check_bool "tick has no bar chars" true (not (String.contains tick_line '#'));
  (* All rows frame the same bar-area width despite the clamping. *)
  let widths =
    List.filter_map
      (fun l ->
        match (String.index_opt l '|', String.rindex_opt l '|') with
        | Some i, Some j when j > i -> Some (j - i)
        | _ -> None)
      (String.split_on_char '\n' out)
  in
  check_bool "rows equally framed" true
    (widths <> [] && List.for_all (fun w -> w = List.hd widths) widths)

let tc name f = Alcotest.test_case name `Quick f
let qc t = QCheck_alcotest.to_alcotest t

let suite =
  [
    ( "sim.prio_queue",
      [
        tc "drains sorted" test_pq_order;
        tc "empty heap" test_pq_empty;
        tc "peek does not remove" test_pq_peek_does_not_remove;
        qc pq_sorted_prop;
      ] );
    ("sim.time", [ tc "unit conversions" test_time_units ]);
    ( "sim.engine",
      [
        tc "sleep order" test_engine_sleep_order;
        tc "same-time fifo" test_engine_same_time_fifo;
        tc "run_until horizon" test_engine_run_until;
        tc "cancellation" test_engine_cancellation;
        tc "cancel before start" test_engine_cancel_before_start;
        tc "determinism" test_engine_determinism;
        tc "exception propagates" test_engine_exception_propagates;
      ] );
    ( "sim.ivar",
      [
        tc "fill then read" test_ivar_fill_then_read;
        tc "blocks until filled" test_ivar_blocks_until_filled;
        tc "multiple readers" test_ivar_multiple_readers;
        tc "double fill rejected" test_ivar_double_fill;
      ] );
    ( "sim.mailbox",
      [
        tc "fifo" test_mailbox_fifo;
        tc "competing receivers" test_mailbox_competing_receivers;
        tc "try_recv" test_mailbox_try_recv;
      ] );
    ( "sim.trace",
      [
        tc "ring buffer" test_trace_basics;
        tc "validation" test_trace_validation;
        tc "timeline rendering" test_trace_render;
        tc "deterministic row order" test_trace_render_deterministic_order;
        tc "zero-duration tick" test_trace_render_zero_duration;
      ] );
    ( "sim.signal",
      [
        tc "broadcast wakes all" test_signal_broadcast_wakes_all;
        tc "wait_until" test_signal_wait_until;
        tc "wait_until already true" test_signal_wait_until_already_true;
      ] );
  ]

let () = Alcotest.run "heron_sim" suite
