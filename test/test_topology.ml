(* Tests for the elastic topology (lib/topology + Elastic): the hash
   ring, the shard table's split/merge algebra — pinned as qcheck
   properties — and end-to-end shard splits and merges on a live
   system (DESIGN.md §15). *)

open Heron_sim
open Heron_rdma
open Heron_core
open Heron_kv
open Heron_topology
open Heron_reconfig

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tc name f = Alcotest.test_case name `Quick f
let qc t = QCheck_alcotest.to_alcotest t

(* {1 Ring} *)

let test_ring_points () =
  (* Pure functions: recomputation agrees, range is the ring. *)
  for k = 0 to 1000 do
    let p = Ring.point_of_key k in
    check_bool "point stable" true (p = Ring.point_of_key k);
    check_bool "point in ring" true (0 <= p && p < Ring.space);
    let g = Ring.point_of_group k in
    check_bool "group point in ring" true (0 <= g && g < Ring.space)
  done;
  (* Key and group salts decorrelate the two point sets. *)
  check_bool "salted apart" true
    (Ring.point_of_key 3 <> Ring.point_of_group 3)

let test_ring_successor () =
  check_bool "empty candidates rejected" true
    (try
       ignore (Ring.successor ~point:0 ~groups:[]);
       false
     with Invalid_argument _ -> true);
  (* The successor is the clockwise-closest group, with wrap-around:
     walking from just past a group's own point must wrap to some
     other candidate, never stick. *)
  let groups = [ 0; 1; 2; 3 ] in
  List.iter
    (fun g ->
      let p = (Ring.point_of_group g + 1) mod Ring.space in
      let s = Ring.successor ~point:p ~groups in
      check_bool "successor is a candidate" true (List.mem s groups);
      let s' = Ring.successor ~point:p ~groups in
      check_bool "successor deterministic" true (s = s'))
    groups;
  (* A group is its own successor at its own point. *)
  List.iter
    (fun g ->
      check_int "own point" g
        (Ring.successor ~point:(Ring.point_of_group g) ~groups))
    groups

(* {1 Shard-table algebra (qcheck)} *)

(* A random but reachable table: start from a random initial layout and
   apply a few random splits and merges, ignoring rejections. *)
let table_gen =
  QCheck.Gen.(
    let* pool = int_range 2 8 in
    let* shards = int_range 1 pool in
    let* ops = list_size (int_bound 6) (pair bool (int_bound 16)) in
    let t = ref (Shard_map.initial ~shards ~pool) in
    List.iter
      (fun (is_split, i) ->
        let n = Shard_map.count !t in
        if is_split then (
          match Shard_map.split !t ~shard:(i mod n) ~pool with
          | Ok (t', _) -> t := t'
          | Error _ -> ())
        else if n >= 2 then
          match Shard_map.merge !t ~left:(i mod (n - 1)) with
          | Ok (t', _) -> t := t'
          | Error _ -> ())
      ops;
    return (pool, !t))

let table_arb =
  QCheck.make
    ~print:(fun (pool, t) -> Format.asprintf "pool=%d %a" pool Shard_map.pp t)
    table_gen

(* Placement is deterministic and a pure function of (shards, pool):
   the whole point of the epoch-0 table needing no coordination. *)
let placement_deterministic_prop =
  QCheck.Test.make ~name:"ring placement is deterministic" ~count:200
    QCheck.(pair (int_range 1 8) (int_range 0 1000))
    (fun (pool, key) ->
      let shards = 1 + (key mod pool) in
      let a = Shard_map.initial ~shards ~pool in
      let b = Shard_map.initial ~shards ~pool in
      Shard_map.equal a b
      && Shard_map.home a key = Shard_map.home b key
      && Shard_map.count a = shards)

(* Tables partition the ring: every point resolves to exactly the arc
   that contains it, and each group owns at most one shard. *)
let table_well_formed_prop =
  QCheck.Test.make ~name:"tables cover the ring, one shard per group"
    ~count:200 table_arb (fun (pool, t) ->
      let n = Shard_map.count t in
      let ok = ref ((Shard_map.arc t 0).Shard_map.s_lo = 0) in
      for i = 0 to n - 1 do
        let s = Shard_map.arc t i in
        ok := !ok && s.Shard_map.s_lo < s.Shard_map.s_hi;
        ok := !ok && s.Shard_map.s_group >= 0 && s.Shard_map.s_group < pool;
        if i < n - 1 then
          ok := !ok && s.Shard_map.s_hi = (Shard_map.arc t (i + 1)).Shard_map.s_lo
        else ok := !ok && s.Shard_map.s_hi = Ring.space;
        ok :=
          !ok
          && Shard_map.index_of_group t s.Shard_map.s_group = Some i
      done;
      !ok && n + List.length (Shard_map.free_groups t ~pool) = pool)

(* Split then merge of the resulting pair restores the original table
   exactly — what lets a cooled-down hotspot return the borrowed group
   with zero residue. *)
let split_merge_inverse_prop =
  QCheck.Test.make ~name:"merge undoes split exactly" ~count:200
    QCheck.(pair table_arb (int_bound 16))
    (fun ((pool, t), i) ->
      let shard = i mod Shard_map.count t in
      match Shard_map.split t ~shard ~pool with
      | Error _ -> QCheck.assume_fail ()
      | Ok (t', info) ->
          (match Shard_map.merge t' ~left:shard with
          | Error e -> QCheck.Test.fail_reportf "merge failed: %s" e
          | Ok (t'', minfo) ->
              Shard_map.equal t t''
              && minfo.Shard_map.mg_survivor = info.Shard_map.sp_parent
              && minfo.Shard_map.mg_dissolved = info.Shard_map.sp_child))

(* A split changes the home of precisely the keys whose ring points
   fall in the carved right half — minimal disruption. *)
let split_moves_only_carved_prop =
  QCheck.Test.make ~name:"split moves only carved-half keys" ~count:100
    table_arb (fun (pool, t) ->
      let shard = 0 in
      match Shard_map.split t ~shard ~pool with
      | Error _ -> QCheck.assume_fail ()
      | Ok (t', info) ->
          let ok = ref true in
          for key = 0 to 500 do
            let p = Ring.point_of_key key in
            let carved =
              info.Shard_map.sp_mid <= p && p < info.Shard_map.sp_hi
            in
            let before = Shard_map.home t key and after = Shard_map.home t' key in
            if carved then
              ok :=
                !ok && before = info.Shard_map.sp_parent
                && after = info.Shard_map.sp_child
            else ok := !ok && after = before
          done;
          !ok)

(* {1 Live splits and merges} *)

let make_sys ?(seed = 5) ?(keys = 8) ?(partitions = 4) ?(shards = 2) () =
  let eng = Engine.create ~seed () in
  let cfg =
    {
      (Config.default ~partitions ~replicas:3) with
      Config.metrics = Heron_obs.Metrics.create ();
      reconfig = { Config.enabled = true };
      topology = { Config.topo_enabled = true; topo_shards = shards };
    }
  in
  let sys =
    System.create eng ~cfg ~app:(Kv_app.app ~keys ~partitions ~init:0L)
  in
  System.start sys;
  (eng, sys)

let counter_value sys name =
  Heron_obs.Metrics.counter_value
    (Heron_obs.Metrics.counter (System.config sys).Config.metrics name)

let gauge_value sys name =
  Heron_obs.Metrics.gauge_value
    (Heron_obs.Metrics.gauge (System.config sys).Config.metrics name)

let on_client ?(name = "t-client") ~eng sys f =
  let node = System.new_client_node sys ~name in
  let result = ref None in
  Fabric.spawn_on node (fun () -> result := Some (f node));
  Engine.run_until eng (Time_ns.s 5);
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "client fiber did not finish"

let committed_table sys =
  match Placement.shards (System.directory sys) with
  | Some t -> t
  | None -> Alcotest.fail "topology enabled but no committed table"

(* Every replica's view resolves ownership identically to the
   directory — the invariant the keep-or-redirect decision rests on. *)
let check_views_agree sys =
  let dir_epoch = Placement.epoch (System.directory sys) in
  let t = committed_table sys in
  Array.iter
    (fun row ->
      Array.iter
        (fun r ->
          let v = Replica.placement_view r in
          check_int "replica at directory epoch" dir_epoch
            (Placement.view_epoch v);
          match Placement.view_shards v with
          | None -> Alcotest.fail "replica view lost the table"
          | Some tv -> check_bool "replica table agrees" true (Shard_map.equal t tv))
        row)
    (System.replicas sys)

let test_split_then_merge_live () =
  let eng, sys = make_sys () in
  let initial = Shard_map.initial ~shards:2 ~pool:4 in
  check_bool "epoch-0 table" true (Shard_map.equal initial (committed_table sys));
  on_client ~eng sys (fun node ->
      for k = 0 to 7 do
        ignore (System.submit sys ~from:node (Kv_app.Put (k, Int64.of_int (100 + k))))
      done;
      (* Split shard 0 onto a dormant group. *)
      let info =
        match Elastic.split sys ~from:node ~shard:0 with
        | Ok o -> o
        | Error e -> Alcotest.failf "split failed: %s" e
      in
      check_int "split epoch" 1 (Placement.epoch (System.directory sys));
      check_int "splits counter" 1 (counter_value sys "topology.splits");
      check_int "shards gauge" 3 (gauge_value sys "topology.shards");
      check_int "three shards committed" 3 (Shard_map.count (committed_table sys));
      check_bool "child was dormant" true
        (Shard_map.index_of_group initial info.Elastic.el_dst = None);
      (* Every key reads back through the new table; writes keep
         working wherever they now live. *)
      for k = 0 to 7 do
        match System.submit sys ~from:node (Kv_app.Get k) with
        | [ (_, Kv_app.Value v) ] ->
            check_bool "value survived the split" true (v = Int64.of_int (100 + k))
        | _ -> Alcotest.fail "unexpected response"
      done;
      for k = 0 to 7 do
        ignore (System.submit sys ~from:node (Kv_app.Add (k, 1L)))
      done;
      (* Merge the pair back: the table returns to the epoch-0 layout
         (the live counterpart of the qcheck inverse property). *)
      (match Elastic.merge sys ~from:node ~left:0 with
      | Ok o ->
          check_int "merge returns the borrowed group" info.Elastic.el_dst
            o.Elastic.el_src
      | Error e -> Alcotest.failf "merge failed: %s" e);
      check_int "merge epoch" 2 (Placement.epoch (System.directory sys));
      check_int "merges counter" 1 (counter_value sys "topology.merges");
      check_int "shards gauge back" 2 (gauge_value sys "topology.shards");
      check_bool "merge restored the epoch-0 table" true
        (Shard_map.equal initial (committed_table sys));
      for k = 0 to 7 do
        match System.submit sys ~from:node (Kv_app.Get k) with
        | [ (_, Kv_app.Value v) ] ->
            check_bool "value survived the merge" true (v = Int64.of_int (101 + k))
        | _ -> Alcotest.fail "unexpected response"
      done);
  check_views_agree sys

let test_elastic_validation () =
  let eng, sys = make_sys () in
  on_client ~eng sys (fun node ->
      (match Elastic.split sys ~from:node ~shard:9 with
      | Ok _ -> Alcotest.fail "out-of-range split accepted"
      | Error _ -> ());
      (match Elastic.merge sys ~from:node ~left:1 with
      | Ok _ -> Alcotest.fail "no adjacent pair at the last shard"
      | Error _ -> ());
      (* Exhaust the pool: with 4 groups, a third split must fail. *)
      let rec split_all () =
        match Elastic.split sys ~from:node ~shard:0 with
        | Ok _ -> split_all ()
        | Error _ -> ()
      in
      split_all ();
      check_int "pool exhausted at 4 shards" 4
        (Shard_map.count (committed_table sys)));
  (* Disabled topology refuses the whole API. *)
  let eng2 = Engine.create ~seed:7 () in
  let cfg =
    {
      (Config.default ~partitions:2 ~replicas:3) with
      Config.metrics = Heron_obs.Metrics.create ();
      reconfig = { Config.enabled = true };
    }
  in
  let sys2 =
    System.create eng2 ~cfg ~app:(Kv_app.app ~keys:4 ~partitions:2 ~init:0L)
  in
  System.start sys2;
  ignore eng;
  let r = ref None in
  let node = System.new_client_node sys2 ~name:"t-client2" in
  Fabric.spawn_on node (fun () ->
      r := Some (Elastic.split sys2 ~from:node ~shard:0));
  Engine.run_until eng2 (Time_ns.s 1);
  match !r with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "split accepted with topology disabled"
  | None -> Alcotest.fail "client fiber did not finish"

let suite =
  [
    ( "topology.ring",
      [
        tc "points are pure and in range" test_ring_points;
        tc "ring succession" test_ring_successor;
      ] );
    ( "topology.table",
      [
        qc placement_deterministic_prop;
        qc table_well_formed_prop;
        qc split_merge_inverse_prop;
        qc split_moves_only_carved_prop;
      ] );
    ( "topology.live",
      [
        tc "split then merge on a live system" test_split_then_merge_live;
        tc "validation and pool exhaustion" test_elastic_validation;
      ] );
  ]

let () = Alcotest.run "heron_topology" suite
