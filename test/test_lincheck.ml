(* Tests for the linearizability checker, and the headline use: checking
   real Heron histories (paper Section III-C) against a sequential model
   of the KV application. *)

open Heron_sim
open Heron_rdma
open Heron_core
open Heron_kv
open Heron_lincheck

let check_bool = Alcotest.(check bool)

(* {1 A single int register} *)

type reg_op = R_read | R_write of int

let reg_spec : (reg_op, int, int) Lincheck.spec =
  {
    Lincheck.initial = 0;
    apply =
      (fun s -> function R_read -> (s, s) | R_write v -> (v, 0));
    equal_result = Int.equal;
  }

let ev client op result invoke return_ =
  { Lincheck.ev_client = client; ev_op = op; ev_result = result;
    ev_invoke = invoke; ev_return = return_ }

let test_reg_sequential () =
  check_bool "read own write" true
    (Lincheck.check reg_spec
       [ ev 0 (R_write 5) 0 0 10; ev 0 R_read 5 20 30 ]);
  check_bool "stale read rejected" false
    (Lincheck.check reg_spec
       [ ev 0 (R_write 5) 0 0 10; ev 0 R_read 0 20 30 ])

let test_reg_concurrent_overlap () =
  (* A read overlapping a write may see either value... *)
  check_bool "old value ok" true
    (Lincheck.check reg_spec [ ev 0 (R_write 7) 0 0 100; ev 1 R_read 0 50 60 ]);
  check_bool "new value ok" true
    (Lincheck.check reg_spec [ ev 0 (R_write 7) 0 0 100; ev 1 R_read 7 50 60 ]);
  (* ... but two sequential reads cannot travel backwards in time. *)
  check_bool "new-then-old rejected" false
    (Lincheck.check reg_spec
       [
         ev 0 (R_write 7) 0 0 100;
         ev 1 R_read 7 10 20;
         ev 1 R_read 0 30 40;
       ])

let test_reg_real_time_order () =
  (* w=1 returns before w=2 starts; a later read must not see 1. *)
  check_bool "real-time order respected" false
    (Lincheck.check reg_spec
       [
         ev 0 (R_write 1) 0 0 10;
         ev 0 (R_write 2) 0 20 30;
         ev 1 R_read 1 40 50;
       ]);
  check_bool "seeing 2 is fine" true
    (Lincheck.check reg_spec
       [
         ev 0 (R_write 1) 0 0 10;
         ev 0 (R_write 2) 0 20 30;
         ev 1 R_read 2 40 50;
       ])

let test_empty_history () = check_bool "empty" true (Lincheck.check reg_spec [])

let test_bad_interval_rejected () =
  Alcotest.check_raises "return before invoke"
    (Invalid_argument "Lincheck.check: event returns before it is invoked")
    (fun () -> ignore (Lincheck.check reg_spec [ ev 0 R_read 0 10 5 ]))

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_counterexample_message_shape () =
  (* The failure report must carry the shortest failing prefix — and
     only it: everything after the violating event is noise a developer
     should never have to read. *)
  let pp_op ppf = function
    | R_read -> Format.fprintf ppf "read"
    | R_write v -> Format.fprintf ppf "write %d" v
  in
  let pp_result = Format.pp_print_int in
  let history =
    [
      ev 0 (R_write 5) 0 0 10;
      ev 1 R_read 7 20 30;  (* impossible: nobody wrote 7 *)
      ev 0 R_read 5 40 50;
      ev 1 R_read 5 60 70;
    ]
  in
  match Lincheck.counterexample_free ~pp_op ~pp_result reg_spec history with
  | Ok () -> Alcotest.fail "impossible history accepted"
  | Error msg ->
      check_bool "reports the prefix length" true
        (contains ~needle:"shortest failing prefix: 2 events" msg);
      check_bool "lists the write" true
        (contains ~needle:"client 0 [0, 10] write 5" msg);
      check_bool "lists the violating read with its result" true
        (contains ~needle:"client 1 [20, 30] read -> 7" msg);
      check_bool "omits events after the violation" false
        (contains ~needle:"[40, 50]" msg || contains ~needle:"[60, 70]" msg)

let test_counterexample_free_accepts () =
  match
    Lincheck.counterexample_free reg_spec [ ev 0 (R_write 3) 0 0 10; ev 0 R_read 3 20 30 ]
  with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* Sequential histories generated from the spec are always accepted. *)
let reg_sequential_prop =
  QCheck.Test.make ~name:"generated sequential histories linearize" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (option (int_bound 100)))
    (fun ops ->
      let _, _, events =
        List.fold_left
          (fun (state, t, acc) op ->
            let op = match op with Some v -> R_write v | None -> R_read in
            let state', res = reg_spec.Lincheck.apply state op in
            (state', t + 2, ev 0 op res t (t + 1) :: acc))
          (0, 0, []) ops
      in
      Lincheck.check reg_spec (List.rev events))

(* {1 The KV application model} *)

let kv_apply state req =
  let get k = List.nth state k in
  let set k v = List.mapi (fun i x -> if i = k then v else x) state in
  match req with
  | Kv_app.Get k -> (state, Kv_app.Value (get k))
  | Kv_app.Put (k, v) -> (set k v, Kv_app.Ack)
  | Kv_app.Add (k, d) ->
      let v = Int64.add (get k) d in
      (set k v, Kv_app.Value v)
  | Kv_app.Transfer { src; dst; amount } ->
      let s = set src (Int64.sub (get src) amount) in
      let s = List.mapi (fun i x -> if i = dst then Int64.add (List.nth state dst) amount else x) s in
      (s, Kv_app.Ack)
  | Kv_app.Incr_all ks ->
      (List.mapi (fun i x -> if List.mem i ks then Int64.add x 1L else x) state, Kv_app.Ack)
  | Kv_app.Read_all ks -> (state, Kv_app.Values (List.map (fun k -> (k, get k)) ks))

let kv_spec ~keys ~init : (Kv_app.req, Kv_app.resp, int64 list) Lincheck.spec =
  {
    Lincheck.initial = List.init keys (fun _ -> init);
    apply = kv_apply;
    equal_result = ( = );
  }

(* Run concurrent clients against a real deployment and record the
   history each observed. *)
let record_heron_history ?(tweak = fun c -> c) ~seed ~keys ~partitions ~clients
    ~ops_per_client ~gen_op () =
  let eng = Engine.create ~seed () in
  let cfg = tweak (Config.default ~partitions ~replicas:3) in
  let sys = System.create eng ~cfg ~app:(Kv_app.app ~keys ~partitions ~init:0L) in
  System.start sys;
  let events = ref [] in
  for c = 0 to clients - 1 do
    let node = System.new_client_node sys ~name:(Printf.sprintf "c%d" c) in
    let rng = Random.State.make [| seed; c |] in
    Fabric.spawn_on node (fun () ->
        for _ = 1 to ops_per_client do
          let op = gen_op rng in
          let t0 = Engine.self_now () in
          let resps = System.submit sys ~from:node op in
          let t1 = Engine.self_now () in
          events :=
            {
              Lincheck.ev_client = c;
              ev_op = op;
              ev_result = snd (List.hd resps);
              ev_invoke = t0;
              ev_return = t1;
            }
            :: !events
        done)
  done;
  Engine.run_until eng (Time_ns.s 10);
  Alcotest.(check int) "all clients finished" (clients * ops_per_client)
    (List.length !events);
  List.rev !events

let mixed_op ~keys rng =
  match Random.State.int rng 5 with
  | 0 -> Kv_app.Put (Random.State.int rng keys, Int64.of_int (Random.State.int rng 100))
  | 1 -> Kv_app.Get (Random.State.int rng keys)
  | 2 -> Kv_app.Add (Random.State.int rng keys, 1L)
  | 3 -> Kv_app.Incr_all [ 0; 1 ]
  | _ -> Kv_app.Read_all [ 0; 1 ]

let test_heron_history_linearizable () =
  let keys = 4 in
  let events =
    record_heron_history ~seed:31 ~keys ~partitions:2 ~clients:4 ~ops_per_client:12
      ~gen_op:(mixed_op ~keys) ()
  in
  match Lincheck.counterexample_free (kv_spec ~keys ~init:0L) events with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let heron_linearizable_prop =
  QCheck.Test.make ~name:"heron KV histories linearize (random seeds)" ~count:6
    QCheck.(int_bound 10_000)
    (fun seed ->
      let keys = 3 in
      let events =
        record_heron_history ~seed ~keys ~partitions:3 ~clients:3 ~ops_per_client:10
          ~gen_op:(mixed_op ~keys) ()
      in
      Lincheck.check (kv_spec ~keys ~init:0L) events)

let test_corrupted_history_rejected () =
  (* Inject an impossible observation into a real history: a Get
     returning a value nobody ever wrote. *)
  let keys = 4 in
  let events =
    record_heron_history ~seed:33 ~keys ~partitions:2 ~clients:3 ~ops_per_client:8
      ~gen_op:(mixed_op ~keys) ()
  in
  let t = (List.nth events (List.length events - 1)).Lincheck.ev_return in
  let poison =
    {
      Lincheck.ev_client = 99;
      ev_op = Kv_app.Get 0;
      ev_result = Kv_app.Value 123_456_789L;
      ev_invoke = t + 1;
      ev_return = t + 2;
    }
  in
  check_bool "poisoned history rejected" false
    (Lincheck.check (kv_spec ~keys ~init:0L) (events @ [ poison ]))

let test_batching_onoff_linearizable () =
  (* Doorbell-batched coordination writes must not change correctness:
     the same mixed workload linearizes with coord_batching on and off,
     and every client op completes in both runs. Timing differs between
     the two configs, so histories are compared by verdict and op count
     rather than event-for-event. *)
  let keys = 4 in
  let run batching =
    record_heron_history ~seed:41 ~keys ~partitions:2 ~clients:4 ~ops_per_client:10
      ~tweak:(fun c -> { c with Config.coord_batching = batching })
      ~gen_op:(mixed_op ~keys) ()
  in
  let on_ = run true and off = run false in
  check_bool "batching on linearizes" true (Lincheck.check (kv_spec ~keys ~init:0L) on_);
  check_bool "batching off linearizes" true (Lincheck.check (kv_spec ~keys ~init:0L) off);
  Alcotest.(check int) "same op count" (List.length off) (List.length on_)

let test_pipeline_onoff_linearizable () =
  (* The compartmentalized pipeline (batcher + executor pool +
     coordination writer, DESIGN.md §12) must not change correctness:
     the same mixed workload linearizes with pipelining on and off, and
     every client op completes in both runs. A small batch size and a
     short flush timeout force real batches at this op rate. *)
  let keys = 4 in
  let pipe_on c =
    {
      c with
      Config.pipeline =
        {
          Config.default_pipeline with
          Config.pipe_enabled = true;
          pipe_batch_size = 4;
          pipe_flush_timeout_ns = 10_000;
          pipe_executors = 4;
        };
    }
  in
  let run tweak =
    record_heron_history ~seed:43 ~keys ~partitions:2 ~clients:4 ~ops_per_client:10
      ~tweak ~gen_op:(mixed_op ~keys) ()
  in
  let on_ = run pipe_on and off = run (fun c -> c) in
  check_bool "pipeline on linearizes" true (Lincheck.check (kv_spec ~keys ~init:0L) on_);
  check_bool "pipeline off linearizes" true (Lincheck.check (kv_spec ~keys ~init:0L) off);
  Alcotest.(check int) "same op count" (List.length off) (List.length on_)

let pipeline_linearizable_prop =
  QCheck.Test.make ~name:"pipelined KV histories linearize (random seeds)"
    ~count:4
    QCheck.(int_bound 10_000)
    (fun seed ->
      let keys = 3 in
      let events =
        record_heron_history ~seed ~keys ~partitions:2 ~clients:3 ~ops_per_client:10
          ~tweak:(fun c ->
            {
              c with
              Config.pipeline =
                {
                  Config.default_pipeline with
                  Config.pipe_enabled = true;
                  pipe_batch_size = 3;
                  pipe_flush_timeout_ns = 8_000;
                };
            })
          ~gen_op:(mixed_op ~keys) ()
      in
      Lincheck.check (kv_spec ~keys ~init:0L) events)

let tc name f = Alcotest.test_case name `Quick f
let qc t = QCheck_alcotest.to_alcotest t

let suite =
  [
    ( "lincheck.register",
      [
        tc "sequential" test_reg_sequential;
        tc "concurrent overlap" test_reg_concurrent_overlap;
        tc "real-time order" test_reg_real_time_order;
        tc "empty history" test_empty_history;
        tc "bad interval rejected" test_bad_interval_rejected;
        tc "counterexample message shape" test_counterexample_message_shape;
        tc "counterexample_free accepts good histories" test_counterexample_free_accepts;
        qc reg_sequential_prop;
      ] );
    ( "lincheck.heron",
      [
        tc "mixed KV history is linearizable" test_heron_history_linearizable;
        tc "corrupted history rejected" test_corrupted_history_rejected;
        tc "coord batching on/off verdicts agree" test_batching_onoff_linearizable;
        tc "pipeline on/off verdicts agree" test_pipeline_onoff_linearizable;
        qc heron_linearizable_prop;
        qc pipeline_linearizable_prop;
      ] );
  ]

let () = Alcotest.run "heron_lincheck" suite
