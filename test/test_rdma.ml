(* Tests for heron_rdma: memory regions, the fabric, and one-sided
   verbs with RC semantics, latency accounting and failure behaviour. *)

open Heron_sim
open Heron_rdma

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_bytes msg a b = Alcotest.(check string) msg (Bytes.to_string a) (Bytes.to_string b)

(* {1 Memory} *)

let test_memory_rw () =
  let r = Memory.make_region ~rid:0 ~size:64 in
  check_int "size" 64 (Memory.region_size r);
  Memory.write_bytes r ~off:10 (Bytes.of_string "hello");
  check_bytes "roundtrip" (Bytes.of_string "hello") (Memory.read_bytes r ~off:10 ~len:5);
  check_bytes "zero fill" (Bytes.of_string "\000\000") (Memory.read_bytes r ~off:0 ~len:2)

let test_memory_bounds () =
  let r = Memory.make_region ~rid:1 ~size:16 in
  let oob f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "read past end" true (oob (fun () -> Memory.read_bytes r ~off:10 ~len:8));
  check_bool "negative off" true (oob (fun () -> Memory.read_bytes r ~off:(-1) ~len:2));
  check_bool "write past end" true
    (oob (fun () -> Memory.write_bytes r ~off:12 (Bytes.of_string "abcdefgh")));
  check_bool "i64 past end" true (oob (fun () -> Memory.get_i64 r ~off:12))

let test_memory_i64 () =
  let r = Memory.make_region ~rid:2 ~size:32 in
  Memory.set_i64 r ~off:8 0x1122334455667788L;
  Alcotest.(check int64) "i64 roundtrip" 0x1122334455667788L (Memory.get_i64 r ~off:8)

let test_memory_wipe () =
  let r = Memory.make_region ~rid:3 ~size:8 in
  Memory.set_i64 r ~off:0 99L;
  Memory.wipe r;
  Alcotest.(check int64) "wiped" 0L (Memory.get_i64 r ~off:0)

let test_memory_addr () =
  let r = Memory.make_region ~rid:7 ~size:8 in
  let a = Memory.addr ~node:3 r ~off:2 in
  check_int "node" 3 a.Memory.mem_node;
  check_int "rid" 7 a.Memory.mem_rid;
  check_int "off" 2 a.Memory.mem_off;
  check_int "shift" 6 (Memory.shift a 4).Memory.mem_off

(* {1 Fabric + Qp helpers} *)

let make_pair () =
  let eng = Engine.create () in
  let fab = Fabric.create eng ~profile:Profile.default in
  let a = Fabric.add_node fab ~name:"a" in
  let b = Fabric.add_node fab ~name:"b" in
  (eng, fab, a, b)

(* {1 Fabric} *)

let test_fabric_nodes () =
  let _, fab, a, b = make_pair () in
  check_int "count" 2 (Fabric.node_count fab);
  check_bool "alive" true (Fabric.is_alive a);
  Alcotest.(check string) "name" "b" (Fabric.node_name b);
  check_bool "find" true (Fabric.find_node fab (Fabric.node_id a) == a)

let test_fabric_local_rw () =
  let _, _, a, _ = make_pair () in
  let r = Fabric.alloc_region a ~size:32 in
  let addr = Memory.addr ~node:(Fabric.node_id a) r ~off:4 in
  Fabric.local_write a addr (Bytes.of_string "xyz");
  check_bytes "local rw" (Bytes.of_string "xyz") (Fabric.local_read a addr ~len:3)

let test_fabric_local_wrong_node () =
  let _, _, a, b = make_pair () in
  let r = Fabric.alloc_region a ~size:8 in
  let addr = Memory.addr ~node:(Fabric.node_id a) r ~off:0 in
  Alcotest.check_raises "wrong node"
    (Invalid_argument "Fabric: address does not name this node")
    (fun () -> ignore (Fabric.local_read b addr ~len:1))

let test_fabric_crash_cancels_fibers () =
  let eng, _, a, _ = make_pair () in
  let steps = ref 0 in
  Fabric.spawn_on a (fun () ->
      for _ = 1 to 100 do
        Engine.sleep (Time_ns.us 1);
        incr steps
      done);
  Engine.spawn eng (fun () ->
      (* Crash strictly between the 5th and 6th iteration. *)
      Engine.sleep (Time_ns.ns 5_500);
      Fabric.crash a);
  Engine.run eng;
  check_int "fiber stopped at crash" 5 !steps;
  check_bool "dead" false (Fabric.is_alive a)

let test_fabric_recover_wipes () =
  let _, _, a, _ = make_pair () in
  let r = Fabric.alloc_region a ~size:8 in
  Memory.set_i64 r ~off:0 7L;
  Fabric.crash a;
  Fabric.recover a;
  check_bool "alive again" true (Fabric.is_alive a);
  Alcotest.(check int64) "memory wiped" 0L (Memory.get_i64 r ~off:0)

let test_fabric_recover_no_wipe () =
  let _, _, a, _ = make_pair () in
  let r = Fabric.alloc_region a ~size:8 in
  Memory.set_i64 r ~off:0 7L;
  Fabric.crash a;
  Fabric.recover ~wipe:false a;
  Alcotest.(check int64) "memory kept" 7L (Memory.get_i64 r ~off:0)

(* {1 Qp verbs} *)

let test_qp_read_write () =
  let eng, _, a, b = make_pair () in
  let r = Fabric.alloc_region b ~size:64 in
  let addr = Memory.addr ~node:(Fabric.node_id b) r ~off:0 in
  let got = ref Bytes.empty in
  Fabric.spawn_on a (fun () ->
      let qp = Qp.connect ~src:a ~dst:b in
      Qp.write qp addr (Bytes.of_string "remote!");
      got := Qp.read qp addr ~len:7);
  Engine.run eng;
  check_bytes "write then read back" (Bytes.of_string "remote!") !got

let test_qp_latency_accounting () =
  (* A verb costs post + base + size/bandwidth; two verbs on one QP
     serialize (RC ordering). *)
  let eng, _, a, b = make_pair () in
  let r = Fabric.alloc_region b ~size:2048 in
  let addr = Memory.addr ~node:(Fabric.node_id b) r ~off:0 in
  let t_one = ref 0 and t_two = ref 0 in
  Fabric.spawn_on a (fun () ->
      let qp = Qp.connect ~src:a ~dst:b in
      Qp.write qp addr (Bytes.create 1000);
      t_one := Engine.self_now ();
      Qp.write qp addr (Bytes.create 1000);
      t_two := Engine.self_now ());
  Engine.run eng;
  let p = Profile.default in
  let expect_one = p.Profile.post_ns + Profile.verb_latency p ~bytes_len:1000 in
  check_int "single verb" expect_one !t_one;
  check_bool "second verb after first" true (!t_two >= 2 * Profile.verb_latency p ~bytes_len:1000)

let test_qp_rc_in_order () =
  (* Posted writes on one QP land in post order even when sizes differ. *)
  let eng, _, a, b = make_pair () in
  let r = Fabric.alloc_region b ~size:8192 in
  let nid = Fabric.node_id b in
  Fabric.spawn_on a (fun () ->
      let qp = Qp.connect ~src:a ~dst:b in
      let big = Bytes.make 4096 'A' in
      Qp.write_post qp (Memory.addr ~node:nid r ~off:0) big;
      Qp.write_post qp (Memory.addr ~node:nid r ~off:0) (Bytes.of_string "B"));
  Engine.run eng;
  check_bytes "small write landed last" (Bytes.of_string "BA")
    (Memory.read_bytes r ~off:0 ~len:2)

let test_qp_write_post_returns_fast () =
  let eng, _, a, b = make_pair () in
  let r = Fabric.alloc_region b ~size:64 in
  let addr = Memory.addr ~node:(Fabric.node_id b) r ~off:0 in
  let after_post = ref 0 in
  Fabric.spawn_on a (fun () ->
      let qp = Qp.connect ~src:a ~dst:b in
      Qp.write_post qp addr (Bytes.of_string "x");
      after_post := Engine.self_now ());
  Engine.run eng;
  check_int "only post cost charged" Profile.default.Profile.post_ns !after_post;
  check_bytes "payload landed" (Bytes.of_string "x") (Memory.read_bytes r ~off:0 ~len:1)

let test_qp_mem_signal_on_remote_write () =
  let eng, _, a, b = make_pair () in
  let r = Fabric.alloc_region b ~size:8 in
  let addr = Memory.addr ~node:(Fabric.node_id b) r ~off:0 in
  let woken_at = ref (-1) in
  Fabric.spawn_on b (fun () ->
      Signal.wait_until (Fabric.mem_signal b) (fun () ->
          not (Int64.equal (Memory.get_i64 r ~off:0) 0L));
      woken_at := Engine.self_now ());
  Fabric.spawn_on a (fun () ->
      let qp = Qp.connect ~src:a ~dst:b in
      Qp.write_i64 qp addr 5L);
  Engine.run eng;
  check_bool "poller woken when write landed" true (!woken_at > 0)

let test_qp_read_dead_peer () =
  let eng, _, a, b = make_pair () in
  let r = Fabric.alloc_region b ~size:8 in
  let addr = Memory.addr ~node:(Fabric.node_id b) r ~off:0 in
  let result = ref `Pending in
  let failed_at = ref 0 in
  Fabric.crash b;
  Fabric.spawn_on a (fun () ->
      let qp = Qp.connect ~src:a ~dst:b in
      (try ignore (Qp.read qp addr ~len:8)
       with Qp.Rdma_exception { verb = "read"; _ } -> result := `Failed);
      failed_at := Engine.self_now ());
  Engine.run eng;
  check_bool "read failed" true (!result = `Failed);
  check_bool "failure took the transport timeout" true
    (!failed_at >= Profile.default.Profile.failure_timeout_ns)

let test_qp_write_post_to_dead_peer_dropped () =
  let eng, _, a, b = make_pair () in
  let r = Fabric.alloc_region b ~size:8 in
  let addr = Memory.addr ~node:(Fabric.node_id b) r ~off:0 in
  Fabric.crash b;
  Fabric.spawn_on a (fun () ->
      let qp = Qp.connect ~src:a ~dst:b in
      Qp.write_post qp addr (Bytes.of_string "x"));
  Engine.run eng;
  Alcotest.(check int64) "nothing landed" 0L (Memory.get_i64 r ~off:0)

let test_qp_cas () =
  let eng, _, a, b = make_pair () in
  let r = Fabric.alloc_region b ~size:8 in
  let addr = Memory.addr ~node:(Fabric.node_id b) r ~off:0 in
  Memory.set_i64 r ~off:0 10L;
  let first = ref (-1L) and second = ref (-1L) in
  Fabric.spawn_on a (fun () ->
      let qp = Qp.connect ~src:a ~dst:b in
      first := Qp.cas qp addr ~expected:10L ~desired:20L;
      second := Qp.cas qp addr ~expected:10L ~desired:30L);
  Engine.run eng;
  Alcotest.(check int64) "first cas sees old" 10L !first;
  Alcotest.(check int64) "second cas fails" 20L !second;
  Alcotest.(check int64) "value is from first cas" 20L (Memory.get_i64 r ~off:0)

let test_qp_payload_snapshot () =
  (* Mutating the caller's buffer after posting must not change what
     lands remotely. *)
  let eng, _, a, b = make_pair () in
  let r = Fabric.alloc_region b ~size:8 in
  let addr = Memory.addr ~node:(Fabric.node_id b) r ~off:0 in
  Fabric.spawn_on a (fun () ->
      let qp = Qp.connect ~src:a ~dst:b in
      let payload = Bytes.of_string "old" in
      Qp.write_post qp addr payload;
      Bytes.blit_string "new" 0 payload 0 3);
  Engine.run eng;
  check_bytes "snapshot at post time" (Bytes.of_string "old")
    (Memory.read_bytes r ~off:0 ~len:3)

let test_qp_shared_between_fibers () =
  (* Two fibers posting on one QP: RC keeps their writes ordered and
     both complete. *)
  let eng, _, a, b = make_pair () in
  let r = Fabric.alloc_region b ~size:16 in
  let nid = Fabric.node_id b in
  let qp = ref None in
  Fabric.spawn_on a (fun () -> qp := Some (Qp.connect ~src:a ~dst:b));
  Engine.run eng;
  let qp = Option.get !qp in
  let done_count = ref 0 in
  for i = 0 to 1 do
    Fabric.spawn_on a (fun () ->
        Qp.write qp (Memory.addr ~node:nid r ~off:(8 * i)) (Bytes.make 8 (Char.chr (65 + i)));
        incr done_count)
  done;
  Engine.run eng;
  check_int "both writes completed" 2 !done_count;
  check_bytes "first landed" (Bytes.make 8 'A') (Memory.read_bytes r ~off:0 ~len:8);
  check_bytes "second landed" (Bytes.make 8 'B') (Memory.read_bytes r ~off:8 ~len:8)

let test_profile_verb_latency () =
  let p = Profile.default in
  check_int "zero payload" p.Profile.verb_ns (Profile.verb_latency p ~bytes_len:0);
  check_int "1KB at 25Gbps" (p.Profile.verb_ns + 320) (Profile.verb_latency p ~bytes_len:1000)

(* {1 Doorbell batching} *)

(* A fresh fabric with its own registry so metric assertions are not
   polluted by other tests. *)
let make_metered ?(profile = Profile.default) () =
  let eng = Engine.create () in
  let reg = Heron_obs.Metrics.create () in
  let fab = Fabric.create ~metrics:reg eng ~profile in
  let a = Fabric.add_node fab ~name:"a" in
  let b = Fabric.add_node fab ~name:"b" in
  (eng, reg, fab, a, b)

let counter_of reg ?labels name =
  match Heron_obs.Metrics.find (Heron_obs.Metrics.snapshot reg) ?labels name with
  | Some (Heron_obs.Metrics.Counter_v n) -> n
  | Some _ -> Alcotest.failf "%s: not a counter" name
  | None -> 0

let test_write_post_many_one_doorbell () =
  (* n WQEs under one coalesce group: the poster pays post_ns once plus
     doorbell_ns per further WQE; every WQE still pays full RC-ordered
     wire latency, so the last landing is n verb latencies out. *)
  let eng, reg, _, a, b = make_metered () in
  let p = Profile.default in
  let r = Fabric.alloc_region b ~size:64 in
  let nid = Fabric.node_id b in
  let after_post = ref 0 in
  Fabric.spawn_on a (fun () ->
      let qp = Qp.connect ~src:a ~dst:b in
      Qp.write_post_many qp
        (List.init 5 (fun i ->
             (Memory.addr ~node:nid r ~off:(8 * i), Bytes.make 8 (Char.chr (65 + i)))));
      after_post := Engine.self_now ());
  Engine.run eng;
  check_int "one doorbell + 4 chained WQEs"
    (p.Profile.post_ns + (4 * p.Profile.doorbell_ns))
    !after_post;
  for i = 0 to 4 do
    check_bytes "payload landed"
      (Bytes.make 8 (Char.chr (65 + i)))
      (Memory.read_bytes r ~off:(8 * i) ~len:8)
  done;
  check_int "one write_post charge"
    1
    (counter_of reg "rdma.verb.count" ~labels:[ ("verb", "write_post"); ("src", "a"); ("dst", "b") ]);
  check_int "per-WQE bytes"
    40
    (counter_of reg "rdma.verb.bytes" ~labels:[ ("verb", "write_post"); ("src", "a"); ("dst", "b") ]);
  check_int "rings" 1 (counter_of reg "rdma.doorbell.rings");
  check_int "wqes" 5 (counter_of reg "rdma.doorbell.wqes");
  check_int "coalesced" 4 (counter_of reg "rdma.doorbell.coalesced")

let test_write_post_many_coalesce_split () =
  (* post_coalesce caps WQEs per doorbell: 5 WQEs at 2 per ring cost 3
     doorbells and 2 chained posts. *)
  let profile = { Profile.default with Profile.post_coalesce = 2 } in
  let eng, reg, _, a, b = make_metered ~profile () in
  let r = Fabric.alloc_region b ~size:64 in
  let nid = Fabric.node_id b in
  let after_post = ref 0 in
  Fabric.spawn_on a (fun () ->
      let qp = Qp.connect ~src:a ~dst:b in
      Qp.write_post_many qp
        (List.init 5 (fun i -> (Memory.addr ~node:nid r ~off:(8 * i), Bytes.make 8 'x')));
      after_post := Engine.self_now ());
  Engine.run eng;
  check_int "3 doorbells + 2 chained WQEs"
    ((3 * profile.Profile.post_ns) + (2 * profile.Profile.doorbell_ns))
    !after_post;
  check_int "write_post counts doorbells"
    3
    (counter_of reg "rdma.verb.count" ~labels:[ ("verb", "write_post"); ("src", "a"); ("dst", "b") ]);
  check_int "rings" 3 (counter_of reg "rdma.doorbell.rings");
  check_int "wqes" 5 (counter_of reg "rdma.doorbell.wqes");
  check_int "coalesced" 2 (counter_of reg "rdma.doorbell.coalesced")

let test_write_post_many_rc_order_and_latency () =
  (* WQEs in one batch serialize on the QP: k-th completion is k verb
     latencies after the (single) post charge. *)
  let eng, _, _, a, b = make_metered () in
  let p = Profile.default in
  let r = Fabric.alloc_region b ~size:8 in
  let nid = Fabric.node_id b in
  let landings = ref [] in
  Fabric.spawn_on b (fun () ->
      let last = ref 0L in
      for _ = 1 to 3 do
        Signal.wait_until (Fabric.mem_signal b) (fun () ->
            not (Int64.equal (Memory.get_i64 r ~off:0) !last));
        last := Memory.get_i64 r ~off:0;
        landings := Engine.self_now () :: !landings
      done);
  Fabric.spawn_on a (fun () ->
      let qp = Qp.connect ~src:a ~dst:b in
      Qp.write_post_many qp
        (List.init 3 (fun i ->
             let payload = Bytes.create 8 in
             Bytes.set_int64_le payload 0 (Int64.of_int (i + 1));
             (Memory.addr ~node:nid r ~off:0, payload))));
  Engine.run eng;
  let cpu = p.Profile.post_ns + (2 * p.Profile.doorbell_ns) in
  let lat = Profile.verb_latency p ~bytes_len:8 in
  Alcotest.(check (list int))
    "in-order landings, one verb latency apart"
    [ cpu + lat; cpu + (2 * lat); cpu + (3 * lat) ]
    (List.rev !landings)

let test_doorbell_cross_qp () =
  (* One ring covering QPs to two peers: single doorbell charge, both
     wires run concurrently (per-QP busy_until), and a dead peer only
     drops its own WQE. *)
  let eng, reg, fab, a, b = make_metered () in
  let c = Fabric.add_node fab ~name:"c" in
  let p = Profile.default in
  let rb = Fabric.alloc_region b ~size:8 in
  let rc = Fabric.alloc_region c ~size:8 in
  let after_ring = ref 0 in
  Fabric.crash c;
  Fabric.spawn_on a (fun () ->
      let qb = Qp.connect ~src:a ~dst:b in
      let qc = Qp.connect ~src:a ~dst:c in
      let batch = Qp.Doorbell.create () in
      Qp.Doorbell.add batch qb (Memory.addr ~node:(Fabric.node_id b) rb ~off:0)
        (Bytes.of_string "to-b!");
      Qp.Doorbell.add batch qc (Memory.addr ~node:(Fabric.node_id c) rc ~off:0)
        (Bytes.of_string "to-c!");
      check_int "batch length" 2 (Qp.Doorbell.length batch);
      Qp.Doorbell.ring batch;
      check_int "drained" 0 (Qp.Doorbell.length batch);
      after_ring := Engine.self_now ());
  Engine.run eng;
  check_int "one doorbell for both peers"
    (p.Profile.post_ns + p.Profile.doorbell_ns)
    !after_ring;
  check_bytes "live peer got its write" (Bytes.of_string "to-b!")
    (Memory.read_bytes rb ~off:0 ~len:5);
  Alcotest.(check int64) "dead peer untouched" 0L (Memory.get_i64 rc ~off:0);
  check_int "drop counted on the dead QP"
    1
    (counter_of reg "rdma.dropped_writes" ~labels:[ ("src", "a"); ("dst", "c") ]);
  check_int "rings" 1 (counter_of reg "rdma.doorbell.rings");
  check_int "wqes" 2 (counter_of reg "rdma.doorbell.wqes")

let test_doorbell_payload_snapshot () =
  (* Payloads are snapshotted when the doorbell rings, so the caller's
     buffer can be reused afterwards. *)
  let eng, _, _, a, b = make_metered () in
  let r = Fabric.alloc_region b ~size:8 in
  Fabric.spawn_on a (fun () ->
      let qp = Qp.connect ~src:a ~dst:b in
      let batch = Qp.Doorbell.create () in
      let payload = Bytes.of_string "old" in
      Qp.Doorbell.add batch qp (Memory.addr ~node:(Fabric.node_id b) r ~off:0) payload;
      Qp.Doorbell.ring batch;
      Bytes.blit_string "new" 0 payload 0 3);
  Engine.run eng;
  check_bytes "snapshot at ring time" (Bytes.of_string "old")
    (Memory.read_bytes r ~off:0 ~len:3)

let test_write_post_many_empty () =
  let eng, _, _, a, b = make_metered () in
  let moved = ref false in
  Fabric.spawn_on a (fun () ->
      let qp = Qp.connect ~src:a ~dst:b in
      Qp.write_post_many qp [];
      Qp.Doorbell.ring (Qp.Doorbell.create ());
      moved := Engine.self_now () > 0);
  Engine.run eng;
  check_bool "empty batches are free" false !moved

let tc name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "rdma.memory",
      [
        tc "read/write roundtrip" test_memory_rw;
        tc "bounds checking" test_memory_bounds;
        tc "int64 accessors" test_memory_i64;
        tc "wipe" test_memory_wipe;
        tc "addresses" test_memory_addr;
      ] );
    ( "rdma.fabric",
      [
        tc "node registry" test_fabric_nodes;
        tc "local read/write" test_fabric_local_rw;
        tc "local access checks node" test_fabric_local_wrong_node;
        tc "crash cancels fibers" test_fabric_crash_cancels_fibers;
        tc "recover wipes memory" test_fabric_recover_wipes;
        tc "recover can keep memory" test_fabric_recover_no_wipe;
      ] );
    ( "rdma.qp",
      [
        tc "write then read" test_qp_read_write;
        tc "latency accounting" test_qp_latency_accounting;
        tc "RC in-order delivery" test_qp_rc_in_order;
        tc "write_post returns fast" test_qp_write_post_returns_fast;
        tc "memory signal on remote write" test_qp_mem_signal_on_remote_write;
        tc "read from dead peer fails" test_qp_read_dead_peer;
        tc "posted write to dead peer dropped" test_qp_write_post_to_dead_peer_dropped;
        tc "compare-and-swap" test_qp_cas;
        tc "payload snapshot semantics" test_qp_payload_snapshot;
        tc "QP shared between fibers" test_qp_shared_between_fibers;
        tc "profile latency formula" test_profile_verb_latency;
      ] );
    ( "rdma.doorbell",
      [
        tc "write_post_many single doorbell" test_write_post_many_one_doorbell;
        tc "coalesce split" test_write_post_many_coalesce_split;
        tc "RC order within a batch" test_write_post_many_rc_order_and_latency;
        tc "cross-QP batch" test_doorbell_cross_qp;
        tc "payload snapshot at ring" test_doorbell_payload_snapshot;
        tc "empty batches" test_write_post_many_empty;
      ] );
  ]

let () = Alcotest.run "heron_rdma" suite
