(* Tests for heron_harness: the closed-loop driver's accounting and
   smoke tests of the experiment generators (shape of the output
   tables, sanity of the measured relationships the paper's claims rest
   on). The full-fidelity runs live in bench/main.ml; here everything
   uses tiny windows. *)

open Heron_sim
open Heron_stats
open Heron_core
open Heron_tpcc
open Heron_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Driver accounting} *)

let test_driver_counts_only_measure_window () =
  let scale = Scale.tiny ~warehouses:1 in
  let sys = Driver.heron_tpcc_system ~scale () in
  let rs =
    Driver.run_system ~warmup:(Time_ns.ms 2) ~measure:(Time_ns.ms 10) ~sys ~clients:2
      ~gen:(Driver.tpcc_gen ~profile:Workload.local_only ~scale)
      ()
  in
  check_bool "completed some" true (rs.Driver.rs_completed > 100);
  check_int "latency samples = completed" rs.Driver.rs_completed
    (Sample_set.count rs.Driver.rs_latency);
  (* Throughput is completed / measure window. *)
  Alcotest.(check (float 1.)) "tps consistent"
    (float_of_int rs.Driver.rs_completed /. 0.01)
    rs.Driver.rs_throughput_tps;
  (* Replica stats were reset after warmup: executed during the window
     is close to completed (off by in-flight requests). *)
  let executed =
    Array.fold_left
      (fun acc r -> max acc (Replica.stats r).Replica.st_executed)
      0
      (System.replicas sys).(0)
  in
  check_bool "replica stats describe the window" true
    (abs (executed - rs.Driver.rs_completed) < 20)

let test_driver_single_multi_split () =
  let scale = Scale.tiny ~warehouses:2 in
  let sys = Driver.heron_tpcc_system ~scale () in
  let rs =
    Driver.run_system ~warmup:(Time_ns.ms 2) ~measure:(Time_ns.ms 20) ~sys ~clients:4
      ~gen:(Driver.tpcc_gen ~profile:Workload.standard ~scale)
      ()
  in
  check_int "split adds up" rs.Driver.rs_completed
    (Sample_set.count rs.Driver.rs_latency_single
    + Sample_set.count rs.Driver.rs_latency_multi);
  check_bool "some multi-partition traffic" true
    (Sample_set.count rs.Driver.rs_latency_multi > 0);
  check_bool "multi costs more on average" true
    (Sample_set.mean rs.Driver.rs_latency_multi
    > Sample_set.mean rs.Driver.rs_latency_single)

let test_ramcast_runner () =
  let rs =
    Driver.run_ramcast ~warmup:(Time_ns.ms 1) ~measure:(Time_ns.ms 10) ~partitions:2
      ~clients:4
      ~gen_dst:(fun rng -> if Random.State.bool rng then [ 0 ] else [ 0; 1 ])
      ~msg_bytes:128 ()
  in
  check_bool "messages flowed" true (rs.Driver.rs_completed > 100);
  check_bool "multicast latency is microseconds" true
    (Sample_set.mean rs.Driver.rs_latency < 1e6)

let test_null_app_isolates_coordination () =
  (* Null requests must be much faster than TPCC requests. *)
  let eng = Engine.create () in
  let cfg = Config.default ~partitions:2 ~replicas:3 in
  let sys = System.create eng ~cfg ~app:Driver.null_app in
  System.start sys;
  let rs =
    Driver.run_system ~warmup:(Time_ns.ms 1) ~measure:(Time_ns.ms 10) ~sys ~clients:4
      ~gen:(fun ~client rng ->
        ignore client;
        let dst = if Random.State.bool rng then [ 0 ] else [ 0; 1 ] in
        ({ Driver.nr_dst = []; nr_bytes = 200 }, Some dst))
      ()
  in
  check_bool "null requests complete" true (rs.Driver.rs_completed > 200);
  check_bool "null is cheap" true (Sample_set.mean rs.Driver.rs_latency < 60_000.)

(* {1 Experiment smoke tests} *)

let rows_of t = Table.rows t

let test_fig6_shape () =
  let breakdown, cdf = Experiments.fig6 ~quick:true () in
  check_int "five workloads" 5 (List.length (rows_of breakdown));
  check_int "five cdf rows" 5 (List.length (rows_of cdf));
  (* 1WH has no coordination; 4WH does. *)
  let row name =
    List.find (fun r -> List.hd r = name) (rows_of breakdown)
  in
  Alcotest.(check string) "1WH no coordination" "0.0" (List.nth (row "1WH") 2);
  check_bool "4WH coordinates" true (float_of_string (List.nth (row "4WH") 2) > 0.);
  (* Latency grows with the number of partitions touched. *)
  let total name = float_of_string (List.nth (row name) 4) in
  check_bool "more partitions, higher latency" true
    (total "1WH" < total "2WH" && total "2WH" < total "4WH")

let test_fig7_shape () =
  let averages, _ = Experiments.fig7 ~quick:true () in
  check_int "five transaction types" 5 (List.length (rows_of averages));
  let row name = List.find (fun r -> List.hd r = name) (rows_of averages) in
  (* NewOrder and Payment have multi-partition samples; the local
     transactions do not. *)
  check_bool "NewOrder has multi" true (List.nth (row "NewOrder") 2 <> "-");
  Alcotest.(check string) "Delivery is local" "-" (List.nth (row "Delivery") 2);
  (* StockLevel is the expensive local transaction (serialized table
     scans). *)
  let overall name = float_of_string (List.nth (row name) 3) in
  check_bool "StockLevel costs most among locals" true
    (overall "StockLevel" > overall "OrderStatus"
    && overall "StockLevel" > overall "Delivery")

let test_fig8_shape () =
  let t = Experiments.fig8 ~quick:true () in
  let rows = rows_of t in
  check_int "seven scenarios (quick)" 7 (List.length rows);
  (* Latency grows with transferred bytes, and non-serialized costs
     more than serialized at equal size. *)
  let value row = List.nth row 2 in
  let to_ns cell =
    match String.split_on_char ' ' cell with
    | [ x; "us" ] -> int_of_float (float_of_string x *. 1e3)
    | [ x; "ms" ] -> int_of_float (float_of_string x *. 1e6)
    | _ -> Alcotest.failf "bad latency cell %S" cell
  in
  let find scenario data =
    to_ns (value (List.find (fun r -> List.hd r = scenario && List.nth r 1 = data) rows))
  in
  let proto = to_ns (value (List.hd rows)) in
  check_bool "protocol is microseconds" true (proto < 10_000);
  check_bool "64KB < 640KB" true (find "Serialized" "64KB" < find "Serialized" "640KB");
  check_bool "640KB < 6.4MB" true (find "Serialized" "640KB" < find "Serialized" "6.4MB");
  check_bool "serialization overhead visible" true
    (find "Non-serialized" "640KB" > find "Serialized" "640KB")

let test_table1_shape () =
  let t = Experiments.table1 ~quick:true () in
  let rows = rows_of t in
  check_int "one config x two partitions (quick)" 2 (List.length rows);
  (* Delay column parses as a percentage. *)
  List.iter
    (fun row ->
      let pct = List.nth row 5 in
      check_bool "percent cell" true (String.length pct > 0 && pct.[String.length pct - 1] = '%'))
    rows

(* {1 Benchguard} *)

let with_json contents f =
  let file = Filename.temp_file "benchguard" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc contents;
      close_out oc;
      f file)

let test_benchguard_verdicts () =
  with_json {|{"tput": 900.0, "reads": 5000, "extra": 1}|} (fun current ->
      with_json {|{"tput": 1000.0, "reads": 1000}|} (fun baseline ->
          (* tput fell 10% exactly (at the floor, not below): ok.
             reads improved 5x: ok. *)
          (match
             Benchguard.check ~current ~baseline ~keys:[ "tput"; "reads" ]
               ~max_regression_pct:10.0
           with
          | Benchguard.Ok_all [ t; r ] ->
              check_bool "tput at floor passes" false t.Benchguard.vd_regressed;
              check_bool "improvement passes" false r.Benchguard.vd_regressed;
              check_int "exit code" 0 (Benchguard.exit_code (Benchguard.Ok_all [ t; r ]))
          | o ->
              Alcotest.failf "expected Ok_all: %s"
                (Format.asprintf "%a" Benchguard.pp_summary o));
          (* Tighten the tolerance: tput now regresses, reads still ok,
             and the summary names exactly the regressed key. *)
          match
            Benchguard.check ~current ~baseline ~keys:[ "tput"; "reads" ]
              ~max_regression_pct:5.0
          with
          | Benchguard.Regressed vs as r ->
              Alcotest.(check (list string))
                "regressed keys" [ "tput" ]
                (Benchguard.regressed_keys vs);
              check_int "exit code" 1 (Benchguard.exit_code r);
              check_bool "summary names the key" true
                (let s = Format.asprintf "%a" Benchguard.pp_summary r in
                 String.length s >= 4
                 && List.exists
                      (fun i -> String.sub s i 4 = "tput")
                      (List.init (String.length s - 3) Fun.id))
          | o ->
              Alcotest.failf "expected Regressed: %s"
                (Format.asprintf "%a" Benchguard.pp_summary o)))

let test_benchguard_bad_input () =
  with_json {|{"tput": 1000.0}|} (fun good ->
      (* Missing key. *)
      (match
         Benchguard.check ~current:good ~baseline:good ~keys:[ "nope" ]
           ~max_regression_pct:10.0
       with
      | Benchguard.Bad_input _ as r -> check_int "exit code" 1 (Benchguard.exit_code r)
      | _ -> Alcotest.fail "missing key accepted");
      (* Non-numeric key. *)
      with_json {|{"tput": "fast"}|} (fun stringy ->
          match
            Benchguard.check ~current:stringy ~baseline:good ~keys:[ "tput" ]
              ~max_regression_pct:10.0
          with
          | Benchguard.Bad_input _ -> ()
          | _ -> Alcotest.fail "non-numeric key accepted");
      (* Unreadable file. *)
      match
        Benchguard.check ~current:"/nonexistent/bench.json" ~baseline:good
          ~keys:[ "tput" ] ~max_regression_pct:10.0
      with
      | Benchguard.Bad_input _ -> ()
      | _ -> Alcotest.fail "missing file accepted")

let tc name f = Alcotest.test_case name `Quick f
let stc name f = Alcotest.test_case name `Slow f

let suite =
  [
    ( "harness.driver",
      [
        tc "measurement window accounting" test_driver_counts_only_measure_window;
        tc "single/multi split" test_driver_single_multi_split;
        tc "ramcast runner" test_ramcast_runner;
        tc "null app" test_null_app_isolates_coordination;
      ] );
    ( "harness.benchguard",
      [
        tc "verdicts and regressed-key summary" test_benchguard_verdicts;
        tc "bad input rejected" test_benchguard_bad_input;
      ] );
    ( "harness.experiments",
      [
        stc "fig6 shape" test_fig6_shape;
        stc "fig7 shape" test_fig7_shape;
        stc "fig8 shape" test_fig8_shape;
        stc "table1 shape" test_table1_shape;
      ] );
  ]

let () = Alcotest.run "heron_harness" suite
