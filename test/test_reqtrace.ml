(* Request-scoped causal tracing (DESIGN.md §11): critical-path
   extraction over handcrafted span DAGs, the exact-attribution
   property, the collector's ring/exemplar/metrics plumbing, and the
   Perfetto dump roundtrip used by [probe explain]. *)

open Heron_obs
open Heron_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let span ?(trace = 1) ?(attrs = []) ~id ~parent ~stage start stop =
  {
    Reqtrace.rs_trace = trace;
    rs_id = id;
    rs_parent = parent;
    rs_stage = stage;
    rs_start = start;
    rs_end = stop;
    rs_attrs = attrs;
  }

let seg_triples segs =
  List.map
    (fun s -> (s.Reqtrace.sg_span.Reqtrace.rs_stage, s.Reqtrace.sg_from, s.Reqtrace.sg_until))
    segs

let sum_segs segs =
  List.fold_left (fun acc s -> acc + (s.Reqtrace.sg_until - s.Reqtrace.sg_from)) 0 segs

(* {1 Handcrafted DAGs} *)

let test_fanout_join () =
  (* Two overlapping children fanning out of the root and joining back:
     the later-finishing child owns the overlap, gaps belong to the
     root. *)
  let spans =
    [
      span ~id:1 ~parent:0 ~stage:"request" 0 100;
      span ~id:2 ~parent:1 ~stage:"a" 10 40;
      span ~id:3 ~parent:1 ~stage:"b" 20 60;
    ]
  in
  match Reqtrace.nest spans with
  | None -> Alcotest.fail "no tree"
  | Some node ->
      let segs = Reqtrace.critical_segments node in
      Alcotest.(check (list (triple string int int)))
        "segments"
        [
          ("request", 0, 10); ("a", 10, 20); ("b", 20, 60); ("request", 60, 100);
        ]
        (seg_triples segs);
      check_int "exact partition" 100 (sum_segs segs);
      Alcotest.(check (list (pair string int)))
        "breakdown largest first"
        [ ("request", 50); ("b", 40); ("a", 10) ]
        (Reqtrace.breakdown segs)

let test_overlapping_siblings_nested () =
  (* A sibling wholly contained in another sibling's interval re-nests
     under it (the multicast layer only knows the root id), and then
     owns its slice of the covering span's critical path. *)
  let spans =
    [
      span ~id:1 ~parent:0 ~stage:"request" 0 100;
      span ~id:2 ~parent:1 ~stage:"ordering" 10 80;
      span ~id:3 ~parent:1 ~stage:"mcast.commit" 30 70;
    ]
  in
  match Reqtrace.nest spans with
  | None -> Alcotest.fail "no tree"
  | Some node ->
      (match node.Reqtrace.n_children with
      | [ o ] ->
          check_int "commit nested under ordering" 1
            (List.length o.Reqtrace.n_children)
      | _ -> Alcotest.fail "expected one direct child");
      let segs = Reqtrace.critical_segments node in
      Alcotest.(check (list (triple string int int)))
        "segments"
        [
          ("request", 0, 10);
          ("ordering", 10, 30);
          ("mcast.commit", 30, 70);
          ("ordering", 70, 80);
          ("request", 80, 100);
        ]
        (seg_triples segs);
      check_int "exact partition" 100 (sum_segs segs)

let test_truncated_children () =
  (* A span whose parent id is missing from the dump (dropped by the
     span cap, or a truncated file) still attaches to the root; a trace
     with no root at all yields no tree. *)
  let spans =
    [
      span ~id:1 ~parent:0 ~stage:"request" 0 50;
      span ~id:9 ~parent:42 ~stage:"execute" 10 20;
    ]
  in
  (match Reqtrace.nest spans with
  | None -> Alcotest.fail "no tree"
  | Some node ->
      check_int "orphan adopted by root" 1 (List.length node.Reqtrace.n_children);
      let segs = Reqtrace.critical_segments node in
      check_int "exact partition" 50 (sum_segs segs);
      Alcotest.(check (list (pair string int)))
        "orphan still attributed"
        [ ("request", 40); ("execute", 10) ]
        (Reqtrace.breakdown segs));
  check_bool "rootless trace has no tree" true
    (Reqtrace.nest [ span ~id:2 ~parent:7 ~stage:"x" 0 5 ] = None);
  (* Children poking outside the root interval are clipped, never
     counted beyond the root's own duration. *)
  match
    Reqtrace.nest
      [
        span ~id:1 ~parent:0 ~stage:"request" 10 50;
        span ~id:2 ~parent:1 ~stage:"state-transfer" 0 200;
      ]
  with
  | None -> Alcotest.fail "no tree"
  | Some node ->
      let segs = Reqtrace.critical_segments node in
      check_int "clipped to root" 40 (sum_segs segs);
      Alcotest.(check (list (pair string int)))
        "transfer owns the clipped window"
        [ ("state-transfer", 40) ]
        (Reqtrace.breakdown segs)

(* {1 Exact attribution property} *)

(* Random trees: span i's parent is drawn among earlier spans, its
   interval anywhere in [0, 2 * root duration) — including outside the
   root, which clipping must absorb. *)
let gen_case =
  QCheck.Gen.(
    int_range 1 1000 >>= fun dur ->
    list_size (int_range 0 25) (triple (int_range 0 2000) (int_range 0 2000) nat)
    >>= fun raw -> return (dur, raw))

let stages =
  [|
    "ordering"; "mcast.order"; "phase2"; "execute"; "phase4"; "batch.wait";
    "exec.queue";
  |]

let spans_of_case (dur, raw) =
  let root = span ~id:1 ~parent:0 ~stage:"request" 0 dur in
  let rec build i acc = function
    | [] -> List.rev acc
    | (a, b, p) :: rest ->
        let s =
          span ~id:(i + 2)
            ~parent:(1 + (p mod (i + 1)))
            ~stage:stages.(i mod Array.length stages)
            (min a b) (max a b)
        in
        build (i + 1) (s :: acc) rest
  in
  root :: build 0 [] raw

let prop_attribution_exact =
  QCheck.Test.make ~count:300 ~name:"critical path partitions root exactly"
    (QCheck.make gen_case)
    (fun case ->
      let spans = spans_of_case case in
      match Reqtrace.nest spans with
      | None -> false
      | Some node ->
          let root = node.Reqtrace.n_span in
          let segs = Reqtrace.critical_segments node in
          let chronological_disjoint =
            let rec go cursor = function
              | [] -> cursor = root.Reqtrace.rs_end
              | s :: rest ->
                  s.Reqtrace.sg_from = cursor
                  && s.Reqtrace.sg_until > s.Reqtrace.sg_from
                  && go s.Reqtrace.sg_until rest
            in
            go root.Reqtrace.rs_start segs
          in
          let dur = root.Reqtrace.rs_end - root.Reqtrace.rs_start in
          sum_segs segs = dur
          && List.fold_left (fun a (_, ns) -> a + ns) 0 (Reqtrace.breakdown segs)
             = dur
          && chronological_disjoint)

(* {1 Collector} *)

let test_collector_ring_and_metrics () =
  let reg = Metrics.create () in
  let col = Reqtrace.create ~ring:2 ~exemplars:2 () in
  Reqtrace.attach_metrics col reg;
  let finish_one ~dur =
    let trace, root = Reqtrace.start_trace col ~now:0 () in
    ignore
      (Reqtrace.add_span col ~trace ~parent:root ~stage:"execute" ~start:0
         (dur / 2));
    Reqtrace.finish col ~trace ~now:dur;
    trace
  in
  (* The slowest trace finishes first so the ring rotates it out, but
     the exemplar sampler must keep it. *)
  let t1 = finish_one ~dur:300 in
  let _t2 = finish_one ~dur:100 in
  let t3 = finish_one ~dur:200 in
  check_int "finished counts all" 3 (Reqtrace.finished col);
  check_int "ring keeps newest two" 2 (List.length (Reqtrace.completed col));
  check_bool "slowest rotated out of ring" true
    (List.for_all
       (fun t -> t.Reqtrace.tr_trace <> t1)
       (Reqtrace.completed col));
  (match Reqtrace.exemplars col with
  | a :: b :: _ ->
      check_int "slowest first" 300 (Reqtrace.duration a);
      check_int "second slowest" 200 (Reqtrace.duration b)
  | _ -> Alcotest.fail "expected two exemplars");
  check_bool "export keeps rotated exemplar" true
    (List.length (Reqtrace.export_trees col) = 3);
  (* Late span: the trace is finished, so it is counted and refused. *)
  check_int "late span refused" 0
    (Reqtrace.add_span col ~trace:t1 ~parent:1 ~stage:"state-transfer" ~start:0
       10);
  check_int "late counter" 1 (Reqtrace.late_spans col);
  ignore t3;
  (* Metrics: e2e histogram saw all three, stage histograms exist. *)
  let snap = Metrics.snapshot reg in
  (match Metrics.find snap "req.e2e_ns" with
  | Some (Metrics.Histogram_v h) -> check_int "e2e count" 3 h.Metrics.hs_count
  | _ -> Alcotest.fail "req.e2e_ns missing");
  (match Metrics.find snap ~labels:[ ("stage", "execute") ] "req.stage_ns" with
  | Some (Metrics.Histogram_v h) ->
      check_int "execute count" 3 h.Metrics.hs_count;
      (* execute owns [0, dur/2) of every request: 50 + 150 + 100. *)
      check_int "execute attributed sum" 300 h.Metrics.hs_sum
  | _ -> Alcotest.fail "req.stage_ns{stage=execute} missing");
  (match Metrics.find snap "req.traces" with
  | Some (Metrics.Counter_v n) -> check_int "trace counter" 3 n
  | _ -> Alcotest.fail "req.traces missing")

let test_collector_span_cap_and_discard () =
  let col = Reqtrace.create ~max_spans:2 () in
  let trace, root = Reqtrace.start_trace col ~now:0 () in
  check_bool "first accepted" true
    (Reqtrace.add_span col ~trace ~parent:root ~stage:"a" ~start:0 1 <> 0);
  check_bool "second accepted" true
    (Reqtrace.add_span col ~trace ~parent:root ~stage:"b" ~start:1 2 <> 0);
  check_int "cap refuses the third" 0
    (Reqtrace.add_span col ~trace ~parent:root ~stage:"c" ~start:2 3);
  check_int "dropped counter" 1 (Reqtrace.dropped_spans col);
  Alcotest.check_raises "backwards span rejected"
    (Invalid_argument "Reqtrace.add_span: span ends before it starts")
    (fun () ->
      ignore (Reqtrace.add_span col ~trace ~parent:root ~stage:"x" ~start:5 4));
  let t2, _ = Reqtrace.start_trace col ~now:0 () in
  Reqtrace.discard col ~trace:t2;
  Reqtrace.finish col ~trace:t2 ~now:9;
  check_int "discarded trace never finishes" 0 (Reqtrace.finished col);
  Reqtrace.finish col ~trace ~now:5;
  check_int "capped trace still finishes" 1 (Reqtrace.finished col)

(* {1 End-to-end: traced KV system} *)

let test_system_end_to_end () =
  let open Heron_core in
  let eng = Engine.create ~seed:3 () in
  let col = Reqtrace.create () in
  let cfg =
    let c = Config.default ~partitions:2 ~replicas:3 in
    { c with Config.reqtrace = Some col }
  in
  let sys =
    System.create eng ~cfg ~app:(Heron_kv.Kv_app.app ~keys:4 ~partitions:2 ~init:0L)
  in
  System.start sys;
  let client = System.new_client_node sys ~name:"c" in
  Heron_rdma.Fabric.spawn_on client (fun () ->
      ignore (System.submit sys ~from:client (Heron_kv.Kv_app.Put (0, 7L)));
      ignore (System.submit sys ~from:client (Heron_kv.Kv_app.Incr_all [ 0; 1 ]));
      ignore (System.submit sys ~from:client (Heron_kv.Kv_app.Read_all [ 0; 1 ])));
  Engine.run_until eng (Time_ns.ms 5);
  check_int "three requests traced" 3 (Reqtrace.finished col);
  let trees = Reqtrace.export_trees col in
  let all_stages =
    List.concat_map
      (fun t -> List.map (fun s -> s.Reqtrace.rs_stage) t.Reqtrace.tr_spans)
      trees
  in
  List.iter
    (fun stage ->
      check_bool (stage ^ " stage present") true (List.mem stage all_stages))
    [ "request"; "ordering"; "mcast.order"; "mcast.commit"; "execute"; "phase2"; "phase4" ];
  (* Every tree's critical path partitions its end-to-end latency. *)
  List.iter
    (fun tree ->
      match Reqtrace.nest tree.Reqtrace.tr_spans with
      | None -> Alcotest.fail "traced request has no tree"
      | Some node ->
          check_int "attribution sums to latency" (Reqtrace.duration tree)
            (sum_segs (Reqtrace.critical_segments node)))
    trees;
  (* The human rendering mentions the end-to-end duration and stages. *)
  let rendered = Reqtrace.render_tree (List.hd trees) in
  check_bool "render has breakdown" true
    (String.length rendered > 0
    &&
    let rec contains i =
      i + 9 <= String.length rendered
      && (String.sub rendered i 9 = "breakdown" || contains (i + 1))
    in
    contains 0)

(* Same deployment with the compartmentalized pipeline on: batched
   requests must additionally carry [batch.wait] (enqueue to flush) and
   [exec.queue] (admission to dequeue) spans, and attribution must still
   partition each request exactly. One executor per replica guarantees
   observable queueing. *)
let test_system_pipeline_stages () =
  let open Heron_core in
  let eng = Engine.create ~seed:5 () in
  let col = Reqtrace.create () in
  let cfg =
    let c = Config.default ~partitions:2 ~replicas:3 in
    {
      c with
      Config.reqtrace = Some col;
      pipeline =
        {
          Config.default_pipeline with
          Config.pipe_enabled = true;
          pipe_batch_size = 2;
          pipe_flush_timeout_ns = 10_000;
          pipe_executors = 1;
        };
    }
  in
  let sys =
    System.create eng ~cfg ~app:(Heron_kv.Kv_app.app ~keys:4 ~partitions:2 ~init:0L)
  in
  System.start sys;
  for c = 0 to 3 do
    let client = System.new_client_node sys ~name:(Printf.sprintf "c%d" c) in
    Heron_rdma.Fabric.spawn_on client (fun () ->
        for i = 1 to 3 do
          ignore
            (System.submit sys ~from:client (Heron_kv.Kv_app.Put (c, Int64.of_int i)))
        done)
  done;
  Engine.run_until eng (Time_ns.ms 5);
  check_int "twelve requests traced" 12 (Reqtrace.finished col);
  let trees = Reqtrace.export_trees col in
  let all_stages =
    List.concat_map
      (fun t -> List.map (fun s -> s.Reqtrace.rs_stage) t.Reqtrace.tr_spans)
      trees
  in
  List.iter
    (fun stage ->
      check_bool (stage ^ " stage present") true (List.mem stage all_stages))
    [ "request"; "batch.wait"; "ordering"; "exec.queue"; "execute" ];
  List.iter
    (fun tree ->
      match Reqtrace.nest tree.Reqtrace.tr_spans with
      | None -> Alcotest.fail "traced request has no tree"
      | Some node ->
          check_int "attribution sums to latency" (Reqtrace.duration tree)
            (sum_segs (Reqtrace.critical_segments node)))
    trees

(* {1 Perfetto roundtrip} *)

let test_perfetto_roundtrip () =
  let col = Reqtrace.create () in
  let mk () =
    let trace, root = Reqtrace.start_trace col ~attrs:[ ("client", "c") ] ~now:5 () in
    let o =
      Reqtrace.add_span col ~trace ~parent:root ~stage:"ordering"
        ~attrs:[ ("part", "0") ] ~start:5 40
    in
    ignore (Reqtrace.add_span col ~trace ~parent:o ~stage:"execute" ~start:12 30);
    Reqtrace.finish col ~trace ~now:60
  in
  mk ();
  mk ();
  let trees = Reqtrace.export_trees col in
  let doc = Trace_export.perfetto ~requests:trees [] in
  let spans = Trace_export.request_spans_of_json doc in
  check_int "all spans recovered" 6 (List.length spans);
  let rebuilt = Trace_export.request_spans_of_json doc |> Reqtrace.trees_of_spans in
  check_int "both trees recovered" 2 (List.length rebuilt);
  let norm trees =
    List.map
      (fun t ->
        ( t.Reqtrace.tr_trace,
          List.sort compare
            (List.map
               (fun s ->
                 ( s.Reqtrace.rs_id,
                   s.Reqtrace.rs_parent,
                   s.Reqtrace.rs_stage,
                   s.Reqtrace.rs_start,
                   s.Reqtrace.rs_end ))
               t.Reqtrace.tr_spans) ))
      trees
  in
  Alcotest.(
    check
      (list (pair int (list (triple (pair int int) (pair string int) int)))))
    "lossless roundtrip"
    (List.map
       (fun (t, ss) ->
         (t, List.map (fun (a, b, c, d, e) -> ((a, b), (c, d), e)) ss))
       (List.sort compare (norm trees)))
    (List.map
       (fun (t, ss) ->
         (t, List.map (fun (a, b, c, d, e) -> ((a, b), (c, d), e)) ss))
       (List.sort compare (norm rebuilt)));
  (* Attributes survive: the exporter stores them as string args. *)
  let root_back =
    List.find
      (fun s -> s.Reqtrace.rs_parent = 0)
      (Trace_export.request_spans_of_json doc)
  in
  Alcotest.(check (option string))
    "root attrs preserved" (Some "c")
    (List.assoc_opt "client" root_back.Reqtrace.rs_attrs)

let () =
  Alcotest.run "reqtrace"
    [
      ( "critical-path",
        [
          Alcotest.test_case "fan-out join" `Quick test_fanout_join;
          Alcotest.test_case "overlapping siblings re-nest" `Quick
            test_overlapping_siblings_nested;
          Alcotest.test_case "truncated / dropped children" `Quick
            test_truncated_children;
          QCheck_alcotest.to_alcotest prop_attribution_exact;
        ] );
      ( "collector",
        [
          Alcotest.test_case "ring, exemplars, metrics" `Quick
            test_collector_ring_and_metrics;
          Alcotest.test_case "span cap and discard" `Quick
            test_collector_span_cap_and_discard;
        ] );
      ( "system",
        [
          Alcotest.test_case "traced KV requests" `Quick test_system_end_to_end;
          Alcotest.test_case "pipelined stages traced" `Quick
            test_system_pipeline_stages;
        ] );
      ( "export",
        [ Alcotest.test_case "perfetto roundtrip" `Quick test_perfetto_roundtrip ] );
    ]
