(* Tests for the chaos harness itself — schedule generation, JSON
   (de)serialization, the driver's failure envelope, the shrinker — and
   the regression corpus: every test/corpus/*.json is a schedule that
   once broke the system, pinned so it replays forever. *)

open Heron_chaos
module Metrics = Heron_obs.Metrics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let tc name f = Alcotest.test_case name `Quick f

let qc t = QCheck_alcotest.to_alcotest t

(* {1 Schedules} *)

(* Generated schedules are well-formed by construction: that is what
   lets the driver treat any failure under one as the system's fault. *)
let generator_valid_prop =
  QCheck.Test.make ~name:"generated schedules validate" ~count:300
    QCheck.(int_bound 100_000)
    (fun seed ->
      let sc = Schedule.generate ~seed in
      match Schedule.validate sc with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "seed %d: %s" seed msg)

let test_generate_deterministic () =
  check_bool "same seed, same schedule" true
    (Schedule.generate ~seed:42 = Schedule.generate ~seed:42);
  check_bool "different seeds differ somewhere" true
    (List.exists
       (fun s -> Schedule.generate ~seed:s <> Schedule.generate ~seed:(s + 1))
       [ 0; 1; 2; 3; 4 ])

let test_generate_envelope () =
  (* Structural liveness envelope: follower indices only, at most one
     replica down at any instant. *)
  for seed = 0 to 199 do
    let sc = Schedule.generate ~seed in
    let down = ref None in
    List.iter
      (fun e ->
        match e with
        | Schedule.Crash { part; idx; _ } ->
            if idx = 0 then Alcotest.failf "seed %d crashes a leader" seed;
            (match !down with
            | Some _ -> Alcotest.failf "seed %d overlaps two crashes" seed
            | None -> down := Some (part, idx))
        | Schedule.Restart { part; idx; _ } ->
            if !down <> Some (part, idx) then
              Alcotest.failf "seed %d restarts a live replica" seed;
            down := None
        | _ -> ())
      sc.Schedule.sc_events
  done

let json_roundtrip_prop =
  QCheck.Test.make ~name:"of_json (to_json s) = Ok s" ~count:300
    QCheck.(int_bound 100_000)
    (fun seed ->
      let sc = Schedule.generate ~seed in
      match Schedule.of_json (Schedule.to_json sc) with
      | Ok sc' -> sc' = Schedule.normalize sc
      | Error msg -> QCheck.Test.fail_reportf "seed %d: %s" seed msg)

(* The reconfig generator keeps the same liveness envelope and always
   produces migrations timed into the crash/restart windows. *)
let reconfig_generator_prop =
  QCheck.Test.make ~name:"reconfig schedules validate and roundtrip" ~count:300
    QCheck.(int_bound 100_000)
    (fun seed ->
      let sc = Schedule.generate_reconfig ~seed in
      match Schedule.validate sc with
      | Error msg -> QCheck.Test.fail_reportf "seed %d: %s" seed msg
      | Ok () -> (
          match Schedule.of_json (Schedule.to_json sc) with
          | Ok sc' -> sc' = Schedule.normalize sc
          | Error msg -> QCheck.Test.fail_reportf "seed %d: %s" seed msg))

let test_reconfig_generator_overlap () =
  for seed = 0 to 199 do
    let sc = Schedule.generate_reconfig ~seed in
    let migrations =
      List.filter
        (function Schedule.Migrate _ -> true | _ -> false)
        sc.Schedule.sc_events
    in
    if migrations = [] then Alcotest.failf "seed %d has no migrations" seed;
    (* Every migration sits inside some crash..restart window (with the
       generator's slop on both sides). *)
    let windows =
      let rec pair acc = function
        | Schedule.Crash { at = c; _ } :: rest -> (
            match
              List.find_opt (function Schedule.Restart _ -> true | _ -> false) rest
            with
            | Some (Schedule.Restart { at = r; _ }) -> pair ((c, r) :: acc) rest
            | _ -> acc)
        | _ :: rest -> pair acc rest
        | [] -> acc
      in
      pair [] sc.Schedule.sc_events
    in
    List.iter
      (function
        | Schedule.Migrate { at; _ } ->
            if
              not
                (List.exists
                   (fun (c, r) -> at >= c - 200_000 && at <= r + 300_000)
                   windows)
            then Alcotest.failf "seed %d: migration outside every crash window" seed
        | _ -> ())
      sc.Schedule.sc_events
  done

(* The elastic generator (DESIGN.md §15) carries the topology in the
   schedule itself ([sc_shards]) and times shard splits/merges into
   the crash/restart windows, so crashes land mid-split. *)
let elastic_generator_prop =
  QCheck.Test.make ~name:"elastic schedules validate and roundtrip" ~count:300
    QCheck.(int_bound 100_000)
    (fun seed ->
      let sc = Schedule.generate_elastic ~seed in
      match Schedule.validate sc with
      | Error msg -> QCheck.Test.fail_reportf "seed %d: %s" seed msg
      | Ok () -> (
          match Schedule.of_json (Schedule.to_json sc) with
          | Ok sc' -> sc' = Schedule.normalize sc
          | Error msg -> QCheck.Test.fail_reportf "seed %d: %s" seed msg))

let test_elastic_generator_shape () =
  for seed = 0 to 199 do
    let sc = Schedule.generate_elastic ~seed in
    if sc.Schedule.sc_shards <= 0 then
      Alcotest.failf "seed %d runs with the topology off" seed;
    let shard_ops =
      List.filter
        (function Schedule.Split _ | Schedule.Merge _ -> true | _ -> false)
        sc.Schedule.sc_events
    in
    if shard_ops = [] then Alcotest.failf "seed %d has no shard operations" seed
  done;
  (* Splits and merges do land inside crash windows somewhere in the
     family — the whole point of the generator. *)
  let overlapping = ref 0 in
  for seed = 0 to 199 do
    let sc = Schedule.generate_elastic ~seed in
    let down = ref [] in
    List.iter
      (fun e ->
        match e with
        | Schedule.Crash { at = c; _ } -> down := (c, max_int) :: !down
        | Schedule.Restart { at = r; _ } -> (
            match !down with
            | (c, _) :: rest -> down := (c, r) :: rest
            | [] -> ())
        | _ -> ())
      sc.Schedule.sc_events;
    if
      List.exists
        (function
          | Schedule.Split { at; _ } | Schedule.Merge { at; _ } ->
              List.exists (fun (c, r) -> at >= c && at <= r) !down
          | _ -> false)
        sc.Schedule.sc_events
    then incr overlapping
  done;
  if !overlapping < 50 then
    Alcotest.failf "only %d of 200 seeds crash mid-reshard" !overlapping

(* Pre-topology pins (no "shards" field) decode to sc_shards = 0: the
   topology stays off and old corpus files replay unchanged. *)
let test_elastic_field_back_compat () =
  let sc = Schedule.generate ~seed:3 in
  check_int "classic generator leaves topology off" 0 sc.Schedule.sc_shards;
  match Schedule.of_json (Schedule.to_json sc) with
  | Ok sc' -> check_int "roundtrips as off" 0 sc'.Schedule.sc_shards
  | Error msg -> Alcotest.fail msg

(* The longhaul generator (DESIGN.md §13) trades event density for
   duration: minutes of virtual time, paced traffic, repeated
   crash/rejoin cycles with migrations racing the down windows. *)
let longhaul_generator_prop =
  QCheck.Test.make ~name:"longhaul schedules validate and roundtrip" ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      let sc = Schedule.generate_longhaul ~seed in
      match Schedule.validate sc with
      | Error msg -> QCheck.Test.fail_reportf "seed %d: %s" seed msg
      | Ok () -> (
          match Schedule.of_json (Schedule.to_json sc) with
          | Ok sc' -> sc' = Schedule.normalize sc
          | Error msg -> QCheck.Test.fail_reportf "seed %d: %s" seed msg))

let test_longhaul_generator_shape () =
  for seed = 0 to 49 do
    let sc = Schedule.generate_longhaul ~seed in
    let crashes =
      List.length
        (List.filter (function Schedule.Crash _ -> true | _ -> false)
           sc.Schedule.sc_events)
    in
    if crashes < 8 then Alcotest.failf "seed %d: only %d rejoin cycles" seed crashes;
    if
      not
        (List.exists
           (function Schedule.Migrate _ -> true | _ -> false)
           sc.Schedule.sc_events)
    then Alcotest.failf "seed %d has no migrations" seed;
    if sc.Schedule.sc_horizon_ns < 60_000_000_000 then
      Alcotest.failf "seed %d horizon under a virtual minute" seed;
    if sc.Schedule.sc_think_ns <= 0 then
      Alcotest.failf "seed %d traffic not paced" seed;
    (* Every event fits the horizon — otherwise it injects into a
       finished run. *)
    List.iter
      (fun e ->
        if Schedule.event_end e > sc.Schedule.sc_horizon_ns then
          Alcotest.failf "seed %d: event past the horizon" seed)
      sc.Schedule.sc_events
  done

let test_old_pins_parse_without_horizon () =
  (* Pins written before sc_horizon_ns/sc_think_ns existed must keep
     loading with the classic defaults. *)
  let sc = Schedule.generate ~seed:3 in
  match Schedule.to_json sc with
  | Heron_obs.Json.Obj fields ->
      let stripped =
        Heron_obs.Json.Obj
          (List.filter
             (fun (k, _) -> k <> "horizon_ns" && k <> "think_ns")
             fields)
      in
      (match Schedule.of_json stripped with
      | Ok sc' ->
          check_int "default horizon" Schedule.default_horizon_ns
            sc'.Schedule.sc_horizon_ns;
          check_int "default think" 0 sc'.Schedule.sc_think_ns
      | Error msg -> Alcotest.fail msg)
  | _ -> Alcotest.fail "to_json did not produce an object"

let test_file_roundtrip () =
  let sc = Schedule.generate ~seed:7 in
  let file = Filename.temp_file "chaos_sched" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Schedule.save sc ~file;
      match Schedule.load ~file with
      | Ok sc' -> check_bool "load inverts save" true (sc' = sc)
      | Error msg -> Alcotest.fail msg)

let test_json_rejects_garbage () =
  let reject j =
    match Schedule.of_json j with
    | Ok _ -> Alcotest.fail "bad schedule accepted"
    | Error _ -> ()
  in
  reject (Heron_obs.Json.Obj [ ("version", Heron_obs.Json.Int 99) ]);
  reject (Heron_obs.Json.Obj [ ("version", Heron_obs.Json.Int 1) ]);
  (match Schedule.load ~file:"/nonexistent/chaos.json" with
  | Ok _ -> Alcotest.fail "loaded a missing file"
  | Error _ -> ());
  (* An unknown event kind must not be silently dropped. *)
  let sc = Schedule.generate ~seed:1 in
  match Schedule.to_json sc with
  | Heron_obs.Json.Obj fields ->
      let fields =
        List.map
          (function
            | "events", Heron_obs.Json.List _ ->
                ( "events",
                  Heron_obs.Json.List
                    [ Heron_obs.Json.Obj
                        [ ("kind", Heron_obs.Json.String "meteor_strike") ] ] )
            | f -> f)
          fields
      in
      reject (Heron_obs.Json.Obj fields)
  | _ -> Alcotest.fail "to_json did not produce an object"

let test_validate_catches () =
  let sc = Schedule.generate ~seed:0 in
  let bad events = { sc with Schedule.sc_events = events } in
  let refuses sc' =
    match Schedule.validate sc' with
    | Ok () -> Alcotest.fail "invalid schedule validated"
    | Error _ -> ()
  in
  refuses (bad [ Schedule.Crash { part = 0; idx = 0; at = 10 } ]);
  refuses (bad [ Schedule.Crash { part = 9; idx = 1; at = 10 } ]);
  refuses
    (bad
       [ Schedule.Crash { part = 0; idx = 1; at = 10 };
         Schedule.Crash { part = 0; idx = 1; at = 20 } ]);
  refuses (bad [ Schedule.Restart { part = 0; idx = 1; at = 10 } ]);
  refuses
    (bad
       [ Schedule.Delay_link
           { src = (0, 1); dst = (0, 1); extra_ns = 1; at = 0; span = 1 } ]);
  (* Unsorted events. *)
  refuses
    (bad
       [ Schedule.Pause_replica { part = 0; idx = 1; extra_ns = 1; at = 50; span = 1 };
         Schedule.Pause_replica { part = 0; idx = 2; extra_ns = 1; at = 10; span = 1 } ])

(* {1 Driver} *)

let test_driver_clean_seeds () =
  (* A handful of generated schedules complete and pass all checks; the
     full sweep lives in scripts/check.sh and CI. *)
  List.iter
    (fun seed ->
      let sc = Schedule.generate ~seed in
      match Driver.run sc with
      | Driver.Completed { completed } ->
          check_int (Printf.sprintf "seed %d op count" seed)
            (sc.Schedule.sc_clients * sc.Schedule.sc_ops)
            completed
      | Driver.Failed f ->
          Alcotest.failf "seed %d: %s" seed
            (Format.asprintf "%a" Driver.pp_failure f))
    [ 0; 1; 2 ]

let test_driver_elastic_seeds () =
  (* A handful of elastic schedules — splits and merges racing crashes
     and laggers — complete and linearize; the 100-seed sweep lives in
     scripts/check.sh and CI. *)
  List.iter
    (fun seed ->
      let sc = Schedule.generate_elastic ~seed in
      match Driver.run sc with
      | Driver.Completed { completed } ->
          check_int (Printf.sprintf "elastic seed %d op count" seed)
            (sc.Schedule.sc_clients * sc.Schedule.sc_ops)
            completed
      | Driver.Failed f ->
          Alcotest.failf "elastic seed %d: %s" seed
            (Format.asprintf "%a" Driver.pp_failure f))
    [ 0; 1; 7 ]

let test_driver_deterministic () =
  let sc = Schedule.generate ~seed:5 in
  check_bool "same schedule, same outcome" true (Driver.run sc = Driver.run sc)

let test_driver_metrics () =
  let runs = Metrics.counter Metrics.default "chaos.schedules_run" in
  let before = Metrics.counter_value runs in
  ignore (Driver.run (Schedule.generate ~seed:11));
  check_int "schedules_run incremented" (before + 1) (Metrics.counter_value runs)

let test_driver_skips_unsafe_injections () =
  (* Events outside the envelope — crashing the multicast leader,
     crashing into a dead partition-mate, restarting a live replica —
     are skipped, not performed: any subset of a failing schedule (a
     shrinking candidate) must still be a fair test. *)
  let sc = Schedule.generate ~seed:3 in
  let sc =
    Schedule.normalize
      { sc with
        Schedule.sc_events =
          [ Schedule.Crash { part = 0; idx = 0; at = 200_000 };
            Schedule.Restart { part = 0; idx = 1; at = 300_000 };
            Schedule.Crash { part = 0; idx = 1; at = 400_000 };
            Schedule.Crash { part = 0; idx = 2; at = 600_000 };
            Schedule.Restart { part = 0; idx = 1; at = 900_000 } ] }
  in
  let skipped = Metrics.counter Metrics.default "chaos.injections_skipped" in
  let before = Metrics.counter_value skipped in
  (match Driver.run sc with
  | Driver.Completed _ -> ()
  | Driver.Failed f ->
      Alcotest.failf "envelope run failed: %s"
        (Format.asprintf "%a" Driver.pp_failure f));
  check_bool "injections were skipped" true (Metrics.counter_value skipped > before)

(* {2 Durability refinement (DESIGN.md §13)}

   Checkpointing + truncation must refine to a no-op: the same schedule
   with durability on and off completes identically and linearizes
   identically. For increment-only workloads the final state is
   order-independent, so it must additionally be byte-identical —
   catching exactly the durability bugs that matter (an update lost
   under truncation, or double-applied after a checkpoint bootstrap). *)

let state_digest sys =
  let buf = Buffer.create 256 in
  Array.iter
    (fun row ->
      let st = Heron_core.Replica.store row.(0) in
      List.iter
        (fun oid ->
          Buffer.add_string buf
            (Bytes.to_string (fst (Heron_core.Versioned_store.get st oid))))
        (Heron_core.Versioned_store.registered_oids st))
    (Heron_core.System.replicas sys);
  Buffer.contents buf

let outcome_kind = function
  | Driver.Completed _ -> "completed"
  | Driver.Failed f -> Driver.failure_kind f

let durability_refinement_state_prop =
  QCheck.Test.make
    ~name:"durability on/off: byte-identical state on incr-only workloads"
    ~count:12
    QCheck.(int_bound 10_000)
    (fun seed ->
      let sc =
        { (Schedule.generate ~seed) with Schedule.sc_workload = Schedule.Incr_all }
      in
      let d_on = ref None and d_off = ref None in
      let o_on =
        Driver.run ~durability:true ~inspect:(fun s -> d_on := Some (state_digest s)) sc
      in
      let o_off = Driver.run ~inspect:(fun s -> d_off := Some (state_digest s)) sc in
      match (o_on, o_off) with
      | Driver.Completed { completed = a }, Driver.Completed { completed = b } ->
          if a <> b then QCheck.Test.fail_reportf "seed %d: op counts differ" seed
          else if !d_on = None || !d_on <> !d_off then
            QCheck.Test.fail_reportf "seed %d: final states differ" seed
          else true
      | _ ->
          QCheck.Test.fail_reportf "seed %d: %s (on) vs %s (off)" seed
            (outcome_kind o_on) (outcome_kind o_off))

let durability_refinement_verdict_prop =
  (* Mixed workloads: timing (and thus individual read results) may
     legitimately differ — checkpoint traffic shares QPs with the
     request path — but the verdict must not: durability never turns a
     passing schedule into a stall, divergence, invariant breach or
     linearizability violation. *)
  QCheck.Test.make ~name:"durability on/off: same verdict on generated schedules"
    ~count:12
    QCheck.(int_bound 10_000)
    (fun seed ->
      let sc = Schedule.generate ~seed in
      let k_on = outcome_kind (Driver.run ~durability:true sc) in
      let k_off = outcome_kind (Driver.run sc) in
      if k_on <> k_off then
        QCheck.Test.fail_reportf "seed %d: %s (on) vs %s (off)" seed k_on k_off
      else true)

(* {2 Fast-read refinement (DESIGN.md §14)}

   Lease-based local reads must refine to the ordered path: the same
   schedule with fast reads on and off reaches the same verdict — in
   particular, a schedule that linearizes through the multicast still
   linearizes when its reads are served from lease-holding replicas'
   local stores under crashes, restarts and migrations. Each run's
   history is checked independently, so the "on" leg re-proves
   linearizability of the fast path itself, not just agreement with the
   "off" leg. *)

let fast_reads_refinement_verdict_prop =
  QCheck.Test.make ~name:"fast reads on/off: same verdict on generated schedules"
    ~count:12
    QCheck.(int_bound 10_000)
    (fun seed ->
      let sc = Schedule.generate ~seed in
      let k_on = outcome_kind (Driver.run ~fast_reads:true sc) in
      let k_off = outcome_kind (Driver.run sc) in
      if k_on <> k_off then
        QCheck.Test.fail_reportf "seed %d: %s (on) vs %s (off)" seed k_on k_off
      else true)

let test_fast_reads_serve_locally () =
  (* The refinement property would pass vacuously if the fast path
     never fired; pin that it does. Mixed workloads are read-heavy
     enough that a lease-holding replica serves at least one Get
     locally across a few schedules. *)
  let served = Metrics.counter Metrics.default "reads.local_served" in
  let before = Metrics.counter_value served in
  List.iter
    (fun seed ->
      match Driver.run ~fast_reads:true (Schedule.generate ~seed) with
      | Driver.Completed _ -> ()
      | Driver.Failed f ->
          Alcotest.failf "fast-read seed %d: %s" seed
            (Format.asprintf "%a" Driver.pp_failure f))
    [ 0; 1; 2 ];
  check_bool "some reads served from leases" true
    (Metrics.counter_value served > before)

(* {2 Longhaul driver} *)

let test_longhaul_seeds_pass () =
  (* One full longhaul run: minutes of virtual time, repeated
     crash/rejoin/migrate cycles, flat-memory and O(delta)-rejoin
     verdicts on top of linearizability. The wide sweep lives in
     scripts/check.sh and CI. *)
  List.iter
    (fun seed ->
      let sc = Schedule.generate_longhaul ~seed in
      match Driver.run ~durability:true ~longhaul:true sc with
      | Driver.Completed { completed } ->
          check_int
            (Printf.sprintf "longhaul seed %d op count" seed)
            (sc.Schedule.sc_clients * sc.Schedule.sc_ops)
            completed
      | Driver.Failed f ->
          Alcotest.failf "longhaul seed %d: %s" seed
            (Format.asprintf "%a" Driver.pp_failure f))
    [ 0; 1 ]

let test_longhaul_flags_nondurable_baseline () =
  (* The whole point of the longhaul verdict: the same schedule without
     durability retains O(history) logs and must fail [Unbounded] —
     proving the bounds actually bite and BENCH_longhaul's baseline
     comparison is honest. *)
  let sc = Schedule.generate_longhaul ~seed:0 in
  match Driver.run ~durability:false ~longhaul:true sc with
  | Driver.Failed (Driver.Unbounded _) -> ()
  | o ->
      Alcotest.failf "non-durable baseline not flagged: %s"
        (Format.asprintf "%a" Driver.pp_outcome o)

let test_failure_kinds_stable () =
  (* The shrinker keys on these strings; changing one silently orphans
     pinned corpus entries. *)
  check_string "stalled" "stalled"
    (Driver.failure_kind (Driver.Stalled { completed = 0; expected = 1 }));
  check_string "diverged" "diverged"
    (Driver.failure_kind (Driver.Diverged { detail = "" }));
  check_string "invariant" "invariant"
    (Driver.failure_kind (Driver.Invariant { part = 0; idx = 0; detail = "" }));
  check_string "not_linearizable" "not_linearizable"
    (Driver.failure_kind (Driver.Not_linearizable { detail = "" }));
  check_string "unbounded" "unbounded"
    (Driver.failure_kind (Driver.Unbounded { detail = "" }));
  check_string "crashed" "crashed"
    (Driver.failure_kind (Driver.Crashed { detail = "" }))

(* {1 Shrinker} *)

let test_shrink_passing_unchanged () =
  (* minimize assumes its input fails; handed a passing schedule it
     must return it unchanged rather than "minimize" to nonsense. *)
  let sc = Schedule.generate ~seed:2 in
  let sc' = Shrink.minimize sc ~kind:"diverged" in
  check_bool "passing schedule unchanged" true (sc' = sc)

let test_shrink_steps_counted () =
  let steps = Metrics.counter Metrics.default "chaos.shrink_steps" in
  let before = Metrics.counter_value steps in
  ignore (Shrink.minimize (Schedule.generate ~seed:2) ~kind:"stalled");
  check_bool "shrink steps counted" true (Metrics.counter_value steps > before)

(* {1 Regression corpus}

   Every schedule pinned under test/corpus/ once produced a failure
   (before its fix); each must load, validate, and now replay to
   Completed. A regression reappearing shows up here as a named,
   deterministic reproduction — see DESIGN.md for what each pin was. *)

let corpus_files () =
  (* dune runtest runs tests in test/; dune exec runs from the root. *)
  let dir =
    if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"
  in
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (Filename.concat dir)

let test_corpus_nonempty () =
  check_bool "corpus has pinned schedules" true (List.length (corpus_files ()) >= 5)

let test_corpus_replays () =
  List.iter
    (fun file ->
      match Schedule.load ~file with
      | Error msg -> Alcotest.failf "%s: %s" file msg
      | Ok sc -> (
          (match Schedule.validate sc with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s: invalid: %s" file msg);
          (* Pins replay under the configuration that judged them:
             longhaul_* with durability on and the flat-memory verdict
             armed, *fastreads_* with lease-based local reads on. *)
          let base = Filename.basename file in
          let has_prefix p =
            String.length base >= String.length p
            && String.sub base 0 (String.length p) = p
          in
          let contains needle =
            let n = String.length needle and l = String.length base in
            let rec go i = i + n <= l && (String.sub base i n = needle || go (i + 1)) in
            go 0
          in
          let longhaul = has_prefix "longhaul_" in
          let fast_reads = contains "fastreads_" in
          match Driver.run ~durability:longhaul ~longhaul ~fast_reads sc with
          | Driver.Completed _ -> ()
          | Driver.Failed f ->
              Alcotest.failf "%s REGRESSED: %s" file
                (Format.asprintf "%a" Driver.pp_failure f)))
    (corpus_files ())

let suite =
  [
    ( "chaos.schedule",
      [
        qc generator_valid_prop;
        tc "generation is deterministic" test_generate_deterministic;
        tc "generated envelope: sequential follower faults" test_generate_envelope;
        qc json_roundtrip_prop;
        qc reconfig_generator_prop;
        tc "reconfig migrations overlap crash windows" test_reconfig_generator_overlap;
        qc elastic_generator_prop;
        tc "elastic generator shape" test_elastic_generator_shape;
        tc "pre-topology pins decode with topology off"
          test_elastic_field_back_compat;
        qc longhaul_generator_prop;
        tc "longhaul generator shape" test_longhaul_generator_shape;
        tc "pre-durability pins parse (no horizon field)"
          test_old_pins_parse_without_horizon;
        tc "save/load roundtrip" test_file_roundtrip;
        tc "malformed JSON rejected" test_json_rejects_garbage;
        tc "validate catches bad schedules" test_validate_catches;
      ] );
    ( "chaos.driver",
      [
        tc "clean seeds complete" test_driver_clean_seeds;
        tc "elastic seeds complete" test_driver_elastic_seeds;
        tc "runs are deterministic" test_driver_deterministic;
        tc "schedules_run metric" test_driver_metrics;
        tc "unsafe injections skipped" test_driver_skips_unsafe_injections;
        tc "failure kinds are stable" test_failure_kinds_stable;
      ] );
    ( "chaos.durability",
      [
        qc durability_refinement_state_prop;
        qc durability_refinement_verdict_prop;
        Alcotest.test_case "longhaul seeds pass" `Slow test_longhaul_seeds_pass;
        tc "non-durable baseline flagged unbounded"
          test_longhaul_flags_nondurable_baseline;
      ] );
    ( "chaos.fast_reads",
      [
        qc fast_reads_refinement_verdict_prop;
        tc "fast path actually serves reads" test_fast_reads_serve_locally;
      ] );
    ( "chaos.shrink",
      [
        tc "passing schedule unchanged" test_shrink_passing_unchanged;
        tc "shrink steps counted" test_shrink_steps_counted;
      ] );
    ( "chaos.corpus",
      [ tc "corpus present" test_corpus_nonempty; tc "replay corpus" test_corpus_replays ] );
  ]

let () = Alcotest.run "heron_chaos" suite
