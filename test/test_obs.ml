(* Tests for heron_obs: metric registry, JSON, Perfetto export — plus
   the Trace ring buffer they render. *)

open Heron_obs
open Heron_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* {1 Histogram buckets} *)

let test_bucket_small_exact () =
  (* Values 0..15 are their own bucket, exactly. *)
  for v = 0 to 15 do
    check_int "index" v (Metrics.bucket_of v);
    check_int "upper" v (Metrics.bucket_upper v)
  done

let test_bucket_boundaries () =
  (* First bucketed power of two: 16 and 17 are still exact... *)
  check_int "16" 16 (Metrics.bucket_of 16);
  check_int "upper16" 16 (Metrics.bucket_upper 16);
  check_int "17" 17 (Metrics.bucket_of 17);
  (* ...32 starts the two-wide buckets: 32 and 33 share a bucket. *)
  check_int "32/33 same" (Metrics.bucket_of 32) (Metrics.bucket_of 33);
  check_bool "33/34 differ" false (Metrics.bucket_of 33 = Metrics.bucket_of 34);
  check_int "upper of 32" 33 (Metrics.bucket_upper (Metrics.bucket_of 32))

let test_bucket_roundtrip_and_error () =
  (* bucket_upper (bucket_of v) >= v with relative error <= 1/16, and
     bucket_of is monotone. *)
  let vs =
    List.concat_map
      (fun k ->
        let b = 1 lsl k in
        [ b - 1; b; b + 1; b + (b / 3); (2 * b) - 1 ])
      [ 4; 5; 8; 13; 20; 30; 40; 50; 61 ]
  in
  List.iter
    (fun v ->
      let u = Metrics.bucket_upper (Metrics.bucket_of v) in
      check_bool (Printf.sprintf "upper>=v for %d" v) true (u >= v);
      check_bool
        (Printf.sprintf "error<=1/16 for %d" v)
        true
        (float_of_int (u - v) <= float_of_int v /. 16.))
    vs;
  let rec mono = function
    | a :: (b :: _ as rest) ->
        check_bool "monotone" true (Metrics.bucket_of a <= Metrics.bucket_of b);
        mono rest
    | _ -> ()
  in
  mono (List.sort compare vs);
  check_int "negative clamps" 0 (Metrics.bucket_of (-5))

(* {1 Percentile agreement with Sample_set} *)

let test_percentile_agreement () =
  (* On identical samples, the histogram percentile lands in the same
     bucket as the exact Sample_set percentile: the histogram only
     blurs within a bucket, never across ranks. *)
  let rng = Random.State.make [| 0xbeef |] in
  for case = 1 to 20 do
    let n = 1 + Random.State.int rng 500 in
    let samples =
      List.init n (fun _ ->
          match Random.State.int rng 3 with
          | 0 -> Random.State.int rng 16
          | 1 -> Random.State.int rng 4096
          | _ -> Random.State.int rng 100_000_000)
    in
    let reg = Metrics.create () in
    let h = Metrics.histogram reg "t.h" in
    let s = Heron_stats.Sample_set.create () in
    List.iter
      (fun v ->
        Metrics.observe h v;
        Heron_stats.Sample_set.add s v)
      samples;
    List.iter
      (fun p ->
        let exact = Heron_stats.Sample_set.percentile s p in
        let approx = Metrics.hist_percentile h p in
        check_int
          (Printf.sprintf "case %d p%.0f (n=%d)" case p n)
          (Metrics.bucket_of exact) (Metrics.bucket_of approx))
      [ 0.; 50.; 90.; 99.; 100. ]
  done

let test_histogram_stats () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "t.lat" in
  check_int "empty count" 0 (Metrics.hist_count h);
  check_int "empty percentile" 0 (Metrics.hist_percentile h 99.);
  List.iter (Metrics.observe h) [ 5; 10; 15 ];
  check_int "count" 3 (Metrics.hist_count h);
  check_int "sum" 30 (Metrics.hist_sum h);
  check_int "max" 15 (Metrics.hist_max h);
  check_int "p50 exact below 16" 10 (Metrics.hist_percentile h 50.);
  Metrics.observe h (-3);
  check_int "negative clamps to 0" 0 (Metrics.hist_percentile h 1.)

(* {1 Counters, labels, registry identity} *)

let test_label_merging () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg ~labels:[ ("src", "n0"); ("dst", "n1") ] "rdma.x" in
  let b = Metrics.counter reg ~labels:[ ("dst", "n1"); ("src", "n0") ] "rdma.x" in
  Metrics.incr a;
  Metrics.add b 2;
  (* Same identity regardless of label order: both handles feed one
     series. *)
  check_int "merged" 3 (Metrics.counter_value a);
  check_int "merged b" 3 (Metrics.counter_value b);
  let c = Metrics.counter reg ~labels:[ ("src", "n0"); ("dst", "n2") ] "rdma.x" in
  Metrics.incr c;
  check_int "distinct labels distinct" 1 (Metrics.counter_value c);
  check_int "a unchanged" 3 (Metrics.counter_value a)

let test_kind_mismatch () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "m");
  check_bool "kind mismatch raises" true
    (try
       ignore (Metrics.histogram reg "m");
       false
     with Invalid_argument _ -> true)

let test_snapshot_diff () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "c" in
  let g = Metrics.gauge reg "g" in
  let h = Metrics.histogram reg "h" in
  Metrics.add c 5;
  Metrics.set_gauge g 7;
  Metrics.observe h 100;
  let before = Metrics.snapshot reg in
  Metrics.add c 3;
  Metrics.set_gauge g 9;
  Metrics.observe h 200;
  Metrics.observe h 300;
  let after = Metrics.snapshot reg in
  let d = Metrics.diff ~before ~after in
  (match Metrics.find d "c" with
  | Some (Metrics.Counter_v v) -> check_int "counter delta" 3 v
  | _ -> Alcotest.fail "counter missing from diff");
  (match Metrics.find d "g" with
  | Some (Metrics.Gauge_v v) -> check_int "gauge is after-value" 9 v
  | _ -> Alcotest.fail "gauge missing from diff");
  match Metrics.find d "h" with
  | Some (Metrics.Histogram_v hs) ->
      check_int "hist count delta" 2 hs.Metrics.hs_count;
      check_int "hist sum delta" 500 hs.Metrics.hs_sum
  | _ -> Alcotest.fail "histogram missing from diff"

(* {1 JSON} *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Null; Json.Bool true; Json.Float 1.5 ]);
        ("s", Json.String "he said \"hi\"\n\t\\");
      ]
  in
  let s = Json.to_string doc in
  check_bool "roundtrip" true (Json.parse_exn s = doc);
  (* Escapes and unicode. *)
  check_bool "unicode escape" true
    (Json.parse_exn "\"\\u00e9A\"" = Json.String "\xc3\xa9A");
  (match Json.parse "{\"a\": 1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Json.parse "[1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated input accepted"

let test_metrics_json_export () =
  let reg = Metrics.create () in
  Metrics.add (Metrics.counter reg ~labels:[ ("k", "v") ] "c") 4;
  Metrics.observe (Metrics.histogram reg "h_ns") 1000;
  let doc = Metrics.to_json (Metrics.snapshot reg) in
  let reparsed = Json.parse_exn (Json.to_string doc) in
  let ms =
    match Json.member "metrics" reparsed with
    | Some l -> Json.to_list_exn l
    | None -> Alcotest.fail "no metrics field"
  in
  check_int "two series" 2 (List.length ms);
  let names =
    List.filter_map
      (fun m ->
        match Json.member "name" m with Some (Json.String s) -> Some s | _ -> None)
      ms
  in
  check_bool "counter present" true (List.mem "c" names);
  check_bool "histogram present" true (List.mem "h_ns" names)

(* {1 Trace ring buffer} *)

let test_trace_wraparound () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.record tr ~name:(Printf.sprintf "s%d" i) ~start:(i * 10) ((i * 10) + 5)
  done;
  let names = List.map (fun s -> s.Trace.sp_name) (Trace.spans tr) in
  Alcotest.(check (list string)) "last 4 kept, oldest first"
    [ "s3"; "s4"; "s5"; "s6" ] names;
  check_int "dropped" 2 (Trace.dropped tr);
  let tl = Trace.render_timeline tr in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "timeline reports drop" true (contains tl "2 earlier spans dropped")

(* {1 Perfetto export} *)

let golden_traces () =
  let t1 = Trace.create () in
  Trace.record t1 ~name:"ordering" ~start:0 2_000;
  Trace.record t1 ~name:"execute" ~attrs:[ ("tmp", "1.1") ] ~start:2_000 2_500;
  let t2 = Trace.create () in
  Trace.record t2 ~name:"ordering" ~start:500 2_200;
  [ ("replica p0/r0", t1); ("replica p0/r1", t2) ]

let golden =
  String.concat ""
    [
      {|{"traceEvents":[|};
      {|{"name":"process_name","ph":"M","pid":1,"args":{"name":"replica p0/r0","dropped_spans":0}},|};
      {|{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"ordering"}},|};
      {|{"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"execute"}},|};
      {|{"name":"ordering","ph":"X","pid":1,"tid":1,"ts":0.0,"dur":2.0,"args":{}},|};
      {|{"name":"execute","ph":"X","pid":1,"tid":2,"ts":2.0,"dur":0.5,"args":{"tmp":"1.1"}},|};
      {|{"name":"process_name","ph":"M","pid":2,"args":{"name":"replica p0/r1","dropped_spans":0}},|};
      {|{"name":"thread_name","ph":"M","pid":2,"tid":1,"args":{"name":"ordering"}},|};
      {|{"name":"ordering","ph":"X","pid":2,"tid":1,"ts":0.5,"dur":1.7,"args":{}}|};
      {|],"displayTimeUnit":"ns"}|};
    ]

let test_perfetto_golden () =
  check_string "golden document" golden (Trace_export.perfetto_string (golden_traces ()))

let test_perfetto_structure () =
  (* The export is valid JSON with correctly nested spans: every X
     event's (pid, tid) pair was declared by metadata, and spans from
     both replicas are present. *)
  let s = Trace_export.perfetto_string (golden_traces ()) in
  let doc = Json.parse_exn s in
  let events =
    match Json.member "traceEvents" doc with
    | Some l -> Json.to_list_exn l
    | None -> Alcotest.fail "no traceEvents"
  in
  let field name e =
    match Json.member name e with Some v -> v | None -> Alcotest.fail ("no " ^ name)
  in
  let declared = Hashtbl.create 8 in
  let x_pids = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match field "ph" e with
      | Json.String "M" -> (
          match (field "name" e, field "pid" e) with
          | Json.String "thread_name", Json.Int pid ->
              Hashtbl.replace declared (pid, field "tid" e) ()
          | _ -> ())
      | Json.String "X" ->
          let pid = field "pid" e in
          (match pid with Json.Int p -> Hashtbl.replace x_pids p () | _ -> ());
          check_bool "track declared" true
            (Hashtbl.mem declared
               ((match pid with Json.Int p -> p | _ -> -1), field "tid" e));
          (* Durations are non-negative. *)
          (match field "dur" e with
          | Json.Float d -> check_bool "dur >= 0" true (d >= 0.)
          | Json.Int d -> check_bool "dur >= 0" true (d >= 0)
          | _ -> Alcotest.fail "bad dur")
      | _ -> Alcotest.fail "unknown phase")
    events;
  check_bool "spans from >= 2 replicas" true (Hashtbl.length x_pids >= 2)

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "small values exact" `Quick test_bucket_small_exact;
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "roundtrip + error bound" `Quick
            test_bucket_roundtrip_and_error;
          Alcotest.test_case "percentile agreement" `Quick test_percentile_agreement;
          Alcotest.test_case "stats" `Quick test_histogram_stats;
        ] );
      ( "registry",
        [
          Alcotest.test_case "label merging" `Quick test_label_merging;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "metrics export" `Quick test_metrics_json_export;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraparound" `Quick test_trace_wraparound;
          Alcotest.test_case "perfetto golden" `Quick test_perfetto_golden;
          Alcotest.test_case "perfetto structure" `Quick test_perfetto_structure;
        ] );
    ]
