(* Tests for heron_ycsb: the zipfian sampler, operation semantics, and
   counter linearizability under concurrent read-modify-writes. *)

open Heron_sim
open Heron_rdma
open Heron_core
open Heron_ycsb

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Zipf} *)

let test_zipf_range () =
  let z = Zipf.create ~n:100 () in
  let rng = Random.State.make [| 1 |] in
  for _ = 1 to 10_000 do
    let k = Zipf.sample z rng in
    if k < 0 || k >= 100 then Alcotest.failf "out of range: %d" k
  done;
  check_int "n" 100 (Zipf.n z)

let test_zipf_skew () =
  (* The most popular key dominates a uniform draw by a wide margin. *)
  let n = 1000 in
  let z = Zipf.create ~n () in
  let rng = Random.State.make [| 2 |] in
  let hits = Array.make n 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    let k = Zipf.sample z rng in
    hits.(k) <- hits.(k) + 1
  done;
  let top = hits.(0) in
  check_bool "head is hot" true (top > draws / 25);
  let tail_half = Array.sub hits (n / 2) (n / 2) in
  let tail_hits = Array.fold_left ( + ) 0 tail_half in
  check_bool "tail is cold" true (tail_hits < draws / 4)

let test_zipf_validation () =
  check_bool "bad n" true
    (try ignore (Zipf.create ~n:0 ()); false with Invalid_argument _ -> true);
  check_bool "bad theta" true
    (try ignore (Zipf.create ~theta:1.5 ~n:10 ()); false
     with Invalid_argument _ -> true)

(* Statistical checks against the ideal zipf pmf
   p(k) = (1/(k+1)^theta) / H_{n,theta}. The sampler is Gray et al.'s
   inversion approximation: ranks 0 and 1 are exact by construction and
   the tail is a continuous approximation, so the head gets a tight
   relative bound and aggregates (cumulative mass, mean rank) a looser
   one. Deterministic rng; the draw count keeps sampling noise well
   under the tolerances. *)

let ideal_pmf ~n ~theta =
  let h = ref 0. in
  for k = 1 to n do
    h := !h +. (1. /. (float_of_int k ** theta))
  done;
  Array.init n (fun k -> 1. /. (float_of_int (k + 1) ** theta) /. !h)

let empirical ~n ~theta ~draws ~seed =
  let z = Zipf.create ~theta ~n () in
  let rng = Random.State.make [| seed |] in
  let hits = Array.make n 0 in
  for _ = 1 to draws do
    let k = Zipf.sample z rng in
    hits.(k) <- hits.(k) + 1
  done;
  Array.map (fun h -> float_of_int h /. float_of_int draws) hits

let test_zipf_pmf_frequencies () =
  let n = 50 and theta = 0.99 and draws = 200_000 in
  let ideal = ideal_pmf ~n ~theta in
  let emp = empirical ~n ~theta ~draws ~seed:41 in
  (* Head: exact construction, so empirical error is sampling noise. *)
  List.iter
    (fun k ->
      let rel = abs_float (emp.(k) -. ideal.(k)) /. ideal.(k) in
      if rel > 0.05 then
        Alcotest.failf "rank %d: empirical %.4f vs ideal %.4f (rel %.3f)" k emp.(k)
          ideal.(k) rel)
    [ 0; 1 ];
  (* Top-10 cumulative mass: approximation + noise, 10%% band. *)
  let mass a lo hi =
    let s = ref 0. in
    for k = lo to hi do s := !s +. a.(k) done;
    !s
  in
  let top_emp = mass emp 0 9 and top_ideal = mass ideal 0 9 in
  if abs_float (top_emp -. top_ideal) /. top_ideal > 0.10 then
    Alcotest.failf "top-10 mass: empirical %.3f vs ideal %.3f" top_emp top_ideal;
  (* Tail mass likewise (catches an approximation that dumps weight on
     the clamped last rank). *)
  let tail_emp = mass emp (n / 2) (n - 1) and tail_ideal = mass ideal (n / 2) (n - 1) in
  if abs_float (tail_emp -. tail_ideal) > 0.05 then
    Alcotest.failf "tail mass: empirical %.3f vs ideal %.3f" tail_emp tail_ideal

let test_zipf_mean_rank () =
  let n = 50 and theta = 0.99 and draws = 200_000 in
  let ideal = ideal_pmf ~n ~theta in
  let emp = empirical ~n ~theta ~draws ~seed:42 in
  let mean a =
    let s = ref 0. in
    Array.iteri (fun k p -> s := !s +. (float_of_int k *. p)) a;
    !s
  in
  let m_emp = mean emp and m_ideal = mean ideal in
  if abs_float (m_emp -. m_ideal) /. m_ideal > 0.15 then
    Alcotest.failf "mean rank: empirical %.2f vs ideal %.2f" m_emp m_ideal;
  (* And the ranking itself: rank 0 strictly dominates rank 1, which
     dominates the median rank. *)
  check_bool "rank 0 > rank 1" true (emp.(0) > emp.(1));
  check_bool "rank 1 > median rank" true (emp.(1) > emp.(n / 2))

(* {1 Application semantics} *)

let make_ycsb ?(seed = 1) ~records ~value_bytes ~partitions () =
  let eng = Engine.create ~seed () in
  let cfg = Config.default ~partitions ~replicas:3 in
  let sys = System.create eng ~cfg ~app:(Ycsb_app.app ~records ~value_bytes ~partitions) in
  System.start sys;
  (eng, sys)

let test_ycsb_ops () =
  let eng, sys = make_ycsb ~records:16 ~value_bytes:64 ~partitions:2 () in
  let node = System.new_client_node sys ~name:"c" in
  let finished = ref false in
  Fabric.spawn_on node (fun () ->
      let op req = snd (List.hd (System.submit sys ~from:node req)) in
      (match op (Ycsb_app.Y_read 3) with
      | Ycsb_app.Y_value { counter; size } ->
          check_int "initial counter" 0 counter;
          check_int "record size" (8 + 64) size
      | _ -> Alcotest.fail "expected value");
      (match op (Ycsb_app.Y_rmw { key = 3; delta = 5 }) with
      | Ycsb_app.Y_value { counter; _ } -> check_int "rmw result" 5 counter
      | _ -> Alcotest.fail "expected value");
      (match op (Ycsb_app.Y_read 3) with
      | Ycsb_app.Y_value { counter; _ } -> check_int "rmw persisted" 5 counter
      | _ -> Alcotest.fail "expected value");
      check_bool "update acks" true (op (Ycsb_app.Y_update { key = 3; seed = 9 }) = Ycsb_app.Y_ok);
      (match op (Ycsb_app.Y_read 3) with
      | Ycsb_app.Y_value { counter; _ } -> check_int "update overwrote counter" 9 counter
      | _ -> Alcotest.fail "expected value");
      (* A scan over 8 keys spans both partitions. *)
      (match op (Ycsb_app.Y_scan { start = 14; count = 8 }) with
      | Ycsb_app.Y_scanned n -> check_int "scan wraps" 8 n
      | _ -> Alcotest.fail "expected scan");
      finished := true);
  Engine.run_until eng (Time_ns.s 1);
  check_bool "completed" true !finished

let test_ycsb_gen_mix () =
  let rng = Random.State.make [| 7 |] in
  let reads = ref 0 and total = 5_000 in
  for _ = 1 to total do
    match Ycsb_app.gen Ycsb_app.workload_b ~records:100 ~key_dist:`Uniform rng with
    | Ycsb_app.Y_read _ -> incr reads
    | _ -> ()
  done;
  let pct = 100 * !reads / total in
  check_bool "B is ~95% reads" true (abs (pct - 95) <= 2)

(* {1 Counter linearizability} *)

let test_ycsb_rmw_linearizable () =
  (* Concurrent rmw(+1) on one hot key: the final counter equals the
     number of rmws, and the full history linearizes against a counter
     model. *)
  let records = 4 in
  let eng, sys = make_ycsb ~seed:13 ~records ~value_bytes:32 ~partitions:2 () in
  let events = ref [] in
  let per_client = 15 in
  for c = 0 to 2 do
    let node = System.new_client_node sys ~name:(Printf.sprintf "c%d" c) in
    Fabric.spawn_on node (fun () ->
        for i = 1 to per_client do
          let req =
            if i mod 3 = 0 then Ycsb_app.Y_read 0
            else Ycsb_app.Y_rmw { key = 0; delta = 1 }
          in
          let t0 = Engine.self_now () in
          let resp = snd (List.hd (System.submit sys ~from:node req)) in
          let t1 = Engine.self_now () in
          events :=
            { Heron_lincheck.Lincheck.ev_client = c; ev_op = req; ev_result = resp;
              ev_invoke = t0; ev_return = t1 }
            :: !events
        done)
  done;
  Engine.run_until eng (Time_ns.s 5);
  check_int "all answered" (3 * per_client) (List.length !events);
  let spec : (Ycsb_app.req, Ycsb_app.resp, int) Heron_lincheck.Lincheck.spec =
    {
      Heron_lincheck.Lincheck.initial = 0;
      apply =
        (fun counter req ->
          match req with
          | Ycsb_app.Y_read 0 -> (counter, Ycsb_app.Y_value { counter; size = 40 })
          | Ycsb_app.Y_rmw { key = 0; delta } ->
              (counter + delta, Ycsb_app.Y_value { counter = counter + delta; size = 40 })
          | _ -> (counter, Ycsb_app.Y_ok));
      equal_result = ( = );
    }
  in
  check_bool "rmw history linearizes" true
    (Heron_lincheck.Lincheck.check spec (List.rev !events))

let tc name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "ycsb.zipf",
      [
        tc "range" test_zipf_range;
        tc "skew" test_zipf_skew;
        tc "validation" test_zipf_validation;
        tc "empirical pmf vs ideal" test_zipf_pmf_frequencies;
        tc "mean rank vs ideal" test_zipf_mean_rank;
      ] );
    ( "ycsb.app",
      [ tc "operation semantics" test_ycsb_ops; tc "generator mix" test_ycsb_gen_mix ] );
    ("ycsb.consistency", [ tc "rmw counter linearizes" test_ycsb_rmw_linearizable ]);
  ]

let () = Alcotest.run "heron_ycsb" suite
