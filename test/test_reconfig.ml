(* Tests for live repartitioning (lib/reconfig + Placement): the
   directory/view mechanics, online single-key migration, migrations
   racing crashes and restarts, and the load-driven rebalancer. *)

open Heron_sim
open Heron_rdma
open Heron_core
open Heron_kv
open Heron_reconfig

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tc name f = Alcotest.test_case name `Quick f

(* {1 Placement unit tests} *)

let oid = Oid.of_int

let test_placement_directory () =
  let dir = Placement.create () in
  check_int "epoch 0" 0 (Placement.epoch dir);
  check_bool "no override" true (Placement.lookup dir (oid 3) = None);
  Placement.commit dir ~epoch:1 ~moves:[ (oid 3, 1) ];
  check_int "epoch 1" 1 (Placement.epoch dir);
  check_bool "override" true (Placement.lookup dir (oid 3) = Some 1);
  check_bool "non-consecutive epoch rejected" true
    (try
       Placement.commit dir ~epoch:3 ~moves:[];
       false
     with Invalid_argument _ -> true);
  check_bool "exclusive slot" true (Placement.begin_exclusive dir);
  check_bool "second taker refused" false (Placement.begin_exclusive dir);
  Placement.end_exclusive dir;
  check_bool "slot released" true (Placement.begin_exclusive dir);
  Placement.end_exclusive dir

let test_placement_views () =
  let static o = App.Partition (Oid.to_int o mod 2) in
  let v = Placement.fresh_view () in
  check_int "fresh epoch" 0 (Placement.view_epoch v);
  check_bool "static passthrough" true
    (Placement.placement_under v static (oid 3) = App.Partition 1);
  Placement.install v ~epoch:1 ~moves:[ (oid 3, 0) ];
  check_bool "override wins" true
    (Placement.placement_under v static (oid 3) = App.Partition 0);
  (* Re-delivery of an old epoch (a re-executed Migrate after restart)
     is a no-op. *)
  Placement.install v ~epoch:1 ~moves:[ (oid 3, 1) ];
  check_bool "stale install ignored" true
    (Placement.placement_under v static (oid 3) = App.Partition 0);
  Placement.install v ~epoch:2 ~moves:[ (oid 5, 0) ];
  check_int "epoch advances" 2 (Placement.view_epoch v);
  check_int "override count" 2 (Placement.view_size v);
  (* A replicated object never migrates, whatever the table says. *)
  let repl _ = App.Replicated in
  check_bool "replicated unaffected" true
    (Placement.placement_under v repl (oid 3) = App.Replicated);
  (* refresh pulls the directory wholesale. *)
  let dir = Placement.create () in
  Placement.commit dir ~epoch:1 ~moves:[ (oid 7, 1) ];
  Placement.refresh v dir;
  check_int "refresh resets epoch" 1 (Placement.view_epoch v);
  check_bool "refresh resets overrides" true
    (Placement.view_lookup v (oid 3) = None
    && Placement.view_lookup v (oid 7) = Some 1);
  (* copy_view is the donor shipping its placement to a lagger. *)
  let w = Placement.fresh_view () in
  Placement.copy_view ~src:v ~dst:w;
  check_int "copied epoch" 1 (Placement.view_epoch w);
  check_bool "copied override" true (Placement.view_lookup w (oid 7) = Some 1)

(* {1 System helpers} *)

let make_sys ?(seed = 5) ?(keys = 8) ?(partitions = 2) () =
  let eng = Engine.create ~seed () in
  let cfg =
    {
      (Config.default ~partitions ~replicas:3) with
      Config.metrics = Heron_obs.Metrics.create ();
      reconfig = { Config.enabled = true };
    }
  in
  let sys =
    System.create eng ~cfg ~app:(Kv_app.app ~keys ~partitions ~init:0L)
  in
  System.start sys;
  (eng, sys)

let counter_value sys name =
  Heron_obs.Metrics.counter_value
    (Heron_obs.Metrics.counter (System.config sys).Config.metrics name)

(* Run [f] on a fresh client node and advance the sim until it returns. *)
let on_client ?(name = "t-client") ~eng sys f =
  let node = System.new_client_node sys ~name in
  let result = ref None in
  Fabric.spawn_on node (fun () -> result := Some (f node));
  Engine.run_until eng (Time_ns.s 5);
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "client fiber did not finish"

(* {1 Migration} *)

let test_migrate_single_key () =
  let eng, sys = make_sys () in
  on_client ~eng sys (fun node ->
      (* Key 1 lives on partition 1; write, migrate to 0, read back. *)
      ignore (System.submit sys ~from:node (Kv_app.Put (1, 42L)));
      (match Migration.migrate sys ~from:node ~oids:[ Kv_app.oid_of_key 1 ] ~dst:0 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "migrate failed: %s" e);
      check_int "epoch bumped" 1 (Placement.epoch (System.directory sys));
      check_bool "directory override" true
        (Migration.current_partition sys (Kv_app.oid_of_key 1) = Some 0);
      (match System.submit sys ~from:node (Kv_app.Get 1) with
      | [ (part, Kv_app.Value v) ] ->
          check_int "served by new home" 0 part;
          check_bool "value survived the move" true (v = 42L)
      | _ -> Alcotest.fail "unexpected response");
      (* Writes keep working at the new home. *)
      (match System.submit sys ~from:node (Kv_app.Add (1, 8L)) with
      | [ (_, Kv_app.Value v) ] -> check_bool "post-move rmw" true (v = 50L)
      | _ -> Alcotest.fail "unexpected response");
      check_int "one migration" 1 (counter_value sys "reconfig.migrations");
      check_int "one object moved" 1 (counter_value sys "reconfig.objects_moved"));
  (* Every live replica of the destination holds the moved cell; the
     source replicas keep their frozen copy (never deleted). *)
  Array.iter
    (fun r ->
      check_bool "dst replica holds the cell" true
        (Versioned_store.mem (Replica.store r) (Kv_app.oid_of_key 1)))
    (System.replicas sys).(0)

let test_migrate_batch_and_validation () =
  let eng, sys = make_sys () in
  on_client ~eng sys (fun node ->
      (* A batch from one source partition moves atomically (one epoch). *)
      (match
         Migration.migrate sys ~from:node
           ~oids:[ Kv_app.oid_of_key 0; Kv_app.oid_of_key 2 ]
           ~dst:1
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "batch migrate failed: %s" e);
      check_int "single epoch for the batch" 1
        (Placement.epoch (System.directory sys));
      (* Validation errors. *)
      let fails ~oids ~dst =
        match Migration.migrate sys ~from:node ~oids ~dst with
        | Ok () -> false
        | Error _ -> true
      in
      check_bool "empty batch" true (fails ~oids:[] ~dst:1);
      check_bool "dst out of range" true
        (fails ~oids:[ Kv_app.oid_of_key 1 ] ~dst:7);
      check_bool "already home" true
        (fails ~oids:[ Kv_app.oid_of_key 0 ] ~dst:1);
      (* Key 0 now lives on partition 1 (just moved), key 4 still on 0. *)
      check_bool "mixed sources" true
        (fails ~oids:[ Kv_app.oid_of_key 0; Kv_app.oid_of_key 4 ] ~dst:0);
      (* Traffic still linear after the batch move. *)
      match System.submit sys ~from:node (Kv_app.Incr_all [ 0; 1; 2 ]) with
      | [ _; _ ] | [ _ ] -> ()
      | resps -> Alcotest.failf "unexpected fan-out %d" (List.length resps))

let test_migrate_disabled () =
  let eng = Engine.create ~seed:5 () in
  let cfg =
    { (Config.default ~partitions:2 ~replicas:3) with
      Config.metrics = Heron_obs.Metrics.create () }
  in
  let sys = System.create eng ~cfg ~app:(Kv_app.app ~keys:4 ~partitions:2 ~init:0L) in
  System.start sys;
  on_client ~eng sys (fun node ->
      match Migration.migrate sys ~from:node ~oids:[ Kv_app.oid_of_key 1 ] ~dst:0 with
      | Ok () -> Alcotest.fail "migration must be refused when disabled"
      | Error _ -> ())

let test_migrate_with_restart () =
  (* A replica is down while the migration commits; after restart and
     state transfer it must hold the migrated-in object and agree with
     its peers. *)
  let eng, sys = make_sys ~seed:9 () in
  on_client ~eng sys (fun node ->
      ignore (System.submit sys ~from:node (Kv_app.Put (1, 7L)));
      Fabric.crash (Replica.node (System.replica sys ~part:0 ~idx:1));
      (match Migration.migrate sys ~from:node ~oids:[ Kv_app.oid_of_key 1 ] ~dst:0 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "migrate with a dead dst replica: %s" e);
      ignore (System.submit sys ~from:node (Kv_app.Add (1, 1L)));
      System.restart_replica sys ~part:0 ~idx:1;
      (* Traffic after the rejoin, touching the migrated key. *)
      match System.submit sys ~from:node (Kv_app.Add (1, 1L)) with
      | [ (_, Kv_app.Value v) ] -> check_bool "value intact" true (v = 9L)
      | _ -> Alcotest.fail "unexpected response");
  Engine.run_until eng (Time_ns.s 6);
  let restarted = System.replica sys ~part:0 ~idx:1 in
  check_bool "restarted replica is live" true
    (Fabric.is_alive (Replica.node restarted));
  check_bool "restarted replica holds the migrated-in cell" true
    (Versioned_store.mem (Replica.store restarted) (Kv_app.oid_of_key 1))

(* {1 Rebalancer} *)

let test_rebalancer_spreads_hotspot () =
  let eng, sys = make_sys ~seed:11 ~keys:8 () in
  let stop = ref false in
  for c = 0 to 3 do
    let node = System.new_client_node sys ~name:(Printf.sprintf "hot-%d" c) in
    let rng = Random.State.make [| c; 77 |] in
    Fabric.spawn_on node (fun () ->
        while not !stop do
          (* Keys 0,2,4,6: all homed on partition 0. *)
          let key = 2 * Random.State.int rng 4 in
          ignore (System.submit sys ~from:node (Kv_app.Add (key, 1L)))
        done)
  done;
  let rb =
    Rebalancer.start
      ~policy:{ Rebalancer.default_policy with imbalance_x100 = 130 }
      sys
  in
  Engine.run_until eng (Time_ns.ms 30);
  Rebalancer.stop rb;
  stop := true;
  Engine.run_until eng (Engine.now eng + Time_ns.ms 1);
  check_bool "rebalancer ran" true (Rebalancer.rounds rb > 5);
  check_bool "objects moved" true (Rebalancer.moves rb > 0);
  (* The hot stripe is no longer concentrated on partition 0. *)
  let on_p0 =
    List.length
      (List.filter
         (fun k -> Migration.current_partition sys (Kv_app.oid_of_key k) = Some 0)
         [ 0; 2; 4; 6 ])
  in
  check_bool "hot keys spread" true (on_p0 < 4);
  check_bool "imbalance gauge live" true
    (Heron_obs.Metrics.gauge_value
       (Heron_obs.Metrics.gauge (System.config sys).Config.metrics
          "reconfig.imbalance_x100")
     > 0)

let test_rebalancer_leaves_balance_alone () =
  let eng, sys = make_sys ~seed:13 ~keys:8 () in
  let stop = ref false in
  for c = 0 to 3 do
    let node = System.new_client_node sys ~name:(Printf.sprintf "uni-%d" c) in
    let rng = Random.State.make [| c; 78 |] in
    Fabric.spawn_on node (fun () ->
        while not !stop do
          (* Uniform over all keys: no imbalance to fix. *)
          ignore
            (System.submit sys ~from:node (Kv_app.Add (Random.State.int rng 8, 1L)))
        done)
  done;
  let rb = Rebalancer.start sys in
  Engine.run_until eng (Time_ns.ms 20);
  Rebalancer.stop rb;
  stop := true;
  Engine.run_until eng (Engine.now eng + Time_ns.ms 1);
  check_bool "rebalancer ran" true (Rebalancer.rounds rb > 5);
  check_int "no moves under balanced load" 0 (Rebalancer.moves rb);
  check_int "epoch untouched" 0 (Placement.epoch (System.directory sys))

(* {1 Chaos integration}

   Reconfig-focused chaos schedules must complete and linearize, and
   the migrations in them must actually execute (not all be skipped) —
   otherwise the sweep would pass vacuously. *)

let test_chaos_reconfig_seeds () =
  let module Cdriver = Heron_chaos.Driver in
  let module Sched = Heron_chaos.Schedule in
  let migrations_before =
    Heron_obs.Metrics.counter_value
      (Heron_obs.Metrics.counter Heron_obs.Metrics.default "reconfig.migrations")
  in
  for seed = 0 to 15 do
    let sc = Sched.generate_reconfig ~seed in
    (match Sched.validate sc with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: invalid schedule: %s" seed e);
    match Cdriver.run sc with
    | Cdriver.Completed _ -> ()
    | Cdriver.Failed f ->
        Alcotest.failf "seed %d: %s" seed
          (Format.asprintf "%a" Cdriver.pp_failure f)
  done;
  let migrations_after =
    Heron_obs.Metrics.counter_value
      (Heron_obs.Metrics.counter Heron_obs.Metrics.default "reconfig.migrations")
  in
  check_bool "some chaos migrations committed" true
    (migrations_after > migrations_before)

let test_corpus_mid_migration_commits () =
  (* The pinned corpus schedule crashes a destination replica 4us after
     each migration starts; the run must linearize AND the migrations
     must have committed (the crash may not abort them). *)
  let file =
    let dir =
      if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"
    in
    Filename.concat dir "reconfig_crash_mid_migration.json"
  in
  match Heron_chaos.Schedule.load ~file with
  | Error e -> Alcotest.failf "load %s: %s" file e
  | Ok sc -> (
      let migrations () =
        Heron_obs.Metrics.counter_value
          (Heron_obs.Metrics.counter Heron_obs.Metrics.default "reconfig.migrations")
      in
      let before = migrations () in
      match Heron_chaos.Driver.run sc with
      | Heron_chaos.Driver.Completed _ ->
          check_bool "both pinned migrations committed" true
            (migrations () - before >= 2)
      | Heron_chaos.Driver.Failed f ->
          Alcotest.failf "pinned schedule failed: %s"
            (Format.asprintf "%a" Heron_chaos.Driver.pp_failure f))

let suite =
  [
    ( "reconfig.placement",
      [ tc "directory" test_placement_directory; tc "views" test_placement_views ] );
    ( "reconfig.migration",
      [
        tc "single key online" test_migrate_single_key;
        tc "batch + validation" test_migrate_batch_and_validation;
        tc "refused when disabled" test_migrate_disabled;
        tc "racing a crash/restart" test_migrate_with_restart;
      ] );
    ( "reconfig.rebalancer",
      [
        tc "spreads a hotspot" test_rebalancer_spreads_hotspot;
        tc "leaves balance alone" test_rebalancer_leaves_balance_alone;
      ] );
    ( "reconfig.chaos",
      [
        tc "reconfig seeds linearize" test_chaos_reconfig_seeds;
        tc "pinned mid-migration crash commits" test_corpus_mid_migration_commits;
      ] );
  ]

let () = Alcotest.run "heron_reconfig" suite
