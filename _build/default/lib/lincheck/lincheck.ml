type ('op, 'res) event = {
  ev_client : int;
  ev_op : 'op;
  ev_result : 'res;
  ev_invoke : int;
  ev_return : int;
}

type ('op, 'res, 'state) spec = {
  initial : 'state;
  apply : 'state -> 'op -> 'state * 'res;
  equal_result : 'res -> 'res -> bool;
}

let bit_get mask i = Char.code (Bytes.get mask (i / 8)) land (1 lsl (i mod 8)) <> 0

let bit_flip mask i =
  Bytes.set mask (i / 8)
    (Char.chr (Char.code (Bytes.get mask (i / 8)) lxor (1 lsl (i mod 8))))

let check spec events =
  let evs = Array.of_list events in
  let n = Array.length evs in
  Array.iter
    (fun e ->
      if e.ev_return < e.ev_invoke then
        invalid_arg "Lincheck.check: event returns before it is invoked")
    evs;
  if n = 0 then true
  else begin
    (* Memoize failed configurations: (linearized set, state). States
       must be persistent values with structural equality. *)
    let memo = Hashtbl.create 4096 in
    let mask = Bytes.make ((n + 7) / 8) '\000' in
    let rec dfs state count =
      count = n
      ||
      let key = (Bytes.to_string mask, state) in
      if Hashtbl.mem memo key then false
      else begin
        Hashtbl.add memo key ();
        (* An event can be linearized next only if no other pending
           event returned strictly before it was invoked. *)
        let min_return = ref max_int in
        for i = 0 to n - 1 do
          if (not (bit_get mask i)) && evs.(i).ev_return < !min_return then
            min_return := evs.(i).ev_return
        done;
        let found = ref false in
        let i = ref 0 in
        while (not !found) && !i < n do
          let e = evs.(!i) in
          if (not (bit_get mask !i)) && e.ev_invoke <= !min_return then begin
            let state', res = spec.apply state e.ev_op in
            if spec.equal_result res e.ev_result then begin
              bit_flip mask !i;
              if dfs state' (count + 1) then found := true;
              bit_flip mask !i
            end
          end;
          incr i
        done;
        !found
      end
    in
    dfs spec.initial 0
  end

let counterexample_free spec events =
  if check spec events then Ok ()
  else
    Error
      (Printf.sprintf
         "history of %d events admits no linearization consistent with the \
          sequential specification"
         (List.length events))
