lib/lincheck/lincheck.ml: Array Bytes Char Hashtbl List Printf
