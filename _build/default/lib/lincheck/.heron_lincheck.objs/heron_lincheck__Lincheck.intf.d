lib/lincheck/lincheck.mli:
