lib/harness/experiments.mli: Heron_stats Table
