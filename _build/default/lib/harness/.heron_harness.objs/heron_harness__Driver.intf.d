lib/harness/driver.mli: App Config Heron_core Heron_dynastar Heron_sim Heron_stats Heron_tpcc Random Replica Sample_set Scale System Time_ns Tx Workload
