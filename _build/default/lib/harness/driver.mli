(** Shared experiment machinery: closed-loop clients, warmup/measure
    windows, and saturation/latency measurements over Heron, the
    RamCast layer alone, and the DynaStar baseline.

    All measurements follow the paper's methodology (Section V-B):
    clients are closed-loop (one outstanding request each), latency is
    the client-observed submit-to-reply interval, throughput counts
    requests completed during the measurement window of virtual time,
    and replica-side statistics (ordering/coordination/execution
    breakdown, Table I delay counters) are reset at the end of
    warmup. *)

open Heron_sim
open Heron_stats
open Heron_core
open Heron_tpcc

type run_stats = {
  rs_throughput_tps : float;
  rs_latency : Sample_set.t;  (** client-observed, measurement window *)
  rs_latency_single : Sample_set.t;  (** single-partition requests *)
  rs_latency_multi : Sample_set.t;  (** multi-partition requests *)
  rs_completed : int;
}

val run_system :
  ?warmup:Time_ns.t ->
  ?measure:Time_ns.t ->
  sys:('req, 'resp) System.t ->
  clients:int ->
  gen:(client:int -> Random.State.t -> 'req * int list option) ->
  unit ->
  run_stats
(** Drive an already-started Heron deployment with [clients] closed-loop
    clients. [gen] produces each request plus an optional explicit
    destination override (used by null-request workloads); when [None]
    the destinations come from the application. Replica stats are
    cleared after warmup, so they describe the measurement window. *)

val heron_tpcc_system :
  ?seed:int ->
  ?replicas:int ->
  ?cfg_tweak:(Config.t -> Config.t) ->
  scale:Scale.t ->
  unit ->
  (Tx.req, Tx.resp) System.t
(** A started Heron+TPCC deployment with one partition per warehouse. *)

val tpcc_gen :
  profile:Workload.profile ->
  scale:Scale.t ->
  client:int ->
  Random.State.t ->
  Tx.req * int list option
(** Standard client behaviour: client [i]'s home warehouse is
    [i mod warehouses + 1]; requests from the given mix. *)

type null_req = { nr_dst : int list; nr_bytes : int }

val null_app : (null_req, unit) App.t
(** An application with no state and an empty execute callback — the
    "Heron null requests" series of Figure 4, isolating coordination
    cost. Requests must be submitted with an explicit destination
    list. *)

val run_ramcast :
  ?seed:int ->
  ?warmup:Time_ns.t ->
  ?measure:Time_ns.t ->
  ?replicas:int ->
  partitions:int ->
  clients:int ->
  gen_dst:(Random.State.t -> int list) ->
  msg_bytes:int ->
  unit ->
  run_stats
(** Throughput/latency of the atomic multicast alone (Figure 4's
    "Ramcast" series): clients multicast opaque messages and wait until
    every destination group delivered. *)

val run_dynastar :
  ?seed:int ->
  ?warmup:Time_ns.t ->
  ?measure:Time_ns.t ->
  ?replicas:int ->
  ?config:Heron_dynastar.Dynastar.config ->
  scale:Scale.t ->
  clients:int ->
  profile:Workload.profile ->
  unit ->
  run_stats
(** Closed-loop TPCC over the DynaStar baseline (Figure 5). *)

(** {1 Aggregation helpers} *)

val merged_replica_stat :
  ('req, 'resp) System.t -> (Replica.stats -> Sample_set.t) -> Sample_set.t
(** Union of one per-replica sample set over all replicas. *)

val sum_replica_stat : ('req, 'resp) System.t -> (Replica.stats -> int) -> int
