(** RDMA-registered memory regions and remote addresses.

    A region is a flat byte buffer registered on a node; remote peers
    address it as [(node, region id, offset)]. Accessors mirror what
    RDMA hardware guarantees: arbitrary byte ranges for payloads plus
    atomic 8-byte words (used for timestamps and coordination flags,
    see paper Section III-B "atomicity and coherence of timestamps"). *)

type region = private { rid : int; buf : Bytes.t }

type addr = { mem_node : int; mem_rid : int; mem_off : int }
(** A remote (or local) memory location. *)

val make_region : rid:int -> size:int -> region
(** A zero-filled region. *)

val region_size : region -> int

val wipe : region -> unit
(** Zero the region (models losing volatile memory on a crash). *)

val read_bytes : region -> off:int -> len:int -> bytes
(** Copy [len] bytes out of the region. Raises [Invalid_argument] on
    out-of-bounds access. *)

val write_bytes : region -> off:int -> bytes -> unit
(** Copy a payload into the region. *)

val get_i64 : region -> off:int -> int64
val set_i64 : region -> off:int -> int64 -> unit

val addr : node:int -> region -> off:int -> addr
(** [addr ~node r ~off] names offset [off] of [r] on [node]. *)

val shift : addr -> int -> addr
(** [shift a n] is [a] moved [n] bytes forward. *)
