type region = { rid : int; buf : Bytes.t }
type addr = { mem_node : int; mem_rid : int; mem_off : int }

let make_region ~rid ~size = { rid; buf = Bytes.make size '\000' }
let region_size r = Bytes.length r.buf
let wipe r = Bytes.fill r.buf 0 (Bytes.length r.buf) '\000'

let check r ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length r.buf then
    invalid_arg
      (Printf.sprintf "Memory: access [%d, %d) outside region %d of size %d" off
         (off + len) r.rid (Bytes.length r.buf))

let read_bytes r ~off ~len =
  check r ~off ~len;
  Bytes.sub r.buf off len

let write_bytes r ~off payload =
  check r ~off ~len:(Bytes.length payload);
  Bytes.blit payload 0 r.buf off (Bytes.length payload)

let get_i64 r ~off =
  check r ~off ~len:8;
  Bytes.get_int64_le r.buf off

let set_i64 r ~off v =
  check r ~off ~len:8;
  Bytes.set_int64_le r.buf off v

let addr ~node r ~off = { mem_node = node; mem_rid = r.rid; mem_off = off }
let shift a n = { a with mem_off = a.mem_off + n }
