open Heron_sim

type t = {
  qp_src : Fabric.node;
  qp_dst : Fabric.node;
  mutable busy_until : Time_ns.t;
}

exception Rdma_exception of { target : int; verb : string }

let connect ~src ~dst = { qp_src = src; qp_dst = dst; busy_until = 0 }
let src t = t.qp_src
let dst t = t.qp_dst

let prof_and_eng t =
  let fab = Fabric.fabric_of t.qp_src in
  (Fabric.engine fab, Fabric.profile fab)

(* Reserve this QP for one verb carrying [bytes_len] payload bytes and
   return the completion instant. RC ordering: a verb starts only after
   the previous one on the same QP completed. *)
let reserve t ~bytes_len =
  let eng, prof = prof_and_eng t in
  Engine.consume prof.Profile.post_ns;
  let start = max (Engine.now eng) t.busy_until in
  let completion = start + Profile.verb_latency prof ~bytes_len in
  t.busy_until <- completion;
  completion

let await_completion t completion ~verb =
  let eng, prof = prof_and_eng t in
  Engine.sleep (completion - Engine.now eng);
  if not (Fabric.is_alive t.qp_dst) then begin
    Engine.sleep prof.Profile.failure_timeout_ns;
    raise (Rdma_exception { target = Fabric.node_id t.qp_dst; verb })
  end

let read t addr ~len =
  let completion = reserve t ~bytes_len:len in
  await_completion t completion ~verb:"read";
  Fabric.local_read t.qp_dst addr ~len

let land_write t addr payload =
  Fabric.local_write t.qp_dst addr payload;
  Signal.broadcast (Fabric.mem_signal t.qp_dst)

let write t addr payload =
  let payload = Bytes.copy payload in
  let completion = reserve t ~bytes_len:(Bytes.length payload) in
  await_completion t completion ~verb:"write";
  land_write t addr payload

let write_post t addr payload =
  let payload = Bytes.copy payload in
  let eng, _ = prof_and_eng t in
  let completion = reserve t ~bytes_len:(Bytes.length payload) in
  Engine.schedule ~delay:(completion - Engine.now eng) eng (fun () ->
      if Fabric.is_alive t.qp_dst then land_write t addr payload)

let cas t addr ~expected ~desired =
  let completion = reserve t ~bytes_len:8 in
  await_completion t completion ~verb:"cas";
  let r = Fabric.region t.qp_dst addr.Memory.mem_rid in
  let prev = Memory.get_i64 r ~off:addr.Memory.mem_off in
  if Int64.equal prev expected then begin
    Memory.set_i64 r ~off:addr.Memory.mem_off desired;
    Signal.broadcast (Fabric.mem_signal t.qp_dst)
  end;
  prev

let transfer t ~bytes_len =
  let completion = reserve t ~bytes_len in
  await_completion t completion ~verb:"transfer"

let read_i64 t addr =
  let b = read t addr ~len:8 in
  Bytes.get_int64_le b 0

let write_i64 t addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write t addr b
