lib/rdma/qp.ml: Bytes Engine Fabric Heron_sim Int64 Memory Profile Signal Time_ns
