lib/rdma/memory.mli: Bytes
