lib/rdma/profile.ml:
