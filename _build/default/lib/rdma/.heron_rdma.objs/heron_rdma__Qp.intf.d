lib/rdma/qp.mli: Fabric Memory
