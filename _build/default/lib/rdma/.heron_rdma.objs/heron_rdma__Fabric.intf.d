lib/rdma/fabric.mli: Heron_sim Memory Profile
