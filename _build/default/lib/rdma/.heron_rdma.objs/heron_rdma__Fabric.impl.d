lib/rdma/fabric.ml: Engine Hashtbl Heron_sim Memory Profile Signal
