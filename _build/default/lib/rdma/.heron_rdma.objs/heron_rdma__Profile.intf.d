lib/rdma/profile.mli:
