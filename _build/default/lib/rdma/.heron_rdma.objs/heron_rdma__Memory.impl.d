lib/rdma/memory.ml: Bytes Printf
