lib/dynastar/msgnet.mli: Engine Heron_sim
