lib/dynastar/dynastar.ml: App Array Bytes Engine Hashtbl Heron_core Heron_multicast Heron_sim List Mailbox Msgnet Oid Option Printf Queue Signal Tstamp
