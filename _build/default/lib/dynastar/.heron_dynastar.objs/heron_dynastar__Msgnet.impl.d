lib/dynastar/msgnet.ml: Engine Heron_sim Mailbox
