lib/dynastar/dynastar.mli: App Engine Heron_core Heron_sim Msgnet Oid
