open Heron_sim
open Heron_core
open Heron_multicast

type config = {
  net : Msgnet.config;
  exec_overhead_ns : int;
  read_local_ns : int;
  ser_per_byte_x100 : int;
}

let default_config =
  {
    net = Msgnet.default_config;
    exec_overhead_ns = 30_000;
    read_local_ns = 150;
    ser_per_byte_x100 = 95;
  }

type ('req, 'resp) env = {
  e_uid : int;
  e_dst : int list;  (* involved partitions, sorted *)
  e_payload : 'req;
  e_client : ('req, 'resp) wire Msgnet.endpoint;
}

and ('req, 'resp) entry = { en_env : ('req, 'resp) env; en_ts : int }

and ('req, 'resp) wire =
  | M_submit of ('req, 'resp) env
  | M_propose of { p_uid : int; p_gid : int; p_ts : int }
  | M_accept of ('req, 'resp) entry
  | M_ack of { a_uid : int }
  | M_commit of { c_uid : int }
  | M_objects of { o_uid : int; o_from : int; o_values : (Oid.t * bytes) list }
  | M_update of { u_uid : int; u_writes : (Oid.t * bytes) list }
  | M_reply of { r_uid : int; r_resp : 'resp }

type ('req, 'resp) pending = {
  pn_env : ('req, 'resp) env;
  mutable pn_ts : int;
  mutable pn_heard : int list;
  mutable pn_final : bool;
}

type ('req, 'resp) commit = { cm_entry : ('req, 'resp) entry; mutable cm_acks : int }

type ('req, 'resp) replica = {
  rp_part : int;
  rp_idx : int;
  rp_ep : ('req, 'resp) wire Msgnet.endpoint;
  rp_store : (Oid.t, bytes) Hashtbl.t;
  rp_deliveries : ('req, 'resp) entry Mailbox.t;
  rp_wake : Signal.t;
  (* buffers filled by the protocol fiber, consumed by the exec fiber *)
  rp_objects : (int * int, (Oid.t * bytes) list) Hashtbl.t;  (* (uid, part) *)
  rp_updates : (int, (Oid.t * bytes) list) Hashtbl.t;
  (* leader ordering state *)
  mutable rp_clock : int;
  rp_pending : (int, ('req, 'resp) pending) Hashtbl.t;
  rp_early : (int, (int * int) list) Hashtbl.t;
  rp_commits : ('req, 'resp) commit Queue.t;
  rp_seen : (int, unit) Hashtbl.t;
  (* follower commit state *)
  rp_uncommitted : ('req, 'resp) entry Queue.t;
  rp_committed : (int, unit) Hashtbl.t;
  mutable rp_executed : int;
}

type ('req, 'resp) t = {
  eng : Engine.t;
  cfg : config;
  app : ('req, 'resp) App.t;
  partitions : int;
  replicas : int;
  net : ('req, 'resp) wire Msgnet.t;
  reps : ('req, 'resp) replica array array;
  mutable next_uid : int;
}

type ('req, 'resp) client = { cl_ep : ('req, 'resp) wire Msgnet.endpoint }

let create eng ?(config = default_config) ~partitions ~replicas ~app () =
  let net = Msgnet.create eng config.net in
  let reps =
    Array.init partitions (fun part ->
        Array.init replicas (fun idx ->
            {
              rp_part = part;
              rp_idx = idx;
              rp_ep = Msgnet.endpoint net ~name:(Printf.sprintf "ds-p%d-r%d" part idx);
              rp_store = Hashtbl.create 4096;
              rp_deliveries = Mailbox.create ();
              rp_wake = Signal.create ();
              rp_objects = Hashtbl.create 64;
              rp_updates = Hashtbl.create 64;
              rp_clock = 0;
              rp_pending = Hashtbl.create 64;
              rp_early = Hashtbl.create 64;
              rp_commits = Queue.create ();
              rp_seen = Hashtbl.create 256;
              rp_uncommitted = Queue.create ();
              rp_committed = Hashtbl.create 64;
              rp_executed = 0;
            }))
  in
  (* Load the catalog: partitioned objects at their home partition,
     replicated ones everywhere. *)
  List.iter
    (fun spec ->
      let load part =
        Array.iter
          (fun rp -> Hashtbl.replace rp.rp_store spec.App.spec_oid spec.App.spec_init)
          reps.(part)
      in
      match spec.App.spec_placement with
      | App.Partition p -> load p
      | App.Replicated ->
          for p = 0 to partitions - 1 do
            load p
          done)
    (app.App.catalog ());
  { eng; cfg = config; app; partitions; replicas; net; reps; next_uid = 1 }

let leader t part = t.reps.(part).(0)
let is_leader rp = rp.rp_idx = 0
let majority t = (t.replicas / 2) + 1

let env_bytes t env = t.app.App.req_size env.e_payload + 64

let values_bytes values =
  List.fold_left (fun acc (_, v) -> acc + Bytes.length v + 16) 64 values

(* {1 Leader ordering (Skeen over message passing + replication)} *)

let deliver_entry rp entry =
  Hashtbl.replace rp.rp_seen entry.en_env.e_uid ();
  Mailbox.send rp.rp_deliveries entry

let drain_commits t rp =
  let need = majority t - 1 in
  let rec loop () =
    match Queue.peek_opt rp.rp_commits with
    | Some c when c.cm_acks >= need ->
        ignore (Queue.pop rp.rp_commits);
        deliver_entry rp c.cm_entry;
        Array.iter
          (fun f ->
            if f.rp_idx <> rp.rp_idx then
              Msgnet.send t.net ~from:rp.rp_ep f.rp_ep ~bytes:32
                (M_commit { c_uid = c.cm_entry.en_env.e_uid }))
          t.reps.(rp.rp_part);
        loop ()
    | Some _ | None -> ()
  in
  loop ()

let dispatch t rp (p : ('req, 'resp) pending) =
  let entry = { en_env = p.pn_env; en_ts = p.pn_ts } in
  Hashtbl.remove rp.rp_pending p.pn_env.e_uid;
  Hashtbl.remove rp.rp_early p.pn_env.e_uid;
  Array.iter
    (fun f ->
      if f.rp_idx <> rp.rp_idx then
        Msgnet.send t.net ~from:rp.rp_ep f.rp_ep ~bytes:(env_bytes t p.pn_env)
          (M_accept entry))
    t.reps.(rp.rp_part);
  Queue.push { cm_entry = entry; cm_acks = 0 } rp.rp_commits;
  drain_commits t rp

let rec try_dispatch t rp =
  let min_pending =
    Hashtbl.fold
      (fun _ p acc ->
        match acc with
        | None -> Some p
        | Some q ->
            if
              p.pn_ts < q.pn_ts
              || (p.pn_ts = q.pn_ts && p.pn_env.e_uid < q.pn_env.e_uid)
            then Some p
            else acc)
      rp.rp_pending None
  in
  match min_pending with
  | Some p when p.pn_final ->
      dispatch t rp p;
      try_dispatch t rp
  | Some _ | None -> ()

let maybe_finalize t rp p =
  if (not p.pn_final) && List.length p.pn_heard = List.length p.pn_env.e_dst then begin
    p.pn_final <- true;
    rp.rp_clock <- max rp.rp_clock p.pn_ts;
    try_dispatch t rp
  end

let record_proposal p ~gid ~ts =
  if not (List.mem gid p.pn_heard) then begin
    p.pn_heard <- gid :: p.pn_heard;
    p.pn_ts <- max p.pn_ts ts
  end

let on_submit t rp env =
  if Hashtbl.mem rp.rp_seen env.e_uid || Hashtbl.mem rp.rp_pending env.e_uid then ()
  else begin
    rp.rp_clock <- rp.rp_clock + 1;
    let p =
      { pn_env = env; pn_ts = rp.rp_clock; pn_heard = [ rp.rp_part ]; pn_final = false }
    in
    Hashtbl.replace rp.rp_pending env.e_uid p;
    (match Hashtbl.find_opt rp.rp_early env.e_uid with
    | Some props -> List.iter (fun (gid, ts) -> record_proposal p ~gid ~ts) props
    | None -> ());
    List.iter
      (fun gid ->
        if gid <> rp.rp_part then
          Msgnet.send t.net ~from:rp.rp_ep (leader t gid).rp_ep ~bytes:32
            (M_propose { p_uid = env.e_uid; p_gid = rp.rp_part; p_ts = p.pn_ts }))
      env.e_dst;
    maybe_finalize t rp p
  end

let on_propose t rp ~uid ~gid ~ts =
  rp.rp_clock <- max rp.rp_clock ts;
  if Hashtbl.mem rp.rp_seen uid then ()
  else
    match Hashtbl.find_opt rp.rp_pending uid with
    | Some p ->
        record_proposal p ~gid ~ts;
        maybe_finalize t rp p
    | None ->
        let props = Option.value ~default:[] (Hashtbl.find_opt rp.rp_early uid) in
        if not (List.exists (fun (g, _) -> g = gid) props) then
          Hashtbl.replace rp.rp_early uid ((gid, ts) :: props)

(* Follower: deliver accepted entries in leader order once committed. *)
let drain_follower rp =
  let rec loop () =
    match Queue.peek_opt rp.rp_uncommitted with
    | Some entry when Hashtbl.mem rp.rp_committed entry.en_env.e_uid ->
        ignore (Queue.pop rp.rp_uncommitted);
        Hashtbl.remove rp.rp_committed entry.en_env.e_uid;
        deliver_entry rp entry;
        loop ()
    | Some _ | None -> ()
  in
  loop ()

let protocol_loop t rp =
  let rec loop () =
    (match Msgnet.recv t.net rp.rp_ep with
    | M_submit env -> if is_leader rp then on_submit t rp env
    | M_propose { p_uid; p_gid; p_ts } ->
        if is_leader rp then on_propose t rp ~uid:p_uid ~gid:p_gid ~ts:p_ts
    | M_accept entry ->
        Queue.push entry rp.rp_uncommitted;
        Msgnet.send t.net ~from:rp.rp_ep (leader t rp.rp_part).rp_ep ~bytes:32
          (M_ack { a_uid = entry.en_env.e_uid });
        drain_follower rp
    | M_ack { a_uid } ->
        Queue.iter
          (fun c -> if c.cm_entry.en_env.e_uid = a_uid then c.cm_acks <- c.cm_acks + 1)
          rp.rp_commits;
        drain_commits t rp
    | M_commit { c_uid } ->
        Hashtbl.replace rp.rp_committed c_uid ();
        drain_follower rp
    | M_objects { o_uid; o_from; o_values } ->
        Hashtbl.replace rp.rp_objects (o_uid, o_from) o_values;
        Signal.broadcast rp.rp_wake
    | M_update { u_uid; u_writes } ->
        Hashtbl.replace rp.rp_updates u_uid u_writes;
        Signal.broadcast rp.rp_wake
    | M_reply _ -> ());
    loop ()
  in
  loop ()

(* {1 Execution} *)

let charge_ser t bytes = Engine.consume (bytes * t.cfg.ser_per_byte_x100 / 100)

let local_objects t rp env =
  List.filter_map
    (fun oid ->
      let mine =
        match t.app.App.placement_of oid with
        | App.Partition p -> p = rp.rp_part
        | App.Replicated -> false
      in
      match (mine, Hashtbl.find_opt rp.rp_store oid) with
      | true, Some v -> Some (oid, v)
      | true, None | false, _ -> None)
    (t.app.App.read_set env.e_payload)

let execute_here t rp entry ~moved =
  Engine.consume t.cfg.exec_overhead_ns;
  let env = entry.en_env in
  let received = Hashtbl.create 16 in
  List.iter (fun (oid, v) -> Hashtbl.replace received oid v) moved;
  let writes = ref [] in
  let ctx =
    {
      App.ctx_partition = rp.rp_part;
      ctx_tmp = Tstamp.make ~clock:entry.en_ts ~uid:env.e_uid;
      ctx_read =
        (fun oid ->
          match Hashtbl.find_opt received oid with
          | Some v -> v
          | None -> (
              Engine.consume t.cfg.read_local_ns;
              match Hashtbl.find_opt rp.rp_store oid with
              | Some v -> v
              | None ->
                  invalid_arg
                    (Printf.sprintf "Dynastar: object %d not available" (Oid.to_int oid))));
      ctx_read_opt =
        (fun oid ->
          match Hashtbl.find_opt received oid with
          | Some v -> Some v
          | None ->
              Engine.consume t.cfg.read_local_ns;
              Hashtbl.find_opt rp.rp_store oid);
      ctx_is_local = (fun _ -> true);
      ctx_write = (fun oid v -> writes := (oid, v) :: !writes);
      ctx_charge = Engine.consume;
    }
  in
  let resp = t.app.App.execute ctx env.e_payload in
  let writes = List.rev !writes in
  (* Apply local writes; collect the rest per owning partition. *)
  let remote_writes = Hashtbl.create 4 in
  List.iter
    (fun (oid, v) ->
      match t.app.App.placement_of oid with
      | App.Replicated -> invalid_arg "Dynastar: writes to replicated objects"
      | App.Partition p ->
          if p = rp.rp_part then Hashtbl.replace rp.rp_store oid v
          else
            Hashtbl.replace remote_writes p
              ((oid, v) :: Option.value ~default:[] (Hashtbl.find_opt remote_writes p)))
    writes;
  (resp, remote_writes)

let exec_loop t rp =
  let rec loop () =
    let entry = Mailbox.recv rp.rp_deliveries in
    let env = entry.en_env in
    let uid = env.e_uid in
    (match env.e_dst with
    | [ _ ] ->
        let resp, _ = execute_here t rp entry ~moved:[] in
        rp.rp_executed <- rp.rp_executed + 1;
        if is_leader rp then
          Msgnet.send t.net ~from:rp.rp_ep env.e_client
            ~bytes:(t.app.App.resp_size resp + 32)
            (M_reply { r_uid = uid; r_resp = resp })
    | dst ->
        let executor = List.hd dst in
        if rp.rp_part = executor then begin
          let others = List.filter (fun p -> p <> executor) dst in
          (* Wait for the moved objects from every other partition. *)
          Signal.wait_until rp.rp_wake (fun () ->
              List.for_all (fun p -> Hashtbl.mem rp.rp_objects (uid, p)) others);
          let moved =
            List.concat_map
              (fun p ->
                let vs = Hashtbl.find rp.rp_objects (uid, p) in
                Hashtbl.remove rp.rp_objects (uid, p);
                vs)
              others
          in
          (* Deserialize what arrived. *)
          charge_ser t (values_bytes moved);
          let resp, remote_writes = execute_here t rp entry ~moved in
          rp.rp_executed <- rp.rp_executed + 1;
          if is_leader rp then begin
            (* Ship updated objects back to their partitions. *)
            List.iter
              (fun p ->
                let ws = Option.value ~default:[] (Hashtbl.find_opt remote_writes p) in
                charge_ser t (values_bytes ws);
                Array.iter
                  (fun peer ->
                    Msgnet.send t.net ~from:rp.rp_ep peer.rp_ep
                      ~bytes:(values_bytes ws)
                      (M_update { u_uid = uid; u_writes = ws }))
                  t.reps.(p))
              others;
            Msgnet.send t.net ~from:rp.rp_ep env.e_client
              ~bytes:(t.app.App.resp_size resp + 32)
              (M_reply { r_uid = uid; r_resp = resp })
          end
        end
        else begin
          (* Ship our objects to the executor, then wait for the
             updated values before moving on. *)
          if is_leader rp then begin
            let values = local_objects t rp env in
            charge_ser t (values_bytes values);
            Array.iter
              (fun peer ->
                Msgnet.send t.net ~from:rp.rp_ep peer.rp_ep
                  ~bytes:(values_bytes values)
                  (M_objects { o_uid = uid; o_from = rp.rp_part; o_values = values }))
              t.reps.(executor)
          end;
          Signal.wait_until rp.rp_wake (fun () -> Hashtbl.mem rp.rp_updates uid);
          let ws = Hashtbl.find rp.rp_updates uid in
          Hashtbl.remove rp.rp_updates uid;
          charge_ser t (values_bytes ws);
          List.iter (fun (oid, v) -> Hashtbl.replace rp.rp_store oid v) ws;
          rp.rp_executed <- rp.rp_executed + 1
        end);
    loop ()
  in
  loop ()

let start t =
  Array.iter
    (fun row ->
      Array.iter
        (fun rp ->
          Engine.spawn t.eng (fun () -> protocol_loop t rp);
          Engine.spawn t.eng (fun () -> exec_loop t rp))
        row)
    t.reps

let new_client t ~name = { cl_ep = Msgnet.endpoint t.net ~name }

let submit t client req =
  let ep = client.cl_ep in
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  let dst = App.destinations t.app ~partitions:t.partitions req in
  let env = { e_uid = uid; e_dst = dst; e_payload = req; e_client = ep } in
  List.iter
    (fun p ->
      Msgnet.send t.net ~from:ep (leader t p).rp_ep ~bytes:(env_bytes t env)
        (M_submit env))
    dst;
  match Msgnet.recv t.net ep with
  | M_reply { r_resp; _ } -> r_resp
  | _ -> invalid_arg "Dynastar.submit: unexpected message at client"

let store_value t ~part ~idx oid = Hashtbl.find_opt t.reps.(part).(idx).rp_store oid
let executed_count t ~part ~idx = t.reps.(part).(idx).rp_executed
