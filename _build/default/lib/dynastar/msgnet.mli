(** Simulated kernel/TCP message-passing network.

    The transport under the DynaStar baseline. Unlike the RDMA fabric,
    every message costs CPU at both endpoints (syscalls, protocol
    stack, serialization — the overheads Section V-C credits for
    Heron's advantage) on top of a propagation delay and a bandwidth
    term. Delivery is reliable and per-sender FIFO. *)

open Heron_sim

type config = {
  one_way_ns : int;  (** propagation + switching delay *)
  per_byte_ns_x100 : int;  (** bandwidth term (32 = 25 Gbps) *)
  msg_cpu_ns : int;  (** CPU burned per message at sender and receiver *)
}

val default_config : config
(** 50 us one-way, 25 Gbps, 60 us of CPU per message endpoint —
    calibrated so the DynaStar baseline lands in the paper's reported
    regime (~1 ms requests, a few thousand tps per partition). *)

type 'a t
(** A network carrying messages of type ['a]. *)

type 'a endpoint

val create : Engine.t -> config -> 'a t
val endpoint : 'a t -> name:string -> 'a endpoint
val name : 'a endpoint -> string

val send : 'a t -> from:'a endpoint -> 'a endpoint -> bytes:int -> 'a -> unit
(** Send a message of [bytes] serialized size: blocks the calling fiber
    for the sender-side CPU cost, then delivers after the network
    delay. Must run in a fiber. *)

val recv : 'a t -> 'a endpoint -> 'a
(** Dequeue the next message, charging the receiver-side CPU cost.
    Blocks until one is available. *)
