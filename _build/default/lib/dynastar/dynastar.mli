(** DynaStar-style message-passing partitioned SMR (the Figure 5
    baseline).

    A faithful-in-shape reimplementation of the system Heron is
    compared against (Le et al., ICDCS'19): partitions of replicas
    ordered by a leader-based protocol over a kernel/TCP network
    ({!Msgnet}), with multi-partition requests executed by a single
    partition after the other involved partitions ship it the objects
    it needs, and updated objects shipped back — the data-movement
    rounds that dominate DynaStar's multi-partition cost.

    Simplifications (documented in DESIGN.md): the location oracle is
    static (objects never migrate between partitions, matching the
    static TPCC placement used in the evaluation), replica failover is
    not modelled (the experiments are failure-free), and the executing
    partition is the lowest-numbered involved partition.

    It runs the same unmodified {!Heron_core.App} applications as
    Heron, so the Figure 5 comparison executes identical TPCC logic on
    both systems. *)

open Heron_sim
open Heron_core

type config = {
  net : Msgnet.config;
  exec_overhead_ns : int;
      (** extra per-request execution cost vs Heron's callback
          (JVM/runtime overheads of the baseline) *)
  read_local_ns : int;  (** in-memory map access *)
  ser_per_byte_x100 : int;
      (** (de)serialization cost of moved objects, per byte *)
}

val default_config : config

type ('req, 'resp) t

val create :
  Engine.t ->
  ?config:config ->
  partitions:int ->
  replicas:int ->
  app:('req, 'resp) App.t ->
  unit ->
  ('req, 'resp) t
(** Build a deployment preloaded with the application catalog. *)

val start : ('req, 'resp) t -> unit

type ('req, 'resp) client

val new_client : ('req, 'resp) t -> name:string -> ('req, 'resp) client

val submit : ('req, 'resp) t -> ('req, 'resp) client -> 'req -> 'resp
(** Submit from a fiber and block until the executing partition's
    reply. One outstanding request per client (closed loop). *)

val store_value : ('req, 'resp) t -> part:int -> idx:int -> Oid.t -> bytes option
(** Current value of an object at one replica (tests). *)

val executed_count : ('req, 'resp) t -> part:int -> idx:int -> int
