open Heron_sim

type config = { one_way_ns : int; per_byte_ns_x100 : int; msg_cpu_ns : int }

let default_config = { one_way_ns = 50_000; per_byte_ns_x100 = 32; msg_cpu_ns = 60_000 }

type 'a endpoint = { ep_name : string; inbox : 'a Mailbox.t }
type 'a t = { eng : Engine.t; cfg : config }

let create eng cfg = { eng; cfg }
let endpoint _ ~name = { ep_name = name; inbox = Mailbox.create () }
let name ep = ep.ep_name

let send t ~from dst ~bytes msg =
  ignore from;
  Engine.consume t.cfg.msg_cpu_ns;
  let delay = t.cfg.one_way_ns + (bytes * t.cfg.per_byte_ns_x100 / 100) in
  Engine.schedule ~delay t.eng (fun () -> Mailbox.send dst.inbox msg)

let recv t ep =
  let msg = Mailbox.recv ep.inbox in
  Engine.consume t.cfg.msg_cpu_ns;
  msg
