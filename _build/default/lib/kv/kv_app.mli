(** A partitioned key-value / bank application on Heron.

    The simplest realistic tenant of the core library: integer-valued
    registers spread over partitions by key modulo, all stored as
    registered (remotely readable) objects. Used by the quickstart and
    bank examples and — because its invariants are easy to state — by
    the consistency test-suite:

    - [Incr_all ks] atomically increments every key in [ks] (possibly
      spanning partitions);
    - [Transfer] moves an amount between two keys, conserving the total;
    - [Read_all ks] returns a consistent snapshot of [ks].

    Under linearizability, keys incremented together are always read
    equal, and transfers never change the sum — precisely the
    guarantees Phases 2 and 4 of the paper exist to protect
    (Figure 3). *)

open Heron_core

type req =
  | Get of int
  | Put of int * int64
  | Add of int * int64  (** read-modify-write increment, returns new value *)
  | Transfer of { src : int; dst : int; amount : int64 }
  | Incr_all of int list
  | Read_all of int list

type resp =
  | Value of int64
  | Values of (int * int64) list  (** key, value — in request order *)
  | Ack

val pp_resp : Format.formatter -> resp -> unit

val app : keys:int -> partitions:int -> init:int64 -> (req, resp) App.t
(** The Heron application: [keys] registers initialised to [init], key
    [k] homed in partition [k mod partitions]. *)

val oid_of_key : int -> Oid.t
val partition_of_key : partitions:int -> int -> int
