lib/kv/kv_app.ml: App Bytes Format Heron_core Int64 List Oid Versioned_store
