lib/kv/kv_app.mli: App Format Heron_core Oid
