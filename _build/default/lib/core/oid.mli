(** Object identifiers.

    Heron tracks application state as named objects (a TPCC row, a
    key-value pair, ...). An oid is an opaque 63-bit integer;
    applications encode their own key structure into it (see
    [Heron_tpcc.Oid_codec] for a worked example). *)

type t = int

val of_int : int -> t
(** Raises [Invalid_argument] on negative ids. *)

val to_int : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
