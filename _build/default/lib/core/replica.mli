(** A Heron replica: the coordination, execution and state-transfer
    logic of Algorithms 1-3.

    Replicas are created and wired together by {!System}; the functions
    here are exposed for the test suite and the experiment harness.

    Lifecycle: {!create} every replica of the deployment, then
    {!set_directory} with the full replica matrix (replicas address each
    other's coordination memory, state-transfer memory and object cells
    directly, as RDMA peers do after connection setup), then {!start}.
    Deliveries from atomic multicast are pushed into {!inbox}. *)

open Heron_sim
open Heron_multicast

type ('req, 'resp) request = {
  rq_payload : 'req;
  rq_dst : int list;  (** destination partitions, sorted *)
  rq_submitted : Time_ns.t;  (** client submit instant (latency metrics) *)
  rq_client_node : Heron_rdma.Fabric.node;
  rq_reply : part:int -> 'resp -> unit;
      (** invoked (on a replica fiber, after the reply transfer) at most
          once per partition *)
}

type stats = {
  st_ordering : Heron_stats.Sample_set.t;
      (** client-submit to delivery, per executed request *)
  st_coord : Heron_stats.Sample_set.t;
      (** total Phase 2 + Phase 4 wait, per multi-partition request *)
  st_exec : Heron_stats.Sample_set.t;  (** execution time per request *)
  mutable st_executed : int;
  mutable st_skipped : int;  (** deliveries skipped (state transfer) *)
  mutable st_multi : int;  (** executed multi-partition requests *)
  mutable st_delayed : int;
      (** Table I: multi-partition requests for which, at the instant
          the majority condition held, some replica was still missing *)
  st_delay : Heron_stats.Sample_set.t;
      (** Table I: extra wait from majority until all present *)
  mutable st_laggers : int;  (** times this replica found itself lagging *)
  mutable st_transfers_served : int;  (** times it acted as donor *)
}

type ('req, 'resp) t

val create :
  cfg:Config.t ->
  app:('req, 'resp) App.t ->
  part:int ->
  idx:int ->
  node:Heron_rdma.Fabric.node ->
  store_region_size:int ->
  ('req, 'resp) t

val set_directory : ('req, 'resp) t -> ('req, 'resp) t array array -> unit
(** [set_directory r all] gives [r] the full matrix
    [all.(partition).(replica_index)]; must include [r] itself. *)

val start : ('req, 'resp) t -> unit
(** Spawn the replica's processes: the execution loop and the
    state-transfer handler. *)

val inbox : ('req, 'resp) t -> ('req, 'resp) request Ramcast.delivery Mailbox.t
val store : ('req, 'resp) t -> Versioned_store.t
val node : ('req, 'resp) t -> Heron_rdma.Fabric.node
val part : ('req, 'resp) t -> int
val idx : ('req, 'resp) t -> int
val last_req : ('req, 'resp) t -> Tstamp.t
val stats : ('req, 'resp) t -> stats

val clear_stats : ('req, 'resp) t -> unit
(** Reset all counters and samples (end of a warmup window). *)

val force_state_transfer : ('req, 'resp) t -> failed_tmp:Tstamp.t -> unit
(** Run the lagger side of Algorithm 3 as if a read had just failed at
    [failed_tmp]; blocks the calling fiber until the transfer
    completes. For tests and the Figure 8 experiment. *)

val update_log : ('req, 'resp) t -> Update_log.t
(** The replica's update log (tests and the Figure 8 experiment). *)

val inject_exec_delay : ('req, 'resp) t -> Time_ns.t -> unit
(** Failure injection: add a fixed delay to every request this replica
    executes, making it slower than its peers. Used to manufacture
    laggers (paper Section V-E). *)

val set_tracer : ('req, 'resp) t -> Trace.t -> unit
(** Attach a span tracer: the replica records per-request spans
    ([ordering], [phase2], [execute], [phase4], [state-transfer]) with
    the request timestamp as an attribute. *)
