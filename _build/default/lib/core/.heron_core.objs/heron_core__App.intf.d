lib/core/app.mli: Heron_multicast Heron_sim Oid Time_ns Versioned_store
