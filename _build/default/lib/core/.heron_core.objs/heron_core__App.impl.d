lib/core/app.ml: Heron_multicast Heron_sim List Oid Time_ns Versioned_store
