lib/core/update_log.ml: Hashtbl Heron_multicast List Oid Queue Tstamp
