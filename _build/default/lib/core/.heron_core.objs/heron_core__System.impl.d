lib/core/system.ml: App Array Config Engine Fabric Heron_multicast Heron_rdma Heron_sim Ivar List Mailbox Printf Ramcast Replica Tstamp Versioned_store
