lib/core/system.mli: App Config Engine Heron_multicast Heron_rdma Heron_sim Replica
