lib/core/config.mli: Heron_multicast Heron_rdma
