lib/core/update_log.mli: Heron_multicast Oid Tstamp
