lib/core/versioned_store.ml: Bytes Fabric Hashtbl Heron_multicast Heron_rdma Int64 List Memory Oid Tstamp
