lib/core/coord_mem.ml: Bytes Fabric Heron_multicast Heron_rdma Int64 Memory Tstamp
