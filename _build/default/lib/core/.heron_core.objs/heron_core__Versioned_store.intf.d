lib/core/versioned_store.mli: Heron_multicast Heron_rdma Oid Tstamp
