lib/core/replica.mli: App Config Heron_multicast Heron_rdma Heron_sim Heron_stats Mailbox Ramcast Time_ns Trace Tstamp Update_log Versioned_store
