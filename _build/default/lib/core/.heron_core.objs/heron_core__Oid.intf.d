lib/core/oid.mli: Format
