lib/core/coord_mem.mli: Heron_multicast Heron_rdma Tstamp
