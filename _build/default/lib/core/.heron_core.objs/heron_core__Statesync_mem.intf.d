lib/core/statesync_mem.mli: Heron_multicast Heron_rdma Tstamp
