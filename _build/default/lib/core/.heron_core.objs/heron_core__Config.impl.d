lib/core/config.ml: Heron_multicast Heron_rdma
