lib/core/oid.ml: Format Hashtbl Int
