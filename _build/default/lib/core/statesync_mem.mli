(** State Transfer Memory (paper Section III-A, Algorithm 3).

    Each replica owns an RDMA-registered array with one slot per
    replica of its partition. Slot [j] carries lagger [j]'s transfer
    state: [req_tmp], the timestamp of the request the lagger failed to
    execute, and [status] (0 = idle, 1 = transfer requested). A lagger
    writes [(tmp, 1)] into its slot in every replica's memory; the
    donor, once done, writes [(last_req, 0)] back everywhere, telling
    the lagger which prefix is now reflected in its state. *)

open Heron_multicast

type t

val create : Heron_rdma.Fabric.node -> replicas:int -> t

val slot_bytes : int
(** 16. *)

val slot_addr : t -> idx:int -> Heron_rdma.Memory.addr
(** Address of lagger [idx]'s slot in this memory. *)

val read_slot : t -> idx:int -> Tstamp.t * int
(** [(req_tmp, status)] of a slot in this (local) memory. *)

val write_local : t -> idx:int -> Tstamp.t -> status:int -> unit

val encode_slot : Tstamp.t -> status:int -> bytes
