open Heron_rdma
open Heron_multicast

type t = { sm_node : Fabric.node; region : Memory.region }

let slot_bytes = 16

let create node ~replicas =
  { sm_node = node; region = Fabric.alloc_region node ~size:(replicas * slot_bytes) }

let slot_addr t ~idx =
  Memory.addr ~node:(Fabric.node_id t.sm_node) t.region ~off:(idx * slot_bytes)

let read_slot t ~idx =
  let off = idx * slot_bytes in
  let tmp = Tstamp.of_int64 (Memory.get_i64 t.region ~off) in
  let status = Int64.to_int (Memory.get_i64 t.region ~off:(off + 8)) in
  (tmp, status)

let write_local t ~idx tmp ~status =
  let off = idx * slot_bytes in
  Memory.set_i64 t.region ~off (Tstamp.to_int64 tmp);
  Memory.set_i64 t.region ~off:(off + 8) (Int64.of_int status)

let encode_slot tmp ~status =
  let b = Bytes.create slot_bytes in
  Bytes.set_int64_le b 0 (Tstamp.to_int64 tmp);
  Bytes.set_int64_le b 8 (Int64.of_int status);
  b
