type t = int

let of_int i =
  if i < 0 then invalid_arg "Oid.of_int: negative id";
  i

let to_int t = t
let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let pp = Format.pp_print_int
