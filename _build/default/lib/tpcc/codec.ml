type writer = Buffer.t

let writer () = Buffer.create 128
let w_u8 b v = Buffer.add_uint8 b v
let w_u16 b v = Buffer.add_uint16_le b v
let w_i32 b v = Buffer.add_int32_le b (Int32.of_int v)
let w_i64 b v = Buffer.add_int64_le b (Int64.of_int v)
let w_bool b v = Buffer.add_uint8 b (if v then 1 else 0)

let w_string b s =
  Buffer.add_uint16_le b (String.length s);
  Buffer.add_string b s

let w_opt_i32 b = function
  | None -> w_bool b false
  | Some v ->
      w_bool b true;
      w_i32 b v

let contents b = Buffer.to_bytes b

type reader = { buf : bytes; mutable pos : int }

let reader buf = { buf; pos = 0 }

let r_u8 r =
  let v = Bytes.get_uint8 r.buf r.pos in
  r.pos <- r.pos + 1;
  v

let r_u16 r =
  let v = Bytes.get_uint16_le r.buf r.pos in
  r.pos <- r.pos + 2;
  v

let r_i32 r =
  let v = Int32.to_int (Bytes.get_int32_le r.buf r.pos) in
  r.pos <- r.pos + 4;
  v

let r_i64 r =
  let v = Int64.to_int (Bytes.get_int64_le r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let r_bool r = r_u8 r = 1

let r_string r =
  let len = r_u16 r in
  let s = Bytes.sub_string r.buf r.pos len in
  r.pos <- r.pos + len;
  s

let r_opt_i32 r = if r_bool r then Some (r_i32 r) else None

let expect_end r =
  if r.pos <> Bytes.length r.buf then
    failwith
      (Printf.sprintf "Codec.expect_end: %d trailing bytes" (Bytes.length r.buf - r.pos))
