open Heron_core

type key =
  | Warehouse of int
  | District of int * int
  | Customer of int * int * int
  | History of int * int * int
  | Order of int * int * int
  | New_order of int * int * int
  | Order_line of int * int * int * int
  | Item of int
  | Stock of int * int

let pack ~tag ~w ~d ~a ~b =
  if tag < 1 || tag > 9 then invalid_arg "Oid_codec: bad tag";
  if w < 0 || w >= 1 lsl 12 then invalid_arg "Oid_codec: warehouse out of range";
  if d < 0 || d >= 1 lsl 8 then invalid_arg "Oid_codec: district out of range";
  if a < 0 || a >= 1 lsl 30 then invalid_arg "Oid_codec: field out of range";
  if b < 0 || b >= 1 lsl 8 then invalid_arg "Oid_codec: line out of range";
  Oid.of_int
    ((((((((tag lsl 12) lor w) lsl 8) lor d) lsl 30) lor a) lsl 8) lor b)

let encode = function
  | Warehouse w -> pack ~tag:1 ~w ~d:0 ~a:0 ~b:0
  | District (w, d) -> pack ~tag:2 ~w ~d ~a:0 ~b:0
  | Customer (w, d, c) -> pack ~tag:3 ~w ~d ~a:c ~b:0
  | History (w, d, u) -> pack ~tag:4 ~w ~d ~a:u ~b:0
  | Order (w, d, o) -> pack ~tag:5 ~w ~d ~a:o ~b:0
  | New_order (w, d, o) -> pack ~tag:6 ~w ~d ~a:o ~b:0
  | Order_line (w, d, o, n) -> pack ~tag:7 ~w ~d ~a:o ~b:n
  | Item i -> pack ~tag:8 ~w:0 ~d:0 ~a:i ~b:0
  | Stock (w, i) -> pack ~tag:9 ~w ~d:0 ~a:i ~b:0

let decode oid =
  let v = Oid.to_int oid in
  let b = v land 0xff in
  let a = (v lsr 8) land ((1 lsl 30) - 1) in
  let d = (v lsr 38) land 0xff in
  let w = (v lsr 46) land 0xfff in
  let tag = v lsr 58 in
  match tag with
  | 1 -> Warehouse w
  | 2 -> District (w, d)
  | 3 -> Customer (w, d, a)
  | 4 -> History (w, d, a)
  | 5 -> Order (w, d, a)
  | 6 -> New_order (w, d, a)
  | 7 -> Order_line (w, d, a, b)
  | 8 -> Item a
  | 9 -> Stock (w, a)
  | _ -> invalid_arg "Oid_codec.decode: bad tag"

let home_warehouse oid =
  match decode oid with
  | Warehouse _ | Item _ -> None
  | District (w, _)
  | Customer (w, _, _)
  | History (w, _, _)
  | Order (w, _, _)
  | New_order (w, _, _)
  | Order_line (w, _, _, _)
  | Stock (w, _) ->
      Some w

let is_registered oid =
  match decode oid with
  | Stock _ | Customer _ -> true
  | Warehouse _ | District _ | History _ | Order _ | New_order _ | Order_line _
  | Item _ ->
      false
