type warehouse = {
  w_id : int;
  w_name : string;
  w_street_1 : string;
  w_street_2 : string;
  w_city : string;
  w_state : string;
  w_zip : string;
  w_tax : int;
  w_ytd : int;
}
[@@deriving show, eq]

type district = {
  d_id : int;
  d_w_id : int;
  d_name : string;
  d_street_1 : string;
  d_street_2 : string;
  d_city : string;
  d_state : string;
  d_zip : string;
  d_tax : int;
  d_ytd : int;
  d_next_o_id : int;
  d_oldest_undelivered : int;
}
[@@deriving show, eq]

type customer = {
  c_id : int;
  c_d_id : int;
  c_w_id : int;
  c_first : string;
  c_middle : string;
  c_last : string;
  c_street_1 : string;
  c_street_2 : string;
  c_city : string;
  c_state : string;
  c_zip : string;
  c_phone : string;
  c_since : int;
  c_credit : string;
  c_credit_lim : int;
  c_discount : int;
  c_balance : int;
  c_ytd_payment : int;
  c_payment_cnt : int;
  c_delivery_cnt : int;
  c_data : string;
  c_last_order : int;
}
[@@deriving show, eq]

type history = {
  h_c_id : int;
  h_c_d_id : int;
  h_c_w_id : int;
  h_d_id : int;
  h_w_id : int;
  h_date : int;
  h_amount : int;
  h_data : string;
}
[@@deriving show, eq]

type order = {
  o_id : int;
  o_d_id : int;
  o_w_id : int;
  o_c_id : int;
  o_entry_d : int;
  o_carrier_id : int option;
  o_ol_cnt : int;
  o_all_local : bool;
}
[@@deriving show, eq]

type new_order = { no_o_id : int; no_d_id : int; no_w_id : int } [@@deriving show, eq]

type order_line = {
  ol_o_id : int;
  ol_d_id : int;
  ol_w_id : int;
  ol_number : int;
  ol_i_id : int;
  ol_supply_w_id : int;
  ol_delivery_d : int option;
  ol_quantity : int;
  ol_amount : int;
  ol_dist_info : string;
}
[@@deriving show, eq]

type item = { i_id : int; i_im_id : int; i_name : string; i_price : int; i_data : string }
[@@deriving show, eq]

type stock = {
  s_i_id : int;
  s_w_id : int;
  s_quantity : int;
  s_dists : string array;
  s_ytd : int;
  s_order_cnt : int;
  s_remote_cnt : int;
  s_data : string;
}
[@@deriving show, eq]

open Codec

let encode_warehouse w =
  let b = writer () in
  w_i32 b w.w_id;
  w_string b w.w_name;
  w_string b w.w_street_1;
  w_string b w.w_street_2;
  w_string b w.w_city;
  w_string b w.w_state;
  w_string b w.w_zip;
  w_i32 b w.w_tax;
  w_i64 b w.w_ytd;
  contents b

let decode_warehouse raw =
  let r = reader raw in
  let w_id = r_i32 r in
  let w_name = r_string r in
  let w_street_1 = r_string r in
  let w_street_2 = r_string r in
  let w_city = r_string r in
  let w_state = r_string r in
  let w_zip = r_string r in
  let w_tax = r_i32 r in
  let w_ytd = r_i64 r in
  expect_end r;
  { w_id; w_name; w_street_1; w_street_2; w_city; w_state; w_zip; w_tax; w_ytd }

let encode_district d =
  let b = writer () in
  w_i32 b d.d_id;
  w_i32 b d.d_w_id;
  w_string b d.d_name;
  w_string b d.d_street_1;
  w_string b d.d_street_2;
  w_string b d.d_city;
  w_string b d.d_state;
  w_string b d.d_zip;
  w_i32 b d.d_tax;
  w_i64 b d.d_ytd;
  w_i32 b d.d_next_o_id;
  w_i32 b d.d_oldest_undelivered;
  contents b

let decode_district raw =
  let r = reader raw in
  let d_id = r_i32 r in
  let d_w_id = r_i32 r in
  let d_name = r_string r in
  let d_street_1 = r_string r in
  let d_street_2 = r_string r in
  let d_city = r_string r in
  let d_state = r_string r in
  let d_zip = r_string r in
  let d_tax = r_i32 r in
  let d_ytd = r_i64 r in
  let d_next_o_id = r_i32 r in
  let d_oldest_undelivered = r_i32 r in
  expect_end r;
  {
    d_id; d_w_id; d_name; d_street_1; d_street_2; d_city; d_state; d_zip; d_tax;
    d_ytd; d_next_o_id; d_oldest_undelivered;
  }

let encode_customer c =
  let b = writer () in
  w_i32 b c.c_id;
  w_i32 b c.c_d_id;
  w_i32 b c.c_w_id;
  w_string b c.c_first;
  w_string b c.c_middle;
  w_string b c.c_last;
  w_string b c.c_street_1;
  w_string b c.c_street_2;
  w_string b c.c_city;
  w_string b c.c_state;
  w_string b c.c_zip;
  w_string b c.c_phone;
  w_i64 b c.c_since;
  w_string b c.c_credit;
  w_i64 b c.c_credit_lim;
  w_i32 b c.c_discount;
  w_i64 b c.c_balance;
  w_i64 b c.c_ytd_payment;
  w_i32 b c.c_payment_cnt;
  w_i32 b c.c_delivery_cnt;
  w_string b c.c_data;
  w_i32 b c.c_last_order;
  contents b

let decode_customer raw =
  let r = reader raw in
  let c_id = r_i32 r in
  let c_d_id = r_i32 r in
  let c_w_id = r_i32 r in
  let c_first = r_string r in
  let c_middle = r_string r in
  let c_last = r_string r in
  let c_street_1 = r_string r in
  let c_street_2 = r_string r in
  let c_city = r_string r in
  let c_state = r_string r in
  let c_zip = r_string r in
  let c_phone = r_string r in
  let c_since = r_i64 r in
  let c_credit = r_string r in
  let c_credit_lim = r_i64 r in
  let c_discount = r_i32 r in
  let c_balance = r_i64 r in
  let c_ytd_payment = r_i64 r in
  let c_payment_cnt = r_i32 r in
  let c_delivery_cnt = r_i32 r in
  let c_data = r_string r in
  let c_last_order = r_i32 r in
  expect_end r;
  {
    c_id; c_d_id; c_w_id; c_first; c_middle; c_last; c_street_1; c_street_2;
    c_city; c_state; c_zip; c_phone; c_since; c_credit; c_credit_lim; c_discount;
    c_balance; c_ytd_payment; c_payment_cnt; c_delivery_cnt; c_data; c_last_order;
  }

let encode_history h =
  let b = writer () in
  w_i32 b h.h_c_id;
  w_i32 b h.h_c_d_id;
  w_i32 b h.h_c_w_id;
  w_i32 b h.h_d_id;
  w_i32 b h.h_w_id;
  w_i64 b h.h_date;
  w_i64 b h.h_amount;
  w_string b h.h_data;
  contents b

let decode_history raw =
  let r = reader raw in
  let h_c_id = r_i32 r in
  let h_c_d_id = r_i32 r in
  let h_c_w_id = r_i32 r in
  let h_d_id = r_i32 r in
  let h_w_id = r_i32 r in
  let h_date = r_i64 r in
  let h_amount = r_i64 r in
  let h_data = r_string r in
  expect_end r;
  { h_c_id; h_c_d_id; h_c_w_id; h_d_id; h_w_id; h_date; h_amount; h_data }

let encode_order o =
  let b = writer () in
  w_i32 b o.o_id;
  w_i32 b o.o_d_id;
  w_i32 b o.o_w_id;
  w_i32 b o.o_c_id;
  w_i64 b o.o_entry_d;
  w_opt_i32 b o.o_carrier_id;
  w_u8 b o.o_ol_cnt;
  w_bool b o.o_all_local;
  contents b

let decode_order raw =
  let r = reader raw in
  let o_id = r_i32 r in
  let o_d_id = r_i32 r in
  let o_w_id = r_i32 r in
  let o_c_id = r_i32 r in
  let o_entry_d = r_i64 r in
  let o_carrier_id = r_opt_i32 r in
  let o_ol_cnt = r_u8 r in
  let o_all_local = r_bool r in
  expect_end r;
  { o_id; o_d_id; o_w_id; o_c_id; o_entry_d; o_carrier_id; o_ol_cnt; o_all_local }

let encode_new_order n =
  let b = writer () in
  w_i32 b n.no_o_id;
  w_i32 b n.no_d_id;
  w_i32 b n.no_w_id;
  contents b

let decode_new_order raw =
  let r = reader raw in
  let no_o_id = r_i32 r in
  let no_d_id = r_i32 r in
  let no_w_id = r_i32 r in
  expect_end r;
  { no_o_id; no_d_id; no_w_id }

let encode_order_line ol =
  let b = writer () in
  w_i32 b ol.ol_o_id;
  w_i32 b ol.ol_d_id;
  w_i32 b ol.ol_w_id;
  w_u8 b ol.ol_number;
  w_i32 b ol.ol_i_id;
  w_i32 b ol.ol_supply_w_id;
  w_opt_i32 b ol.ol_delivery_d;
  w_u8 b ol.ol_quantity;
  w_i64 b ol.ol_amount;
  w_string b ol.ol_dist_info;
  contents b

let decode_order_line raw =
  let r = reader raw in
  let ol_o_id = r_i32 r in
  let ol_d_id = r_i32 r in
  let ol_w_id = r_i32 r in
  let ol_number = r_u8 r in
  let ol_i_id = r_i32 r in
  let ol_supply_w_id = r_i32 r in
  let ol_delivery_d = r_opt_i32 r in
  let ol_quantity = r_u8 r in
  let ol_amount = r_i64 r in
  let ol_dist_info = r_string r in
  expect_end r;
  {
    ol_o_id; ol_d_id; ol_w_id; ol_number; ol_i_id; ol_supply_w_id; ol_delivery_d;
    ol_quantity; ol_amount; ol_dist_info;
  }

let encode_item i =
  let b = writer () in
  w_i32 b i.i_id;
  w_i32 b i.i_im_id;
  w_string b i.i_name;
  w_i64 b i.i_price;
  w_string b i.i_data;
  contents b

let decode_item raw =
  let r = reader raw in
  let i_id = r_i32 r in
  let i_im_id = r_i32 r in
  let i_name = r_string r in
  let i_price = r_i64 r in
  let i_data = r_string r in
  expect_end r;
  { i_id; i_im_id; i_name; i_price; i_data }

let encode_stock s =
  let b = writer () in
  w_i32 b s.s_i_id;
  w_i32 b s.s_w_id;
  w_i32 b s.s_quantity;
  w_u8 b (Array.length s.s_dists);
  Array.iter (w_string b) s.s_dists;
  w_i64 b s.s_ytd;
  w_i32 b s.s_order_cnt;
  w_i32 b s.s_remote_cnt;
  w_string b s.s_data;
  contents b

let decode_stock raw =
  let r = reader raw in
  let s_i_id = r_i32 r in
  let s_w_id = r_i32 r in
  let s_quantity = r_i32 r in
  let n = r_u8 r in
  let s_dists = Array.init n (fun _ -> r_string r) in
  let s_ytd = r_i64 r in
  let s_order_cnt = r_i32 r in
  let s_remote_cnt = r_i32 r in
  let s_data = r_string r in
  expect_end r;
  { s_i_id; s_w_id; s_quantity; s_dists; s_ytd; s_order_cnt; s_remote_cnt; s_data }

(* Capacities sized to the encoders above with worst-case string
   lengths used by the generator. *)
let stock_cap = 400
let customer_cap = 900
