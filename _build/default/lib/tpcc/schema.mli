(** TPCC row types and their byte encodings.

    All nine TPC-C tables, with representative column sets and realistic
    serialized sizes (a stock row is ~310 B, a customer row ~700 B, as
    in the paper's prototype). Monetary amounts are integer cents to
    keep replica execution bit-deterministic. Every row type has
    [encode_x : x -> bytes] and [decode_x : bytes -> x] with
    [decode_x (encode_x r) = r]. *)

type warehouse = {
  w_id : int;
  w_name : string;
  w_street_1 : string;
  w_street_2 : string;
  w_city : string;
  w_state : string;
  w_zip : string;
  w_tax : int;  (** basis points *)
  w_ytd : int;  (** cents *)
}
[@@deriving show, eq]

type district = {
  d_id : int;
  d_w_id : int;
  d_name : string;
  d_street_1 : string;
  d_street_2 : string;
  d_city : string;
  d_state : string;
  d_zip : string;
  d_tax : int;
  d_ytd : int;
  d_next_o_id : int;
  d_oldest_undelivered : int;
      (** head of the new-order queue; delivery consumes from here
          (index object, replaces a table scan) *)
}
[@@deriving show, eq]

type customer = {
  c_id : int;
  c_d_id : int;
  c_w_id : int;
  c_first : string;
  c_middle : string;
  c_last : string;
  c_street_1 : string;
  c_street_2 : string;
  c_city : string;
  c_state : string;
  c_zip : string;
  c_phone : string;
  c_since : int;
  c_credit : string;
  c_credit_lim : int;
  c_discount : int;  (** basis points *)
  c_balance : int;
  c_ytd_payment : int;
  c_payment_cnt : int;
  c_delivery_cnt : int;
  c_data : string;
  c_last_order : int;  (** most recent order id, 0 if none (index) *)
}
[@@deriving show, eq]

type history = {
  h_c_id : int;
  h_c_d_id : int;
  h_c_w_id : int;
  h_d_id : int;
  h_w_id : int;
  h_date : int;
  h_amount : int;
  h_data : string;
}
[@@deriving show, eq]

type order = {
  o_id : int;
  o_d_id : int;
  o_w_id : int;
  o_c_id : int;
  o_entry_d : int;
  o_carrier_id : int option;
  o_ol_cnt : int;
  o_all_local : bool;
}
[@@deriving show, eq]

type new_order = { no_o_id : int; no_d_id : int; no_w_id : int } [@@deriving show, eq]

type order_line = {
  ol_o_id : int;
  ol_d_id : int;
  ol_w_id : int;
  ol_number : int;
  ol_i_id : int;
  ol_supply_w_id : int;
  ol_delivery_d : int option;
  ol_quantity : int;
  ol_amount : int;
  ol_dist_info : string;
}
[@@deriving show, eq]

type item = { i_id : int; i_im_id : int; i_name : string; i_price : int; i_data : string }
[@@deriving show, eq]

type stock = {
  s_i_id : int;
  s_w_id : int;
  s_quantity : int;
  s_dists : string array;  (** 10 district infos of 24 chars *)
  s_ytd : int;
  s_order_cnt : int;
  s_remote_cnt : int;
  s_data : string;
}
[@@deriving show, eq]

val encode_warehouse : warehouse -> bytes
val decode_warehouse : bytes -> warehouse
val encode_district : district -> bytes
val decode_district : bytes -> district
val encode_customer : customer -> bytes
val decode_customer : bytes -> customer
val encode_history : history -> bytes
val decode_history : bytes -> history
val encode_order : order -> bytes
val decode_order : bytes -> order
val encode_new_order : new_order -> bytes
val decode_new_order : bytes -> new_order
val encode_order_line : order_line -> bytes
val decode_order_line : bytes -> order_line
val encode_item : item -> bytes
val decode_item : bytes -> item
val encode_stock : stock -> bytes
val decode_stock : bytes -> stock

val stock_cap : int
(** Registered-cell capacity for a stock row. *)

val customer_cap : int
(** Registered-cell capacity for a customer row. *)
