(** TPCC database population and standard random helpers.

    Population is deterministic given the seed, so every replica of a
    partition (and every run of an experiment) loads the same
    database. *)

open Heron_core

val catalog : scale:Scale.t -> seed:int -> App.obj_spec list
(** The initial database for all warehouses: replicated Warehouse and
    Item rows, and per-warehouse District / Customer / Stock rows plus
    [init_orders_per_district] delivered orders with 5 lines each.
    Stock and Customer go into the registered (serialized) store;
    everything else is local (Section IV-A). *)

val nurand : Random.State.t -> a:int -> x:int -> y:int -> int
(** TPC-C's non-uniform random distribution NURand(A, x, y) with the
    run constant C fixed to 123. *)

val rand_range : Random.State.t -> int -> int -> int
(** Uniform integer in [lo, hi], inclusive. *)

(** {1 Row constructors} (exposed for tests and the reference
    implementation) *)

val make_warehouse : int -> Schema.warehouse
val make_district : w:int -> d:int -> next_o_id:int -> Schema.district
val make_customer : w:int -> d:int -> c:int -> last_order:int -> Schema.customer
val make_item : int -> Schema.item
val make_stock : w:int -> i:int -> Schema.stock
