type profile = {
  pct_new_order : int;
  pct_payment : int;
  pct_order_status : int;
  pct_delivery : int;
  pct_stock_level : int;
  remote_item_pct : int;
  remote_customer_pct : int;
}

let standard =
  {
    pct_new_order = 45;
    pct_payment = 43;
    pct_order_status = 4;
    pct_delivery = 4;
    pct_stock_level = 4;
    remote_item_pct = 1;
    remote_customer_pct = 15;
  }

let local_only = { standard with remote_item_pct = 0; remote_customer_pct = 0 }

let other_warehouse ~scale ~rng ~home_w =
  let n = scale.Scale.warehouses in
  if n <= 1 then home_w
  else begin
    let w = Gen.rand_range rng 1 (n - 1) in
    if w >= home_w then w + 1 else w
  end

let gen_lines profile ~scale ~rng ~home_w ~count =
  List.init count (fun _ ->
      let li_i = Gen.nurand rng ~a:8191 ~x:1 ~y:scale.Scale.items in
      let remote =
        scale.Scale.warehouses > 1
        && Gen.rand_range rng 1 100 <= profile.remote_item_pct
      in
      let li_supply_w =
        if remote then other_warehouse ~scale ~rng ~home_w else home_w
      in
      { Tx.li_i; li_supply_w; li_qty = Gen.rand_range rng 1 10 })

let gen_new_order profile ~scale ~rng ~home_w =
  let d = Gen.rand_range rng 1 scale.Scale.districts in
  let c = Gen.nurand rng ~a:1023 ~x:1 ~y:scale.Scale.customers_per_district in
  let count = Gen.rand_range rng 5 15 in
  Tx.New_order
    {
      w = home_w;
      d;
      c;
      lines = gen_lines profile ~scale ~rng ~home_w ~count;
      entry_d = Gen.rand_range rng 1 1_000_000;
    }

let gen_payment profile ~scale ~rng ~home_w =
  let d = Gen.rand_range rng 1 scale.Scale.districts in
  let remote =
    scale.Scale.warehouses > 1
    && Gen.rand_range rng 1 100 <= profile.remote_customer_pct
  in
  let c_w = if remote then other_warehouse ~scale ~rng ~home_w else home_w in
  let c_d = Gen.rand_range rng 1 scale.Scale.districts in
  let c = Gen.nurand rng ~a:1023 ~x:1 ~y:scale.Scale.customers_per_district in
  Tx.Payment
    {
      w = home_w;
      d;
      c_w;
      c_d;
      c;
      amount = Gen.rand_range rng 100 500_000;
      date = Gen.rand_range rng 1 1_000_000;
    }

let gen_order_status ~scale ~rng ~home_w =
  Tx.Order_status
    {
      w = home_w;
      d = Gen.rand_range rng 1 scale.Scale.districts;
      c = Gen.nurand rng ~a:1023 ~x:1 ~y:scale.Scale.customers_per_district;
    }

let gen_delivery ~rng ~home_w =
  Tx.Delivery
    {
      w = home_w;
      carrier = Gen.rand_range rng 1 10;
      date = Gen.rand_range rng 1 1_000_000;
    }

let gen_stock_level ~scale ~rng ~home_w =
  Tx.Stock_level
    {
      w = home_w;
      d = Gen.rand_range rng 1 scale.Scale.districts;
      threshold = Gen.rand_range rng 10 20;
    }

let gen_of_kind kind profile ~scale ~rng ~home_w =
  match kind with
  | `New_order -> gen_new_order profile ~scale ~rng ~home_w
  | `Payment -> gen_payment profile ~scale ~rng ~home_w
  | `Order_status -> gen_order_status ~scale ~rng ~home_w
  | `Delivery -> gen_delivery ~rng ~home_w
  | `Stock_level -> gen_stock_level ~scale ~rng ~home_w

let gen profile ~scale ~rng ~home_w =
  let p = profile in
  if
    p.pct_new_order + p.pct_payment + p.pct_order_status + p.pct_delivery
    + p.pct_stock_level
    <> 100
  then invalid_arg "Workload.gen: mix must sum to 100";
  let roll = Gen.rand_range rng 1 100 in
  let kind =
    if roll <= p.pct_new_order then `New_order
    else if roll <= p.pct_new_order + p.pct_payment then `Payment
    else if roll <= p.pct_new_order + p.pct_payment + p.pct_order_status then
      `Order_status
    else if
      roll <= p.pct_new_order + p.pct_payment + p.pct_order_status + p.pct_delivery
    then `Delivery
    else `Stock_level
  in
  gen_of_kind kind profile ~scale ~rng ~home_w

let gen_new_order_pinned ~scale ~rng ~warehouses =
  match warehouses with
  | [] -> invalid_arg "Workload.gen_new_order_pinned: no warehouses"
  | home_w :: _ ->
      let d = Gen.rand_range rng 1 scale.Scale.districts in
      let c = Gen.nurand rng ~a:1023 ~x:1 ~y:scale.Scale.customers_per_district in
      let base = max 8 (List.length warehouses) in
      (* One line per pinned warehouse, the rest from home. *)
      let pinned =
        List.map
          (fun w ->
            {
              Tx.li_i = Gen.nurand rng ~a:8191 ~x:1 ~y:scale.Scale.items;
              li_supply_w = w;
              li_qty = Gen.rand_range rng 1 10;
            })
          warehouses
      in
      let extra =
        List.init
          (base - List.length warehouses)
          (fun _ ->
            {
              Tx.li_i = Gen.nurand rng ~a:8191 ~x:1 ~y:scale.Scale.items;
              li_supply_w = home_w;
              li_qty = Gen.rand_range rng 1 10;
            })
      in
      Tx.New_order
        {
          w = home_w;
          d;
          c;
          lines = pinned @ extra;
          entry_d = Gen.rand_range rng 1 1_000_000;
        }
