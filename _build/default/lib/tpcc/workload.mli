(** TPCC workload generation: the standard transaction mix and the
    modified mixes used by the paper's experiments. *)

type profile = {
  pct_new_order : int;
  pct_payment : int;
  pct_order_status : int;
  pct_delivery : int;
  pct_stock_level : int;  (** the five mix percentages; must sum to 100 *)
  remote_item_pct : int;
      (** chance (percent) that a NewOrder line is supplied by another
          warehouse (TPC-C: 1) *)
  remote_customer_pct : int;
      (** chance that a Payment targets a customer of another warehouse
          (TPC-C: 15) *)
}

val standard : profile
(** The paper's mix: NewOrder 45, Payment 43, Delivery 4, OrderStatus 4,
    StockLevel 4, with standard remote probabilities. *)

val local_only : profile
(** Same mix with all remote probabilities zeroed: every transaction
    stays in its home warehouse ("Local Tpcc", Figure 4). *)

val gen : profile -> scale:Scale.t -> rng:Random.State.t -> home_w:int -> Tx.req
(** One random transaction for a client attached to warehouse
    [home_w]. *)

val gen_new_order : profile -> scale:Scale.t -> rng:Random.State.t -> home_w:int -> Tx.req
(** A random NewOrder (Figure 6's single-transaction-type runs). *)

val gen_new_order_pinned :
  scale:Scale.t -> rng:Random.State.t -> warehouses:int list -> Tx.req
(** A NewOrder that touches exactly the given warehouses (the first is
    home), at least one stock row in each — the fixed-partition-count
    workload of Figure 6. *)

val gen_of_kind :
  [ `New_order | `Payment | `Order_status | `Delivery | `Stock_level ] ->
  profile ->
  scale:Scale.t ->
  rng:Random.State.t ->
  home_w:int ->
  Tx.req
(** One transaction of a chosen type (Figure 7's per-type latency
    runs). *)
