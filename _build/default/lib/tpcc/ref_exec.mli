(** Sequential reference executor for differential testing.

    Applies TPCC transactions to a single in-memory copy of the
    database (no partitions, no replication, no timing) using the same
    business logic as {!Tx.app}. Running the same request sequence
    through Heron and through this executor must produce the same
    responses and the same final table state — the oracle used by the
    TPCC test-suite. *)

open Heron_core

type t

val create : scale:Scale.t -> seed:int -> t
(** Load the same initial database as {!Gen.catalog}. *)

val apply : t -> Tx.req -> Tx.resp
(** Execute one transaction against the reference state. Requests are
    numbered internally so that generated ids (history rows) match a
    single-client Heron run over the same sequence. *)

val value : t -> Oid.t -> bytes option
(** Current value of an object, [None] if it does not exist. *)

val oids : t -> Oid.t list
(** All object ids present, sorted. *)
