(** TPCC scaling parameters.

    The TPC-C specification fixes 10 districts per warehouse, 3,000
    customers per district and 100,000 items; the paper's prototype uses
    those sizes (Section IV-A). Full-size tables are unnecessarily heavy
    for a simulation that must run hundreds of experiment points, so the
    harness defaults to a proportionally scaled-down database
    ({!bench}); the workload generators draw from whatever sizes the
    scale specifies, so transaction logic and cost ratios are
    unchanged. *)

type t = {
  warehouses : int;  (** one per partition *)
  districts : int;
  customers_per_district : int;
  items : int;  (** also the number of stock rows per warehouse *)
  init_orders_per_district : int;  (** pre-loaded delivered orders *)
}

val paper : warehouses:int -> t
(** Full TPC-C sizes: 10 districts, 3,000 customers, 100,000 items,
    3,000 initial orders. *)

val bench : warehouses:int -> t
(** Scaled for simulation: 10 districts, 60 customers, 2,000 items,
    30 initial orders. *)

val tiny : warehouses:int -> t
(** Minimal sizes for unit tests: 2 districts, 6 customers, 40 items,
    4 initial orders. *)

val validate : t -> unit
(** Raises [Invalid_argument] on non-positive dimensions. *)
