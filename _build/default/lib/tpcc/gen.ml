open Heron_core

let rand_range rng lo hi = lo + Random.State.int rng (hi - lo + 1)

let nurand rng ~a ~x ~y =
  let c = 123 in
  ((rand_range rng 0 a lor rand_range rng x y) + c) mod (y - x + 1) + x

(* Deterministic filler text: cheap, incompressible enough, fixed
   length. *)
let filler tag len =
  let s = Printf.sprintf "%s-" tag in
  let b = Buffer.create len in
  while Buffer.length b < len do
    Buffer.add_string b s;
    Buffer.add_string b (string_of_int (Buffer.length b mod 97))
  done;
  Buffer.sub b 0 len

let make_warehouse w =
  {
    Schema.w_id = w;
    w_name = Printf.sprintf "wh-%04d" w;
    w_street_1 = filler "st1" 20;
    w_street_2 = filler "st2" 20;
    w_city = filler "city" 20;
    w_state = "CH";
    w_zip = "123456789";
    w_tax = 1000 + (w mod 10) * 25;
    w_ytd = 30_000_000;
  }

let make_district ~w ~d ~next_o_id =
  {
    Schema.d_id = d;
    d_w_id = w;
    d_name = Printf.sprintf "d-%02d-%04d" d w;
    d_street_1 = filler "st1" 20;
    d_street_2 = filler "st2" 20;
    d_city = filler "city" 20;
    d_state = "CH";
    d_zip = "987654321";
    d_tax = 800 + (d * 15);
    d_ytd = 3_000_000;
    d_next_o_id = next_o_id;
    d_oldest_undelivered = next_o_id;
  }

let make_customer ~w ~d ~c ~last_order =
  {
    Schema.c_id = c;
    c_d_id = d;
    c_w_id = w;
    c_first = Printf.sprintf "first-%05d" c;
    c_middle = "OE";
    c_last = Printf.sprintf "LAST%06d" (c mod 1000);
    c_street_1 = filler "st1" 20;
    c_street_2 = filler "st2" 20;
    c_city = filler "city" 20;
    c_state = "CH";
    c_zip = "135792468";
    c_phone = "0041123456789012";
    c_since = 0;
    c_credit = (if c mod 10 = 0 then "BC" else "GC");
    c_credit_lim = 5_000_000;
    c_discount = (c * 7) mod 5000;
    c_balance = -1_000;
    c_ytd_payment = 1_000;
    c_payment_cnt = 1;
    c_delivery_cnt = 0;
    c_data = filler "cdata" 300;
    c_last_order = last_order;
  }

let make_item i =
  {
    Schema.i_id = i;
    i_im_id = (i * 13 mod 10_000) + 1;
    i_name = Printf.sprintf "item-%06d" i;
    i_price = 100 + (i * 37 mod 9_900);
    i_data = filler "idata" 40;
  }

let make_stock ~w ~i =
  {
    Schema.s_i_id = i;
    s_w_id = w;
    s_quantity = 50 + (i mod 50);
    s_dists = Array.init 10 (fun d -> filler (Printf.sprintf "sd%d" d) 24);
    s_ytd = 0;
    s_order_cnt = 0;
    s_remote_cnt = 0;
    s_data = filler "sdata" 40;
  }

let spec ~key ~placement ~klass ~cap ~init =
  {
    App.spec_oid = Oid_codec.encode key;
    spec_placement = placement;
    spec_klass = klass;
    spec_cap = cap;
    spec_init = init;
  }

let catalog ~scale ~seed =
  Scale.validate scale;
  let rng = Random.State.make [| seed; 0x54504343 |] in
  let specs = ref [] in
  let add s = specs := s :: !specs in
  let local key init =
    add (spec ~key ~placement:(App.Partition 0) ~klass:Versioned_store.Local ~cap:0 ~init)
  in
  ignore local;
  (* Replicated, read-only tables: Warehouse and Item. *)
  for w = 1 to scale.Scale.warehouses do
    add
      (spec ~key:(Oid_codec.Warehouse w) ~placement:App.Replicated
         ~klass:Versioned_store.Local ~cap:0
         ~init:(Schema.encode_warehouse (make_warehouse w)))
  done;
  for i = 1 to scale.Scale.items do
    add
      (spec ~key:(Oid_codec.Item i) ~placement:App.Replicated
         ~klass:Versioned_store.Local ~cap:0
         ~init:(Schema.encode_item (make_item i)))
  done;
  (* Per-warehouse tables; partition = warehouse - 1. *)
  for w = 1 to scale.Scale.warehouses do
    let part = App.Partition (w - 1) in
    for i = 1 to scale.Scale.items do
      add
        (spec ~key:(Oid_codec.Stock (w, i)) ~placement:part
           ~klass:Versioned_store.Registered ~cap:Schema.stock_cap
           ~init:(Schema.encode_stock (make_stock ~w ~i)))
    done;
    for d = 1 to scale.Scale.districts do
      let n_orders = scale.Scale.init_orders_per_district in
      add
        (spec ~key:(Oid_codec.District (w, d)) ~placement:part
           ~klass:Versioned_store.Local ~cap:0
           ~init:(Schema.encode_district (make_district ~w ~d ~next_o_id:(n_orders + 1))));
      (* Customers; remember each one's most recent initial order. *)
      let last_order = Array.make (scale.Scale.customers_per_district + 1) 0 in
      for o = 1 to n_orders do
        let c = ((o - 1) mod scale.Scale.customers_per_district) + 1 in
        last_order.(c) <- o
      done;
      for c = 1 to scale.Scale.customers_per_district do
        add
          (spec ~key:(Oid_codec.Customer (w, d, c)) ~placement:part
             ~klass:Versioned_store.Registered ~cap:Schema.customer_cap
             ~init:(Schema.encode_customer (make_customer ~w ~d ~c ~last_order:last_order.(c))))
      done;
      (* Initial (delivered) orders with 5 lines each. *)
      for o = 1 to n_orders do
        let c = ((o - 1) mod scale.Scale.customers_per_district) + 1 in
        let ol_cnt = 5 in
        add
          (spec ~key:(Oid_codec.Order (w, d, o)) ~placement:part
             ~klass:Versioned_store.Local ~cap:0
             ~init:
               (Schema.encode_order
                  {
                    Schema.o_id = o;
                    o_d_id = d;
                    o_w_id = w;
                    o_c_id = c;
                    o_entry_d = 0;
                    o_carrier_id = Some (rand_range rng 1 10);
                    o_ol_cnt = ol_cnt;
                    o_all_local = true;
                  }));
        for n = 1 to ol_cnt do
          let i = rand_range rng 1 scale.Scale.items in
          add
            (spec ~key:(Oid_codec.Order_line (w, d, o, n)) ~placement:part
               ~klass:Versioned_store.Local ~cap:0
               ~init:
                 (Schema.encode_order_line
                    {
                      Schema.ol_o_id = o;
                      ol_d_id = d;
                      ol_w_id = w;
                      ol_number = n;
                      ol_i_id = i;
                      ol_supply_w_id = w;
                      ol_delivery_d = Some 0;
                      ol_quantity = rand_range rng 1 10;
                      ol_amount = rand_range rng 100 9_999;
                      ol_dist_info = filler "ol" 24;
                    }))
        done
      done
    done
  done;
  List.rev !specs
