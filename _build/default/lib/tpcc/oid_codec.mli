(** Mapping between TPCC table keys and Heron object ids.

    Every row is one Heron object (Section IV-A). Keys pack into the
    62-bit oid as [tag(4) | w(12) | d(8) | a(30) | b(8)]. *)

open Heron_core

type key =
  | Warehouse of int
  | District of int * int  (** w, d *)
  | Customer of int * int * int  (** w, d, c *)
  | History of int * int * int  (** w, d, unique id *)
  | Order of int * int * int  (** w, d, o *)
  | New_order of int * int * int
  | Order_line of int * int * int * int  (** w, d, o, line number *)
  | Item of int
  | Stock of int * int  (** w, i *)

val encode : key -> Oid.t
(** Raises [Invalid_argument] when a field exceeds its bit budget. *)

val decode : Oid.t -> key
(** Raises [Invalid_argument] on an oid not produced by {!encode}. *)

val home_warehouse : Oid.t -> int option
(** The warehouse a row belongs to; [None] for replicated tables
    (Warehouse and Item, which every partition stores). *)

val is_registered : Oid.t -> bool
(** Whether the row lives in the RDMA-registered (serialized) store:
    true exactly for Stock and Customer rows, the two tables remote
    replicas read during execution (Section IV-A). *)
