(** Manual byte-level (de)serialization primitives.

    The paper's prototype hand-serializes rows into ByteBuffers rather
    than using a serializer library (Section V-C lists this among the
    optimizations); these helpers play that role. Integers are
    little-endian; strings are length-prefixed (u16). *)

type writer

val writer : unit -> writer
val w_u8 : writer -> int -> unit
val w_u16 : writer -> int -> unit
val w_i32 : writer -> int -> unit
val w_i64 : writer -> int -> unit
val w_bool : writer -> bool -> unit
val w_string : writer -> string -> unit
val w_opt_i32 : writer -> int option -> unit
val contents : writer -> bytes

type reader

val reader : bytes -> reader
val r_u8 : reader -> int
val r_u16 : reader -> int
val r_i32 : reader -> int
val r_i64 : reader -> int
val r_bool : reader -> bool
val r_string : reader -> string
val r_opt_i32 : reader -> int option

val expect_end : reader -> unit
(** Raises [Failure] if bytes remain — catches schema drift. *)
