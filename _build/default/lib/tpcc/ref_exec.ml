open Heron_core
open Heron_multicast

type t = {
  state : (Oid.t, bytes) Hashtbl.t;
  scale : Scale.t;
  mutable next_uid : int;
}

let create ~scale ~seed =
  let state = Hashtbl.create 4096 in
  List.iter
    (fun spec -> Hashtbl.replace state spec.App.spec_oid spec.App.spec_init)
    (Gen.catalog ~scale ~seed);
  { state; scale; next_uid = 1 }

let apply t req =
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  (* Reads see the pre-transaction state (Heron's reading phase /
     writing phase split), so writes are buffered and applied after. *)
  let writes = ref [] in
  let ctx =
    {
      App.ctx_partition = Tx.home_warehouse req - 1;
      ctx_tmp = Tstamp.make ~clock:uid ~uid;
      ctx_read =
        (fun oid ->
          match Hashtbl.find_opt t.state oid with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Ref_exec: object %d does not exist" (Oid.to_int oid)));
      ctx_read_opt = (fun oid -> Hashtbl.find_opt t.state oid);
      ctx_is_local = (fun _ -> true);
      ctx_write = (fun oid v -> writes := (oid, v) :: !writes);
      ctx_charge = ignore;
    }
  in
  let resp = (Tx.app ~scale:t.scale ~seed:0).App.execute ctx req in
  List.iter (fun (oid, v) -> Hashtbl.replace t.state oid v) (List.rev !writes);
  resp

let value t oid = Hashtbl.find_opt t.state oid

let oids t =
  List.sort compare (Hashtbl.fold (fun oid _ acc -> oid :: acc) t.state [])
