type t = {
  warehouses : int;
  districts : int;
  customers_per_district : int;
  items : int;
  init_orders_per_district : int;
}

let paper ~warehouses =
  {
    warehouses;
    districts = 10;
    customers_per_district = 3_000;
    items = 100_000;
    init_orders_per_district = 3_000;
  }

let bench ~warehouses =
  {
    warehouses;
    districts = 10;
    customers_per_district = 60;
    items = 2_000;
    init_orders_per_district = 30;
  }

let tiny ~warehouses =
  {
    warehouses;
    districts = 2;
    customers_per_district = 6;
    items = 40;
    init_orders_per_district = 4;
  }

let validate t =
  if
    t.warehouses <= 0 || t.districts <= 0 || t.customers_per_district <= 0
    || t.items <= 0 || t.init_orders_per_district < 0
  then invalid_arg "Scale.validate: non-positive dimension"
