(** The five TPCC transactions on Heron (paper Section IV-A).

    Each Heron partition stores one warehouse. NewOrder and Payment can
    span warehouses (remote supply items / remote customer) and then
    execute at every involved partition, each applying only its local
    writes ("partial execution"); the home partition computes the full
    business response, the other partitions answer {!R_partial}.

    Customer selection is by id (the by-last-name variant is a lookup
    convenience, not a concurrency behaviour, and is omitted — see
    DESIGN.md). Delivery is executed in-transaction (one order per
    district), not deferred. *)

open Heron_core

type order_line_input = { li_i : int; li_supply_w : int; li_qty : int }
[@@deriving show, eq]

type req =
  | New_order of {
      w : int;
      d : int;
      c : int;
      lines : order_line_input list;
      entry_d : int;
    }
  | Payment of {
      w : int;
      d : int;
      c_w : int;  (** customer's warehouse; [<> w] makes it remote *)
      c_d : int;
      c : int;
      amount : int;  (** cents *)
      date : int;
    }
  | Order_status of { w : int; d : int; c : int }
  | Delivery of { w : int; carrier : int; date : int }
  | Stock_level of { w : int; d : int; threshold : int }
[@@deriving show, eq]

type resp =
  | R_new_order of { o_id : int; total : int }
  | R_payment of { balance : int }
  | R_order_status of { o_id : int; ol_cnt : int; balance : int }
  | R_delivery of { delivered : int }
  | R_stock_level of { low_stock : int }
  | R_partial  (** answer of a non-home partition (partial execution) *)
[@@deriving show, eq]

val home_warehouse : req -> int
(** The transaction's home warehouse. *)

val is_multi_warehouse : req -> bool
(** Whether the request touches more than one warehouse. *)

val merge_responses : (int * resp) list -> resp
(** The business response among the per-partition responses (the
    non-{!R_partial} one; all partitions of a single-warehouse request
    return the same full response). *)

val app : scale:Scale.t -> seed:int -> (req, resp) App.t
(** The TPCC application for Heron: catalog from {!Gen.catalog},
    partition of warehouse [w] is [w - 1]. *)
