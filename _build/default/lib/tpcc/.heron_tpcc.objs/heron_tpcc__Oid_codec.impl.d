lib/tpcc/oid_codec.pp.ml: Heron_core Oid
