lib/tpcc/workload.pp.ml: Gen List Scale Tx
