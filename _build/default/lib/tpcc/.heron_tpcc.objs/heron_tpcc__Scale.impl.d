lib/tpcc/scale.pp.ml:
