lib/tpcc/codec.pp.ml: Buffer Bytes Int32 Int64 Printf String
