lib/tpcc/oid_codec.pp.mli: Heron_core Oid
