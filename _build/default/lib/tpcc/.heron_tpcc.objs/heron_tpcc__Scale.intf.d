lib/tpcc/scale.pp.mli:
