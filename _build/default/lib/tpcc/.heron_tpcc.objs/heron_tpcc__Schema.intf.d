lib/tpcc/schema.pp.mli: Ppx_deriving_runtime
