lib/tpcc/gen.pp.ml: App Array Buffer Heron_core List Oid_codec Printf Random Scale Schema Versioned_store
