lib/tpcc/ref_exec.pp.mli: Heron_core Oid Scale Tx
