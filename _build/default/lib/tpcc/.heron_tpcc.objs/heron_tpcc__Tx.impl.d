lib/tpcc/tx.pp.ml: App Array Gen Hashtbl Heron_core Heron_multicast List Oid_codec Ppx_deriving_runtime Printf Scale Schema String Versioned_store
