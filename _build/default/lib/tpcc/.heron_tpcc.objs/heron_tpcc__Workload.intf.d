lib/tpcc/workload.pp.mli: Random Scale Tx
