lib/tpcc/codec.pp.mli:
