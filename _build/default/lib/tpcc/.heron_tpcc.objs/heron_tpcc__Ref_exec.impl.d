lib/tpcc/ref_exec.pp.ml: App Gen Hashtbl Heron_core Heron_multicast List Oid Printf Scale Tstamp Tx
