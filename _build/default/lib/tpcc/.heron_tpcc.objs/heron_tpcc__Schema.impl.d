lib/tpcc/schema.pp.ml: Array Codec Ppx_deriving_runtime
