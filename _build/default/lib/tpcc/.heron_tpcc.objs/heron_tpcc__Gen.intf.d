lib/tpcc/gen.pp.mli: App Heron_core Random Scale Schema
