lib/tpcc/tx.pp.mli: App Heron_core Ppx_deriving_runtime Scale
