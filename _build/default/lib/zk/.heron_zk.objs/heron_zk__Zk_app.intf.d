lib/zk/zk_app.mli: App Format Heron_core
