lib/zk/zk_app.ml: App Buffer Bytes Char Format Heron_core Int32 List Oid Option String Versioned_store
