(** A partitioned coordination service (ZooKeeper-style) on Heron.

    The paper's introduction motivates partitioned SMR with exactly this
    workload: S-SMR scaled ZooKeeper by sharding its namespace. This
    application does the same on Heron: a tree of versioned znodes,
    partitioned by top-level subtree, so every subtree (a znode and all
    its descendants, including the parent links maintained on create and
    delete) lives in one partition and single-subtree operations are
    classic single-partition SMR.

    Cross-subtree operations showcase Heron's coordination:
    {!Multi_read} returns a {e consistent snapshot} of paths spread over
    several partitions (each partition reads its own paths; Phases 2 and
    4 make the per-partition reads line up on the same cut), and
    {!Touch} atomically bumps versions across partitions. Responses of
    multi-partition requests are partial per partition; {!merge} combines
    them. *)

open Heron_core

type path = string list
(** ["app"; "config"; "timeout"] is /app/config/timeout. Must be
    non-empty; the root is implicit. *)

type req =
  | Create of { path : path; data : string }
      (** fails with [Node_exists] / [No_node] (missing parent) *)
  | Read of path
  | Write of { path : path; data : string }  (** bumps the version *)
  | Cas of { path : path; expect : int; data : string }
      (** write only if the version matches ([Bad_version] otherwise) *)
  | Delete of path  (** fails if the node has children *)
  | Children of path
  | Touch of path list
      (** bump versions of existing nodes, possibly across partitions *)
  | Multi_read of path list
      (** consistent snapshot of paths, possibly across partitions *)

type err = No_node | Node_exists | Bad_version | Not_empty

type resp =
  | Z_ok
  | Z_data of { data : string; version : int }
  | Z_children of string list
  | Z_snapshot of (path * (string * int) option) list
      (** per-path data and version; [None] for missing nodes. A
          multi-partition snapshot response only carries the paths local
          to the responding partition. *)
  | Z_err of err

val pp_resp : Format.formatter -> resp -> unit

val merge : (int * resp) list -> resp
(** Combine the per-partition responses of one request: snapshot
    entries are concatenated and sorted by path (the canonical order),
    other responses are identical across partitions and returned
    as-is. *)

val app : partitions:int -> roots:(string * string) list -> (req, resp) App.t
(** The Heron application. [roots] pre-creates top-level znodes
    [(name, data)]; everything else is created at run time. Top-level
    name [n] lives in partition [hash n mod partitions]. *)

val partition_of_path : partitions:int -> path -> int
