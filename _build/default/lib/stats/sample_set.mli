(** Collector of scalar samples (typically latencies in nanoseconds).

    Keeps every recorded sample, so percentiles and CDFs are exact.
    Experiments in this repository record at most a few million samples
    per run, which fits comfortably in memory. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Record one sample. *)

val clear : t -> unit
(** Drop all samples (e.g. at the end of a warmup window). *)

val count : t -> int

val is_empty : t -> bool

val mean : t -> float
(** Arithmetic mean; [0.] when empty. *)

val stddev : t -> float
(** Population standard deviation; [0.] when empty. *)

val min_value : t -> int
(** Raises [Invalid_argument] when empty. *)

val max_value : t -> int
(** Raises [Invalid_argument] when empty. *)

val percentile : t -> float -> int
(** [percentile t p] is the [p]-th percentile ([0. <= p <= 100.]) using
    nearest-rank on the sorted samples. Raises [Invalid_argument] when
    empty or when [p] is out of range. *)

val median : t -> int

val cdf : ?points:int -> t -> (int * float) list
(** [cdf ~points t] is an evenly spaced sketch of the empirical CDF as
    [(value, fraction)] pairs, [fraction] increasing to [1.]. [points]
    defaults to 100 and is capped by the sample count. *)

val values : t -> int array
(** A sorted copy of all samples. *)

val merge : t -> t -> t
(** [merge a b] is a fresh set containing the samples of both. *)
