(** Aligned plain-text tables for experiment output.

    The benchmark harness prints every reproduced paper table/figure as
    one of these. *)

type t

val make : title:string -> headers:string list -> t
(** A fresh table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells and long rows
    raise [Invalid_argument]. *)

val title : t -> string

val rows : t -> string list list
(** Data rows, in insertion order (without the header). *)

val render : t -> string
(** The table as an aligned multi-line string, ending in a newline. *)

val print : t -> unit
(** [render] to stdout. *)

(** {1 Cell formatting helpers} *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string

val cell_us : int -> string
(** Nanoseconds rendered as microseconds with 1 decimal, e.g. ["35.4"]. *)

val cell_ms : int -> string
(** Nanoseconds rendered as milliseconds with 2 decimals. *)

val cell_pct : float -> string
(** Fraction [0..1] rendered as a percentage with 1 decimal. *)
