lib/stats/table.mli:
