type t = {
  table_title : string;
  headers : string list;
  mutable body : string list list; (* reversed *)
}

let make ~title ~headers = { table_title = title; headers; body = [] }

let add_row t row =
  let ncols = List.length t.headers in
  let nrow = List.length row in
  if nrow > ncols then invalid_arg "Table.add_row: too many cells";
  let padded = row @ List.init (ncols - nrow) (fun _ -> "") in
  t.body <- padded :: t.body

let title t = t.table_title
let rows t = List.rev t.body

let render t =
  let all = t.headers :: rows t in
  let ncols = List.length t.headers in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    let cells =
      List.map2 (fun cell w -> Printf.sprintf "%-*s" w cell) row widths
    in
    String.concat "  " cells
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.table_title ^ " ==\n");
  Buffer.add_string buf (render_row t.headers);
  Buffer.add_char buf '\n';
  let total = List.fold_left ( + ) (2 * (ncols - 1)) widths in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

let print t = print_string (render t)
let cell_int n = string_of_int n
let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_us ns = Printf.sprintf "%.1f" (float_of_int ns /. 1_000.)
let cell_ms ns = Printf.sprintf "%.2f" (float_of_int ns /. 1_000_000.)
let cell_pct f = Printf.sprintf "%.1f%%" (f *. 100.)
