type t = {
  mutable data : int array;
  mutable size : int;
  mutable sorted : bool;
}

let create () = { data = [||]; size = 0; sorted = true }

let add t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ndata = Array.make (if cap = 0 then 64 else cap * 2) 0 in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- false

let clear t =
  t.size <- 0;
  t.sorted <- true

let count t = t.size
let is_empty t = t.size = 0

let ensure_sorted t =
  if not t.sorted then begin
    let sub = Array.sub t.data 0 t.size in
    Array.sort compare sub;
    Array.blit sub 0 t.data 0 t.size;
    t.sorted <- true
  end

let mean t =
  if t.size = 0 then 0.
  else begin
    let sum = ref 0. in
    for i = 0 to t.size - 1 do
      sum := !sum +. float_of_int t.data.(i)
    done;
    !sum /. float_of_int t.size
  end

let stddev t =
  if t.size = 0 then 0.
  else begin
    let m = mean t in
    let acc = ref 0. in
    for i = 0 to t.size - 1 do
      let d = float_of_int t.data.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    sqrt (!acc /. float_of_int t.size)
  end

let min_value t =
  if t.size = 0 then invalid_arg "Sample_set.min_value: empty";
  ensure_sorted t;
  t.data.(0)

let max_value t =
  if t.size = 0 then invalid_arg "Sample_set.max_value: empty";
  ensure_sorted t;
  t.data.(t.size - 1)

let percentile t p =
  if t.size = 0 then invalid_arg "Sample_set.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Sample_set.percentile: out of range";
  ensure_sorted t;
  (* Nearest-rank: smallest value with at least p% of samples <= it. *)
  let rank = int_of_float (ceil (p /. 100. *. float_of_int t.size)) in
  let idx = max 0 (min (t.size - 1) (rank - 1)) in
  t.data.(idx)

let median t = percentile t 50.

let cdf ?(points = 100) t =
  if t.size = 0 then []
  else begin
    ensure_sorted t;
    let points = max 1 (min points t.size) in
    let acc = ref [] in
    for i = points downto 1 do
      let idx = (i * t.size / points) - 1 in
      let frac = float_of_int (idx + 1) /. float_of_int t.size in
      acc := (t.data.(idx), frac) :: !acc
    done;
    !acc
  end

let values t =
  ensure_sorted t;
  Array.sub t.data 0 t.size

let merge a b =
  let t = create () in
  for i = 0 to a.size - 1 do
    add t a.data.(i)
  done;
  for i = 0 to b.size - 1 do
    add t b.data.(i)
  done;
  t
