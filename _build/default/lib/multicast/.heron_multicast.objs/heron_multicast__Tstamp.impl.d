lib/multicast/tstamp.ml: Format Int64 Stdlib
