lib/multicast/ramcast.mli: Heron_rdma Tstamp
