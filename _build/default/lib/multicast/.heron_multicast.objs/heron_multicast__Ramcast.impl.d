lib/multicast/ramcast.ml: Array Engine Fabric Hashtbl Heron_rdma Heron_sim List Mailbox Option Qp Queue Tstamp
