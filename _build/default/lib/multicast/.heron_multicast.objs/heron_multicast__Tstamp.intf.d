lib/multicast/tstamp.mli: Format
