(** Atomic-multicast timestamps.

    A timestamp is a [(clock, uid)] pair: [clock] is the agreed Skeen
    timestamp and [uid] the globally unique message id used as a
    tie-break. Timestamps are totally ordered and unique per message,
    and for any two messages [m], [m'], if some process delivers [m]
    before [m'] then [tmp m < tmp m'] — the property Heron's
    dual-versioning relies on (paper Section II-B).

    A timestamp packs into a non-negative [int64] whose numeric order
    equals {!compare} (40-bit clock, 23-bit uid), so it can live in
    RDMA-registered memory and be read/written atomically. *)

type t = { clock : int; uid : int }

val zero : t
(** Smaller than any timestamp of a delivered message; tags initial
    object versions. *)

val make : clock:int -> uid:int -> t

val compare : t -> t -> int

val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool

val equal : t -> t -> bool

val to_int64 : t -> int64
(** Raises [Invalid_argument] if the clock exceeds 40 bits or the uid
    exceeds 23 bits. *)

val of_int64 : int64 -> t

val pp : Format.formatter -> t -> unit
