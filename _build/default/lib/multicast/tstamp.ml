type t = { clock : int; uid : int }

let zero = { clock = 0; uid = 0 }
let make ~clock ~uid = { clock; uid }

let compare a b =
  match Stdlib.compare a.clock b.clock with
  | 0 -> Stdlib.compare a.uid b.uid
  | c -> c

let equal a b = compare a b = 0

let clock_bits = 40
let uid_bits = 23

let to_int64 t =
  if t.clock < 0 || t.clock lsr clock_bits <> 0 then
    invalid_arg "Tstamp.to_int64: clock out of range";
  if t.uid < 0 || t.uid lsr uid_bits <> 0 then
    invalid_arg "Tstamp.to_int64: uid out of range";
  Int64.of_int ((t.clock lsl uid_bits) lor t.uid)

let of_int64 v =
  let v = Int64.to_int v in
  { clock = v lsr uid_bits; uid = v land ((1 lsl uid_bits) - 1) }

let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let pp fmt t = Format.fprintf fmt "%d.%d" t.clock t.uid
