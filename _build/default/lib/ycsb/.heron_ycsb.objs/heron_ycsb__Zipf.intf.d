lib/ycsb/zipf.mli: Random
