lib/ycsb/zipf.ml: Random
