lib/ycsb/ycsb_app.mli: App Heron_core Random Zipf
