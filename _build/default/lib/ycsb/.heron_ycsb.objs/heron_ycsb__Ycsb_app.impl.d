lib/ycsb/ycsb_app.ml: App Bytes Char Heron_core Int64 List Oid Random Versioned_store Zipf
