(** Zipfian key sampler (YCSB's request distribution).

    Samples integers in [0, n) with P(k) proportional to
    1 / (k+1)^theta, using the classic rejection-free inversion
    approximation from Gray et al. ("Quickly generating billion-record
    synthetic databases"), the same construction YCSB uses. *)

type t

val create : ?theta:float -> n:int -> unit -> t
(** [theta] defaults to YCSB's 0.99. Raises [Invalid_argument] for
    non-positive [n] or [theta] outside (0, 1). *)

val sample : t -> Random.State.t -> int
(** A key in [0, n), small keys most popular. *)

val n : t -> int
