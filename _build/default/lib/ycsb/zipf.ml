type t = {
  size : int;
  theta : float;
  zetan : float;
  alpha : float;
  eta : float;
}

let zeta n theta =
  let acc = ref 0. in
  for i = 1 to n do
    acc := !acc +. (1. /. (float_of_int i ** theta))
  done;
  !acc

let create ?(theta = 0.99) ~n () =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta <= 0. || theta >= 1. then invalid_arg "Zipf.create: theta must be in (0, 1)";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  {
    size = n;
    theta;
    zetan;
    alpha = 1. /. (1. -. theta);
    eta = (1. -. ((2. /. float_of_int n) ** (1. -. theta))) /. (1. -. (zeta2 /. zetan));
  }

let sample t rng =
  let u = Random.State.float rng 1. in
  let uz = u *. t.zetan in
  if uz < 1. then 0
  else if uz < 1. +. (0.5 ** t.theta) then 1
  else
    let k =
      int_of_float
        (float_of_int t.size *. (((t.eta *. u) -. t.eta +. 1.) ** t.alpha))
    in
    max 0 (min (t.size - 1) k)

let n t = t.size
