(** Imperative binary min-heap.

    Used by the engine as its event queue; exposed because tests and
    other libraries (e.g. pending multicast messages ordered by
    timestamp) reuse it. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** [peek h] is the smallest element without removing it. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the smallest element. *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but raises [Invalid_argument] on an empty heap. *)

val to_list : 'a t -> 'a list
(** [to_list h] is every element of [h] in unspecified order. *)
