(** Broadcast condition variable for fibers.

    A signal carries no value: fibers {!wait} on it and are all woken by
    {!broadcast}. The standard pattern is a guarded loop, packaged as
    {!wait_until}. In the simulated RDMA fabric a node's memory signal
    is broadcast whenever a remote write lands, standing in for the
    busy-polling loop a real Heron replica runs on its registered
    memory. *)

type t

val create : unit -> t

val wait : t -> unit
(** Park the calling fiber until the next {!broadcast}. *)

val broadcast : t -> unit
(** Wake every fiber currently parked in {!wait}. *)

val wait_until : t -> (unit -> bool) -> unit
(** [wait_until s pred] returns immediately if [pred ()]; otherwise
    waits on [s] and re-checks after every broadcast. *)

val waiters : t -> int
(** Number of currently parked fibers (for tests). *)
