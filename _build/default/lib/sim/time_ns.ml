type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000
let of_us_f x = int_of_float (Float.round (x *. 1_000.))
let to_us_f t = float_of_int t /. 1_000.
let to_ms_f t = float_of_int t /. 1_000_000.
let to_s_f t = float_of_int t /. 1_000_000_000.

let pp fmt t =
  if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.2fus" (to_us_f t)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.2fms" (to_ms_f t)
  else Format.fprintf fmt "%.3fs" (to_s_f t)
