type 'a t = { mutable cell : 'a option; mutable waiters : (unit -> unit) list }

let create () = { cell = None; waiters = [] }

let try_fill iv v =
  match iv.cell with
  | Some _ -> false
  | None ->
      iv.cell <- Some v;
      let waiters = iv.waiters in
      iv.waiters <- [];
      List.iter (fun wake -> wake ()) waiters;
      true

let fill iv v =
  if not (try_fill iv v) then invalid_arg "Ivar.fill: already full"

let is_full iv = Option.is_some iv.cell
let peek iv = iv.cell

let read iv =
  match iv.cell with
  | Some v -> v
  | None -> (
      Engine.suspend (fun wake -> iv.waiters <- wake :: iv.waiters);
      match iv.cell with
      | Some v -> v
      | None -> assert false (* woken only by try_fill *))
