type t = { mutable waiters : (unit -> unit) list }

let create () = { waiters = [] }

let wait s = Engine.suspend (fun wake -> s.waiters <- wake :: s.waiters)

let broadcast s =
  let waiters = s.waiters in
  s.waiters <- [];
  List.iter (fun wake -> wake ()) waiters

let wait_until s pred =
  while not (pred ()) do
    wait s
  done

let waiters s = List.length s.waiters
