(** Deterministic discrete-event simulation engine.

    The engine advances a virtual clock and runs lightweight cooperative
    processes ("fibers") implemented with OCaml 5 effect handlers.
    Inside a fiber, blocking operations ({!sleep}, {!suspend}, and the
    combinators built on them in {!Ivar}, {!Mailbox} and {!Signal}) park
    the fiber and let virtual time advance; there is no real
    concurrency, so a run is fully deterministic given its seed.

    The engine is the substitute for the paper's CloudLab testbed: all
    latencies of the simulated RDMA fabric and message network are paid
    by sleeping on this virtual clock. *)

type t

exception Cancelled
(** Raised inside a fiber resumed after its cancellation token fired
    (e.g. its node crashed). Normally handled by the engine itself. *)

type token
(** Cancellation token: fibers spawned with a token stop (with
    {!Cancelled}) at their next resumption once the token is fired.
    Models a node crash taking down every process hosted on it. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] is a fresh engine at time 0. [seed] (default 42)
    initialises the engine-owned PRNG returned by {!rng}. *)

val now : t -> Time_ns.t
(** Current virtual time. *)

val rng : t -> Random.State.t
(** The engine's deterministic PRNG. All randomness in a simulation
    must come from this state (or from an explicitly seeded one) so
    runs are reproducible. *)

val new_token : t -> token

val cancel : token -> unit
(** Fire the token. Already-running code is unaffected until its next
    suspension point. *)

val is_cancelled : token -> bool

val spawn : ?token:token -> ?name:string -> t -> (unit -> unit) -> unit
(** [spawn t f] schedules fiber [f] to start at the current time.
    Exceptions other than {!Cancelled} escaping [f] abort the run. *)

val schedule : ?delay:Time_ns.t -> t -> (unit -> unit) -> unit
(** [schedule ~delay t f] runs callback [f] (not a fiber: it must not
    block) after [delay] (default 0). *)

val run : t -> unit
(** Run until the event queue is empty. *)

val run_until : t -> Time_ns.t -> unit
(** [run_until t horizon] runs events with time [<= horizon] and then
    sets the clock to [horizon]. If the event queue drains early the
    clock jumps to [horizon]; fibers parked on {!suspend} stay parked
    (use {!live_fibers} in tests to detect unexpected deadlock). *)

val run_for : t -> Time_ns.t -> unit
(** [run_for t d] is [run_until t (now t + d)]. *)

val pending_events : t -> int
(** Number of queued events (for tests and debugging). *)

val live_fibers : t -> int
(** Number of fibers that have started and not yet finished. *)

(** {1 Operations available inside a fiber}

    These perform effects and must be called from code running under
    {!spawn}; calling them elsewhere raises
    [Stdlib.Effect.Unhandled]. *)

val sleep : Time_ns.t -> unit
(** Park the calling fiber for a virtual duration. A duration [<= 0]
    still yields (the fiber resumes after already-scheduled events at
    the current instant). *)

val consume : Time_ns.t -> unit
(** Alias of {!sleep}, used to charge simulated CPU time to the calling
    fiber. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the fiber and calls [register wake]; the
    fiber resumes when [wake ()] is invoked (from any other fiber or
    callback). Calling [wake] more than once is harmless. This is the
    primitive under {!Ivar}, {!Mailbox} and {!Signal}. *)

val self_now : unit -> Time_ns.t
(** Current virtual time, from inside a fiber. *)
