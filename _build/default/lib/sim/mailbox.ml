type 'a t = { items : 'a Queue.t; mutable readers : (unit -> unit) Queue.t }

let create () = { items = Queue.create (); readers = Queue.create () }

let send mb v =
  Queue.push v mb.items;
  (* Wake one reader per available message; the woken fiber re-checks
     the queue so spurious wakeups are safe. *)
  if not (Queue.is_empty mb.readers) then (Queue.pop mb.readers) ()

let try_recv mb = Queue.take_opt mb.items

let rec recv mb =
  match Queue.take_opt mb.items with
  | Some v -> v
  | None ->
      Engine.suspend (fun wake -> Queue.push wake mb.readers);
      recv mb

let length mb = Queue.length mb.items
let is_empty mb = Queue.is_empty mb.items
