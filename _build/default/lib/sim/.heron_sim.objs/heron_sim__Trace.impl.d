lib/sim/trace.ml: Array Buffer Format List Printf String Time_ns
