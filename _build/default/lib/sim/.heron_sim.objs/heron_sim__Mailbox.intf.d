lib/sim/mailbox.mli:
