lib/sim/trace.mli: Time_ns
