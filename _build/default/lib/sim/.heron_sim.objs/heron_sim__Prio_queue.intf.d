lib/sim/prio_queue.mli:
