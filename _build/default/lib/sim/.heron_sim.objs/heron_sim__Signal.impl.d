lib/sim/signal.ml: Engine List
