lib/sim/signal.mli:
