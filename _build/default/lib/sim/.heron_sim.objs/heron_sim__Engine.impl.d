lib/sim/engine.ml: Effect Prio_queue Random Time_ns
