lib/sim/time_ns.mli: Format
