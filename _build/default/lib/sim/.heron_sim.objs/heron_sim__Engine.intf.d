lib/sim/engine.mli: Random Time_ns
