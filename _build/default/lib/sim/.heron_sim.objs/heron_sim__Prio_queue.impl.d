lib/sim/prio_queue.ml: Array
