lib/sim/ivar.mli:
