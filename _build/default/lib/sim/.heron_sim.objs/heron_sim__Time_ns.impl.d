lib/sim/time_ns.ml: Float Format
