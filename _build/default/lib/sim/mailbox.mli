(** Unbounded FIFO message queue between fibers.

    [send] never blocks; [recv] blocks the calling fiber until a message
    is available. Messages are received in send order, and competing
    receivers are served in arrival order. Replica processes receive
    atomic-multicast deliveries and control messages through
    mailboxes. *)

type 'a t

val create : unit -> 'a t

val send : 'a t -> 'a -> unit

val recv : 'a t -> 'a
(** Block until a message is available and dequeue it. *)

val try_recv : 'a t -> 'a option
(** Dequeue a message if one is immediately available. *)

val length : 'a t -> int
(** Number of queued (unreceived) messages. *)

val is_empty : 'a t -> bool
