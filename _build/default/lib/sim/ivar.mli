(** Write-once synchronization cell for fibers.

    An ivar starts empty, is filled exactly once, and wakes every fiber
    blocked in {!read}. Used for request/response rendezvous (a client
    waiting for a replica's reply) and for one-shot completion
    notifications. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** [fill iv v] stores [v] and wakes all readers. Raises
    [Invalid_argument] if [iv] is already full. *)

val try_fill : 'a t -> 'a -> bool
(** Like {!fill} but returns [false] instead of raising when full. *)

val is_full : 'a t -> bool

val peek : 'a t -> 'a option

val read : 'a t -> 'a
(** Block the calling fiber until the ivar is filled, then return its
    value. Must run inside a fiber. *)
