(** Virtual time for the discrete-event engine.

    All simulated durations and instants are expressed in integer
    nanoseconds. On a 64-bit platform this covers ~292 simulated years,
    far beyond any experiment in this repository. *)

type t = int

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val s : int -> t
(** [s n] is [n] seconds. *)

val of_us_f : float -> t
(** [of_us_f x] is [x] microseconds, rounded to the nearest nanosecond. *)

val to_us_f : t -> float
(** [to_us_f t] is [t] expressed in microseconds. *)

val to_ms_f : t -> float
(** [to_ms_f t] is [t] expressed in milliseconds. *)

val to_s_f : t -> float
(** [to_s_f t] is [t] expressed in seconds. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print a duration with an adaptive unit (ns, us, ms or s). *)
