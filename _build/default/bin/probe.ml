(* Calibration probe: prints the key latency/throughput numbers the
   cost model is tuned against. Not part of the benchmark suite. *)

open Heron_stats
open Heron_tpcc
open Heron_harness

let pr fmt = Printf.printf fmt

let show name (rs : Driver.run_stats) =
  pr "%-28s tput=%8.0f tps  lat(avg)=%7.1fus  single=%7.1fus  multi=%7.1fus  n=%d\n"
    name rs.Driver.rs_throughput_tps
    (Sample_set.mean rs.Driver.rs_latency /. 1e3)
    (if Sample_set.is_empty rs.Driver.rs_latency_single then 0.
     else Sample_set.mean rs.Driver.rs_latency_single /. 1e3)
    (if Sample_set.is_empty rs.Driver.rs_latency_multi then 0.
     else Sample_set.mean rs.Driver.rs_latency_multi /. 1e3)
    rs.Driver.rs_completed

let () =
  let t_start = Unix.gettimeofday () in
  (* 1. Single-client NewOrder latency + breakdown, 1WH. *)
  let scale = Scale.bench ~warehouses:1 in
  let sys = Driver.heron_tpcc_system ~scale () in
  let rs =
    Driver.run_system ~sys ~clients:1
      ~gen:(fun ~client rng ->
        ignore client;
        (Workload.gen_new_order Workload.local_only ~scale ~rng ~home_w:1, None))
      ()
  in
  show "1WH NewOrder 1 client" rs;
  let ord = Driver.merged_replica_stat sys (fun s -> s.Heron_core.Replica.st_ordering) in
  let exc = Driver.merged_replica_stat sys (fun s -> s.Heron_core.Replica.st_exec) in
  pr "  breakdown: ordering=%.1fus exec=%.1fus\n"
    (Sample_set.mean ord /. 1e3) (Sample_set.mean exc /. 1e3);

  (* 2. Single-client pinned 4-partition NewOrder. *)
  let scale4 = Scale.bench ~warehouses:4 in
  let sys4 = Driver.heron_tpcc_system ~scale:scale4 () in
  let rs4 =
    Driver.run_system ~sys:sys4 ~clients:1
      ~gen:(fun ~client rng ->
        ignore client;
        (Workload.gen_new_order_pinned ~scale:scale4 ~rng ~warehouses:[ 1; 2; 3; 4 ], None))
      ()
  in
  show "4WH pinned NewOrder 1c" rs4;
  let ord4 = Driver.merged_replica_stat sys4 (fun s -> s.Heron_core.Replica.st_ordering) in
  let coord4 = Driver.merged_replica_stat sys4 (fun s -> s.Heron_core.Replica.st_coord) in
  let exec4 = Driver.merged_replica_stat sys4 (fun s -> s.Heron_core.Replica.st_exec) in
  pr "  breakdown: ordering=%.1fus coord=%.1fus exec=%.1fus\n"
    (Sample_set.mean ord4 /. 1e3)
    (Sample_set.mean coord4 /. 1e3)
    (Sample_set.mean exec4 /. 1e3);

  (* 3. Heron TPCC throughput, 2WH, saturation. *)
  List.iter
    (fun clients ->
      let scale2 = Scale.bench ~warehouses:2 in
      let sys2 = Driver.heron_tpcc_system ~scale:scale2 () in
      let rs2 =
        Driver.run_system ~sys:sys2 ~clients
          ~gen:(Driver.tpcc_gen ~profile:Workload.standard ~scale:scale2)
          ()
      in
      show (Printf.sprintf "2WH TPCC %d clients" clients) rs2)
    [ 2; 4; 8; 16 ];

  (* 4. RamCast null, 2 groups. *)
  let rs_rc =
    Driver.run_ramcast ~partitions:2 ~clients:8 ~msg_bytes:200
      ~gen_dst:(fun rng ->
        if Random.State.int rng 100 < 10 then [ 0; 1 ]
        else [ Random.State.int rng 2 ])
      ()
  in
  show "RamCast 2 groups 8c" rs_rc;

  (* 5. DynaStar 1WH. *)
  let scale_ds = Scale.bench ~warehouses:1 in
  let rs_ds =
    Driver.run_dynastar ~scale:scale_ds ~clients:4 ~profile:Workload.standard ()
  in
  show "DynaStar 1WH 4c" rs_ds;
  pr "wall time: %.1fs\n" (Unix.gettimeofday () -. t_start)
