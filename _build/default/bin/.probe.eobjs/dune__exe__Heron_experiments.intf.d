bin/heron_experiments.mli:
