bin/heron_experiments.ml: Arg Cmd Cmdliner Experiments Heron_harness Heron_stats List Manpage Printf Stdlib Term
