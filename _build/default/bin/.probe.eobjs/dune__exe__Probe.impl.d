bin/probe.ml: Driver Heron_core Heron_harness Heron_stats Heron_tpcc List Printf Random Sample_set Scale Unix Workload
