bin/probe.mli:
