(* Tests for heron_stats: exact sample statistics and table
   rendering. *)

open Heron_stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let of_list xs =
  let s = Sample_set.create () in
  List.iter (Sample_set.add s) xs;
  s

(* {1 Sample_set} *)

let test_empty () =
  let s = Sample_set.create () in
  check_bool "empty" true (Sample_set.is_empty s);
  check_float "mean" 0. (Sample_set.mean s);
  check_float "stddev" 0. (Sample_set.stddev s);
  Alcotest.(check (list (pair int (float 1e-9)))) "cdf" [] (Sample_set.cdf s);
  Alcotest.check_raises "min" (Invalid_argument "Sample_set.min_value: empty")
    (fun () -> ignore (Sample_set.min_value s));
  Alcotest.check_raises "percentile" (Invalid_argument "Sample_set.percentile: empty")
    (fun () -> ignore (Sample_set.percentile s 50.))

let test_basic_stats () =
  let s = of_list [ 4; 1; 3; 2; 5 ] in
  check_int "count" 5 (Sample_set.count s);
  check_float "mean" 3. (Sample_set.mean s);
  check_int "min" 1 (Sample_set.min_value s);
  check_int "max" 5 (Sample_set.max_value s);
  check_float "stddev" (sqrt 2.) (Sample_set.stddev s);
  check_int "median" 3 (Sample_set.median s)

let test_percentiles () =
  let s = of_list (List.init 100 (fun i -> i + 1)) in
  check_int "p1" 1 (Sample_set.percentile s 1.);
  check_int "p50" 50 (Sample_set.percentile s 50.);
  check_int "p99" 99 (Sample_set.percentile s 99.);
  check_int "p100" 100 (Sample_set.percentile s 100.);
  check_int "p0" 1 (Sample_set.percentile s 0.);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Sample_set.percentile: out of range") (fun () ->
      ignore (Sample_set.percentile s 101.))

let test_add_after_query () =
  (* Queries sort internally; later adds must still be seen. *)
  let s = of_list [ 5; 1 ] in
  check_int "max before" 5 (Sample_set.max_value s);
  Sample_set.add s 10;
  check_int "max after" 10 (Sample_set.max_value s);
  check_int "count" 3 (Sample_set.count s)

let test_clear () =
  let s = of_list [ 1; 2; 3 ] in
  Sample_set.clear s;
  check_bool "cleared" true (Sample_set.is_empty s);
  Sample_set.add s 7;
  check_int "usable after clear" 7 (Sample_set.median s)

let test_cdf () =
  let s = of_list [ 10; 20; 30; 40 ] in
  let cdf = Sample_set.cdf ~points:4 s in
  Alcotest.(check (list (pair int (float 1e-9))))
    "cdf points"
    [ (10, 0.25); (20, 0.5); (30, 0.75); (40, 1.) ]
    cdf

let test_merge () =
  let a = of_list [ 1; 2 ] and b = of_list [ 3 ] in
  let m = Sample_set.merge a b in
  check_int "merged count" 3 (Sample_set.count m);
  check_float "merged mean" 2. (Sample_set.mean m);
  check_int "originals untouched" 2 (Sample_set.count a)

let percentile_prop =
  QCheck.Test.make ~name:"percentile matches a naive nearest-rank computation"
    ~count:300
    QCheck.(pair (list_of_size Gen.(int_range 1 50) (int_bound 1000)) (int_bound 100))
    (fun (xs, p) ->
      let s = of_list xs in
      let sorted = List.sort compare xs in
      let n = List.length xs in
      let rank = int_of_float (ceil (float_of_int p /. 100. *. float_of_int n)) in
      let idx = max 0 (min (n - 1) (rank - 1)) in
      Sample_set.percentile s (float_of_int p) = List.nth sorted idx)

let mean_prop =
  QCheck.Test.make ~name:"mean within [min, max]" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 50) (int_bound 10_000))
    (fun xs ->
      let s = of_list xs in
      let m = Sample_set.mean s in
      float_of_int (Sample_set.min_value s) <= m
      && m <= float_of_int (Sample_set.max_value s))

(* {1 Table} *)

let test_table_render () =
  let t = Table.make ~title:"demo" ~headers:[ "col"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "long-cell"; "22" ];
  let s = Table.render t in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  check_bool "has title" true (contains s "== demo ==");
  Alcotest.(check (list (list string)))
    "rows" [ [ "a"; "1" ]; [ "long-cell"; "22" ] ] (Table.rows t)

let test_table_padding_and_overflow () =
  let t = Table.make ~title:"t" ~headers:[ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  Alcotest.(check (list (list string))) "padded" [ [ "x"; ""; "" ] ] (Table.rows t);
  Alcotest.check_raises "too many cells" (Invalid_argument "Table.add_row: too many cells")
    (fun () -> Table.add_row t [ "1"; "2"; "3"; "4" ])

let test_cells () =
  Alcotest.(check string) "us" "35.4" (Table.cell_us 35_400);
  Alcotest.(check string) "ms" "109.40" (Table.cell_ms 109_400_000);
  Alcotest.(check string) "pct" "8.0%" (Table.cell_pct 0.08);
  Alcotest.(check string) "float" "1.50" (Table.cell_float 1.5);
  Alcotest.(check string) "int" "42" (Table.cell_int 42)

let tc name f = Alcotest.test_case name `Quick f
let qc t = QCheck_alcotest.to_alcotest t

let suite =
  [
    ( "stats.sample_set",
      [
        tc "empty" test_empty;
        tc "basic stats" test_basic_stats;
        tc "percentiles" test_percentiles;
        tc "add after query" test_add_after_query;
        tc "clear" test_clear;
        tc "cdf" test_cdf;
        tc "merge" test_merge;
        qc percentile_prop;
        qc mean_prop;
      ] );
    ( "stats.table",
      [
        tc "render" test_table_render;
        tc "padding and overflow" test_table_padding_and_overflow;
        tc "cell formatting" test_cells;
      ] );
  ]

let () = Alcotest.run "heron_stats" suite
