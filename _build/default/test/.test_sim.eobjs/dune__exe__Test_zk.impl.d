test/test_zk.ml: Alcotest Config Engine Fabric Heron_core Heron_lincheck Heron_rdma Heron_sim Heron_zk List Printf Random System Time_ns Zk_app
