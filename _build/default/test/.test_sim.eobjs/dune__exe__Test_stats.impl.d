test/test_stats.ml: Alcotest Gen Heron_stats List QCheck QCheck_alcotest Sample_set String Table
