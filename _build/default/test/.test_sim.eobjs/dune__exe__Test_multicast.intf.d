test/test_multicast.mli:
