test/test_multicast.ml: Alcotest Array Engine Fabric Fun Hashtbl Heron_multicast Heron_rdma Heron_sim List Printf Profile QCheck QCheck_alcotest Ramcast Stdlib String Time_ns Tstamp
