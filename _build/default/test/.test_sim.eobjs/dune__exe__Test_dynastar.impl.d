test/test_dynastar.ml: Alcotest Bytes Dynastar Engine Heron_core Heron_dynastar Heron_sim Heron_tpcc List Msgnet Oid Oid_codec Option Printf Random Ref_exec Scale Time_ns Tx Workload
