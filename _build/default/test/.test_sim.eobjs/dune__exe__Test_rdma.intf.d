test/test_rdma.mli:
