test/test_ycsb.mli:
