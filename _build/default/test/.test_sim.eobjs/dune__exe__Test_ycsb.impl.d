test/test_ycsb.ml: Alcotest Array Config Engine Fabric Heron_core Heron_lincheck Heron_rdma Heron_sim Heron_ycsb List Printf Random System Time_ns Ycsb_app Zipf
