test/test_dynastar.mli:
