test/test_zk.mli:
