test/test_lincheck.ml: Alcotest Config Engine Fabric Gen Heron_core Heron_kv Heron_lincheck Heron_rdma Heron_sim Int Int64 Kv_app Lincheck List Printf QCheck QCheck_alcotest Random System Time_ns
