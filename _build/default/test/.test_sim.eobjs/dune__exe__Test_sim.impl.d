test/test_sim.ml: Alcotest Engine Format Fun Heron_sim Ivar List Mailbox Prio_queue QCheck QCheck_alcotest Random Signal String Time_ns Trace
