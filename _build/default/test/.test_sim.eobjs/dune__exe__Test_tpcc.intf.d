test/test_tpcc.mli:
