test/test_rdma.ml: Alcotest Bytes Char Engine Fabric Heron_rdma Heron_sim Int64 Memory Option Profile Qp Signal Time_ns
