(* Tests for the coordination-service application (heron_zk): znode
   semantics, cross-partition snapshot consistency (the service-level
   version of the Figure 3 invariant), and linearizability of real
   histories against a pure tree model. *)

open Heron_sim
open Heron_rdma
open Heron_core
open Heron_zk

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Paths and oids} *)

let test_paths () =
  let p2 = Zk_app.partition_of_path ~partitions:4 in
  check_int "stable" (p2 [ "app"; "x" ]) (p2 [ "app"; "y" ]);
  check_bool "bad segment rejected" true
    (try
       ignore (Zk_app.partition_of_path ~partitions:2 [ "a/b" ]);
       false
     with Invalid_argument _ -> true);
  check_bool "empty path rejected" true
    (try
       ignore (Zk_app.partition_of_path ~partitions:2 []);
       false
     with Invalid_argument _ -> true)

(* {1 System harness} *)

type zk_world = { eng : Engine.t; sys : (Zk_app.req, Zk_app.resp) System.t }

let make_zk ?(seed = 1) ?(partitions = 2) ?(roots = [ ("app", "root"); ("cfg", "root") ])
    () =
  let eng = Engine.create ~seed () in
  let cfg = Config.default ~partitions ~replicas:3 in
  let sys = System.create eng ~cfg ~app:(Zk_app.app ~partitions ~roots) in
  System.start sys;
  { eng; sys }

let do_op w node req = Zk_app.merge (System.submit w.sys ~from:node req)

let expect name expected got =
  if got <> expected then
    Alcotest.failf "%s: expected %a, got %a" name Zk_app.pp_resp expected Zk_app.pp_resp
      got

(* {1 Znode semantics} *)

let test_zk_crud () =
  let w = make_zk ~partitions:1 () in
  let node = System.new_client_node w.sys ~name:"c" in
  let finished = ref false in
  Fabric.spawn_on node (fun () ->
      let op = do_op w node in
      expect "read root" (Zk_app.Z_data { data = "root"; version = 0 })
        (op (Zk_app.Read [ "app" ]));
      expect "missing node" (Zk_app.Z_err Zk_app.No_node) (op (Zk_app.Read [ "app"; "x" ]));
      expect "create" Zk_app.Z_ok
        (op (Zk_app.Create { path = [ "app"; "x" ]; data = "1" }));
      expect "create duplicate" (Zk_app.Z_err Zk_app.Node_exists)
        (op (Zk_app.Create { path = [ "app"; "x" ]; data = "2" }));
      expect "create under missing parent" (Zk_app.Z_err Zk_app.No_node)
        (op (Zk_app.Create { path = [ "app"; "nope"; "y" ]; data = "" }));
      expect "read created" (Zk_app.Z_data { data = "1"; version = 0 })
        (op (Zk_app.Read [ "app"; "x" ]));
      expect "write" Zk_app.Z_ok (op (Zk_app.Write { path = [ "app"; "x" ]; data = "2" }));
      expect "version bumped" (Zk_app.Z_data { data = "2"; version = 1 })
        (op (Zk_app.Read [ "app"; "x" ]));
      expect "cas wrong version" (Zk_app.Z_err Zk_app.Bad_version)
        (op (Zk_app.Cas { path = [ "app"; "x" ]; expect = 0; data = "3" }));
      expect "cas right version" Zk_app.Z_ok
        (op (Zk_app.Cas { path = [ "app"; "x" ]; expect = 1; data = "3" }));
      expect "children" (Zk_app.Z_children [ "x" ]) (op (Zk_app.Children [ "app" ]));
      expect "delete nonempty parent" (Zk_app.Z_err Zk_app.Not_empty)
        (op (Zk_app.Delete [ "app" ]));
      expect "delete" Zk_app.Z_ok (op (Zk_app.Delete [ "app"; "x" ]));
      expect "deleted reads absent" (Zk_app.Z_err Zk_app.No_node)
        (op (Zk_app.Read [ "app"; "x" ]));
      expect "children updated" (Zk_app.Z_children []) (op (Zk_app.Children [ "app" ]));
      expect "recreate after delete" Zk_app.Z_ok
        (op (Zk_app.Create { path = [ "app"; "x" ]; data = "fresh" }));
      expect "recreated at version 0" (Zk_app.Z_data { data = "fresh"; version = 0 })
        (op (Zk_app.Read [ "app"; "x" ]));
      finished := true);
  Engine.run_until w.eng (Time_ns.s 1);
  check_bool "scenario completed" true !finished

let test_zk_multi_partition_snapshot () =
  (* The Figure 3 invariant at service level: Touch bumps versions of
     znodes in different partitions atomically; Multi_read snapshots
     must always see them equal. *)
  let roots = [ ("a", "x"); ("b", "x"); ("c", "x"); ("d", "x") ] in
  let partitions = 3 in
  let w = make_zk ~partitions ~roots () in
  (* Pick two roots in different partitions. *)
  let p name = Zk_app.partition_of_path ~partitions [ name ] in
  let r1, r2 =
    match List.filter (fun (n, _) -> p n <> p "a") roots with
    | (n, _) :: _ -> ("a", n)
    | [] -> Alcotest.fail "all roots in one partition"
  in
  let violations = ref 0 and snapshots = ref 0 in
  for c = 0 to 1 do
    let node = System.new_client_node w.sys ~name:(Printf.sprintf "w%d" c) in
    Fabric.spawn_on node (fun () ->
        for _ = 1 to 25 do
          ignore (do_op w node (Zk_app.Touch [ [ r1 ]; [ r2 ] ]))
        done)
  done;
  for c = 0 to 1 do
    let node = System.new_client_node w.sys ~name:(Printf.sprintf "r%d" c) in
    Fabric.spawn_on node (fun () ->
        for _ = 1 to 25 do
          match do_op w node (Zk_app.Multi_read [ [ r1 ]; [ r2 ] ]) with
          | Zk_app.Z_snapshot entries -> (
              incr snapshots;
              match List.map snd entries with
              | [ Some (_, v1); Some (_, v2) ] -> if v1 <> v2 then incr violations
              | _ -> incr violations)
          | _ -> incr violations
        done)
  done;
  Engine.run_until w.eng (Time_ns.s 2);
  check_int "snapshots taken" 50 !snapshots;
  check_int "no torn snapshots" 0 !violations

(* {1 Linearizability against a pure tree model} *)

type model = (Zk_app.path * (string * int * string list)) list
(* assoc list path -> (data, version, children) *)

let model_apply (state : model) req : model * Zk_app.resp =
  let find p = List.assoc_opt p state in
  let update p v = (p, v) :: List.remove_assoc p state in
  match req with
  | Zk_app.Create { path; data } -> (
      match find path with
      | Some _ -> (state, Zk_app.Z_err Zk_app.Node_exists)
      | None -> (
          match List.rev path with
          | [ _ ] -> (update path (data, 0, []), Zk_app.Z_ok)
          | leaf :: rparent -> (
              let parent = List.rev rparent in
              match find parent with
              | None -> (state, Zk_app.Z_err Zk_app.No_node)
              | Some (pd, pv, pc) ->
                  let state = update parent (pd, pv, pc @ [ leaf ]) in
                  ((path, (data, 0, [])) :: state, Zk_app.Z_ok))
          | [] -> assert false))
  | Zk_app.Read p -> (
      match find p with
      | Some (d, v, _) -> (state, Zk_app.Z_data { data = d; version = v })
      | None -> (state, Zk_app.Z_err Zk_app.No_node))
  | Zk_app.Write { path; data } -> (
      match find path with
      | Some (_, v, c) -> (update path (data, v + 1, c), Zk_app.Z_ok)
      | None -> (state, Zk_app.Z_err Zk_app.No_node))
  | Zk_app.Cas { path; expect; data } -> (
      match find path with
      | Some (_, v, c) when v = expect -> (update path (data, v + 1, c), Zk_app.Z_ok)
      | Some _ -> (state, Zk_app.Z_err Zk_app.Bad_version)
      | None -> (state, Zk_app.Z_err Zk_app.No_node))
  | Zk_app.Delete p -> (
      match find p with
      | None -> (state, Zk_app.Z_err Zk_app.No_node)
      | Some (_, _, _ :: _) -> (state, Zk_app.Z_err Zk_app.Not_empty)
      | Some (_, _, []) ->
          let state = List.remove_assoc p state in
          let state =
            match List.rev p with
            | _ :: (_ :: _ as rparent) -> (
                let parent = List.rev rparent in
                let leaf = List.nth p (List.length p - 1) in
                match List.assoc_opt parent state with
                | Some (pd, pv, pc) ->
                    (parent, (pd, pv, List.filter (( <> ) leaf) pc))
                    :: List.remove_assoc parent state
                | None -> state)
            | _ -> state
          in
          (state, Zk_app.Z_ok))
  | Zk_app.Children p -> (
      match find p with
      | Some (_, _, c) -> (state, Zk_app.Z_children c)
      | None -> (state, Zk_app.Z_err Zk_app.No_node))
  | Zk_app.Touch ps ->
      let state =
        List.fold_left
          (fun st p ->
            match List.assoc_opt p st with
            | Some (d, v, c) -> (p, (d, v + 1, c)) :: List.remove_assoc p st
            | None -> st)
          state ps
      in
      (state, Zk_app.Z_ok)
  | Zk_app.Multi_read ps ->
      ( state,
        Zk_app.Z_snapshot
          (List.sort compare
             (List.map
                (fun p ->
                  (p, match find p with Some (d, v, _) -> Some (d, v) | None -> None))
                ps)) )

(* Canonicalize: the model keeps the assoc list unordered; sort it so
   memoization keys are stable. *)
let model_norm (state : model) : model = List.sort compare state

let zk_spec ~roots : (Zk_app.req, Zk_app.resp, model) Heron_lincheck.Lincheck.spec =
  {
    Heron_lincheck.Lincheck.initial =
      model_norm (List.map (fun (n, d) -> ([ n ], (d, 0, []))) roots);
    apply =
      (fun state req ->
        let state', resp = model_apply state req in
        (model_norm state', resp));
    equal_result = ( = );
  }

let test_zk_linearizable () =
  let roots = [ ("a", "0"); ("b", "0") ] in
  let w = make_zk ~seed:51 ~partitions:2 ~roots () in
  let events = ref [] in
  for c = 0 to 2 do
    let node = System.new_client_node w.sys ~name:(Printf.sprintf "c%d" c) in
    let rng = Random.State.make [| 51; c |] in
    Fabric.spawn_on node (fun () ->
        for _ = 1 to 12 do
          let root = if Random.State.bool rng then "a" else "b" in
          let req =
            match Random.State.int rng 6 with
            | 0 -> Zk_app.Create { path = [ root; Printf.sprintf "n%d" (Random.State.int rng 3) ]; data = "d" }
            | 1 -> Zk_app.Read [ root ]
            | 2 -> Zk_app.Write { path = [ root ]; data = Printf.sprintf "v%d" (Random.State.int rng 5) }
            | 3 -> Zk_app.Children [ root ]
            | 4 -> Zk_app.Touch [ [ "a" ]; [ "b" ] ]
            | _ -> Zk_app.Multi_read [ [ "a" ]; [ "b" ] ]
          in
          let t0 = Engine.self_now () in
          let resp = do_op w node req in
          let t1 = Engine.self_now () in
          events :=
            { Heron_lincheck.Lincheck.ev_client = c; ev_op = req; ev_result = resp;
              ev_invoke = t0; ev_return = t1 }
            :: !events
        done)
  done;
  Engine.run_until w.eng (Time_ns.s 5);
  check_int "all ops answered" 36 (List.length !events);
  match
    Heron_lincheck.Lincheck.counterexample_free (zk_spec ~roots) (List.rev !events)
  with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_zk_merge () =
  let snap part entries = (part, Zk_app.Z_snapshot entries) in
  let merged =
    Zk_app.merge
      [ snap 0 [ ([ "b" ], None) ]; snap 1 [ ([ "a" ], Some ("x", 1)) ] ]
  in
  check_bool "snapshots merge in canonical order" true
    (merged = Zk_app.Z_snapshot [ ([ "a" ], Some ("x", 1)); ([ "b" ], None) ]);
  check_bool "identical responses pass through" true
    (Zk_app.merge [ (0, Zk_app.Z_ok); (1, Zk_app.Z_ok) ] = Zk_app.Z_ok)

let tc name f = Alcotest.test_case name `Quick f

let suite =
  [
    ("zk.paths", [ tc "partitioning and validation" test_paths ]);
    ( "zk.semantics",
      [ tc "crud and errors" test_zk_crud; tc "merge" test_zk_merge ] );
    ( "zk.consistency",
      [
        tc "cross-partition snapshot invariant" test_zk_multi_partition_snapshot;
        tc "histories linearize against the tree model" test_zk_linearizable;
      ] );
  ]

let () = Alcotest.run "heron_zk" suite
