(* Tests for heron_multicast: the timestamped atomic multicast.

   The qcheck properties check the Section II-B guarantees on random
   workloads: integrity, validity/uniform agreement (failure-free),
   per-process timestamp monotonicity (which, with unique timestamps,
   implies uniform prefix order and acyclic order), and timestamp
   consistency across processes. *)

open Heron_sim
open Heron_rdma
open Heron_multicast

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Tstamp} *)

let test_tstamp_order () =
  let a = Tstamp.make ~clock:1 ~uid:5 in
  let b = Tstamp.make ~clock:2 ~uid:1 in
  let c = Tstamp.make ~clock:1 ~uid:6 in
  check_bool "clock dominates" true Tstamp.(a < b);
  check_bool "uid tie-break" true Tstamp.(a < c);
  check_bool "zero smallest" true Tstamp.(zero < a);
  check_bool "equal" true (Tstamp.equal a (Tstamp.make ~clock:1 ~uid:5))

let test_tstamp_int64_roundtrip () =
  let t = Tstamp.make ~clock:123_456 ~uid:789 in
  check_bool "roundtrip" true (Tstamp.equal t (Tstamp.of_int64 (Tstamp.to_int64 t)))

let tstamp_pack_order_prop =
  QCheck.Test.make ~name:"tstamp int64 order matches compare" ~count:500
    QCheck.(quad (int_bound 1_000_000) (int_bound 8_000_000) (int_bound 1_000_000)
              (int_bound 8_000_000))
    (fun (c1, u1, c2, u2) ->
      let a = Tstamp.make ~clock:c1 ~uid:u1 in
      let b = Tstamp.make ~clock:c2 ~uid:u2 in
      Stdlib.compare (Tstamp.to_int64 a) (Tstamp.to_int64 b)
      = Tstamp.compare a b)

let test_tstamp_out_of_range () =
  Alcotest.check_raises "uid too large"
    (Invalid_argument "Tstamp.to_int64: uid out of range") (fun () ->
      ignore (Tstamp.to_int64 (Tstamp.make ~clock:0 ~uid:(1 lsl 23))))

(* {1 Multicast harness}

   [run_workload] builds [n_groups] groups of [n_replicas] and
   [n_clients] clients, submits the given (client, dst) list, runs the
   sim, and returns per-member delivery sequences. *)

type world = {
  eng : Engine.t;
  sys : string Ramcast.t;
  deliveries : string Ramcast.delivery list ref array array;
  nodes : Fabric.node array array;
  clients : Fabric.node array;
}

let make_world ?(config = Ramcast.default_config) ?(seed = 1) ~n_groups ~n_replicas
    ~n_clients () =
  let eng = Engine.create ~seed () in
  let fab = Fabric.create eng ~profile:Profile.default in
  let nodes =
    Array.init n_groups (fun g ->
        Array.init n_replicas (fun i ->
            Fabric.add_node fab ~name:(Printf.sprintf "g%d-r%d" g i)))
  in
  let clients =
    Array.init n_clients (fun i -> Fabric.add_node fab ~name:(Printf.sprintf "c%d" i))
  in
  let sys =
    Ramcast.create ~config fab ~size_of:String.length ~groups:nodes
  in
  let deliveries =
    Array.init n_groups (fun _ -> Array.init n_replicas (fun _ -> ref []))
  in
  for g = 0 to n_groups - 1 do
    for i = 0 to n_replicas - 1 do
      let cell = deliveries.(g).(i) in
      Ramcast.set_deliver sys ~gid:g ~idx:i (fun d -> cell := d :: !cell)
    done
  done;
  Ramcast.start sys;
  { eng; sys; deliveries; nodes; clients }

let submit_all w msgs =
  (* [msgs]: (client idx, dst list, payload) triples; each client sends
     its messages in order, spaced a little apart. *)
  Array.iteri
    (fun ci client ->
      let mine = List.filter (fun (c, _, _) -> c = ci) msgs in
      Fabric.spawn_on client (fun () ->
          List.iter
            (fun (_, dst, payload) ->
              ignore (Ramcast.multicast w.sys ~from:client ~dst payload);
              Engine.sleep (Time_ns.us 2))
            mine))
    w.clients

let seq w g i = List.rev !(w.deliveries.(g).(i))

(* Property checks shared by unit and qcheck tests; raise Failure with
   a description when violated. *)
let check_properties w ~n_groups ~n_replicas ~(sent : (int list * string) list) =
  (* Integrity: delivered only to destinations, at most once, only sent
     messages. *)
  for g = 0 to n_groups - 1 do
    for i = 0 to n_replicas - 1 do
      let s = seq w g i in
      List.iter
        (fun (d : string Ramcast.delivery) ->
          if not (List.mem g d.Ramcast.d_dst) then
            failwith "integrity: delivered to non-destination")
        s;
      let uids = List.map (fun d -> d.Ramcast.d_uid) s in
      if List.length (List.sort_uniq compare uids) <> List.length uids then
        failwith "integrity: duplicate delivery"
    done
  done;
  (* Validity + uniform agreement (failure-free runs): every member of
     every destination group delivered every message. *)
  let total_sent = List.length sent in
  List.iteri
    (fun idx (dst, payload) ->
      ignore idx;
      List.iter
        (fun g ->
          for i = 0 to n_replicas - 1 do
            let s = seq w g i in
            if
              not
                (List.exists
                   (fun (d : string Ramcast.delivery) ->
                     d.Ramcast.d_payload = payload && d.Ramcast.d_dst = dst)
                   s)
            then
              failwith
                (Printf.sprintf "validity: g%d/r%d missed a message (of %d)" g i
                   total_sent)
          done)
        dst)
    sent;
  (* Monotonicity: every member's delivery sequence has strictly
     increasing timestamps; with agreement on timestamps this implies
     uniform prefix order and acyclic order. *)
  let tmp_of_uid = Hashtbl.create 64 in
  for g = 0 to n_groups - 1 do
    for i = 0 to n_replicas - 1 do
      let s = seq w g i in
      let rec mono = function
        | a :: (b :: _ as rest) ->
            if not Tstamp.(a.Ramcast.d_tmp < b.Ramcast.d_tmp) then
              failwith "order: timestamps not strictly increasing";
            mono rest
        | [ _ ] | [] -> ()
      in
      mono s;
      List.iter
        (fun (d : string Ramcast.delivery) ->
          match Hashtbl.find_opt tmp_of_uid d.Ramcast.d_uid with
          | None -> Hashtbl.replace tmp_of_uid d.Ramcast.d_uid d.Ramcast.d_tmp
          | Some t ->
              if not (Tstamp.equal t d.Ramcast.d_tmp) then
                failwith "order: same message, different timestamps")
        s
    done
  done

(* {1 Unit tests} *)

let test_single_group_delivery () =
  let w = make_world ~n_groups:1 ~n_replicas:3 ~n_clients:1 () in
  submit_all w [ (0, [ 0 ], "a"); (0, [ 0 ], "b"); (0, [ 0 ], "c") ];
  Engine.run_until w.eng (Time_ns.ms 5);
  for i = 0 to 2 do
    Alcotest.(check (list string))
      (Printf.sprintf "replica %d order" i)
      [ "a"; "b"; "c" ]
      (List.map (fun d -> d.Ramcast.d_payload) (seq w 0 i))
  done;
  check_properties w ~n_groups:1 ~n_replicas:3
    ~sent:[ ([ 0 ], "a"); ([ 0 ], "b"); ([ 0 ], "c") ]

let test_multi_group_same_order () =
  let w = make_world ~n_groups:3 ~n_replicas:3 ~n_clients:2 () in
  let msgs =
    [
      (0, [ 0; 1 ], "m1");
      (1, [ 1; 2 ], "m2");
      (0, [ 0; 1; 2 ], "m3");
      (1, [ 0; 2 ], "m4");
      (0, [ 1 ], "m5");
    ]
  in
  submit_all w msgs;
  Engine.run_until w.eng (Time_ns.ms 10);
  check_properties w ~n_groups:3 ~n_replicas:3
    ~sent:(List.map (fun (_, d, p) -> (d, p)) msgs);
  (* Messages m1 and m3 share groups 0 and 1: all six replicas must
     order them the same way. *)
  let order g i =
    List.filter_map
      (fun (d : string Ramcast.delivery) ->
        if d.Ramcast.d_payload = "m1" || d.Ramcast.d_payload = "m3" then
          Some d.Ramcast.d_payload
        else None)
      (seq w g i)
  in
  let reference = order 0 0 in
  check_int "both present" 2 (List.length reference);
  for g = 0 to 1 do
    for i = 0 to 2 do
      Alcotest.(check (list string)) "same relative order" reference (order g i)
    done
  done

let test_delivery_latency_single_group () =
  (* One message to one group of 3: delivery at the leader should take
     a handful of microseconds (submit + replicate + ack). *)
  let w = make_world ~n_groups:1 ~n_replicas:3 ~n_clients:1 () in
  let delivered_at = ref 0 in
  Ramcast.set_deliver w.sys ~gid:0 ~idx:0 (fun _ -> delivered_at := Engine.now w.eng);
  Fabric.spawn_on w.clients.(0) (fun () ->
      ignore (Ramcast.multicast w.sys ~from:w.clients.(0) ~dst:[ 0 ] "x"));
  Engine.run_until w.eng (Time_ns.ms 1);
  check_bool "delivered" true (!delivered_at > 0);
  check_bool "microsecond scale" true (!delivered_at < Time_ns.us 15)

let test_group_of_one () =
  let w = make_world ~n_groups:2 ~n_replicas:1 ~n_clients:1 () in
  submit_all w [ (0, [ 0; 1 ], "a"); (0, [ 1 ], "b") ];
  Engine.run_until w.eng (Time_ns.ms 5);
  check_properties w ~n_groups:2 ~n_replicas:1
    ~sent:[ ([ 0; 1 ], "a"); ([ 1 ], "b") ]

let test_dst_normalized () =
  let w = make_world ~n_groups:2 ~n_replicas:1 ~n_clients:1 () in
  Fabric.spawn_on w.clients.(0) (fun () ->
      ignore (Ramcast.multicast w.sys ~from:w.clients.(0) ~dst:[ 1; 0; 1 ] "dup"));
  Engine.run_until w.eng (Time_ns.ms 5);
  List.iter
    (fun g ->
      let s = seq w g 0 in
      check_int "one delivery" 1 (List.length s);
      Alcotest.(check (list int)) "sorted dedup dst" [ 0; 1 ]
        (List.hd s).Ramcast.d_dst)
    [ 0; 1 ]

let test_empty_dst_rejected () =
  let w = make_world ~n_groups:1 ~n_replicas:1 ~n_clients:1 () in
  let raised = ref false in
  Fabric.spawn_on w.clients.(0) (fun () ->
      try ignore (Ramcast.multicast w.sys ~from:w.clients.(0) ~dst:[] "x")
      with Invalid_argument _ -> raised := true);
  Engine.run_until w.eng (Time_ns.ms 1);
  check_bool "rejected" true !raised

let test_even_group_rejected () =
  let eng = Engine.create () in
  let fab = Fabric.create eng ~profile:Profile.default in
  let nodes = Array.init 2 (fun i -> Fabric.add_node fab ~name:(string_of_int i)) in
  check_bool "even size rejected" true
    (try
       ignore (Ramcast.create fab ~size_of:String.length ~groups:[| nodes |]);
       false
     with Invalid_argument _ -> true)

(* {1 Failure tests} *)

let test_follower_failure () =
  (* With one dead follower (f = 1, n = 3) messages still flow. *)
  let w = make_world ~n_groups:1 ~n_replicas:3 ~n_clients:1 () in
  Fabric.crash w.nodes.(0).(2);
  submit_all w [ (0, [ 0 ], "a"); (0, [ 0 ], "b") ];
  Engine.run_until w.eng (Time_ns.ms 5);
  Alcotest.(check (list string))
    "leader delivered" [ "a"; "b" ]
    (List.map (fun d -> d.Ramcast.d_payload) (seq w 0 0));
  Alcotest.(check (list string))
    "live follower delivered" [ "a"; "b" ]
    (List.map (fun d -> d.Ramcast.d_payload) (seq w 0 1))

let test_leader_failover () =
  let w = make_world ~n_groups:1 ~n_replicas:3 ~n_clients:1 () in
  let client = w.clients.(0) in
  Fabric.spawn_on client (fun () ->
      ignore (Ramcast.multicast w.sys ~from:client ~dst:[ 0 ] "before");
      Engine.sleep (Time_ns.ms 1);
      Fabric.crash w.nodes.(0).(0);
      (* Wait past the liveness check period, then submit again; the
         multicast call itself retries through the leader change. *)
      Engine.sleep (Time_ns.ms 1);
      ignore (Ramcast.multicast w.sys ~from:client ~dst:[ 0 ] "after"));
  Engine.run_until w.eng (Time_ns.ms 20);
  check_int "replica 1 took over" 1 (Ramcast.leader_idx w.sys ~gid:0);
  List.iter
    (fun i ->
      Alcotest.(check (list string))
        (Printf.sprintf "replica %d delivered both" i)
        [ "before"; "after" ]
        (List.map (fun d -> d.Ramcast.d_payload) (seq w 0 i)))
    [ 1; 2 ]

let test_leader_failover_multi_group () =
  (* A message spanning two groups is submitted after group 0's leader
     died: the takeover must let cross-group agreement finish. *)
  let w = make_world ~n_groups:2 ~n_replicas:3 ~n_clients:1 () in
  let client = w.clients.(0) in
  Fabric.spawn_on client (fun () ->
      ignore (Ramcast.multicast w.sys ~from:client ~dst:[ 0; 1 ] "m1");
      Engine.sleep (Time_ns.ms 1);
      Fabric.crash w.nodes.(0).(0);
      Engine.sleep (Time_ns.ms 1);
      ignore (Ramcast.multicast w.sys ~from:client ~dst:[ 0; 1 ] "m2"));
  Engine.run_until w.eng (Time_ns.ms 20);
  List.iter
    (fun (g, i) ->
      Alcotest.(check (list string))
        (Printf.sprintf "g%d/r%d got both" g i)
        [ "m1"; "m2" ]
        (List.map (fun d -> d.Ramcast.d_payload) (seq w g i)))
    [ (0, 1); (0, 2); (1, 0); (1, 1); (1, 2) ]

(* {1 Property-based ordering tests} *)

let workload_gen =
  (* (n_groups, messages as (client, dst-mask, payload-index)) *)
  QCheck.Gen.(
    let* n_groups = int_range 1 3 in
    let* n_msgs = int_range 1 25 in
    let* masks =
      list_repeat n_msgs (int_range 1 ((1 lsl n_groups) - 1))
    in
    let* clients = list_repeat n_msgs (int_range 0 2) in
    return (n_groups, List.combine clients masks))

let dst_of_mask n_groups mask =
  List.filter (fun g -> mask land (1 lsl g) <> 0) (List.init n_groups Fun.id)

let mcast_props_prop =
  QCheck.Test.make ~name:"multicast ordering properties (random workloads)"
    ~count:40
    (QCheck.make workload_gen)
    (fun (n_groups, msgs) ->
      let w = make_world ~n_groups ~n_replicas:3 ~n_clients:3 () in
      let triples =
        List.mapi
          (fun i (c, mask) ->
            (c, dst_of_mask n_groups mask, Printf.sprintf "p%d" i))
          msgs
      in
      submit_all w triples;
      Engine.run_until w.eng (Time_ns.ms 50);
      check_properties w ~n_groups ~n_replicas:3
        ~sent:(List.map (fun (_, d, p) -> (d, p)) triples);
      true)

let mcast_no_failover_prop =
  QCheck.Test.make ~name:"multicast properties with failover support off"
    ~count:20
    (QCheck.make workload_gen)
    (fun (n_groups, msgs) ->
      let config = { Ramcast.default_config with failover = false } in
      let w = make_world ~config ~n_groups ~n_replicas:3 ~n_clients:3 () in
      let triples =
        List.mapi
          (fun i (c, mask) ->
            (c, dst_of_mask n_groups mask, Printf.sprintf "p%d" i))
          msgs
      in
      submit_all w triples;
      Engine.run_until w.eng (Time_ns.ms 50);
      check_properties w ~n_groups ~n_replicas:3
        ~sent:(List.map (fun (_, d, p) -> (d, p)) triples);
      true)

let mcast_batching_prop =
  QCheck.Test.make ~name:"multicast properties with batching on" ~count:20
    (QCheck.make workload_gen)
    (fun (n_groups, msgs) ->
      let config = { Ramcast.default_config with batching = true } in
      let w = make_world ~config ~n_groups ~n_replicas:3 ~n_clients:3 () in
      let triples =
        List.mapi
          (fun i (c, mask) -> (c, dst_of_mask n_groups mask, Printf.sprintf "p%d" i))
          msgs
      in
      submit_all w triples;
      Engine.run_until w.eng (Time_ns.ms 50);
      check_properties w ~n_groups ~n_replicas:3
        ~sent:(List.map (fun (_, d, p) -> (d, p)) triples);
      true)

let mcast_follower_crash_prop =
  (* One follower per group is dead from the start: survivors must
     still satisfy integrity, per-process monotonicity and timestamp
     agreement (validity restricted to live members). *)
  QCheck.Test.make ~name:"multicast properties with one dead follower per group"
    ~count:15
    (QCheck.make workload_gen)
    (fun (n_groups, msgs) ->
      let w = make_world ~n_groups ~n_replicas:3 ~n_clients:3 () in
      for g = 0 to n_groups - 1 do
        Fabric.crash w.nodes.(g).(2)
      done;
      let triples =
        List.mapi
          (fun i (c, mask) -> (c, dst_of_mask n_groups mask, Printf.sprintf "p%d" i))
          msgs
      in
      submit_all w triples;
      Engine.run_until w.eng (Time_ns.ms 50);
      (* Check on survivors only. *)
      let tmp_of_uid = Hashtbl.create 64 in
      for g = 0 to n_groups - 1 do
        for i = 0 to 1 do
          let s = seq w g i in
          let rec mono = function
            | a :: (b :: _ as rest) ->
                if not Tstamp.(a.Ramcast.d_tmp < b.Ramcast.d_tmp) then
                  failwith "order: not increasing";
                mono rest
            | [ _ ] | [] -> ()
          in
          mono s;
          List.iter
            (fun (d : string Ramcast.delivery) ->
              if not (List.mem g d.Ramcast.d_dst) then failwith "integrity: wrong group";
              match Hashtbl.find_opt tmp_of_uid d.Ramcast.d_uid with
              | None -> Hashtbl.replace tmp_of_uid d.Ramcast.d_uid d.Ramcast.d_tmp
              | Some t ->
                  if not (Tstamp.equal t d.Ramcast.d_tmp) then
                    failwith "order: timestamp disagreement")
            s
        done;
        (* Live members of the same group delivered the same sequence. *)
        let payloads i = List.map (fun d -> d.Ramcast.d_payload) (seq w g i) in
        if payloads 0 <> payloads 1 then failwith "agreement: sequences differ"
      done;
      (* Every message was delivered by its destination groups'
         survivors (validity with f = 1). *)
      List.iter
        (fun (_, dst, p) ->
          List.iter
            (fun g ->
              if not (List.exists (fun d -> d.Ramcast.d_payload = p) (seq w g 0)) then
                failwith "validity: lost message")
            dst)
        triples;
      true)

let tc name f = Alcotest.test_case name `Quick f
let qc t = QCheck_alcotest.to_alcotest t

let suite =
  [
    ( "multicast.tstamp",
      [
        tc "ordering" test_tstamp_order;
        tc "int64 roundtrip" test_tstamp_int64_roundtrip;
        tc "out of range" test_tstamp_out_of_range;
        qc tstamp_pack_order_prop;
      ] );
    ( "multicast.delivery",
      [
        tc "single group total order" test_single_group_delivery;
        tc "multi-group consistent order" test_multi_group_same_order;
        tc "delivery latency" test_delivery_latency_single_group;
        tc "groups of one" test_group_of_one;
        tc "dst normalized" test_dst_normalized;
        tc "empty dst rejected" test_empty_dst_rejected;
        tc "even group rejected" test_even_group_rejected;
      ] );
    ( "multicast.failures",
      [
        tc "follower failure" test_follower_failure;
        tc "leader failover" test_leader_failover;
        tc "leader failover multi-group" test_leader_failover_multi_group;
      ] );
    ( "multicast.properties",
      [
        qc mcast_props_prop;
        qc mcast_no_failover_prop;
        qc mcast_batching_prop;
        qc mcast_follower_crash_prop;
      ] );
  ]

let () = Alcotest.run "heron_multicast" suite
