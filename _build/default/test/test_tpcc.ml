(* Tests for heron_tpcc: codecs, oid packing, data generation, the
   workload mix, and — most importantly — differential testing of the
   full Heron deployment against the sequential reference executor. *)

open Heron_sim
open Heron_rdma
open Heron_core
open Heron_tpcc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Codec} *)

let test_codec_roundtrip () =
  let w = Codec.writer () in
  Codec.w_u8 w 200;
  Codec.w_u16 w 60_000;
  Codec.w_i32 w (-123_456);
  Codec.w_i64 w (-9_876_543_210);
  Codec.w_bool w true;
  Codec.w_string w "hello world";
  Codec.w_opt_i32 w None;
  Codec.w_opt_i32 w (Some 42);
  let r = Codec.reader (Codec.contents w) in
  check_int "u8" 200 (Codec.r_u8 r);
  check_int "u16" 60_000 (Codec.r_u16 r);
  check_int "i32" (-123_456) (Codec.r_i32 r);
  check_int "i64" (-9_876_543_210) (Codec.r_i64 r);
  check_bool "bool" true (Codec.r_bool r);
  Alcotest.(check string) "string" "hello world" (Codec.r_string r);
  check_bool "none" true (Codec.r_opt_i32 r = None);
  check_bool "some" true (Codec.r_opt_i32 r = Some 42);
  Codec.expect_end r

let test_codec_trailing_bytes () =
  let w = Codec.writer () in
  Codec.w_i32 w 1;
  Codec.w_i32 w 2;
  let r = Codec.reader (Codec.contents w) in
  ignore (Codec.r_i32 r);
  check_bool "trailing detected" true
    (try
       Codec.expect_end r;
       false
     with Failure _ -> true)

(* {1 Schema row roundtrips} *)

let test_schema_roundtrips () =
  let w = Gen.make_warehouse 3 in
  check_bool "warehouse" true
    (Schema.equal_warehouse w (Schema.decode_warehouse (Schema.encode_warehouse w)));
  let d = Gen.make_district ~w:2 ~d:5 ~next_o_id:31 in
  check_bool "district" true
    (Schema.equal_district d (Schema.decode_district (Schema.encode_district d)));
  let c = Gen.make_customer ~w:1 ~d:2 ~c:17 ~last_order:9 in
  check_bool "customer" true
    (Schema.equal_customer c (Schema.decode_customer (Schema.encode_customer c)));
  let i = Gen.make_item 123 in
  check_bool "item" true (Schema.equal_item i (Schema.decode_item (Schema.encode_item i)));
  let s = Gen.make_stock ~w:4 ~i:55 in
  check_bool "stock" true
    (Schema.equal_stock s (Schema.decode_stock (Schema.encode_stock s)));
  let o =
    {
      Schema.o_id = 7; o_d_id = 1; o_w_id = 2; o_c_id = 3; o_entry_d = 99;
      o_carrier_id = None; o_ol_cnt = 11; o_all_local = false;
    }
  in
  check_bool "order" true (Schema.equal_order o (Schema.decode_order (Schema.encode_order o)));
  let ol =
    {
      Schema.ol_o_id = 7; ol_d_id = 1; ol_w_id = 2; ol_number = 4; ol_i_id = 9;
      ol_supply_w_id = 2; ol_delivery_d = Some 123; ol_quantity = 5;
      ol_amount = 4_200; ol_dist_info = String.make 24 'x';
    }
  in
  check_bool "order_line" true
    (Schema.equal_order_line ol (Schema.decode_order_line (Schema.encode_order_line ol)));
  let h =
    {
      Schema.h_c_id = 1; h_c_d_id = 2; h_c_w_id = 3; h_d_id = 4; h_w_id = 5;
      h_date = 6; h_amount = 7; h_data = "payment";
    }
  in
  check_bool "history" true
    (Schema.equal_history h (Schema.decode_history (Schema.encode_history h)));
  let n = { Schema.no_o_id = 1; no_d_id = 2; no_w_id = 3 } in
  check_bool "new_order" true
    (Schema.equal_new_order n (Schema.decode_new_order (Schema.encode_new_order n)))

let test_schema_sizes_fit_caps () =
  (* Serialized rows of the registered tables must fit their cells. *)
  let s = Gen.make_stock ~w:1 ~i:1 in
  check_bool "stock fits" true (Bytes.length (Schema.encode_stock s) <= Schema.stock_cap);
  let c = Gen.make_customer ~w:1 ~d:1 ~c:1 ~last_order:0 in
  let c = { c with Schema.c_data = String.make 300 'z' } in
  check_bool "customer fits" true
    (Bytes.length (Schema.encode_customer c) <= Schema.customer_cap);
  (* Realistic magnitudes (paper: stock ~310B serialized). *)
  check_bool "stock is a few hundred bytes" true
    (Bytes.length (Schema.encode_stock s) > 250)

(* {1 Oid_codec} *)

let oid_key_gen =
  QCheck.Gen.(
    let* tag = int_range 0 8 in
    let* w = int_range 1 4_000 in
    let* d = int_range 1 200 in
    let* a = int_range 0 ((1 lsl 30) - 1) in
    let* b = int_range 0 255 in
    return
      (match tag with
      | 0 -> Oid_codec.Warehouse w
      | 1 -> Oid_codec.District (w, d)
      | 2 -> Oid_codec.Customer (w, d, a)
      | 3 -> Oid_codec.History (w, d, a)
      | 4 -> Oid_codec.Order (w, d, a)
      | 5 -> Oid_codec.New_order (w, d, a)
      | 6 -> Oid_codec.Order_line (w, d, a, b)
      | 7 -> Oid_codec.Item a
      | _ -> Oid_codec.Stock (w, a)))

let oid_roundtrip_prop =
  QCheck.Test.make ~name:"oid encode/decode roundtrip" ~count:500
    (QCheck.make oid_key_gen)
    (fun key -> Oid_codec.decode (Oid_codec.encode key) = key)

let test_oid_placement () =
  check_bool "warehouse replicated" true
    (Oid_codec.home_warehouse (Oid_codec.encode (Oid_codec.Warehouse 3)) = None);
  check_bool "item replicated" true
    (Oid_codec.home_warehouse (Oid_codec.encode (Oid_codec.Item 9)) = None);
  check_bool "stock homed" true
    (Oid_codec.home_warehouse (Oid_codec.encode (Oid_codec.Stock (4, 9))) = Some 4);
  check_bool "stock registered" true
    (Oid_codec.is_registered (Oid_codec.encode (Oid_codec.Stock (4, 9))));
  check_bool "customer registered" true
    (Oid_codec.is_registered (Oid_codec.encode (Oid_codec.Customer (1, 2, 3))));
  check_bool "district local" false
    (Oid_codec.is_registered (Oid_codec.encode (Oid_codec.District (1, 2))))

let test_oid_range_checks () =
  check_bool "oversized warehouse rejected" true
    (try
       ignore (Oid_codec.encode (Oid_codec.Warehouse 5_000));
       false
     with Invalid_argument _ -> true)

(* {1 Gen} *)

let test_catalog_counts () =
  let scale = Scale.tiny ~warehouses:2 in
  let specs = Gen.catalog ~scale ~seed:1 in
  let count pred = List.length (List.filter pred specs) in
  let tagged tag s =
    match Oid_codec.decode s.App.spec_oid with
    | Oid_codec.Warehouse _ -> tag = `W
    | Oid_codec.District _ -> tag = `D
    | Oid_codec.Customer _ -> tag = `C
    | Oid_codec.Stock _ -> tag = `S
    | Oid_codec.Item _ -> tag = `I
    | Oid_codec.Order _ -> tag = `O
    | Oid_codec.Order_line _ -> tag = `OL
    | Oid_codec.History _ | Oid_codec.New_order _ -> tag = `Other
  in
  check_int "warehouses" 2 (count (tagged `W));
  check_int "districts" (2 * 2) (count (tagged `D));
  check_int "customers" (2 * 2 * 6) (count (tagged `C));
  check_int "stock" (2 * 40) (count (tagged `S));
  check_int "items" 40 (count (tagged `I));
  check_int "orders" (2 * 2 * 4) (count (tagged `O));
  check_int "order lines" (2 * 2 * 4 * 5) (count (tagged `OL));
  (* Determinism. *)
  check_bool "deterministic" true (Gen.catalog ~scale ~seed:1 = specs);
  check_bool "seeded" true (Gen.catalog ~scale ~seed:2 <> specs)

let test_nurand_range () =
  let rng = Random.State.make [| 4 |] in
  for _ = 1 to 1_000 do
    let v = Gen.nurand rng ~a:1023 ~x:1 ~y:3000 in
    if v < 1 || v > 3000 then Alcotest.failf "nurand out of range: %d" v
  done

(* {1 Workload} *)

let test_workload_mix () =
  let scale = Scale.bench ~warehouses:4 in
  let rng = Random.State.make [| 8 |] in
  let n = 10_000 in
  let counts = Hashtbl.create 8 in
  let bump k = Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)) in
  let multi = ref 0 in
  for _ = 1 to n do
    let req = Workload.gen Workload.standard ~scale ~rng ~home_w:1 in
    if Tx.is_multi_warehouse req then incr multi;
    match req with
    | Tx.New_order _ -> bump `N
    | Tx.Payment _ -> bump `P
    | Tx.Order_status _ -> bump `O
    | Tx.Delivery _ -> bump `D
    | Tx.Stock_level _ -> bump `S
  done;
  let pct k = 100 * Option.value ~default:0 (Hashtbl.find_opt counts k) / n in
  check_bool "new order ~45%" true (abs (pct `N - 45) <= 3);
  check_bool "payment ~43%" true (abs (pct `P - 43) <= 3);
  check_bool "order status ~4%" true (abs (pct `O - 4) <= 2);
  (* Standard TPCC: ~10% of NewOrders multi-warehouse (1% per line,
     5-15 lines) + 15% of Payments: overall ~11% of transactions. *)
  let multi_pct = 100. *. float_of_int !multi /. float_of_int n in
  check_bool "roughly 10% multi-partition" true (multi_pct > 5. && multi_pct < 18.)

let test_workload_local_only () =
  let scale = Scale.bench ~warehouses:4 in
  let rng = Random.State.make [| 9 |] in
  for _ = 1 to 2_000 do
    let req = Workload.gen Workload.local_only ~scale ~rng ~home_w:2 in
    if Tx.is_multi_warehouse req then Alcotest.fail "local profile produced multi-warehouse"
  done

let test_workload_pinned () =
  let scale = Scale.bench ~warehouses:8 in
  let rng = Random.State.make [| 10 |] in
  for _ = 1 to 200 do
    match Workload.gen_new_order_pinned ~scale ~rng ~warehouses:[ 2; 5; 7 ] with
    | Tx.New_order { w; lines; _ } ->
        check_int "home" 2 w;
        let touched =
          List.sort_uniq compare (List.map (fun li -> li.Tx.li_supply_w) lines)
        in
        Alcotest.(check (list int)) "exact warehouses" [ 2; 5; 7 ] touched
    | _ -> Alcotest.fail "expected NewOrder"
  done

(* {1 Ref_exec sanity} *)

let test_ref_new_order () =
  let scale = Scale.tiny ~warehouses:1 in
  let r = Ref_exec.create ~scale ~seed:1 in
  let next_o_id () =
    match Ref_exec.value r (Oid_codec.encode (Oid_codec.District (1, 1))) with
    | Some raw -> (Schema.decode_district raw).Schema.d_next_o_id
    | None -> Alcotest.fail "district missing"
  in
  let before = next_o_id () in
  let resp =
    Ref_exec.apply r
      (Tx.New_order
         {
           w = 1;
           d = 1;
           c = 2;
           lines = [ { Tx.li_i = 1; li_supply_w = 1; li_qty = 3 } ];
           entry_d = 7;
         })
  in
  (match resp with
  | Tx.R_new_order { o_id; total } ->
      check_int "order id" before o_id;
      check_bool "positive total" true (total > 0)
  | other -> Alcotest.failf "unexpected %s" (Tx.show_resp other));
  check_int "next_o_id bumped" (before + 1) (next_o_id ());
  (* The stock row was updated. *)
  match Ref_exec.value r (Oid_codec.encode (Oid_codec.Stock (1, 1))) with
  | Some raw ->
      let s = Schema.decode_stock raw in
      check_int "stock ytd" 3 s.Schema.s_ytd;
      check_int "order cnt" 1 s.Schema.s_order_cnt
  | None -> Alcotest.fail "stock missing"

let test_ref_payment_and_delivery () =
  let scale = Scale.tiny ~warehouses:1 in
  let r = Ref_exec.create ~scale ~seed:1 in
  (match
     Ref_exec.apply r
       (Tx.Payment { w = 1; d = 1; c_w = 1; c_d = 1; c = 1; amount = 500; date = 3 })
   with
  | Tx.R_payment { balance } -> check_int "balance debited" (-1_500) balance
  | other -> Alcotest.failf "unexpected %s" (Tx.show_resp other));
  (* All init orders are delivered, so a Delivery finds nothing until a
     NewOrder arrives. *)
  (match Ref_exec.apply r (Tx.Delivery { w = 1; carrier = 2; date = 5 }) with
  | Tx.R_delivery { delivered } -> check_int "nothing to deliver" 0 delivered
  | other -> Alcotest.failf "unexpected %s" (Tx.show_resp other));
  ignore
    (Ref_exec.apply r
       (Tx.New_order
          {
            w = 1;
            d = 2;
            c = 1;
            lines = [ { Tx.li_i = 2; li_supply_w = 1; li_qty = 1 } ];
            entry_d = 1;
          }));
  match Ref_exec.apply r (Tx.Delivery { w = 1; carrier = 2; date = 5 }) with
  | Tx.R_delivery { delivered } -> check_int "one delivered" 1 delivered
  | other -> Alcotest.failf "unexpected %s" (Tx.show_resp other)

let test_ref_stock_level () =
  let scale = Scale.tiny ~warehouses:1 in
  let r = Ref_exec.create ~scale ~seed:1 in
  match Ref_exec.apply r (Tx.Stock_level { w = 1; d = 1; threshold = 200 }) with
  | Tx.R_stock_level { low_stock } -> check_bool "every item is low at 200" true (low_stock > 0)
  | other -> Alcotest.failf "unexpected %s" (Tx.show_resp other)

(* {1 Differential test: Heron vs the sequential reference}

   A single closed-loop client means Heron's total order equals the
   submission order; running the same sequence through Ref_exec must
   give identical responses and an identical final database. *)

let run_differential ~seed ~warehouses ~n_requests =
  let scale = Scale.tiny ~warehouses in
  let eng = Engine.create ~seed () in
  let cfg = Config.default ~partitions:warehouses ~replicas:3 in
  let app = Tx.app ~scale ~seed:1 in
  let sys = System.create eng ~cfg ~app in
  System.start sys;
  let reference = Ref_exec.create ~scale ~seed:1 in
  let rng = Random.State.make [| seed; 77 |] in
  let reqs =
    List.init n_requests (fun i ->
        let home_w = (i mod warehouses) + 1 in
        Workload.gen Workload.standard ~scale ~rng ~home_w)
  in
  let heron_resps = ref [] in
  let client = System.new_client_node sys ~name:"diff-client" in
  Fabric.spawn_on client (fun () ->
      List.iter
        (fun req ->
          let resps = System.submit sys ~from:client req in
          heron_resps := Tx.merge_responses resps :: !heron_resps)
        reqs);
  Engine.run_until eng (Time_ns.s 10);
  let heron_resps = List.rev !heron_resps in
  check_int "all requests answered" n_requests (List.length heron_resps);
  let ref_resps = List.map (Ref_exec.apply reference) reqs in
  List.iteri
    (fun i (h, r) ->
      if not (Tx.equal_resp h r) then
        Alcotest.failf "response %d differs: heron=%s ref=%s" i (Tx.show_resp h)
          (Tx.show_resp r))
    (List.combine heron_resps ref_resps);
  (* Final state: every object in the reference must match the value
     stored by the partition that owns it (and all its replicas). *)
  List.iter
    (fun oid ->
      let expected = Option.get (Ref_exec.value reference oid) in
      let parts =
        match Oid_codec.home_warehouse oid with
        | Some w -> [ w - 1 ]
        | None -> List.init warehouses Fun.id
      in
      List.iter
        (fun part ->
          for idx = 0 to 2 do
            let store = Replica.store (System.replica sys ~part ~idx) in
            match Versioned_store.mem store oid with
            | false -> Alcotest.failf "oid %d missing at partition %d" (Oid.to_int oid) part
            | true ->
                let got, _ = Versioned_store.get store oid in
                if not (Bytes.equal got expected) then
                  Alcotest.failf "oid %d differs at partition %d replica %d"
                    (Oid.to_int oid) part idx
          done)
        parts)
    (Ref_exec.oids reference)

let test_differential_single_wh () = run_differential ~seed:5 ~warehouses:1 ~n_requests:40
let test_differential_two_wh () = run_differential ~seed:6 ~warehouses:2 ~n_requests:60
let test_differential_four_wh () = run_differential ~seed:7 ~warehouses:4 ~n_requests:60

let differential_prop =
  QCheck.Test.make ~name:"heron matches sequential reference (random seeds)" ~count:5
    QCheck.(int_bound 10_000)
    (fun seed ->
      run_differential ~seed ~warehouses:2 ~n_requests:25;
      true)

(* {1 Concurrent invariants} *)

let concurrent_invariants ~workers () =
  (* Multiple clients; afterwards: per-district order-id accounting and
     replica convergence must hold despite concurrency. *)
  let warehouses = 2 in
  let scale = Scale.tiny ~warehouses in
  let eng = Engine.create ~seed:3 () in
  let cfg = { (Config.default ~partitions:warehouses ~replicas:3) with Config.workers } in
  let app = Tx.app ~scale ~seed:1 in
  let sys = System.create eng ~cfg ~app in
  System.start sys;
  let new_orders = ref 0 in
  let rng = Random.State.make [| 31 |] in
  let reqs_per_client = 25 in
  for c = 0 to 3 do
    let reqs =
      List.init reqs_per_client (fun _ ->
          Workload.gen Workload.standard ~scale ~rng ~home_w:((c mod warehouses) + 1))
    in
    let client = System.new_client_node sys ~name:(Printf.sprintf "c%d" c) in
    Fabric.spawn_on client (fun () ->
        List.iter
          (fun req ->
            match Tx.merge_responses (System.submit sys ~from:client req) with
            | Tx.R_new_order _ -> incr new_orders
            | _ -> ())
          reqs)
  done;
  Engine.run_until eng (Time_ns.s 10);
  (* next_o_id advanced exactly once per successful NewOrder. *)
  let total_orders = ref 0 in
  for w = 1 to warehouses do
    for d = 1 to scale.Scale.districts do
      let store = Replica.store (System.replica sys ~part:(w - 1) ~idx:0) in
      let raw, _ = Versioned_store.get store (Oid_codec.encode (Oid_codec.District (w, d))) in
      let dist = Schema.decode_district raw in
      total_orders := !total_orders + dist.Schema.d_next_o_id - 1 - scale.Scale.init_orders_per_district
    done
  done;
  check_int "orders accounted" !new_orders !total_orders;
  (* Replicas of each partition agree on every registered row. *)
  Array.iteri
    (fun p row ->
      let reference = Replica.store row.(0) in
      Array.iteri
        (fun i r ->
          if i > 0 then
            List.iter
              (fun oid ->
                let v0, _ = Versioned_store.get reference oid in
                let vi, _ = Versioned_store.get (Replica.store r) oid in
                if not (Bytes.equal v0 vi) then
                  Alcotest.failf "partition %d replica %d diverged" p i)
              (Versioned_store.registered_oids reference))
        row)
    (System.replicas sys)

let tc name f = Alcotest.test_case name `Quick f
let stc name f = Alcotest.test_case name `Slow f
let qc t = QCheck_alcotest.to_alcotest t

let suite =
  [
    ( "tpcc.codec",
      [ tc "roundtrip" test_codec_roundtrip; tc "trailing bytes" test_codec_trailing_bytes ] );
    ( "tpcc.schema",
      [ tc "row roundtrips" test_schema_roundtrips; tc "sizes fit caps" test_schema_sizes_fit_caps ] );
    ( "tpcc.oid",
      [
        qc oid_roundtrip_prop;
        tc "placement" test_oid_placement;
        tc "range checks" test_oid_range_checks;
      ] );
    ( "tpcc.gen",
      [ tc "catalog counts" test_catalog_counts; tc "nurand range" test_nurand_range ] );
    ( "tpcc.workload",
      [
        tc "standard mix" test_workload_mix;
        tc "local only" test_workload_local_only;
        tc "pinned new order" test_workload_pinned;
      ] );
    ( "tpcc.ref",
      [
        tc "new order" test_ref_new_order;
        tc "payment and delivery" test_ref_payment_and_delivery;
        tc "stock level" test_ref_stock_level;
      ] );
    ( "tpcc.differential",
      [
        tc "1 warehouse" test_differential_single_wh;
        tc "2 warehouses" test_differential_two_wh;
        tc "4 warehouses" test_differential_four_wh;
        qc differential_prop;
      ] );
    ( "tpcc.concurrent",
      [
        stc "invariants under concurrency" (concurrent_invariants ~workers:1);
        stc "invariants with parallel execution" (concurrent_invariants ~workers:4);
      ] );
  ]

let () = Alcotest.run "heron_tpcc" suite
