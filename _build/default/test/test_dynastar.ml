(* Tests for the DynaStar baseline: message network timing, protocol
   correctness (differential against the sequential reference), and the
   cost relationship with Heron that Figure 5 depends on. *)

open Heron_sim
open Heron_core
open Heron_tpcc
open Heron_dynastar

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Msgnet} *)

let test_msgnet_timing () =
  let eng = Engine.create () in
  let cfg = { Msgnet.one_way_ns = 10_000; per_byte_ns_x100 = 100; msg_cpu_ns = 2_000 } in
  let net = Msgnet.create eng cfg in
  let a = Msgnet.endpoint net ~name:"a" in
  let b = Msgnet.endpoint net ~name:"b" in
  let sent_at = ref 0 and got_at = ref 0 in
  Engine.spawn eng (fun () ->
      Msgnet.send net ~from:a b ~bytes:1_000 "hello";
      sent_at := Engine.self_now ());
  Engine.spawn eng (fun () ->
      let msg = Msgnet.recv net b in
      Alcotest.(check string) "payload" "hello" msg;
      got_at := Engine.self_now ());
  Engine.run eng;
  check_int "sender pays cpu" 2_000 !sent_at;
  (* cpu(send) + one-way + bytes + cpu(recv) *)
  check_int "delivery time" (2_000 + 10_000 + 1_000 + 2_000) !got_at

let test_msgnet_fifo () =
  let eng = Engine.create () in
  let net = Msgnet.create eng Msgnet.default_config in
  let a = Msgnet.endpoint net ~name:"a" in
  let b = Msgnet.endpoint net ~name:"b" in
  let got = ref [] in
  Engine.spawn eng (fun () ->
      Msgnet.send net ~from:a b ~bytes:8 "one";
      Msgnet.send net ~from:a b ~bytes:8 "two");
  Engine.spawn eng (fun () ->
      let x = Msgnet.recv net b in
      let y = Msgnet.recv net b in
      got := [ x; y ]);
  Engine.run eng;
  Alcotest.(check (list string)) "fifo" [ "one"; "two" ] !got

(* {1 DynaStar on TPCC} *)

let make_ds ?(seed = 1) ~warehouses () =
  let scale = Scale.tiny ~warehouses in
  let eng = Engine.create ~seed () in
  let app = Tx.app ~scale ~seed:1 in
  let ds = Dynastar.create eng ~partitions:warehouses ~replicas:3 ~app () in
  Dynastar.start ds;
  (eng, ds, scale)

let test_ds_differential () =
  (* Same single-client sequence through DynaStar and the sequential
     reference: identical responses, identical final state. *)
  let warehouses = 2 in
  let eng, ds, scale = make_ds ~warehouses () in
  let reference = Ref_exec.create ~scale ~seed:1 in
  let rng = Random.State.make [| 42 |] in
  let reqs =
    List.init 40 (fun i ->
        Workload.gen Workload.standard ~scale ~rng ~home_w:((i mod warehouses) + 1))
  in
  let got = ref [] in
  let client = Dynastar.new_client ds ~name:"c0" in
  Engine.spawn eng (fun () ->
      List.iter (fun req -> got := Dynastar.submit ds client req :: !got) reqs);
  Engine.run_until eng (Time_ns.s 60);
  let got = List.rev !got in
  check_int "all answered" (List.length reqs) (List.length got);
  List.iteri
    (fun i (h, r) ->
      let expect = Ref_exec.apply reference r in
      if not (Tx.equal_resp h expect) then
        Alcotest.failf "response %d differs: dynastar=%s ref=%s" i (Tx.show_resp h)
          (Tx.show_resp expect))
    (List.combine got reqs);
  (* Final state equals the reference at the owning partition. *)
  List.iter
    (fun oid ->
      let expected = Option.get (Ref_exec.value reference oid) in
      match Oid_codec.home_warehouse oid with
      | None -> ()
      | Some w -> (
          match Dynastar.store_value ds ~part:(w - 1) ~idx:0 oid with
          | Some got ->
              if not (Bytes.equal got expected) then
                Alcotest.failf "oid %d differs" (Oid.to_int oid)
          | None -> Alcotest.failf "oid %d missing" (Oid.to_int oid)))
    (Ref_exec.oids reference)

let test_ds_replicas_converge () =
  let warehouses = 2 in
  let eng, ds, scale = make_ds ~seed:4 ~warehouses () in
  let rng = Random.State.make [| 9 |] in
  for c = 0 to 2 do
    let client = Dynastar.new_client ds ~name:(Printf.sprintf "c%d" c) in
    Engine.spawn eng (fun () ->
        for _ = 1 to 15 do
          ignore
            (Dynastar.submit ds client
               (Workload.gen Workload.standard ~scale ~rng ~home_w:((c mod warehouses) + 1)))
        done)
  done;
  Engine.run_until eng (Time_ns.s 120);
  for part = 0 to warehouses - 1 do
    check_int "replica 1 executed as many"
      (Dynastar.executed_count ds ~part ~idx:0)
      (Dynastar.executed_count ds ~part ~idx:1);
    (* Spot-check convergence on every district row. *)
    for d = 1 to scale.Scale.districts do
      let oid = Oid_codec.encode (Oid_codec.District (part + 1, d)) in
      let v0 = Option.get (Dynastar.store_value ds ~part ~idx:0 oid) in
      List.iter
        (fun idx ->
          let vi = Option.get (Dynastar.store_value ds ~part ~idx oid) in
          if not (Bytes.equal v0 vi) then Alcotest.failf "district %d diverged" d)
        [ 1; 2 ]
    done
  done

let test_ds_latency_regime () =
  (* A single-partition request takes on the order of a millisecond —
     the message-passing regime the paper contrasts with Heron's
     microseconds. *)
  let eng, ds, scale = make_ds ~warehouses:1 () in
  ignore scale;
  let lat = ref 0 in
  let client = Dynastar.new_client ds ~name:"c0" in
  Engine.spawn eng (fun () ->
      let t0 = Engine.self_now () in
      ignore
        (Dynastar.submit ds client
           (Tx.New_order
              {
                w = 1;
                d = 1;
                c = 1;
                lines = [ { Tx.li_i = 1; li_supply_w = 1; li_qty = 1 } ];
                entry_d = 0;
              }));
      lat := Engine.self_now () - t0);
  Engine.run_until eng (Time_ns.s 2);
  check_bool "answered" true (!lat > 0);
  check_bool "sub-10ms" true (!lat < Time_ns.ms 10);
  check_bool "well above 100us (message passing)" true (!lat > Time_ns.us 300)

let test_ds_multi_partition_penalty () =
  (* Multi-partition requests pay data-migration rounds: noticeably
     slower than single-partition ones (DynaStar's 10x effect). *)
  let eng, ds, scale = make_ds ~warehouses:2 () in
  ignore scale;
  let single = ref 0 and multi = ref 0 in
  let client = Dynastar.new_client ds ~name:"c0" in
  Engine.spawn eng (fun () ->
      let time f =
        let t0 = Engine.self_now () in
        ignore (f ());
        Engine.self_now () - t0
      in
      single :=
        time (fun () ->
            Dynastar.submit ds client
              (Tx.New_order
                 {
                   w = 1;
                   d = 1;
                   c = 1;
                   lines = [ { Tx.li_i = 1; li_supply_w = 1; li_qty = 1 } ];
                   entry_d = 0;
                 }));
      multi :=
        time (fun () ->
            Dynastar.submit ds client
              (Tx.New_order
                 {
                   w = 1;
                   d = 1;
                   c = 1;
                   lines =
                     [
                       { Tx.li_i = 1; li_supply_w = 1; li_qty = 1 };
                       { Tx.li_i = 2; li_supply_w = 2; li_qty = 1 };
                     ];
                   entry_d = 0;
                 })));
  Engine.run_until eng (Time_ns.s 2);
  check_bool "multi-partition costs more" true (!multi > !single + Time_ns.us 100)

let tc name f = Alcotest.test_case name `Quick f

let suite =
  [
    ("dynastar.msgnet", [ tc "timing" test_msgnet_timing; tc "fifo" test_msgnet_fifo ]);
    ( "dynastar.protocol",
      [
        tc "differential vs reference" test_ds_differential;
        tc "replicas converge" test_ds_replicas_converge;
      ] );
    ( "dynastar.costs",
      [
        tc "millisecond regime" test_ds_latency_regime;
        tc "multi-partition penalty" test_ds_multi_partition_penalty;
      ] );
  ]

let () = Alcotest.run "heron_dynastar" suite
