(* TPCC on Heron: run the standard mix on a 4-warehouse deployment and
   print throughput, latency percentiles, and per-type statistics —
   a miniature of the paper's performance evaluation.

     dune exec examples/tpcc_demo.exe *)

open Heron_sim
open Heron_rdma
open Heron_stats
open Heron_core
open Heron_tpcc

let warehouses = 4
let clients = 12
let duration = Time_ns.ms 50

let () =
  let scale = Scale.bench ~warehouses in
  let eng = Engine.create ~seed:11 () in
  let cfg = Config.default ~partitions:warehouses ~replicas:3 in
  let sys = System.create eng ~cfg ~app:(Tx.app ~scale ~seed:1) in
  System.start sys;

  let overall = Sample_set.create () in
  let by_type : (string, Sample_set.t) Hashtbl.t = Hashtbl.create 8 in
  let sample name =
    match Hashtbl.find_opt by_type name with
    | Some s -> s
    | None ->
        let s = Sample_set.create () in
        Hashtbl.replace by_type name s;
        s
  in
  let completed = ref 0 in
  for c = 0 to clients - 1 do
    let node = System.new_client_node sys ~name:(Printf.sprintf "client-%d" c) in
    let rng = Random.State.make [| c; 5 |] in
    let home_w = (c mod warehouses) + 1 in
    Fabric.spawn_on node (fun () ->
        let rec loop () =
          let req = Workload.gen Workload.standard ~scale ~rng ~home_w in
          let name =
            match req with
            | Tx.New_order _ -> "NewOrder"
            | Tx.Payment _ -> "Payment"
            | Tx.Order_status _ -> "OrderStatus"
            | Tx.Delivery _ -> "Delivery"
            | Tx.Stock_level _ -> "StockLevel"
          in
          let t0 = Engine.self_now () in
          let resps = System.submit sys ~from:node req in
          ignore (Tx.merge_responses resps);
          let dt = Engine.self_now () - t0 in
          incr completed;
          Sample_set.add overall dt;
          Sample_set.add (sample name) dt;
          loop ()
        in
        loop ())
  done;
  Engine.run_until eng duration;

  Format.printf "TPCC on Heron: %d warehouses, %d closed-loop clients, %a of load@."
    warehouses clients Time_ns.pp duration;
  Format.printf "throughput : %.0f tps@."
    (float_of_int !completed /. Time_ns.to_s_f duration);
  Format.printf "latency    : avg %s us, p50 %s, p95 %s, p99 %s@."
    (Table.cell_us (int_of_float (Sample_set.mean overall)))
    (Table.cell_us (Sample_set.percentile overall 50.))
    (Table.cell_us (Sample_set.percentile overall 95.))
    (Table.cell_us (Sample_set.percentile overall 99.));

  let table =
    Table.make ~title:"Per-transaction-type latency"
      ~headers:[ "type"; "count"; "avg (us)"; "p95 (us)" ]
  in
  List.iter
    (fun name ->
      match Hashtbl.find_opt by_type name with
      | Some s when not (Sample_set.is_empty s) ->
          Table.add_row table
            [
              name;
              string_of_int (Sample_set.count s);
              Table.cell_us (int_of_float (Sample_set.mean s));
              Table.cell_us (Sample_set.percentile s 95.);
            ]
      | Some _ | None -> ())
    [ "NewOrder"; "Payment"; "OrderStatus"; "Delivery"; "StockLevel" ];
  Table.print table;

  (* Database-level sanity: orders created = NewOrder responses. *)
  let orders = ref 0 in
  for w = 1 to warehouses do
    for d = 1 to scale.Scale.districts do
      let store = Replica.store (System.replica sys ~part:(w - 1) ~idx:0) in
      let raw, _ =
        Heron_core.Versioned_store.get store (Oid_codec.encode (Oid_codec.District (w, d)))
      in
      let dist = Schema.decode_district raw in
      orders := !orders + dist.Schema.d_next_o_id - 1 - scale.Scale.init_orders_per_district
    done
  done;
  Format.printf "orders created during the run: %d@." !orders
