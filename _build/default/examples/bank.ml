(* Bank: concurrent cross-partition transfers with a linearizability
   audit.

   Sixteen accounts spread over four partitions; eight tellers move
   money between random accounts (mostly across partitions) while two
   auditors continuously take snapshots of every account. Under
   linearizable execution every snapshot must show the same grand total
   — the invariant Heron's Phases 2 and 4 protect (paper Figure 3).

     dune exec examples/bank.exe *)

open Heron_sim
open Heron_rdma
open Heron_core
open Heron_kv

let accounts = 16
let partitions = 4
let initial_balance = 1_000L
let transfers_per_teller = 50

let () =
  let eng = Engine.create ~seed:7 () in
  let cfg = Config.default ~partitions ~replicas:3 in
  let app = Kv_app.app ~keys:accounts ~partitions ~init:initial_balance in
  let sys = System.create eng ~cfg ~app in
  System.start sys;
  let expected_total = Int64.mul (Int64.of_int accounts) initial_balance in

  (* Tellers: random transfers, most spanning two partitions. *)
  let transfers_done = ref 0 in
  for teller = 0 to 7 do
    let node = System.new_client_node sys ~name:(Printf.sprintf "teller-%d" teller) in
    let rng = Random.State.make [| teller; 99 |] in
    Fabric.spawn_on node (fun () ->
        for _ = 1 to transfers_per_teller do
          let src = Random.State.int rng accounts in
          let dst = (src + 1 + Random.State.int rng (accounts - 1)) mod accounts in
          let amount = Int64.of_int (1 + Random.State.int rng 100) in
          ignore (System.submit sys ~from:node (Kv_app.Transfer { src; dst; amount }));
          incr transfers_done
        done)
  done;

  (* Auditors: snapshot all accounts and check conservation. *)
  let audits = ref 0 in
  let violations = ref 0 in
  let all_accounts = List.init accounts Fun.id in
  for auditor = 0 to 1 do
    let node = System.new_client_node sys ~name:(Printf.sprintf "auditor-%d" auditor) in
    Fabric.spawn_on node (fun () ->
        for _ = 1 to 40 do
          let resps = System.submit sys ~from:node (Kv_app.Read_all all_accounts) in
          List.iter
            (fun (_, resp) ->
              match resp with
              | Kv_app.Values kvs ->
                  incr audits;
                  let total =
                    List.fold_left (fun acc (_, v) -> Int64.add acc v) 0L kvs
                  in
                  if not (Int64.equal total expected_total) then begin
                    incr violations;
                    Format.printf "VIOLATION: snapshot total %Ld <> %Ld@." total
                      expected_total
                  end
              | Kv_app.Value _ | Kv_app.Ack -> ())
            resps
        done)
  done;

  Engine.run_until eng (Time_ns.s 1);
  Format.printf "transfers completed : %d@." !transfers_done;
  Format.printf "snapshots audited   : %d@." !audits;
  Format.printf "conservation checks : %s@."
    (if !violations = 0 then "all passed" else Printf.sprintf "%d FAILED" !violations);

  (* Final balances, read from partition stores directly. *)
  let total = ref 0L in
  List.iter
    (fun k ->
      let part = Kv_app.partition_of_key ~partitions k in
      let store = Replica.store (System.replica sys ~part ~idx:0) in
      let v, _ = Heron_core.Versioned_store.get store (Kv_app.oid_of_key k) in
      total := Int64.add !total (Bytes.get_int64_le v 0))
    all_accounts;
  Format.printf "final grand total   : %Ld (expected %Ld)@." !total expected_total;
  if !violations > 0 || not (Int64.equal !total expected_total) then exit 1
