(* Quickstart: a replicated counter service on Heron.

   Builds a two-partition deployment of the bundled key-value
   application, submits a few requests from a client, and prints the
   responses together with the virtual time they took.

     dune exec examples/quickstart.exe *)

open Heron_sim
open Heron_rdma
open Heron_core
open Heron_kv

let () =
  (* 1. A virtual-time engine: the whole cluster runs inside it. *)
  let eng = Engine.create ~seed:42 () in

  (* 2. A Heron deployment: 2 partitions x 3 replicas, running the KV
     application with 8 integer registers spread over the partitions. *)
  let cfg = Config.default ~partitions:2 ~replicas:3 in
  let app = Kv_app.app ~keys:8 ~partitions:2 ~init:0L in
  let sys = System.create eng ~cfg ~app in
  System.start sys;

  (* 3. A client machine. Client code runs in a fiber on its node and
     uses blocking calls; System.submit returns one response per
     involved partition. *)
  let client = System.new_client_node sys ~name:"quickstart-client" in
  Fabric.spawn_on client (fun () ->
      let time_of op req =
        let t0 = Engine.self_now () in
        let resps = System.submit sys ~from:client req in
        let dt = Engine.self_now () - t0 in
        Format.printf "%-28s -> %a   (%a, %d partition%s)@." op Kv_app.pp_resp
          (snd (List.hd resps)) Time_ns.pp dt (List.length resps)
          (if List.length resps = 1 then "" else "s");
        resps
      in
      (* Single-partition requests: classic SMR, no coordination. *)
      ignore (time_of "Put key0 := 10" (Kv_app.Put (0, 10L)));
      ignore (time_of "Put key1 := 32" (Kv_app.Put (1, 32L)));
      ignore (time_of "Add key0 += 5" (Kv_app.Add (0, 5L)));
      ignore (time_of "Get key0" (Kv_app.Get 0));
      (* Keys 0 and 1 live in different partitions: this read is a
         multi-partition request, linearized by Phases 2 and 4 and
         served with one-sided remote reads. *)
      ignore (time_of "Read_all [key0; key1]" (Kv_app.Read_all [ 0; 1 ]));
      ignore (time_of "Incr_all [key0; key1]" (Kv_app.Incr_all [ 0; 1 ]));
      ignore (time_of "Read_all [key0; key1]" (Kv_app.Read_all [ 0; 1 ])));

  (* 4. Attach a tracer to one replica to see where a request's time
     goes (ordering, coordination phases, execution). *)
  let tracer = Trace.create () in
  Replica.set_tracer (System.replica sys ~part:0 ~idx:0) tracer;

  (* 5. Run the virtual clock. *)
  Engine.run_until eng (Time_ns.ms 10);
  Format.printf "virtual time elapsed: %a@." Time_ns.pp (Engine.now eng);
  Format.printf "@.timeline of the last requests at replica p0/r0:@.%s"
    (Trace.render_timeline tracer)
