(* A partitioned coordination service (the paper's motivating workload:
   S-SMR scaled ZooKeeper by sharding its namespace — Heron does the
   same with microsecond coordination).

   Three subtrees spread over three partitions hold the configuration of
   three services. Deployers flip feature flags across services
   atomically (Touch/Write spanning partitions) while watchers take
   consistent cross-partition snapshots of the whole configuration.

     dune exec examples/config_service.exe *)

open Heron_sim
open Heron_rdma
open Heron_core
open Heron_zk

let partitions = 3
let roots = [ ("frontend", "svc"); ("backend", "svc"); ("billing", "svc") ]

let () =
  let eng = Engine.create ~seed:77 () in
  let cfg = Config.default ~partitions ~replicas:3 in
  let sys = System.create eng ~cfg ~app:(Zk_app.app ~partitions ~roots) in
  System.start sys;
  let op node req = Zk_app.merge (System.submit sys ~from:node req) in

  (* Bootstrap: each service gets a /X/flags/dark_mode znode. *)
  let admin = System.new_client_node sys ~name:"admin" in
  Fabric.spawn_on admin (fun () ->
      List.iter
        (fun (svc, _) ->
          ignore (op admin (Zk_app.Create { path = [ svc; "flags" ]; data = "" }));
          ignore
            (op admin
               (Zk_app.Create { path = [ svc; "flags"; "dark_mode" ]; data = "off" })))
        roots;
      Format.printf "bootstrap done: /{frontend,backend,billing}/flags/dark_mode = off@.");

  let flag svc = [ svc; "flags"; "dark_mode" ] in
  let all_flags = List.map (fun (svc, _) -> flag svc) roots in

  (* The deployer flips the flag on all services repeatedly. A Touch is
     a single multi-partition request, so watchers can never observe a
     half-flipped deployment. *)
  let deployer = System.new_client_node sys ~name:"deployer" in
  Fabric.spawn_on deployer (fun () ->
      Engine.sleep (Time_ns.ms 1);
      for _ = 1 to 20 do
        ignore (op deployer (Zk_app.Touch all_flags))
      done;
      Format.printf "deployer: flipped the fleet 20 times@.");

  (* Watchers snapshot the whole fleet and verify it is never torn. *)
  let torn = ref 0 and snaps = ref 0 in
  for i = 1 to 2 do
    let watcher = System.new_client_node sys ~name:(Printf.sprintf "watcher%d" i) in
    Fabric.spawn_on watcher (fun () ->
        Engine.sleep (Time_ns.ms 1);
        for _ = 1 to 30 do
          match op watcher (Zk_app.Multi_read all_flags) with
          | Zk_app.Z_snapshot entries ->
              incr snaps;
              let versions =
                List.filter_map
                  (fun (_, e) -> Option.map snd e)
                  entries
              in
              let all_equal =
                match versions with v :: rest -> List.for_all (( = ) v) rest | [] -> false
              in
              if not all_equal then incr torn
          | other -> Format.printf "unexpected: %a@." Zk_app.pp_resp other
        done)
  done;

  Engine.run_until eng (Time_ns.s 1);
  Format.printf "snapshots: %d, torn: %d%s@." !snaps !torn
    (if !torn = 0 then " — every fleet view was consistent" else " (BUG)");

  (* Show the final state. *)
  let reader = System.new_client_node sys ~name:"reader" in
  Fabric.spawn_on reader (fun () ->
      List.iter
        (fun (svc, _) ->
          match op reader (Zk_app.Read (flag svc)) with
          | Zk_app.Z_data { version; _ } ->
              Format.printf "/%s/flags/dark_mode at version %d@." svc version
          | other -> Format.printf "unexpected: %a@." Zk_app.pp_resp other)
        roots);
  Engine.run_until eng (Time_ns.s 2);
  if !torn > 0 then exit 1
