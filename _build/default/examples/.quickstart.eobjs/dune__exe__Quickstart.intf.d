examples/quickstart.mli:
