examples/bank.ml: Bytes Config Engine Fabric Format Fun Heron_core Heron_kv Heron_rdma Heron_sim Int64 Kv_app List Printf Random Replica System Time_ns
