examples/quickstart.ml: Config Engine Fabric Format Heron_core Heron_kv Heron_rdma Heron_sim Kv_app List Replica System Time_ns Trace
