examples/config_service.ml: Config Engine Fabric Format Heron_core Heron_rdma Heron_sim Heron_zk List Option Printf System Time_ns Zk_app
