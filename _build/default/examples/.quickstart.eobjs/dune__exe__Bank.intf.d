examples/bank.mli:
