examples/config_service.mli:
