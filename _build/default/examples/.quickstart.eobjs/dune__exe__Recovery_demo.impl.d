examples/recovery_demo.ml: Bytes Config Engine Fabric Format Heron_core Heron_kv Heron_rdma Heron_sim Kv_app List Printf Replica System Time_ns Versioned_store
