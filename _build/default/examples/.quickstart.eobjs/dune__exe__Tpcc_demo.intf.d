examples/tpcc_demo.mli:
