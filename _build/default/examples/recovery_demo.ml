(* Lagger recovery: watch Heron's state-transfer protocol in action.

   One replica of partition 0 is artificially slowed down while clients
   hammer multi-partition increments under majority-only coordination.
   The slow replica falls behind the fast majority, its remote reads
   start returning only too-new versions, and it recovers through the
   state-transfer protocol (Algorithm 3). The demo prints a timeline of
   lagger events and verifies the replica converged afterwards.

     dune exec examples/recovery_demo.exe *)

open Heron_sim
open Heron_rdma
open Heron_core
open Heron_kv

let () =
  let eng = Engine.create ~seed:21 () in
  let cfg =
    let c = Config.default ~partitions:2 ~replicas:3 in
    (* Majority-only coordination: the paper's anti-lagger grace delay
       is off, so a slow replica really can be left behind. *)
    { c with Config.wait_phase2 = Config.Majority; wait_phase4 = Config.Majority }
  in
  let sys = System.create eng ~cfg ~app:(Kv_app.app ~keys:4 ~partitions:2 ~init:0L) in
  System.start sys;

  let slow = System.replica sys ~part:0 ~idx:2 in
  Replica.inject_exec_delay slow (Time_ns.us 300);
  Format.printf "replica p0/r2 slowed by 300us per request@.";

  for c = 0 to 2 do
    let node = System.new_client_node sys ~name:(Printf.sprintf "client-%d" c) in
    Fabric.spawn_on node (fun () ->
        for _ = 1 to 50 do
          ignore (System.submit sys ~from:node (Kv_app.Incr_all [ 0; 1 ]))
        done)
  done;

  (* A monitor printing lagger/state-transfer events as they happen. *)
  Engine.spawn eng (fun () ->
      let last = ref (0, 0, 0) in
      for _ = 1 to 400 do
        Engine.sleep (Time_ns.ms 1);
        let st = Replica.stats slow in
        let now = (st.Replica.st_laggers, st.Replica.st_skipped, st.Replica.st_executed) in
        if now <> !last then begin
          let l, s, e = now in
          Format.printf "t=%a  p0/r2: laggers=%d skipped=%d executed=%d@." Time_ns.pp
            (Engine.self_now ()) l s e;
          last := now
        end
      done);

  Engine.run_until eng (Time_ns.ms 200);

  (* Let the slow replica drain at normal speed, then compare state. *)
  Replica.inject_exec_delay slow 0;
  Engine.run_until eng (Time_ns.ms 400);

  let st = Replica.stats slow in
  Format.printf "@.lagger events    : %d@." st.Replica.st_laggers;
  Format.printf "skipped deliveries: %d (covered by state transfer)@."
    st.Replica.st_skipped;
  List.iter
    (fun idx ->
      let donors = (Replica.stats (System.replica sys ~part:0 ~idx)).Replica.st_transfers_served in
      if donors > 0 then Format.printf "replica p0/r%d served %d state transfer(s)@." idx donors)
    [ 0; 1 ];

  let reference = Replica.store (System.replica sys ~part:0 ~idx:0) in
  let diverged = ref false in
  List.iter
    (fun oid ->
      let v0, _ = Versioned_store.get reference oid in
      let v2, _ = Versioned_store.get (Replica.store slow) oid in
      if not (Bytes.equal v0 v2) then diverged := true)
    (Versioned_store.registered_oids reference);
  Format.printf "final state       : %s@."
    (if !diverged then "DIVERGED" else "converged with the majority");
  if !diverged || st.Replica.st_laggers = 0 then exit 1
